(* One function per figure of the paper's evaluation section; each prints
   the same series the paper plots.  See DESIGN.md §2 for the experiment
   index and EXPERIMENTS.md for paper-vs-measured notes. *)

type params = {
  threads : int list;
  seconds : float;
  big : bool; (* paper-scale key ranges instead of the scaled defaults *)
  runs : int; (* mean over N runs per point (the paper uses 5 x 20 s) *)
}

(* Mean over [p.runs] repetitions of one data point (throughput averaged;
   counters summed across runs). *)
let merge_reasons a b =
  match (a, b) with
  | [], r | r, [] -> r
  | a, b -> List.map2 (fun (label, x) (_, y) -> (label, x + y)) a b

let averaged p f =
  let rows = List.init (Stdlib.max 1 p.runs) (fun _ -> f ()) in
  match rows with
  | [] -> assert false
  | first :: _ ->
      let n = float_of_int (List.length rows) in
      {
        first with
        Harness.Driver.throughput =
          List.fold_left (fun a (r : Harness.Driver.row) -> a +. r.throughput) 0. rows /. n;
        commits = List.fold_left (fun a (r : Harness.Driver.row) -> a + r.commits) 0 rows;
        aborts = List.fold_left (fun a (r : Harness.Driver.row) -> a + r.aborts) 0 rows;
        clock_ops = List.fold_left (fun a (r : Harness.Driver.row) -> a + r.clock_ops) 0 rows;
        abort_reasons =
          List.fold_left
            (fun a (r : Harness.Driver.row) -> merge_reasons a r.abort_reasons)
            [] rows;
        (* Phase times and txn totals sum across runs (they are extensive,
           like the counters); latency percentiles keep the worst run. *)
        telemetry =
          List.fold_left
            (fun (a : Harness.Driver.txn_telemetry) (r : Harness.Driver.row) ->
              let t = r.telemetry in
              {
                Harness.Driver.phases = merge_reasons a.phases t.phases;
                txn_total_ns = a.txn_total_ns + t.txn_total_ns;
                p50_ns = Stdlib.max a.p50_ns t.p50_ns;
                p99_ns = Stdlib.max a.p99_ns t.p99_ns;
                p999_ns = Stdlib.max a.p999_ns t.p999_ns;
              })
            Harness.Driver.no_telemetry rows;
      }

let set_mixes =
  [ Harness.Workload.write_heavy; Harness.Workload.read_mostly; Harness.Workload.read_only ]

let run_set_series p ~structure ~range stms =
  Harness.Report.row_header ();
  List.iter
    (fun mix ->
      List.iter
        (fun stm ->
          List.iter
            (fun threads ->
              let row =
                averaged p (fun () ->
                    Harness.Driver.run_set_bench ~stm ~structure ~mix ~range
                      ~threads ~seconds:p.seconds)
              in
              Harness.Report.row row)
            p.threads)
        stms)
    set_mixes

let tree_range p = if p.big then 100_000 else 10_000

let figure2 p =
  Harness.Report.figure_header ~id:"Figure 2"
    ~title:"RAVL tree under 2PL-RW / 2PL-RW-Dist / 2PLSF (3 workloads)";
  run_set_series p ~structure:Harness.Driver.Ravl_s ~range:(tree_range p)
    Baselines.Registry.figure2

let figure3 p =
  Harness.Report.figure_header ~id:"Figure 3"
    ~title:"Linked-list set, all STMs (3 workloads)";
  run_set_series p ~structure:Harness.Driver.List_s ~range:512
    Baselines.Registry.main_set

let figure4 p =
  Harness.Report.figure_header ~id:"Figure 4"
    ~title:"Hash-set, all STMs (3 workloads)";
  run_set_series p ~structure:Harness.Driver.Hash_s ~range:10_000
    Baselines.Registry.main_set

let figure5 p =
  Harness.Report.figure_header ~id:"Figure 5"
    ~title:"Skip list, all STMs (3 workloads)";
  run_set_series p ~structure:Harness.Driver.Skip_s ~range:(tree_range p)
    Baselines.Registry.main_set

let figure6 p =
  Harness.Report.figure_header ~id:"Figure 6"
    ~title:"Zip tree, all STMs (3 workloads)";
  run_set_series p ~structure:Harness.Driver.Zip_s ~range:(tree_range p)
    Baselines.Registry.main_set

let figure7 p =
  Harness.Report.figure_header ~id:"Figure 7"
    ~title:"Relaxed AVL tree, all STMs (3 workloads)";
  run_set_series p ~structure:Harness.Driver.Ravl_s ~range:(tree_range p)
    Baselines.Registry.main_set

let figure8 p =
  Harness.Report.figure_header ~id:"Figure 8"
    ~title:"Key/value maps, 1%i/1%r/98%u on 100-byte records";
  Harness.Report.row_header ();
  List.iter
    (fun structure ->
      List.iter
        (fun stm ->
          List.iter
            (fun threads ->
              let row =
                averaged p (fun () ->
                    Harness.Driver.run_map_bench ~stm ~structure
                      ~range:(tree_range p) ~threads ~seconds:p.seconds)
              in
              Harness.Report.row row)
            p.threads)
        Baselines.Registry.main_set)
    [ Harness.Driver.Skip_s; Harness.Driver.Zip_s; Harness.Driver.Ravl_s ]

(* ---- Figure 10: pair-wise conflict latency (Figure 9 scheme) ---- *)

let latency_stms : (module Stm_intf.STM) list =
  [
    (module Twoplsf.Stm);
    (module Baselines.Tl2);
    (module Baselines.Tinystm);
    (module Baselines.Onefile);
  ]

let counters_per_pair = 20

let run_latency (module S : Stm_intf.STM) ~threads ~seconds =
  let pairs = (threads + 1) / 2 in
  let counters =
    Array.init (pairs * counters_per_pair) (fun _ -> S.tvar 0)
  in
  let lat = Harness.Latency.create ~threads in
  let worker i should_stop =
    let base = i / 2 * counters_per_pair in
    let ascending = i land 1 = 0 in
    let ops = ref 0 in
    while not (should_stop ()) do
      let t0 = Util.Clock.now () in
      S.atomic (fun tx ->
          if ascending then
            for j = 0 to counters_per_pair - 1 do
              S.write tx counters.(base + j) (S.read tx counters.(base + j) + 1)
            done
          else
            for j = counters_per_pair - 1 downto 0 do
              S.write tx counters.(base + j) (S.read tx counters.(base + j) + 1)
            done);
      Harness.Latency.record lat i (Util.Clock.now () -. t0);
      incr ops
    done;
    !ops
  in
  let res = Harness.Exec.run_timed ~threads ~seconds worker in
  let ps = Harness.Latency.percentiles lat [ 50.; 90.; 99. ] in
  let p50 = List.assoc 50. ps
  and p90 = List.assoc 90. ps
  and p99 = List.assoc 99. ps in
  Harness.Report.latency_row ~stm:S.name ~threads ~throughput:res.throughput
    ~p50 ~p90 ~p99 ~max:(Harness.Latency.max_latency lat)

let figure10 p =
  Harness.Report.figure_header ~id:"Figure 10"
    ~title:"Pair-wise conflicting counters: throughput and latency";
  Harness.Report.latency_header ();
  let thread_points =
    List.filter (fun t -> t >= 2) (List.map (fun t -> t / 2 * 2) p.threads)
    |> List.sort_uniq compare
  in
  let thread_points = if thread_points = [] then [ 2 ] else thread_points in
  List.iter
    (fun stm ->
      List.iter (fun threads -> run_latency stm ~threads ~seconds:p.seconds)
        thread_points)
    latency_stms

(* ---- Figure 11: YCSB in DBx1000 ---- *)

let figure11 p =
  Harness.Report.figure_header ~id:"Figure 11"
    ~title:"YCSB (DBx1000): high / medium / low contention";
  let num_rows = if p.big then 1_000_000 else 100_000 in
  Printf.printf "%-12s %8s %8s %14s %12s %10s\n%!" "cc" "theta" "threads"
    "txn/s" "commits" "aborts";
  List.iter
    (fun level ->
      let theta = Dbx.Ycsb.contention_theta level in
      let table = Dbx.Table.create ~num_rows in
      List.iter
        (fun (_, cc) ->
          List.iter
            (fun threads ->
              let r =
                Dbx.Runner.run ~cc ~table ~theta ~write_ratio:0.5 ~threads
                  ~seconds:p.seconds
              in
              Printf.printf "%-12s %8.2f %8d %14.0f %12d %10d\n%!" r.cc r.theta
                r.threads r.throughput r.commits r.aborts;
              let nonzero = List.filter (fun (_, n) -> n > 0) r.abort_reasons in
              if nonzero <> [] then
                Printf.printf "  aborts: %s\n%!"
                  (String.concat " "
                     (List.map
                        (fun (label, n) -> Printf.sprintf "%s=%d" label n)
                        nonzero));
              let phases = Harness.Report.phase_breakdown r.telemetry in
              if phases <> "" then Printf.printf "  phases: %s\n%!" phases)
            p.threads)
        Dbx.Runner.ccs)
    [ `High; `Medium; `Low ]

(* ---- Ablation A1: on-conflict clock vs per-transaction clock ---- *)

let figure12 p =
  Harness.Report.figure_header ~id:"Ablation A1"
    ~title:"2PLSF (clock on conflict) vs 2PL Wait-Or-Die (clock per txn)";
  Harness.Report.row_header ();
  let stms : (module Stm_intf.STM) list =
    [ (module Twoplsf.Stm); (module Baselines.Wait_or_die) ]
  in
  List.iter
    (fun stm ->
      List.iter
        (fun threads ->
          let row =
            Harness.Driver.run_map_bench ~stm ~structure:Harness.Driver.Ravl_s
              ~range:(tree_range p) ~threads ~seconds:p.seconds
          in
          Harness.Report.row row)
        p.threads)
    stms

(* ---- Ablation A3: write-through (undo) vs write-back (redo) 2PLSF ---- *)

let figure13 p =
  Harness.Report.figure_header ~id:"Ablation A3"
    ~title:"2PLSF write-through (undo) vs write-back eager (WB) vs deferred (WBD)";
  Harness.Report.row_header ();
  let stms : (module Stm_intf.STM) list =
    [ (module Twoplsf.Stm); (module Twoplsf.Stm_wb); (module Twoplsf.Stm_wbd) ]
  in
  List.iter
    (fun stm ->
      List.iter
        (fun threads ->
          Harness.Report.row
            (Harness.Driver.run_set_bench ~stm ~structure:Harness.Driver.Ravl_s
               ~mix:Harness.Workload.write_heavy ~range:(tree_range p) ~threads
               ~seconds:p.seconds);
          Harness.Report.row
            (Harness.Driver.run_map_bench ~stm ~structure:Harness.Driver.Ravl_s
               ~range:(tree_range p) ~threads ~seconds:p.seconds))
        p.threads)
    stms

(* ---- Ablation A5: YCSB tail latency (§5's low-tail-latency claim) ---- *)

let figure15 p =
  Harness.Report.figure_header ~id:"Ablation A5"
    ~title:"YCSB tail latency under high contention (theta = 0.9)";
  Harness.Report.latency_header ();
  let num_rows = if p.big then 1_000_000 else 100_000 in
  let table = Dbx.Table.create ~num_rows in
  List.iter
    (fun (_, cc) ->
      List.iter
        (fun threads ->
          let r =
            Dbx.Runner.run_with_latency ~cc ~table ~theta:0.9 ~write_ratio:0.5
              ~threads ~seconds:p.seconds
          in
          Harness.Report.latency_row ~stm:r.base.cc ~threads
            ~throughput:r.base.throughput ~p50:r.p50 ~p90:r.p90 ~p99:r.p99
            ~max:r.max_latency)
        p.threads)
    Dbx.Runner.ccs

(* ---- Ablation A4: the price of opacity (§3.5) ---- *)

let figure14 p =
  Harness.Report.figure_header ~id:"Ablation A4"
    ~title:"Price of opacity: 2PLSF / TL2 (opaque) vs TicToc-STM (serializable only)";
  Harness.Report.row_header ();
  let stms : (module Stm_intf.STM) list =
    [ (module Twoplsf.Stm); (module Baselines.Tl2); (module Baselines.Tictoc_stm) ]
  in
  List.iter
    (fun mix ->
      List.iter
        (fun stm ->
          List.iter
            (fun threads ->
              Harness.Report.row
                (Harness.Driver.run_set_bench ~stm
                   ~structure:Harness.Driver.Hash_s ~mix ~range:10_000 ~threads
                   ~seconds:p.seconds))
            p.threads)
        stms)
    [ Harness.Workload.write_heavy; Harness.Workload.read_mostly ]

let all : (int * string * (params -> unit)) list =
  [
    (2, "RAVL under three 2PL variants", figure2);
    (3, "linked-list set", figure3);
    (4, "hash set", figure4);
    (5, "skip list", figure5);
    (6, "zip tree", figure6);
    (7, "relaxed AVL tree", figure7);
    (8, "map update workload", figure8);
    (10, "pairwise-conflict latency", figure10);
    (11, "YCSB / DBx1000", figure11);
    (12, "ablation: conflict clock", figure12);
    (13, "ablation: undo vs redo log", figure13);
    (14, "ablation: price of opacity", figure14);
    (15, "ablation: YCSB tail latency", figure15);
  ]
