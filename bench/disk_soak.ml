(* Disk-fault soak (--disk-soak): run the durable conserved-transfer
   workload entirely in-process against the simulated block device
   ([Sim_fs]) wrapped in seeded fault injection ([Wal_io.faulty]), and
   verify that no injected storage failure — transient or permanent EIO,
   ENOSPC, short writes, failed fsyncs — ever produces a false
   durability acknowledgement or a conservation violation.

   The cycle matrix walks fault class x crash: every class runs once
   without a crash (the engine either finishes cleanly or degrades to
   read-only, and the live log must recover exactly) and once with a
   mid-run snapshot that is then crash-materialized M ways
   (ALICE-style: per-sector tearing and reordering of everything
   unsynced, per-op keep/drop of pending namespace changes — see
   [Sim_fs.crash]).  Each materialization must recover with

   - conservation: recovered balances sum to rows * 1000;
   - no false acks: the recovered max LSN covers every LSN the engine
     acknowledged as durable before the snapshot was taken
     ([Wal.wait_durable] returned, i.e. the fsync completed, i.e. the
     bytes were in the device's synced state when the "power" failed);
   - determinism: replaying the same log twice yields byte-identical
     tables;
   - LSN monotonicity across the surviving segments.

   Permanent failures additionally must flip the engine into typed
   read-only mode ([Stm_intf.Degraded_read_only]) with reads still
   serving — the run asserts degradation was both observed and
   survived at least once across the matrix. *)

module Wal = Twoplsf_wal.Wal
module Wal_io = Twoplsf_wal.Wal_io
module Sim_fs = Twoplsf_wal.Sim_fs
module Record = Twoplsf_wal.Record

let init_balance = 1_000

(* The WAL directory inside the simulated filesystem. *)
let sim_dir = "wal"

type fault = F_none | F_eio | F_eio_perm | F_enospc | F_short | F_fsync

let fault_classes = [| F_none; F_eio; F_eio_perm; F_enospc; F_short; F_fsync |]

let fault_name = function
  | F_none -> "none"
  | F_eio -> "eio-transient"
  | F_eio_perm -> "eio-permanent"
  | F_enospc -> "enospc"
  | F_short -> "short-write"
  | F_fsync -> "fsync-fail"

(* Rates are chosen so each ~0.3s cycle sees multiple injections without
   drowning: transient EIO heals under the WAL's capped backoff, the
   permanent class kills the device roughly every third injected error,
   the capacity cap trips after ~a thousand commit records, and fsync
   failures are rare but fatal by contract (fsyncgate: never retried). *)
let fault_io ~seed fault base =
  let wrap cfg = Wal_io.faulty cfg base in
  match fault with
  | F_none -> base
  | F_eio -> wrap (Wal_io.fault_config ~seed ~write_eio_ppm:40_000 ())
  | F_eio_perm ->
      wrap
        (Wal_io.fault_config ~seed ~write_eio_ppm:25_000 ~meta_eio_ppm:8_000
           ~permanent_ppm:300_000 ())
  | F_enospc ->
      wrap (Wal_io.fault_config ~seed ~enospc_after_bytes:(160 * 1024) ())
  | F_short -> wrap (Wal_io.fault_config ~seed ~write_short_ppm:200_000 ())
  | F_fsync -> wrap (Wal_io.fault_config ~seed ~fsync_fail_ppm:20_000 ())

let make_table ~rows =
  let tbl = Dbx.Table.create ~num_rows:rows in
  for rid = 0 to rows - 1 do
    Dbx.Table.set_balance tbl rid init_balance
  done;
  tbl

(* ---- verification against one filesystem state ---- *)

(* Strictly increasing LSNs across the surviving segments, read through
   the VFS.  Runs after [Wal.recover] has truncated any torn/suspect
   tail, so a decode failure here is a real violation. *)
let scan_monotonic ~io ~dir =
  let last = ref 0 and ok = ref true in
  List.iter
    (fun (_, path) ->
      let data = Wal_io.read_file io path in
      let len = Bytes.length data in
      let pos = ref 0 in
      while !ok && !pos < len do
        match Record.decode data ~pos:!pos ~avail:(len - !pos) with
        | Ok (r, size) ->
            if r.Record.r_lsn <= !last then ok := false;
            last := r.Record.r_lsn;
            pos := !pos + size
        | Error _ ->
            ok := false;
            pos := len
      done)
    (Wal.segments ~io ~dir ());
  !ok

(* Recover [dir] through [io] onto a fresh table and check the four
   invariants.  [acked_floor] is the highest LSN the engine acknowledged
   as durable before this filesystem state was captured: recovering
   anything less is a false durability ack. *)
let verify_fs ~io ~rows ~acked_floor =
  let t1 = make_table ~rows in
  match Wal.recover ~io ~dir:sim_dir (Dbx.Cc_2plsf.wal_store t1) with
  | exception Wal.Corrupt msg -> Error ("recovery refused the log: " ^ msg)
  | exception Wal_io.Io_error { op; path; error; _ } ->
      Error
        (Printf.sprintf "recovery I/O failed: %s %s: %s" op path
           (Unix.error_message error))
  | recovery ->
      let sum = ref 0 in
      for rid = 0 to rows - 1 do
        sum := !sum + Dbx.Table.balance t1 rid
      done;
      if !sum <> rows * init_balance then
        Error
          (Printf.sprintf "conservation violated: sum %d, expected %d" !sum
             (rows * init_balance))
      else if recovery.Wal.r_max_lsn < acked_floor then
        Error
          (Printf.sprintf
             "FALSE DURABILITY ACK: recovered max LSN %d < acked LSN %d"
             recovery.Wal.r_max_lsn acked_floor)
      else begin
        let t2 = make_table ~rows in
        let _ = Wal.recover ~io ~dir:sim_dir (Dbx.Cc_2plsf.wal_store t2) in
        let idem = ref true in
        for rid = 0 to rows - 1 do
          if
            not
              (Bytes.equal
                 (Dbx.Table.payload t1 rid)
                 (Dbx.Table.payload t2 rid))
          then idem := false
        done;
        if not !idem then
          Error "replay not idempotent: second recovery diverged"
        else if not (scan_monotonic ~io ~dir:sim_dir) then
          Error "LSN order violated in surviving log"
        else Ok recovery
      end

(* ---- one cycle ---- *)

type cycle_out = {
  o_fault : fault;
  o_crash : bool;
  o_commits : int;
  o_degraded : bool;
  o_readonly_served : bool;
  o_open_failed : bool;
  o_suspects : int;
  o_violations : string list;
}

let read_txn =
  { Dbx.Ycsb.keys = [| 0; 1 |]; ops = [| Dbx.Ycsb.Read; Dbx.Ycsb.Read |] }

let cas_max a v =
  let rec go () =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then go ()
  in
  go ()

let run_cycle ~cycle ~seed ~threads ~rows ~seconds ~mats =
  let fault = fault_classes.(cycle mod Array.length fault_classes) in
  let crash = cycle mod (2 * Array.length fault_classes) >= Array.length fault_classes in
  let cseed = seed + (cycle * 65537) in
  let fs = Sim_fs.create () in
  let io = fault_io ~seed:cseed fault (Sim_fs.io fs) in
  let tbl = make_table ~rows in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  let base =
    {
      o_fault = fault;
      o_crash = crash;
      o_commits = 0;
      o_degraded = false;
      o_readonly_served = false;
      o_open_failed = false;
      o_suspects = 0;
      o_violations = [];
    }
  in
  match
    Wal.create (Wal.config ~io ~dir:sim_dir ~ckpt_every_bytes:(1 lsl 14) ()) store
  with
  | exception (Wal_io.Io_error _ | Wal.Degraded _) ->
      (* The device died before the log even opened: nothing was ever
         acknowledged, so there is nothing to verify. *)
      { base with o_open_failed = true }
  | w ->
      let cc = Dbx.Cc_2plsf.create tbl in
      Dbx.Cc_2plsf.set_wal cc (Some w);
      let commits = Atomic.make 0 in
      (* Highest LSN known durably acknowledged (monotone floor). *)
      let acked = Atomic.make 0 in
      (* Mid-run snapshot for crash materialization: (fs copy, acked at
         capture).  Taken by worker 0 once enough commits have durable
         acks for the false-ack check to have teeth. *)
      let snap = Atomic.make None in
      let degraded_seen = Atomic.make false in
      let readonly_served = Atomic.make false in
      let take_snapshot () =
        if Atomic.get snap = None then begin
          let floor = Atomic.get acked in
          Atomic.set snap (Some (Sim_fs.snapshot fs, floor))
        end
      in
      let worker i should_stop =
        let rng = Util.Sprng.create (cseed + (i * 7919) + 1) in
        let tid = Util.Tid.get () in
        let ops = ref 0 in
        (try
           while not (should_stop ()) do
             if i = 0 && crash && Atomic.get commits > rows then take_snapshot ();
             let a = Util.Sprng.int rng rows in
             let b = Util.Sprng.int rng rows in
             let amt = 1 + Util.Sprng.int rng 16 in
             ignore (Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:a ~dst:b ~amount:amt);
             Atomic.incr commits;
             cas_max acked (Wal.flushed_lsn w);
             incr ops
           done
         with Stm_intf.Degraded_read_only _ ->
           (* The device is gone: the engine flipped read-only.  Prove
              reads keep serving for the rest of the cycle. *)
           Atomic.set degraded_seen true;
           if i = 0 && crash then take_snapshot ();
           while not (should_stop ()) do
             ignore (Dbx.Cc_2plsf.execute cc ~tid read_txn);
             Atomic.set readonly_served true
           done);
        !ops
      in
      ignore (Harness.Exec.run_timed ~threads ~seconds worker);
      Dbx.Cc_2plsf.set_wal cc None;
      Wal.stop w;
      let degraded = Atomic.get degraded_seen || Wal.degraded w <> None in
      let violations = ref [] in
      let suspects = ref 0 in
      let note = function
        | Ok r ->
            suspects := !suspects + r.Wal.r_suspect_records
        | Error msg -> violations := msg :: !violations
      in
      (* Live state: after [Wal.stop] everything acknowledged reached the
         device (or the log poisoned itself first), so the live log must
         recover cleanly with the final acked floor. *)
      note (verify_fs ~io:(Sim_fs.io fs) ~rows ~acked_floor:(Atomic.get acked));
      if crash then begin
        (* Crash-materialize the mid-run snapshot M ways; fall back to
           the final state when the run was too short to snapshot. *)
        let sfs, floor =
          match Atomic.get snap with
          | Some (s, f) -> (s, f)
          | None -> (fs, Atomic.get acked)
        in
        for m = 0 to mats - 1 do
          let mseed = cseed + 0x51AB + (m * 257) in
          let crashed = Sim_fs.crash sfs ~seed:mseed in
          match verify_fs ~io:(Sim_fs.io crashed) ~rows ~acked_floor:floor with
          | Ok r -> suspects := !suspects + r.Wal.r_suspect_records
          | Error msg ->
              violations :=
                Printf.sprintf "materialization %d (seed %#x): %s" m mseed msg
                :: !violations
        done
      end;
      {
        base with
        o_commits = Atomic.get commits;
        o_degraded = degraded;
        o_readonly_served = Atomic.get readonly_served;
        o_suspects = !suspects;
        o_violations = List.rev !violations;
      }

(* ---- driver ---- *)

let run ~cycles ~threads ~rows ~seconds ~mats ~seed =
  Printf.printf
    "disk soak: %d cycles (%d fault classes x crash/no-crash), %d threads, \
     %d rows, %.2fs/cycle, %d materializations/crash-cycle\n%!"
    cycles
    (Array.length fault_classes)
    threads rows seconds mats;
  let failures = ref 0 in
  let degraded_cycles = ref 0 and readonly_served = ref 0 in
  let open_failed = ref 0 and commits = ref 0 and suspects = ref 0 in
  let crash_cycles = ref 0 in
  for cycle = 0 to cycles - 1 do
    let o = run_cycle ~cycle ~seed ~threads ~rows ~seconds ~mats in
    if o.o_crash then incr crash_cycles;
    if o.o_degraded then incr degraded_cycles;
    if o.o_readonly_served then incr readonly_served;
    if o.o_open_failed then incr open_failed;
    commits := !commits + o.o_commits;
    suspects := !suspects + o.o_suspects;
    failures := !failures + List.length o.o_violations;
    Printf.printf "  cycle %3d  %-14s %-8s commits=%-7d %s%s%s\n%!" cycle
      (fault_name o.o_fault)
      (if o.o_crash then "crash" else "live")
      o.o_commits
      (if o.o_open_failed then "open-failed "
       else if o.o_degraded then
         if o.o_readonly_served then "degraded(reads-served) "
         else "degraded "
       else "ok ")
      (if o.o_suspects > 0 then Printf.sprintf "suspect=%d " o.o_suspects
       else "")
      (match o.o_violations with
      | [] -> ""
      | msgs -> "VIOLATION: " ^ String.concat "; " msgs);
  done;
  (* The matrix includes permanent-failure and capacity classes: a run
     where the engine never degraded (or degraded without serving reads)
     means the read-only contract went unexercised — fail loudly. *)
  if !degraded_cycles = 0 then begin
    incr failures;
    Printf.printf "  VIOLATION: no cycle degraded to read-only (matrix must \
                   exercise permanent failure)\n%!"
  end
  else if !readonly_served = 0 then begin
    incr failures;
    Printf.printf
      "  VIOLATION: degraded engine never served a read-only transaction\n%!"
  end;
  Printf.printf
    "disk soak summary: %d cycles (%d crash), %d commits, %d degraded \
     (%d served reads), %d open-failed, %d suspect records, %d violations\n%!"
    cycles !crash_cycles !commits !degraded_cycles !readonly_served
    !open_failed !suspects !failures;
  Harness.Bench_artifact.record_wal
    [
      ("disk_cycles", cycles);
      ("disk_crash_cycles", !crash_cycles);
      ("disk_materializations", !crash_cycles * mats);
      ("disk_commits", !commits);
      ("disk_degraded", !degraded_cycles);
      ("disk_readonly_served", !readonly_served);
      ("disk_open_failed", !open_failed);
      ("disk_suspect_records", !suspects);
      ("disk_violations", !failures);
    ];
  !failures
