(* Benchmark entry point: regenerates every figure of the paper's
   evaluation (Figures 2-8, 10, 11 plus the DESIGN.md ablation) and runs
   the Bechamel per-operation suite.

     dune exec bench/main.exe                 # everything, default params
     dune exec bench/main.exe -- --figure 11  # one figure
     dune exec bench/main.exe -- --quick      # fast smoke pass
     dune exec bench/main.exe -- --threads 1,2,4,8 --seconds 1.0 --big

   This host has a single hardware core: thread sweeps measure
   concurrency-control behaviour under OS interleaving, not parallel
   speedup (DESIGN.md §3.1). *)

let parse_threads s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

let () =
  let figure = ref 0 in
  let threads = ref [ 1; 2; 4 ] in
  let seconds = ref 0.4 in
  let big = ref false in
  let quick = ref false in
  let no_bechamel = ref false in
  let csv = ref "" in
  let runs = ref 1 in
  let telemetry = ref false in
  let trace = ref "" in
  let telemetry_out = ref "telemetry.json" in
  let watchdog = ref false in
  let monitor_interval = ref 100 in
  let monitor_out = ref "" in
  let monitor_console = ref false in
  let chaos = ref false in
  let chaos_seed = ref 0 in
  let soak = ref 0.0 in
  let soak_stms = ref "" in
  let max_restarts = ref 0 in
  let overload = ref 0.0 in
  let overload_stms = ref "" in
  let overload_threads = ref 0 in
  let zipf_theta = ref 0.9 in
  let deadline_ms = ref 0.0 in
  let cm_name = ref "paper" in
  let admission = ref false in
  let fallback = ref false in
  let no_fallback = ref false in
  let bench_out = ref "" in
  let no_bench_out = ref false in
  let metrics_port = ref (-1) in
  let conflict_map = ref false in
  let explore = ref 0 in
  let crash_soak = ref 0 in
  let crash_dir = ref "wal-crash-soak" in
  let crash_rows = ref 64 in
  let crash_threads = ref 4 in
  let crash_seconds = ref 1.0 in
  (* Hidden flags of the re-exec'd crash-soak child. *)
  let crash_child = ref "" in
  let crash_site = ref (-1) in
  let crash_after = ref 0 in
  let crash_seed = ref 0 in
  let disk_soak = ref 0 in
  let disk_rows = ref 48 in
  let disk_threads = ref 4 in
  let disk_seconds = ref 0.35 in
  let disk_mats = ref 5 in
  let disk_seed = ref 0 in
  let spec =
    [
      ("--figure", Arg.Set_int figure, "N  run only figure N (2-8, 10-12)");
      ( "--threads",
        Arg.String (fun s -> threads := parse_threads s),
        "LIST  comma-separated thread counts (default 1,2,4)" );
      ( "--seconds",
        Arg.Set_float seconds,
        "S  measured seconds per data point (default 0.4)" );
      ("--big", Arg.Set big, " paper-scale key ranges (10x larger)");
      ("--quick", Arg.Set quick, " fast smoke pass (threads 1,2; 0.15s)");
      ("--no-bechamel", Arg.Set no_bechamel, " skip the per-op suite");
      ("--csv", Arg.Set_string csv, "FILE  also write data rows as CSV");
      ( "--runs",
        Arg.Set_int runs,
        "N  average each set/map data point over N runs (default 1; paper: 5)"
      );
      ( "--telemetry",
        Arg.Set telemetry,
        " enable abort-reason counters and wait/latency histograms" );
      ( "--trace",
        Arg.Set_string trace,
        "FILE  write a Chrome trace-event JSON (implies --telemetry)" );
      ( "--telemetry-out",
        Arg.Set_string telemetry_out,
        "FILE  telemetry JSON dump path (default telemetry.json)" );
      ( "--watchdog",
        Arg.Set watchdog,
        " run the runtime-verification watchdog (deadlock / starvation / \
         mutual-exclusion checks); exits non-zero on any invariant \
         violation" );
      ( "--monitor-interval",
        Arg.Set_int monitor_interval,
        "MS  watchdog/monitor sampling period in ms (default 100)" );
      ( "--monitor-out",
        Arg.Set_string monitor_out,
        "FILE  stream live JSONL monitor ticks to FILE (implies \
         --telemetry)" );
      ( "--monitor-console",
        Arg.Set monitor_console,
        " one-line live dashboard on stderr (implies --telemetry)" );
      ( "--chaos",
        Arg.Set chaos,
        " enable seeded fault injection (delays, yields, spurious restarts, \
         injected exceptions, victim stalls) for the whole run" );
      ( "--chaos-seed",
        Arg.Set_int chaos_seed,
        "N  chaos PRNG base seed (implies --chaos; default 0xC4A05)" );
      ( "--soak",
        Arg.Set_float soak,
        "S  chaos soak mode: S seconds per STM of transfer workload under \
         injection, then conservation + leaked-lock checks (implies \
         --chaos; skips figures and bechamel)" );
      ( "--soak-stms",
        Arg.Set_string soak_stms,
        "LIST  comma-separated STM names to soak (default: all)" );
      ( "--max-restarts",
        Arg.Set_int max_restarts,
        "N  raise the typed Starved error after N consecutive restarts of \
         one transaction (0 = unbounded, the default)" );
      ( "--overload",
        Arg.Set_float overload,
        "S  overload mode: S seconds per STM of hot-key Zipfian transfers \
         with more threads than cores and a periodic straggler; reports \
         the completion-time tail (p50/p99/p999) and runs conservation + \
         leaked-lock checks (skips figures and bechamel; turns the \
         serial-irrevocable fallback on unless --no-fallback)" );
      ( "--overload-stms",
        Arg.Set_string overload_stms,
        "LIST  comma-separated STM names for --overload (default: all)" );
      ( "--overload-threads",
        Arg.Set_int overload_threads,
        "N  worker count for --overload (default: 2x recommended domains)" );
      ( "--zipf-theta",
        Arg.Set_float zipf_theta,
        "T  Zipfian skew of the overload key distribution (default 0.9)" );
      ( "--deadline-ms",
        Arg.Set_float deadline_ms,
        "MS  per-transaction completion budget; a transaction that blows \
         it restarts once with a fresh budget, then escalates (with the \
         fallback) or raises Deadline_exceeded (0 = none, the default)" );
      ( "--cm",
        Arg.Set_string cm_name,
        "P  contention manager: paper (each STM's native wait, the \
         default), backoff (capped exponential with per-thread jitter), \
         or hybrid (backoff then native)" );
      ( "--admission",
        Arg.Set admission,
        " AIMD admission gate on transaction entry: halves the concurrent-\
         transaction width when the abort rate spikes, recovers additively"
      );
      ( "--fallback",
        Arg.Set fallback,
        " escalate exhausted/late transactions through the serial-\
         irrevocable slow path instead of raising Starved / \
         Deadline_exceeded" );
      ( "--no-fallback",
        Arg.Set no_fallback,
        " force the fallback off (overrides the --overload default)" );
      ( "--bench-out",
        Arg.Set_string bench_out,
        "FILE  benchmark-artifact JSON path (default: first free \
         BENCH_<n>.json)" );
      ( "--no-bench-out",
        Arg.Set no_bench_out,
        " skip writing the benchmark artifact" );
      ( "--metrics-port",
        Arg.Set_int metrics_port,
        "PORT  serve OpenMetrics on http://127.0.0.1:PORT/metrics for the \
         duration of the run (0 = ephemeral port; implies --telemetry)" );
      ( "--conflict-map",
        Arg.Set conflict_map,
        " record per-lock hotspot attribution and abort provenance \
         (DESIGN.md §13) into the benchmark artifact; render with \
         bin/conflictmap.exe (implies --telemetry)" );
      ( "--explore",
        Arg.Set_int explore,
        "K  deterministic-schedule smoke: K PCT schedules per schedulable \
         STM on the account-transfer workload (DESIGN.md §14); any checker \
         violation fails the run" );
      ( "--crash-soak",
        Arg.Set_int crash_soak,
        "N  crash-recovery soak: N cycles of durable transfer workload in \
         a child process killed at a seeded WAL chaos site, then recover + \
         verify conservation, replay idempotence and LSN order (DESIGN.md \
         §15; skips figures and bechamel)" );
      ( "--crash-dir",
        Arg.Set_string crash_dir,
        "DIR  WAL directory for --crash-soak (default wal-crash-soak)" );
      ( "--crash-rows",
        Arg.Set_int crash_rows,
        "N  table rows for --crash-soak (default 64)" );
      ( "--crash-threads",
        Arg.Set_int crash_threads,
        "N  worker domains per crash-soak child (default 4)" );
      ( "--crash-seconds",
        Arg.Set_float crash_seconds,
        "S  per-cycle child time budget (default 1.0; the kill usually \
         fires far earlier)" );
      ( "--disk-soak",
        Arg.Set_int disk_soak,
        "N  storage-fault soak: N in-process cycles of the durable \
         transfer workload on the simulated block device with seeded \
         fault injection (EIO / ENOSPC / short writes / fsync failure, \
         transient and permanent), crash-materializing mid-run snapshots \
         and verifying conservation, replay determinism, LSN order and \
         the absence of false durability acks on every one (DESIGN.md \
         §16; skips figures and bechamel)" );
      ( "--disk-rows",
        Arg.Set_int disk_rows,
        "N  table rows for --disk-soak (default 48)" );
      ( "--disk-threads",
        Arg.Set_int disk_threads,
        "N  worker domains for --disk-soak (default 4)" );
      ( "--disk-seconds",
        Arg.Set_float disk_seconds,
        "S  per-cycle time budget for --disk-soak (default 0.35)" );
      ( "--disk-mats",
        Arg.Set_int disk_mats,
        "M  crash materializations per crash cycle (default 5)" );
      ( "--disk-seed",
        Arg.Set_int disk_seed,
        "N  base seed for --disk-soak fault and crash draws (default \
         0xD15C)" );
      (* Internal: the crash-soak child re-exec (not for direct use). *)
      ("--crash-child", Arg.Set_string crash_child, "DIR  (internal)");
      ("--crash-site", Arg.Set_int crash_site, "CODE  (internal)");
      ("--crash-after", Arg.Set_int crash_after, "K  (internal)");
      ("--crash-seed", Arg.Set_int crash_seed, "N  (internal)");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "2PLSF benchmark harness — regenerates the paper's figures";
  if !quick then begin
    threads := [ 1; 2 ];
    seconds := 0.15
  end;
  ignore (Util.Tid.register ());
  (* Crash-soak child: run the durable workload until the armed kill
     fires ([Unix._exit], no cleanup) and touch nothing else — no
     telemetry, watchdog or artifacts in the throwaway process. *)
  if !crash_child <> "" then begin
    Crash_soak.child ~dir:!crash_child ~site_code:!crash_site
      ~after:!crash_after ~seed:!crash_seed ~threads:!crash_threads
      ~rows:!crash_rows ~seconds:!crash_seconds;
    exit 0
  end;
  let monitoring = !monitor_out <> "" || !monitor_console in
  if !watchdog || monitoring || !metrics_port >= 0 || !conflict_map then
    telemetry := true;
  if !trace <> "" then Twoplsf_obs.Telemetry.enable_tracing ()
  else if !telemetry then Twoplsf_obs.Telemetry.enable ();
  if !conflict_map then begin
    Twoplsf_obs.Conflict.enable ();
    Twoplsf_obs.Monitor.add_gauges ~name:"conflict"
      Twoplsf_obs.Scope.conflict_gauges
  end;
  if !metrics_port >= 0 then begin
    match Twoplsf_obs.Exporter.start ~port:!metrics_port () with
    | port ->
        Printf.printf "OpenMetrics: http://127.0.0.1:%d/metrics\n%!" port
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "metrics exporter: cannot bind port %d: %s\n%!"
          !metrics_port (Unix.error_message e);
        exit 1
  end;
  (* Start the watchdog before any lock table exists: tables register for
     introspection only when wait publication is already enabled. *)
  if !watchdog then
    Twoplsf_obs.Watchdog.start ~interval_ms:!monitor_interval ();
  if monitoring then
    Twoplsf_obs.Monitor.start ~interval_ms:!monitor_interval
      ?out_path:(if !monitor_out = "" then None else Some !monitor_out)
      ~console:!monitor_console ();
  if !csv <> "" then Harness.Report.set_csv !csv;
  (* One immutable policy record for every overload knob, installed before
     any worker domain exists (DESIGN.md §11). *)
  let policy =
    {
      Stm_intf.default_policy with
      Stm_intf.max_restarts = !max_restarts;
      deadline_ns = int_of_float (!deadline_ms *. 1e6);
      cm = Twoplsf_cm.Cm.choice_of_name !cm_name;
      admission = !admission;
      fallback =
        (if !no_fallback then false else !fallback || !overload > 0.0);
    }
  in
  Twoplsf_cm.Cm.install policy;
  if policy.Stm_intf.admission then Twoplsf_cm.Admission.install ();
  let module Chaos = Twoplsf_chaos.Chaos in
  let chaos_on = !chaos || !chaos_seed <> 0 || !soak > 0.0 in
  if chaos_on then begin
    let cfg =
      if !chaos_seed <> 0 then { Chaos.default with Chaos.seed = !chaos_seed }
      else Chaos.default
    in
    Chaos.enable ~config:cfg ();
    Printf.printf "Chaos: enabled, seed=0x%X\n%!" (Chaos.seed ())
  end;
  let soak_failures = ref 0 in
  let overload_failures = ref 0 in
  let explore_failures = ref 0 in
  let crash_failures = ref 0 in
  let disk_failures = ref 0 in
  if !disk_soak > 0 then
    disk_failures :=
      Disk_soak.run ~cycles:!disk_soak ~threads:!disk_threads
        ~rows:!disk_rows ~seconds:!disk_seconds ~mats:!disk_mats
        ~seed:(if !disk_seed <> 0 then !disk_seed else 0xD15C)
  else if !crash_soak > 0 then
    crash_failures :=
      Crash_soak.run ~cycles:!crash_soak ~threads:!crash_threads
        ~rows:!crash_rows ~seconds:!crash_seconds
        ~seed:(if !chaos_seed <> 0 then !chaos_seed else 0xC4A05)
        ~dir:!crash_dir
  else if !explore > 0 then begin
    let module Sc = Twoplsf_sched.Scenario in
    let module Ex = Twoplsf_sched.Explore in
    let module Tr = Twoplsf_sched.Trace in
    Printf.printf "Schedule exploration smoke: %d PCT schedules per STM\n%!"
      !explore;
    List.iter
      (fun stm ->
        let params =
          {
            Ex.default_params with
            Ex.scenario = { Tr.default_scenario with Tr.stm };
            iters = !explore;
            do_shrink = false;
          }
        in
        let r = Ex.search params in
        match r.Ex.found with
        | None ->
            Printf.printf "  %-14s ok (%d schedules, %d decisions)\n%!" stm
              r.Ex.iterations r.Ex.total_decisions
        | Some f ->
            incr explore_failures;
            Printf.printf "  %-14s VIOLATION at iteration %d: %s\n%!" stm
              f.Ex.iteration
              (Sc.failure_to_string f.Ex.failure))
      Sc.supported
  end
  else if !overload > 0.0 then begin
    let stms =
      if !overload_stms = "" then Baselines.Registry.all
      else
        String.split_on_char ',' !overload_stms
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map Baselines.Registry.find
    in
    (* Oversubscribe on purpose: overload behaviour only shows when the
       scheduler preempts lock holders. *)
    let threads =
      if !overload_threads > 0 then !overload_threads
      else 2 * Domain.recommended_domain_count ()
    in
    overload_failures :=
      Overload.run ~stms ~threads ~seconds:!overload ~theta:!zipf_theta
  end
  else if !soak > 0.0 then begin
    let stms =
      if !soak_stms = "" then Baselines.Registry.all
      else
        String.split_on_char ',' !soak_stms
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map Baselines.Registry.find
    in
    let soak_threads = List.fold_left Stdlib.max 1 !threads in
    Printf.printf "Chaos soak: %.1fs per STM, threads=%d, max-restarts=%d\n%!"
      !soak soak_threads !max_restarts;
    soak_failures := Soak.run ~stms ~threads:soak_threads ~seconds:!soak;
    List.iter
      (fun (cls, n) -> Printf.printf "  chaos %-9s %d\n%!" cls n)
      (Chaos.counts ())
  end
  else begin
    let p =
      { Figures.threads = !threads; seconds = !seconds; big = !big; runs = !runs }
    in
    Printf.printf
      "2PLSF reproduction benchmarks | threads=%s seconds=%.2f big=%b\n%!"
      (String.concat "," (List.map string_of_int p.threads))
      p.seconds p.big;
    if not !no_bechamel then Bechamel_suite.run ();
    let selected =
      if !figure = 0 then Figures.all
      else
        List.filter (fun (n, _, _) -> n = !figure) Figures.all
    in
    if selected = [] then begin
      Printf.eprintf "unknown figure %d\n" !figure;
      exit 1
    end;
    List.iter (fun (_, _, f) -> f p) selected
  end;
  Harness.Report.close_csv ();
  if (not !no_bench_out) && Harness.Bench_artifact.any () then begin
    let path =
      if !bench_out <> "" then !bench_out
      else Harness.Bench_artifact.default_path ()
    in
    let flags =
      String.concat " " (List.tl (Array.to_list Sys.argv))
    in
    Harness.Bench_artifact.write ~path ~flags;
    Printf.printf "\nBenchmark artifact: %s\n%!" path;
    if !conflict_map then
      Printf.printf "Conflict map: render with `conflictmap %s`\n%!" path
  end;
  if Twoplsf_obs.Exporter.running () then Twoplsf_obs.Exporter.stop ();
  if monitoring then begin
    Twoplsf_obs.Monitor.stop ();
    if !monitor_out <> "" then
      Printf.printf "\nMonitor stream: %s\n%!" !monitor_out
  end;
  if Twoplsf_obs.Telemetry.enabled () then begin
    Harness.Report.write_telemetry_json ~path:!telemetry_out;
    Printf.printf "\nTelemetry dump: %s\n%!" !telemetry_out
  end;
  if !trace <> "" then begin
    Twoplsf_obs.Tracer.export ~path:!trace;
    Printf.printf "Chrome trace: %s (load in Perfetto / chrome://tracing)\n%!"
      !trace
  end;
  if !watchdog then begin
    let module W = Twoplsf_obs.Watchdog in
    W.stop ();
    Printf.printf
      "\nWatchdog: %d ticks, %d invariant violations, %d starvation suspects\n%!"
      (W.ticks ()) (W.violations ())
      (W.starvation_reports ());
    List.iter (fun r -> Printf.printf "  %s\n%!" (W.report_to_string r)) (W.reports ());
    if W.violations () > 0 then begin
      prerr_endline "watchdog: invariant violation detected — failing the run";
      exit 1
    end
  end;
  if !soak_failures > 0 then begin
    Printf.eprintf "chaos soak: %d STM(s) failed an invariant\n" !soak_failures;
    exit 1
  end;
  if !overload_failures > 0 then begin
    Printf.eprintf "overload: %d STM(s) failed an invariant\n"
      !overload_failures;
    exit 1
  end;
  if !explore_failures > 0 then begin
    Printf.eprintf "explore: %d STM(s) failed a scheduled-run check\n"
      !explore_failures;
    exit 1
  end;
  if !crash_failures > 0 then begin
    Printf.eprintf
      "crash soak: %d cycle(s) violated a durability invariant\n"
      !crash_failures;
    exit 1
  end;
  if !disk_failures > 0 then begin
    Printf.eprintf
      "disk soak: %d storage-fault violation(s) (conservation, false ack, \
       replay divergence or missing degradation)\n"
      !disk_failures;
    exit 1
  end;
  print_endline "\nDone. See EXPERIMENTS.md for paper-vs-measured notes."
