(* Crash–recovery soak (--crash-soak): repeatedly run the durable DBx
   conserved-transfer workload in a child process, kill the child at a
   seeded WAL chaos site (SIGKILL-equivalent: [Unix._exit] from inside
   the instrumentation point, no cleanup, no flush), recover the log in
   the parent and verify the three durability invariants:

   - conservation: every committed transfer moves balance between rows,
     so any prefix-consistent recovered image sums to rows * 1000;
   - determinism / idempotence: recovering the same log twice onto two
     fresh tables yields byte-identical images;
   - prefix integrity: after recovery's torn-tail truncation, every
     surviving record carries a strictly increasing LSN in segment
     order (group commit flushes a contiguous LSN prefix).

   The child is a re-exec of this very binary (bench/main.exe) with the
   hidden --crash-child flags — OCaml domains make [Unix.fork] unsafe,
   and a fresh exec is exactly what a post-crash restart looks like.
   The WAL directory persists across cycles (each child recovers its
   predecessor's state before continuing), with a fresh generation
   every 10 cycles so segment chains never grow without bound.  Exit
   accounting mirrors --soak: the caller exits non-zero on any
   violation. *)

module Chaos = Twoplsf_chaos.Chaos
module Wal = Twoplsf_wal.Wal
module Record = Twoplsf_wal.Record

let init_balance = 1_000

(* One cycle per site, round-robin, so a full run exercises every WAL
   crash point: the append and fsync paths inside the writer domain,
   both checkpoint windows, and the three commit-window positions
   (before the log append, between append and lock release, and after
   release but before the durability wait). *)
let kill_sites =
  [|
    Chaos.Wal_append;
    Chaos.Wal_fsync;
    Chaos.Wal_checkpoint;
    Chaos.Commit_durable_pre;
    Chaos.Commit_durable_mid;
    Chaos.Commit_durable_post;
  |]

let make_table ~rows =
  let tbl = Dbx.Table.create ~num_rows:rows in
  for rid = 0 to rows - 1 do
    Dbx.Table.set_balance tbl rid init_balance
  done;
  tbl

(* ---- child: run the workload until killed (or until the clock runs
   out, a clean cycle) ---- *)

let child ~dir ~site_code ~after ~seed ~threads ~rows ~seconds =
  let tbl = make_table ~rows in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  let next_lsn =
    if Sys.file_exists dir then (Wal.recover ~strict:true ~dir store).Wal.r_next_lsn
    else 1
  in
  (* Quiet config: sync points fire (so the armed kill can trigger) but
     inject no delays or faults — the only chaos here is death. *)
  Chaos.enable ~config:Chaos.quiet ();
  Chaos.arm_kill ~site:(Chaos.Site.of_code site_code) ~after;
  (* Low checkpoint threshold (~70 records at 64 rows): each cycle
     completes several fuzzy checkpoints and segment truncations before
     the kill fires, so the image/truncate paths see as much crash
     traffic as the append path. *)
  let w =
    Wal.create ~next_lsn (Wal.config ~dir ~ckpt_every_bytes:(1 lsl 14) ()) store
  in
  let cc = Dbx.Cc_2plsf.create tbl in
  Dbx.Cc_2plsf.set_wal cc (Some w);
  Dbx.Wal_obs.register w;
  let worker i should_stop =
    let rng = Util.Sprng.create (seed + (i * 7919) + 1) in
    let tid = Util.Tid.get () in
    let ops = ref 0 in
    while not (should_stop ()) do
      let a = Util.Sprng.int rng rows in
      let b = Util.Sprng.int rng rows in
      let amt = 1 + Util.Sprng.int rng 16 in
      ignore (Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:a ~dst:b ~amount:amt);
      incr ops
    done;
    !ops
  in
  ignore (Harness.Exec.run_timed ~threads ~seconds worker);
  (* Reached only when the armed site never fired within the budget. *)
  Chaos.disarm_kill ();
  Dbx.Cc_2plsf.set_wal cc None;
  Wal.stop w;
  Dbx.Wal_obs.unregister ();
  Chaos.disable ()

(* ---- parent-side verification ---- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = Bytes.create len in
  really_input ic buf 0 len;
  close_in ic;
  buf

(* Strictly increasing LSNs across the whole surviving log, in segment
   order.  Runs after [Wal.recover] has truncated any torn tail, so a
   decode failure here is a real violation, not a tear. *)
let scan_monotonic ~dir =
  let last = ref 0 and ok = ref true in
  List.iter
    (fun (_, path) ->
      let data = read_file path in
      let len = Bytes.length data in
      let pos = ref 0 in
      while !ok && !pos < len do
        match Record.decode data ~pos:!pos ~avail:(len - !pos) with
        | Ok (r, size) ->
            if r.Record.r_lsn <= !last then ok := false;
            last := r.Record.r_lsn;
            pos := !pos + size
        | Error _ ->
            ok := false;
            pos := len
      done)
    (Wal.segments ~dir ());
  !ok

type verified = {
  recovery : Wal.recovery;
  sum : int;
}

let verify ~dir ~rows =
  let t1 = make_table ~rows in
  (* ~strict: a process kill cannot tear or reorder sectors (the page
     cache survives _exit), so a valid record after damaged bytes is
     real corruption here, not a legal crash state — recovery must
     refuse it rather than truncate (DESIGN.md §16). *)
  match Wal.recover ~strict:true ~dir (Dbx.Cc_2plsf.wal_store t1) with
  | exception Wal.Corrupt msg -> Error ("recovery refused the log: " ^ msg)
  | recovery ->
      let sum = ref 0 in
      for rid = 0 to rows - 1 do
        sum := !sum + Dbx.Table.balance t1 rid
      done;
      if !sum <> rows * init_balance then
        Error
          (Printf.sprintf "conservation violated: sum %d, expected %d" !sum
             (rows * init_balance))
      else begin
        let t2 = make_table ~rows in
        let _ = Wal.recover ~strict:true ~dir (Dbx.Cc_2plsf.wal_store t2) in
        let idem = ref true in
        for rid = 0 to rows - 1 do
          if
            not
              (Bytes.equal
                 (Dbx.Table.payload t1 rid)
                 (Dbx.Table.payload t2 rid))
          then idem := false
        done;
        if not !idem then Error "replay not idempotent: second recovery diverged"
        else if not (scan_monotonic ~dir) then
          Error "LSN order violated in surviving log"
        else Ok { recovery; sum = !sum }
      end

(* ---- parent: cycle driver ---- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let spawn_child ~dir ~site ~after ~seed ~threads ~rows ~seconds ~log =
  let args =
    [|
      Sys.executable_name;
      "--crash-child"; dir;
      "--crash-site"; string_of_int (Chaos.Site.code site);
      "--crash-after"; string_of_int after;
      "--crash-seed"; string_of_int seed;
      "--crash-threads"; string_of_int threads;
      "--crash-rows"; string_of_int rows;
      "--crash-seconds"; Printf.sprintf "%g" seconds;
    |]
  in
  let logfd = Unix.openfile log [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process Sys.executable_name args Unix.stdin logfd logfd
  in
  Unix.close logfd;
  snd (Unix.waitpid [] pid)

let run ~cycles ~threads ~rows ~seconds ~seed ~dir =
  rm_rf dir;
  let log = dir ^ ".child.log" in
  let nsites = Array.length kill_sites in
  let killed = Array.make nsites 0 in
  let clean = ref 0 and failures = ref 0 in
  let torn = ref 0 and replayed = ref 0 and records = ref 0 in
  let rng = Util.Sprng.create seed in
  Printf.printf
    "crash soak: %d cycles, %d threads, %d rows, %.2fs/cycle, dir=%s\n%!"
    cycles threads rows seconds dir;
  for cycle = 0 to cycles - 1 do
    if cycle > 0 && cycle mod 10 = 0 then rm_rf dir;
    let si = cycle mod nsites in
    let site = kill_sites.(si) in
    (* Arrival budgets: the commit/append/fsync sites fire once per
       transaction or batch (hundreds per cycle); checkpoints are rare
       (two arrivals each), so keep their countdown short. *)
    let after =
      match site with
      | Chaos.Wal_checkpoint -> 1 + Util.Sprng.int rng 4
      | _ -> 1 + Util.Sprng.int rng 250
    in
    let status =
      spawn_child ~dir ~site ~after ~seed:(seed + (cycle * 65537)) ~threads
        ~rows ~seconds ~log
    in
    let exit_tag =
      match status with
      | Unix.WEXITED c when c = Chaos.kill_exit_code ->
          killed.(si) <- killed.(si) + 1;
          "killed"
      | Unix.WEXITED 0 ->
          incr clean;
          "clean"
      | Unix.WEXITED c ->
          incr failures;
          Printf.sprintf "CHILD-EXIT-%d" c
      | Unix.WSIGNALED s ->
          incr failures;
          Printf.sprintf "CHILD-SIGNAL-%d" s
      | Unix.WSTOPPED s ->
          incr failures;
          Printf.sprintf "CHILD-STOPPED-%d" s
    in
    match verify ~dir ~rows with
    | Ok v ->
        let r = v.recovery in
        if r.Wal.r_torn_tail then incr torn;
        replayed := !replayed + r.Wal.r_replayed;
        records := !records + r.Wal.r_records;
        Printf.printf
          "  cycle %3d  %-19s after=%-4d %-14s lsn=%-8d records=%-6d \
           replayed=%-6d segs=%d%s%s\n%!"
          cycle
          (Chaos.Site.name site)
          after exit_tag r.Wal.r_max_lsn r.Wal.r_records r.Wal.r_replayed
          r.Wal.r_segments
          (if r.Wal.r_torn_tail then
             Printf.sprintf "  torn-tail(-%dB)" r.Wal.r_truncated_bytes
           else "")
          (if r.Wal.r_image_lsn > 0 then
             Printf.sprintf "  ckpt@%d" r.Wal.r_image_lsn
           else "")
    | Error msg ->
        incr failures;
        Printf.printf "  cycle %3d  %-19s after=%-4d %-14s VIOLATION: %s\n%!"
          cycle
          (Chaos.Site.name site)
          after exit_tag msg;
        (* A corrupt generation would fail every subsequent cycle for
           the same root cause; start fresh so each cycle is an
           independent trial. *)
        rm_rf dir
  done;
  let total_killed = Array.fold_left ( + ) 0 killed in
  Printf.printf "crash soak summary: %d cycles, %d killed (%s), %d clean, %d \
                 torn tails, %d records replayed, %d violations\n%!"
    cycles total_killed
    (String.concat " "
       (Array.to_list
          (Array.mapi
             (fun i n -> Printf.sprintf "%s=%d" (Chaos.Site.name kill_sites.(i)) n)
             killed)))
    !clean !torn !replayed !failures;
  Harness.Bench_artifact.record_wal
    ([
       ("crash_cycles", cycles);
       ("killed", total_killed);
       ("clean", !clean);
       ("torn_tails", !torn);
       ("records_seen", !records);
       ("records_replayed", !replayed);
       ("violations", !failures);
     ]
    @ Array.to_list
        (Array.mapi
           (fun i n ->
             let key =
               String.map
                 (fun c -> if c = '-' then '_' else c)
                 (Chaos.Site.name kill_sites.(i))
             in
             ("killed_" ^ key, n))
           killed));
  !failures
