(* Chaos soak (--soak): run each registry STM under the fault injector for
   a fixed duration, then assert the two robustness invariants the
   injector is built to break when any cleanup path is wrong:

   - conservation: the transfer workload keeps the total balance constant
     across every injected exception, spurious restart and stall;
   - zero leaked locks: the STM's lock table is empty at quiescence.

   Runs under --watchdog the PR-2 invariant checks (deadlock, mutual
   exclusion) sample the same interval concurrently. *)

module Chaos = Twoplsf_chaos.Chaos

type outcome = {
  stm : string;
  ops : int;
  injected_exns : int;
  starved : int;
  leaked : int;
  sum_ok : bool;
}

let n_accounts = 256
let initial_balance = 1_000

let soak_one (module S0 : Stm_intf.STM) ~threads ~seconds ~cm =
  let (module S : Stm_intf.STM) = Baselines.Registry.chaos_wrap (module S0) in
  let accounts = Array.init n_accounts (fun _ -> S.tvar initial_balance) in
  Twoplsf_obs.Monitor.set_phase
    (Printf.sprintf "soak/%s/cm=%s/t=%d" S.name
       (Twoplsf_cm.Cm.choice_name cm)
       threads);
  S.reset_stats ();
  let injected = Atomic.make 0 and starved_total = Atomic.make 0 in
  let worker i should_stop =
    let rng = Util.Sprng.create (0x50AC + (i * 7919)) in
    let ops = ref 0 in
    while not (should_stop ()) do
      let a = Util.Sprng.int rng n_accounts in
      let b = Util.Sprng.int rng n_accounts in
      let amt = 1 + Util.Sprng.int rng 16 in
      match
        if Util.Sprng.int rng 8 = 0 then
          S.atomic ~read_only:true (fun tx ->
              ignore (S.read tx accounts.(a));
              ignore (S.read tx accounts.(b)))
        else
          S.atomic (fun tx ->
              let va = S.read tx accounts.(a) in
              let vb = S.read tx accounts.(b) in
              if a <> b then begin
                S.write tx accounts.(a) (va - amt);
                S.write tx accounts.(b) (vb + amt)
              end)
      with
      | () -> incr ops
      | exception Chaos.Injected_fault _ -> Atomic.incr injected
      | exception Stm_intf.Starved _ -> Atomic.incr starved_total
    done;
    !ops
  in
  let res = Harness.Exec.run_timed ~threads ~seconds worker in
  (* All workers are joined: pause injection so the audit itself runs
     fault-free, then sweep. *)
  let was_on = !Chaos.on in
  Chaos.on := false;
  let total =
    S.atomic ~read_only:true (fun tx ->
        Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
  in
  let leaked = S.leaked_locks () in
  Chaos.on := was_on;
  {
    stm = S.name;
    ops = res.Harness.Exec.ops;
    injected_exns = Atomic.get injected;
    starved = Atomic.get starved_total;
    leaked;
    sum_ok = total = n_accounts * initial_balance;
  }

(* Returns the number of (STM, contention-manager) phases that failed an
   invariant.  Each STM's soak budget is split across the three CM
   policies so every policy's inter-attempt pacing runs under injection;
   the conservation and leaked-lock sweeps run after every phase, and the
   pre-soak policy is restored at the end. *)
let run ~stms ~threads ~seconds =
  let failures = ref 0 in
  let base = Stm_intf.current_policy () in
  let cms = [ Stm_intf.Cm_paper; Stm_intf.Cm_backoff; Stm_intf.Cm_hybrid ] in
  let phase_seconds = seconds /. float_of_int (List.length cms) in
  List.iter
    (fun stm ->
      List.iter
        (fun cm ->
          Twoplsf_cm.Cm.install { base with Stm_intf.cm };
          let o = soak_one stm ~threads ~seconds:phase_seconds ~cm in
          Printf.printf
            "  %-14s cm=%-7s ops=%-9d injected-exns=%-6d starved=%-4d \
             leaked=%-3d sum=%s\n%!"
            o.stm
            (Twoplsf_cm.Cm.choice_name cm)
            o.ops o.injected_exns o.starved o.leaked
            (if o.sum_ok then "OK" else "MISMATCH");
          if o.leaked <> 0 || not o.sum_ok then incr failures)
        cms)
    stms;
  Twoplsf_cm.Cm.install base;
  !failures
