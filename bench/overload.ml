(* Overload workload (--overload): a hot-key Zipfian transfer mix run
   with more threads than cores, plus a deliberate straggler, to exercise
   the DESIGN.md §11 protection ladder end to end — deadlines fire,
   the contention manager paces retries, the admission gate narrows, and
   exhausted transactions escalate through the serial-irrevocable
   fallback instead of starving.

   Worker 0 doubles as the straggler: every few stall periods it takes
   the write lock on the hottest key (key 0 — the Zipfian mode) and
   sleeps ~4x the configured deadline while holding it, which forces the
   other workers' deadlines to blow and the escalation path to run.

   Reported per STM: throughput, completion-time percentiles
   (p50/p99/p999 — the tail is the point of the exercise), Starved and
   Deadline_exceeded counts, escalations into the fallback, plus the
   same two invariants the chaos soak checks (conservation and zero
   leaked locks).  Returns the number of STMs that failed an
   invariant. *)

module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission

type outcome = {
  stm : string;
  ops : int;
  starved : int;
  deadline_raises : int;
  fallbacks : int;
  leaked : int;
  sum_ok : bool;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
}

let n_accounts = 4096
let initial_balance = 1_000

let run_one (module S : Stm_intf.STM) ~threads ~seconds ~theta =
  let accounts = Array.init n_accounts (fun _ -> S.tvar initial_balance) in
  Twoplsf_obs.Monitor.set_phase
    (Printf.sprintf "overload/%s/t=%d" S.name threads);
  S.reset_stats ();
  let esc0 = Cm.escalations () in
  let lat = Harness.Latency.create ~threads in
  let starved = Atomic.make 0 and deadlined = Atomic.make 0 in
  let pol = Stm_intf.current_policy () in
  (* Straggler hold time: long enough that waiters must blow the deadline
     (4x budget), with a floor for deadline-less runs. *)
  let stall_s =
    if pol.Stm_intf.deadline_ns > 0 then
      Float.max 0.002 (float_of_int pol.Stm_intf.deadline_ns *. 4e-9)
    else 0.002
  in
  let stall_gap = 10. *. stall_s in
  let worker i should_stop =
    let zipf =
      Util.Zipf.create ~seed:(0x0EAD + (i * 7919)) ~n:n_accounts ~theta ()
    in
    let rng = Util.Sprng.create (0x0BAD + (i * 104729)) in
    let ops = ref 0 in
    let last_stall = ref (Util.Clock.now ()) in
    while not (should_stop ()) do
      if i = 0 && Util.Clock.now () -. !last_stall > stall_gap then begin
        (* The straggler transaction: one write lock on the hottest key,
           held across a sleep.  It acquires nothing afterwards, so its
           own deadline can never fire; everyone queued behind it blows
           theirs. *)
        (match
           S.atomic (fun tx ->
               let v = S.read tx accounts.(0) in
               S.write tx accounts.(0) v;
               Unix.sleepf stall_s)
         with
        | () -> ()
        | exception Stm_intf.Starved _ -> Atomic.incr starved
        | exception Stm_intf.Deadline_exceeded _ -> Atomic.incr deadlined);
        last_stall := Util.Clock.now ()
      end
      else begin
        let a = Util.Zipf.next zipf in
        let b = Util.Zipf.next zipf in
        let amt = 1 + Util.Sprng.int rng 16 in
        let t0 = Util.Clock.now () in
        match
          if Util.Sprng.int rng 8 = 0 then
            S.atomic ~read_only:true (fun tx ->
                ignore (S.read tx accounts.(a));
                ignore (S.read tx accounts.(b)))
          else
            S.atomic (fun tx ->
                let va = S.read tx accounts.(a) in
                let vb = S.read tx accounts.(b) in
                if a <> b then begin
                  S.write tx accounts.(a) (va - amt);
                  S.write tx accounts.(b) (vb + amt)
                end)
        with
        | () ->
            incr ops;
            Harness.Latency.record lat i (Util.Clock.now () -. t0)
        | exception Stm_intf.Starved _ -> Atomic.incr starved
        | exception Stm_intf.Deadline_exceeded _ -> Atomic.incr deadlined
      end
    done;
    !ops
  in
  let res = Harness.Exec.run_timed ~threads ~seconds worker in
  let total =
    S.atomic ~read_only:true (fun tx ->
        Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
  in
  let leaked = S.leaked_locks () in
  let p50, p99, p999 =
    if Harness.Latency.count lat = 0 then (0., 0., 0.)
    else
      match Harness.Latency.percentiles lat [ 50.; 99.; 99.9 ] with
      | [ (_, a); (_, b); (_, c) ] -> (a, b, c)
      | _ -> (0., 0., 0.)
  in
  {
    stm = S.name;
    ops = res.Harness.Exec.ops;
    starved = Atomic.get starved;
    deadline_raises = Atomic.get deadlined;
    fallbacks = Cm.escalations () - esc0;
    leaked;
    sum_ok = total = n_accounts * initial_balance;
    p50_ms = p50 *. 1e3;
    p99_ms = p99 *. 1e3;
    p999_ms = p999 *. 1e3;
  }

(* Returns the number of STMs that failed an invariant. *)
let run ~stms ~threads ~seconds ~theta =
  let pol = Stm_intf.current_policy () in
  Printf.printf
    "Overload: %.1fs per STM, threads=%d, theta=%.2f, deadline=%.1fms, \
     cm=%s, admission=%b, fallback=%b\n%!"
    seconds threads theta
    (float_of_int pol.Stm_intf.deadline_ns /. 1e6)
    (Cm.choice_name pol.Stm_intf.cm)
    pol.Stm_intf.admission pol.Stm_intf.fallback;
  let failures = ref 0 in
  List.iter
    (fun stm ->
      let o = run_one stm ~threads ~seconds ~theta in
      Printf.printf
        "  overload %-14s ops=%-9d starved=%-3d deadline-raises=%-4d \
         fallbacks=%-4d leaked=%-3d sum=%s p50=%.2fms p99=%.2fms \
         p999=%.2fms\n%!"
        o.stm o.ops o.starved o.deadline_raises o.fallbacks o.leaked
        (if o.sum_ok then "OK" else "MISMATCH")
        o.p50_ms o.p99_ms o.p999_ms;
      Harness.Bench_artifact.record_overload ~stm:o.stm ~ops:o.ops
        ~starved:o.starved ~deadline_raises:o.deadline_raises
        ~fallbacks:o.fallbacks ~leaked:o.leaked ~sum_ok:o.sum_ok
        ~p50_ms:o.p50_ms ~p99_ms:o.p99_ms ~p999_ms:o.p999_ms;
      if o.leaked <> 0 || not o.sum_ok then incr failures)
    stms;
  List.iter
    (fun (k, v) -> Printf.printf "  overload counter %-22s %d\n%!" k v)
    (Cm.counters () @ if pol.Stm_intf.admission then Admission.counters () else []);
  !failures
