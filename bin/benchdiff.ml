(* benchdiff — compare two BENCH_*.json artifacts (or one against the
   committed bench/baseline.json) and exit non-zero when any gated
   metric regressed past the threshold.

     benchdiff OLD.json NEW.json [--threshold PCT]
     benchdiff NEW.json          [--threshold PCT]   (old = bench/baseline.json)

   Exit codes: 0 = no breach, 1 = regression(s), 2 = usage or artifact
   error (unreadable file, schema mismatch). *)

let default_baseline = Filename.concat "bench" "baseline.json"

let usage () =
  prerr_endline
    "usage: benchdiff [--threshold PCT] OLD.json NEW.json\n\
    \       benchdiff [--threshold PCT] NEW.json   (compares against \
     bench/baseline.json)";
  exit 2

let () =
  let threshold = ref 10.0 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t >= 0. -> threshold := t
        | _ ->
            Printf.eprintf "benchdiff: bad --threshold %S\n" v;
            exit 2);
        parse rest
    | ("-h" | "--help") :: _ -> usage ()
    | f :: _ when String.length f > 0 && f.[0] = '-' ->
        Printf.eprintf "benchdiff: unknown option %s\n" f;
        usage ()
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match List.rev !files with
    | [ new_path ] -> (default_baseline, new_path)
    | [ old_path; new_path ] -> (old_path, new_path)
    | _ -> usage ()
  in
  let threshold_pct = !threshold in
  match Harness.Benchdiff.compare_files ~threshold_pct old_path new_path with
  | r ->
      Printf.printf "benchdiff: %s -> %s (threshold %.1f%%)\n" old_path
        new_path threshold_pct;
      Harness.Benchdiff.print_report ~threshold_pct r;
      exit (if r.Harness.Benchdiff.breaches > 0 then 1 else 0)
  | exception Harness.Benchdiff.Incompatible msg ->
      Printf.eprintf "benchdiff: %s\n" msg;
      exit 2
  | exception Harness.Json.Parse_error msg ->
      Printf.eprintf "benchdiff: JSON parse error: %s\n" msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "benchdiff: %s\n" msg;
      exit 2
