(* conflictmap — render the conflict-cartography section of a
   BENCH_*.json artifact (schema v2, produced by `bench --conflict-map`)
   as a ranked per-lock hotspot table plus the victim×aborter abort
   heatmap (DESIGN.md §13).

     conflictmap BENCH.json [--top N] [--min-share PCT] [--scope NAME]

   Exit codes: 0 = rendered (possibly "no conflict data"), 2 = usage or
   artifact error. *)

module J = Harness.Json

let usage () =
  prerr_endline
    "usage: conflictmap BENCH.json [--top N] [--min-share PCT] [--scope \
     NAME]\n\
    \  --top N          keep only the N heaviest locks per scope (default \
     20)\n\
    \  --min-share PCT  drop locks below PCT% of attributed time (default \
     0)\n\
    \  --scope NAME     render only the named scope (default: all)";
  exit 2

let num_field o k = Option.value ~default:0. (J.num_field o k)
let int_field o k = int_of_float (num_field o k)

(* Shaded cell for the heatmap: edge count bucketed against the matrix
   maximum on a log-ish scale, readable on any terminal. *)
let shade ~max_v v =
  if v = 0 then "   ."
  else if max_v <= 1 then "   #"
  else
    let glyphs = [| "   ·"; "   -"; "   +"; "   *"; "   #" |] in
    let frac = float_of_int v /. float_of_int max_v in
    let i =
      if frac >= 0.75 then 4
      else if frac >= 0.5 then 3
      else if frac >= 0.25 then 2
      else if frac >= 0.05 then 1
      else 0
    in
    glyphs.(i)

let render_scope ~top ~min_share scope =
  let name = Option.value ~default:"?" (J.str_field scope "scope") in
  let total = num_field scope "total_attributed_ns" in
  Printf.printf "== %s ==\n" name;
  Printf.printf
    "attributed %.3f ms total (%.3f ms lock-wait), %d provenance edge(s), \
     asymmetry %.2f\n"
    (total /. 1e6)
    (num_field scope "total_wait_ns" /. 1e6)
    (int_field scope "edges_total")
    (num_field scope "asymmetry");
  (* ---- ranked hotspot table ---- *)
  let locks = Option.value ~default:[] (J.arr_field scope "locks") in
  let share l = 100. *. num_field l "share" in
  let locks =
    List.filteri (fun i _ -> i < top)
      (List.filter (fun l -> share l >= min_share) locks)
  in
  if locks = [] then print_string "no locks above the filters\n"
  else begin
    Printf.printf "%6s %9s %12s %7s %7s %7s %8s %8s\n" "lock" "share"
      "attrib(ms)" "±err%" "waits" "aborts" "read%" "write%";
    List.iter
      (fun l ->
        let w = num_field l "attributed_ns" in
        let rw = num_field l "read_wait_ns"
        and ww = num_field l "write_wait_ns" in
        let wait = rw +. ww in
        let pct x = if wait > 0. then 100. *. x /. wait else 0. in
        Printf.printf "%6d %8.2f%% %12.3f %6.1f%% %7d %7d %7.1f%% %7.1f%%\n"
          (int_field l "lock") (share l) (w /. 1e6)
          (if w > 0. then 100. *. num_field l "err_ns" /. w else 0.)
          (int_field l "hits") (int_field l "aborts") (pct rw) (pct ww))
      locks
  end;
  (* ---- victim × aborter heatmap ---- *)
  let cells = Option.value ~default:[] (J.arr_field scope "matrix") in
  let cells =
    List.filter_map
      (fun c ->
        match c with
        | J.Arr [ J.Num v; J.Num a; J.Num n ] ->
            Some (int_of_float v, int_of_float a, int_of_float n)
        | _ -> None)
      cells
  in
  if cells <> [] then begin
    let tids =
      List.sort_uniq compare
        (List.concat_map
           (fun (v, a, _) -> if a >= 0 then [ v; a ] else [ v ])
           cells)
    in
    let unknown = List.exists (fun (_, a, _) -> a < 0) cells in
    let max_v = List.fold_left (fun m (_, _, n) -> Stdlib.max m n) 0 cells in
    let get v a =
      List.fold_left
        (fun acc (v', a', n) -> if v' = v && a' = a then acc + n else acc)
        0 cells
    in
    print_string "aborts heatmap (rows = victim tid, cols = aborter tid):\n";
    Printf.printf "%6s" "";
    List.iter (fun a -> Printf.printf "%4d" a) tids;
    if unknown then print_string "   ?";
    print_newline ();
    List.iter
      (fun v ->
        let row_any =
          List.exists (fun (v', _, _) -> v' = v) cells
        in
        if row_any then begin
          Printf.printf "%6d" v;
          List.iter (fun a -> print_string (shade ~max_v (get v a))) tids;
          if unknown then print_string (shade ~max_v (get v (-1)));
          print_newline ()
        end)
      tids;
    (* Victims that never abort anyone don't appear in [tids]-as-victims
       check above; print any remaining victim-only rows. *)
    let extra_victims =
      List.sort_uniq compare
        (List.filter_map
           (fun (v, _, _) -> if List.mem v tids then None else Some v)
           cells)
    in
    List.iter
      (fun v ->
        Printf.printf "%6d" v;
        List.iter (fun a -> print_string (shade ~max_v (get v a))) tids;
        if unknown then print_string (shade ~max_v (get v (-1)));
        print_newline ())
      extra_victims
  end;
  print_newline ()

let () =
  let top = ref 20 in
  let min_share = ref 0. in
  let only_scope = ref None in
  let file = ref None in
  let int_arg name v k =
    match int_of_string_opt v with
    | Some n when n > 0 -> k n
    | _ ->
        Printf.eprintf "conflictmap: bad %s %S\n" name v;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--top" :: v :: rest ->
        int_arg "--top" v (fun n -> top := n);
        parse rest
    | "--min-share" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0. -> min_share := f
        | _ ->
            Printf.eprintf "conflictmap: bad --min-share %S\n" v;
            exit 2);
        parse rest
    | "--scope" :: v :: rest ->
        only_scope := Some v;
        parse rest
    | ("-h" | "--help") :: _ -> usage ()
    | f :: _ when String.length f > 0 && f.[0] = '-' ->
        Printf.eprintf "conflictmap: unknown option %s\n" f;
        usage ()
    | f :: rest ->
        if !file <> None then usage ();
        file := Some f;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !file with Some f -> f | None -> usage () in
  match J.parse_file path with
  | doc -> (
      (match J.int_field doc "schema_version" with
      | Some v when v >= 2 -> ()
      | Some v ->
          Printf.eprintf
            "conflictmap: artifact schema v%d has no conflict section (need \
             v2+, from bench --conflict-map)\n"
            v;
          exit 2
      | None ->
          prerr_endline "conflictmap: not a BENCH artifact";
          exit 2);
      match J.arr_field doc "conflicts" with
      | None | Some [] ->
          print_string
            "no conflict data in artifact (was --conflict-map on?)\n"
      | Some scopes ->
          let scopes =
            match !only_scope with
            | None -> scopes
            | Some want ->
                List.filter
                  (fun s -> J.str_field s "scope" = Some want)
                  scopes
          in
          if scopes = [] then
            print_string "no scope matched the --scope filter\n"
          else
            List.iter (render_scope ~top:!top ~min_share:!min_share) scopes)
  | exception J.Parse_error msg ->
      Printf.eprintf "conflictmap: JSON parse error: %s\n" msg;
      exit 2
  | exception Sys_error msg ->
      Printf.eprintf "conflictmap: %s\n" msg;
      exit 2
