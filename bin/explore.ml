(* explore — deterministic schedule exploration (DESIGN.md §14).

     dune exec bin/explore.exe -- --stm TinySTM --strategy pct --iters 200
     dune exec bin/explore.exe -- --stm TinySTM --bug lock-toctou \
       --strategy pct --iters 500 --shrink --out trace.json

   Exit status: 0 = no violation found, 1 = violation found (trace
   written when --out is given), 124 = bad usage. *)

open Cmdliner
module Sched = Twoplsf_sched.Sched
module Scenario = Twoplsf_sched.Scenario
module Explore = Twoplsf_sched.Explore
module Trace = Twoplsf_sched.Trace

let stm =
  Arg.(
    value
    & opt string "2PLSF"
    & info [ "stm" ]
        ~doc:
          (Printf.sprintf "STM under test (one of: %s)."
             (String.concat ", " Scenario.supported)))

let strategy =
  Arg.(
    value
    & opt string "pct"
    & info [ "strategy" ] ~doc:"Search strategy: pct, random, round-robin.")

let iters =
  Arg.(value & opt int 200 & info [ "iters" ] ~doc:"Schedules to explore.")

let depth =
  Arg.(
    value & opt int 3
    & info [ "depth-bound" ] ~doc:"PCT priority-change points (bug depth).")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base search seed.")

let threads =
  Arg.(value & opt int 2 & info [ "threads" ] ~doc:"Worker domains.")

let accounts =
  Arg.(value & opt int 4 & info [ "accounts" ] ~doc:"Accounts in the workload.")

let txns =
  Arg.(
    value & opt int 6
    & info [ "txns" ] ~doc:"Transfers per thread per schedule.")

let abort_every =
  Arg.(
    value & opt int 3
    & info [ "abort-every" ]
        ~doc:"Induce a user abort every Nth transaction (0 = never).")

let audit_every =
  Arg.(
    value & opt int 4
    & info [ "audit-every" ]
        ~doc:"Replace every Nth transaction with a read-only audit (0 = never).")

let max_steps =
  Arg.(
    value
    & opt int 20_000
    & info [ "max-steps" ] ~doc:"Scheduler decision budget per run.")

let shrink =
  Arg.(value & flag & info [ "shrink" ] ~doc:"Delta-debug the failing schedule.")

let bug =
  Arg.(
    value
    & opt (some string) None
    & info [ "bug" ]
        ~doc:
          (Printf.sprintf
             "Reintroduce a TinySTM bug variant (one of: %s); implies --stm \
              TinySTM."
             (String.concat ", " Baselines.Tinystm.bug_names)))

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~doc:"Write the (shrunk) failing trace to this file.")

let run stm strategy iters depth seed threads accounts txns abort_every
    audit_every max_steps shrink bug out =
  ignore (Util.Tid.register ());
  let stm = if Option.is_some bug then "TinySTM" else stm in
  let scenario =
    {
      Trace.stm;
      threads;
      accounts;
      txns_per_thread = txns;
      init_balance = Trace.default_scenario.Trace.init_balance;
      abort_every;
      audit_every;
      wseed = seed;
      bug;
    }
  in
  let params =
    {
      Explore.default_params with
      Explore.scenario;
      kind = Explore.kind_of_string strategy;
      iters;
      depth;
      seed;
      max_steps;
      do_shrink = shrink;
    }
  in
  Printf.printf "exploring %s (%d threads, %d accounts, %d txns/thread)%s\n%!"
    stm threads accounts txns
    (match bug with Some b -> " with bug " ^ b | None -> "");
  let r = Explore.search ~log:(Printf.printf "  %s\n%!") params in
  match r.Explore.found with
  | None ->
      Printf.printf "no violation in %d schedules (%d decisions total)\n"
        r.Explore.iterations r.Explore.total_decisions;
      0
  | Some f ->
      Printf.printf "VIOLATION at iteration %d (%s):\n  %s\n" f.Explore.iteration
        f.Explore.strategy
        (Scenario.failure_to_string f.Explore.failure);
      (match f.Explore.shrink with
      | Some s ->
          Printf.printf "  shrunk %d -> %d decisions in %d replays\n"
            s.Twoplsf_sched.Shrink.from_len s.Twoplsf_sched.Shrink.to_len
            s.Twoplsf_sched.Shrink.trials
      | None ->
          Printf.printf "  trace: %d decisions (not shrunk)\n"
            f.Explore.original_len);
      (match out with
      | Some path ->
          Trace.save path f.Explore.trace;
          Printf.printf "  trace written to %s\n" path
      | None -> ());
      1

let () =
  let doc = "deterministic schedule exploration for the 2PLSF reproduction" in
  exit
    (Cmd.eval'
       (Cmd.v
          (Cmd.info "explore" ~doc)
          Term.(
            const run $ stm $ strategy $ iters $ depth $ seed $ threads
            $ accounts $ txns $ abort_every $ audit_every $ max_steps $ shrink
            $ bug $ out)))
