(* repro — run a single experiment with full parameter control.

     dune exec bin/repro.exe -- set --structure ravl --stm 2PLSF \
       --mix 10,10,80 --keys 10000 --threads 4 --seconds 1
     dune exec bin/repro.exe -- map --structure skiplist --stm TinySTM
     dune exec bin/repro.exe -- ycsb --cc TicToc --theta 0.9 --threads 8
     dune exec bin/repro.exe -- latency --stm 2PLSF --threads 4

   The figure-by-figure reproduction lives in bench/main.exe; this tool is
   for exploring the parameter space. *)

open Cmdliner

let structure_conv =
  let parse = function
    | "list" -> Ok Harness.Driver.List_s
    | "hash" -> Ok Harness.Driver.Hash_s
    | "skiplist" -> Ok Harness.Driver.Skip_s
    | "ziptree" -> Ok Harness.Driver.Zip_s
    | "ravl" -> Ok Harness.Driver.Ravl_s
    | s -> Error (`Msg ("unknown structure: " ^ s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Harness.Driver.structure_label s))

let stm_conv =
  let parse s =
    match Baselines.Registry.find s with
    | m -> Ok m
    | exception Not_found ->
        let names =
          List.map (fun (module S : Stm_intf.STM) -> S.name) Baselines.Registry.all
        in
        Error (`Msg (Printf.sprintf "unknown stm %s (one of: %s)" s (String.concat ", " names)))
  in
  Arg.conv (parse, fun fmt (module S : Stm_intf.STM) -> Format.pp_print_string fmt S.name)

let mix_conv =
  let parse s =
    match List.map int_of_string (String.split_on_char ',' s) with
    | [ i; r; l ] when i + r + l = 100 ->
        Ok { Harness.Workload.insert = i; remove = r; lookup = l; update = 0 }
    | [ i; r; l; u ] when i + r + l + u = 100 ->
        Ok { Harness.Workload.insert = i; remove = r; lookup = l; update = u }
    | _ -> Error (`Msg "mix must be i,r,l or i,r,l,u percentages summing to 100")
    | exception _ -> Error (`Msg "mix must be comma-separated integers")
  in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Harness.Workload.mix_label m))

let structure =
  Arg.(value & opt structure_conv Harness.Driver.Ravl_s
       & info [ "structure" ] ~doc:"Data structure: list, hash, skiplist, ziptree, ravl.")

let stm =
  Arg.(value & opt stm_conv Baselines.Registry.twoplsf
       & info [ "stm" ] ~doc:"Concurrency control (2PLSF, TL2, TinySTM, TLRW, OREC-Z, OFWF, 2PL-RW, 2PL-RW-Dist, 2PL-WaitDie).")

let mix =
  Arg.(value & opt mix_conv Harness.Workload.read_mostly
       & info [ "mix" ] ~doc:"Operation mix as i,r,l[,u] percentages.")

let keys = Arg.(value & opt int 10_000 & info [ "keys" ] ~doc:"Key range.")
let threads = Arg.(value & opt int 2 & info [ "threads" ] ~doc:"Worker domains.")
let seconds = Arg.(value & opt float 1.0 & info [ "seconds" ] ~doc:"Run duration.")

let set_cmd =
  let run structure stm mix keys threads seconds =
    ignore (Util.Tid.register ());
    Harness.Report.row_header ();
    Harness.Report.row
      (Harness.Driver.run_set_bench ~stm ~structure ~mix ~range:keys ~threads
         ~seconds)
  in
  Cmd.v (Cmd.info "set" ~doc:"Integer-set microbenchmark (Figures 2-7).")
    Term.(const run $ structure $ stm $ mix $ keys $ threads $ seconds)

let map_cmd =
  let run structure stm keys threads seconds =
    ignore (Util.Tid.register ());
    Harness.Report.row_header ();
    Harness.Report.row
      (Harness.Driver.run_map_bench ~stm ~structure ~range:keys ~threads
         ~seconds)
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:"Key/value map benchmark, 1%i/1%r/98%u on 100-byte records (Figure 8).")
    Term.(const run $ structure $ stm $ keys $ threads $ seconds)

let cc_conv =
  let parse s =
    match Dbx.Runner.find_cc s with
    | Ok m -> Ok (s, m)
    | Error e -> Error (`Msg (Dbx.Runner.error_message e))
  in
  Arg.conv (parse, fun fmt (s, _) -> Format.pp_print_string fmt s)

let ycsb_cmd =
  let cc =
    Arg.(value & opt cc_conv (List.hd Dbx.Runner.ccs |> fun (n, m) -> (n, m))
         & info [ "cc" ] ~doc:"Concurrency control: 2PLSF, TicToc, NO_WAIT, WAIT_DIE, DL_DETECT.")
  in
  let theta = Arg.(value & opt float 0.6 & info [ "theta" ] ~doc:"Zipfian skew (0 = uniform).") in
  let write_ratio = Arg.(value & opt float 0.5 & info [ "write-ratio" ] ~doc:"Writes per access.") in
  let rows = Arg.(value & opt int 100_000 & info [ "rows" ] ~doc:"Table size.") in
  let run (_, cc) theta write_ratio rows threads seconds =
    ignore (Util.Tid.register ());
    let table = Dbx.Table.create ~num_rows:rows in
    let r = Dbx.Runner.run ~cc ~table ~theta ~write_ratio ~threads ~seconds in
    Printf.printf "%-12s theta=%.2f threads=%d  %.0f txn/s  (%d commits, %d aborts)\n"
      r.cc r.theta r.threads r.throughput r.commits r.aborts
  in
  Cmd.v (Cmd.info "ycsb" ~doc:"YCSB over the DBx1000-style row store (Figure 11).")
    Term.(const run $ cc $ theta $ write_ratio $ rows $ threads $ seconds)

let latency_cmd =
  let run stm threads seconds =
    ignore (Util.Tid.register ());
    let (module S : Stm_intf.STM) = stm in
    let threads = Stdlib.max 2 (threads / 2 * 2) in
    let pairs = threads / 2 in
    let counters = Array.init (pairs * 20) (fun _ -> S.tvar 0) in
    let lat = Harness.Latency.create ~threads in
    let worker i should_stop =
      let base = i / 2 * 20 in
      let up = i land 1 = 0 in
      let n = ref 0 in
      while not (should_stop ()) do
        let t0 = Util.Clock.now () in
        S.atomic (fun tx ->
            if up then
              for j = 0 to 19 do
                S.write tx counters.(base + j) (S.read tx counters.(base + j) + 1)
              done
            else
              for j = 19 downto 0 do
                S.write tx counters.(base + j) (S.read tx counters.(base + j) + 1)
              done);
        Harness.Latency.record lat i (Util.Clock.now () -. t0);
        incr n
      done;
      !n
    in
    let res = Harness.Exec.run_timed ~threads ~seconds worker in
    Harness.Report.latency_header ();
    let ps = Harness.Latency.percentiles lat [ 50.; 90.; 99. ] in
    Harness.Report.latency_row ~stm:S.name ~threads ~throughput:res.throughput
      ~p50:(List.assoc 50. ps) ~p90:(List.assoc 90. ps)
      ~p99:(List.assoc 99. ps)
      ~max:(Harness.Latency.max_latency lat)
  in
  Cmd.v (Cmd.info "latency" ~doc:"Pair-wise conflict latency benchmark (Figure 10).")
    Term.(const run $ stm $ threads $ seconds)

let ycsb_latency_cmd =
  let cc =
    Arg.(value & opt cc_conv (List.hd Dbx.Runner.ccs |> fun (n, m) -> (n, m))
         & info [ "cc" ] ~doc:"Concurrency control: 2PLSF, TicToc, NO_WAIT, WAIT_DIE, DL_DETECT.")
  in
  let theta = Arg.(value & opt float 0.9 & info [ "theta" ] ~doc:"Zipfian skew.") in
  let rows = Arg.(value & opt int 100_000 & info [ "rows" ] ~doc:"Table size.") in
  let run (_, cc) theta rows threads seconds =
    ignore (Util.Tid.register ());
    let table = Dbx.Table.create ~num_rows:rows in
    let r =
      Dbx.Runner.run_with_latency ~cc ~table ~theta ~write_ratio:0.5 ~threads
        ~seconds
    in
    Harness.Report.latency_header ();
    Harness.Report.latency_row ~stm:r.base.cc ~threads
      ~throughput:r.base.throughput ~p50:r.p50 ~p90:r.p90 ~p99:r.p99
      ~max:r.max_latency
  in
  Cmd.v
    (Cmd.info "ycsb-latency"
       ~doc:"Per-transaction latency percentiles on the YCSB workload (ablation A5).")
    Term.(const run $ cc $ theta $ rows $ threads $ seconds)

let schedule_cmd =
  let module Sched = Twoplsf_sched.Sched in
  let module Scenario = Twoplsf_sched.Scenario in
  let module Trace = Twoplsf_sched.Trace in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Schedule trace (written by explore --out).")
  in
  let run file =
    ignore (Util.Tid.register ());
    let t = Trace.load file in
    let replay () =
      Scenario.run
        ~strategy:(Sched.Fixed { decisions = t.Trace.decisions })
        t.Trace.scenario
    in
    let o1 = replay () in
    let o2 = replay () in
    let show (o : Scenario.outcome) =
      Printf.printf
        "  %d commits, %d aborts, %d decisions, %d divergences, hash %x\n  %s\n"
        o.Scenario.commits o.Scenario.aborts
        (Array.length o.Scenario.info.Sched.decisions)
        o.Scenario.info.Sched.divergences o.Scenario.history_hash
        (match o.Scenario.failure with
        | Some f -> Scenario.failure_to_string f
        | None -> "no violation")
    in
    Printf.printf "replaying %s on %s (recorded: %s)\n" file t.Trace.scenario.Trace.stm
      (Option.value t.Trace.failure ~default:"no failure recorded");
    show o1;
    show o2;
    if o1.Scenario.history_hash <> o2.Scenario.history_hash then begin
      Printf.printf "REPLAY NOT DETERMINISTIC: history hashes differ\n";
      exit 2
    end;
    let cls o =
      Option.map Scenario.failure_class o.Scenario.failure
    in
    match (t.Trace.failure, cls o1) with
    | Some _, Some _ ->
        Printf.printf "deterministic replay: failure reproduced\n";
        exit 1
    | Some _, None ->
        Printf.printf "deterministic replay: recorded failure did NOT reproduce\n";
        exit 3
    | None, Some _ ->
        Printf.printf "deterministic replay: unexpected failure on clean trace\n";
        exit 3
    | None, None -> Printf.printf "deterministic replay: clean\n"
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:
         "Replay a recorded schedule trace twice and verify bit-identical \
          histories (exit 0: clean as recorded, 1: failure reproduced, 2: \
          nondeterministic, 3: outcome mismatch).")
    Term.(const run $ file)

let () =
  let doc = "2PLSF reproduction: single-experiment runner" in
  let info = Cmd.info "repro" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            set_cmd;
            map_cmd;
            ycsb_cmd;
            ycsb_latency_cmd;
            latency_cmd;
            schedule_cmd;
          ]))
