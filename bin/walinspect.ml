(* walinspect — dump and validate a WAL directory (DESIGN.md §15).

     dune exec bin/walinspect.exe -- wal-dir
     dune exec bin/walinspect.exe -- --verbose wal-dir
     dune exec bin/walinspect.exe -- --allow-torn wal-dir

   Walks the checkpoint image header and every log segment in order,
   CRC-checking each record, and reports LSN ranges, per-table record
   counts and the write/byte volume.  A malformed record is diagnosed
   exactly as recovery would: a structurally valid record further on
   means interior corruption; none means a torn tail (the expected
   signature of a crash mid-append).

   Exit codes: 0 = clean; 1 = torn tail (suppressed by --allow-torn,
   for validating a log that survived a crash soak); 2 = corruption /
   invalid image / LSN order violation; 3 = usage or I/O error. *)

open Cmdliner
module Wal = Twoplsf_wal.Wal
module Record = Twoplsf_wal.Record

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = Bytes.create len in
  really_input ic buf 0 len;
  close_in ic;
  buf

type scan = {
  mutable records : int;
  mutable writes : int;
  mutable bytes : int;
  mutable min_lsn : int;
  mutable max_lsn : int;
  mutable order_ok : bool;
  mutable torn : (string * int) option;  (* segment, offset *)
  mutable corrupt : (string * int * string) option;
  (* (table_id, count) histogram; tiny domain, assoc list suffices *)
  mutable tables : (int * int) list;
}

let bump_table s tid =
  let n = try List.assoc tid s.tables with Not_found -> 0 in
  s.tables <- (tid, n + 1) :: List.remove_assoc tid s.tables

let scan_segments ~dir ~verbose =
  let s =
    {
      records = 0;
      writes = 0;
      bytes = 0;
      min_lsn = max_int;
      max_lsn = 0;
      order_ok = true;
      torn = None;
      corrupt = None;
      tables = [];
    }
  in
  let segs = Wal.segments ~dir in
  let nsegs = List.length segs in
  List.iteri
    (fun i (seq, path) ->
      if s.corrupt = None && s.torn = None then begin
        let data = read_file path in
        let len = Bytes.length data in
        let name = Filename.basename path in
        if verbose then Printf.printf "segment %08d  %d bytes\n" seq len;
        let pos = ref 0 in
        let stop = ref false in
        while (not !stop) && !pos < len do
          match Record.decode data ~pos:!pos ~avail:(len - !pos) with
          | Ok (r, size) ->
              if r.Record.r_lsn <= s.max_lsn then s.order_ok <- false;
              s.records <- s.records + 1;
              s.writes <- s.writes + Array.length r.Record.r_writes;
              s.bytes <- s.bytes + size;
              if r.Record.r_lsn < s.min_lsn then s.min_lsn <- r.Record.r_lsn;
              if r.Record.r_lsn > s.max_lsn then s.max_lsn <- r.Record.r_lsn;
              bump_table s r.Record.r_table_id;
              if verbose then
                Printf.printf "  lsn=%-8d writes=%-3d bytes=%d\n"
                  r.Record.r_lsn
                  (Array.length r.Record.r_writes)
                  size;
              pos := !pos + size
          | Error diag ->
              (* Same discrimination as recovery: only the last segment
                 may legitimately end in a tear, and only when nothing
                 structurally valid follows the bad bytes. *)
              let last_segment = i = nsegs - 1 in
              if
                last_segment
                && Record.find_valid data ~pos:(!pos + 1) ~len
                     ~after_lsn:s.max_lsn
                   = None
              then s.torn <- Some (name, !pos)
              else s.corrupt <- Some (name, !pos, diag);
              stop := true
        done
      end)
    segs;
  (nsegs, s)

let run dir allow_torn verbose =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "walinspect: %s: not a directory\n" dir;
    exit 3
  end;
  (match Wal.read_image_info ~dir with
  | Some i ->
      Printf.printf
        "checkpoint image: table=%d rows=%d row_len=%d lsn=[%d, %d]\n"
        i.Wal.i_table_id i.Wal.i_num_rows i.Wal.i_row_len i.Wal.i_start_lsn
        i.Wal.i_end_lsn
  | None ->
      if Sys.file_exists (Filename.concat dir "checkpoint.img") then begin
        Printf.printf "checkpoint image: INVALID (bad magic, length or CRC)\n";
        exit 2
      end
      else Printf.printf "checkpoint image: none\n");
  let nsegs, s = scan_segments ~dir ~verbose in
  Printf.printf "segments: %d\n" nsegs;
  if s.records = 0 then Printf.printf "records: 0\n"
  else begin
    Printf.printf "records: %d (lsn %d..%d, %d row writes, %d bytes)\n"
      s.records s.min_lsn s.max_lsn s.writes s.bytes;
    List.iter
      (fun (tid, n) -> Printf.printf "  table %d: %d records\n" tid n)
      (List.sort compare s.tables)
  end;
  match (s.corrupt, s.torn) with
  | Some (seg, off, diag), _ ->
      Printf.printf "CORRUPT: %s at offset %d: %s (valid records follow or \
                     segment is not last)\n"
        seg off diag;
      exit 2
  | None, Some (seg, off) ->
      Printf.printf "torn tail: %s at offset %d (recovery would truncate)\n"
        seg off;
      if allow_torn then begin
        Printf.printf "ok (torn tail allowed)\n";
        exit 0
      end
      else exit 1
  | None, None ->
      if not s.order_ok then begin
        Printf.printf "CORRUPT: LSN order violated across segments\n";
        exit 2
      end;
      Printf.printf "ok\n";
      exit 0

let () =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"WAL directory (segments + checkpoint image).")
  in
  let allow_torn =
    Arg.(
      value & flag
      & info [ "allow-torn" ]
          ~doc:
            "Exit 0 on a torn tail (the expected state of a log that \
             survived a crash); corruption still fails.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Dump every record.")
  in
  let doc = "validate and summarize a 2PLSF write-ahead log directory" in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "walinspect" ~doc)
          Term.(const run $ dir $ allow_torn $ verbose)))
