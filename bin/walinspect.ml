(* walinspect — dump and validate a WAL directory (DESIGN.md §15, §16).

     dune exec bin/walinspect.exe -- wal-dir
     dune exec bin/walinspect.exe -- --verbose wal-dir
     dune exec bin/walinspect.exe -- --allow-torn wal-dir
     dune exec bin/walinspect.exe -- --json wal-dir

   Walks the checkpoint image header and every log segment in order,
   CRC-checking each record, and reports LSN ranges, per-table record
   counts and the write/byte volume.  A malformed record is diagnosed
   exactly as recovery would (lenient by default, matching the crash
   model of a reordering device; --strict matches the process-kill
   model):

   - damage in a non-final segment, an invalid image, or an LSN order
     violation is corruption;
   - damage at the tail of the final segment with nothing structurally
     valid after it is a torn tail (the expected signature of a crash
     mid-append);
   - damage in the final segment with valid records after it is a
     *suspect interior* — legal under sector reordering of the unsynced
     tail, where recovery truncates and discards the (never-acked)
     remainder, i.e. "recovered but degraded".  --strict reclassifies
     it as corruption.

   A leftover checkpoint.tmp (interrupted checkpoint) also marks the
   log recovered-but-degraded.

   Exit codes: 0 = clean; 1 = torn tail (suppressed by --allow-torn,
   for validating a log that survived a crash soak); 2 = corruption /
   invalid image / LSN order violation; 3 = usage or I/O error;
   4 = recovered but degraded (suspect interior or leftover
   checkpoint.tmp) — distinct so CI can assert on it. *)

open Cmdliner
module Wal = Twoplsf_wal.Wal
module Record = Twoplsf_wal.Record
module Json = Harness.Json

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = Bytes.create len in
  really_input ic buf 0 len;
  close_in ic;
  buf

type scan = {
  mutable records : int;
  mutable writes : int;
  mutable bytes : int;
  mutable min_lsn : int;
  mutable max_lsn : int;
  mutable order_ok : bool;
  mutable torn : (string * int) option;  (* segment, offset *)
  mutable corrupt : (string * int * string) option;
  mutable suspect : (string * int * string * int) option;
  (* segment, offset, diag, valid records found beyond the damage *)
  (* (table_id, count) histogram; tiny domain, assoc list suffices *)
  mutable tables : (int * int) list;
}

let bump_table s tid =
  let n = try List.assoc tid s.tables with Not_found -> 0 in
  s.tables <- (tid, n + 1) :: List.remove_assoc tid s.tables

(* Count the structurally valid records beyond a damaged region — the
   same walk recovery uses to size [r_suspect_records]. *)
let count_valid_after data ~pos ~len ~after_lsn =
  let n = ref 0 in
  let pos = ref pos and lsn = ref after_lsn in
  let continue = ref true in
  while !continue do
    match Record.find_valid data ~pos:!pos ~len ~after_lsn:!lsn with
    | None -> continue := false
    | Some p ->
        let q = ref p and run = ref true in
        while !run && !q < len do
          match Record.decode data ~pos:!q ~avail:(len - !q) with
          | Ok (r, sz) ->
              incr n;
              if r.Record.r_lsn > !lsn then lsn := r.Record.r_lsn;
              q := !q + sz
          | Error _ -> run := false
        done;
        pos := !q + 1;
        if !pos >= len then continue := false
  done;
  !n

let scan_segments ~dir ~strict ~verbose =
  let s =
    {
      records = 0;
      writes = 0;
      bytes = 0;
      min_lsn = max_int;
      max_lsn = 0;
      order_ok = true;
      torn = None;
      corrupt = None;
      suspect = None;
      tables = [];
    }
  in
  let segs = Wal.segments ~dir () in
  let nsegs = List.length segs in
  List.iteri
    (fun i (seq, path) ->
      if s.corrupt = None && s.torn = None && s.suspect = None then begin
        let data = read_file path in
        let len = Bytes.length data in
        let name = Filename.basename path in
        if verbose then Printf.printf "segment %08d  %d bytes\n" seq len;
        let pos = ref 0 in
        let stop = ref false in
        while (not !stop) && !pos < len do
          match Record.decode data ~pos:!pos ~avail:(len - !pos) with
          | Ok (r, size) ->
              if r.Record.r_lsn <= s.max_lsn then s.order_ok <- false;
              s.records <- s.records + 1;
              s.writes <- s.writes + Array.length r.Record.r_writes;
              s.bytes <- s.bytes + size;
              if r.Record.r_lsn < s.min_lsn then s.min_lsn <- r.Record.r_lsn;
              if r.Record.r_lsn > s.max_lsn then s.max_lsn <- r.Record.r_lsn;
              bump_table s r.Record.r_table_id;
              if verbose then
                Printf.printf "  lsn=%-8d writes=%-3d bytes=%d\n"
                  r.Record.r_lsn
                  (Array.length r.Record.r_writes)
                  size;
              pos := !pos + size
          | Error diag ->
              (* Same discrimination as recovery: only the last segment
                 may legitimately end in damage, and anything valid
                 after the bad bytes is either suspect (lenient: the
                 reordered-sector crash model) or corrupt (strict). *)
              let last_segment = i = nsegs - 1 in
              if not last_segment then s.corrupt <- Some (name, !pos, diag)
              else begin
                match
                  Record.find_valid data ~pos:(!pos + 1) ~len
                    ~after_lsn:s.max_lsn
                with
                | None -> s.torn <- Some (name, !pos)
                | Some _ when strict -> s.corrupt <- Some (name, !pos, diag)
                | Some _ ->
                    let n =
                      count_valid_after data ~pos:(!pos + 1) ~len
                        ~after_lsn:s.max_lsn
                    in
                    s.suspect <- Some (name, !pos, diag, n)
              end;
              stop := true
        done
      end)
    segs;
  (nsegs, s)

type image_state = I_none | I_ok of Wal.image_info | I_invalid of string

let json_report ~dir ~status ~code ~image ~nsegs ~s ~tmp_leftover =
  let opt f = function None -> Json.Null | Some v -> f v in
  Json.Obj
    [
      ("dir", Json.Str dir);
      ("status", Json.Str status);
      ("exit", Json.Num (float_of_int code));
      ( "image",
        match image with
        | I_none -> Json.Null
        | I_invalid diag -> Json.Obj [ ("invalid", Json.Str diag) ]
        | I_ok i ->
            Json.Obj
              [
                ("table", Json.Num (float_of_int i.Wal.i_table_id));
                ("rows", Json.Num (float_of_int i.Wal.i_num_rows));
                ("row_len", Json.Num (float_of_int i.Wal.i_row_len));
                ("start_lsn", Json.Num (float_of_int i.Wal.i_start_lsn));
                ("end_lsn", Json.Num (float_of_int i.Wal.i_end_lsn));
              ] );
      ("segments", Json.Num (float_of_int nsegs));
      ("records", Json.Num (float_of_int s.records));
      ("row_writes", Json.Num (float_of_int s.writes));
      ("bytes", Json.Num (float_of_int s.bytes));
      ( "min_lsn",
        if s.records = 0 then Json.Null else Json.Num (float_of_int s.min_lsn)
      );
      ( "max_lsn",
        if s.records = 0 then Json.Null else Json.Num (float_of_int s.max_lsn)
      );
      ("order_ok", Json.Bool s.order_ok);
      ( "torn",
        opt
          (fun (seg, off) ->
            Json.Obj
              [ ("segment", Json.Str seg); ("offset", Json.Num (float_of_int off)) ])
          s.torn );
      ( "corrupt",
        opt
          (fun (seg, off, diag) ->
            Json.Obj
              [
                ("segment", Json.Str seg);
                ("offset", Json.Num (float_of_int off));
                ("diag", Json.Str diag);
              ])
          s.corrupt );
      ( "suspect",
        opt
          (fun (seg, off, diag, n) ->
            Json.Obj
              [
                ("segment", Json.Str seg);
                ("offset", Json.Num (float_of_int off));
                ("diag", Json.Str diag);
                ("valid_after", Json.Num (float_of_int n));
              ])
          s.suspect );
      ("checkpoint_tmp", Json.Bool tmp_leftover);
      ( "tables",
        Json.Obj
          (List.map
             (fun (tid, n) -> (string_of_int tid, Json.Num (float_of_int n)))
             (List.sort compare s.tables)) );
    ]

let run dir allow_torn strict json verbose =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "walinspect: %s: not a directory\n" dir;
    exit 3
  end;
  let verbose = verbose && not json in
  let image =
    match Wal.read_image_info ~dir () with
    | Some i -> I_ok i
    | None -> I_none
    | exception Wal.Corrupt diag -> I_invalid diag
  in
  let tmp_leftover = Sys.file_exists (Filename.concat dir "checkpoint.tmp") in
  let nsegs, s = scan_segments ~dir ~strict ~verbose in
  (* Severity order: corruption beats everything; then suspect (exit 4);
     then torn; a clean scan with a leftover checkpoint.tmp is still
     "recovered but degraded". *)
  let status, code, line =
    match (image, s.corrupt, s.suspect, s.torn) with
    | I_invalid diag, _, _, _ ->
        ("corrupt", 2, Printf.sprintf "CORRUPT: checkpoint image: %s" diag)
    | _, Some (seg, off, diag), _, _ ->
        ( "corrupt",
          2,
          Printf.sprintf
            "CORRUPT: %s at offset %d: %s (non-final segment, or valid \
             records follow under --strict)"
            seg off diag )
    | _, None, _, _ when not s.order_ok ->
        ("corrupt", 2, "CORRUPT: LSN order violated across segments")
    | _, None, Some (seg, off, diag, n), _ ->
        ( "suspect",
          4,
          Printf.sprintf
            "DEGRADED: %s at offset %d: %s — %d valid record(s) beyond the \
             damage (legal under sector reordering; recovery truncates \
             and discards them, none were acked)"
            seg off diag n )
    | _, None, None, Some (seg, off) ->
        if allow_torn then
          ( "torn",
            0,
            Printf.sprintf
              "torn tail: %s at offset %d (recovery would truncate) — ok \
               (torn tail allowed)"
              seg off )
        else
          ( "torn",
            1,
            Printf.sprintf "torn tail: %s at offset %d (recovery would truncate)"
              seg off )
    | _, None, None, None ->
        if tmp_leftover then
          ( "clean",
            4,
            "DEGRADED: leftover checkpoint.tmp (interrupted checkpoint; \
             recovery discards it)" )
        else ("clean", 0, "ok")
  in
  if json then
    print_endline
      (Json.to_string (json_report ~dir ~status ~code ~image ~nsegs ~s ~tmp_leftover))
  else begin
    (match image with
    | I_ok i ->
        Printf.printf
          "checkpoint image: table=%d rows=%d row_len=%d lsn=[%d, %d]\n"
          i.Wal.i_table_id i.Wal.i_num_rows i.Wal.i_row_len i.Wal.i_start_lsn
          i.Wal.i_end_lsn
    | I_invalid _ ->
        Printf.printf "checkpoint image: INVALID (bad magic, length or CRC)\n"
    | I_none -> Printf.printf "checkpoint image: none\n");
    if tmp_leftover then Printf.printf "checkpoint.tmp: leftover (interrupted checkpoint)\n";
    Printf.printf "segments: %d\n" nsegs;
    if s.records = 0 then Printf.printf "records: 0\n"
    else begin
      Printf.printf "records: %d (lsn %d..%d, %d row writes, %d bytes)\n"
        s.records s.min_lsn s.max_lsn s.writes s.bytes;
      List.iter
        (fun (tid, n) -> Printf.printf "  table %d: %d records\n" tid n)
        (List.sort compare s.tables)
    end;
    print_endline line
  end;
  exit code

let () =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"WAL directory (segments + checkpoint image).")
  in
  let allow_torn =
    Arg.(
      value & flag
      & info [ "allow-torn" ]
          ~doc:
            "Exit 0 on a torn tail (the expected state of a log that \
             survived a crash); corruption still fails.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Process-kill crash model: valid records after damaged bytes \
             cannot be sector reordering, so classify them as corruption \
             (exit 2) instead of recovered-but-degraded (exit 4).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON object instead of text.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Dump every record.")
  in
  let doc = "validate and summarize a 2PLSF write-ahead log directory" in
  exit
    (Cmd.eval
       (Cmd.v (Cmd.info "walinspect" ~doc)
          Term.(const run $ dir $ allow_torn $ strict $ json $ verbose)))
