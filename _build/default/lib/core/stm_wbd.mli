(** 2PLSF with a write-back (redo-log) protocol and *deferred* locking —
    the other §2 option.

    Writes only buffer; their write locks are taken at commit, still
    through the starvation-free tryOrWaitWriteLock (the 2PL expanding
    phase simply extends into the commit), so the N_threads − 1 restart
    bound is unchanged.  Compared to {!Stm_wb}: shorter lock hold times
    and no lock traffic for writes that get overwritten, but conflicts
    surface only at commit.  Ablation A3 in DESIGN.md. *)

include Stm_intf.STM

val configure : ?num_locks:int -> unit -> unit
