include Wb_protocol.Make (struct
  let name = "2PLSF-WB"
  let eager = true
end)
