(** 2PLSF with a write-back (redo-log) protocol and *eager* locking.

    §2 of the paper notes that besides the write-through (undo-log)
    implementation of Algorithm 1, "a write-back protocol (redo-log) can
    also be used with either eager locking or deferred locking".  Here
    writes take the write lock at encounter time exactly like {!Stm}, but
    buffer the new value and install it only at commit; aborts discard the
    buffer instead of rolling back memory — cheaper restarts, at the price
    of a write-set lookup on every read (read-own-write) and a second pass
    at commit.  Ablation A3 in DESIGN.md compares the protocols.
    See {!Stm_wbd} for the deferred-locking flavour. *)

include Stm_intf.STM

val configure : ?num_locks:int -> unit -> unit
(** Size of this variant's lock table (distinct from {!Stm}'s). *)
