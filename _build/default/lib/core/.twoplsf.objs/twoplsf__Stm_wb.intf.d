lib/core/stm_wb.mli: Stm_intf
