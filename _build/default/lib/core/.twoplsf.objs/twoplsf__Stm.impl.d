lib/core/stm.ml: Array Atomic Domain Rwl_sf Stdlib Stm_intf Util
