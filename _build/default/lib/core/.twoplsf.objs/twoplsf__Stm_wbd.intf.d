lib/core/stm_wbd.mli: Stm_intf
