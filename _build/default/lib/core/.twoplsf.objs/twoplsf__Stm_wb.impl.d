lib/core/stm_wb.ml: Wb_protocol
