lib/core/stm_wbd.ml: Wb_protocol
