lib/core/wb_protocol.ml: Domain Obj Rwl_sf Stm_intf Util
