lib/core/rwl_sf.ml: Array Atomic Rwlock Util
