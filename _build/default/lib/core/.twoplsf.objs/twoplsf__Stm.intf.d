lib/core/stm.mli: Rwl_sf Stm_intf
