lib/core/rwl_sf.mli:
