include Wb_protocol.Make (struct
  let name = "2PLSF-WBD"
  let eager = false
end)
