(** The 2PLSF software transactional memory (paper Algorithm 1).

    A word-based STM with a write-through (undo-log) protocol: reads take
    the read side and writes the write side of the starvation-free
    reader-writer lock ({!Rwl_sf}) protecting the accessed tvar; all locks
    are released at commit (two-phase locking, hence opacity).  On a lock
    conflict against a higher-priority transaction the attempt restarts:
    writes are rolled back, locks released, and the thread waits for the
    conflicting transaction to commit before retrying.  A transaction
    restarts at most [N_threads - 1] times (§2.2).

    This module implements {!Stm_intf.STM}; the extra entry points below
    expose the paper's §2.8 irrevocability extension and the restart
    accounting used by the starvation-freedom tests. *)

include Stm_intf.STM

val configure : ?num_locks:int -> unit -> unit
(** Set the size of the shared lock table (power of two, default 65536).
    Must be called before the first transaction; later calls raise
    [Failure].  (The paper uses 4M locks over 2^16 threads; see DESIGN.md
    on the scaled default.) *)

val atomic_irrevocable_ro : (tx -> 'a) -> 'a
(** Run a read-only transaction irrevocably (§2.8): it announces the
    reserved priority timestamp before starting, so no conflict can ever
    restart it.  Multiple irrevocable read-only transactions may run
    concurrently.  Sacrifices starvation-freedom for the other threads'
    bound (they may wait behind it) — and must not write. *)

val atomic_irrevocable : (tx -> 'a) -> 'a
(** Run a write transaction irrevocably: acquires the zero-mutex (which
    serializes irrevocable writers) and the reserved priority, executes to
    commit without ever restarting, then releases the mutex.  Avoid
    overlapping with {!atomic_irrevocable_ro} transactions whose footprints
    intersect: two never-restart transactions can otherwise wait on each
    other (documented limitation, inherited from the paper's sketch). *)

val lock_table : unit -> Rwl_sf.t
(** The shared lock table (for tests and diagnostics). *)

val restart_histogram : unit -> int array
(** [restart_histogram ()].(k) = number of committed transactions that
    restarted exactly [k] times (capped at the last bucket); gathered
    across all threads since the last {!reset_stats}.  The
    starvation-freedom experiment asserts the support of this histogram is
    bounded by [N_threads - 1]. *)
