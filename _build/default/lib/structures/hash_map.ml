module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) = struct
  module Bucket = Linked_list.Make (S) (V)

  let name = "hash-map"

  type tx = S.tx
  type value = V.t
  type t = { buckets : Bucket.t array }

  let create ?(buckets = 1024) () =
    if buckets <= 0 then invalid_arg "Hash_map.create";
    { buckets = Array.init buckets (fun _ -> Bucket.create ()) }

  (* Fibonacci hashing spreads consecutive integer keys across buckets. *)
  let bucket t k =
    let h = k * 0x2545F4914F6CDD1D land max_int in
    t.buckets.(h mod Array.length t.buckets)

  let put_tx tx t k v = Bucket.put_tx tx (bucket t k) k v
  let get_tx tx t k = Bucket.get_tx tx (bucket t k) k
  let remove_tx tx t k = Bucket.remove_tx tx (bucket t k) k
  let update_tx tx t k f = Bucket.update_tx tx (bucket t k) k f

  let put t k v = S.atomic (fun tx -> put_tx tx t k v)
  let get t k = S.atomic ~read_only:true (fun tx -> get_tx tx t k)
  let contains t k = get t k <> None
  let remove t k = S.atomic (fun tx -> remove_tx tx t k)
  let update t k f = S.atomic (fun tx -> update_tx tx t k f)

  (* One enclosing transaction so the whole-map views are atomic
     snapshots (the per-bucket calls flatten into it). *)
  let size t =
    S.atomic ~read_only:true (fun _ ->
        Array.fold_left (fun acc b -> acc + Bucket.size b) 0 t.buckets)

  let to_list t =
    let all =
      S.atomic ~read_only:true (fun _ ->
          Array.fold_left
            (fun acc b -> List.rev_append (Bucket.to_list b) acc)
            [] t.buckets)
    in
    List.sort (fun (a, _) (b, _) -> compare a b) all
end
