(** Fixed-capacity chained hash map (Figure 4's hash set).

    An array of sorted-list buckets; operations touch one short bucket, so
    transactions are tiny and mostly disjoint — the workload where the
    per-write-transaction global-clock increment of TL2/TinySTM becomes the
    bottleneck and 2PLSF's conflict-only clock shines (§3.2). *)

module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) : sig
  include Map_intf.MAP with type tx = S.tx and type value = V.t

  val create : ?buckets:int -> unit -> t
  (** [buckets] defaults to 1024 and is fixed for the map's lifetime (the
      paper's benchmark prefills to a known load factor; no resizing). *)
end
