module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) = struct
  let name = "ravl-tree"

  type tx = S.tx
  type value = V.t

  type node = {
    key : int;
    value : value S.tvar;
    left : node option S.tvar;
    right : node option S.tvar;
    height : int S.tvar;
  }

  type t = { root : node option S.tvar }

  let create () = { root = S.tvar None }

  let mk_node k v =
    { key = k; value = S.tvar v; left = S.tvar None; right = S.tvar None;
      height = S.tvar 1 }

  let height_of tx = function None -> 0 | Some n -> S.read tx n.height

  (* Write the height only when it changed: the relaxation that keeps
     writes near the leaves (mli). *)
  let set_height tx n h = if S.read tx n.height <> h then S.write tx n.height h

  let refresh_height tx n =
    let h =
      1 + Stdlib.max (height_of tx (S.read tx n.left)) (height_of tx (S.read tx n.right))
    in
    set_height tx n h

  let rotate_right tx n =
    let l = match S.read tx n.left with Some l -> l | None -> assert false in
    S.write tx n.left (S.read tx l.right);
    S.write tx l.right (Some n);
    refresh_height tx n;
    refresh_height tx l;
    l

  let rotate_left tx n =
    let r = match S.read tx n.right with Some r -> r | None -> assert false in
    S.write tx n.right (S.read tx r.left);
    S.write tx r.left (Some n);
    refresh_height tx n;
    refresh_height tx r;
    r

  (* Restore the AVL invariant at [n]; returns the subtree's (possibly
     new) root. *)
  let balance tx n =
    let hl = height_of tx (S.read tx n.left) in
    let hr = height_of tx (S.read tx n.right) in
    if hl - hr > 1 then begin
      let l = match S.read tx n.left with Some l -> l | None -> assert false in
      if height_of tx (S.read tx l.left) < height_of tx (S.read tx l.right) then
        S.write tx n.left (Some (rotate_left tx l));
      rotate_right tx n
    end
    else if hr - hl > 1 then begin
      let r = match S.read tx n.right with Some r -> r | None -> assert false in
      if height_of tx (S.read tx r.right) < height_of tx (S.read tx r.left) then
        S.write tx n.right (Some (rotate_right tx r));
      rotate_left tx n
    end
    else begin
      set_height tx n (1 + Stdlib.max hl hr);
      n
    end

  let same_opt a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> x == y
    | None, Some _ | Some _, None -> false

  let rec find_node tx cur k =
    match cur with
    | None -> None
    | Some c ->
        if k = c.key then Some c
        else find_node tx (S.read tx (if k < c.key then c.left else c.right)) k

  let get_tx tx t k =
    match find_node tx (S.read tx t.root) k with
    | Some n -> Some (S.read tx n.value)
    | None -> None

  let put_tx tx t k v =
    let added = ref false in
    let rec ins cur =
      match cur with
      | None ->
          added := true;
          Some (mk_node k v)
      | Some n ->
          if k = n.key then begin
            S.write tx n.value v;
            cur
          end
          else begin
            let link = if k < n.key then n.left else n.right in
            let child = S.read tx link in
            let child' = ins child in
            if not (same_opt child child') then S.write tx link child';
            if !added then Some (balance tx n) else cur
          end
    in
    let root = S.read tx t.root in
    let root' = ins root in
    if not (same_opt root root') then S.write tx t.root root';
    !added

  (* Smallest key in a non-empty subtree. *)
  let rec min_node tx n =
    match S.read tx n.left with None -> n | Some l -> min_node tx l

  let remove_tx tx t k =
    let removed = ref false in
    let rec del k cur =
      match cur with
      | None -> None
      | Some n ->
          if k < n.key then begin
            let child = S.read tx n.left in
            let child' = del k child in
            if not (same_opt child child') then S.write tx n.left child';
            if !removed then Some (balance tx n) else cur
          end
          else if k > n.key then begin
            let child = S.read tx n.right in
            let child' = del k child in
            if not (same_opt child child') then S.write tx n.right child';
            if !removed then Some (balance tx n) else cur
          end
          else begin
            removed := true;
            match (S.read tx n.left, S.read tx n.right) with
            | None, r -> r
            | l, None -> l
            | Some _, Some r ->
                (* Two children: splice in the in-order successor.  The
                   replacement reuses [n]'s child/height tvars, so only the
                   successor's removal path and the parent link change. *)
                let succ = min_node tx r in
                let r_child = S.read tx n.right in
                let r' = del succ.key r_child in
                if not (same_opt r_child r') then S.write tx n.right r';
                let m =
                  { key = succ.key; value = succ.value; left = n.left;
                    right = n.right; height = n.height }
                in
                Some (balance tx m)
          end
    in
    let root = S.read tx t.root in
    let root' = del k root in
    if not (same_opt root root') then S.write tx t.root root';
    !removed

  let update_tx tx t k f =
    match find_node tx (S.read tx t.root) k with
    | Some n ->
        S.write tx n.value (f (S.read tx n.value));
        true
    | None -> false

  let put t k v = S.atomic (fun tx -> put_tx tx t k v)
  let get t k = S.atomic ~read_only:true (fun tx -> get_tx tx t k)
  let contains t k = get t k <> None
  let remove t k = S.atomic (fun tx -> remove_tx tx t k)
  let update t k f = S.atomic (fun tx -> update_tx tx t k f)

  let fold_tx tx t f acc =
    let rec go cur acc =
      match cur with
      | None -> acc
      | Some c ->
          let acc = go (S.read tx c.left) acc in
          let acc = f c.key (S.read tx c.value) acc in
          go (S.read tx c.right) acc
    in
    go (S.read tx t.root) acc

  let size t = S.atomic ~read_only:true (fun tx -> fold_tx tx t (fun _ _ n -> n + 1) 0)

  let to_list t =
    List.rev
      (S.atomic ~read_only:true (fun tx ->
           fold_tx tx t (fun k v acc -> (k, v) :: acc) []))

  let check_balanced t =
    S.atomic ~read_only:true (fun tx ->
        let ok = ref true in
        let rec height cur =
          match cur with
          | None -> 0
          | Some n ->
              let hl = height (S.read tx n.left) in
              let hr = height (S.read tx n.right) in
              if abs (hl - hr) > 1 then ok := false;
              let h = 1 + Stdlib.max hl hr in
              if S.read tx n.height <> h then ok := false;
              h
        in
        ignore (height (S.read tx t.root));
        !ok)
end
