module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) = struct
  let name = "linked-list"

  type tx = S.tx
  type value = V.t

  type node = Nil | Node of { key : int; value : value S.tvar; next : node S.tvar }

  type t = { head : node S.tvar }

  let create () = { head = S.tvar Nil }

  (* Walk to the first node with key >= k; returns the tvar holding the
     link to it plus the node itself (the link is what insert/remove
     rewrite). *)
  let rec search tx link k =
    match S.read tx link with
    | Nil -> (link, Nil)
    | Node n as cur -> if n.key >= k then (link, cur) else search tx n.next k

  let get_tx tx t k =
    match search tx t.head k with
    | _, Node n when n.key = k -> Some (S.read tx n.value)
    | _, (Nil | Node _) -> None

  let put_tx tx t k v =
    match search tx t.head k with
    | _, Node n when n.key = k ->
        S.write tx n.value v;
        false
    | link, succ ->
        S.write tx link (Node { key = k; value = S.tvar v; next = S.tvar succ });
        true

  let remove_tx tx t k =
    match search tx t.head k with
    | link, Node n when n.key = k ->
        S.write tx link (S.read tx n.next);
        true
    | _, (Nil | Node _) -> false

  let update_tx tx t k f =
    match search tx t.head k with
    | _, Node n when n.key = k ->
        S.write tx n.value (f (S.read tx n.value));
        true
    | _, (Nil | Node _) -> false

  let put t k v = S.atomic (fun tx -> put_tx tx t k v)
  let get t k = S.atomic ~read_only:true (fun tx -> get_tx tx t k)
  let contains t k = get t k <> None
  let remove t k = S.atomic (fun tx -> remove_tx tx t k)
  let update t k f = S.atomic (fun tx -> update_tx tx t k f)

  let fold_tx tx t f acc =
    let rec go link acc =
      match S.read tx link with
      | Nil -> acc
      | Node n -> go n.next (f n.key (S.read tx n.value) acc)
    in
    go t.head acc

  let size t = S.atomic ~read_only:true (fun tx -> fold_tx tx t (fun _ _ n -> n + 1) 0)

  let to_list t =
    List.rev
      (S.atomic ~read_only:true (fun tx ->
           fold_tx tx t (fun k v acc -> (k, v) :: acc) []))
end
