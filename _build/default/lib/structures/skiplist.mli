(** Transactional skip list (Figure 5).

    Towers of forward pointers with geometrically distributed heights; an
    operation reads O(log n) nodes across levels and an insert/remove
    writes one link per level of the affected tower.  Longer write
    transactions than the hash map — the regime where a per-commit global
    clock stops being the bottleneck for TL2/TinySTM (§3.2). *)

module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) : sig
  include Map_intf.MAP with type tx = S.tx and type value = V.t

  val create : ?max_level:int -> unit -> t
  (** [max_level] defaults to 20 (supports ~2^20 keys). *)

  val check_invariants : t -> bool
  (** Strictly ascending keys at every level, and each level's node list is
      a sublist of the level below (tower consistency); tests. *)
end
