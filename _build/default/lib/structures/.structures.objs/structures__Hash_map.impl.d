lib/structures/hash_map.ml: Array Linked_list List Map_intf Stm_intf
