lib/structures/skiplist.mli: Map_intf Stm_intf
