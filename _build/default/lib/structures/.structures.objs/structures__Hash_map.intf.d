lib/structures/hash_map.mli: Map_intf Stm_intf
