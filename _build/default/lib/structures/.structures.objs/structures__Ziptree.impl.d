lib/structures/ziptree.ml: Domain Int64 List Map_intf Stm_intf Util
