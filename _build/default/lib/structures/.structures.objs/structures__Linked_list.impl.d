lib/structures/linked_list.ml: List Map_intf Stm_intf
