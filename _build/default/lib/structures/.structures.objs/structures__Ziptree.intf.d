lib/structures/ziptree.mli: Map_intf Stm_intf
