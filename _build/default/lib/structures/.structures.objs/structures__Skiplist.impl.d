lib/structures/skiplist.ml: Array Domain Int64 List Map_intf Obj Stm_intf Util
