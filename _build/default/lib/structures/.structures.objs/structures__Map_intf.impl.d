lib/structures/map_intf.ml:
