lib/structures/linked_list.mli: Map_intf Stm_intf
