lib/structures/ravl.mli: Map_intf Stm_intf
