lib/structures/ravl.ml: List Map_intf Stdlib Stm_intf
