module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) = struct
  let name = "zip-tree"

  type tx = S.tx
  type value = V.t

  type node = {
    key : int;
    rank : int;
    value : value S.tvar;
    left : node option S.tvar;
    right : node option S.tvar;
  }

  type t = { root : node option S.tvar }

  let create () = { root = S.tvar None }

  let rng_key =
    Domain.DLS.new_key (fun () ->
        Util.Sprng.create (7 + (Domain.self () :> int)))

  let random_rank () =
    let rng = Domain.DLS.get rng_key in
    let bits = Int64.to_int (Util.Sprng.next rng) land max_int in
    let rec count r bits =
      if bits land 1 = 1 && r < 60 then count (r + 1) (bits lsr 1) else r
    in
    count 0 bits

  let rec find_node tx cur k =
    match cur with
    | None -> None
    | Some c ->
        if k = c.key then Some c
        else find_node tx (S.read tx (if k < c.key then c.left else c.right)) k

  let get_tx tx t k =
    match find_node tx (S.read tx t.root) k with
    | Some n -> Some (S.read tx n.value)
    | None -> None

  (* Unzip the subtree displaced by an insertion: nodes with keys below
     [xkey] chain down right-spines into [left_link], the rest down
     left-spines into [right_link]. *)
  let rec unzip tx xkey cur left_link right_link =
    match cur with
    | None ->
        S.write tx left_link None;
        S.write tx right_link None
    | Some c ->
        if c.key < xkey then begin
          S.write tx left_link cur;
          unzip tx xkey (S.read tx c.right) c.right right_link
        end
        else begin
          S.write tx right_link cur;
          unzip tx xkey (S.read tx c.left) left_link c.left
        end

  (* Rank order: the parent has strictly higher rank, or equal rank and
     smaller key (the zip-tree tie-break). *)
  let stays_above c ~rank ~key =
    c.rank > rank || (c.rank = rank && c.key < key)

  let put_tx tx t k v =
    (* Descend by the rank rule to the insertion link; if the key shows up
       on the way (it can only be on the search path or in the displaced
       subtree), overwrite instead. *)
    let rec descend link rank =
      match S.read tx link with
      | Some c when c.key = k -> `Exists c
      | Some c when stays_above c ~rank ~key:k ->
          descend (if k < c.key then c.left else c.right) rank
      | cur -> `Insert (link, cur)
    in
    let rank = random_rank () in
    match descend t.root rank with
    | `Exists c ->
        S.write tx c.value v;
        false
    | `Insert (link, displaced) -> (
        match find_node tx displaced k with
        | Some c ->
            S.write tx c.value v;
            false
        | None ->
            let x =
              { key = k; rank; value = S.tvar v; left = S.tvar None; right = S.tvar None }
            in
            S.write tx link (Some x);
            unzip tx k displaced x.left x.right;
            true)

  (* Zip two subtrees (all keys in [l] below all keys in [r]) into one,
     rewriting only the merge spine. *)
  let rec zip tx l r =
    match (l, r) with
    | None, r -> r
    | l, None -> l
    | Some lc, Some rc ->
        if lc.rank >= rc.rank then begin
          let merged = zip tx (S.read tx lc.right) r in
          S.write tx lc.right merged;
          l
        end
        else begin
          let merged = zip tx l (S.read tx rc.left) in
          S.write tx rc.left merged;
          r
        end

  let remove_tx tx t k =
    let rec find_link link =
      match S.read tx link with
      | None -> None
      | Some c ->
          if k = c.key then Some (link, c)
          else find_link (if k < c.key then c.left else c.right)
    in
    match find_link t.root with
    | None -> false
    | Some (link, c) ->
        let merged = zip tx (S.read tx c.left) (S.read tx c.right) in
        S.write tx link merged;
        true

  let update_tx tx t k f =
    match find_node tx (S.read tx t.root) k with
    | Some n ->
        S.write tx n.value (f (S.read tx n.value));
        true
    | None -> false

  let put t k v = S.atomic (fun tx -> put_tx tx t k v)
  let get t k = S.atomic ~read_only:true (fun tx -> get_tx tx t k)
  let contains t k = get t k <> None
  let remove t k = S.atomic (fun tx -> remove_tx tx t k)
  let update t k f = S.atomic (fun tx -> update_tx tx t k f)

  let fold_tx tx t f acc =
    let rec go cur acc =
      match cur with
      | None -> acc
      | Some c ->
          let acc = go (S.read tx c.left) acc in
          let acc = f c.key (S.read tx c.value) acc in
          go (S.read tx c.right) acc
    in
    go (S.read tx t.root) acc

  let check_invariants t =
    S.atomic ~read_only:true (fun tx ->
        let ok = ref true in
        (* parent beats child: higher rank, or equal rank and smaller key *)
        let dominates p c =
          p.rank > c.rank || (p.rank = c.rank && p.key < c.key)
        in
        let rec walk cur lo hi =
          match cur with
          | None -> ()
          | Some c ->
              (match lo with Some l when c.key <= l -> ok := false | _ -> ());
              (match hi with Some h when c.key >= h -> ok := false | _ -> ());
              let l = S.read tx c.left and r = S.read tx c.right in
              (match l with
              | Some lc when not (dominates c lc) -> ok := false
              | Some _ | None -> ());
              (match r with
              | Some rc when not (dominates c rc) -> ok := false
              | Some _ | None -> ());
              walk l lo (Some c.key);
              walk r (Some c.key) hi
        in
        walk (S.read tx t.root) None None;
        !ok)

  let size t = S.atomic ~read_only:true (fun tx -> fold_tx tx t (fun _ _ n -> n + 1) 0)

  let to_list t =
    List.rev
      (S.atomic ~read_only:true (fun tx ->
           fold_tx tx t (fun k v acc -> (k, v) :: acc) []))
end
