(** Transactional zip tree [Tarjan, Levy, Timmel 2019] (Figure 6).

    A randomized balanced BST: node ranks are geometric, insertion unzips
    the search path at the rank-determined insertion point, deletion zips
    the two subtrees back together.  Structural writes touch only the
    unzipped/zipped spine, so write transactions are short and localized —
    a similar regime to the skip list in the paper's evaluation. *)

module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) : sig
  include Map_intf.MAP with type tx = S.tx and type value = V.t

  val create : unit -> t

  val check_invariants : t -> bool
  (** BST key order plus the zip-tree rank rule (parent rank strictly
      higher, or equal with smaller key) hold everywhere (tests). *)
end
