module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) = struct
  let name = "skip-list"

  type tx = S.tx
  type value = V.t

  type node = {
    key : int;
    value : value S.tvar;
    next : node option S.tvar array; (* length = tower height *)
  }

  type t = { head : node; max_level : int }

  let mk_node k v level =
    { key = k; value = S.tvar v; next = Array.init level (fun _ -> S.tvar None) }

  let create ?(max_level = 20) () =
    if max_level <= 0 then invalid_arg "Skiplist.create";
    (* The head sentinel compares below every key; its value is never read. *)
    { head = mk_node min_int (Obj.magic 0 : value) max_level; max_level }

  let rng_key =
    Domain.DLS.new_key (fun () ->
        Util.Sprng.create (1 + (Domain.self () :> int)))

  (* Geometric tower height: p = 1/2 per extra level. *)
  let random_level t =
    let rng = Domain.DLS.get rng_key in
    let bits = Int64.to_int (Util.Sprng.next rng) land max_int in
    let rec count lvl bits =
      if lvl >= t.max_level || bits land 1 = 0 then lvl
      else count (lvl + 1) (bits lsr 1)
    in
    count 1 bits

  (* Per level, the last node with key < k.  [preds.(i)] is that node at
     level i; returns the level-0 successor. *)
  let find tx t k =
    let preds = Array.make t.max_level t.head in
    let succ0 = ref None in
    let rec down level node =
      if level < 0 then ()
      else begin
        let rec forward node =
          match S.read tx node.next.(level) with
          | Some n when n.key < k -> forward n
          | s -> (node, s)
        in
        let pred, succ = forward node in
        preds.(level) <- pred;
        if level = 0 then succ0 := succ;
        down (level - 1) pred
      end
    in
    down (t.max_level - 1) t.head;
    (preds, !succ0)

  let get_tx tx t k =
    (* Lookup needs no predecessor bookkeeping: straight descent. *)
    let rec down level node =
      if level < 0 then None
      else begin
        let rec forward node =
          match S.read tx node.next.(level) with
          | Some n when n.key < k -> forward n
          | s -> (node, s)
        in
        let pred, succ = forward node in
        match succ with
        | Some n when n.key = k -> Some n
        | Some _ | None -> down (level - 1) pred
      end
    in
    match down (t.max_level - 1) t.head with
    | Some n -> Some (S.read tx n.value)
    | None -> None

  let put_tx tx t k v =
    let preds, succ0 = find tx t k in
    match succ0 with
    | Some n when n.key = k ->
        S.write tx n.value v;
        false
    | Some _ | None ->
        let level = random_level t in
        let node = mk_node k v level in
        for i = 0 to level - 1 do
          S.write tx node.next.(i) (S.read tx preds.(i).next.(i));
          S.write tx preds.(i).next.(i) (Some node)
        done;
        true

  let remove_tx tx t k =
    let preds, succ0 = find tx t k in
    match succ0 with
    | Some n when n.key = k ->
        let level = Array.length n.next in
        for i = level - 1 downto 0 do
          (match S.read tx preds.(i).next.(i) with
          | Some m when m == n -> S.write tx preds.(i).next.(i) (S.read tx n.next.(i))
          | Some _ | None -> ())
        done;
        true
    | Some _ | None -> false

  let update_tx tx t k f =
    let _, succ0 = find tx t k in
    match succ0 with
    | Some n when n.key = k ->
        S.write tx n.value (f (S.read tx n.value));
        true
    | Some _ | None -> false

  let put t k v = S.atomic (fun tx -> put_tx tx t k v)
  let get t k = S.atomic ~read_only:true (fun tx -> get_tx tx t k)
  let contains t k = get t k <> None
  let remove t k = S.atomic (fun tx -> remove_tx tx t k)
  let update t k f = S.atomic (fun tx -> update_tx tx t k f)

  let fold_tx tx t f acc =
    let rec go cur acc =
      match S.read tx cur.next.(0) with
      | None -> acc
      | Some n -> go n (f n.key (S.read tx n.value) acc)
    in
    go t.head acc

  let check_invariants t =
    S.atomic ~read_only:true (fun tx ->
        let ok = ref true in
        let keys_at level =
          let rec go node acc =
            match S.read tx node.next.(level) with
            | None -> List.rev acc
            | Some n ->
                if Array.length n.next <= level then ok := false;
                go n (n.key :: acc)
          in
          go t.head []
        in
        let rec ascending = function
          | a :: (b :: _ as rest) ->
              if a >= b then ok := false;
              ascending rest
          | [ _ ] | [] -> ()
        in
        let rec sublist xs ys =
          match (xs, ys) with
          | [], _ -> true
          | _, [] -> false
          | x :: xs', y :: ys' ->
              if x = y then sublist xs' ys' else sublist xs ys'
        in
        let below = ref (keys_at 0) in
        ascending !below;
        for level = 1 to t.max_level - 1 do
          let ks = keys_at level in
          ascending ks;
          if not (sublist ks !below) then ok := false;
          below := ks
        done;
        !ok)

  let size t = S.atomic ~read_only:true (fun tx -> fold_tx tx t (fun _ _ n -> n + 1) 0)

  let to_list t =
    List.rev
      (S.atomic ~read_only:true (fun tx ->
           fold_tx tx t (fun k v acc -> (k, v) :: acc) []))
end
