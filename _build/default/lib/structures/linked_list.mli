(** Sorted singly-linked list map (Figure 3's linked-list set).

    The canonical worst case for STM read sets: every operation reads the
    chain of nodes from the head, so transactions are long and read-heavy
    and almost all pairs of operations overlap on the head prefix —
    the workload where the paper shows 2PLSF winning write-intensive mixes
    but losing read-mostly ones to the optimistic STMs. *)

module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) : sig
  include Map_intf.MAP with type tx = S.tx and type value = V.t

  val create : unit -> t
end
