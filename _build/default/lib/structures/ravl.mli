(** Transactional relaxed AVL tree (Figures 2 and 7).

    The paper benchmarks Larsen's relaxed AVL tree [IPPS 1994], chosen for
    disjoint access: rebalancing is decoupled from the update so writes
    stay near the leaves.  We implement a height-balanced AVL whose
    relaxation is *update laziness*: heights are rewritten only when they
    actually change and rotations happen only where the balance factor
    demands, so the common insert/remove writes a leaf link and at most a
    short suffix of the path — preserving the disjoint-access behaviour the
    figures depend on.  (Full Larsen deferred-rebalancing is not
    implemented; see DESIGN.md §3.)  Unlike the randomized trees, the
    height bound here is deterministic, which is why the paper's RAVL posts
    the highest absolute throughput of the three trees. *)

module Make (S : Stm_intf.STM) (V : Map_intf.VALUE) : sig
  include Map_intf.MAP with type tx = S.tx and type value = V.t

  val create : unit -> t

  val check_balanced : t -> bool
  (** Every node's balance factor is in [-1, 1] and stored heights are
      consistent (tests). *)
end
