(** Interface of the transactional set/map data structures used in the
    paper's evaluation (§3.2 sets, §3.3 maps).

    Every structure is a functor over {!Stm_intf.STM} and a value type, so
    the same linked list / hash map / skip list / zip tree / relaxed AVL
    tree definition runs under all eleven concurrency controls.  Keys are
    integers (as in the paper's integer-set microbenchmarks); a set is a
    map to [unit].

    Each operation exists in two forms: [*_tx] composes into an enclosing
    transaction (the "index inside the transaction" use-case of §5), and
    the plain form wraps itself in [S.atomic]. *)

module type VALUE = sig
  type t
end

module type MAP = sig
  type t
  type tx
  type value

  val name : string

  val put_tx : tx -> t -> int -> value -> bool
  (** [true] if the key was absent (a mapping was created); on an existing
      key the value is overwritten and the result is [false]. *)

  val get_tx : tx -> t -> int -> value option
  val remove_tx : tx -> t -> int -> bool
  val update_tx : tx -> t -> int -> (value -> value) -> bool
  (** Read-modify-write of an existing key's value (the Figure 8 record
      update); [false] when the key is absent. *)

  val put : t -> int -> value -> bool
  val get : t -> int -> value option
  val contains : t -> int -> bool
  val remove : t -> int -> bool
  val update : t -> int -> (value -> value) -> bool

  val size : t -> int
  (** Number of keys; a full transactional traversal — tests only. *)

  val to_list : t -> (int * value) list
  (** All bindings in ascending key order; a full transactional traversal
      — tests only. *)
end

(** A set is a map to unit; these shorthands keep benchmarks readable. *)
module Set_ops (M : MAP with type value = unit) = struct
  let add t k = M.put t k ()
  let add_tx tx t k = M.put_tx tx t k ()
  let mem t k = M.contains t k
  let mem_tx tx t k = M.get_tx tx t k <> None
  let remove = M.remove
  let remove_tx = M.remove_tx
end
