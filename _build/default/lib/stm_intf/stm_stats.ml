type t = {
  commits : int Atomic.t array;
  aborts : int Atomic.t array;
  clock : int Atomic.t array;
}

let create () =
  {
    commits = Array.init Util.Tid.max_threads (fun _ -> Atomic.make 0);
    aborts = Array.init Util.Tid.max_threads (fun _ -> Atomic.make 0);
    clock = Array.init Util.Tid.max_threads (fun _ -> Atomic.make 0);
  }

let commit t ~tid = Atomic.incr t.commits.(tid)
let abort t ~tid = Atomic.incr t.aborts.(tid)
let clock_op t ~tid = Atomic.incr t.clock.(tid)

let sum a = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 a
let commits t = sum t.commits
let aborts t = sum t.aborts
let clock_ops t = sum t.clock

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.commits;
  Array.iter (fun c -> Atomic.set c 0) t.aborts;
  Array.iter (fun c -> Atomic.set c 0) t.clock
