(** Per-STM commit/abort accounting.

    Counters are kept per thread id (no sharing in the hot path) and summed
    on demand; every STM in the repository owns one instance so benchmark
    reports can show abort rates next to throughput. *)

type t

val create : unit -> t
val commit : t -> tid:int -> unit
val abort : t -> tid:int -> unit

val clock_op : t -> tid:int -> unit
(** Count one increment of the STM's central clock — the scalability
    bottleneck §3.3/§4.1 of the paper argues about.  2PLSF pays one per
    *conflict*, TL2/TinySTM/OREC one per write transaction, wait-or-die one
    per transaction. *)

val commits : t -> int
val aborts : t -> int
val clock_ops : t -> int
val reset : t -> unit
