lib/stm_intf/stm_intf.ml: Stm_stats
