lib/stm_intf/stm_stats.ml: Array Atomic Util
