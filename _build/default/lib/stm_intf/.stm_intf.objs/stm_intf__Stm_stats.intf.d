lib/stm_intf/stm_stats.mli:
