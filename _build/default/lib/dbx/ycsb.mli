(** YCSB transaction generator, following the DBx1000 setup the paper uses
    for Figure 11: 16 accesses per transaction, a 50/50 read/write ratio,
    keys drawn from a zipfian distribution whose theta sets the contention
    level (high = 0.9, medium = 0.6, low = uniform; DESIGN.md §3.8). *)

type access = Read | Write

type txn = { keys : int array; ops : access array }

type gen

val accesses_per_txn : int
(** 16, the DBx1000 default. *)

val contention_theta : [ `High | `Medium | `Low ] -> float

val make_gen :
  ?seed:int -> num_keys:int -> theta:float -> write_ratio:float -> unit -> gen
(** One generator per worker thread (generators are not thread-safe). *)

val next : gen -> txn
(** Generate the next transaction.  Keys within a transaction are distinct
    (duplicate zipf draws are rejected) so lock-upgrade behaviour does not
    differ across concurrency controls. *)
