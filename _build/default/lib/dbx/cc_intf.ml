(** Row-level concurrency-control interface for the YCSB benchmark.

    Each concurrency control runs a generated transaction to commit,
    retrying internally on aborts exactly as the paper configures DBx1000:
    no abort buffer and no restart backoff (2PLSF waits for its specific
    conflictor; wait-die waits by timestamp order; no-wait retries
    immediately). *)

module type CC = sig
  val name : string

  type t

  val create : Table.t -> t

  val execute : t -> tid:int -> Ycsb.txn -> int
  (** Run the transaction to commit; returns the number of aborted attempts
      it took (0 = first try). *)
end

(* The per-access "work" every CC performs on a tuple, shared so all
   concurrency controls pay identical data-access costs. *)

let read_work payload =
  let acc = ref 0 in
  for i = 0 to 7 do
    acc := !acc + Char.code (Bytes.get payload i)
  done;
  !acc

let write_work payload =
  for i = 0 to 7 do
    Bytes.set payload i (Char.chr ((Char.code (Bytes.get payload i) + 1) land 0xFF))
  done
