(** The three classic 2PL variants shipped with DBx1000 (Figure 11):
    NO_WAIT, WAIT_DIE and DL_DETECT, over per-row shared/exclusive locks
    (the paper runs them over pthread mutexes; here each row lock is a
    tiny spinlock-guarded owner table).

    - NO_WAIT aborts on any conflict and retries immediately (the paper
      disables the restart backoff).
    - WAIT_DIE stamps every transaction from a global clock at begin (kept
      across restarts); on conflict, an older requester waits, a younger
      one dies.
    - DL_DETECT waits on conflict, recording edges in a waits-for graph;
      the requester aborts itself when its wait would close a cycle. *)

type variant = No_wait | Wait_die | Dl_detect

val variant_name : variant -> string

module Make (V : sig
  val variant : variant
end) : Cc_intf.CC
