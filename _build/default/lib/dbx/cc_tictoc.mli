(** TicToc [Yu et al., SIGMOD 2016]: time-traveling optimistic concurrency
    control — the strongest baseline in Figure 11.

    Each tuple carries a packed (lock, wts, delta) word; reads are
    optimistic, writes are buffered, and commit computes a per-transaction
    commit timestamp from the accessed tuples' write/read timestamps,
    extending read leases where possible.  Serializable but not opaque —
    the property trade-off §3.5 discusses. *)

include Cc_intf.CC
