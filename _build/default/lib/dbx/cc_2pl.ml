type variant = No_wait | Wait_die | Dl_detect

let variant_name = function
  | No_wait -> "NO_WAIT"
  | Wait_die -> "WAIT_DIE"
  | Dl_detect -> "DL_DETECT"

(* Per-row lock: a spinlock-guarded owner table.  [writer] holds tid+1 (0 =
   none); the reader-owner bitmask is split across two words because OCaml
   ints hold 63 bits and [Util.Tid.max_threads] is 64. *)
type row_lock = {
  guard : Rwlock.Spinlock.t;
  mutable writer : int;
  mutable readers_lo : int; (* tids 0..31 *)
  mutable readers_hi : int; (* tids 32..63 *)
}

let reader_word rl tid = if tid < 32 then rl.readers_lo else rl.readers_hi
let reader_bit tid = 1 lsl (tid land 31)
let has_reader rl tid = reader_word rl tid land reader_bit tid <> 0

let add_reader rl tid =
  if tid < 32 then rl.readers_lo <- rl.readers_lo lor reader_bit tid
  else rl.readers_hi <- rl.readers_hi lor reader_bit tid

let remove_reader rl tid =
  if tid < 32 then rl.readers_lo <- rl.readers_lo land lnot (reader_bit tid)
  else rl.readers_hi <- rl.readers_hi land lnot (reader_bit tid)

let only_possible_reader rl tid =
  (* no reader bit other than possibly [tid]'s *)
  let lo = if tid < 32 then rl.readers_lo land lnot (reader_bit tid) else rl.readers_lo in
  let hi = if tid >= 32 then rl.readers_hi land lnot (reader_bit tid) else rl.readers_hi in
  lo = 0 && hi = 0

module Make (V : sig
  val variant : variant
end) =
struct
  let name = variant_name V.variant

  type per_thread = {
    tid : int;
    rlocks : int Util.Vec.t; (* rids share-locked *)
    wlocks : int Util.Vec.t; (* rids exclusive-locked *)
    undo : (int * Bytes.t) Util.Vec.t;
  }

  type t = {
    table : Table.t;
    locks : row_lock array;
    ts_clock : int Atomic.t; (* WAIT_DIE transaction timestamps *)
    txn_ts : int Atomic.t array; (* announced per-thread ts, 0 = none *)
    waits_for : bool Atomic.t array; (* DL_DETECT adjacency, row-major *)
    edges_dirty : bool array; (* per tid: out-edges were recorded *)
    threads : per_thread array;
  }

  let mt = Util.Tid.max_threads

  let create table =
    assert (mt <= 64);
    {
      table;
      locks =
        Array.init (Table.num_rows table) (fun _ ->
            {
              guard = Rwlock.Spinlock.create ();
              writer = 0;
              readers_lo = 0;
              readers_hi = 0;
            });
      ts_clock = Atomic.make 1;
      txn_ts = Array.init mt (fun _ -> Atomic.make 0);
      waits_for = Array.init (mt * mt) (fun _ -> Atomic.make false);
      edges_dirty = Array.make mt false;
      threads =
        Array.init mt (fun tid ->
            {
              tid;
              rlocks = Util.Vec.create ~dummy:(-1) ();
              wlocks = Util.Vec.create ~dummy:(-1) ();
              undo = Util.Vec.create ~dummy:(-1, Bytes.empty) ();
            });
    }

  (* ---- waits-for graph (DL_DETECT) ---- *)

  let edge t a b = t.waits_for.((a * mt) + b)

  let clear_out_edges t a =
    if t.edges_dirty.(a) then begin
      t.edges_dirty.(a) <- false;
      for b = 0 to mt - 1 do
        Atomic.set (edge t a b) false
      done
    end

  let would_deadlock t me =
    (* DFS over the waits-for graph looking for a path back to [me]. *)
    let visited = Array.make mt false in
    let rec reachable a =
      if a = me then true
      else if visited.(a) then false
      else begin
        visited.(a) <- true;
        let rec scan b =
          b < mt
          && ((Atomic.get (edge t a b) && reachable b) || scan (b + 1))
        in
        scan 0
      end
    in
    let rec from b =
      b < mt && ((Atomic.get (edge t me b) && reachable b) || from (b + 1))
    in
    from 0

  (* ---- conflict decisions ---- *)

  let ts_of t tid = Atomic.get t.txn_ts.(tid)

  let min_owner_ts t rl ~self =
    let m = ref max_int in
    if rl.writer <> 0 && rl.writer - 1 <> self then
      m := Stdlib.min !m (ts_of t (rl.writer - 1));
    for b = 0 to mt - 1 do
      if b <> self && has_reader rl b then m := Stdlib.min !m (ts_of t b)
    done;
    !m

  let record_wait_edges t rl ~self =
    t.edges_dirty.(self) <- true;
    if rl.writer <> 0 && rl.writer - 1 <> self then
      Atomic.set (edge t self (rl.writer - 1)) true;
    for b = 0 to mt - 1 do
      if b <> self && has_reader rl b then Atomic.set (edge t self b) true
    done

  type decision = Granted | Wait | Die

  (* Caller holds [rl.guard]. *)
  let decide t p rl ~exclusive =
    let self = p.tid in
    let conflict =
      if exclusive then
        (rl.writer <> 0 && rl.writer <> self + 1)
        || not (only_possible_reader rl self)
      else rl.writer <> 0 && rl.writer <> self + 1
    in
    if not conflict then begin
      if exclusive then rl.writer <- self + 1
      else add_reader rl self;
      Granted
    end
    else
      match V.variant with
      | No_wait -> Die
      | Wait_die ->
          if ts_of t self < min_owner_ts t rl ~self then Wait else Die
      | Dl_detect ->
          record_wait_edges t rl ~self;
          if would_deadlock t self then Die else Wait

  let acquire t p rid ~exclusive =
    let rl = t.locks.(rid) in
    let b = Util.Backoff.create () in
    let rec go () =
      Rwlock.Spinlock.lock rl.guard;
      let d = decide t p rl ~exclusive in
      Rwlock.Spinlock.unlock rl.guard;
      match d with
      | Granted ->
          if V.variant = Dl_detect then clear_out_edges t p.tid;
          true
      | Die ->
          if V.variant = Dl_detect then clear_out_edges t p.tid;
          false
      | Wait ->
          Util.Backoff.once b;
          go ()
    in
    go ()

  let release_all t p =
    let self = p.tid in
    Util.Vec.iter
      (fun rid ->
        let rl = t.locks.(rid) in
        Rwlock.Spinlock.lock rl.guard;
        if rl.writer = self + 1 then rl.writer <- 0;
        Rwlock.Spinlock.unlock rl.guard)
      p.wlocks;
    Util.Vec.iter
      (fun rid ->
        let rl = t.locks.(rid) in
        Rwlock.Spinlock.lock rl.guard;
        remove_reader rl self;
        Rwlock.Spinlock.unlock rl.guard)
      p.rlocks

  let holds_write t p rid = t.locks.(rid).writer = p.tid + 1
  let holds_read t p rid = has_reader t.locks.(rid) p.tid

  let attempt t p (txn : Ycsb.txn) =
    Util.Vec.clear p.rlocks;
    Util.Vec.clear p.wlocks;
    Util.Vec.clear p.undo;
    let n = Array.length txn.keys in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n do
      let rid = Table.lookup t.table txn.keys.(!i) in
      (match txn.ops.(!i) with
      | Ycsb.Read ->
          if
            holds_read t p rid || holds_write t p rid
            || (acquire t p rid ~exclusive:false
               && begin
                    Util.Vec.push p.rlocks rid;
                    true
                  end)
          then ignore (Cc_intf.read_work (Table.payload t.table rid))
          else ok := false
      | Ycsb.Write ->
          let held = holds_write t p rid in
          if held || acquire t p rid ~exclusive:true then begin
            if not held then Util.Vec.push p.wlocks rid;
            let payload = Table.payload t.table rid in
            Util.Vec.push p.undo (rid, Bytes.copy payload);
            Cc_intf.write_work payload
          end
          else ok := false);
      incr i
    done;
    if !ok then begin
      release_all t p;
      true
    end
    else begin
      Util.Vec.iter_rev
        (fun (rid, image) ->
          Bytes.blit image 0 (Table.payload t.table rid) 0 Table.tuple_size)
        p.undo;
      release_all t p;
      false
    end

  let execute t ~tid txn =
    let p = t.threads.(tid) in
    (* WAIT_DIE: one timestamp per transaction, kept across restarts. *)
    if V.variant = Wait_die then
      Atomic.set t.txn_ts.(tid) (Atomic.fetch_and_add t.ts_clock 1);
    let aborts = ref 0 in
    while not (attempt t p txn) do
      incr aborts
    done;
    if V.variant = Wait_die then Atomic.set t.txn_ts.(tid) 0;
    if V.variant = Dl_detect then clear_out_edges t tid;
    !aborts
end
