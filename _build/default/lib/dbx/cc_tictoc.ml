let name = "TicToc"

(* Word layout (63-bit OCaml int):
   bit 0        = lock
   bits 1..40   = wts (40 bits)
   bits 41..62  = delta = rts - wts (22 bits, capped) *)

let lock_bit = 1
let wts_shift = 1
let wts_mask = (1 lsl 40) - 1
let delta_shift = 41
let delta_max = (1 lsl 22) - 1

let is_locked w = w land lock_bit <> 0
let wts_of w = (w lsr wts_shift) land wts_mask
let delta_of w = w lsr delta_shift
let rts_of w = wts_of w + delta_of w

let pack ~locked ~wts ~rts =
  let delta = Stdlib.min (rts - wts) delta_max in
  (if locked then lock_bit else 0)
  lor (wts lsl wts_shift)
  lor (delta lsl delta_shift)

type per_thread = {
  rset : (int * int) Util.Vec.t; (* (rid, observed word) *)
  wset : (int * int) Util.Vec.t; (* (rid, observed word at buffering time) *)
  locked : int Util.Vec.t; (* rids locked during commit *)
}

type t = { table : Table.t; words : int Atomic.t array; threads : per_thread array }

let create table =
  {
    table;
    words = Array.init (Table.num_rows table) (fun _ -> Atomic.make (pack ~locked:false ~wts:0 ~rts:0));
    threads =
      Array.init Util.Tid.max_threads (fun _ ->
          {
            rset = Util.Vec.create ~dummy:(-1, 0) ();
            wset = Util.Vec.create ~dummy:(-1, 0) ();
            locked = Util.Vec.create ~dummy:(-1) ();
          });
  }

exception Abort

let stable_word t rid =
  (* Read an unlocked word, spinning through writer commits. *)
  let b = Util.Backoff.create () in
  let rec go () =
    let w = Atomic.get t.words.(rid) in
    if is_locked w then begin
      Util.Backoff.once b;
      go ()
    end
    else w
  in
  go ()

let try_lock_row t rid =
  let w = Atomic.get t.words.(rid) in
  (not (is_locked w)) && Atomic.compare_and_set t.words.(rid) w (w lor lock_bit)

let unlock_row t rid =
  let w = Atomic.get t.words.(rid) in
  Atomic.set t.words.(rid) (w land lnot lock_bit)

let release_locked t p =
  Util.Vec.iter (fun rid -> unlock_row t rid) p.locked

let attempt t p (txn : Ycsb.txn) =
  Util.Vec.clear p.rset;
  Util.Vec.clear p.wset;
  Util.Vec.clear p.locked;
  try
    (* Execution phase: optimistic reads, buffered writes. *)
    let n = Array.length txn.keys in
    for i = 0 to n - 1 do
      let rid = Table.lookup t.table txn.keys.(i) in
      match txn.ops.(i) with
      | Ycsb.Read ->
          let w = stable_word t rid in
          ignore (Cc_intf.read_work (Table.payload t.table rid));
          if Atomic.get t.words.(rid) <> w then raise Abort;
          Util.Vec.push p.rset (rid, w)
      | Ycsb.Write ->
          let w = stable_word t rid in
          Util.Vec.push p.wset (rid, w)
    done;
    (* Lock phase (no-wait); a row written twice appears twice in the
       write set but must be locked once. *)
    Util.Vec.iter
      (fun (rid, _) ->
        if Util.Vec.exists (fun r -> r = rid) p.locked then ()
        else if try_lock_row t rid then Util.Vec.push p.locked rid
        else raise Abort)
      p.wset;
    (* Commit timestamp. *)
    let ct = ref 0 in
    Util.Vec.iter
      (fun (rid, _) ->
        let w = Atomic.get t.words.(rid) in
        ct := Stdlib.max !ct (rts_of w + 1))
      p.wset;
    Util.Vec.iter (fun (_, w) -> ct := Stdlib.max !ct (wts_of w)) p.rset;
    let ct = !ct in
    (* Read-set validation with rts extension. *)
    Util.Vec.iter
      (fun (rid, observed) ->
        if rts_of observed < ct then begin
          let cur = Atomic.get t.words.(rid) in
          if wts_of cur <> wts_of observed then raise Abort;
          if is_locked cur then begin
            (* Our own commit lock is fine (the write phase stamps the row
               to ct anyway); anyone else's kills the read lease. *)
            if not (Util.Vec.exists (fun r -> r = rid) p.locked) then
              raise Abort
          end
          else if rts_of cur < ct then begin
            let extended = pack ~locked:false ~wts:(wts_of cur) ~rts:ct in
            if not (Atomic.compare_and_set t.words.(rid) cur extended) then
              raise Abort
          end
        end)
      p.rset;
    (* Write phase. *)
    Util.Vec.iter
      (fun (rid, _) ->
        Cc_intf.write_work (Table.payload t.table rid);
        Atomic.set t.words.(rid) (pack ~locked:false ~wts:ct ~rts:ct))
      p.wset;
    true
  with Abort ->
    release_locked t p;
    false

let execute t ~tid txn =
  let p = t.threads.(tid) in
  let aborts = ref 0 in
  while not (attempt t p txn) do
    incr aborts
  done;
  !aborts
