lib/dbx/runner.ml: Atomic Bytes Cc_2pl Cc_2plsf Cc_intf Cc_tictoc Char Harness List Table Util Ycsb
