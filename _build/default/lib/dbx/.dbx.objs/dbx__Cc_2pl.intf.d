lib/dbx/cc_2pl.mli: Cc_intf
