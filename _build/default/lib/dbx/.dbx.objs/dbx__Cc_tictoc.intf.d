lib/dbx/cc_tictoc.mli: Cc_intf
