lib/dbx/ycsb.mli:
