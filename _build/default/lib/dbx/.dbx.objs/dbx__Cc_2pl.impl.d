lib/dbx/cc_2pl.ml: Array Atomic Bytes Cc_intf Rwlock Stdlib Table Util Ycsb
