lib/dbx/table.mli: Bytes
