lib/dbx/cc_tictoc.ml: Array Atomic Cc_intf Stdlib Table Util Ycsb
