lib/dbx/cc_intf.ml: Bytes Char Table Ycsb
