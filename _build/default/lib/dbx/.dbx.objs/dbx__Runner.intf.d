lib/dbx/runner.mli: Cc_intf Table
