lib/dbx/cc_2plsf.ml: Array Bytes Cc_intf Table Twoplsf Util Ycsb
