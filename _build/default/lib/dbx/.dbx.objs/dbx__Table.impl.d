lib/dbx/table.ml: Array Bytes Char
