lib/dbx/cc_2plsf.mli: Cc_intf
