lib/dbx/ycsb.ml: Array Util
