type access = Read | Write

type txn = { keys : int array; ops : access array }

let accesses_per_txn = 16

let contention_theta = function `High -> 0.9 | `Medium -> 0.6 | `Low -> 0.

type gen = {
  zipf : Util.Zipf.t;
  rng : Util.Sprng.t;
  write_ratio : float;
  txn : txn; (* reused across calls; callers consume before next () *)
}

let make_gen ?(seed = 7) ~num_keys ~theta ~write_ratio () =
  {
    zipf = Util.Zipf.create ~seed ~n:num_keys ~theta ();
    rng = Util.Sprng.create (seed * 31 + 1);
    write_ratio;
    txn =
      {
        keys = Array.make accesses_per_txn 0;
        ops = Array.make accesses_per_txn Read;
      };
  }

let next g =
  let t = g.txn in
  for i = 0 to accesses_per_txn - 1 do
    (* Reject duplicate keys within the transaction. *)
    let rec draw attempts =
      let k = Util.Zipf.next g.zipf in
      let rec dup j = j < i && (t.keys.(j) = k || dup (j + 1)) in
      if dup 0 && attempts < 100 then draw (attempts + 1) else k
    in
    t.keys.(i) <- draw 0;
    t.ops.(i) <-
      (if Util.Sprng.float g.rng < g.write_ratio then Write else Read)
  done;
  t
