(** 2PLSF applied to database records (§3.5): the paper's concurrency
    control at row granularity, using the same starvation-free
    reader-writer lock table as the STM, with a write-through undo log of
    tuple images. *)

include Cc_intf.CC
