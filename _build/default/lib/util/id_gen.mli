(** Unique integer ids for transactional variables.

    The paper hashes raw memory addresses into the lock table
    ([addr2lockIdx], Algorithm 1 line 41).  OCaml's moving GC rules out
    address hashing, so every tvar gets a unique integer id at creation and
    the id is hashed instead.  Ids are handed out in per-domain blocks so
    that tvar allocation inside transactions does not contend on a single
    atomic counter. *)

val next : unit -> int
(** A process-wide unique non-negative id. *)

val block_size : int
(** Ids reserved per domain at a time. *)
