type t = { mutable n : int }

let create () = { n = 0 }

let yield () = Unix.sleepf 1e-6

let once t =
  t.n <- t.n + 1;
  if t.n <= 6 then Domain.cpu_relax ()
  else begin
    (* Cap the sleep so a waiter notices lock release promptly. *)
    let steps = Stdlib.min (t.n - 6) 20 in
    Unix.sleepf (1e-6 *. float_of_int steps)
  end

let reset t = t.n <- 0

let exponential ~attempt =
  if attempt <= 1 then Domain.cpu_relax ()
  else begin
    let e = Stdlib.min attempt 9 in
    Unix.sleepf (1e-6 *. float_of_int (1 lsl e))
  end
