(** Zipfian key-distribution generator in the YCSB / DBx1000 style.

    Used by the Figure 11 YCSB reproduction: the DBx1000 benchmark draws
    record keys from a zipfian distribution whose skew parameter [theta]
    sets the contention level (0 = uniform, 0.6 = medium, 0.9 = high).
    The generator follows Gray et al.'s "Quickly generating billion-record
    synthetic databases" construction, the same one YCSB uses. *)

type t

val create : ?seed:int -> n:int -> theta:float -> unit -> t
(** [create ~n ~theta ()] prepares a generator over keys [0, n).
    [theta = 0.] degrades to the uniform distribution.  Preparation is
    O(n) (computes the zeta normalizer once). *)

val next : t -> int
(** Draw a key in [0, n). *)

val theta : t -> float
(** The skew parameter the generator was built with. *)
