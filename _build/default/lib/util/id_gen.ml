let block_size = 1024

type cache = { mutable next : int; mutable limit : int }

let global = Atomic.make 0
let key = Domain.DLS.new_key (fun () -> { next = 0; limit = 0 })

let next () =
  let c = Domain.DLS.get key in
  if c.next >= c.limit then begin
    let base = Atomic.fetch_and_add global block_size in
    c.next <- base;
    c.limit <- base + block_size
  end;
  let id = c.next in
  c.next <- id + 1;
  id
