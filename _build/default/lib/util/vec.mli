(** Growable array used for transaction read/write sets and latency logs.

    Transaction logs are cleared and refilled on every attempt, so the
    structure reuses its backing store across attempts instead of
    allocating — the OCaml analogue of the paper's preallocated log
    arrays. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty vector.  [dummy] fills unused backing
    slots (it is never observable through the API). *)

val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a

val clear : 'a t -> unit
(** Logical clear: O(1), keeps the backing store. *)

val is_empty : 'a t -> bool

val iter : ('a -> unit) -> 'a t -> unit
(** Iterate in push order. *)

val iter_rev : ('a -> unit) -> 'a t -> unit
(** Iterate in reverse push order (undo logs roll back newest-first). *)

val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
