(** Wall-clock timing for throughput and latency measurement. *)

val now : unit -> float
(** Seconds since the epoch, microsecond resolution
    ([Unix.gettimeofday]). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)
