type 'a t = {
  mutex : Mutex.t;
  cell : 'a option Atomic.t;
  thunk : unit -> 'a;
}

let create thunk = { mutex = Mutex.create (); cell = Atomic.make None; thunk }

let get t =
  match Atomic.get t.cell with
  | Some v -> v
  | None ->
      Mutex.lock t.mutex;
      let v =
        match Atomic.get t.cell with
        | Some v -> v
        | None ->
            let v = t.thunk () in
            Atomic.set t.cell (Some v);
            v
      in
      Mutex.unlock t.mutex;
      v

let is_forced t = Atomic.get t.cell <> None
