(** Waiting-loop pacing.

    The paper's [pause()] is an x86 PAUSE executed while spinning.  This
    host has a single hardware core, so a spinning domain that never yields
    would hold the CPU for a full scheduler timeslice (milliseconds) while
    the lock holder it waits for cannot run.  {!once} therefore escalates:
    a few [Domain.cpu_relax] hints, then short [nanosleep]s that return the
    core to the runnable lock holder.  On a multi-core host the relax phase
    dominates and behaviour approximates the paper's spin-wait. *)

type t

val create : unit -> t
(** Fresh pacing state, one per waiting loop. *)

val once : t -> unit
(** One wait step; call inside the loop body exactly where the paper's
    pseudocode says [pause()]. *)

val reset : t -> unit
(** Forget escalation (call after the awaited condition made progress). *)

val yield : unit -> unit
(** Unconditionally give up the core briefly (used between transaction
    attempts when waiting for a conflicting transaction to commit). *)

val exponential : attempt:int -> unit
(** Capped exponential backoff used by the no-wait concurrency controls
    between aborted attempts ([attempt] = 1, 2, ...).  This is the backoff
    strategy §2.1 contrasts with 2PLSF's wait-for-conflictor. *)
