type 'a t = { mutable a : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { a = Array.make (Stdlib.max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let grow t =
  let a' = Array.make (2 * Array.length t.a) t.dummy in
  Array.blit t.a 0 a' 0 t.len;
  t.a <- a'

let push t x =
  if t.len = Array.length t.a then grow t;
  t.a.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.a.(i)

let clear t = t.len <- 0
let is_empty t = t.len = 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.a.(i)
  done

let iter_rev f t =
  for i = t.len - 1 downto 0 do
    f t.a.(i)
  done

let exists p t =
  let rec go i = i < t.len && (p t.a.(i) || go (i + 1)) in
  go 0

let to_array t = Array.sub t.a 0 t.len
