(** Dense thread-identifier registry.

    The 2PLSF reader-writer lock (and every baseline lock in this
    repository) identifies threads by a small dense integer so that one bit
    per thread can be reserved in the read-indicators and one slot per
    thread in the timestamp-announcement array.  The paper supports up to
    2^16 threads; we default to {!max_threads} = 64, which is ample for a
    single machine and keeps read-indicator scans short.

    Identifiers are stored in domain-local storage: the common pattern is
    for a benchmark worker to call {!register} on entry and {!release} on
    exit so that slots are recycled across spawned domains. *)

val max_threads : int
(** Capacity of the registry.  Lock tables size their per-thread state
    (announce arrays, read-indicator regions) with this constant. *)

val register : unit -> int
(** Claim a free slot for the calling domain and remember it in
    domain-local storage.  Idempotent: a domain that already holds a slot
    gets the same identifier back.
    @raise Failure if all {!max_threads} slots are taken. *)

val release : unit -> unit
(** Return the calling domain's slot to the free pool.  No-op when the
    domain holds no slot. *)

val get : unit -> int
(** The calling domain's identifier, registering it on first use. *)

val high_water : unit -> int
(** An upper bound on every identifier handed out so far, monotonically
    non-decreasing.  Read-indicator scans iterate tids [0 .. high_water-1]
    instead of [0 .. max_threads-1]. *)
