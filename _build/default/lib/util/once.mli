(** Domain-safe once-initialization cell.

    [Lazy.force] raises [CamlinternalLazy.Undefined] when two domains race
    to force the same thunk; every shared lock/orec table in the repository
    is created through this cell instead. *)

type 'a t

val create : (unit -> 'a) -> 'a t
val get : 'a t -> 'a
(** First caller runs the thunk; concurrent callers wait for it. *)

val is_forced : 'a t -> bool
