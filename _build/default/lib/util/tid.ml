let max_threads = 64

let slots = Array.init max_threads (fun _ -> Atomic.make false)
let hwm = Atomic.make 0

let key = Domain.DLS.new_key (fun () -> -1)

let rec bump_hwm n =
  let cur = Atomic.get hwm in
  if n > cur && not (Atomic.compare_and_set hwm cur n) then bump_hwm n

let register () =
  let cur = Domain.DLS.get key in
  if cur >= 0 then cur
  else begin
    let rec claim i =
      if i >= max_threads then failwith "Tid.register: all thread slots in use"
      else if Atomic.compare_and_set slots.(i) false true then i
      else claim (i + 1)
    in
    let tid = claim 0 in
    Domain.DLS.set key tid;
    bump_hwm (tid + 1);
    tid
  end

let release () =
  let tid = Domain.DLS.get key in
  if tid >= 0 then begin
    Domain.DLS.set key (-1);
    Atomic.set slots.(tid) false
  end

let get () = register ()

let high_water () = Atomic.get hwm
