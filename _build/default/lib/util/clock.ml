let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
