lib/util/tid.mli:
