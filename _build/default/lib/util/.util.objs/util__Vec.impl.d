lib/util/vec.ml: Array Stdlib
