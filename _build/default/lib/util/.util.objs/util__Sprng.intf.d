lib/util/sprng.mli:
