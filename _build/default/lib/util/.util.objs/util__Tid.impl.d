lib/util/tid.ml: Array Atomic Domain
