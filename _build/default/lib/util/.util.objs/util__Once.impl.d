lib/util/once.ml: Atomic Mutex
