lib/util/once.mli:
