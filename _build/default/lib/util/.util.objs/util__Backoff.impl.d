lib/util/backoff.ml: Domain Stdlib Unix
