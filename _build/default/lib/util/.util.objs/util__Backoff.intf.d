lib/util/backoff.mli:
