lib/util/id_gen.mli:
