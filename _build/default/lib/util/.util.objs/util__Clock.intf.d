lib/util/clock.mli:
