lib/util/vec.mli:
