lib/util/zipf.mli:
