lib/util/zipf.ml: Sprng
