lib/util/id_gen.ml: Atomic Domain
