lib/util/sprng.ml: Int64
