lib/util/stats.mli:
