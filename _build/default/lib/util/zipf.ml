type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
  rng : Sprng.t;
}

let zeta n theta =
  let sum = ref 0. in
  for i = 1 to n do
    sum := !sum +. (1. /. (float_of_int i ** theta))
  done;
  !sum

let create ?(seed = 42) ~n ~theta () =
  assert (n > 0);
  if theta = 0. then
    { n; theta; alpha = 0.; zetan = 0.; eta = 0.; half_pow_theta = 0.;
      rng = Sprng.create seed }
  else begin
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1. /. (1. -. theta) in
    let eta =
      (1. -. ((2. /. float_of_int n) ** (1. -. theta)))
      /. (1. -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; half_pow_theta = 0.5 ** theta;
      rng = Sprng.create seed }
  end

let next t =
  if t.theta = 0. then Sprng.int t.rng t.n
  else begin
    let u = Sprng.float t.rng in
    let uz = u *. t.zetan in
    if uz < 1. then 0
    else if uz < 1. +. t.half_pow_theta then 1
    else begin
      let v =
        float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.) ** t.alpha)
      in
      let k = int_of_float v in
      if k >= t.n then t.n - 1 else if k < 0 then 0 else k
    end
  end

let theta t = t.theta
