(** Test-and-test-and-set spinlock.

    Used as the tiny critical-section guard inside the DBx1000 row-lock
    state machines and the flat combiner; paced for the single-core host
    via {!Util.Backoff}. *)

type t

val create : unit -> t
val lock : t -> unit
val try_lock : t -> bool
val unlock : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a
(** Run the thunk under the lock; always releases, even on exceptions. *)
