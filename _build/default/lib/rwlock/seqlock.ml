type t = int Atomic.t

let create () = Atomic.make 0

let read_begin t =
  let b = Util.Backoff.create () in
  let rec go () =
    let s = Atomic.get t in
    if s land 1 = 0 then s
    else begin
      Util.Backoff.once b;
      go ()
    end
  in
  go ()

let read_validate t s = Atomic.get t = s

let try_write_lock t =
  let s = Atomic.get t in
  s land 1 = 0 && Atomic.compare_and_set t s (s + 1)

let write_lock t =
  let b = Util.Backoff.create () in
  while not (try_write_lock t) do
    Util.Backoff.once b
  done

let write_unlock t = Atomic.incr t

let sequence t = Atomic.get t
