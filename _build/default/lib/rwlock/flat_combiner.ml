type outcome = Pending | Done | Raised of exn

type request = { run : unit -> unit }

type t = {
  lock : Spinlock.t;
  slots : request option Atomic.t array;
  on_batch_start : unit -> unit;
  on_batch_end : unit -> unit;
}

let create ?(on_batch_start = fun () -> ()) ?(on_batch_end = fun () -> ()) () =
  {
    lock = Spinlock.create ();
    slots = Array.init Util.Tid.max_threads (fun _ -> Atomic.make None);
    on_batch_start;
    on_batch_end;
  }

let drain t =
  t.on_batch_start ();
  let hwm = Util.Tid.high_water () in
  for i = 0 to hwm - 1 do
    match Atomic.get t.slots.(i) with
    | None -> ()
    | Some req ->
        req.run ();
        (* Clearing the slot releases the publisher (it re-reads its
           result cell only after observing None here). *)
        Atomic.set t.slots.(i) None
  done;
  t.on_batch_end ()

let execute t ~tid f =
  let result = ref None in
  let status = ref Pending in
  let run () =
    (match f () with
    | v ->
        result := Some v;
        status := Done
    | exception e -> status := Raised e)
  in
  Atomic.set t.slots.(tid) (Some { run });
  let b = Util.Backoff.create () in
  let rec wait () =
    if Atomic.get t.slots.(tid) = None then ()
    else if Spinlock.try_lock t.lock then begin
      (match drain t with
      | () -> Spinlock.unlock t.lock
      | exception e ->
          Spinlock.unlock t.lock;
          raise e);
      wait ()
    end
    else begin
      Util.Backoff.once b;
      wait ()
    end
  in
  wait ();
  match !status with
  | Done -> ( match !result with Some v -> v | None -> assert false)
  | Raised e -> raise e
  | Pending -> assert false
