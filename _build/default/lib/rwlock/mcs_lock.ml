type node = { locked : bool Atomic.t; next : node option Atomic.t }

(* [Atomic.compare_and_set] is physical equality, so the unlock-time CAS
   on [tail] must use the *same* [Some node] box that was installed at
   acquisition; the caller's box is kept in domain-local storage. *)
type t = {
  tail : node option Atomic.t;
  mine : node option ref Domain.DLS.key;
}

let create () =
  {
    tail = Atomic.make None;
    mine = Domain.DLS.new_key (fun () -> ref None);
  }

let fresh_boxed () =
  let n = { locked = Atomic.make true; next = Atomic.make None } in
  (n, Some n)

let lock t =
  let n, boxed = fresh_boxed () in
  Domain.DLS.get t.mine := boxed;
  match Atomic.exchange t.tail boxed with
  | None -> () (* uncontended: we hold it *)
  | Some pred ->
      Atomic.set pred.next boxed;
      let b = Util.Backoff.create () in
      while Atomic.get n.locked do
        Util.Backoff.once b
      done

let try_lock t =
  let _, boxed = fresh_boxed () in
  if Atomic.get t.tail = None && Atomic.compare_and_set t.tail None boxed
  then begin
    Domain.DLS.get t.mine := boxed;
    true
  end
  else false

let unlock t =
  let mine = Domain.DLS.get t.mine in
  let boxed = !mine in
  match boxed with
  | None -> invalid_arg "Mcs_lock.unlock: caller does not hold the lock"
  | Some n -> (
      mine := None;
      match Atomic.get n.next with
      | Some succ -> Atomic.set succ.locked false
      | None ->
          if Atomic.compare_and_set t.tail boxed None then ()
          else begin
            (* A successor is enqueueing: wait for its link. *)
            let b = Util.Backoff.create () in
            let rec await () =
              match Atomic.get n.next with
              | Some succ -> Atomic.set succ.locked false
              | None ->
                  Util.Backoff.once b;
                  await ()
            in
            await ()
          end)

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
