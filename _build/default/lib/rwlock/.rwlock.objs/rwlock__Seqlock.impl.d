lib/rwlock/seqlock.ml: Atomic Util
