lib/rwlock/rwl_dist.mli: Trylock_rw
