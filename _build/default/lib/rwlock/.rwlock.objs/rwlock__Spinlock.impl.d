lib/rwlock/spinlock.ml: Atomic Util
