lib/rwlock/rwl_single.mli: Trylock_rw
