lib/rwlock/ticket_lock.mli:
