lib/rwlock/rwl_dist.ml: Array Atomic Read_indicator
