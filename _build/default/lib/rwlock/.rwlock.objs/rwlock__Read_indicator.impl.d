lib/rwlock/read_indicator.ml: Array Atomic Util
