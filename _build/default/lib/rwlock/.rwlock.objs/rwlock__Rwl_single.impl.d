lib/rwlock/rwl_single.ml: Array Atomic
