lib/rwlock/mcs_lock.ml: Atomic Domain Util
