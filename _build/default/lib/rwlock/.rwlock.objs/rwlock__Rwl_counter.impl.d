lib/rwlock/rwl_counter.ml: Array Atomic Hashtbl Util
