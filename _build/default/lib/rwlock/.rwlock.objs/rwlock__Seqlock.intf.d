lib/rwlock/seqlock.mli:
