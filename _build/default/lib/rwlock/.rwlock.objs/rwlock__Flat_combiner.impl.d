lib/rwlock/flat_combiner.ml: Array Atomic Spinlock Util
