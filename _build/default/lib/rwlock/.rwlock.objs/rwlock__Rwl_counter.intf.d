lib/rwlock/rwl_counter.mli: Trylock_rw
