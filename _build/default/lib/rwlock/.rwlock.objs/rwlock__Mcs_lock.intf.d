lib/rwlock/mcs_lock.mli:
