lib/rwlock/flat_combiner.mli:
