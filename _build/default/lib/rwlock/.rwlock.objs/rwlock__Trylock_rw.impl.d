lib/rwlock/trylock_rw.ml:
