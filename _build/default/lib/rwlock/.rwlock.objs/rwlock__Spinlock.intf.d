lib/rwlock/spinlock.mli:
