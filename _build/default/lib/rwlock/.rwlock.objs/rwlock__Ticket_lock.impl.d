lib/rwlock/ticket_lock.ml: Atomic Util
