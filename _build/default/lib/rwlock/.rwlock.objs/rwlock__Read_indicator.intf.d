lib/rwlock/read_indicator.mli:
