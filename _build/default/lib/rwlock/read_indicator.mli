(** Distributed read-indicator with one bit per (thread, lock).

    This is the memory layout of Figure 1 and Algorithm 3 of the paper: for
    each thread there is a private region of words, and bit [w mod B] of
    word [w / B] in thread [t]'s region says "thread [t] holds (or is
    waiting for, in the writer-arrives-as-reader case) the read side of
    lock [w]".  Because a word is only ever written by its owning thread,
    {!arrive} and {!depart} are a plain atomic load + store — no
    read-modify-write, which is the key to read scalability (§2.4).

    Divergence from the paper: the paper packs 64 locks per word; OCaml
    ints are 63-bit so we pack {!bits_per_word} = 32 locks per word.  The
    aggregation property (many read-indicators of one thread share a word,
    so the memory cost stays one bit per thread per lock) is preserved. *)

type t

val bits_per_word : int
(** Locks whose indicator bits share one word (32). *)

val create : num_locks:int -> t
(** [create ~num_locks] sizes the indicator for [num_locks] reader-writer
    locks and {!Util.Tid.max_threads} threads.  [num_locks] must be a
    positive multiple of {!bits_per_word}. *)

val arrive : t -> tid:int -> int -> unit
(** Set the calling thread's bit for lock [w].  Idempotent. *)

val depart : t -> tid:int -> int -> unit
(** Clear the calling thread's bit for lock [w].  Idempotent. *)

val holds : t -> tid:int -> int -> bool
(** Is [tid]'s bit for lock [w] set?  (Cheap: one load.) *)

val is_empty : t -> self:int -> int -> bool
(** [is_empty t ~self w]: no thread other than [self] has its bit set for
    lock [w] ([riIsEmpty], Algorithm 3).  Scans up to the thread-id
    high-water mark. *)

val iter_readers : t -> self:int -> int -> (int -> unit) -> unit
(** Call the function on every thread id (≠ [self]) whose bit for lock [w]
    is set; used by the lowest-timestamp conflict scan. *)
