(** Ticket lock: a classic FIFO starvation-free mutual-exclusion lock.

    Included as the representative of the "starvation-free locks are not
    enough" discussion (§2.3): the lock itself is starvation-free through
    [lock], but a concurrency control needs trylock-style acquisition,
    which no queue lock can make starvation-free — the motivation for the
    paper's tryOrWaitLock API.  Used in tests contrasting the two. *)

type t

val create : unit -> t
val lock : t -> unit
val try_lock : t -> bool
(** Succeeds only when the lock is entirely uncontended (no queue). *)

val unlock : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a
