(** Sequence lock: optimistic read / exclusive write synchronization.

    The versioning primitive behind optimistic concurrency controls (§1):
    readers run without writing shared state and validate afterwards that
    the sequence did not move.  Used by the OneFile substitute and in tests
    contrasting optimistic reads with 2PL's pessimistic reads. *)

type t

val create : unit -> t

val read_begin : t -> int
(** Wait until no writer is active and return the (even) sequence. *)

val read_validate : t -> int -> bool
(** [read_validate t s]: no writer ran since [read_begin] returned [s]. *)

val write_lock : t -> unit
(** Exclusive: spins until the writer slot is free, leaves the sequence
    odd. *)

val try_write_lock : t -> bool
val write_unlock : t -> unit
val sequence : t -> int
