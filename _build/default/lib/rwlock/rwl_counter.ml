let name = "TLRW"

(* Word layout: bits 0-7 = writer tid + 1, bits 8.. = reader count. *)

let writer_mask = 0xFF
let reader_unit = 0x100

type t = {
  mask : int;
  words : int Atomic.t array;
  held : (int, unit) Hashtbl.t array; (* per-tid set of read-held locks *)
}

let create ~num_locks =
  if num_locks land (num_locks - 1) <> 0 || num_locks <= 0 then
    invalid_arg "Rwl_counter.create: num_locks must be a power of two";
  {
    mask = num_locks - 1;
    words = Array.init num_locks (fun _ -> Atomic.make 0);
    held = Array.init Util.Tid.max_threads (fun _ -> Hashtbl.create 64);
  }

let lock_index t id = id land t.mask
let holds_read t ~tid w = Hashtbl.mem t.held.(tid) w
let holds_write t ~tid w = Atomic.get t.words.(w) land writer_mask = tid + 1

let try_read_lock t ~tid w =
  if holds_read t ~tid w || holds_write t ~tid w then true
  else begin
    let prev = Atomic.fetch_and_add t.words.(w) reader_unit in
    if prev land writer_mask = 0 then begin
      Hashtbl.replace t.held.(tid) w ();
      true
    end
    else begin
      ignore (Atomic.fetch_and_add t.words.(w) (-reader_unit));
      false
    end
  end

let rec try_write_lock t ~tid w =
  let cur = Atomic.get t.words.(w) in
  let writer = cur land writer_mask in
  if writer = tid + 1 then true
  else if writer <> 0 then false
  else begin
    let self_reads = if holds_read t ~tid w then 1 else 0 in
    let readers = cur / reader_unit in
    if readers > self_reads then false
    else if Atomic.compare_and_set t.words.(w) cur (cur lor (tid + 1)) then
      (* Upgrade succeeded; the self read count (if any) stays accounted in
         the word until read_unlock. *)
      true
    else try_write_lock t ~tid w
  end

let read_unlock t ~tid w =
  if holds_read t ~tid w then begin
    Hashtbl.remove t.held.(tid) w;
    ignore (Atomic.fetch_and_add t.words.(w) (-reader_unit))
  end

let rec write_unlock t ~tid w =
  let cur = Atomic.get t.words.(w) in
  if
    cur land writer_mask = tid + 1
    && not
         (Atomic.compare_and_set t.words.(w) cur (cur land lnot writer_mask))
  then write_unlock t ~tid w
