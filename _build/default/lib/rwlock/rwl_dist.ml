let name = "2PL-RW-Dist"

type t = { mask : int; wlocks : int Atomic.t array; ri : Read_indicator.t }

let create ~num_locks =
  if num_locks land (num_locks - 1) <> 0 || num_locks < 32 then
    invalid_arg "Rwl_dist.create: num_locks must be a power of two >= 32";
  {
    mask = num_locks - 1;
    wlocks = Array.init num_locks (fun _ -> Atomic.make 0);
    ri = Read_indicator.create ~num_locks;
  }

let lock_index t id = id land t.mask

let try_read_lock t ~tid w =
  Read_indicator.arrive t.ri ~tid w;
  let ws = Atomic.get t.wlocks.(w) in
  if ws = 0 || ws = tid + 1 then true
  else begin
    Read_indicator.depart t.ri ~tid w;
    false
  end

let try_write_lock t ~tid w =
  let me = tid + 1 in
  let ws = Atomic.get t.wlocks.(w) in
  if ws = me then true
  else if ws <> 0 then false
  else if Atomic.compare_and_set t.wlocks.(w) 0 me then begin
    if Read_indicator.is_empty t.ri ~self:tid w then begin
      (* Upgrade: our own indicator bit (if any) is subsumed by the write
         lock. *)
      Read_indicator.depart t.ri ~tid w;
      true
    end
    else begin
      Atomic.set t.wlocks.(w) 0;
      false
    end
  end
  else false

let read_unlock t ~tid w = Read_indicator.depart t.ri ~tid w

let write_unlock t ~tid w =
  if Atomic.get t.wlocks.(w) = tid + 1 then Atomic.set t.wlocks.(w) 0

let holds_read t ~tid w = Read_indicator.holds t.ri ~tid w
let holds_write t ~tid w = Atomic.get t.wlocks.(w) = tid + 1
