type t = { next : int Atomic.t; serving : int Atomic.t }

let create () = { next = Atomic.make 0; serving = Atomic.make 0 }

let lock t =
  let my = Atomic.fetch_and_add t.next 1 in
  let b = Util.Backoff.create () in
  while Atomic.get t.serving <> my do
    Util.Backoff.once b
  done

let try_lock t =
  let cur = Atomic.get t.next in
  Atomic.get t.serving = cur && Atomic.compare_and_set t.next cur (cur + 1)

let unlock t = Atomic.incr t.serving

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
