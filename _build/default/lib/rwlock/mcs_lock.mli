(** MCS queue lock [Mellor-Crummey & Scott 1991] — the classic scalable
    starvation-free mutex the paper cites in §2.3.

    Lock acquirers enqueue a node and spin on their own flag, so handoff is
    FIFO (starvation-free through [lock]) and each waiter spins locally.
    §2.3's point, exercised by the tests: this starvation-freedom lives in
    the blocking [lock] API — a concurrency control acquiring multiple
    locks cannot use it (deadlock) and must fall back to [try_lock], which
    no queue lock can make starvation-free; hence 2PLSF's tryOrWaitLock. *)

type t

val create : unit -> t

val lock : t -> unit
(** FIFO, starvation-free. *)

val try_lock : t -> bool
(** Succeeds only when the queue is empty; inherently not
    starvation-free. *)

val unlock : t -> unit
(** Pass the lock to the queue successor, if any.  Must be called by the
    current holder. *)

val with_lock : t -> (unit -> 'a) -> 'a
