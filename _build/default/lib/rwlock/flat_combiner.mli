(** Flat combining: threads publish operations, one thread executes all
    pending operations in a batch.

    The substrate for the OneFile (OFWF) substitute (DESIGN.md §3.4):
    OneFile aggregates all in-flight write transactions into a single
    execution, which is exactly what a flat combiner does — and what makes
    its tail latency grow with the number of competing threads in the
    Figure 10 benchmark. *)

type t

val create : ?on_batch_start:(unit -> unit) -> ?on_batch_end:(unit -> unit) -> unit -> t
(** The hooks run around every batch in the combiner thread (the OneFile
    substitute brackets batches with a sequence-lock write section). *)

val execute : t -> tid:int -> (unit -> 'a) -> 'a
(** Publish the operation and wait for some combiner (possibly this
    thread) to run it; returns its result.  Exceptions raised by the
    operation are re-raised in the publishing thread, and do not take the
    combiner down. *)
