let bits_per_word = 32

type t = {
  words_per_thread : int;
  words : int Atomic.t array; (* [tid * words_per_thread + w / 32] *)
}

let create ~num_locks =
  if num_locks <= 0 || num_locks mod bits_per_word <> 0 then
    invalid_arg "Read_indicator.create: num_locks must be a positive multiple of 32";
  let words_per_thread = num_locks / bits_per_word in
  {
    words_per_thread;
    words =
      Array.init (words_per_thread * Util.Tid.max_threads) (fun _ ->
          Atomic.make 0);
  }

let word_index t tid w = (tid * t.words_per_thread) + (w lsr 5)
let bit w = 1 lsl (w land 31)

let arrive t ~tid w =
  let idx = word_index t tid w in
  let cur = Atomic.get t.words.(idx) in
  Atomic.set t.words.(idx) (cur lor bit w)

let depart t ~tid w =
  let idx = word_index t tid w in
  let cur = Atomic.get t.words.(idx) in
  Atomic.set t.words.(idx) (cur land lnot (bit w))

let holds t ~tid w = Atomic.get t.words.(word_index t tid w) land bit w <> 0

let is_empty t ~self w =
  let hwm = Util.Tid.high_water () in
  let rec go tid =
    if tid >= hwm then true
    else if tid <> self && holds t ~tid w then false
    else go (tid + 1)
  in
  go 0

let iter_readers t ~self w f =
  let hwm = Util.Tid.high_water () in
  for tid = 0 to hwm - 1 do
    if tid <> self && holds t ~tid w then f tid
  done
