let name = "2PL-RW"

(* Word layout: bits 0-7 = writer tid + 1 (0 = no writer);
   bit (8 + t) = thread t holds the read lock.  OCaml ints give 63 usable
   bits, so 54 reader slots. *)

let max_supported_threads = 54
let writer_mask = 0xFF
let reader_bit tid = 1 lsl (8 + tid)
let readers_mask = -1 lxor writer_mask

type t = { mask : int; words : int Atomic.t array }

let create ~num_locks =
  if num_locks land (num_locks - 1) <> 0 || num_locks <= 0 then
    invalid_arg "Rwl_single.create: num_locks must be a power of two";
  { mask = num_locks - 1; words = Array.init num_locks (fun _ -> Atomic.make 0) }

let lock_index t id = id land t.mask

let rec try_read_lock t ~tid w =
  let cur = Atomic.get t.words.(w) in
  let writer = cur land writer_mask in
  if writer <> 0 && writer <> tid + 1 then false
  else if cur land reader_bit tid <> 0 then true
  else if Atomic.compare_and_set t.words.(w) cur (cur lor reader_bit tid) then
    true
  else try_read_lock t ~tid w

let rec try_write_lock t ~tid w =
  let cur = Atomic.get t.words.(w) in
  let writer = cur land writer_mask in
  if writer = tid + 1 then true
  else if writer <> 0 then false
  else begin
    let others = cur land readers_mask land lnot (reader_bit tid) in
    if others <> 0 then false
    else if Atomic.compare_and_set t.words.(w) cur (cur lor (tid + 1)) then true
    else try_write_lock t ~tid w
  end

let rec read_unlock t ~tid w =
  let cur = Atomic.get t.words.(w) in
  let nw = cur land lnot (reader_bit tid) in
  if nw <> cur && not (Atomic.compare_and_set t.words.(w) cur nw) then
    read_unlock t ~tid w

let rec write_unlock t ~tid w =
  let cur = Atomic.get t.words.(w) in
  if
    cur land writer_mask = tid + 1
    && not (Atomic.compare_and_set t.words.(w) cur (cur land readers_mask))
  then write_unlock t ~tid w

let holds_read t ~tid w = Atomic.get t.words.(w) land reader_bit tid <> 0
let holds_write t ~tid w = Atomic.get t.words.(w) land writer_mask = tid + 1
