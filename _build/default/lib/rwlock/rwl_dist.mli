(** The "2PL-RW-Dist" lock of Figure 2: distributed read-indicator,
    no-wait conflict handling.

    Same memory layout as the paper's 2PLSF lock (one bit per thread per
    lock, owner-writes-own-word, {!Read_indicator}) but with trylock
    acquisition and no timestamps: on conflict the caller simply fails and
    the enclosing 2PL no-wait STM aborts and backs off.  The Figure 2
    comparison of this lock against 2PLSF isolates the contribution of the
    starvation-free conflict resolution from that of the lock layout. *)

include Trylock_rw.S
