(** The "2PL-RW" lock of Figure 2: one word per reader-writer lock.

    A single atomic word holds an 8-bit writer thread id plus one reader
    bit per thread (paper: 56 reader bits in 64-bit words; here 54 reader
    bits in OCaml's 63-bit ints, so at most 54 concurrent threads).  Every
    read-lock acquisition and release is a read-modify-write on the same
    word, which is precisely the contention the paper blames for 2PL-RW
    never scaling — reproduced faithfully. *)

include Trylock_rw.S

val max_supported_threads : int
