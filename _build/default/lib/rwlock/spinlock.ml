type t = bool Atomic.t

let create () = Atomic.make false

let try_lock t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

let lock t =
  let b = Util.Backoff.create () in
  while not (try_lock t) do
    Util.Backoff.once b
  done

let unlock t = Atomic.set t false

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
