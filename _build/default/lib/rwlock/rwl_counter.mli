(** TLRW-style reader-writer lock: central reader counter per lock.

    Readers announce themselves with a fetch-and-add on a per-lock counter
    — the classic read-indicator whose contention §1 of the paper blames
    for 2PL's read-scalability myth, and the behaviour of the TLRW-Z
    baseline.  A per-thread table of held locks provides the
    read-after-read idempotence the no-wait STM functor requires (the
    counter alone cannot answer "do I already hold this?"). *)

include Trylock_rw.S
