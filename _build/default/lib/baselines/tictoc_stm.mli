(** TicToc as a word-based STM — the §3.5 discussion made executable.

    Figure 11 shows TicToc beating 2PLSF under high contention, and the
    paper explains the price: TicToc is serializable but *not opaque*, so
    "if we apply TicToc to a transactional data structure, the invariants
    of the data structure may no longer hold [during execution], resulting
    in incorrect behavior, such as crashes or infinite loops".  This module
    applies TicToc to tvars so that claim can be demonstrated (see the
    zombie-read tests and ablation A4): reads carry no snapshot validation,
    only commit-time timestamp validation.

    Guard rails for the non-opacity: a per-attempt read budget aborts
    transactions whose (possibly inconsistent) traversal runs away, which
    is how a real deployment would contain zombie loops.  Committed state
    is always serializable. *)

include Stm_intf.STM

val configure : ?num_orecs:int -> unit -> unit

val read_budget : int
(** Reads allowed per attempt before a precautionary abort. *)
