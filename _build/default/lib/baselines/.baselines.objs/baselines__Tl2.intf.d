lib/baselines/tl2.mli: Stm_intf
