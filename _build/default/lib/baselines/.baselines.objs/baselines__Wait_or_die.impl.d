lib/baselines/wait_or_die.ml: Domain Stm_intf Tvar Twoplsf Util Wset
