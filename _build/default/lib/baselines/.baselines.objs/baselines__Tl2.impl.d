lib/baselines/tl2.ml: Atomic Domain Orec Stm_intf Tvar Util Wset
