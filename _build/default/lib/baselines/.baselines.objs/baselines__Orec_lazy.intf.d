lib/baselines/orec_lazy.mli: Stm_intf
