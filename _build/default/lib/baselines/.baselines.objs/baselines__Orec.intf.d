lib/baselines/orec.mli:
