lib/baselines/tinystm.mli: Stm_intf
