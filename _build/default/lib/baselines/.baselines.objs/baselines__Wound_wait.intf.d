lib/baselines/wound_wait.mli: Stm_intf
