lib/baselines/orec_lazy.ml: Atomic Domain Orec Stm_intf Tvar Util Wset
