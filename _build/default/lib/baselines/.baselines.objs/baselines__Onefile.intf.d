lib/baselines/onefile.mli: Stm_intf
