lib/baselines/tlrw.ml: Nowait_2pl Rwlock
