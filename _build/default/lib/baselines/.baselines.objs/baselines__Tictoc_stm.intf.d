lib/baselines/tictoc_stm.mli: Stm_intf
