lib/baselines/twopl_rw_dist.ml: Nowait_2pl Rwlock
