lib/baselines/nowait_2pl.mli: Rwlock Stm_intf
