lib/baselines/registry.mli: Stm_intf
