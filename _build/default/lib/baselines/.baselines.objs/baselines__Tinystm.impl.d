lib/baselines/tinystm.ml: Atomic Domain Orec Stm_intf Tvar Util Wset
