lib/baselines/tvar.ml: Util
