lib/baselines/registry.ml: List Onefile Orec_lazy Stm_intf String Tinystm Tl2 Tlrw Twopl_rw Twopl_rw_dist Twoplsf Wait_or_die Wound_wait
