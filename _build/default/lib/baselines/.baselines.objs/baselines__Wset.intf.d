lib/baselines/wset.mli: Tvar
