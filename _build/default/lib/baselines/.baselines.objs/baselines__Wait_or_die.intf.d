lib/baselines/wait_or_die.mli: Stm_intf
