lib/baselines/wound_wait.ml: Array Atomic Domain Rwlock Stm_intf Tvar Util Wset
