lib/baselines/orec.ml: Array Atomic
