lib/baselines/tvar.mli:
