lib/baselines/wset.ml: Obj Tvar Util
