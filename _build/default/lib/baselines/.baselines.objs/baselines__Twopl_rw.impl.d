lib/baselines/twopl_rw.ml: Nowait_2pl Rwlock
