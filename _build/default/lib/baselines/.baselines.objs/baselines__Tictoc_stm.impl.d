lib/baselines/tictoc_stm.ml: Array Atomic Domain Stdlib Stm_intf Tvar Util Wset
