lib/baselines/nowait_2pl.ml: Domain Rwlock Stm_intf Tvar Util Wset
