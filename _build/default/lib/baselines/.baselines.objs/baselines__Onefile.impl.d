lib/baselines/onefile.ml: Domain Rwlock Stm_intf Tvar Util Wset
