(** TinySTM / LSA [Felber, Fetzer, Riegel, PPoPP 2008; TPDS 2010].

    Time-based STM with encounter-time locking: writes acquire the orec
    immediately and go through a write-through undo log; reads are
    optimistic and carry per-entry observed versions so the snapshot can be
    *extended* (revalidated against a newer clock value) instead of
    aborting when a version newer than the read version is met — the LSA
    mechanism that makes TinySTM the strongest optimistic contender in the
    paper's read-mostly workloads (Figures 5–7). *)

include Stm_intf.STM

val configure : ?num_orecs:int -> unit -> unit
