type entry = E : { tv : 'a Tvar.t; mutable value : 'a } -> entry

type t = { entries : entry Util.Vec.t; mutable bloom : int }

let dummy = E { tv = { Tvar.id = -1; v = () }; value = () }

let create () = { entries = Util.Vec.create ~dummy (); bloom = 0 }

let clear t =
  Util.Vec.clear t.entries;
  t.bloom <- 0

let is_empty t = Util.Vec.is_empty t.entries
let length t = Util.Vec.length t.entries

let bloom_bit id = 1 lsl (id land 62)
let maybe_mem t (tv : _ Tvar.t) = t.bloom land bloom_bit tv.id <> 0

(* Entries are matched by tvar id; ids are globally unique, so an id match
   means the entry's tvar *is* the queried tvar and their value types are
   equal — which makes the [Obj.magic] below safe.  This is the standard
   heterogeneous-log trick; it is confined to this module. *)
let find_entry t (tv : _ Tvar.t) =
  if not (maybe_mem t tv) then None
  else begin
    let n = Util.Vec.length t.entries in
    let rec go i =
      if i >= n then None
      else
        match Util.Vec.get t.entries i with
        | E e when e.tv.id = tv.id -> Some (Util.Vec.get t.entries i)
        | E _ -> go (i + 1)
    in
    go 0
  end

let add t tv value =
  match find_entry t tv with
  | Some (E e) -> e.value <- Obj.magic value
  | None ->
      Util.Vec.push t.entries (E { tv; value });
      t.bloom <- t.bloom lor bloom_bit tv.id

let find : type a. t -> a Tvar.t -> a option =
 fun t tv ->
  match find_entry t tv with
  | Some (E e) -> Some (Obj.magic e.value)
  | None -> None

let log_old_once t tv old =
  match find_entry t tv with
  | Some _ -> ()
  | None ->
      Util.Vec.push t.entries (E { tv; value = old });
      t.bloom <- t.bloom lor bloom_bit tv.id

let mem t tv = find_entry t tv <> None

let apply t = Util.Vec.iter (fun (E e) -> e.tv.v <- e.value) t.entries
let rollback t = Util.Vec.iter_rev (fun (E e) -> e.tv.v <- e.value) t.entries
let iter_ids t f = Util.Vec.iter (fun (E e) -> f e.tv.id) t.entries
