(** The 2PL no-wait STM family of Figure 2, as a functor over the lock.

    One algorithm — encounter-time read and write locking with a
    write-through undo log, immediate abort on any lock conflict, capped
    exponential backoff between attempts — instantiated with three
    reader-writer lock implementations:

    - {!Rwlock.Rwl_single}   → the paper's 2PL-RW;
    - {!Rwlock.Rwl_dist}     → the paper's 2PL-RW-Dist;
    - {!Rwlock.Rwl_counter}  → TLRW-Z (reader-counter read indicator).

    Compared against 2PLSF, this family isolates what starvation-free
    conflict resolution buys over no-wait + backoff (§3.1). *)

module Make (L : Rwlock.Trylock_rw.S) () : sig
  include Stm_intf.STM

  val configure : ?num_locks:int -> unit -> unit
end
