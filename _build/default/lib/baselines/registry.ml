let twoplsf : (module Stm_intf.STM) = (module Twoplsf.Stm)

let figure2 : (module Stm_intf.STM) list =
  [ (module Twopl_rw); (module Twopl_rw_dist); (module Twoplsf.Stm) ]

let main_set : (module Stm_intf.STM) list =
  [
    (module Tl2);
    (module Tinystm);
    (module Tlrw);
    (module Orec_lazy);
    (module Onefile);
    (module Twoplsf.Stm);
  ]

let all : (module Stm_intf.STM) list =
  [
    (module Twoplsf.Stm);
    (module Tl2);
    (module Tinystm);
    (module Tlrw);
    (module Orec_lazy);
    (module Onefile);
    (module Twopl_rw);
    (module Twopl_rw_dist);
    (module Wait_or_die);
    (module Wound_wait);
    (module Twoplsf.Stm_wb);
    (module Twoplsf.Stm_wbd);
  ]

let find name =
  let has (module S : Stm_intf.STM) = String.equal S.name name in
  match List.find_opt has all with
  | Some s -> s
  | None -> raise Not_found
