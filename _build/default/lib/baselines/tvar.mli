(** The transactional-variable representation shared by all baseline STMs.

    A plain mutable cell plus a unique id that hashes into each STM's
    lock/orec table (the OCaml substitute for the paper's address hashing,
    DESIGN.md §3.2).  The 2PLSF core keeps its own tvar type (it carries an
    undo-log stamp); every baseline uses this one. *)

type 'a t = { id : int; mutable v : 'a }

val make : 'a -> 'a t
