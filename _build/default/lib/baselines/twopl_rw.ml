(** 2PL-RW (Figure 2): no-wait 2PL over the single-word reader-writer
    lock.  See {!Nowait_2pl}. *)

include Nowait_2pl.Make (Rwlock.Rwl_single) ()
