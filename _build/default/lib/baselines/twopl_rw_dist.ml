(** 2PL-RW-Dist (Figure 2): no-wait 2PL over the distributed
    read-indicator lock.  See {!Nowait_2pl}. *)

include Nowait_2pl.Make (Rwlock.Rwl_dist) ()
