(** TL2 [Dice, Shalev, Shavit, DISC 2006] — the classic optimistic STM the
    paper benchmarks against.

    Global version clock, invisible (optimistic) reads validated against a
    read version sampled at transaction begin, redo-log writes, and
    commit-time locking of the write set followed by read-set validation.
    Write transactions increment the global clock on *every* commit — the
    scalability bottleneck §3.3 contrasts with 2PLSF's on-conflict-only
    clock.  Read-only transactions ([~read_only:true]) never touch the
    clock or build logs. *)

include Stm_intf.STM

val configure : ?num_orecs:int -> unit -> unit
(** Size of the ownership-record table (power of two, default 65536); call
    before the first transaction. *)
