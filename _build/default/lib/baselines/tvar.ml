type 'a t = { id : int; mutable v : 'a }

let make v = { id = Util.Id_gen.next (); v }
