(** OREC-Z: the lazy ownership-record STM of Zardoshti et al. [PACT 2019].

    Commit-time locking with a redo log, like TL2, but "patient": reads
    carry per-entry observed versions and a too-new orec triggers a
    snapshot extension (full read-set revalidation) instead of an abort,
    and the read set is always revalidated at commit.  The paper reports
    Orec-eager and Orec-lazy as near-identical and plots the lazy variant;
    so do we. *)

include Stm_intf.STM

val configure : ?num_orecs:int -> unit -> unit
