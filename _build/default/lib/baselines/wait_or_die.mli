(** Classic 2PL Wait-Or-Die [Bernstein et al. 1987] — the §4.1 ablation.

    Same reader-writer lock machinery as 2PLSF, but with the two behaviours
    the paper identifies as wait-or-die's weaknesses:

    - every transaction draws a timestamp from the central clock at begin
      (one atomic increment per transaction, the §3.3 bottleneck), instead
      of 2PLSF's increment-on-first-conflict;
    - an aborted ("died") transaction waits for *all* in-flight
      transactions with a lower timestamp — conflicting or not — before
      retrying, instead of 2PLSF's wait-for-the-specific-conflictor.

    Starvation-free for the same reason 2PLSF is (timestamps are kept
    across restarts).  Benchmarked as ablation A1 in DESIGN.md. *)

include Stm_intf.STM

val configure : ?num_locks:int -> unit -> unit
