(** TLRW-Z [Dice & Shavit, SPAA 2010; Zardoshti et al., PACT 2019]:
    no-wait 2PL over the reader-counter lock.  See {!Nowait_2pl}. *)

include Nowait_2pl.Make (Rwlock.Rwl_counter) ()
