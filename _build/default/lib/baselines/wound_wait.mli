(** 2PL Wound-Wait [Rosenkrantz et al. 1978], the preemptive sibling of
    wait-or-die the paper mentions in §1 (the strategy PLOR builds on).

    Every transaction draws a timestamp at begin.  On a lock conflict an
    *older* (lower-timestamp) requester "wounds" the younger lock holder —
    sets its wound flag — and waits; a younger requester simply waits.
    Wounds are deferred-checked: a wounded transaction notices the flag at
    its next lock acquisition or at commit and restarts itself (a thread
    cannot be aborted from outside in OCaml; the deferred check preserves
    the protocol's deadlock-freedom because a wounded holder always reaches
    a check point in finite time).

    Starvation-free for the same reason as wait-die: timestamps are kept
    across restarts, so every transaction eventually becomes the oldest. *)

include Stm_intf.STM

val configure : ?num_locks:int -> unit -> unit
