(** OFWF: the OneFile wait-free STM [Ramalhete et al., DSN 2019] —
    substituted by a flat-combining sequence-lock STM (DESIGN.md §3.4).

    Write transactions are published to a flat combiner and executed in
    batches under a global sequence lock: all in-flight writers are
    aggregated into a single execution, reproducing OneFile's defining
    behaviours in the paper's evaluation — serialized writers with no
    read-set validation, fast optimistic read-only transactions, and tail
    latency that grows with the number of competing threads (Figure 10).
    The substitute is not wait-free (no helping of half-done operations);
    no measured series depends on that property. *)

include Stm_intf.STM
