(** Transaction write set over heterogeneous tvars.

    Serves two roles: redo log (buffered new values with read-own-write
    lookup) for the commit-time-locking STMs (TL2, OREC-lazy) and undo log
    (captured old values) for the encounter-time-locking ones (TinySTM, the
    2PL no-wait family).  A per-transaction 63-bit Bloom filter over tvar
    ids makes the common "not in my write set" lookup one mask test, as in
    the original TL2. *)

type t

val create : unit -> t
val clear : t -> unit
val is_empty : t -> bool
val length : t -> int

val add : t -> 'a Tvar.t -> 'a -> unit
(** Redo-log insert: record that the transaction intends [tv := value],
    overwriting any previous intent for the same tvar. *)

val find : t -> 'a Tvar.t -> 'a option
(** Redo-log lookup: the pending value for [tv], if any (read-own-write). *)

val log_old_once : t -> 'a Tvar.t -> 'a -> unit
(** Undo-log insert: capture [tv]'s pre-transaction value the first time
    the transaction writes it; later calls for the same tvar are no-ops. *)

val mem : t -> 'a Tvar.t -> bool

val apply : t -> unit
(** Redo: install every pending value (commit write-back). *)

val rollback : t -> unit
(** Undo: restore captured old values, newest first. *)

val iter_ids : t -> (int -> unit) -> unit
(** Tvar ids in insertion order (commit-time lock acquisition). *)
