let name = "TinySTM"

exception Restart

open Tvar (* brings the { id; v } field labels into scope *)

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

type tx = {
  tid : int;
  mutable rv : int;
  rset : (int * int) Util.Vec.t; (* (orec index, observed version) *)
  undo : Wset.t;
  wlocks : (int * int) Util.Vec.t; (* (orec index, pre-lock version) *)
  mutable ro : bool;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
}

let requested_num_orecs = ref 65536
let built = ref false

let orecs =
  Util.Once.create (fun () ->
      built := true;
      Orec.create ~num_orecs:!requested_num_orecs)

let configure ?(num_orecs = 65536) () =
  if !built then failwith "Tinystm.configure: orec table already built";
  requested_num_orecs := num_orecs

let clock = Atomic.make 0
let stats = Stm_intf.Stats.create ()

let tx_key =
  Domain.DLS.new_key (fun () ->
      {
        tid = Util.Tid.get ();
        rv = 0;
        rset = Util.Vec.create ~dummy:(-1, -1) ();
        undo = Wset.create ();
        wlocks = Util.Vec.create ~dummy:(-1, -1) ();
        ro = false;
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
      })

let get_tx () = Domain.DLS.get tx_key

(* LSA snapshot extension: move [rv] forward to the current clock if every
   read is still valid at its observed version. *)
let extend tx =
  let o = Util.Once.get orecs in
  let now = Atomic.get clock in
  let ok = ref true in
  (try
     Util.Vec.iter
       (fun (oi, observed) ->
         let w = Orec.get o oi in
         if Orec.is_locked w then begin
           if Orec.owner w <> tx.tid then raise Exit
         end
         else if Orec.version w <> observed then raise Exit)
       tx.rset
   with Exit -> ok := false);
  if !ok then tx.rv <- now;
  !ok

let read tx (tv : 'a tvar) : 'a =
  let o = Util.Once.get orecs in
  let oi = Orec.index o tv.id in
  let w = Orec.get o oi in
  if Orec.is_locked w then begin
    if Orec.owner w = tx.tid then tv.v (* own encounter-time lock *)
    else raise Restart
  end
  else begin
    let v = tv.v in
    let w2 = Orec.get o oi in
    if w2 <> w then raise Restart;
    let ver = Orec.version w in
    if ver > tx.rv && not (extend tx) then raise Restart;
    (* Read-only transactions must log reads too: the snapshot extension
       above is only sound if it revalidates every prior read. *)
    Util.Vec.push tx.rset (oi, ver);
    v
  end

let write tx tv nv =
  if tx.ro then invalid_arg "Tinystm.write inside a read-only transaction";
  let o = Util.Once.get orecs in
  let oi = Orec.index o tv.id in
  let w = Orec.get o oi in
  if Orec.is_locked w then begin
    if Orec.owner w <> tx.tid then raise Restart;
    Wset.log_old_once tx.undo tv tv.v;
    tv.v <- nv
  end
  else begin
    let ver = Orec.version w in
    if ver > tx.rv && not (extend tx) then raise Restart;
    match Orec.try_lock o ~tid:tx.tid oi with
    | None -> raise Restart
    | Some old_version ->
        Util.Vec.push tx.wlocks (oi, old_version);
        Wset.log_old_once tx.undo tv tv.v;
        tv.v <- nv
  end

let validate_read_set tx =
  let o = Util.Once.get orecs in
  let ok = ref true in
  (try
     Util.Vec.iter
       (fun (oi, observed) ->
         let w = Orec.get o oi in
         if Orec.is_locked w then begin
           if Orec.owner w <> tx.tid then raise Exit
         end
         else if Orec.version w <> observed then raise Exit)
       tx.rset
   with Exit -> ok := false);
  !ok

let release_wlocks_to tx version =
  let o = Util.Once.get orecs in
  Util.Vec.iter (fun (oi, _) -> Orec.unlock_to o oi ~version) tx.wlocks

let release_wlocks_old tx =
  let o = Util.Once.get orecs in
  Util.Vec.iter_rev
    (fun (oi, old_version) -> Orec.unlock_to o oi ~version:old_version)
    tx.wlocks

(* Roll back undo-logged values *before* releasing the encounter-time
   locks, then forget both logs so a later rollback is a no-op (another
   transaction may lock the released orecs immediately). *)
let rollback tx =
  Wset.rollback tx.undo;
  release_wlocks_old tx;
  Wset.clear tx.undo;
  Util.Vec.clear tx.wlocks

let commit tx =
  if Util.Vec.is_empty tx.wlocks then ()
  else begin
    let wv = 1 + Atomic.fetch_and_add clock 1 in
    Stm_intf.Stats.clock_op stats ~tid:tx.tid;
    if wv <> tx.rv + 1 && not (validate_read_set tx) then begin
      rollback tx;
      raise Restart
    end;
    release_wlocks_to tx wv
  end

let begin_attempt tx ~ro =
  Util.Vec.clear tx.rset;
  Wset.clear tx.undo;
  Util.Vec.clear tx.wlocks;
  tx.ro <- ro;
  tx.rv <- Atomic.get clock

let atomic ?(read_only = false) f =
  let tx = get_tx () in
  if tx.depth > 0 then f tx
  else begin
    tx.restarts <- 0;
    let rec attempt n =
      begin_attempt tx ~ro:read_only;
      tx.depth <- 1;
      match
        let v = f tx in
        commit tx;
        v
      with
      | v ->
          tx.depth <- 0;
          Stm_intf.Stats.commit stats ~tid:tx.tid;
          tx.finished_restarts <- tx.restarts;
          v
      | exception Restart ->
          tx.depth <- 0;
          rollback tx;
          Stm_intf.Stats.abort stats ~tid:tx.tid;
          tx.restarts <- tx.restarts + 1;
          Util.Backoff.exponential ~attempt:n;
          attempt (n + 1)
      | exception e ->
          tx.depth <- 0;
          rollback tx;
          raise e
    in
    attempt 1
  end

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = Stm_intf.Stats.clock_ops stats
let reset_stats () = Stm_intf.Stats.reset stats
let last_restarts () = (get_tx ()).finished_restarts
