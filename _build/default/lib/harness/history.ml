module type MODEL = sig
  type state
  type op
  type result

  val init : state
  val apply : state -> op -> state * result
  val state_key : state -> string
  val result_equal : result -> result -> bool
end

module Make (M : MODEL) = struct
  type event = { op : M.op; result : M.result }

  (* DFS over "which prefix of each thread has been serialized", memoizing
     (frontier, model state): distinct search paths reaching the same
     frontier with the same state are equivalent. *)
  let serializable (threads : event list array) =
    let n = Array.length threads in
    let arrays = Array.map Array.of_list threads in
    let pos = Array.make n 0 in
    let visited = Hashtbl.create 1024 in
    let frontier_key state =
      let b = Buffer.create 32 in
      Array.iter
        (fun p ->
          Buffer.add_string b (string_of_int p);
          Buffer.add_char b ',')
        pos;
      Buffer.add_string b (M.state_key state);
      Buffer.contents b
    in
    let rec go state remaining =
      if remaining = 0 then true
      else begin
        let key = frontier_key state in
        if Hashtbl.mem visited key then false
        else begin
          Hashtbl.add visited key ();
          let rec try_thread t =
            if t >= n then false
            else if pos.(t) >= Array.length arrays.(t) then try_thread (t + 1)
            else begin
              let ev = arrays.(t).(pos.(t)) in
              let state', result = M.apply state ev.op in
              if M.result_equal result ev.result then begin
                pos.(t) <- pos.(t) + 1;
                let ok = go state' (remaining - 1) in
                pos.(t) <- pos.(t) - 1;
                ok || try_thread (t + 1)
              end
              else try_thread (t + 1)
            end
          in
          try_thread 0
        end
      end
    in
    let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 arrays in
    go M.init total
end

module Int_set_model = struct
  type op = Add of int | Remove of int | Mem of int

  module S = Set.Make (Int)

  type state = S.t
  type result = bool

  let init = S.empty

  let apply s = function
    | Add k -> ((if S.mem k s then s else S.add k s), not (S.mem k s))
    | Remove k -> (S.remove k s, S.mem k s)
    | Mem k -> (s, S.mem k s)

  let state_key s = String.concat ";" (List.map string_of_int (S.elements s))
  let result_equal = Bool.equal

  let op_to_string = function
    | Add k -> Printf.sprintf "add %d" k
    | Remove k -> Printf.sprintf "remove %d" k
    | Mem k -> Printf.sprintf "mem %d" k
end
