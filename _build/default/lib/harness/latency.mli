(** Per-transaction latency collection (Figure 10).

    Each worker records the duration of its transactions into a private
    buffer; percentiles are computed after the run. *)

type t

val create : threads:int -> t
val record : t -> int -> float -> unit
(** [record t i seconds]: only worker [i] may call this. *)

val count : t -> int

val percentiles : t -> float list -> (float * float) list
(** Merge all samples and report the requested percentiles.
    @raise Invalid_argument if nothing was recorded. *)

val max_latency : t -> float
