let csv_chan : out_channel option ref = ref None
let current_figure = ref ""

let set_csv path =
  let oc = open_out path in
  output_string oc
    "figure,stm,structure,workload,threads,throughput,commits,aborts,clock_ops,p50_ms,p90_ms,p99_ms,max_ms\n";
  csv_chan := Some oc

let close_csv () =
  match !csv_chan with
  | Some oc ->
      close_out oc;
      csv_chan := None
  | None -> ()

let csv_line fmt =
  Printf.ksprintf
    (fun line ->
      match !csv_chan with
      | Some oc ->
          output_string oc line;
          output_char oc '\n'
      | None -> ())
    fmt

let figure_header ~id ~title =
  current_figure := id;
  Printf.printf "\n=== %s: %s ===\n%!" id title

let row_header () =
  Printf.printf "%-12s %-12s %-12s %8s %14s %12s %10s %10s\n%!" "stm"
    "structure" "workload" "threads" "ops/s" "commits" "aborts" "clock-ops"

let row (r : Driver.row) =
  Printf.printf "%-12s %-12s %-12s %8d %14.0f %12d %10d %10d\n%!" r.stm
    r.structure r.mix r.threads r.throughput r.commits r.aborts r.clock_ops;
  csv_line "%s,%s,%s,%s,%d,%.0f,%d,%d,%d,,,," !current_figure r.stm r.structure
    r.mix r.threads r.throughput r.commits r.aborts r.clock_ops

let latency_header () =
  Printf.printf "%-12s %8s %14s %12s %12s %12s %12s\n%!" "stm" "threads"
    "ops/s" "p50(ms)" "p90(ms)" "p99(ms)" "max(ms)"

let ms x = 1000. *. x

let latency_row ~stm ~threads ~throughput ~p50 ~p90 ~p99 ~max =
  Printf.printf "%-12s %8d %14.0f %12.3f %12.3f %12.3f %12.3f\n%!" stm threads
    throughput (ms p50) (ms p90) (ms p99) (ms max);
  csv_line "%s,%s,,,%d,%.0f,,,,%.4f,%.4f,%.4f,%.4f" !current_figure stm threads
    throughput (ms p50) (ms p90) (ms p99) (ms max)
