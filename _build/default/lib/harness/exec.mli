(** Multi-domain benchmark execution.

    Spawns one OCaml domain per worker, registers a dense thread id in
    each, releases all workers through a start barrier, and measures
    wall-clock throughput over a fixed duration.  This host has a single
    hardware core (DESIGN.md §3.1): domains are OS threads time-sliced on
    it, so throughput numbers measure concurrency-control efficiency under
    interleaving, not parallel speedup. *)

type result = {
  ops : int;  (** operations committed across all workers *)
  seconds : float;  (** measured wall-clock duration *)
  throughput : float;  (** [ops /. seconds] *)
}

val run_timed :
  threads:int -> seconds:float -> (int -> (unit -> bool) -> int) -> result
(** [run_timed ~threads ~seconds worker]: each worker is called as
    [worker i should_stop] after the barrier and must loop until
    [should_stop ()] returns [true], returning its completed-operation
    count. *)

val run_each : threads:int -> (int -> 'a) -> 'a list
(** Spawn [threads] domains, register thread ids, release them through the
    barrier, run [f i] once in each and join all results (test helper for
    deterministic concurrent scenarios). *)
