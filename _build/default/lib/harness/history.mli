(** Serializability checking of concurrent operation histories.

    Workers record their completed operations (with results) in program
    order; {!Make.serializable} then searches for an interleaving — one
    total order respecting every thread's program order — under which a
    sequential model produces exactly the recorded results.  Transactions
    here are single operations, so this is equivalence to a serial
    execution: what opacity (2PLSF, TL2, ...) and plain serializability
    (TicToc) both promise for *committed* results.

    The search is exponential in the worst case and meant for the small
    adversarial histories the test-suite generates (≤ ~60 events); visited
    (frontier, state) pairs are memoized to prune. *)

module type MODEL = sig
  type state
  type op
  type result

  val init : state

  val apply : state -> op -> state * result
  (** Pure: next state plus the result the operation yields sequentially. *)

  val state_key : state -> string
  (** Injective encoding of the state, for memoization. *)

  val result_equal : result -> result -> bool
end

module Make (M : MODEL) : sig
  type event = { op : M.op; result : M.result }

  val serializable : event list array -> bool
  (** [serializable per_thread]: does some interleaving of the per-thread
      sequences replay exactly on the model? *)
end

(** Ready-made model: an integer set with add/remove/mem, matching the
    benchmark data structures' set API. *)
module Int_set_model : sig
  type op = Add of int | Remove of int | Mem of int
  type state
  type result = bool

  val init : state
  val apply : state -> op -> state * result
  val state_key : state -> string
  val result_equal : result -> result -> bool
  val op_to_string : op -> string
end
