(** The paper's microbenchmark workload mixes.

    §3.2: each set figure has three panels — 50% insert / 50% remove,
    10% insert / 10% remove / 80% lookup, and 100% lookup.  §3.3 (Figure
    8): 1% insert / 1% remove / 98% record update on a key/value map. *)

type op = Insert | Remove | Lookup | Update

type mix = { insert : int; remove : int; lookup : int; update : int }
(** Percentages; must sum to 100. *)

val write_heavy : mix
(** 50i/50r — the leftmost panels. *)

val read_mostly : mix
(** 10i/10r/80l — the central panels. *)

val read_only : mix
(** 100l — the rightmost panels. *)

val map_update : mix
(** 1i/1r/98u — Figure 8. *)

val mix_label : mix -> string

val pick : mix -> Util.Sprng.t -> op
(** Draw the next operation. *)

val key : Util.Sprng.t -> range:int -> int
(** Uniform random key in [0, range). *)
