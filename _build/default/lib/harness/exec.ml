type result = { ops : int; seconds : float; throughput : float }

let await_flag flag =
  let b = Util.Backoff.create () in
  while not (Atomic.get flag) do
    Util.Backoff.once b
  done

let spawn_all threads body =
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let doms =
    List.init threads (fun i ->
        Domain.spawn (fun () ->
            ignore (Util.Tid.register ());
            Atomic.incr ready;
            await_flag go;
            let v = body i in
            Util.Tid.release ();
            v))
  in
  let b = Util.Backoff.create () in
  while Atomic.get ready < threads do
    Util.Backoff.once b
  done;
  (go, doms)

let run_each ~threads f =
  let go, doms = spawn_all threads f in
  Atomic.set go true;
  List.map Domain.join doms

let run_timed ~threads ~seconds worker =
  let stop = Atomic.make false in
  let should_stop () = Atomic.get stop in
  let go, doms = spawn_all threads (fun i -> worker i should_stop) in
  let t0 = Util.Clock.now () in
  Atomic.set go true;
  Unix.sleepf seconds;
  Atomic.set stop true;
  let t1 = Util.Clock.now () in
  let ops = List.fold_left (fun acc d -> acc + Domain.join d) 0 doms in
  let elapsed = t1 -. t0 in
  { ops; seconds = elapsed; throughput = float_of_int ops /. elapsed }
