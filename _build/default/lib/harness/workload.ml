type op = Insert | Remove | Lookup | Update

type mix = { insert : int; remove : int; lookup : int; update : int }

let check m =
  assert (m.insert + m.remove + m.lookup + m.update = 100);
  m

let write_heavy = check { insert = 50; remove = 50; lookup = 0; update = 0 }
let read_mostly = check { insert = 10; remove = 10; lookup = 80; update = 0 }
let read_only = check { insert = 0; remove = 0; lookup = 100; update = 0 }
let map_update = check { insert = 1; remove = 1; lookup = 0; update = 98 }

let mix_label m =
  if m = write_heavy then "50i/50r"
  else if m = read_mostly then "10i/10r/80l"
  else if m = read_only then "100l"
  else if m = map_update then "1i/1r/98u"
  else
    Printf.sprintf "%di/%dr/%dl/%du" m.insert m.remove m.lookup m.update

let pick m rng =
  let r = Util.Sprng.int rng 100 in
  if r < m.insert then Insert
  else if r < m.insert + m.remove then Remove
  else if r < m.insert + m.remove + m.lookup then Lookup
  else Update

let key rng ~range = Util.Sprng.int rng range
