lib/harness/history.mli:
