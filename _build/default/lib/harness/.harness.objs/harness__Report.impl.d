lib/harness/report.ml: Driver Printf
