lib/harness/workload.ml: Printf Util
