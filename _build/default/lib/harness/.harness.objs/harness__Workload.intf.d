lib/harness/workload.mli: Util
