lib/harness/latency.mli:
