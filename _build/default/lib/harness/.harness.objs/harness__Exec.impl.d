lib/harness/exec.ml: Atomic Domain List Unix Util
