lib/harness/history.ml: Array Bool Buffer Hashtbl Int List Printf Set String
