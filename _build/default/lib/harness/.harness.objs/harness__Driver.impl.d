lib/harness/driver.ml: Bytes Char Exec Stdlib Stm_intf Structures Util Workload
