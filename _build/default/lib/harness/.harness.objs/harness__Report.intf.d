lib/harness/report.mli: Driver
