lib/harness/latency.ml: Array Util
