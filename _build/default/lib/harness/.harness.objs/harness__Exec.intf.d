lib/harness/exec.mli:
