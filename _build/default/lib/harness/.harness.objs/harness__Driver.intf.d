lib/harness/driver.mli: Stm_intf Workload
