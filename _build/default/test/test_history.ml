(* The serializability checker itself, then real concurrent histories:
   record per-thread (op, result) logs against a shared transactional set
   under several STMs (including the non-opaque TicToc) and verify a
   serial witness exists. *)

module H = Harness.History
module M = H.Int_set_model
module C = H.Make (H.Int_set_model)

let check = Alcotest.check

let ev op result = { C.op; result }

(* ---- checker unit tests on hand-written histories ---- *)

let test_empty () = check Alcotest.bool "empty" true (C.serializable [||])

let test_single_thread_valid () =
  let h = [| [ ev (M.Add 1) true; ev (M.Mem 1) true; ev (M.Remove 1) true ] |] in
  check Alcotest.bool "valid" true (C.serializable h)

let test_single_thread_invalid () =
  let h = [| [ ev (M.Mem 1) true ] |] in
  check Alcotest.bool "mem of empty can't be true" false (C.serializable h)

let test_two_threads_requires_interleaving () =
  (* T0: add 1 -> true.  T1: mem 1 -> true.  Only the order T0;T1 works. *)
  let h = [| [ ev (M.Add 1) true ]; [ ev (M.Mem 1) true ] |] in
  check Alcotest.bool "interleaving found" true (C.serializable h)

let test_cyclic_dependency_rejected () =
  (* T0: mem 1 -> false, then add 2.  T1: add 1, then mem 2 -> true.
     mem 2 = true forces T0's add 2 first; but T0's mem 1 = false forces it
     before T1's add 1... consistent?  Order: T0.mem1(false), T0.add2,
     T1.add1, T1.mem2(true): works.  Make it truly cyclic instead:
     T0: mem 1 -> true, then add 2.  T1: mem 2 -> true, then add 1.
     mem 1 = true needs T1's add 1 first; mem 2 = true needs T0's add 2
     first; but each add comes after its thread's mem: cycle. *)
  let h =
    [|
      [ ev (M.Mem 1) true; ev (M.Add 2) true ];
      [ ev (M.Mem 2) true; ev (M.Add 1) true ];
    |]
  in
  check Alcotest.bool "cyclic rejected" false (C.serializable h)

let test_duplicate_add_results () =
  let h =
    [| [ ev (M.Add 5) true; ev (M.Add 5) false; ev (M.Remove 5) true ] |]
  in
  check Alcotest.bool "dup add" true (C.serializable h);
  let bad = [| [ ev (M.Add 5) true; ev (M.Add 5) true ] |] in
  check Alcotest.bool "second add can't be true" false (C.serializable bad)

let test_lost_update_detected () =
  (* Two threads both successfully remove the same key that was added once:
     no serial order explains two true removes. *)
  let h =
    [|
      [ ev (M.Add 9) true ];
      [ ev (M.Remove 9) true ];
      [ ev (M.Remove 9) true ];
    |]
  in
  check Alcotest.bool "double remove rejected" false (C.serializable h)

(* qcheck: any round-robin split of a genuinely serial execution is
   serializable. *)
let qcheck_serial_split =
  let gen_ops =
    QCheck.Gen.(
      list_size (int_range 1 18)
        (map2
           (fun c k ->
             match c mod 3 with
             | 0 -> M.Add k
             | 1 -> M.Remove k
             | _ -> M.Mem k)
           (int_range 0 2) (int_range 0 4)))
  in
  QCheck.Test.make ~name:"serial execution split across threads is accepted"
    ~count:150
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map M.op_to_string ops))
       gen_ops)
    (fun ops ->
      (* Replay sequentially to get ground-truth results... *)
      let _, events =
        List.fold_left
          (fun (st, acc) op ->
            let st', r = M.apply st op in
            (st', ev op r :: acc))
          (M.init, []) ops
      in
      let events = List.rev events in
      (* ...then deal the serial history round-robin onto 3 threads
         (preserving relative order within each thread). *)
      let threads = [| []; []; [] |] in
      List.iteri
        (fun i e -> threads.(i mod 3) <- e :: threads.(i mod 3))
        events;
      let threads = Array.map List.rev threads in
      C.serializable threads)

(* ---- real histories from shared structures ---- *)

let record_history (module S : Stm_intf.STM) =
  let module Hm =
    Structures.Hash_map.Make
      (S)
      (struct
        type t = unit
      end)
  in
  let set = Hm.create ~buckets:8 () in
  let logs =
    Harness.Exec.run_each ~threads:3 (fun i ->
        let rng = Util.Sprng.create (400 + i) in
        let log = ref [] in
        for _ = 1 to 14 do
          let k = Util.Sprng.int rng 4 (* tiny key space: real conflicts *) in
          let event =
            match Util.Sprng.int rng 3 with
            | 0 -> ev (M.Add k) (Hm.put set k ())
            | 1 -> ev (M.Remove k) (Hm.remove set k)
            | _ -> ev (M.Mem k) (Hm.get set k <> None)
          in
          log := event :: !log
        done;
        List.rev !log)
  in
  Array.of_list logs

let history_case (module S : Stm_intf.STM) =
  Alcotest.test_case (S.name ^ " history serializable") `Quick (fun () ->
      for _ = 1 to 5 do
        let h = record_history (module S) in
        if not (C.serializable h) then begin
          Array.iteri
            (fun t evs ->
              Printf.eprintf "T%d: %s\n" t
                (String.concat "; "
                   (List.map
                      (fun { C.op; result } ->
                        Printf.sprintf "%s=%b" (M.op_to_string op) result)
                      evs)))
            h;
          Alcotest.fail (S.name ^ ": no serial witness for history")
        end
      done)

let history_stms : (module Stm_intf.STM) list =
  [
    (module Twoplsf.Stm);
    (module Twoplsf.Stm_wb);
    (module Baselines.Tl2);
    (module Baselines.Tinystm);
    (module Baselines.Onefile);
    (module Baselines.Wound_wait);
    (module Baselines.Tictoc_stm);
  ]

let () =
  ignore (Util.Tid.register ());
  Alcotest.run "history"
    [
      ( "checker",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single thread valid" `Quick
            test_single_thread_valid;
          Alcotest.test_case "single thread invalid" `Quick
            test_single_thread_invalid;
          Alcotest.test_case "needs interleaving" `Quick
            test_two_threads_requires_interleaving;
          Alcotest.test_case "cyclic rejected" `Quick
            test_cyclic_dependency_rejected;
          Alcotest.test_case "duplicate adds" `Quick test_duplicate_add_results;
          Alcotest.test_case "lost update rejected" `Quick
            test_lost_update_detected;
          QCheck_alcotest.to_alcotest qcheck_serial_split;
        ] );
      ("recorded histories", List.map history_case history_stms);
    ]
