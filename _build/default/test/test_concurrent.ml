(* Concurrent correctness: atomicity, opacity, lost updates, deadlock
   resolution — run against every STM — plus the 2PLSF starvation-freedom
   bound of §2.2. *)

let check = Alcotest.check

module Battery (S : Stm_intf.STM) = struct
  let test_no_lost_updates () =
    let c = S.tvar 0 in
    ignore
      (Harness.Exec.run_each ~threads:4 (fun _ ->
           for _ = 1 to 400 do
             S.atomic (fun tx -> S.write tx c (S.read tx c + 1))
           done));
    check Alcotest.int "exact" 1_600 (S.atomic (fun tx -> S.read tx c))

  let test_transfer_invariant () =
    let accounts = Array.init 8 (fun _ -> S.tvar 100) in
    let violations = Atomic.make 0 in
    ignore
      (Harness.Exec.run_each ~threads:4 (fun i ->
           let rng = Util.Sprng.create (100 + i) in
           for _ = 1 to 250 do
             let a = Util.Sprng.int rng 8 in
             let b = (a + 1 + Util.Sprng.int rng 7) mod 8 in
             let amount = Util.Sprng.int rng 10 in
             S.atomic (fun tx ->
                 S.write tx accounts.(a) (S.read tx accounts.(a) - amount);
                 S.write tx accounts.(b) (S.read tx accounts.(b) + amount));
             (* Read-only audit: the total must hold in every snapshot. *)
             let total =
               S.atomic ~read_only:true (fun tx ->
                   Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
             in
             if total <> 800 then Atomic.incr violations
           done));
    check Alcotest.int "no torn snapshots" 0 (Atomic.get violations);
    let final =
      S.atomic (fun tx ->
          Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
    in
    check Alcotest.int "money conserved" 800 final

  let test_opposite_order_no_deadlock () =
    (* The §2.3 scenario: one thread locks A then B, the other B then A. *)
    let a = S.tvar 0 and b = S.tvar 0 in
    let iters = 250 in
    ignore
      (Harness.Exec.run_each ~threads:2 (fun i ->
           for _ = 1 to iters do
             S.atomic (fun tx ->
                 if i = 0 then begin
                   S.write tx a (S.read tx a + 1);
                   S.write tx b (S.read tx b + 1)
                 end
                 else begin
                   S.write tx b (S.read tx b + 1);
                   S.write tx a (S.read tx a + 1)
                 end)
           done));
    let va, vb = S.atomic (fun tx -> (S.read tx a, S.read tx b)) in
    check Alcotest.int "a" (2 * iters) va;
    check Alcotest.int "b" (2 * iters) vb

  let test_concurrent_structure () =
    (* Each worker owns a key slice: inserts all, removes half; the final
       contents are exact. *)
    let module H =
      Structures.Hash_map.Make
        (S)
        (struct
          type t = int
        end)
    in
    let h = H.create ~buckets:32 () in
    let per = 100 in
    ignore
      (Harness.Exec.run_each ~threads:4 (fun i ->
           let base = i * per in
           for k = base to base + per - 1 do
             ignore (H.put h k k)
           done;
           for k = base to base + per - 1 do
             if k land 1 = 0 then ignore (H.remove h k)
           done));
    check Alcotest.int "size" (4 * per / 2) (H.size h);
    for k = 0 to (4 * per) - 1 do
      let expect = if k land 1 = 1 then Some k else None in
      if H.get h k <> expect then Alcotest.failf "key %d wrong" k
    done

  let test_disjoint_slices_vs_model () =
    (* Four workers run random op sequences on *disjoint* key slices of one
       shared RAVL tree, each tracking its own sequential model; under any
       correct STM the disjoint histories must both linearize exactly. *)
    let module R =
      Structures.Ravl.Make
        (S)
        (struct
          type t = int
        end)
    in
    let tree = R.create () in
    let slice = 64 in
    let mismatches =
      Harness.Exec.run_each ~threads:4 (fun i ->
          let base = i * slice in
          let rng = Util.Sprng.create (31 + i) in
          let model = Hashtbl.create 64 in
          let bad = ref 0 in
          for _ = 1 to 600 do
            let k = base + Util.Sprng.int rng slice in
            match Util.Sprng.int rng 3 with
            | 0 ->
                let v = Util.Sprng.int rng 1000 in
                let expect_new = not (Hashtbl.mem model k) in
                Hashtbl.replace model k v;
                if R.put tree k v <> expect_new then incr bad
            | 1 ->
                let expect = Hashtbl.mem model k in
                Hashtbl.remove model k;
                if R.remove tree k <> expect then incr bad
            | _ ->
                if R.get tree k <> Hashtbl.find_opt model k then incr bad
          done;
          (* final slice contents *)
          for k = base to base + slice - 1 do
            if R.get tree k <> Hashtbl.find_opt model k then incr bad
          done;
          !bad)
    in
    check Alcotest.int "no divergence from models" 0
      (List.fold_left ( + ) 0 mismatches)

  let test_chaos_exceptions_and_audits () =
    (* Random transfers, random mid-transaction exceptions, concurrent
       read-only audits: the invariant must survive everything. *)
    let cells = Array.init 6 (fun _ -> S.tvar 100) in
    let bad_audits = Atomic.make 0 in
    ignore
      (Harness.Exec.run_each ~threads:4 (fun i ->
           let rng = Util.Sprng.create (77 + i) in
           for _ = 1 to 400 do
             match Util.Sprng.int rng 3 with
             | 0 -> (
                 (* transfer that may blow up after its first write *)
                 let a = Util.Sprng.int rng 6 in
                 let b = (a + 1 + Util.Sprng.int rng 5) mod 6 in
                 let blow = Util.Sprng.int rng 4 = 0 in
                 try
                   S.atomic (fun tx ->
                       S.write tx cells.(a) (S.read tx cells.(a) - 5);
                       if blow then raise Exit;
                       S.write tx cells.(b) (S.read tx cells.(b) + 5))
                 with Exit -> ())
             | 1 ->
                 S.atomic (fun tx ->
                     let a = Util.Sprng.int rng 6 in
                     let b = (a + 1 + Util.Sprng.int rng 5) mod 6 in
                     S.write tx cells.(a) (S.read tx cells.(a) - 1);
                     S.write tx cells.(b) (S.read tx cells.(b) + 1))
             | _ ->
                 let total =
                   S.atomic ~read_only:true (fun tx ->
                       Array.fold_left (fun acc c -> acc + S.read tx c) 0 cells)
                 in
                 if total <> 600 then Atomic.incr bad_audits
           done));
    check Alcotest.int "no inconsistent audit" 0 (Atomic.get bad_audits);
    let final =
      S.atomic (fun tx ->
          Array.fold_left (fun acc c -> acc + S.read tx c) 0 cells)
    in
    check Alcotest.int "invariant after chaos" 600 final

  let cases =
    [
      Alcotest.test_case (S.name ^ " no lost updates") `Quick
        test_no_lost_updates;
      Alcotest.test_case (S.name ^ " disjoint slices vs model") `Quick
        test_disjoint_slices_vs_model;
      Alcotest.test_case (S.name ^ " chaos: exceptions + audits") `Quick
        test_chaos_exceptions_and_audits;
      Alcotest.test_case (S.name ^ " transfer invariant (opacity)") `Quick
        test_transfer_invariant;
      Alcotest.test_case (S.name ^ " opposite-order locking") `Quick
        test_opposite_order_no_deadlock;
      Alcotest.test_case (S.name ^ " concurrent hash map") `Quick
        test_concurrent_structure;
    ]
end

(* ---- 2PLSF starvation-freedom ---- *)

module P = Twoplsf.Stm

let test_bounded_restarts () =
  (* Adversarial pairwise conflicts: every transaction writes the same 8
     counters, two threads in opposite orders (Figure 9's scheme).  §2.2:
     a transaction restarts at most N_threads - 1 times. *)
  let threads = 4 in
  let counters = Array.init 8 (fun _ -> P.tvar 0) in
  P.reset_stats ();
  let max_restarts = Atomic.make 0 in
  ignore
    (Harness.Exec.run_each ~threads (fun i ->
         for _ = 1 to 150 do
           P.atomic (fun tx ->
               if i land 1 = 0 then
                 for j = 0 to 7 do
                   P.write tx counters.(j) (P.read tx counters.(j) + 1)
                 done
               else
                 for j = 7 downto 0 do
                   P.write tx counters.(j) (P.read tx counters.(j) + 1)
                 done);
           let r = P.last_restarts () in
           let rec bump () =
             let cur = Atomic.get max_restarts in
             if r > cur && not (Atomic.compare_and_set max_restarts cur r) then
               bump ()
           in
           bump ()
         done));
  let bound = threads - 1 in
  let worst = Atomic.get max_restarts in
  if worst > bound then
    Alcotest.failf "starvation bound violated: %d restarts > %d" worst bound;
  (* All counters saw every increment exactly once. *)
  let v0 = P.atomic (fun tx -> P.read tx counters.(0)) in
  check Alcotest.int "counter total" (threads * 150) v0;
  Array.iter
    (fun c -> check Alcotest.int "uniform" v0 (P.atomic (fun tx -> P.read tx c)))
    counters

let test_restart_histogram_support () =
  (* After the bounded-restart run above the histogram's support must be
     within [0, N-1]; rerun a small conflict storm and check. *)
  let threads = 4 in
  P.reset_stats ();
  let x = P.tvar 0 and y = P.tvar 0 in
  ignore
    (Harness.Exec.run_each ~threads (fun i ->
         for _ = 1 to 200 do
           P.atomic (fun tx ->
               if i land 1 = 0 then begin
                 P.write tx x (P.read tx x + 1);
                 P.write tx y (P.read tx y + 1)
               end
               else begin
                 P.write tx y (P.read tx y + 1);
                 P.write tx x (P.read tx x + 1)
               end)
         done));
  let h = P.restart_histogram () in
  Array.iteri
    (fun i c ->
      if i >= threads && c > 0 then
        Alcotest.failf "histogram bucket %d nonempty (%d)" i c)
    h;
  check Alcotest.int "sum" (P.commits ()) (Array.fold_left ( + ) 0 h)

let test_irrevocable_ro_never_restarts_under_writers () =
  let x = P.tvar 0 and y = P.tvar 0 in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        ignore (Util.Tid.register ());
        while not (Atomic.get stop) do
          P.atomic (fun tx ->
              P.write tx x (P.read tx x + 1);
              P.write tx y (P.read tx y + 1))
        done;
        Util.Tid.release ())
  in
  for _ = 1 to 100 do
    let a, b =
      P.atomic_irrevocable_ro (fun tx -> (P.read tx x, P.read tx y))
    in
    check Alcotest.int "consistent snapshot" a b;
    check Alcotest.int "never restarted" 0 (P.last_restarts ())
  done;
  Atomic.set stop true;
  Domain.join writer

let battery_of (module S : Stm_intf.STM) =
  let module B = Battery (S) in
  (S.name, B.cases)

let () =
  ignore (Util.Tid.register ());
  let batteries = List.map battery_of Baselines.Registry.all in
  Alcotest.run "concurrent"
    (batteries
    @ [
        ( "2PLSF starvation-freedom",
          [
            Alcotest.test_case "restart bound N-1" `Quick test_bounded_restarts;
            Alcotest.test_case "restart histogram support" `Quick
              test_restart_histogram_support;
            Alcotest.test_case "irrevocable RO under writers" `Quick
              test_irrevocable_ro_never_restarts_under_writers;
          ] );
      ])
