(* Tests for the paper's starvation-free reader-writer lock (Algorithm 2/3).

   Deterministic single-thread tests cover the fast paths and every
   restart (return-false) path by pre-announcing timestamps; two-domain
   tests cover the waiting paths. *)

module L = Twoplsf.Rwl_sf

let check = Alcotest.check

(* Reserve a few dense tids so read-indicator scans cover the ctx tids the
   tests fabricate. *)
let () =
  ignore (Util.Tid.register ());
  ignore (Harness.Exec.run_each ~threads:4 (fun _ -> ()))

let fresh () = L.create ~num_locks:64 ()

let test_read_fast_path () =
  let t = fresh () in
  let c = L.make_ctx ~tid:0 in
  check Alcotest.bool "acquired" true (L.try_or_wait_read_lock t c 5);
  check Alcotest.bool "holds" true (L.holds_read t c 5);
  check Alcotest.int "no timestamp taken" 0 c.my_ts;
  L.read_unlock t c 5;
  check Alcotest.bool "released" false (L.holds_read t c 5)

let test_write_fast_path () =
  let t = fresh () in
  let c = L.make_ctx ~tid:0 in
  check Alcotest.bool "acquired" true (L.try_or_wait_write_lock t c 5);
  check Alcotest.bool "holds" true (L.holds_write t c 5);
  check Alcotest.int "no timestamp taken" 0 c.my_ts;
  L.write_unlock t c 5;
  check Alcotest.bool "released" false (L.holds_write t c 5)

let test_read_reentrant () =
  let t = fresh () in
  let c = L.make_ctx ~tid:0 in
  ignore (L.try_or_wait_read_lock t c 5);
  check Alcotest.bool "again" true (L.try_or_wait_read_lock t c 5);
  L.read_unlock t c 5

let test_write_reentrant () =
  let t = fresh () in
  let c = L.make_ctx ~tid:0 in
  ignore (L.try_or_wait_write_lock t c 5);
  check Alcotest.bool "again" true (L.try_or_wait_write_lock t c 5);
  check Alcotest.bool "still held" true (L.holds_write t c 5);
  L.write_unlock t c 5

let test_read_then_write_upgrade () =
  let t = fresh () in
  let c = L.make_ctx ~tid:0 in
  ignore (L.try_or_wait_read_lock t c 5);
  check Alcotest.bool "upgrade" true (L.try_or_wait_write_lock t c 5);
  check Alcotest.bool "write held" true (L.holds_write t c 5);
  L.read_unlock t c 5;
  L.write_unlock t c 5

let test_write_lock_while_holding_write () =
  let t = fresh () in
  let c = L.make_ctx ~tid:0 in
  ignore (L.try_or_wait_write_lock t c 5);
  check Alcotest.bool "read under own write" true
    (L.try_or_wait_read_lock t c 5);
  L.read_unlock t c 5;
  L.write_unlock t c 5

let test_reader_restarts_on_lower_ts_writer () =
  let t = fresh () in
  let holder = L.make_ctx ~tid:0 in
  let reader = L.make_ctx ~tid:1 in
  ignore (L.try_or_wait_write_lock t holder 5);
  L.announce_priority t holder 3;
  L.announce_priority t reader 7;
  check Alcotest.bool "reader restarts" false
    (L.try_or_wait_read_lock t reader 5);
  check Alcotest.bool "indicator cleared" false (L.holds_read t reader 5);
  check Alcotest.int "conflictor recorded" 0 reader.o_tid;
  check Alcotest.int "conflictor ts" 3 reader.o_ts;
  L.write_unlock t holder 5

let test_writer_restarts_on_lower_ts_writer () =
  let t = fresh () in
  let holder = L.make_ctx ~tid:0 in
  let writer = L.make_ctx ~tid:1 in
  ignore (L.try_or_wait_write_lock t holder 5);
  L.announce_priority t holder 3;
  L.announce_priority t writer 7;
  check Alcotest.bool "writer restarts" false
    (L.try_or_wait_write_lock t writer 5);
  check Alcotest.bool "holder keeps lock" true (L.holds_write t holder 5);
  check Alcotest.bool "loser's indicator cleared" false
    (L.holds_read t writer 5);
  L.write_unlock t holder 5

let test_writer_restarts_on_lower_ts_reader () =
  let t = fresh () in
  let reader = L.make_ctx ~tid:0 in
  let writer = L.make_ctx ~tid:1 in
  ignore (L.try_or_wait_read_lock t reader 5);
  L.announce_priority t reader 3;
  L.announce_priority t writer 7;
  check Alcotest.bool "writer restarts" false
    (L.try_or_wait_write_lock t writer 5);
  check Alcotest.bool "reader undisturbed" true (L.holds_read t reader 5);
  check Alcotest.bool "write lock free again" false (L.holds_write t writer 5);
  check Alcotest.int "conflictor recorded" 0 writer.o_tid;
  L.read_unlock t reader 5

let test_conflict_takes_timestamp_once () =
  let t = fresh () in
  let holder = L.make_ctx ~tid:0 in
  let loser = L.make_ctx ~tid:1 in
  ignore (L.try_or_wait_write_lock t holder 5);
  ignore (L.try_or_wait_write_lock t holder 6);
  (* priority 1 is below anything the conflict clock can hand out, so the
     loser restarts instead of waiting *)
  L.announce_priority t holder 1;
  check Alcotest.bool "restart 1" false (L.try_or_wait_write_lock t loser 5);
  let ts1 = loser.my_ts in
  check Alcotest.bool "got a timestamp" true (ts1 > 0);
  check Alcotest.bool "restart 2" false (L.try_or_wait_write_lock t loser 6);
  check Alcotest.int "timestamp kept" ts1 loser.my_ts;
  check Alcotest.int "announced" ts1 (L.announced t 1);
  L.write_unlock t holder 5;
  L.write_unlock t holder 6

let test_unconflicted_holder_is_waited_for () =
  (* A holder that never conflicted announces nothing (= +inf priority):
     a timestamped contender must wait, not restart (DESIGN.md note on the
     NO_TIMESTAMP convention). *)
  let t = fresh () in
  let holder = L.make_ctx ~tid:0 in
  ignore (L.try_or_wait_write_lock t holder 5);
  let waited = ref false in
  let d =
    Domain.spawn (fun () ->
        ignore (Util.Tid.register ());
        let contender = L.make_ctx ~tid:1 in
        L.announce_priority t contender 9;
        let ok = L.try_or_wait_write_lock t contender 5 in
        L.write_unlock t contender 5;
        Util.Tid.release ();
        ok)
  in
  Unix.sleepf 0.05;
  waited := true;
  L.write_unlock t holder 5;
  check Alcotest.bool "acquired after wait" true (Domain.join d);
  check Alcotest.bool "really waited" true !waited

let test_clear_announcement () =
  let t = fresh () in
  let c = L.make_ctx ~tid:0 in
  L.announce_priority t c 5;
  c.o_tid <- 3;
  c.o_ts <- 9;
  L.clear_announcement t c;
  check Alcotest.int "my_ts" 0 c.my_ts;
  check Alcotest.int "o_tid" (-1) c.o_tid;
  check Alcotest.int "announce slot" 0 (L.announced t 0)

let test_wait_for_conflictor_returns_when_cleared () =
  let t = fresh () in
  let c = L.make_ctx ~tid:0 in
  (* Conflictor already moved on: returns immediately. *)
  c.o_tid <- 1;
  c.o_ts <- 42 (* announce slot of tid 1 is 0 <> 42 *);
  L.wait_for_conflictor t c;
  check Alcotest.int "cleared o_tid" (-1) c.o_tid

let test_wait_for_conflictor_blocks_until_commit () =
  let t = fresh () in
  let other = L.make_ctx ~tid:1 in
  L.announce_priority t other 17;
  let d =
    Domain.spawn (fun () ->
        ignore (Util.Tid.register ());
        let c = L.make_ctx ~tid:2 in
        c.o_tid <- 1;
        c.o_ts <- 17;
        let t0 = Util.Clock.now () in
        L.wait_for_conflictor t c;
        Util.Tid.release ();
        Util.Clock.now () -. t0)
  in
  Unix.sleepf 0.05;
  L.clear_announcement t other;
  let waited = Domain.join d in
  check Alcotest.bool "blocked for the announcement" true (waited >= 0.03)

let test_writer_waits_for_reader_release () =
  let t = fresh () in
  let reader_done = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        ignore (Util.Tid.register ());
        let c = L.make_ctx ~tid:(Util.Tid.get ()) in
        ignore (L.try_or_wait_read_lock t c 5);
        Unix.sleepf 0.05;
        L.read_unlock t c 5;
        Atomic.set reader_done true;
        Util.Tid.release ())
  in
  Unix.sleepf 0.01;
  let writer =
    Domain.spawn (fun () ->
        ignore (Util.Tid.register ());
        let c = L.make_ctx ~tid:(Util.Tid.get ()) in
        let ok = L.try_or_wait_write_lock t c 5 in
        let after = Atomic.get reader_done in
        L.write_unlock t c 5;
        Util.Tid.release ();
        (ok, after))
  in
  Domain.join reader;
  let ok, after = Domain.join writer in
  check Alcotest.bool "writer acquired" true ok;
  check Alcotest.bool "only after reader left" true after

let test_zero_mutex () =
  let t = fresh () in
  L.zero_mutex_lock t;
  let d =
    Domain.spawn (fun () ->
        let t0 = Util.Clock.now () in
        L.zero_mutex_lock t;
        L.zero_mutex_unlock t;
        Util.Clock.now () -. t0)
  in
  Unix.sleepf 0.05;
  L.zero_mutex_unlock t;
  let waited = Domain.join d in
  check Alcotest.bool "serialized" true (waited >= 0.03)

let test_mutual_exclusion_stress () =
  (* 4 domains hammer 4 locks with random read/write acquisitions following
     the full protocol (restart + wait-for-conflictor on a refusal).  A
     per-lock occupancy word (readers + 1000 * writers) catches any
     mutual-exclusion violation. *)
  let t = fresh () in
  let occupancy = Array.init 4 (fun _ -> Atomic.make 0) in
  let violations = Atomic.make 0 in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun i ->
         let c = L.make_ctx ~tid:(Util.Tid.get ()) in
         let rng = Util.Sprng.create (500 + i) in
         for _ = 1 to 400 do
           let w = Util.Sprng.int rng 4 in
           let is_write = Util.Sprng.int rng 100 < 30 in
           let rec txn () =
             if is_write then begin
               if L.try_or_wait_write_lock t c w then begin
                 let prev = Atomic.fetch_and_add occupancy.(w) 1000 in
                 if prev <> 0 then Atomic.incr violations;
                 Domain.cpu_relax ();
                 ignore (Atomic.fetch_and_add occupancy.(w) (-1000));
                 L.write_unlock t c w
               end
               else begin
                 L.wait_for_conflictor t c;
                 txn ()
               end
             end
             else if L.try_or_wait_read_lock t c w then begin
               let prev = Atomic.fetch_and_add occupancy.(w) 1 in
               if prev >= 1000 then Atomic.incr violations;
               Domain.cpu_relax ();
               ignore (Atomic.fetch_and_add occupancy.(w) (-1));
               L.read_unlock t c w
             end
             else begin
               L.wait_for_conflictor t c;
               txn ()
             end
           in
           txn ();
           L.clear_announcement t c
         done));
  check Alcotest.int "no mutual-exclusion violations" 0
    (Atomic.get violations);
  (* all locks quiescent *)
  Array.iter
    (fun o -> check Alcotest.int "occupancy drained" 0 (Atomic.get o))
    occupancy

let test_lock_index_masks () =
  let t = fresh () in
  check Alcotest.int "num locks" 64 (L.num_locks t);
  check Alcotest.int "id 0" 0 (L.lock_index t 0);
  check Alcotest.int "id 64 wraps" 0 (L.lock_index t 64);
  check Alcotest.int "id 65" 1 (L.lock_index t 65)

let test_take_timestamp_monotone () =
  let t = fresh () in
  let a = L.make_ctx ~tid:0 and b = L.make_ctx ~tid:1 in
  L.take_timestamp t a;
  L.take_timestamp t b;
  check Alcotest.bool "distinct, increasing" true (b.my_ts > a.my_ts);
  let before = a.my_ts in
  L.take_timestamp t a;
  check Alcotest.int "idempotent" before a.my_ts

let () =
  Alcotest.run "rwl_sf"
    [
      ( "fast paths",
        [
          Alcotest.test_case "read" `Quick test_read_fast_path;
          Alcotest.test_case "write" `Quick test_write_fast_path;
          Alcotest.test_case "read reentrant" `Quick test_read_reentrant;
          Alcotest.test_case "write reentrant" `Quick test_write_reentrant;
          Alcotest.test_case "read->write upgrade" `Quick
            test_read_then_write_upgrade;
          Alcotest.test_case "read under own write" `Quick
            test_write_lock_while_holding_write;
          Alcotest.test_case "lock_index" `Quick test_lock_index_masks;
        ] );
      ( "conflict resolution",
        [
          Alcotest.test_case "reader loses to lower-ts writer" `Quick
            test_reader_restarts_on_lower_ts_writer;
          Alcotest.test_case "writer loses to lower-ts writer" `Quick
            test_writer_restarts_on_lower_ts_writer;
          Alcotest.test_case "writer loses to lower-ts reader" `Quick
            test_writer_restarts_on_lower_ts_reader;
          Alcotest.test_case "timestamp taken once, kept" `Quick
            test_conflict_takes_timestamp_once;
          Alcotest.test_case "timestamps monotone" `Quick
            test_take_timestamp_monotone;
        ] );
      ( "waiting",
        [
          Alcotest.test_case "unconflicted holder is waited for" `Quick
            test_unconflicted_holder_is_waited_for;
          Alcotest.test_case "writer waits for reader" `Quick
            test_writer_waits_for_reader_release;
          Alcotest.test_case "wait_for_conflictor immediate" `Quick
            test_wait_for_conflictor_returns_when_cleared;
          Alcotest.test_case "wait_for_conflictor blocks" `Quick
            test_wait_for_conflictor_blocks_until_commit;
        ] );
      ( "announcements",
        [
          Alcotest.test_case "clear" `Quick test_clear_announcement;
          Alcotest.test_case "zero mutex" `Quick test_zero_mutex;
        ] );
      ( "stress",
        [
          Alcotest.test_case "mutual exclusion under churn" `Quick
            test_mutual_exclusion_stress;
        ] );
    ]
