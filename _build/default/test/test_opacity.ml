(* Opacity vs serializability (§3.5 of the paper).

   The paper's justification for paying 2PLSF's pessimistic reads is that
   TicToc — faster under high contention — is serializable but NOT opaque:
   an in-flight transaction can observe a state no serial execution
   produces (a "zombie read"), which is fatal when the concurrency control
   guards a data structure's invariants during traversal.

   Here the claim is made executable: an orchestrated interleaving where a
   reader transaction straddles a writer's commit.  Every opaque STM makes
   the reader restart (or wait) and never exposes the torn pair; the
   TicToc STM exposes exactly (old x, new y). *)

let check = Alcotest.check

exception Done

(* Thread A reads x, then blocks until B commits {x := 1; y := 1}, then
   reads y.  Returns what A's *first* attempt observed. *)
let straddle (module S : Stm_intf.STM) =
  let x = S.tvar 0 and y = S.tvar 0 in
  let stage = Atomic.make 0 in
  let observed = ref None in
  let reader =
    Domain.spawn (fun () ->
        ignore (Util.Tid.register ());
        let first = ref true in
        (try
           S.atomic (fun tx ->
               let a = S.read tx x in
               if !first then begin
                 first := false;
                 Atomic.set stage 1;
                 let b = Util.Backoff.create () in
                 while Atomic.get stage < 2 do
                   Util.Backoff.once b
                 done
               end;
               let b = S.read tx y in
               if !observed = None then observed := Some (a, b);
               raise Done)
         with Done -> ());
        Util.Tid.release ())
  in
  let b = Util.Backoff.create () in
  while Atomic.get stage < 1 do
    Util.Backoff.once b
  done;
  S.atomic (fun tx ->
      S.write tx x 1;
      S.write tx y 1);
  Atomic.set stage 2;
  Domain.join reader;
  !observed

let opaque_stms : (module Stm_intf.STM) list =
  [
    (module Baselines.Tl2);
    (module Baselines.Tinystm);
    (module Baselines.Orec_lazy);
  ]

let test_opaque_never_torn (module S : Stm_intf.STM) =
  Alcotest.test_case (S.name ^ " straddled read stays consistent") `Quick
    (fun () ->
      match straddle (module S) with
      | Some (a, b) ->
          check Alcotest.int (S.name ^ " consistent pair") a b
      | None -> Alcotest.fail "reader never completed an observation")

let test_tictoc_zombie_read () =
  match straddle (module Baselines.Tictoc_stm) with
  | Some (0, 1) -> () (* the torn pair: old x with new y *)
  | Some (a, b) ->
      Alcotest.failf
        "expected the zombie pair (0,1); TicToc observed (%d,%d)" a b
  | None -> Alcotest.fail "reader never completed an observation"

(* Even without opacity, *committed* state must be serializable. *)
module T = Baselines.Tictoc_stm

let test_tictoc_committed_state_serializable () =
  let cells = Array.init 8 (fun _ -> T.tvar 100) in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun i ->
         let rng = Util.Sprng.create (900 + i) in
         for _ = 1 to 300 do
           let a = Util.Sprng.int rng 8 in
           let b = (a + 1 + Util.Sprng.int rng 7) mod 8 in
           T.atomic (fun tx ->
               T.write tx cells.(a) (T.read tx cells.(a) - 3);
               T.write tx cells.(b) (T.read tx cells.(b) + 3))
         done));
  let total =
    T.atomic (fun tx ->
        Array.fold_left (fun acc c -> acc + T.read tx c) 0 cells)
  in
  check Alcotest.int "money conserved at commit" 800 total

let test_tictoc_no_lost_updates () =
  let c = T.tvar 0 in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun _ ->
         for _ = 1 to 300 do
           T.atomic (fun tx -> T.write tx c (T.read tx c + 1))
         done));
  check Alcotest.int "exact" 1200 (T.atomic (fun tx -> T.read tx c))

let test_tictoc_sequential_semantics () =
  let x = T.tvar 1 in
  let seen =
    T.atomic (fun tx ->
        T.write tx x 2;
        let a = T.read tx x in
        T.write tx x 3;
        (a, T.read tx x))
  in
  check (Alcotest.pair Alcotest.int Alcotest.int) "read own writes" (2, 3) seen;
  check Alcotest.int "committed" 3 (T.atomic (fun tx -> T.read tx x));
  (try
     T.atomic (fun tx ->
         T.write tx x 99;
         failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "exception discards buffer" 3
    (T.atomic (fun tx -> T.read tx x))

(* TicToc under a transactional structure: single-threaded it is exact;
   concurrently its committed state stays a valid set (model per disjoint
   slice), zombies notwithstanding — the read budget contains them. *)
module H =
  Structures.Hash_map.Make
    (T)
    (struct
      type t = int
    end)

let test_tictoc_structure_model () =
  let h = H.create ~buckets:16 () in
  let model = Hashtbl.create 64 in
  let rng = Util.Sprng.create 3 in
  for _ = 1 to 2000 do
    let k = Util.Sprng.int rng 48 in
    if Util.Sprng.bool rng then begin
      let fresh = not (Hashtbl.mem model k) in
      Hashtbl.replace model k k;
      check Alcotest.bool "put agrees" fresh (H.put h k k)
    end
    else begin
      let present = Hashtbl.mem model k in
      Hashtbl.remove model k;
      check Alcotest.bool "remove agrees" present (H.remove h k)
    end
  done;
  Hashtbl.iter
    (fun k v ->
      check (Alcotest.option Alcotest.int) "present" (Some v) (H.get h k))
    model

let test_tictoc_concurrent_structure () =
  let h = H.create ~buckets:32 () in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun i ->
         let base = i * 50 in
         for k = base to base + 49 do
           ignore (H.put h k k)
         done;
         for k = base to base + 49 do
           if k land 1 = 0 then ignore (H.remove h k)
         done));
  for k = 0 to 199 do
    let expect = if k land 1 = 1 then Some k else None in
    if H.get h k <> expect then Alcotest.failf "key %d wrong" k
  done

let () =
  ignore (Util.Tid.register ());
  Alcotest.run "opacity"
    [
      ( "straddled reads",
        List.map test_opaque_never_torn opaque_stms
        @ [
            Alcotest.test_case "TicToc-STM observes the zombie pair" `Quick
              test_tictoc_zombie_read;
          ] );
      ( "tictoc-stm correctness",
        [
          Alcotest.test_case "sequential semantics" `Quick
            test_tictoc_sequential_semantics;
          Alcotest.test_case "no lost updates" `Quick
            test_tictoc_no_lost_updates;
          Alcotest.test_case "committed state serializable" `Quick
            test_tictoc_committed_state_serializable;
          Alcotest.test_case "structure vs model (sequential)" `Quick
            test_tictoc_structure_model;
          Alcotest.test_case "structure disjoint concurrent" `Quick
            test_tictoc_concurrent_structure;
        ] );
    ]
