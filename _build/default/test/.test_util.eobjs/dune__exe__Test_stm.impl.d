test/test_stm.ml: Alcotest Array Baselines List Stm_intf Twoplsf Util
