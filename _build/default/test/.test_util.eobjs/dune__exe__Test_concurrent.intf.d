test/test_concurrent.mli:
