test/test_harness.ml: Alcotest Baselines Harness List Util
