test/test_baseline_internals.mli:
