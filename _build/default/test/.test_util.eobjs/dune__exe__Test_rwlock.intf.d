test/test_rwlock.mli:
