test/test_rwl_sf.ml: Alcotest Array Atomic Domain Harness Twoplsf Unix Util
