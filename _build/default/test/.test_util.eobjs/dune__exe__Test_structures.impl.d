test/test_structures.ml: Alcotest Baselines Harness Int List Map Printf QCheck QCheck_alcotest Stm_intf String Structures Twoplsf Util
