test/test_history.ml: Alcotest Array Baselines Harness List Printf QCheck QCheck_alcotest Stm_intf String Structures Twoplsf Util
