test/test_rwl_sf.mli:
