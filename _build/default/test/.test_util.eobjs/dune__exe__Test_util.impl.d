test/test_util.ml: Alcotest Array Atomic Gen Harness Hashtbl List QCheck QCheck_alcotest Unix Util
