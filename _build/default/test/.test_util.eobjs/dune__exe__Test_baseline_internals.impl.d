test/test_baseline_internals.ml: Alcotest Array Baselines Gen Hashtbl List QCheck QCheck_alcotest Stm_intf Util
