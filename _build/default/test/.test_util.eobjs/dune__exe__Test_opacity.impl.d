test/test_opacity.ml: Alcotest Array Atomic Baselines Domain Harness Hashtbl List Stm_intf Structures Util
