test/test_concurrent.ml: Alcotest Array Atomic Baselines Domain Harness Hashtbl List Stm_intf Structures Twoplsf Util
