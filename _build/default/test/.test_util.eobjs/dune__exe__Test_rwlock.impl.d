test/test_rwlock.ml: Alcotest Atomic Domain Gen Harness Hashtbl List QCheck QCheck_alcotest Rwlock Twoplsf Unix Util
