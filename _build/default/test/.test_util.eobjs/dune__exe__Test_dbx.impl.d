test/test_dbx.ml: Alcotest Array Bytes Char Dbx Hashtbl List Util
