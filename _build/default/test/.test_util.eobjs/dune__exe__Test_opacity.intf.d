test/test_opacity.mli:
