test/test_dbx.mli:
