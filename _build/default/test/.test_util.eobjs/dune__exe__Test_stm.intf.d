test/test_stm.mli:
