(* Tests for the benchmark harness itself: execution, workload mixes,
   latency collection, and a smoke pass of the set/map drivers for every
   structure kind. *)

let check = Alcotest.check

(* ---- Exec ---- *)

let test_run_each_results_in_order () =
  let rs = Harness.Exec.run_each ~threads:4 (fun i -> i * i) in
  check (Alcotest.list Alcotest.int) "ordered results" [ 0; 1; 4; 9 ] rs

let test_run_timed_counts_ops () =
  let r =
    Harness.Exec.run_timed ~threads:2 ~seconds:0.1 (fun _ should_stop ->
        let n = ref 0 in
        while not (should_stop ()) do
          incr n
        done;
        !n)
  in
  if r.ops <= 0 then Alcotest.fail "no ops";
  if r.seconds < 0.05 then Alcotest.failf "too short: %f" r.seconds;
  let tp = float_of_int r.ops /. r.seconds in
  if abs_float (tp -. r.throughput) > 1. then Alcotest.fail "throughput math"

let test_run_timed_stops () =
  let (_ : Harness.Exec.result) =
    Harness.Exec.run_timed ~threads:1 ~seconds:0.05 (fun _ should_stop ->
        let n = ref 0 in
        while not (should_stop ()) do
          incr n
        done;
        !n)
  in
  (* reaching here is the assertion: the stop flag terminated the loop *)
  ()

(* ---- Workload ---- *)

let test_mix_labels () =
  check Alcotest.string "wh" "50i/50r"
    (Harness.Workload.mix_label Harness.Workload.write_heavy);
  check Alcotest.string "rm" "10i/10r/80l"
    (Harness.Workload.mix_label Harness.Workload.read_mostly);
  check Alcotest.string "ro" "100l"
    (Harness.Workload.mix_label Harness.Workload.read_only);
  check Alcotest.string "mu" "1i/1r/98u"
    (Harness.Workload.mix_label Harness.Workload.map_update)

let count_ops mix n =
  let rng = Util.Sprng.create 5 in
  let i = ref 0 and r = ref 0 and l = ref 0 and u = ref 0 in
  for _ = 1 to n do
    match Harness.Workload.pick mix rng with
    | Harness.Workload.Insert -> incr i
    | Harness.Workload.Remove -> incr r
    | Harness.Workload.Lookup -> incr l
    | Harness.Workload.Update -> incr u
  done;
  (!i, !r, !l, !u)

let test_mix_proportions () =
  let n = 20_000 in
  let i, r, l, u = count_ops Harness.Workload.read_mostly n in
  check Alcotest.int "sums" n (i + r + l + u);
  let pct x = 100 * x / n in
  if abs (pct i - 10) > 3 then Alcotest.failf "insert pct %d" (pct i);
  if abs (pct r - 10) > 3 then Alcotest.failf "remove pct %d" (pct r);
  if abs (pct l - 80) > 3 then Alcotest.failf "lookup pct %d" (pct l);
  check Alcotest.int "no updates" 0 u

let test_mix_read_only_pure () =
  let i, r, l, u = count_ops Harness.Workload.read_only 1_000 in
  check Alcotest.int "all lookups" 1_000 l;
  check Alcotest.int "none else" 0 (i + r + u)

(* ---- Latency ---- *)

let test_latency_percentiles () =
  let lat = Harness.Latency.create ~threads:2 in
  for i = 1 to 50 do
    Harness.Latency.record lat 0 (float_of_int i)
  done;
  for i = 51 to 100 do
    Harness.Latency.record lat 1 (float_of_int i)
  done;
  check Alcotest.int "count" 100 (Harness.Latency.count lat);
  let ps = Harness.Latency.percentiles lat [ 50.; 99. ] in
  check (Alcotest.float 1e-9) "p50" 50. (List.assoc 50. ps);
  check (Alcotest.float 1e-9) "p99" 99. (List.assoc 99. ps);
  check (Alcotest.float 1e-9) "max" 100. (Harness.Latency.max_latency lat)

let test_latency_empty_raises () =
  let lat = Harness.Latency.create ~threads:1 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentiles_in_place: empty sample") (fun () ->
      ignore (Harness.Latency.percentiles lat [ 50. ]))

(* ---- Driver smoke: every structure kind produces sane rows ---- *)

let driver_smoke kind =
  let test () =
    let row =
      Harness.Driver.run_set_bench ~stm:Baselines.Registry.twoplsf
        ~structure:kind ~mix:Harness.Workload.read_mostly ~range:256 ~threads:2
        ~seconds:0.1
    in
    check Alcotest.string "label" (Harness.Driver.structure_label kind)
      row.structure;
    if row.throughput <= 0. then Alcotest.fail "no throughput";
    if row.commits <= 0 then Alcotest.fail "no commits"
  in
  Alcotest.test_case (Harness.Driver.structure_label kind) `Quick test

let test_map_driver_smoke () =
  let row =
    Harness.Driver.run_map_bench ~stm:Baselines.Registry.twoplsf
      ~structure:Harness.Driver.Ravl_s ~range:256 ~threads:2 ~seconds:0.1
  in
  check Alcotest.string "mix" "1i/1r/98u" row.mix;
  if row.commits <= 0 then Alcotest.fail "no commits"

let () =
  ignore (Util.Tid.register ());
  Alcotest.run "harness"
    [
      ( "exec",
        [
          Alcotest.test_case "run_each order" `Quick
            test_run_each_results_in_order;
          Alcotest.test_case "run_timed counts" `Quick test_run_timed_counts_ops;
          Alcotest.test_case "run_timed stops" `Quick test_run_timed_stops;
        ] );
      ( "workload",
        [
          Alcotest.test_case "labels" `Quick test_mix_labels;
          Alcotest.test_case "proportions" `Quick test_mix_proportions;
          Alcotest.test_case "read-only pure" `Quick test_mix_read_only_pure;
        ] );
      ( "latency",
        [
          Alcotest.test_case "percentiles" `Quick test_latency_percentiles;
          Alcotest.test_case "empty raises" `Quick test_latency_empty_raises;
        ] );
      ( "driver",
        List.map driver_smoke
          Harness.Driver.[ List_s; Hash_s; Skip_s; Zip_s; Ravl_s ]
        @ [ Alcotest.test_case "map bench" `Quick test_map_driver_smoke ] );
    ]
