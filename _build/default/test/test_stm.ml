(* Semantic battery run against every STM in the registry, plus
   2PLSF-specific tests (irrevocability, restart histogram, configure). *)

let check = Alcotest.check

module Battery (S : Stm_intf.STM) = struct
  let test_commit_visible () =
    let x = S.tvar 0 in
    S.atomic (fun tx -> S.write tx x 41);
    let v = S.atomic ~read_only:true (fun tx -> S.read tx x) in
    check Alcotest.int "visible" 41 v

  let test_read_own_write () =
    let x = S.tvar 1 in
    let seen =
      S.atomic (fun tx ->
          S.write tx x 2;
          let a = S.read tx x in
          S.write tx x 3;
          let b = S.read tx x in
          (a, b))
    in
    check (Alcotest.pair Alcotest.int Alcotest.int) "own writes" (2, 3) seen;
    check Alcotest.int "final" 3 (S.atomic (fun tx -> S.read tx x))

  let test_rollback_on_exception () =
    let x = S.tvar 10 in
    (try
       S.atomic (fun tx ->
           S.write tx x 99;
           failwith "user error")
     with Failure _ -> ());
    check Alcotest.int "rolled back" 10 (S.atomic (fun tx -> S.read tx x))

  let test_exception_propagates () =
    let x = S.tvar 0 in
    Alcotest.check_raises "propagates" Exit (fun () ->
        S.atomic (fun tx ->
            S.write tx x 1;
            raise Exit))

  let test_multi_tvar_atomic () =
    let a = S.tvar 50 and b = S.tvar 50 in
    S.atomic (fun tx ->
        S.write tx a (S.read tx a - 10);
        S.write tx b (S.read tx b + 10));
    let sa, sb = S.atomic (fun tx -> (S.read tx a, S.read tx b)) in
    check Alcotest.int "sum invariant" 100 (sa + sb);
    check Alcotest.int "a" 40 sa

  let test_nested_flattens () =
    let x = S.tvar 0 in
    let v =
      S.atomic (fun tx ->
          S.write tx x 1;
          let inner = S.atomic (fun tx' -> S.read tx' x) in
          S.write tx x (inner + 1);
          S.read tx x)
    in
    check Alcotest.int "nested saw outer write" 2 v

  let test_write_after_read_same_tvar () =
    let x = S.tvar 5 in
    S.atomic (fun tx ->
        let v = S.read tx x in
        S.write tx x (v * 2));
    check Alcotest.int "upgraded" 10 (S.atomic (fun tx -> S.read tx x))

  let test_many_tvars_one_txn () =
    (* Exceeds any bloom filter / forces lock-table hash collisions. *)
    let tvars = Array.init 300 (fun i -> S.tvar i) in
    S.atomic (fun tx ->
        Array.iter (fun tv -> S.write tx tv (S.read tx tv + 1)) tvars);
    let sum =
      S.atomic ~read_only:true (fun tx ->
          Array.fold_left (fun acc tv -> acc + S.read tx tv) 0 tvars)
    in
    check Alcotest.int "all updated" (((299 * 300) / 2) + 300) sum

  let test_different_types () =
    let s = S.tvar "hello" and f = S.tvar 1.5 and l = S.tvar [ 1; 2 ] in
    S.atomic (fun tx ->
        S.write tx s (S.read tx s ^ "!");
        S.write tx f (S.read tx f *. 2.);
        S.write tx l (3 :: S.read tx l));
    check Alcotest.string "string tvar" "hello!"
      (S.atomic (fun tx -> S.read tx s));
    check (Alcotest.float 1e-9) "float tvar" 3.
      (S.atomic (fun tx -> S.read tx f));
    check (Alcotest.list Alcotest.int) "list tvar" [ 3; 1; 2 ]
      (S.atomic (fun tx -> S.read tx l))

  let test_stats_count_commits () =
    S.reset_stats ();
    let x = S.tvar 0 in
    for _ = 1 to 5 do
      S.atomic (fun tx -> S.write tx x (S.read tx x + 1))
    done;
    check Alcotest.bool "at least 5 commits" true (S.commits () >= 5);
    S.reset_stats ();
    check Alcotest.int "reset" 0 (S.commits ())

  let test_last_restarts_zero_uncontended () =
    let x = S.tvar 0 in
    S.atomic (fun tx -> S.write tx x 1);
    check Alcotest.int "no restarts" 0 (S.last_restarts ())

  let test_result_value () =
    let x = S.tvar 7 in
    let v = S.atomic (fun tx -> S.read tx x * 6) in
    check Alcotest.int "returned" 42 v

  let cases =
    [
      Alcotest.test_case (S.name ^ " commit visible") `Quick test_commit_visible;
      Alcotest.test_case (S.name ^ " read own write") `Quick test_read_own_write;
      Alcotest.test_case (S.name ^ " rollback on exception") `Quick
        test_rollback_on_exception;
      Alcotest.test_case (S.name ^ " exception propagates") `Quick
        test_exception_propagates;
      Alcotest.test_case (S.name ^ " multi-tvar atomic") `Quick
        test_multi_tvar_atomic;
      Alcotest.test_case (S.name ^ " nested flattens") `Quick
        test_nested_flattens;
      Alcotest.test_case (S.name ^ " write after read") `Quick
        test_write_after_read_same_tvar;
      Alcotest.test_case (S.name ^ " many tvars") `Quick test_many_tvars_one_txn;
      Alcotest.test_case (S.name ^ " heterogeneous types") `Quick
        test_different_types;
      Alcotest.test_case (S.name ^ " stats") `Quick test_stats_count_commits;
      Alcotest.test_case (S.name ^ " last_restarts") `Quick
        test_last_restarts_zero_uncontended;
      Alcotest.test_case (S.name ^ " result value") `Quick test_result_value;
    ]
end

(* ---- central-clock discipline (§3.3 / §4.1) ---- *)

let clock_discipline_case (module S : Stm_intf.STM) =
  let test () =
    S.reset_stats ();
    let x = S.tvar 0 in
    for _ = 1 to 20 do
      S.atomic (fun tx -> S.write tx x (S.read tx x + 1))
    done;
    for _ = 1 to 20 do
      ignore (S.atomic ~read_only:true (fun tx -> S.read tx x))
    done;
    let ops = S.clock_ops () in
    (match S.name with
    | "2PLSF" | "2PLSF-WB" | "2PLSF-WBD" | "2PL-RW" | "2PL-RW-Dist" | "TLRW" ->
        (* no conflicts happened, so no central-clock traffic at all *)
        check Alcotest.int (S.name ^ " clock untouched") 0 ops
    | "TL2" | "TinySTM" | "OREC-Z" ->
        (* exactly one increment per write transaction, none for reads *)
        check Alcotest.int (S.name ^ " one per write txn") 20 ops
    | "2PL-WaitDie" | "2PL-WoundWait" ->
        (* one per transaction, read-only included *)
        check Alcotest.int (S.name ^ " one per txn") 40 ops
    | "OFWF" ->
        (* one per combiner batch; single-threaded = one per write txn *)
        check Alcotest.int (S.name ^ " one per batch") 20 ops
    | other -> Alcotest.failf "unclassified STM %s" other)
  in
  Alcotest.test_case (S.name ^ " clock discipline") `Quick test

(* ---- 2PLSF-specific ---- *)

module P = Twoplsf.Stm

let test_irrevocable_ro () =
  let x = P.tvar 5 in
  let v = P.atomic_irrevocable_ro (fun tx -> P.read tx x) in
  check Alcotest.int "value" 5 v;
  check Alcotest.int "no restarts" 0 (P.last_restarts ());
  (* Announcement cleared after commit. *)
  let t = P.lock_table () in
  check Alcotest.int "announce cleared" 0
    (Twoplsf.Rwl_sf.announced t (Util.Tid.get ()))

let test_irrevocable_write () =
  let x = P.tvar 0 in
  P.atomic_irrevocable (fun tx -> P.write tx x 33);
  check Alcotest.int "committed" 33 (P.atomic (fun tx -> P.read tx x));
  (* Zero mutex released: a second irrevocable transaction proceeds. *)
  P.atomic_irrevocable (fun tx -> P.write tx x 34);
  check Alcotest.int "second" 34 (P.atomic (fun tx -> P.read tx x))

let test_irrevocable_write_exception_releases_mutex () =
  let x = P.tvar 0 in
  (try P.atomic_irrevocable (fun _ -> failwith "boom") with Failure _ -> ());
  (* Mutex must be free or this blocks forever. *)
  P.atomic_irrevocable (fun tx -> P.write tx x 1);
  check Alcotest.int "after exception" 1 (P.atomic (fun tx -> P.read tx x))

let test_irrevocable_nested_rejected () =
  Alcotest.check_raises "nested irrevocable"
    (Invalid_argument "atomic_irrevocable: already in a transaction")
    (fun () ->
      P.atomic (fun _ -> P.atomic_irrevocable (fun _ -> ())))

let test_restart_histogram_uncontended () =
  P.reset_stats ();
  let x = P.tvar 0 in
  for _ = 1 to 10 do
    P.atomic (fun tx -> P.write tx x (P.read tx x + 1))
  done;
  let h = P.restart_histogram () in
  check Alcotest.int "all in bucket 0" (P.commits ()) h.(0);
  Array.iteri (fun i c -> if i > 0 && c <> 0 then Alcotest.fail "restarts") h

let test_configure_after_build_fails () =
  ignore (P.lock_table ());
  Alcotest.check_raises "too late"
    (Failure "Twoplsf.Stm.configure: lock table already built") (fun () ->
      P.configure ~num_locks:1024 ())

let battery_of (module S : Stm_intf.STM) =
  let module B = Battery (S) in
  (S.name, B.cases)

let () =
  ignore (Util.Tid.register ());
  let batteries = List.map battery_of Baselines.Registry.all in
  Alcotest.run "stm"
    (batteries
    @ [
        ( "clock discipline",
          List.map clock_discipline_case Baselines.Registry.all );
      ]
    @ [
        ( "2PLSF extras",
          [
            Alcotest.test_case "irrevocable read-only" `Quick
              test_irrevocable_ro;
            Alcotest.test_case "irrevocable write" `Quick test_irrevocable_write;
            Alcotest.test_case "irrevocable write exn releases mutex" `Quick
              test_irrevocable_write_exception_releases_mutex;
            Alcotest.test_case "nested irrevocable rejected" `Quick
              test_irrevocable_nested_rejected;
            Alcotest.test_case "restart histogram" `Quick
              test_restart_histogram_uncontended;
            Alcotest.test_case "configure after build" `Quick
              test_configure_after_build_fails;
          ] );
      ])
