(* White-box tests for the baseline STM substrate: the heterogeneous
   write-set (redo/undo log) and the ownership-record table — plus
   exception-injection property tests: a transaction body that raises at a
   random point must leave no trace, under every STM. *)

let check = Alcotest.check

(* ---- Wset ---- *)

let test_wset_redo_add_find () =
  let w = Baselines.Wset.create () in
  let a = Baselines.Tvar.make 1 and b = Baselines.Tvar.make "x" in
  check Alcotest.bool "empty" true (Baselines.Wset.is_empty w);
  check (Alcotest.option Alcotest.int) "miss" None (Baselines.Wset.find w a);
  Baselines.Wset.add w a 10;
  Baselines.Wset.add w b "y";
  check (Alcotest.option Alcotest.int) "hit int" (Some 10)
    (Baselines.Wset.find w a);
  check (Alcotest.option Alcotest.string) "hit string" (Some "y")
    (Baselines.Wset.find w b);
  Baselines.Wset.add w a 11;
  check (Alcotest.option Alcotest.int) "overwrite" (Some 11)
    (Baselines.Wset.find w a);
  check Alcotest.int "no duplicate entry" 2 (Baselines.Wset.length w)

let test_wset_apply () =
  let w = Baselines.Wset.create () in
  let a = Baselines.Tvar.make 1 and b = Baselines.Tvar.make 2 in
  Baselines.Wset.add w a 10;
  Baselines.Wset.add w b 20;
  check Alcotest.int "not yet" 1 a.Baselines.Tvar.v;
  Baselines.Wset.apply w;
  check Alcotest.int "a written" 10 a.Baselines.Tvar.v;
  check Alcotest.int "b written" 20 b.Baselines.Tvar.v

let test_wset_undo_rollback () =
  let w = Baselines.Wset.create () in
  let a = Baselines.Tvar.make 1 in
  Baselines.Wset.log_old_once w a a.Baselines.Tvar.v;
  a.Baselines.Tvar.v <- 99;
  Baselines.Wset.log_old_once w a a.Baselines.Tvar.v (* must NOT re-log 99 *);
  a.Baselines.Tvar.v <- 100;
  Baselines.Wset.rollback w;
  check Alcotest.int "restored to first image" 1 a.Baselines.Tvar.v

let test_wset_clear () =
  let w = Baselines.Wset.create () in
  let a = Baselines.Tvar.make 1 in
  Baselines.Wset.add w a 2;
  Baselines.Wset.clear w;
  check Alcotest.bool "empty" true (Baselines.Wset.is_empty w);
  check (Alcotest.option Alcotest.int) "bloom reset works" None
    (Baselines.Wset.find w a)

let test_wset_many_entries () =
  (* Exceed the 63-bit bloom: every lookup must still be exact. *)
  let w = Baselines.Wset.create () in
  let tvs = Array.init 200 (fun i -> Baselines.Tvar.make i) in
  Array.iteri (fun i tv -> Baselines.Wset.add w tv (i * 2)) tvs;
  Array.iteri
    (fun i tv ->
      check (Alcotest.option Alcotest.int) "exact" (Some (i * 2))
        (Baselines.Wset.find w tv))
    tvs;
  let ids = ref [] in
  Baselines.Wset.iter_ids w (fun id -> ids := id :: !ids);
  check Alcotest.int "iter_ids count" 200 (List.length !ids)

let qcheck_wset_model =
  QCheck.Test.make ~name:"wset redo log vs assoc model" ~count:200
    QCheck.(list (pair (int_range 0 20) small_int))
    (fun ops ->
      let tvs = Array.init 21 (fun i -> Baselines.Tvar.make (-i)) in
      let w = Baselines.Wset.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Baselines.Wset.add w tvs.(k) v;
          Hashtbl.replace model k v)
        ops;
      Array.for_all
        (fun i ->
          Baselines.Wset.find w tvs.(i) = Hashtbl.find_opt model i)
        (Array.init 21 (fun i -> i)))

(* ---- Orec ---- *)

let test_orec_lock_cycle () =
  let o = Baselines.Orec.create ~num_orecs:64 in
  let i = Baselines.Orec.index o 123 in
  let w = Baselines.Orec.get o i in
  check Alcotest.bool "initially unlocked" false (Baselines.Orec.is_locked w);
  check Alcotest.int "version 0" 0 (Baselines.Orec.version w);
  (match Baselines.Orec.try_lock o ~tid:5 i with
  | Some 0 -> ()
  | Some v -> Alcotest.failf "old version %d" v
  | None -> Alcotest.fail "lock failed");
  let w = Baselines.Orec.get o i in
  check Alcotest.bool "locked" true (Baselines.Orec.is_locked w);
  check Alcotest.int "owner" 5 (Baselines.Orec.owner w);
  check (Alcotest.option Alcotest.int) "second lock fails" None
    (Baselines.Orec.try_lock o ~tid:6 i);
  Baselines.Orec.unlock_to o i ~version:7;
  let w = Baselines.Orec.get o i in
  check Alcotest.bool "unlocked" false (Baselines.Orec.is_locked w);
  check Alcotest.int "new version" 7 (Baselines.Orec.version w)

let test_orec_index_masks () =
  let o = Baselines.Orec.create ~num_orecs:64 in
  check Alcotest.int "wrap" (Baselines.Orec.index o 0) (Baselines.Orec.index o 64)

(* ---- exception injection, per STM ---- *)

exception Injected

module Inject (S : Stm_intf.STM) = struct
  (* Apply a batch of writes, possibly raising midway; the tvars must
     afterwards reflect either none of the batch (raise) or all of it. *)
  let qcheck =
    QCheck.Test.make
      ~name:(S.name ^ " exception injection leaves no trace")
      ~count:60
      QCheck.(pair (list_of_size Gen.(int_range 1 12) (int_range 0 7)) (int_range 0 12))
      (fun (writes, raise_at) ->
        let tvs = Array.init 8 (fun i -> S.tvar i) in
        let snapshot () =
          S.atomic ~read_only:true (fun tx ->
              Array.map (fun tv -> S.read tx tv) tvs)
        in
        let before = snapshot () in
        let raised = ref false in
        (try
           S.atomic (fun tx ->
               List.iteri
                 (fun i k ->
                   if i = raise_at then raise Injected;
                   S.write tx tvs.(k) (S.read tx tvs.(k) + 100))
                 writes;
               if List.length writes = raise_at then raise Injected)
         with Injected -> raised := true);
        let after = snapshot () in
        if !raised then after = before
        else
          (* committed: each write bumped its tvar by 100 *)
          let expect = Array.copy before in
          List.iter (fun k -> expect.(k) <- expect.(k) + 100) writes;
          after = expect)
end

let injection_tests =
  List.map
    (fun (module S : Stm_intf.STM) ->
      let module I = Inject (S) in
      QCheck_alcotest.to_alcotest I.qcheck)
    Baselines.Registry.all

let () =
  ignore (Util.Tid.register ());
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "baseline_internals"
    [
      ( "wset",
        [
          Alcotest.test_case "redo add/find" `Quick test_wset_redo_add_find;
          Alcotest.test_case "apply" `Quick test_wset_apply;
          Alcotest.test_case "undo rollback logs once" `Quick
            test_wset_undo_rollback;
          Alcotest.test_case "clear" `Quick test_wset_clear;
          Alcotest.test_case "many entries (bloom overflow)" `Quick
            test_wset_many_entries;
          q qcheck_wset_model;
        ] );
      ( "orec",
        [
          Alcotest.test_case "lock cycle" `Quick test_orec_lock_cycle;
          Alcotest.test_case "index masks" `Quick test_orec_index_masks;
        ] );
      ("exception injection", injection_tests);
    ]
