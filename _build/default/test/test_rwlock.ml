(* Tests for the lock substrate: spinlock, ticket lock, seqlock, the three
   trylock reader-writer locks (2PL-RW, 2PL-RW-Dist, TLRW) and the flat
   combiner. *)

let check = Alcotest.check

(* ---- Spinlock / Ticket lock ---- *)

let test_spinlock_mutual_exclusion () =
  let l = Rwlock.Spinlock.create () in
  let counter = ref 0 in
  let results =
    Harness.Exec.run_each ~threads:4 (fun _ ->
        for _ = 1 to 1_000 do
          Rwlock.Spinlock.with_lock l (fun () -> incr counter)
        done)
  in
  ignore results;
  check Alcotest.int "no lost updates" 4_000 !counter

let test_spinlock_trylock () =
  let l = Rwlock.Spinlock.create () in
  check Alcotest.bool "first" true (Rwlock.Spinlock.try_lock l);
  check Alcotest.bool "second" false (Rwlock.Spinlock.try_lock l);
  Rwlock.Spinlock.unlock l;
  check Alcotest.bool "after unlock" true (Rwlock.Spinlock.try_lock l)

let test_spinlock_exception_releases () =
  let l = Rwlock.Spinlock.create () in
  (try Rwlock.Spinlock.with_lock l (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.bool "released" true (Rwlock.Spinlock.try_lock l)

let test_ticket_mutual_exclusion () =
  let l = Rwlock.Ticket_lock.create () in
  let counter = ref 0 in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun _ ->
         for _ = 1 to 1_000 do
           Rwlock.Ticket_lock.with_lock l (fun () -> incr counter)
         done));
  check Alcotest.int "no lost updates" 4_000 !counter

let test_ticket_trylock () =
  let l = Rwlock.Ticket_lock.create () in
  check Alcotest.bool "uncontended" true (Rwlock.Ticket_lock.try_lock l);
  check Alcotest.bool "held" false (Rwlock.Ticket_lock.try_lock l);
  Rwlock.Ticket_lock.unlock l;
  check Alcotest.bool "released" true (Rwlock.Ticket_lock.try_lock l)

(* ---- Seqlock ---- *)

let test_seqlock_read_validate () =
  let s = Rwlock.Seqlock.create () in
  let snap = Rwlock.Seqlock.read_begin s in
  check Alcotest.bool "valid before write" true
    (Rwlock.Seqlock.read_validate s snap);
  Rwlock.Seqlock.write_lock s;
  Rwlock.Seqlock.write_unlock s;
  check Alcotest.bool "invalid after write" false
    (Rwlock.Seqlock.read_validate s snap)

let test_seqlock_sequence_parity () =
  let s = Rwlock.Seqlock.create () in
  check Alcotest.int "initially even" 0 (Rwlock.Seqlock.sequence s);
  Rwlock.Seqlock.write_lock s;
  check Alcotest.int "odd while held" 1 (Rwlock.Seqlock.sequence s land 1);
  Rwlock.Seqlock.write_unlock s;
  check Alcotest.int "even after" 0 (Rwlock.Seqlock.sequence s land 1)

let test_seqlock_try_write () =
  let s = Rwlock.Seqlock.create () in
  check Alcotest.bool "first" true (Rwlock.Seqlock.try_write_lock s);
  check Alcotest.bool "second" false (Rwlock.Seqlock.try_write_lock s);
  Rwlock.Seqlock.write_unlock s

(* ---- Read_indicator ---- *)

let test_ri_arrive_depart () =
  let ri = Rwlock.Read_indicator.create ~num_locks:128 in
  let tid = Util.Tid.register () in
  check Alcotest.bool "initially clear" false
    (Rwlock.Read_indicator.holds ri ~tid 5);
  Rwlock.Read_indicator.arrive ri ~tid 5;
  check Alcotest.bool "set" true (Rwlock.Read_indicator.holds ri ~tid 5);
  check Alcotest.bool "other lock clear" false
    (Rwlock.Read_indicator.holds ri ~tid 6);
  Rwlock.Read_indicator.arrive ri ~tid 5 (* idempotent *);
  Rwlock.Read_indicator.depart ri ~tid 5;
  check Alcotest.bool "cleared" false (Rwlock.Read_indicator.holds ri ~tid 5);
  Rwlock.Read_indicator.depart ri ~tid 5 (* idempotent *);
  check Alcotest.bool "still clear" false
    (Rwlock.Read_indicator.holds ri ~tid 5)

let test_ri_is_empty_excludes_self () =
  let ri = Rwlock.Read_indicator.create ~num_locks:64 in
  let tid = Util.Tid.register () in
  Rwlock.Read_indicator.arrive ri ~tid 3;
  check Alcotest.bool "empty excluding self" true
    (Rwlock.Read_indicator.is_empty ri ~self:tid 3);
  check Alcotest.bool "not empty for others" false
    (Rwlock.Read_indicator.is_empty ri ~self:(tid + 1) 3);
  Rwlock.Read_indicator.depart ri ~tid 3

let test_ri_same_word_isolation () =
  (* Locks 0..31 share a word per thread; bits must not interfere. *)
  let ri = Rwlock.Read_indicator.create ~num_locks:64 in
  let tid = Util.Tid.register () in
  for w = 0 to 31 do
    Rwlock.Read_indicator.arrive ri ~tid w
  done;
  for w = 0 to 31 do
    check Alcotest.bool "all set" true (Rwlock.Read_indicator.holds ri ~tid w)
  done;
  Rwlock.Read_indicator.depart ri ~tid 17;
  check Alcotest.bool "17 clear" false (Rwlock.Read_indicator.holds ri ~tid 17);
  for w = 0 to 31 do
    if w <> 17 then
      check Alcotest.bool "others survive" true
        (Rwlock.Read_indicator.holds ri ~tid w)
  done;
  for w = 0 to 31 do
    Rwlock.Read_indicator.depart ri ~tid w
  done

let test_ri_iter_readers () =
  let ri = Rwlock.Read_indicator.create ~num_locks:64 in
  let tids = Harness.Exec.run_each ~threads:3 (fun _ ->
      let tid = Util.Tid.get () in
      Rwlock.Read_indicator.arrive ri ~tid 9;
      tid)
  in
  let seen = ref [] in
  Rwlock.Read_indicator.iter_readers ri ~self:(-1) 9 (fun t -> seen := t :: !seen);
  check Alcotest.int "three readers" 3 (List.length !seen);
  List.iter
    (fun t ->
      check Alcotest.bool "reported" true (List.mem t !seen))
    tids

let qcheck_ri_model =
  (* Random arrive/depart sequences vs a model set of (tid, lock) pairs:
     holds/is_empty must agree with the model at every step. *)
  QCheck.Test.make ~name:"read-indicator vs model" ~count:150
    QCheck.(
      list_of_size Gen.(int_range 1 60)
        (triple bool (int_range 0 3) (int_range 0 63)))
    (fun steps ->
      let ri = Rwlock.Read_indicator.create ~num_locks:64 in
      let model = Hashtbl.create 32 in
      List.for_all
        (fun (arrive, tid, w) ->
          if arrive then begin
            Rwlock.Read_indicator.arrive ri ~tid w;
            Hashtbl.replace model (tid, w) ()
          end
          else begin
            Rwlock.Read_indicator.depart ri ~tid w;
            Hashtbl.remove model (tid, w)
          end;
          Rwlock.Read_indicator.holds ri ~tid w = Hashtbl.mem model (tid, w)
          && Rwlock.Read_indicator.is_empty ri ~self:tid w
             = not
                 (List.exists
                    (fun t -> t <> tid && Hashtbl.mem model (t, w))
                    [ 0; 1; 2; 3 ]))
        steps)

(* ---- trylock reader-writer locks, shared battery ---- *)

module Trylock_battery (L : Rwlock.Trylock_rw.S) = struct
  let t0 () = L.create ~num_locks:64

  let test_read_read () =
    let l = t0 () in
    check Alcotest.bool "r1" true (L.try_read_lock l ~tid:1 7);
    check Alcotest.bool "r2 shares" true (L.try_read_lock l ~tid:2 7);
    L.read_unlock l ~tid:1 7;
    L.read_unlock l ~tid:2 7

  let test_write_excludes_write () =
    let l = t0 () in
    check Alcotest.bool "w1" true (L.try_write_lock l ~tid:1 7);
    check Alcotest.bool "w2 fails" false (L.try_write_lock l ~tid:2 7);
    L.write_unlock l ~tid:1 7;
    check Alcotest.bool "w2 after release" true (L.try_write_lock l ~tid:2 7);
    L.write_unlock l ~tid:2 7

  let test_write_excludes_read () =
    let l = t0 () in
    check Alcotest.bool "w" true (L.try_write_lock l ~tid:1 7);
    check Alcotest.bool "r fails" false (L.try_read_lock l ~tid:2 7);
    L.write_unlock l ~tid:1 7;
    check Alcotest.bool "r after release" true (L.try_read_lock l ~tid:2 7);
    L.read_unlock l ~tid:2 7

  let test_read_blocks_other_writer () =
    let l = t0 () in
    check Alcotest.bool "r" true (L.try_read_lock l ~tid:1 7);
    check Alcotest.bool "w fails" false (L.try_write_lock l ~tid:2 7);
    L.read_unlock l ~tid:1 7;
    check Alcotest.bool "w after release" true (L.try_write_lock l ~tid:2 7);
    L.write_unlock l ~tid:2 7

  let test_upgrade () =
    let l = t0 () in
    check Alcotest.bool "r" true (L.try_read_lock l ~tid:1 7);
    check Alcotest.bool "upgrade" true (L.try_write_lock l ~tid:1 7);
    check Alcotest.bool "other writer fails" false (L.try_write_lock l ~tid:2 7);
    check Alcotest.bool "other reader fails" false (L.try_read_lock l ~tid:2 7);
    L.read_unlock l ~tid:1 7;
    L.write_unlock l ~tid:1 7;
    check Alcotest.bool "free again" true (L.try_write_lock l ~tid:2 7);
    L.write_unlock l ~tid:2 7

  let test_upgrade_blocked_by_reader () =
    let l = t0 () in
    check Alcotest.bool "r1" true (L.try_read_lock l ~tid:1 7);
    check Alcotest.bool "r2" true (L.try_read_lock l ~tid:2 7);
    check Alcotest.bool "upgrade blocked" false (L.try_write_lock l ~tid:1 7);
    L.read_unlock l ~tid:1 7;
    L.read_unlock l ~tid:2 7

  let test_reentrant () =
    let l = t0 () in
    check Alcotest.bool "r" true (L.try_read_lock l ~tid:1 7);
    check Alcotest.bool "r again" true (L.try_read_lock l ~tid:1 7);
    check Alcotest.bool "w" true (L.try_write_lock l ~tid:1 7);
    check Alcotest.bool "w again" true (L.try_write_lock l ~tid:1 7);
    L.read_unlock l ~tid:1 7;
    L.write_unlock l ~tid:1 7

  let test_independent_locks () =
    let l = t0 () in
    check Alcotest.bool "w on 3" true (L.try_write_lock l ~tid:1 3);
    check Alcotest.bool "w on 4 by other" true (L.try_write_lock l ~tid:2 4);
    check Alcotest.bool "r on 5" true (L.try_read_lock l ~tid:3 5);
    L.write_unlock l ~tid:1 3;
    L.write_unlock l ~tid:2 4;
    L.read_unlock l ~tid:3 5

  let test_holds () =
    let l = t0 () in
    check Alcotest.bool "no read" false (L.holds_read l ~tid:1 7);
    check Alcotest.bool "no write" false (L.holds_write l ~tid:1 7);
    ignore (L.try_read_lock l ~tid:1 7);
    check Alcotest.bool "read held" true (L.holds_read l ~tid:1 7);
    ignore (L.try_write_lock l ~tid:1 7);
    check Alcotest.bool "write held" true (L.holds_write l ~tid:1 7);
    L.read_unlock l ~tid:1 7;
    L.write_unlock l ~tid:1 7;
    check Alcotest.bool "write released" false (L.holds_write l ~tid:1 7)

  let test_concurrent_counter () =
    (* Mutual exclusion under real concurrency: writers protect a plain
       counter; the total must be exact. *)
    let l = t0 () in
    let counter = ref 0 in
    ignore
      (Harness.Exec.run_each ~threads:4 (fun _ ->
           let tid = Util.Tid.get () in
           let n = ref 0 in
           while !n < 500 do
             if L.try_write_lock l ~tid 7 then begin
               incr counter;
               incr n;
               L.write_unlock l ~tid 7
             end
             else Util.Backoff.yield ()
           done));
    check Alcotest.int "exact count" 2_000 !counter

  let cases =
    [
      Alcotest.test_case (L.name ^ " read/read share") `Quick test_read_read;
      Alcotest.test_case (L.name ^ " write/write exclude") `Quick
        test_write_excludes_write;
      Alcotest.test_case (L.name ^ " write blocks read") `Quick
        test_write_excludes_read;
      Alcotest.test_case (L.name ^ " read blocks writer") `Quick
        test_read_blocks_other_writer;
      Alcotest.test_case (L.name ^ " upgrade") `Quick test_upgrade;
      Alcotest.test_case (L.name ^ " upgrade blocked by reader") `Quick
        test_upgrade_blocked_by_reader;
      Alcotest.test_case (L.name ^ " reentrant") `Quick test_reentrant;
      Alcotest.test_case (L.name ^ " independent locks") `Quick
        test_independent_locks;
      Alcotest.test_case (L.name ^ " holds_*") `Quick test_holds;
      Alcotest.test_case (L.name ^ " concurrent counter") `Quick
        test_concurrent_counter;
    ]
end

module B_single = Trylock_battery (Rwlock.Rwl_single)
module B_dist = Trylock_battery (Rwlock.Rwl_dist)
module B_counter = Trylock_battery (Rwlock.Rwl_counter)

(* ---- MCS lock ---- *)

let test_mcs_mutual_exclusion () =
  let l = Rwlock.Mcs_lock.create () in
  let counter = ref 0 in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun _ ->
         for _ = 1 to 1_000 do
           Rwlock.Mcs_lock.with_lock l (fun () -> incr counter)
         done));
  check Alcotest.int "no lost updates" 4_000 !counter

let test_mcs_trylock () =
  let l = Rwlock.Mcs_lock.create () in
  check Alcotest.bool "uncontended" true (Rwlock.Mcs_lock.try_lock l);
  check Alcotest.bool "held" false (Rwlock.Mcs_lock.try_lock l);
  Rwlock.Mcs_lock.unlock l;
  check Alcotest.bool "released" true (Rwlock.Mcs_lock.try_lock l);
  Rwlock.Mcs_lock.unlock l

let test_mcs_fifo_handoff () =
  (* The holder sleeps; two waiters enqueue in a known order (the second
     starts only after the first has announced it is about to enqueue,
     plus a generous separation for scheduler noise); FIFO handoff must
     serve them in that order. *)
  let l = Rwlock.Mcs_lock.create () in
  let order = ref [] in
  let order_lock = Rwlock.Spinlock.create () in
  let w1_enqueueing = Atomic.make false in
  Rwlock.Mcs_lock.lock l;
  let d1 =
    Domain.spawn (fun () ->
        Atomic.set w1_enqueueing true;
        Rwlock.Mcs_lock.lock l;
        Rwlock.Spinlock.with_lock order_lock (fun () -> order := 1 :: !order);
        Rwlock.Mcs_lock.unlock l)
  in
  let d2 =
    Domain.spawn (fun () ->
        let b = Util.Backoff.create () in
        while not (Atomic.get w1_enqueueing) do
          Util.Backoff.once b
        done;
        Unix.sleepf 0.2;
        Rwlock.Mcs_lock.lock l;
        Rwlock.Spinlock.with_lock order_lock (fun () -> order := 2 :: !order);
        Rwlock.Mcs_lock.unlock l)
  in
  Unix.sleepf 0.4 (* both are queued now *);
  Rwlock.Mcs_lock.unlock l;
  Domain.join d1;
  Domain.join d2;
  check (Alcotest.list Alcotest.int) "fifo order" [ 2; 1 ] !order

(* §2.3 demonstrated: 2PL over starvation-free mutexes still deadlocks (or
   with trylock, live-locks), while 2PLSF's tryOrWaitLock completes.  Two
   threads take two locks in opposite orders with MCS [try_lock] and give
   up after a bounded number of attempts; under the same schedule-free
   setup 2PLSF finishes every transaction. *)
let test_sf_locks_are_not_enough () =
  let a = Rwlock.Mcs_lock.create () and b = Rwlock.Mcs_lock.create () in
  let give_ups = Atomic.make 0 in
  let attempts_per_txn = 50 in
  ignore
    (Harness.Exec.run_each ~threads:2 (fun i ->
         let first, second = if i = 0 then (a, b) else (b, a) in
         for _ = 1 to 100 do
           let committed = ref false in
           let tries = ref 0 in
           while (not !committed) && !tries < attempts_per_txn do
             incr tries;
             if Rwlock.Mcs_lock.try_lock first then begin
               if Rwlock.Mcs_lock.try_lock second then begin
                 committed := true;
                 Rwlock.Mcs_lock.unlock second
               end;
               Rwlock.Mcs_lock.unlock first
             end
           done;
           if not !committed then Atomic.incr give_ups
         done));
  (* The interesting observation is not an exact count (scheduling
     dependent) but that trylock-based 2PL *can* fail transactions no
     matter how starvation-free the mutex is, while 2PLSF cannot. *)
  let x = Twoplsf.Stm.tvar 0 and y = Twoplsf.Stm.tvar 0 in
  ignore
    (Harness.Exec.run_each ~threads:2 (fun i ->
         for _ = 1 to 100 do
           Twoplsf.Stm.atomic (fun tx ->
               if i = 0 then begin
                 Twoplsf.Stm.write tx x (Twoplsf.Stm.read tx x + 1);
                 Twoplsf.Stm.write tx y (Twoplsf.Stm.read tx y + 1)
               end
               else begin
                 Twoplsf.Stm.write tx y (Twoplsf.Stm.read tx y + 1);
                 Twoplsf.Stm.write tx x (Twoplsf.Stm.read tx x + 1)
               end)
         done));
  check Alcotest.int "2PLSF commits all 200" 200
    (Twoplsf.Stm.atomic (fun tx -> Twoplsf.Stm.read tx x));
  ignore (Atomic.get give_ups)

(* ---- Flat combiner ---- *)

let test_fc_single_thread () =
  let fc = Rwlock.Flat_combiner.create () in
  let tid = Util.Tid.register () in
  let r = Rwlock.Flat_combiner.execute fc ~tid (fun () -> 41 + 1) in
  check Alcotest.int "result" 42 r

let test_fc_exception_propagates () =
  let fc = Rwlock.Flat_combiner.create () in
  let tid = Util.Tid.register () in
  Alcotest.check_raises "exn" (Failure "boom") (fun () ->
      ignore (Rwlock.Flat_combiner.execute fc ~tid (fun () -> failwith "boom")));
  (* The combiner must survive a raising request. *)
  let r = Rwlock.Flat_combiner.execute fc ~tid (fun () -> 7) in
  check Alcotest.int "still works" 7 r

let test_fc_concurrent_sum () =
  let fc = Rwlock.Flat_combiner.create () in
  let total = ref 0 in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun _ ->
         let tid = Util.Tid.get () in
         for _ = 1 to 500 do
           ignore
             (Rwlock.Flat_combiner.execute fc ~tid (fun () ->
                  total := !total + 1))
         done));
  check Alcotest.int "all executed exactly once" 2_000 !total

let test_fc_batch_hooks () =
  let starts = ref 0 and ends = ref 0 in
  let fc =
    Rwlock.Flat_combiner.create
      ~on_batch_start:(fun () -> incr starts)
      ~on_batch_end:(fun () -> incr ends)
      ()
  in
  let tid = Util.Tid.register () in
  ignore (Rwlock.Flat_combiner.execute fc ~tid (fun () -> ()));
  check Alcotest.bool "hooks ran" true (!starts >= 1 && !starts = !ends)

let () =
  Alcotest.run "rwlock"
    [
      ( "spinlock",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_spinlock_mutual_exclusion;
          Alcotest.test_case "trylock" `Quick test_spinlock_trylock;
          Alcotest.test_case "exception releases" `Quick
            test_spinlock_exception_releases;
        ] );
      ( "ticket",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_ticket_mutual_exclusion;
          Alcotest.test_case "trylock" `Quick test_ticket_trylock;
        ] );
      ( "seqlock",
        [
          Alcotest.test_case "read validate" `Quick test_seqlock_read_validate;
          Alcotest.test_case "sequence parity" `Quick
            test_seqlock_sequence_parity;
          Alcotest.test_case "try write" `Quick test_seqlock_try_write;
        ] );
      ( "read-indicator",
        [
          Alcotest.test_case "arrive/depart" `Quick test_ri_arrive_depart;
          Alcotest.test_case "is_empty excludes self" `Quick
            test_ri_is_empty_excludes_self;
          Alcotest.test_case "same-word isolation" `Quick
            test_ri_same_word_isolation;
          Alcotest.test_case "iter readers" `Quick test_ri_iter_readers;
          QCheck_alcotest.to_alcotest qcheck_ri_model;
        ] );
      ( "mcs",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_mcs_mutual_exclusion;
          Alcotest.test_case "trylock" `Quick test_mcs_trylock;
          Alcotest.test_case "fifo handoff" `Quick test_mcs_fifo_handoff;
          Alcotest.test_case "sf locks are not enough (2.3)" `Quick
            test_sf_locks_are_not_enough;
        ] );
      ("2PL-RW lock", B_single.cases);
      ("2PL-RW-Dist lock", B_dist.cases);
      ("TLRW lock", B_counter.cases);
      ( "flat-combiner",
        [
          Alcotest.test_case "single thread" `Quick test_fc_single_thread;
          Alcotest.test_case "exception propagates" `Quick
            test_fc_exception_propagates;
          Alcotest.test_case "concurrent sum" `Quick test_fc_concurrent_sum;
          Alcotest.test_case "batch hooks" `Quick test_fc_batch_hooks;
        ] );
    ]
