(* Correctness of the five transactional data structures, functorized over
   the STM so one battery runs under all eleven concurrency controls:
   deterministic unit tests plus a qcheck model test against Stdlib.Map. *)

let check = Alcotest.check

module IntMap = Map.Make (Int)

type ops = {
  sname : string;
  put : int -> int -> bool;
  get : int -> int option;
  remove : int -> bool;
  update : int -> (int -> int) -> bool;
  size : unit -> int;
  to_list : unit -> (int * int) list;
}

module Makers (S : Stm_intf.STM) = struct
  module V = struct
    type t = int
  end

  module Ll = Structures.Linked_list.Make (S) (V)
  module Hm = Structures.Hash_map.Make (S) (V)
  module Sk = Structures.Skiplist.Make (S) (V)
  module Zt = Structures.Ziptree.Make (S) (V)
  module Rv = Structures.Ravl.Make (S) (V)

  let ll () =
    let t = Ll.create () in
    { sname = "linked-list"; put = Ll.put t; get = Ll.get t;
      remove = Ll.remove t; update = Ll.update t;
      size = (fun () -> Ll.size t); to_list = (fun () -> Ll.to_list t) }

  let hm () =
    let t = Hm.create ~buckets:16 () in
    { sname = "hash-map"; put = Hm.put t; get = Hm.get t;
      remove = Hm.remove t; update = Hm.update t;
      size = (fun () -> Hm.size t); to_list = (fun () -> Hm.to_list t) }

  let sk () =
    let t = Sk.create ~max_level:8 () in
    { sname = "skip-list"; put = Sk.put t; get = Sk.get t;
      remove = Sk.remove t; update = Sk.update t;
      size = (fun () -> Sk.size t); to_list = (fun () -> Sk.to_list t) }

  let zt () =
    let t = Zt.create () in
    { sname = "zip-tree"; put = Zt.put t; get = Zt.get t;
      remove = Zt.remove t; update = Zt.update t;
      size = (fun () -> Zt.size t); to_list = (fun () -> Zt.to_list t) }

  let rv () =
    let t = Rv.create () in
    { sname = "ravl-tree"; put = Rv.put t; get = Rv.get t;
      remove = Rv.remove t; update = Rv.update t;
      size = (fun () -> Rv.size t); to_list = (fun () -> Rv.to_list t) }

  let all = [ ll; hm; sk; zt; rv ]
end

let unit_battery stm_name (mk : unit -> ops) =
  let name s = Printf.sprintf "%s/%s %s" stm_name (mk ()).sname s in
  let t_empty () =
    let o = mk () in
    check (Alcotest.option Alcotest.int) "get absent" None (o.get 5);
    check Alcotest.bool "remove absent" false (o.remove 5);
    check Alcotest.int "size" 0 (o.size ());
    check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "to_list"
      [] (o.to_list ())
  in
  let t_put_get () =
    let o = mk () in
    check Alcotest.bool "new key" true (o.put 3 30);
    check (Alcotest.option Alcotest.int) "found" (Some 30) (o.get 3);
    check Alcotest.bool "existing key" false (o.put 3 31);
    check (Alcotest.option Alcotest.int) "overwritten" (Some 31) (o.get 3)
  in
  let t_remove () =
    let o = mk () in
    ignore (o.put 1 10);
    ignore (o.put 2 20);
    check Alcotest.bool "removed" true (o.remove 1);
    check (Alcotest.option Alcotest.int) "gone" None (o.get 1);
    check (Alcotest.option Alcotest.int) "other survives" (Some 20) (o.get 2);
    check Alcotest.bool "again" false (o.remove 1)
  in
  let t_update () =
    let o = mk () in
    ignore (o.put 7 1);
    check Alcotest.bool "update hit" true (o.update 7 (fun v -> v + 100));
    check (Alcotest.option Alcotest.int) "updated" (Some 101) (o.get 7);
    check Alcotest.bool "update miss" false (o.update 8 (fun v -> v))
  in
  let t_ordered () =
    let o = mk () in
    List.iter (fun k -> ignore (o.put k (k * 10))) [ 5; 1; 9; 3; 7 ];
    check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "sorted"
      [ (1, 10); (3, 30); (5, 50); (7, 70); (9, 90) ]
      (o.to_list ());
    check Alcotest.int "size" 5 (o.size ())
  in
  let t_extreme_keys () =
    (* Negative and near-extreme keys must work (the skip-list head
       sentinel reserves only min_int itself). *)
    let o = mk () in
    let keys = [ -1_000_000; -1; 0; 1; max_int - 1; min_int + 1 ] in
    List.iter (fun k -> ignore (o.put k k)) keys;
    List.iter
      (fun k ->
        check (Alcotest.option Alcotest.int) "extreme present" (Some k)
          (o.get k))
      keys;
    check
      (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
      "sorted extremes"
      (List.map (fun k -> (k, k)) (List.sort compare keys))
      (o.to_list ())
  in
  let t_ascending_descending () =
    let o = mk () in
    for k = 0 to 63 do
      ignore (o.put k k)
    done;
    for k = 63 downto 0 do
      check (Alcotest.option Alcotest.int) "present" (Some k) (o.get k)
    done;
    for k = 0 to 63 do
      if k land 1 = 0 then ignore (o.remove k)
    done;
    check Alcotest.int "half left" 32 (o.size ());
    for k = 0 to 63 do
      check (Alcotest.option Alcotest.int) "parity"
        (if k land 1 = 1 then Some k else None)
        (o.get k)
    done
  in
  [
    Alcotest.test_case (name "empty") `Quick t_empty;
    Alcotest.test_case (name "put/get") `Quick t_put_get;
    Alcotest.test_case (name "remove") `Quick t_remove;
    Alcotest.test_case (name "update") `Quick t_update;
    Alcotest.test_case (name "ordered to_list") `Quick t_ordered;
    Alcotest.test_case (name "extreme keys") `Quick t_extreme_keys;
    Alcotest.test_case (name "asc/desc sweep") `Quick t_ascending_descending;
  ]

(* qcheck: random op sequences vs Stdlib.Map. *)
type mop = Put of int * int | Del of int | Get of int | Upd of int

let mop_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Put (k, v)) (int_range 0 31) (int_range 0 999));
        (3, map (fun k -> Del k) (int_range 0 31));
        (2, map (fun k -> Get k) (int_range 0 31));
        (1, map (fun k -> Upd k) (int_range 0 31));
      ])

let mop_print = function
  | Put (k, v) -> Printf.sprintf "Put(%d,%d)" k v
  | Del k -> Printf.sprintf "Del %d" k
  | Get k -> Printf.sprintf "Get %d" k
  | Upd k -> Printf.sprintf "Upd %d" k

let mop_arb =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map mop_print l))
    QCheck.Gen.(list_size (int_range 0 120) mop_gen)

let model_test stm_name (mk : unit -> ops) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s/%s vs model" stm_name (mk ()).sname)
    ~count:40 mop_arb
    (fun opl ->
      let o = mk () in
      let model = ref IntMap.empty in
      List.for_all
        (fun op ->
          match op with
          | Put (k, v) ->
              let expect_new = not (IntMap.mem k !model) in
              model := IntMap.add k v !model;
              o.put k v = expect_new
          | Del k ->
              let expect = IntMap.mem k !model in
              model := IntMap.remove k !model;
              o.remove k = expect
          | Get k -> o.get k = IntMap.find_opt k !model
          | Upd k ->
              let expect = IntMap.mem k !model in
              (match IntMap.find_opt k !model with
              | Some v -> model := IntMap.add k (v + 1) !model
              | None -> ());
              o.update k (fun v -> v + 1) = expect)
        opl
      && o.to_list () = IntMap.bindings !model)

(* Structure-specific invariants hold through random churn. *)
module ZipCheck = struct
  module Zt = Structures.Ziptree.Make (Twoplsf.Stm) (struct type t = int end)

  let test () =
    let t = Zt.create () in
    let rng = Util.Sprng.create 123 in
    for _ = 1 to 2_000 do
      let k = Util.Sprng.int rng 256 in
      if Util.Sprng.bool rng then ignore (Zt.put t k k)
      else ignore (Zt.remove t k);
      ()
    done;
    check Alcotest.bool "rank + BST order" true (Zt.check_invariants t)

  let test_concurrent_churn () =
    let t = Zt.create () in
    ignore
      (Harness.Exec.run_each ~threads:4 (fun i ->
           let rng = Util.Sprng.create (200 + i) in
           for _ = 1 to 500 do
             let k = Util.Sprng.int rng 128 in
             if Util.Sprng.bool rng then ignore (Zt.put t k k)
             else ignore (Zt.remove t k)
           done));
    check Alcotest.bool "invariants after concurrent churn" true
      (Zt.check_invariants t)
end

module SkipCheck = struct
  module Sk = Structures.Skiplist.Make (Twoplsf.Stm) (struct type t = int end)

  let test () =
    let t = Sk.create ~max_level:8 () in
    let rng = Util.Sprng.create 321 in
    for _ = 1 to 2_000 do
      let k = Util.Sprng.int rng 256 in
      if Util.Sprng.bool rng then ignore (Sk.put t k k)
      else ignore (Sk.remove t k)
    done;
    check Alcotest.bool "levels + towers" true (Sk.check_invariants t)

  let test_concurrent_churn () =
    let t = Sk.create ~max_level:8 () in
    ignore
      (Harness.Exec.run_each ~threads:4 (fun i ->
           let rng = Util.Sprng.create (300 + i) in
           for _ = 1 to 500 do
             let k = Util.Sprng.int rng 128 in
             if Util.Sprng.bool rng then ignore (Sk.put t k k)
             else ignore (Sk.remove t k)
           done));
    check Alcotest.bool "invariants after concurrent churn" true
      (Sk.check_invariants t)
end

(* Ravl-specific: the AVL invariant holds through random churn. *)
module RavlCheck = struct
  module Rv = Structures.Ravl.Make (Twoplsf.Stm) (struct type t = int end)

  let test () =
    let t = Rv.create () in
    let rng = Util.Sprng.create 99 in
    for _ = 1 to 2_000 do
      let k = Util.Sprng.int rng 256 in
      if Util.Sprng.bool rng then ignore (Rv.put t k k)
      else ignore (Rv.remove t k)
    done;
    check Alcotest.bool "balanced" true (Rv.check_balanced t)

  let test_sequential_insert () =
    let t = Rv.create () in
    for k = 0 to 511 do
      ignore (Rv.put t k k)
    done;
    check Alcotest.bool "balanced after ascending inserts" true
      (Rv.check_balanced t);
    check Alcotest.int "size" 512 (Rv.size t)
end

let suite_for (module S : Stm_intf.STM) =
  let module M = Makers (S) in
  let units = List.concat_map (unit_battery S.name) M.all in
  let models =
    List.map (fun mk -> QCheck_alcotest.to_alcotest (model_test S.name mk)) M.all
  in
  (S.name ^ " structures", units @ models)

let () =
  ignore (Util.Tid.register ());
  let suites = List.map suite_for Baselines.Registry.all in
  Alcotest.run "structures"
    (suites
    @ [
        ( "ravl invariant",
          [
            Alcotest.test_case "balanced under churn" `Quick RavlCheck.test;
            Alcotest.test_case "balanced ascending" `Quick
              RavlCheck.test_sequential_insert;
          ] );
        ( "ziptree invariant",
          [
            Alcotest.test_case "rank order under churn" `Quick ZipCheck.test;
            Alcotest.test_case "rank order, concurrent" `Quick
              ZipCheck.test_concurrent_churn;
          ] );
        ( "skiplist invariant",
          [
            Alcotest.test_case "towers under churn" `Quick SkipCheck.test;
            Alcotest.test_case "towers, concurrent" `Quick
              SkipCheck.test_concurrent_churn;
          ] );
      ])
