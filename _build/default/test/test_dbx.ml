(* Tests for the DBx1000/YCSB substrate: table + index, workload
   generator, and every row-level concurrency control (atomicity of tuple
   updates under real concurrency). *)

let check = Alcotest.check

(* ---- Table / index ---- *)

let test_table_lookup_all () =
  let t = Dbx.Table.create ~num_rows:1000 in
  for k = 0 to 999 do
    let rid = Dbx.Table.lookup t k in
    if rid < 0 || rid >= 1000 then Alcotest.failf "rid out of range: %d" rid;
    (* prefill pattern: first byte = rid land 0xFF and key = rid *)
    check Alcotest.int "payload matches row"
      (rid land 0xFF)
      (Char.code (Bytes.get (Dbx.Table.payload t rid) 0))
  done

let test_table_lookup_bijective () =
  let t = Dbx.Table.create ~num_rows:512 in
  let seen = Hashtbl.create 512 in
  for k = 0 to 511 do
    let rid = Dbx.Table.lookup t k in
    if Hashtbl.mem seen rid then Alcotest.failf "rid %d reused" rid;
    Hashtbl.add seen rid ()
  done

let test_table_missing_key () =
  let t = Dbx.Table.create ~num_rows:16 in
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Dbx.Table.lookup t 999))

let test_tuple_size () =
  let t = Dbx.Table.create ~num_rows:4 in
  check Alcotest.int "100 bytes" 100 (Bytes.length (Dbx.Table.payload t 0));
  check Alcotest.int "constant" 100 Dbx.Table.tuple_size

(* ---- YCSB generator ---- *)

let test_ycsb_txn_shape () =
  let g = Dbx.Ycsb.make_gen ~num_keys:10_000 ~theta:0.6 ~write_ratio:0.5 () in
  for _ = 1 to 200 do
    let txn = Dbx.Ycsb.next g in
    check Alcotest.int "16 accesses" Dbx.Ycsb.accesses_per_txn
      (Array.length txn.keys);
    Array.iter
      (fun k ->
        if k < 0 || k >= 10_000 then Alcotest.failf "key out of range: %d" k)
      txn.keys;
    (* keys distinct *)
    let sorted = Array.copy txn.keys in
    Array.sort compare sorted;
    for i = 1 to Array.length sorted - 1 do
      if sorted.(i) = sorted.(i - 1) then
        Alcotest.failf "duplicate key %d" sorted.(i)
    done
  done

let test_ycsb_write_ratio () =
  let g = Dbx.Ycsb.make_gen ~num_keys:1000 ~theta:0. ~write_ratio:0.5 () in
  let writes = ref 0 and total = ref 0 in
  for _ = 1 to 500 do
    let txn = Dbx.Ycsb.next g in
    Array.iter
      (fun op ->
        incr total;
        if op = Dbx.Ycsb.Write then incr writes)
      txn.ops
  done;
  let ratio = float_of_int !writes /. float_of_int !total in
  if ratio < 0.4 || ratio > 0.6 then Alcotest.failf "write ratio %f" ratio

let test_ycsb_contention_levels () =
  check (Alcotest.float 1e-9) "high" 0.9 (Dbx.Ycsb.contention_theta `High);
  check (Alcotest.float 1e-9) "medium" 0.6 (Dbx.Ycsb.contention_theta `Medium);
  check (Alcotest.float 1e-9) "low" 0. (Dbx.Ycsb.contention_theta `Low)

(* ---- concurrency controls ---- *)

(* write_work bumps bytes 0..7 together, so atomicity means: for every
   row, bytes 0..7 are all equal. *)
let assert_rows_consistent table =
  for rid = 0 to Dbx.Table.num_rows table - 1 do
    let p = Dbx.Table.payload table rid in
    let b0 = Bytes.get p 0 in
    for i = 1 to 7 do
      if Bytes.get p i <> b0 then
        Alcotest.failf "row %d torn at byte %d" rid i
    done
  done

let cc_single_thread (name, cc) =
  let test () =
    let (module C : Dbx.Cc_intf.CC) = cc in
    let table = Dbx.Table.create ~num_rows:256 in
    let state = C.create table in
    ignore (Util.Tid.register ());
    let tid = Util.Tid.get () in
    let g = Dbx.Ycsb.make_gen ~num_keys:256 ~theta:0. ~write_ratio:0.5 () in
    for _ = 1 to 100 do
      let aborts = C.execute state ~tid (Dbx.Ycsb.next g) in
      check Alcotest.int "no aborts single-threaded" 0 aborts
    done;
    assert_rows_consistent table
  in
  Alcotest.test_case (name ^ " single-thread") `Quick test

let cc_concurrent (name, cc) =
  let test () =
    let table = Dbx.Table.create ~num_rows:512 in
    let row =
      Dbx.Runner.run ~cc ~table ~theta:0.6 ~write_ratio:0.5 ~threads:4
        ~seconds:0.3
    in
    check Alcotest.string "cc name" name row.cc;
    if row.commits <= 0 then Alcotest.fail "no transactions committed";
    assert_rows_consistent table
  in
  Alcotest.test_case (name ^ " concurrent atomicity") `Quick test

let cc_high_contention (name, cc) =
  let test () =
    (* Tiny table + skew: conflicts on nearly every transaction. *)
    let table = Dbx.Table.create ~num_rows:64 in
    let row =
      Dbx.Runner.run ~cc ~table ~theta:0.9 ~write_ratio:0.5 ~threads:4
        ~seconds:0.3
    in
    if row.commits <= 0 then Alcotest.fail "no transactions committed";
    assert_rows_consistent table
  in
  Alcotest.test_case (name ^ " high contention") `Quick test

(* The generator never repeats a key inside a transaction, so drive the
   lock-upgrade (read→write) and write-then-read paths with hand-built
   transactions. *)
let cc_upgrade_paths (name, cc) =
  let test () =
    let (module C : Dbx.Cc_intf.CC) = cc in
    let table = Dbx.Table.create ~num_rows:32 in
    let state = C.create table in
    ignore (Util.Tid.register ());
    let tid = Util.Tid.get () in
    let txn ops keys = { Dbx.Ycsb.keys; ops } in
    (* read k then write k: shared → exclusive upgrade *)
    let t1 = txn [| Dbx.Ycsb.Read; Dbx.Ycsb.Write |] [| 5; 5 |] in
    check Alcotest.int "upgrade commits" 0 (C.execute state ~tid t1);
    (* write k then read k: read under own exclusive lock *)
    let t2 = txn [| Dbx.Ycsb.Write; Dbx.Ycsb.Read |] [| 7; 7 |] in
    check Alcotest.int "write-then-read commits" 0 (C.execute state ~tid t2);
    (* double write to the same key *)
    let t3 = txn [| Dbx.Ycsb.Write; Dbx.Ycsb.Write |] [| 9; 9 |] in
    check Alcotest.int "double write commits" 0 (C.execute state ~tid t3);
    assert_rows_consistent table;
    (* rows 5 and 7 were written once, row 9 twice *)
    check Alcotest.int "row 9 bumped twice"
      ((9 + 2) land 0xFF)
      (Char.code (Bytes.get (Dbx.Table.payload table (Dbx.Table.lookup table 9)) 0))
  in
  Alcotest.test_case (name ^ " upgrade paths") `Quick test

let () =
  ignore (Util.Tid.register ());
  Alcotest.run "dbx"
    [
      ( "table",
        [
          Alcotest.test_case "lookup all keys" `Quick test_table_lookup_all;
          Alcotest.test_case "lookup bijective" `Quick
            test_table_lookup_bijective;
          Alcotest.test_case "missing key" `Quick test_table_missing_key;
          Alcotest.test_case "tuple size" `Quick test_tuple_size;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "txn shape" `Quick test_ycsb_txn_shape;
          Alcotest.test_case "write ratio" `Quick test_ycsb_write_ratio;
          Alcotest.test_case "contention levels" `Quick
            test_ycsb_contention_levels;
        ] );
      ("cc single-thread", List.map cc_single_thread Dbx.Runner.ccs);
      ("cc upgrade paths", List.map cc_upgrade_paths Dbx.Runner.ccs);
      ("cc concurrent", List.map cc_concurrent Dbx.Runner.ccs);
      ("cc high contention", List.map cc_high_contention Dbx.Runner.ccs);
    ]
