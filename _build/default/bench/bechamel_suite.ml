(* Per-operation micro-latencies via Bechamel: one Test.make per figure,
   measuring the figure's characteristic operation single-threaded under
   2PLSF (and the figure's main optimistic contender where relevant).
   These complement the multi-thread series printed by Figures.* — they
   answer "what does one operation cost?" while the series answer "how
   does it scale?". *)

open Bechamel

module V = struct
  type t = unit
end

module Ravl_p = Structures.Ravl.Make (Twoplsf.Stm) (V)
module List_p = Structures.Linked_list.Make (Twoplsf.Stm) (V)
module Hash_p = Structures.Hash_map.Make (Twoplsf.Stm) (V)
module Skip_p = Structures.Skiplist.Make (Twoplsf.Stm) (V)
module Zip_p = Structures.Ziptree.Make (Twoplsf.Stm) (V)
module Ravl_tl2 = Structures.Ravl.Make (Baselines.Tl2) (V)

let prefill put n =
  for k = 0 to n - 1 do
    if k land 1 = 0 then ignore (put k ())
  done

let counter = ref 0

let next_key range =
  counter := (!counter + 7919) land max_int;
  !counter mod range

let tests () =
  ignore (Util.Tid.register ());
  let range = 4096 in
  let ravl = Ravl_p.create () in
  prefill (Ravl_p.put ravl) range;
  let ll = List_p.create () in
  prefill (List_p.put ll) 512;
  let hm = Hash_p.create ~buckets:1024 () in
  prefill (Hash_p.put hm) range;
  let sk = Skip_p.create () in
  prefill (Skip_p.put sk) range;
  let zt = Zip_p.create () in
  prefill (Zip_p.put zt) range;
  let rt = Ravl_tl2.create () in
  prefill (Ravl_tl2.put rt) range;
  let table = Dbx.Table.create ~num_rows:10_000 in
  let cc = Dbx.Cc_2plsf.create table in
  let tid = Util.Tid.get () in
  let gen = Dbx.Ycsb.make_gen ~num_keys:10_000 ~theta:0.6 ~write_ratio:0.5 () in
  let counters = Array.init 20 (fun _ -> Twoplsf.Stm.tvar 0) in
  [
    Test.make ~name:"fig2/ravl insert+remove (2PLSF)"
      (Staged.stage (fun () ->
           let k = next_key range in
           ignore (Ravl_p.put ravl k ());
           ignore (Ravl_p.remove ravl k)));
    Test.make ~name:"fig3/list lookup (2PLSF)"
      (Staged.stage (fun () -> ignore (List_p.get ll (next_key 512))));
    Test.make ~name:"fig4/hash insert+remove (2PLSF)"
      (Staged.stage (fun () ->
           let k = next_key range in
           ignore (Hash_p.put hm k ());
           ignore (Hash_p.remove hm k)));
    Test.make ~name:"fig5/skiplist lookup (2PLSF)"
      (Staged.stage (fun () -> ignore (Skip_p.get sk (next_key range))));
    Test.make ~name:"fig6/ziptree insert+remove (2PLSF)"
      (Staged.stage (fun () ->
           let k = next_key range in
           ignore (Zip_p.put zt k ());
           ignore (Zip_p.remove zt k)));
    Test.make ~name:"fig7/ravl lookup (2PLSF)"
      (Staged.stage (fun () -> ignore (Ravl_p.get ravl (next_key range))));
    Test.make ~name:"fig7/ravl lookup (TL2)"
      (Staged.stage (fun () -> ignore (Ravl_tl2.get rt (next_key range))));
    Test.make ~name:"fig8/ravl record update (2PLSF)"
      (Staged.stage (fun () ->
           ignore (Ravl_p.update ravl (next_key range) (fun () -> ()))));
    Test.make ~name:"fig10/pairwise txn 20 counters (2PLSF)"
      (Staged.stage (fun () ->
           Twoplsf.Stm.atomic (fun tx ->
               Array.iter
                 (fun c -> Twoplsf.Stm.write tx c (Twoplsf.Stm.read tx c + 1))
                 counters)));
    Test.make ~name:"fig11/ycsb txn 16 accesses (2PLSF cc)"
      (Staged.stage (fun () ->
           ignore (Dbx.Cc_2plsf.execute cc ~tid (Dbx.Ycsb.next gen))));
  ]

let run () =
  print_endline "\n=== Bechamel per-operation suite (single-threaded) ===";
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"per-op" (tests ()) in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some (ns :: _) -> Printf.printf "%-46s %12.0f ns/op\n%!" name ns
      | Some [] | None -> Printf.printf "%-46s %12s\n%!" name "n/a")
    (List.sort compare rows)
