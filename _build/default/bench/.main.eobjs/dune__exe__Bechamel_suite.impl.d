bench/bechamel_suite.ml: Analyze Array Baselines Bechamel Benchmark Dbx Hashtbl List Measure Printf Staged Structures Test Time Toolkit Twoplsf Util
