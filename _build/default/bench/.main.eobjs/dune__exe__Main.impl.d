bench/main.ml: Arg Bechamel_suite Figures Harness List Printf String Util
