bench/figures.ml: Array Baselines Dbx Harness List Printf Stdlib Stm_intf Twoplsf Util
