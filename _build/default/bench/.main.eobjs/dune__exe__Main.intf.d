bench/main.mli:
