examples/irrevocable.mli:
