examples/pairwise_latency.mli:
