examples/kv_store.ml: Array Atomic Harness Option Printf Structures Twoplsf Util
