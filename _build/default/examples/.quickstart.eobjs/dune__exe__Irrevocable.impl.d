examples/irrevocable.ml: Array Atomic Domain List Printf Twoplsf Util
