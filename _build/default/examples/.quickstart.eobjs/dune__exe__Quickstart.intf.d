examples/quickstart.mli:
