examples/pairwise_latency.ml: Array Baselines Harness List Printf Stm_intf Twoplsf Util
