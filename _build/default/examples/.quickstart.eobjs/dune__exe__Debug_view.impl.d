examples/debug_view.ml: Atomic Baselines Domain Printf Stm_intf Twoplsf Unix Util
