examples/debug_view.mli:
