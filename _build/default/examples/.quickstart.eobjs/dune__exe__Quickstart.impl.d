examples/quickstart.ml: Array Atomic Harness Printf Twoplsf Util
