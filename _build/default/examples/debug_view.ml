(* Debuggability (§2.7): because 2PLSF read-locks everything it reads, a
   transaction stopped at a breakpoint sees a *stable* view — every
   variable inspected so far keeps the value that was read, because any
   writer would need the write lock the stopped transaction still holds.
   Optimistic concurrency controls give the debugger no such guarantee:
   the data can change underneath the paused transaction.

   This program simulates the breakpoint with a sleep inside the
   transaction while a writer thread hammers the variable, and re-reads
   after "resuming":

     dune exec examples/debug_view.exe *)

let pause_seconds = 0.2

(* Returns (value at first read, value re-read after the pause). *)
let observe_under_writer (module S : Stm_intf.STM) =
  let x = S.tvar 0 in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        ignore (Util.Tid.register ());
        let n = ref 0 in
        while not (Atomic.get stop) do
          S.atomic (fun tx -> S.write tx x (S.read tx x + 1));
          incr n
        done;
        Util.Tid.release ();
        !n)
  in
  (* Let the writer get going. *)
  Unix.sleepf 0.05;
  let pair =
    S.atomic (fun tx ->
        let first = S.read tx x in
        (* ... debugger breakpoint: the developer inspects variables ... *)
        Unix.sleepf pause_seconds;
        let second = S.read tx x in
        (first, second))
  in
  Atomic.set stop true;
  let writes = Domain.join writer in
  (pair, writes)

let () =
  ignore (Util.Tid.register ());
  Printf.printf
    "A transaction reads x, pauses %.0f ms at a 'breakpoint' while another\n\
     thread keeps incrementing x, then reads x again:\n\n" (1000. *. pause_seconds);
  let (a, b), writes = observe_under_writer (module Twoplsf.Stm) in
  Printf.printf
    "  2PLSF       first read %d, after pause %d  (writer committed %d txns around the pause)\n%!"
    a b writes;
  let (c, d), writes' = observe_under_writer (module Baselines.Tictoc_stm) in
  Printf.printf
    "  TicToc-STM  first read %d, after pause %d  (writer committed %d txns around the pause)\n\n%!"
    c d writes';
  if a <> b then begin
    print_endline "unexpected: 2PLSF view changed under the breakpoint";
    exit 1
  end;
  if c = d then
    print_endline
      "note: TicToc happened to see a stable value this run (no writer\n\
       commit landed inside the pause window) — rerun to see it drift."
  else
    Printf.printf
      "2PLSF's pessimistic read locks froze the world for the debugger;\n\
       under TicToc the variable moved by %d while the transaction was\n\
       stopped — the §2.7 argument.\n" (d - c);
  print_endline "debug_view: OK"
