(* A transactional key-value store whose *index is inside the transaction*
   — the paper's headline DBMS use-case (§5): with 2PLSF the indexing data
   structure can be part of the transaction without wrecking scalability,
   so index and records are always mutually consistent.

   The store keeps a primary index (RAVL tree: user_id -> record) and a
   secondary index (hash map: group_id -> member count).  Every update
   touches both indexes in one transaction; auditors concurrently verify
   the cross-index invariant (group counters match the primary index
   contents) and never see them disagree.

     dune exec examples/kv_store.exe *)

module Stm = Twoplsf.Stm

type record = { name : string; group : int }

module Primary =
  Structures.Ravl.Make
    (Stm)
    (struct
      type t = record
    end)

module Groups =
  Structures.Hash_map.Make
    (Stm)
    (struct
      type t = int (* member count *)
    end)

let num_groups = 8

type store = { primary : Primary.t; groups : Groups.t }

let create_store () =
  { primary = Primary.create (); groups = Groups.create ~buckets:64 () }

(* Insert or move a user; both indexes change in one transaction. *)
let upsert store ~user ~name ~group =
  Stm.atomic (fun tx ->
      let bump g delta =
        let cur = Option.value ~default:0 (Groups.get_tx tx store.groups g) in
        ignore (Groups.put_tx tx store.groups g (cur + delta))
      in
      (match Primary.get_tx tx store.primary user with
      | Some old -> bump old.group (-1)
      | None -> ());
      ignore (Primary.put_tx tx store.primary user { name; group });
      bump group 1)

let delete store ~user =
  Stm.atomic (fun tx ->
      match Primary.get_tx tx store.primary user with
      | None -> false
      | Some old ->
          ignore (Primary.remove_tx tx store.primary user);
          let cur =
            Option.value ~default:0 (Groups.get_tx tx store.groups old.group)
          in
          ignore (Groups.put_tx tx store.groups old.group (cur - 1));
          true)

(* Cross-index audit, itself one transaction. *)
let audit store =
  Stm.atomic ~read_only:true (fun tx ->
      let counted = Array.make num_groups 0 in
      let rec walk g =
        if g < num_groups then begin
          (match Groups.get_tx tx store.groups g with
          | Some c -> counted.(g) <- c
          | None -> ());
          walk (g + 1)
        end
      in
      walk 0;
      (* Recount from the primary index via a full scan. *)
      let actual = Array.make num_groups 0 in
      let keys = ref [] in
      let count k r =
        actual.(r.group) <- actual.(r.group) + 1;
        keys := k :: !keys
      in
      let rec scan k =
        if k < 4096 then begin
          (match Primary.get_tx tx store.primary k with
          | Some r -> count k r
          | None -> ());
          scan (k + 1)
        end
      in
      scan 0;
      counted = actual)

let () =
  let store = create_store () in
  let audits_failed = Atomic.make 0 in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun worker ->
         let rng = Util.Sprng.create (7 + worker) in
         for i = 1 to 1_500 do
           let user = Util.Sprng.int rng 4096 in
           let group = Util.Sprng.int rng num_groups in
           if Util.Sprng.int rng 100 < 80 then
             upsert store ~user ~name:(Printf.sprintf "u%d" user) ~group
           else ignore (delete store ~user);
           if i mod 300 = 0 && not (audit store) then
             Atomic.incr audits_failed
         done));
  let consistent = audit store in
  Printf.printf "entries: %d\n" (Primary.size store.primary);
  Printf.printf "concurrent audits failed: %d\n" (Atomic.get audits_failed);
  Printf.printf "final cross-index consistency: %b\n" consistent;
  Printf.printf "commits: %d, conflict aborts: %d\n" (Stm.commits ())
    (Stm.aborts ());
  if (not consistent) || Atomic.get audits_failed > 0 then exit 1;
  print_endline "kv_store: OK"
