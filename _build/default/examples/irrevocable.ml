(* Irrevocability (§2.8): transactions that are guaranteed to never
   restart.

   A long read-only analytics scan runs against a stream of small writer
   transactions.  As a normal transaction the scan holds the lowest
   priority only after it has been wounded a few times; as an irrevocable
   read-only transaction it announces the reserved priority before
   starting and is *never* restarted.  An irrevocable write transaction
   additionally serializes through the zero-mutex.

     dune exec examples/irrevocable.exe *)

module Stm = Twoplsf.Stm

let cells = 256

let () =
  let data = Array.init cells (fun i -> Stm.tvar i) in
  let stop = Atomic.make false in
  let writers =
    List.init 2 (fun w ->
        Domain.spawn (fun () ->
            ignore (Util.Tid.register ());
            let rng = Util.Sprng.create (11 + w) in
            let n = ref 0 in
            while not (Atomic.get stop) do
              let i = Util.Sprng.int rng cells in
              Stm.atomic (fun tx ->
                  Stm.write tx data.(i) (Stm.read tx data.(i) + 1));
              incr n
            done;
            Util.Tid.release ();
            !n))
  in

  (* Long irrevocable scans: read every cell, twice, and verify both
     passes agree — a torn (restarted-and-not-noticed) scan would not. *)
  let scans = 200 in
  let restarted = ref 0 in
  for _ = 1 to scans do
    let consistent =
      Stm.atomic_irrevocable_ro (fun tx ->
          let first = Array.map (fun c -> Stm.read tx c) data in
          let second = Array.map (fun c -> Stm.read tx c) data in
          first = second)
    in
    if not consistent then failwith "torn scan";
    if Stm.last_restarts () > 0 then incr restarted
  done;
  Printf.printf "%d irrevocable scans, restarted: %d (guaranteed 0)\n%!" scans
    !restarted;

  (* Irrevocable writer: a schema-migration style sweep that must not be
     re-executed (imagine it fires webhooks). *)
  let side_effects = ref 0 in
  Stm.atomic_irrevocable (fun tx ->
      incr side_effects (* executed exactly once, never re-run *);
      Array.iter (fun c -> Stm.write tx c (Stm.read tx c * 2)) data);
  Printf.printf "irrevocable sweep executed %d time(s) (guaranteed 1)\n%!"
    !side_effects;

  Atomic.set stop true;
  let writes = List.fold_left (fun acc d -> acc + Domain.join d) 0 writers in
  Printf.printf "writer transactions committed meanwhile: %d\n" writes;
  if !restarted > 0 || !side_effects <> 1 then exit 1;
  print_endline "irrevocable: OK"
