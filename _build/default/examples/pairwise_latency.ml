(* Starvation-freedom made visible: the Figure 9 pair-wise conflict
   scenario, comparing 2PLSF's tail latency against TL2's.

   Two threads repeatedly increment the same 20 counters in opposite
   orders — every pair of transactions conflicts, yet one of each pair can
   always commit.  A starvation-free concurrency control bounds how long
   any single transaction can be postponed; an optimistic one can starve a
   transaction arbitrarily, which shows up as a heavy latency tail.

     dune exec examples/pairwise_latency.exe *)

let counters_per_pair = 20
let threads = 4
let seconds = 1.0

let run (module S : Stm_intf.STM) =
  let pairs = threads / 2 in
  let counters =
    Array.init (pairs * counters_per_pair) (fun _ -> S.tvar 0)
  in
  let lat = Harness.Latency.create ~threads in
  let worker i should_stop =
    let base = i / 2 * counters_per_pair in
    let ascending = i land 1 = 0 in
    let n = ref 0 in
    while not (should_stop ()) do
      let t0 = Util.Clock.now () in
      S.atomic (fun tx ->
          if ascending then
            for j = 0 to counters_per_pair - 1 do
              S.write tx counters.(base + j) (S.read tx counters.(base + j) + 1)
            done
          else
            for j = counters_per_pair - 1 downto 0 do
              S.write tx counters.(base + j) (S.read tx counters.(base + j) + 1)
            done);
      Harness.Latency.record lat i (Util.Clock.now () -. t0);
      incr n
    done;
    !n
  in
  let res = Harness.Exec.run_timed ~threads ~seconds worker in
  let ps = Harness.Latency.percentiles lat [ 50.; 90.; 99. ] in
  Printf.printf
    "%-8s  %9.0f txn/s   p50 %7.3f ms   p90 %7.3f ms   p99 %7.3f ms   max %8.3f ms\n%!"
    S.name res.throughput
    (1000. *. List.assoc 50. ps)
    (1000. *. List.assoc 90. ps)
    (1000. *. List.assoc 99. ps)
    (1000. *. Harness.Latency.max_latency lat)

let () =
  ignore (Util.Tid.register ());
  Printf.printf
    "Pair-wise conflicting counters (%d threads, %d counters/pair, %.1fs):\n%!"
    threads counters_per_pair seconds;
  run (module Twoplsf.Stm);
  run (module Baselines.Tl2);
  print_endline
    "\n2PLSF's bounded restarts keep the tail short; TL2's optimistic\n\
     retries let a transaction lose arbitrarily often (compare the max\n\
     column; on the paper's 64-thread box the gap is 1000x)."
