(* Quickstart: concurrent bank transfers with 2PLSF.

   Demonstrates the core API — [Stm.tvar], [Stm.atomic], [Stm.read],
   [Stm.write] — and the property that makes 2PL-family STMs pleasant to
   program against: transactions are opaque, so the "total money"
   invariant holds in *every* snapshot any transaction can observe, not
   just at quiescence.

     dune exec examples/quickstart.exe *)

module Stm = Twoplsf.Stm

let num_accounts = 16
let initial_balance = 1_000
let transfers_per_teller = 5_000
let tellers = 4

let () =
  let accounts = Array.init num_accounts (fun _ -> Stm.tvar initial_balance) in
  let total () =
    Stm.atomic ~read_only:true (fun tx ->
        Array.fold_left (fun acc a -> acc + Stm.read tx a) 0 accounts)
  in
  let expected = num_accounts * initial_balance in
  Printf.printf "initial total: %d\n%!" (total ());

  let audits_ok = Atomic.make true in
  let results =
    Harness.Exec.run_each ~threads:tellers (fun teller ->
        let rng = Util.Sprng.create (42 + teller) in
        for _ = 1 to transfers_per_teller do
          let src = Util.Sprng.int rng num_accounts in
          let dst = (src + 1 + Util.Sprng.int rng (num_accounts - 1))
                    mod num_accounts in
          let amount = Util.Sprng.int rng 50 in
          (* The transfer: two writes, atomically. *)
          Stm.atomic (fun tx ->
              Stm.write tx accounts.(src) (Stm.read tx accounts.(src) - amount);
              Stm.write tx accounts.(dst) (Stm.read tx accounts.(dst) + amount));
          (* Concurrent audit: opacity means no audit can ever observe a
             partially applied transfer. *)
          if total () <> expected then Atomic.set audits_ok false
        done;
        teller)
  in
  ignore results;
  Printf.printf "final total:   %d (expected %d)\n" (total ()) expected;
  Printf.printf "all concurrent audits consistent: %b\n" (Atomic.get audits_ok);
  Printf.printf "transactions committed: %d, conflict aborts: %d\n"
    (Stm.commits ()) (Stm.aborts ());
  if total () <> expected || not (Atomic.get audits_ok) then exit 1;
  print_endline "quickstart: OK"
