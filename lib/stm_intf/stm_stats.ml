(* Each counter array is striped through Twoplsf_obs.Padded: one
   cache-line-wide slot per thread id, written only by its owner with a
   plain store.  The previous [int Atomic.t array] representation boxed
   every counter, so neighbouring threads' counters could land on the same
   cache line and false-share; the flat padded stripes also make the
   layout identical to the telemetry subsystem's counters. *)

module Padded = Twoplsf_obs.Padded

type t = { commits : Padded.t; aborts : Padded.t; clock : Padded.t }

let create () =
  { commits = Padded.create (); aborts = Padded.create (); clock = Padded.create () }

let commit t ~tid = Padded.incr t.commits ~tid
let abort t ~tid = Padded.incr t.aborts ~tid
let clock_op t ~tid = Padded.incr t.clock ~tid
let commits t = Padded.sum t.commits
let aborts t = Padded.sum t.aborts
let clock_ops t = Padded.sum t.clock

let reset t =
  Padded.reset t.commits;
  Padded.reset t.aborts;
  Padded.reset t.clock
