(** The unified word-based STM signature.

    Every concurrency control in this repository — the paper's 2PLSF and
    all the baselines it is evaluated against (TL2, TinySTM/LSA, TLRW,
    OREC, OneFile, the 2PL no-wait variants of Figure 2, classic 2PL
    wait-or-die) — implements this one signature.  The transactional data
    structures of the evaluation (linked list, hash set, skip list, zip
    tree, relaxed AVL tree) are functors over it, so a single data
    structure definition runs under eleven concurrency controls. *)

module Stats = Stm_stats
(** Re-export so dependants reach the stats type through the library's main
    module ([Stm_intf.Stats]). *)

exception
  Starved of {
    stm : string;  (** which concurrency control gave up *)
    restarts : int;  (** attempts consumed before giving up *)
    abort_reasons : (string * int) list;
        (** the STM's telemetry abort-reason snapshot at exhaustion time
            ([[]] when telemetry is off or the STM has no scope) *)
  }
(** Raised by {!STM.atomic} instead of retrying forever when the global
    {!max_restarts} bound is hit.  Every implementation raises it only
    after the failed attempt has fully rolled back and released its locks
    (and cleared any priority announcement), so a [Starved] escape leaves
    the lock table clean. *)

let max_restarts = ref 0
(** Global per-transaction restart bound; 0 (the default) means unbounded
    retry.  Set once at start-up (bench [--max-restarts]); checked by
    every STM's restart path. *)

let hit_restart_bound restarts =
  let m = !max_restarts in
  m > 0 && restarts >= m

let starved ~stm ~restarts reasons =
  raise (Starved { stm; restarts; abort_reasons = reasons () })

module type STM = sig
  val name : string
  (** Short label used in benchmark output ("2PLSF", "TL2", ...). *)

  type tx
  (** An in-flight transaction attempt, one per thread. *)

  type 'a tvar
  (** A transactional variable: the OCaml analogue of a transactionally
      accessed memory word (see DESIGN.md §3.2 on the address → id
      substitution). *)

  val tvar : 'a -> 'a tvar
  (** Allocate a fresh tvar with the given initial value.  Safe to call
      inside or outside transactions; a tvar published by a transaction
      becomes visible atomically with the publishing write. *)

  val read : tx -> 'a tvar -> 'a
  (** Transactional read ([stmRead]).  May internally restart the enclosing
      {!atomic} by raising the STM's private restart exception: never catch
      arbitrary exceptions around it inside a transaction. *)

  val write : tx -> 'a tvar -> 'a -> unit
  (** Transactional write ([stmWrite]); same restart caveat as {!read}. *)

  val atomic : ?read_only:bool -> (tx -> 'a) -> 'a
  (** Run a transaction to commit, retrying on conflicts.  [read_only] is a
      hint that lets optimistic STMs skip write-set machinery; it is sound
      only if the body performs no {!write}.  Nested calls flatten into the
      outermost transaction.  Exceptions raised by the body abort the
      transaction (all writes rolled back, all locks released) and
      propagate.  When {!max_restarts} is positive and an attempt would
      exceed it, raises {!Starved} (after full rollback) instead of
      retrying. *)

  val commits : unit -> int
  (** Committed transactions since the last {!reset_stats}. *)

  val aborts : unit -> int
  (** Aborted attempts since the last {!reset_stats}. *)

  val clock_ops : unit -> int
  (** Increments of the STM's central clock since the last {!reset_stats}
      — the contention §3.3 of the paper identifies as the scalability
      limiter of TL2/TinySTM (one per write transaction) and of 2PL
      wait-or-die (one per transaction), versus 2PLSF's one per
      *conflict*.  0 for STMs with no central clock. *)

  val reset_stats : unit -> unit

  val last_restarts : unit -> int
  (** Number of times the calling thread's most recently completed
      top-level transaction was restarted before committing.  Used by the
      starvation-freedom tests (2PLSF bounds this by [N_threads - 1]). *)

  val leaked_locks : unit -> int
  (** Post-run lock sweep: how many of this STM's locks (or ownership
      records) are still held.  Zero in quiescence — after every
      transaction has committed, aborted, or escaped with an exception —
      on a correct implementation; the chaos harness asserts exactly
      that.  Racy while transactions are in flight.  0 when the STM's
      lock table has not been built yet. *)
end
