(** The unified word-based STM signature.

    Every concurrency control in this repository — the paper's 2PLSF and
    all the baselines it is evaluated against (TL2, TinySTM/LSA, TLRW,
    OREC, OneFile, the 2PL no-wait variants of Figure 2, classic 2PL
    wait-or-die) — implements this one signature.  The transactional data
    structures of the evaluation (linked list, hash set, skip list, zip
    tree, relaxed AVL tree) are functors over it, so a single data
    structure definition runs under eleven concurrency controls. *)

module Stats = Stm_stats
(** Re-export so dependants reach the stats type through the library's main
    module ([Stm_intf.Stats]). *)

exception
  Starved of {
    stm : string;  (** which concurrency control gave up *)
    restarts : int;  (** attempts consumed before giving up *)
    abort_reasons : (string * int) list;
        (** the STM's telemetry abort-reason snapshot at exhaustion time
            ([[]] when telemetry is off or the STM has no scope) *)
  }
(** Raised by {!STM.atomic} instead of retrying forever when the
    {!policy}'s [max_restarts] bound is hit and the serial-irrevocable
    fallback is off.  Every implementation raises it only after the failed
    attempt has fully rolled back and released its locks (and cleared any
    priority announcement), so a [Starved] escape leaves the lock table
    clean. *)

exception
  Deadline_exceeded of {
    stm : string;  (** which concurrency control gave up *)
    restarts : int;  (** attempts consumed before the deadline fired *)
    elapsed_ns : int;  (** time since the transaction first began *)
  }
(** Raised by {!STM.atomic} when the {!policy}'s per-transaction
    [deadline_ns] budget is blown and the serial-irrevocable fallback is
    off.  Same cleanliness contract as {!Starved}: full rollback, all
    locks released, any priority announcement cleared. *)

exception
  Degraded_read_only of {
    engine : string;  (** which engine flipped read-only ("DBx-2PLSF", ...) *)
    reason : string;  (** the first log-device failure, verbatim *)
  }
(** Raised instead of committing when the engine's write-ahead log
    device has failed permanently (DESIGN.md §16): the write transaction
    has been fully rolled back (or was refused before acquiring locks),
    every lock is released, and the engine keeps serving reads.  Writes
    keep raising this until the operator replaces the device and
    restarts; reads never do. *)

type cm_choice =
  | Cm_paper  (** each STM's native inter-attempt behaviour (the default) *)
  | Cm_backoff  (** capped exponential backoff with per-thread jitter *)
  | Cm_hybrid
      (** backoff for the first [hybrid_restarts] restarts, then the
          native (priority-wait) behaviour *)

type policy = {
  max_restarts : int;
      (** per-transaction restart bound; 0 (default) = unbounded retry *)
  deadline_ns : int;
      (** per-transaction completion budget; 0 (default) = none.  A
          transaction that blows it restarts once with a fresh budget and
          then either escalates to the serial-irrevocable path (when
          [fallback]) or raises {!Deadline_exceeded}. *)
  cm : cm_choice;  (** inter-attempt contention-management policy *)
  hybrid_restarts : int;  (** [Cm_hybrid] switchover point *)
  backoff_seed : int;  (** base seed of the per-thread backoff jitter *)
  admission : bool;  (** AIMD admission gate on transaction entry *)
  fallback : bool;
      (** escalate exhausted/late transactions through the
          serial-irrevocable slow path instead of raising *)
}
(** The overload-protection policy, one immutable record for all knobs
    that every STM's restart path consults (DESIGN.md §11).  Replaces the
    bare mutable [max_restarts] ref of earlier revisions: a single ref to
    an immutable record is read with one load and can never be observed
    half-updated from another domain. *)

let default_policy =
  {
    max_restarts = 0;
    deadline_ns = 0;
    cm = Cm_paper;
    hybrid_restarts = 8;
    backoff_seed = 0xB0FF;
    admission = false;
    fallback = false;
  }

let policy = ref default_policy

(* Number of harness worker cohorts currently running — maintained by
   Harness.Exec so {!install_policy} can assert (in debug builds) that the
   policy is never swapped while transactions may be consulting it. *)
let active_workers = Atomic.make 0
let workers_started () = Atomic.incr active_workers
let workers_finished () = Atomic.decr active_workers

let install_policy p =
  assert (Atomic.get active_workers = 0);
  policy := p

let current_policy () = !policy

let hit_restart_bound restarts =
  let m = !policy.max_restarts in
  m > 0 && restarts >= m

let starved ~stm ~restarts reasons =
  raise (Starved { stm; restarts; abort_reasons = reasons () })

let deadline_exceeded ~stm ~restarts ~elapsed_ns =
  raise (Deadline_exceeded { stm; restarts; elapsed_ns })

module type STM = sig
  val name : string
  (** Short label used in benchmark output ("2PLSF", "TL2", ...). *)

  type tx
  (** An in-flight transaction attempt, one per thread. *)

  type 'a tvar
  (** A transactional variable: the OCaml analogue of a transactionally
      accessed memory word (see DESIGN.md §3.2 on the address → id
      substitution). *)

  val tvar : 'a -> 'a tvar
  (** Allocate a fresh tvar with the given initial value.  Safe to call
      inside or outside transactions; a tvar published by a transaction
      becomes visible atomically with the publishing write. *)

  val read : tx -> 'a tvar -> 'a
  (** Transactional read ([stmRead]).  May internally restart the enclosing
      {!atomic} by raising the STM's private restart exception: never catch
      arbitrary exceptions around it inside a transaction. *)

  val write : tx -> 'a tvar -> 'a -> unit
  (** Transactional write ([stmWrite]); same restart caveat as {!read}. *)

  val atomic : ?read_only:bool -> (tx -> 'a) -> 'a
  (** Run a transaction to commit, retrying on conflicts.  [read_only] is a
      hint that lets optimistic STMs skip write-set machinery; it is sound
      only if the body performs no {!write}.  Nested calls flatten into the
      outermost transaction.  Exceptions raised by the body abort the
      transaction (all writes rolled back, all locks released) and
      propagate.  When the installed {!policy} bounds restarts or time and
      the fallback is off, raises {!Starved} / {!Deadline_exceeded} (after
      full rollback) instead of retrying; with the fallback on the
      transaction escalates to the serial-irrevocable slow path and still
      commits. *)

  val commits : unit -> int
  (** Committed transactions since the last {!reset_stats}. *)

  val aborts : unit -> int
  (** Aborted attempts since the last {!reset_stats}. *)

  val clock_ops : unit -> int
  (** Increments of the STM's central clock since the last {!reset_stats}
      — the contention §3.3 of the paper identifies as the scalability
      limiter of TL2/TinySTM (one per write transaction) and of 2PL
      wait-or-die (one per transaction), versus 2PLSF's one per
      *conflict*.  0 for STMs with no central clock. *)

  val reset_stats : unit -> unit

  val last_restarts : unit -> int
  (** Number of times the calling thread's most recently completed
      top-level transaction was restarted before committing.  Used by the
      starvation-freedom tests (2PLSF bounds this by [N_threads - 1]). *)

  val leaked_locks : unit -> int
  (** Post-run lock sweep: how many of this STM's locks (or ownership
      records) are still held.  Zero in quiescence — after every
      transaction has committed, aborted, or escaped with an exception —
      on a correct implementation; the chaos harness asserts exactly
      that.  Racy while transactions are in flight.  0 when the STM's
      lock table has not been built yet. *)
end
