(** Seeded fault injection (DESIGN.md §10).

    A per-thread, deterministic chaos layer: lock/STM/harness code is
    instrumented with sync points ({!point}, {!spurious}, {!inject_exn})
    that consult a per-thread SplitMix PRNG and — with configured
    probabilities — inject bounded delays, OS yields, spurious lock
    acquisition failures, user-visible exceptions, and multi-millisecond
    victim stalls (preemption emulation, the delay-at-arbitrary-points
    adversary of "Lock-Free Locks Revisited").

    Disabled cost is one load and a predicted branch: every call site is
    written [if !Chaos.on then Chaos.point S] — the same discipline as
    [Obs.Telemetry.on].

    Determinism: thread [tid]'s decision stream is a pure function of
    [(seed, tid)] and the sequence of sites that thread visits.  Under a
    fixed workload interleaving this makes failures reproducible by seed;
    the per-thread decision {!trace} lets tests assert schedule equality
    across runs. *)

type site =
  | Read_lock_arrive  (** before a reader sets its read-indicator bit *)
  | Read_lock_check  (** between arrive and the write-lock check *)
  | Read_lock_wait  (** each read-lock wait-loop iteration *)
  | Write_lock_acquire  (** entry to the write-lock slow path *)
  | Write_lock_wait  (** each write-lock wait-loop iteration *)
  | Clock_announce  (** between conflict-clock draw and announcement *)
  | Conflictor_wait  (** each wait-for-conflictor iteration *)
  | Pre_commit  (** after the body, before commit processing *)
  | Mid_rollback  (** between undo-log restore and lock release *)
  | Mid_writeback  (** redo-log install, all write locks held *)
  | Txn_body  (** inside a transaction body (user-code faults) *)
  | Dbx_txn  (** DBx runner, between transactions *)
  | Harness_op  (** harness driver, between operations *)

val site_name : site -> string

exception Injected_fault of site
(** The stand-in for an arbitrary user exception escaping a transaction
    body.  Raised only by {!inject_exn}. *)

type config = {
  seed : int;  (** base seed; thread [tid] uses a [seed]/[tid] mix *)
  delay_ppm : int;  (** P(bounded spin delay) per point, in ppm *)
  delay_max_spins : int;  (** delay length is 1..this many relax spins *)
  yield_ppm : int;  (** P(OS yield) per point *)
  spurious_ppm : int;  (** P(forced acquisition failure) per {!spurious} *)
  exn_ppm : int;  (** P(raise {!Injected_fault}) per {!inject_exn} *)
  stall_ppm : int;  (** P(victim stall) per point *)
  stall_ms : float;  (** stall length (sleep, so the OS deschedules us) *)
  victim : int;  (** only this tid stalls; [-1] = any thread *)
}

val default : config
(** Seed 0xC4A05; all fault classes enabled at moderate rates (see
    DESIGN.md §10 for the values) — the configuration the bench soak and
    CI chaos-smoke run. *)

val on : bool ref
(** The single global on/off flag.  Flip via {!enable}/{!disable} (which
    also reset per-thread PRNGs); instrumentation sites read it raw. *)

val enable : ?config:config -> unit -> unit
(** Turn injection on.  Reseeds every per-thread PRNG from
    [config.seed], clears counters and traces.  Not meant to be toggled
    while worker domains are mid-transaction. *)

val disable : unit -> unit

val enabled : unit -> bool
val config : unit -> config
val seed : unit -> int

val point : site -> unit
(** Sync-point hook: may delay, yield, or stall the calling thread.
    Never raises and never alters control flow — safe to place inside
    critical sections (rollback, write-back) where an exception would
    corrupt protocol state. *)

val spurious : site -> bool
(** Should this lock acquisition spuriously fail?  Call sites translate
    [true] into their normal conflict path (return false / raise the
    protocol's restart), so the injection exercises exactly the abort
    machinery a real conflict would. *)

val inject_exn : site -> unit
(** Raise {!Injected_fault} with probability [exn_ppm].  Only called
    from transaction *bodies* (and other user-code positions) — never
    while protocol-internal invariants are suspended. *)

(** {2 Introspection} *)

val counts : unit -> (string * int) list
(** Injected-fault totals since {!enable}/{!reset_counts}, by class:
    [("delays", _); ("yields", _); ("stalls", _); ("spurious", _);
    ("exns", _)]. *)

val reset_counts : unit -> unit

val set_trace : int -> unit
(** Record the first [n] decisions of every thread (packed site/class
    codes).  For reproducibility tests; off by default. *)

val trace : unit -> int list
(** The calling thread's recorded decisions, oldest first. *)

val clear_trace : unit -> unit
