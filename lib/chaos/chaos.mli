(** Seeded fault injection (DESIGN.md §10) and the sync-point substrate
    for deterministic schedule exploration (DESIGN.md §14).

    A per-thread, deterministic chaos layer: lock/STM/harness code is
    instrumented with sync points ({!point}, {!spurious}, {!inject_exn})
    that — with configured probabilities — inject bounded delays, OS
    yields, spurious lock acquisition failures, user-visible exceptions,
    and multi-millisecond victim stalls (preemption emulation, the
    delay-at-arbitrary-points adversary of "Lock-Free Locks Revisited").

    The same sync points double as the context-switch vocabulary of the
    cooperative scheduler in [lib/sched]: when {!hook} is installed,
    every sync point first offers the scheduler a chance to park the
    calling thread and run another.

    Disabled cost is one load and a predicted branch: every call site is
    written [if !Chaos.on then Chaos.point S] — the same discipline as
    [Obs.Telemetry.on].

    Determinism: every fault decision is a stateless hash of
    [(seed, tid, site, step)] where [step] counts the calling thread's
    visits to that site since {!enable}.  A decision never depends on
    what happened at {e other} sites, so replaying a truncated or shrunk
    schedule perturbs fault decisions only at sites whose visit counts
    changed — the property that makes chaos-active replays bit-stable. *)

(** Stable sync-point identities.  Codes are the wire format of schedule
    traces ([test/schedules/*.json]) — append new sites at the end and
    never renumber. *)
module Site : sig
  type t =
    | Read_lock_arrive  (** before a reader sets its read-indicator bit *)
    | Read_lock_check  (** between arrive and the write-lock check *)
    | Read_lock_wait  (** each read-lock wait-loop iteration *)
    | Write_lock_acquire  (** entry to the write-lock slow path *)
    | Write_lock_wait  (** each write-lock wait-loop iteration *)
    | Clock_announce  (** between conflict-clock draw and announcement *)
    | Conflictor_wait  (** each wait-for-conflictor iteration *)
    | Pre_commit  (** after the body, before commit processing *)
    | Mid_rollback  (** between undo-log restore and lock release *)
    | Mid_writeback  (** redo-log install, all write locks held *)
    | Txn_body  (** inside a transaction body (user-code faults) *)
    | Dbx_txn  (** DBx runner, between transactions *)
    | Harness_op  (** harness driver, between operations *)
    | Orec_check
        (** ownership-record/value-consistency windows in optimistic
            read paths (TL2, TinySTM, TicToc): between the orec pre-load
            and the value fetch, and between the fetch and the re-check *)
    | Orec_lock
        (** immediately before an orec lock CAS (the check-then-lock
            TOCTOU window of encounter-time and commit-time locking) *)
    | Validate
        (** each read-set validation / snapshot-extension step, and each
            iteration of TicToc's bounded [stable_word] wait loop *)
    | Wound_check
        (** wound-wait acquire-loop iterations, immediately before the
            am-I-wounded check *)
    | Wal_append
        (** inside the WAL commit record build/publish, LSN drawn but
            record possibly not yet visible to the log writer *)
    | Wal_fsync  (** log-writer domain, immediately before fsync *)
    | Wal_checkpoint
        (** checkpoint writer, between image write and the atomic
            rename (a kill here leaves only the old checkpoint) *)
    | Commit_durable_pre
        (** commit window: write-locks held, before the WAL append *)
    | Commit_durable_mid
        (** commit window: WAL record published, locks not yet
            released *)
    | Commit_durable_post
        (** locks released, before the durability wait completes *)

  val code : t -> int
  (** Stable wire code, [0..count-1].  Never renumbered. *)

  val name : t -> string
  (** Stable kebab-case name, e.g. ["read-lock-wait"]. *)

  val of_code : int -> t
  (** Inverse of {!code}.  @raise Invalid_argument on unknown codes. *)

  val all : t list
  (** Every site, in code order. *)

  val count : int
end

type site = Site.t =
  | Read_lock_arrive
  | Read_lock_check
  | Read_lock_wait
  | Write_lock_acquire
  | Write_lock_wait
  | Clock_announce
  | Conflictor_wait
  | Pre_commit
  | Mid_rollback
  | Mid_writeback
  | Txn_body
  | Dbx_txn
  | Harness_op
  | Orec_check
  | Orec_lock
  | Validate
  | Wound_check
  | Wal_append
  | Wal_fsync
  | Wal_checkpoint
  | Commit_durable_pre
  | Commit_durable_mid
  | Commit_durable_post
(** Re-export so instrumentation sites keep writing
    [Chaos.point Chaos.Pre_commit] without opening {!Site}. *)

val site_code : site -> int
val site_name : site -> string

exception Injected_fault of site
(** The stand-in for an arbitrary user exception escaping a transaction
    body.  Raised only by {!inject_exn}. *)

type config = {
  seed : int;  (** base seed; every draw hashes [(seed, tid, site, step)] *)
  delay_ppm : int;  (** P(bounded spin delay) per point, in ppm *)
  delay_max_spins : int;  (** delay length is 1..this many relax spins *)
  yield_ppm : int;  (** P(OS yield) per point *)
  spurious_ppm : int;  (** P(forced acquisition failure) per {!spurious} *)
  exn_ppm : int;  (** P(raise {!Injected_fault}) per {!inject_exn} *)
  stall_ppm : int;  (** P(victim stall) per point *)
  stall_ms : float;  (** stall length (sleep, so the OS deschedules us) *)
  victim : int;  (** only this tid stalls; [-1] = any thread *)
}

val default : config
(** Seed 0xC4A05; all fault classes enabled at moderate rates (see
    DESIGN.md §10 for the values) — the configuration the bench soak and
    CI chaos-smoke run. *)

val quiet : config
(** {!default} with every fault class at probability zero.  Sync points
    still fire (and still drive the scheduler {!hook}) but never delay,
    yield, fail, or raise — the configuration deterministic exploration
    runs under unless faults are explicitly layered on. *)

val on : bool ref
(** The single global on/off flag.  Flip via {!enable}/{!disable};
    instrumentation sites read it raw. *)

val enable : ?config:config -> unit -> unit
(** Turn injection on.  Zeroes every per-(tid, site) step counter,
    clears counters and traces.  Not meant to be toggled while worker
    domains are mid-transaction. *)

val disable : unit -> unit

val enabled : unit -> bool
val config : unit -> config
val seed : unit -> int

val hook : (Site.t -> unit) option ref
(** Cooperative-scheduler hook.  When [Some f], every {!point},
    {!spurious}, and {!inject_exn} calls [f site] {e first} — before the
    fault draw — giving a central scheduler the chance to park the
    calling thread and schedule another.  The hook must not raise: it
    runs inside critical sections (rollback, write-back) where an
    exception would corrupt protocol state.  Install/clear only from
    [lib/sched] between worker cohorts. *)

val point : site -> unit
(** Sync-point hook: may delay, yield, or stall the calling thread.
    Never raises and never alters control flow — safe to place inside
    critical sections (rollback, write-back) where an exception would
    corrupt protocol state. *)

val spurious : site -> bool
(** Should this lock acquisition spuriously fail?  Call sites translate
    [true] into their normal conflict path (return false / raise the
    protocol's restart), so the injection exercises exactly the abort
    machinery a real conflict would. *)

val inject_exn : site -> unit
(** Raise {!Injected_fault} with probability [exn_ppm].  Only called
    from transaction *bodies* (and other user-code positions) — never
    while protocol-internal invariants are suspended. *)

(** {2 Process-abort injection (crash–recovery testing)} *)

val kill_exit_code : int
(** 137, i.e. 128+SIGKILL — what a crash-soak parent looks for. *)

val arm_kill : site:site -> after:int -> unit
(** Arm a one-shot process abort: the [after]-th process-wide arrival at
    [site] calls [Unix._exit kill_exit_code] — no at_exit handlers, no
    buffer flush, no domain teardown; the closest portable stand-in for
    SIGKILL mid-commit.  Fires even when the armed site's fault rates
    are zero; checked before the scheduler hook and the fault draw.
    Arm before starting the workload, not concurrently with it.
    @raise Invalid_argument if [after < 1]. *)

val disarm_kill : unit -> unit

(** {2 Introspection} *)

val counts : unit -> (string * int) list
(** Injected-fault totals since {!enable}/{!reset_counts}, by class:
    [("delays", _); ("yields", _); ("stalls", _); ("spurious", _);
    ("exns", _)]. *)

val reset_counts : unit -> unit

val set_trace : int -> unit
(** Record the first [n] decisions of every thread (packed site/class
    codes).  For reproducibility tests; off by default. *)

val trace : unit -> int list
(** The calling thread's recorded decisions, oldest first. *)

val clear_trace : unit -> unit
