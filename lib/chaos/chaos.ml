(* Seeded per-thread fault injector (DESIGN.md §10).

   Decision discipline: every hook draws exactly one PRNG number and
   classifies it against cumulative ppm thresholds; extra draws happen
   only inside a fired branch (delay length).  A thread's decision
   stream is therefore a pure function of (seed, tid, sites visited),
   which is what makes a failing schedule reproducible by seed. *)

type site =
  | Read_lock_arrive
  | Read_lock_check
  | Read_lock_wait
  | Write_lock_acquire
  | Write_lock_wait
  | Clock_announce
  | Conflictor_wait
  | Pre_commit
  | Mid_rollback
  | Mid_writeback
  | Txn_body
  | Dbx_txn
  | Harness_op

let site_code = function
  | Read_lock_arrive -> 0
  | Read_lock_check -> 1
  | Read_lock_wait -> 2
  | Write_lock_acquire -> 3
  | Write_lock_wait -> 4
  | Clock_announce -> 5
  | Conflictor_wait -> 6
  | Pre_commit -> 7
  | Mid_rollback -> 8
  | Mid_writeback -> 9
  | Txn_body -> 10
  | Dbx_txn -> 11
  | Harness_op -> 12

let site_name = function
  | Read_lock_arrive -> "read-lock-arrive"
  | Read_lock_check -> "read-lock-check"
  | Read_lock_wait -> "read-lock-wait"
  | Write_lock_acquire -> "write-lock-acquire"
  | Write_lock_wait -> "write-lock-wait"
  | Clock_announce -> "clock-announce"
  | Conflictor_wait -> "conflictor-wait"
  | Pre_commit -> "pre-commit"
  | Mid_rollback -> "mid-rollback"
  | Mid_writeback -> "mid-writeback"
  | Txn_body -> "txn-body"
  | Dbx_txn -> "dbx-txn"
  | Harness_op -> "harness-op"

exception Injected_fault of site

type config = {
  seed : int;
  delay_ppm : int;
  delay_max_spins : int;
  yield_ppm : int;
  spurious_ppm : int;
  exn_ppm : int;
  stall_ppm : int;
  stall_ms : float;
  victim : int;
}

let default =
  {
    seed = 0xC4A05;
    delay_ppm = 20_000 (* 2% of points: short spin delay *);
    delay_max_spins = 512;
    yield_ppm = 5_000 (* 0.5%: give the OS a scheduling decision *);
    spurious_ppm = 20_000 (* 2% of acquisitions fail spuriously *);
    exn_ppm = 10_000 (* 1% of bodies raise Injected_fault *);
    stall_ppm = 200 (* rare: a stall freezes the thread for stall_ms *);
    stall_ms = 2.0;
    victim = -1;
  }

let on = ref false
let cfg = ref default

(* Decision classes, also the packed trace encoding. *)
let class_none = 0
let class_delay = 1
let class_yield = 2
let class_stall = 3
let class_spurious = 4
let class_exn = 5

let class_count = 6
let counters = Array.init class_count (fun _ -> Atomic.make 0)

let count c = Atomic.incr counters.(c)

(* Per-thread PRNG streams, reseeded on every [enable] so two runs with
   the same seed see identical streams regardless of earlier history.
   SplitMix mixing of (seed, tid) keeps the streams uncorrelated. *)
let rngs =
  Array.init Util.Tid.max_threads (fun tid ->
      Util.Sprng.create (tid + 1))

let reseed seed =
  for tid = 0 to Util.Tid.max_threads - 1 do
    rngs.(tid) <- Util.Sprng.create (seed lxor ((tid + 1) * 0x9E3779B9))
  done

(* Reproducibility traces: per-thread bounded decision logs. *)
let trace_cap = ref 0
let traces = Array.make Util.Tid.max_threads []
let trace_lens = Array.make Util.Tid.max_threads 0

let record tid ~site ~cls =
  if !trace_cap > 0 && trace_lens.(tid) < !trace_cap then begin
    traces.(tid) <- ((site_code site * 16) + cls) :: traces.(tid);
    trace_lens.(tid) <- trace_lens.(tid) + 1
  end

let set_trace n = trace_cap := n

let trace () =
  let tid = Util.Tid.get () in
  List.rev traces.(tid)

let clear_trace () =
  Array.fill traces 0 (Array.length traces) [];
  Array.fill trace_lens 0 (Array.length trace_lens) 0

let reset_counts () = Array.iter (fun c -> Atomic.set c 0) counters

let enable ?(config = default) () =
  cfg := config;
  reseed config.seed;
  reset_counts ();
  clear_trace ();
  on := true

let disable () = on := false
let enabled () = !on
let config () = !cfg
let seed () = !cfg.seed

let ppm = 1_000_000

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* One draw, classified against cumulative thresholds:
   [0, stall) -> stall; [stall, stall+delay) -> delay; then yield. *)
let point s =
  let c = !cfg in
  let tid = Util.Tid.get () in
  let rng = rngs.(tid) in
  let r = Util.Sprng.int rng ppm in
  let stall_hi = c.stall_ppm in
  let delay_hi = stall_hi + c.delay_ppm in
  let yield_hi = delay_hi + c.yield_ppm in
  if r < stall_hi && (c.victim < 0 || c.victim = tid) then begin
    record tid ~site:s ~cls:class_stall;
    count class_stall;
    (* Sleep rather than spin: the OS deschedules us mid-critical-window,
       which is exactly the preemption being emulated. *)
    Unix.sleepf (c.stall_ms /. 1000.)
  end
  else if r < delay_hi then begin
    record tid ~site:s ~cls:class_delay;
    count class_delay;
    spin (1 + Util.Sprng.int rng c.delay_max_spins)
  end
  else if r < yield_hi then begin
    record tid ~site:s ~cls:class_yield;
    count class_yield;
    Thread.yield ()
  end
  else record tid ~site:s ~cls:class_none

let spurious s =
  let c = !cfg in
  let tid = Util.Tid.get () in
  let fire = Util.Sprng.int rngs.(tid) ppm < c.spurious_ppm in
  record tid ~site:s ~cls:(if fire then class_spurious else class_none);
  if fire then count class_spurious;
  fire

let inject_exn s =
  let c = !cfg in
  let tid = Util.Tid.get () in
  let fire = Util.Sprng.int rngs.(tid) ppm < c.exn_ppm in
  record tid ~site:s ~cls:(if fire then class_exn else class_none);
  if fire then begin
    count class_exn;
    raise (Injected_fault s)
  end

let counts () =
  [
    ("delays", Atomic.get counters.(class_delay));
    ("yields", Atomic.get counters.(class_yield));
    ("stalls", Atomic.get counters.(class_stall));
    ("spurious", Atomic.get counters.(class_spurious));
    ("exns", Atomic.get counters.(class_exn));
  ]
