(* Seeded per-thread fault injector (DESIGN.md §10) and the sync-point
   substrate for the deterministic scheduler (DESIGN.md §14).

   Decision discipline: every hook draw is a *stateless* hash of
   (seed, tid, site, step, salt), where [step] is the calling thread's
   visit ordinal for that site.  A decision therefore depends only on
   how many times this thread has reached this site — never on what
   happened at other sites — so replaying a truncated or shrunk
   schedule perturbs fault decisions only at sites whose visit counts
   actually changed. *)

module Site = struct
  type t =
    | Read_lock_arrive
    | Read_lock_check
    | Read_lock_wait
    | Write_lock_acquire
    | Write_lock_wait
    | Clock_announce
    | Conflictor_wait
    | Pre_commit
    | Mid_rollback
    | Mid_writeback
    | Txn_body
    | Dbx_txn
    | Harness_op
    | Orec_check
    | Orec_lock
    | Validate
    | Wound_check
    | Wal_append
    | Wal_fsync
    | Wal_checkpoint
    | Commit_durable_pre
    | Commit_durable_mid
    | Commit_durable_post

  let code = function
    | Read_lock_arrive -> 0
    | Read_lock_check -> 1
    | Read_lock_wait -> 2
    | Write_lock_acquire -> 3
    | Write_lock_wait -> 4
    | Clock_announce -> 5
    | Conflictor_wait -> 6
    | Pre_commit -> 7
    | Mid_rollback -> 8
    | Mid_writeback -> 9
    | Txn_body -> 10
    | Dbx_txn -> 11
    | Harness_op -> 12
    | Orec_check -> 13
    | Orec_lock -> 14
    | Validate -> 15
    | Wound_check -> 16
    | Wal_append -> 17
    | Wal_fsync -> 18
    | Wal_checkpoint -> 19
    | Commit_durable_pre -> 20
    | Commit_durable_mid -> 21
    | Commit_durable_post -> 22

  let name = function
    | Read_lock_arrive -> "read-lock-arrive"
    | Read_lock_check -> "read-lock-check"
    | Read_lock_wait -> "read-lock-wait"
    | Write_lock_acquire -> "write-lock-acquire"
    | Write_lock_wait -> "write-lock-wait"
    | Clock_announce -> "clock-announce"
    | Conflictor_wait -> "conflictor-wait"
    | Pre_commit -> "pre-commit"
    | Mid_rollback -> "mid-rollback"
    | Mid_writeback -> "mid-writeback"
    | Txn_body -> "txn-body"
    | Dbx_txn -> "dbx-txn"
    | Harness_op -> "harness-op"
    | Orec_check -> "orec-check"
    | Orec_lock -> "orec-lock"
    | Validate -> "validate"
    | Wound_check -> "wound-check"
    | Wal_append -> "wal-append"
    | Wal_fsync -> "wal-fsync"
    | Wal_checkpoint -> "wal-checkpoint"
    | Commit_durable_pre -> "commit-durable-pre"
    | Commit_durable_mid -> "commit-durable-mid"
    | Commit_durable_post -> "commit-durable-post"

  let all =
    [
      Read_lock_arrive;
      Read_lock_check;
      Read_lock_wait;
      Write_lock_acquire;
      Write_lock_wait;
      Clock_announce;
      Conflictor_wait;
      Pre_commit;
      Mid_rollback;
      Mid_writeback;
      Txn_body;
      Dbx_txn;
      Harness_op;
      Orec_check;
      Orec_lock;
      Validate;
      Wound_check;
      Wal_append;
      Wal_fsync;
      Wal_checkpoint;
      Commit_durable_pre;
      Commit_durable_mid;
      Commit_durable_post;
    ]

  let count = List.length all

  let of_code c =
    match List.find_opt (fun s -> code s = c) all with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Chaos.Site.of_code %d" c)
end

type site = Site.t =
  | Read_lock_arrive
  | Read_lock_check
  | Read_lock_wait
  | Write_lock_acquire
  | Write_lock_wait
  | Clock_announce
  | Conflictor_wait
  | Pre_commit
  | Mid_rollback
  | Mid_writeback
  | Txn_body
  | Dbx_txn
  | Harness_op
  | Orec_check
  | Orec_lock
  | Validate
  | Wound_check
  | Wal_append
  | Wal_fsync
  | Wal_checkpoint
  | Commit_durable_pre
  | Commit_durable_mid
  | Commit_durable_post

let site_code = Site.code
let site_name = Site.name

exception Injected_fault of site

type config = {
  seed : int;
  delay_ppm : int;
  delay_max_spins : int;
  yield_ppm : int;
  spurious_ppm : int;
  exn_ppm : int;
  stall_ppm : int;
  stall_ms : float;
  victim : int;
}

let default =
  {
    seed = 0xC4A05;
    delay_ppm = 20_000 (* 2% of points: short spin delay *);
    delay_max_spins = 512;
    yield_ppm = 5_000 (* 0.5%: give the OS a scheduling decision *);
    spurious_ppm = 20_000 (* 2% of acquisitions fail spuriously *);
    exn_ppm = 10_000 (* 1% of bodies raise Injected_fault *);
    stall_ppm = 200 (* rare: a stall freezes the thread for stall_ms *);
    stall_ms = 2.0;
    victim = -1;
  }

(* All fault classes off: sync points become pure scheduling decisions.
   The cooperative scheduler runs under this unless the caller layers
   deterministic faults on top. *)
let quiet =
  {
    default with
    delay_ppm = 0;
    yield_ppm = 0;
    spurious_ppm = 0;
    exn_ppm = 0;
    stall_ppm = 0;
  }

let on = ref false
let cfg = ref default

(* Cooperative-scheduler hook (lib/sched).  When installed, every sync
   point is a potential context switch: the hook parks the calling
   thread until the scheduler hands the baton back.  It runs before the
   fault draw, so fault decisions land at the moment the thread is
   scheduled back in. *)
let hook : (Site.t -> unit) option ref = ref None

let run_hook s = match !hook with None -> () | Some f -> f s

(* Decision classes, also the packed trace encoding. *)
let class_none = 0
let class_delay = 1
let class_yield = 2
let class_stall = 3
let class_spurious = 4
let class_exn = 5

let class_count = 6
let counters = Array.init class_count (fun _ -> Atomic.make 0)

let count c = Atomic.incr counters.(c)

(* Per-(tid, site) visit ordinals, zeroed on every [enable] so two runs
   with the same seed see identical decisions regardless of earlier
   history.  Each slot is written only by its own thread. *)
let steps = Array.make_matrix Util.Tid.max_threads Site.count 0

let reset_steps () =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) steps

(* Distinct salts keep the decision classes independent draws; salt 1 is
   the delay-length draw, taken at the *same* step as the decision that
   fired it so it consumes no ordinal of its own. *)
let salt_point = 0
let salt_delay_len = 1
let salt_spurious = 2
let salt_exn = 3

let draw ~seed ~tid ~site_code ~step ~salt =
  Util.Sprng.hash4 seed ((tid lsl 8) lor site_code) step salt

(* Reproducibility traces: per-thread bounded decision logs. *)
let trace_cap = ref 0
let traces = Array.make Util.Tid.max_threads []
let trace_lens = Array.make Util.Tid.max_threads 0

let record tid ~site ~cls =
  if !trace_cap > 0 && trace_lens.(tid) < !trace_cap then begin
    traces.(tid) <- ((site_code site * 16) + cls) :: traces.(tid);
    trace_lens.(tid) <- trace_lens.(tid) + 1
  end

let set_trace n = trace_cap := n

let trace () =
  let tid = Util.Tid.get () in
  List.rev traces.(tid)

let clear_trace () =
  Array.fill traces 0 (Array.length traces) [];
  Array.fill trace_lens 0 (Array.length trace_lens) 0

let reset_counts () = Array.iter (fun c -> Atomic.set c 0) counters

let enable ?(config = default) () =
  cfg := config;
  reset_steps ();
  reset_counts ();
  clear_trace ();
  on := true

let disable () = on := false
let enabled () = !on
let config () = !cfg
let seed () = !cfg.seed

(* Process-abort injection for crash–recovery testing (DESIGN.md §15).
   [arm_kill ~site ~after:k] makes the k-th process-wide arrival at
   [site] terminate the process with [Unix._exit kill_exit_code]: no
   at_exit handlers, no channel flush, no domain teardown — the closest
   portable stand-in for SIGKILL mid-commit.  Checked at the top of
   every sync-point entry, before the scheduler hook and the fault
   draw, so a kill cannot be deflected by another chaos class.  The
   counter is process-wide (not per-thread): "the k-th time *anyone*
   reaches this site" is what a seeded crash schedule needs. *)
let kill_exit_code = 137

let kill_site = ref (-1)
let kill_left = Atomic.make 0

let arm_kill ~site ~after =
  if after < 1 then invalid_arg "Chaos.arm_kill: after < 1";
  Atomic.set kill_left after;
  kill_site := Site.code site

let disarm_kill () = kill_site := -1

let maybe_kill s =
  if !kill_site = Site.code s then begin
    if Atomic.fetch_and_add kill_left (-1) = 1 then Unix._exit kill_exit_code
  end

let ppm = 1_000_000

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

(* One decision draw, classified against cumulative thresholds:
   [0, stall) -> stall; [stall, stall+delay) -> delay; then yield. *)
let point s =
  maybe_kill s;
  run_hook s;
  let c = !cfg in
  let tid = Util.Tid.get () in
  let sc = Site.code s in
  let step = steps.(tid).(sc) in
  steps.(tid).(sc) <- step + 1;
  let r = draw ~seed:c.seed ~tid ~site_code:sc ~step ~salt:salt_point mod ppm in
  let stall_hi = c.stall_ppm in
  let delay_hi = stall_hi + c.delay_ppm in
  let yield_hi = delay_hi + c.yield_ppm in
  if r < stall_hi && (c.victim < 0 || c.victim = tid) then begin
    record tid ~site:s ~cls:class_stall;
    count class_stall;
    (* Sleep rather than spin: the OS deschedules us mid-critical-window,
       which is exactly the preemption being emulated. *)
    Unix.sleepf (c.stall_ms /. 1000.)
  end
  else if r < delay_hi then begin
    record tid ~site:s ~cls:class_delay;
    count class_delay;
    spin
      (1
      + draw ~seed:c.seed ~tid ~site_code:sc ~step ~salt:salt_delay_len
        mod c.delay_max_spins)
  end
  else if r < yield_hi then begin
    record tid ~site:s ~cls:class_yield;
    count class_yield;
    Thread.yield ()
  end
  else record tid ~site:s ~cls:class_none

let spurious s =
  maybe_kill s;
  run_hook s;
  let c = !cfg in
  let tid = Util.Tid.get () in
  let sc = Site.code s in
  let step = steps.(tid).(sc) in
  steps.(tid).(sc) <- step + 1;
  let fire =
    draw ~seed:c.seed ~tid ~site_code:sc ~step ~salt:salt_spurious mod ppm
    < c.spurious_ppm
  in
  record tid ~site:s ~cls:(if fire then class_spurious else class_none);
  if fire then count class_spurious;
  fire

let inject_exn s =
  maybe_kill s;
  run_hook s;
  let c = !cfg in
  let tid = Util.Tid.get () in
  let sc = Site.code s in
  let step = steps.(tid).(sc) in
  steps.(tid).(sc) <- step + 1;
  let fire =
    draw ~seed:c.seed ~tid ~site_code:sc ~step ~salt:salt_exn mod ppm
    < c.exn_ppm
  in
  record tid ~site:s ~cls:(if fire then class_exn else class_none);
  if fire then begin
    count class_exn;
    raise (Injected_fault s)
  end

let counts () =
  [
    ("delays", Atomic.get counters.(class_delay));
    ("yields", Atomic.get counters.(class_yield));
    ("stalls", Atomic.get counters.(class_stall));
    ("spurious", Atomic.get counters.(class_spurious));
    ("exns", Atomic.get counters.(class_exn));
  ]
