(* The starvation-free reader-writer lock (paper Algorithms 2 and 3).

   Lock word encoding: 0 = UNLOCKED, otherwise (holder tid + 1).
   Announced timestamp 0 = NO_TIMESTAMP, compared as +infinity (a
   never-conflicted transaction has lowest priority; see mli).

   Divergence from the pseudocode, both deliberate:
   - [try_or_wait_write_lock] returns true immediately when the caller
     already holds the write lock.  In the pseudocode a re-entrant writer
     can be wounded at line 96 and then releases the lock at line 101
     *before* its undo-log rollback runs, letting another writer acquire
     the lock while stale rollback stores are still pending.  The fast
     path removes that window; rollback always happens before release.
   - getTSOfWLock/getLowestTS initialize their fold with +infinity rather
     than NO_TIMESTAMP = 0 (with 0 the pseudocode's [oTS < lowestTS] can
     never fire). *)

module Read_indicator = Rwlock.Read_indicator
module Obs = Twoplsf_obs
module Chaos = Twoplsf_chaos.Chaos

let infinity_ts = max_int

type t = {
  mask : int;
  nlocks : int;
  wlocks : int Atomic.t array;
  ri : Read_indicator.t;
  conflict_clock : int Atomic.t;
  announce : int Atomic.t array;
  zero_mutex : bool Atomic.t;
  clock_count : int Atomic.t array; (* per-tid count of conflict-clock draws *)
  mutable obs : Obs.Scope.t option; (* set once at start-up, before domains *)
  mutable watch_id : int; (* Waitsfor table id, or -1 when not watched *)
}

type ctx = {
  tid : int;
  mutable my_ts : int;
  mutable o_tid : int;
  mutable o_ts : int;
  mutable o_lock : int;
  mutable preempted : bool;
  mutable deadline_ns : int;
  mutable deadline_hit : bool;
}

let create ?(num_locks = 65536) () =
  if num_locks land (num_locks - 1) <> 0 || num_locks < 32 then
    invalid_arg "Rwl_sf.create: num_locks must be a power of two >= 32";
  {
    mask = num_locks - 1;
    nlocks = num_locks;
    wlocks = Array.init num_locks (fun _ -> Atomic.make 0);
    ri = Read_indicator.create ~num_locks;
    conflict_clock = Atomic.make 2 (* 1 is the irrevocable priority *);
    announce = Array.init Util.Tid.max_threads (fun _ -> Atomic.make 0);
    zero_mutex = Atomic.make false;
    clock_count = Array.init Util.Tid.max_threads (fun _ -> Atomic.make 0);
    obs = None;
    watch_id = -1;
  }

let clock_value t = Atomic.get t.conflict_clock

(* Racy read-only view of one lock for the watchdog: the current write
   holder, its announced timestamp and the read-indicator population may
   each belong to slightly different moments — sound for detection because
   the watchdog debounces everything across ticks (DESIGN.md §9). *)
let inspect t w : Obs.Waitsfor.lock_view =
  let ws = Atomic.get t.wlocks.(w) in
  let writer = ws - 1 in
  let writer_ts = if ws = 0 then 0 else Atomic.get t.announce.(writer) in
  let readers = ref [] in
  Read_indicator.iter_readers t.ri ~self:(-1) w (fun tid ->
      readers := tid :: !readers);
  {
    Obs.Waitsfor.writer = (if ws = 0 then -1 else writer);
    writer_ts;
    readers = !readers;
  }

let watch ?name t =
  if t.watch_id < 0 then
    let name =
      match (name, t.obs) with
      | Some n, _ -> n
      | None, Some sc -> Obs.Scope.name sc
      | None, None -> "rwl_sf"
    in
    t.watch_id <-
      Obs.Waitsfor.register_table ~name ~num_locks:t.nlocks
        ~inspect:(inspect t)
        ~announced:(fun tid -> Atomic.get t.announce.(tid))
        ~clock:(fun () -> clock_value t)

let set_obs t sc =
  t.obs <- Some sc;
  (* Register for watchdog introspection only when publication is already
     enabled: registered tables are retained for the process lifetime, and
     short-lived tables (one per DBx run) should not pile up in a run that
     never watches them. *)
  if !Obs.Wait_registry.on then watch t
let make_ctx ~tid =
  {
    tid;
    my_ts = 0;
    o_tid = -1;
    o_ts = 0;
    o_lock = -1;
    preempted = false;
    deadline_ns = 0;
    deadline_hit = false;
  }

(* Overload protection (DESIGN.md §11): a transaction's absolute deadline,
   installed by the STM at attempt start.  0 = no deadline, so the
   disabled-path cost in every wait loop is one load + predicted branch. *)
let deadline_blown ctx =
  ctx.deadline_ns <> 0 && Obs.Telemetry.now_ns () > ctx.deadline_ns
let num_locks t = t.nlocks
let lock_index t id = id land t.mask
let announced t tid = Atomic.get t.announce.(tid)

let effective_ts raw = if raw = 0 then infinity_ts else raw

let take_timestamp t ctx =
  if ctx.my_ts = 0 then begin
    ctx.my_ts <- Atomic.fetch_and_add t.conflict_clock 1;
    Atomic.incr t.clock_count.(ctx.tid);
    (* Chaos: widen the window in which a drawn timestamp is not yet
       announced (others still read us as +infinity priority). *)
    if !Chaos.on then Chaos.point Chaos.Clock_announce;
    Atomic.set t.announce.(ctx.tid) ctx.my_ts;
    if !Obs.Telemetry.on then
      match t.obs with
      | Some sc -> Obs.Scope.event sc ~tid:ctx.tid Obs.Events.Priority_announced
      | None -> ()
  end

let announce_priority t ctx ts =
  ctx.my_ts <- ts;
  Atomic.set t.announce.(ctx.tid) ts

let clear_announcement t ctx =
  ctx.my_ts <- 0;
  ctx.o_tid <- -1;
  ctx.o_ts <- 0;
  ctx.o_lock <- -1;
  Atomic.set t.announce.(ctx.tid) 0

(* Effective timestamp of the current write-lock holder (+inf if the lock
   is free, held by us, or the holder never conflicted).  Records the
   holder in [ctx.o_tid] when it is a real candidate. *)
let ts_of_wlock t ctx w =
  let ws = Atomic.get t.wlocks.(w) in
  if ws = 0 || ws = ctx.tid + 1 then infinity_ts
  else begin
    let otid = ws - 1 in
    let ts = effective_ts (Atomic.get t.announce.(otid)) in
    if ts < infinity_ts then begin
      ctx.o_tid <- otid;
      ctx.o_ts <- ts;
      ctx.o_lock <- w
    end;
    ts
  end

(* Lowest effective timestamp among the write-lock holder and all readers
   (Algorithm 3, getLowestTS), recording the owning thread in ctx. *)
let lowest_ts t ctx w =
  let lowest = ref (ts_of_wlock t ctx w) in
  Read_indicator.iter_readers t.ri ~self:ctx.tid w (fun itid ->
      let ts = effective_ts (Atomic.get t.announce.(itid)) in
      if ts < !lowest then begin
        lowest := ts;
        ctx.o_tid <- itid;
        ctx.o_ts <- ts;
        ctx.o_lock <- w
      end);
  !lowest

let my_effective_ts ctx = effective_ts ctx.my_ts

(* A forced (injected) acquisition failure must present itself as a
   conflict with an *unknown* conflictor: [ctx.o_tid] may still name a
   thread recorded during an earlier, successful wait whose timestamp is
   higher than ours.  Waiting on it from the restart path would invert
   the priority order that makes waits-for cycles impossible. *)
let spurious_fail ctx =
  ctx.o_tid <- -1;
  ctx.o_ts <- 0;
  ctx.o_lock <- -1;
  ctx.preempted <- false;
  false

let try_or_wait_read_lock t ctx w =
  if !Chaos.on && Chaos.spurious Chaos.Read_lock_arrive then spurious_fail ctx
  else begin
  if !Chaos.on then Chaos.point Chaos.Read_lock_arrive;
  Read_indicator.arrive t.ri ~tid:ctx.tid w;
  if !Chaos.on then Chaos.point Chaos.Read_lock_check;
  let ws = Atomic.get t.wlocks.(w) in
  if ws = 0 || ws = ctx.tid + 1 then begin
    if !Obs.Telemetry.on then begin
      match t.obs with
      | Some sc -> Obs.Scope.event sc ~tid:ctx.tid Obs.Events.Read_lock_fast
      | None -> ()
    end;
    true
  end
  else begin
    let t0 = if !Obs.Telemetry.on then Obs.Telemetry.now_ns () else 0 in
    take_timestamp t ctx;
    let watch = !Obs.Wait_registry.on && t.watch_id >= 0 in
    if watch then
      Obs.Wait_registry.publish ~tid:ctx.tid ~kind:Obs.Wait_registry.read_wait
        ~table:t.watch_id ~lock:w ~since_ns:(Obs.Telemetry.now_ns ())
        ~observed:(-1);
    let b = Util.Backoff.create () in
    let spins = ref 0 in
    let finish acquired =
      if watch then Obs.Wait_registry.clear ~tid:ctx.tid;
      (if !Obs.Telemetry.on then
         match t.obs with
         | Some sc ->
             Obs.Scope.lock_wait sc ~lock:w ~tid:ctx.tid ~write:false
               ~t0_ns:t0 ~spins:!spins ~acquired
         | None -> ());
      acquired
    in
    let rec loop () =
      if Atomic.get t.wlocks.(w) = 0 then finish true
      else begin
        let ots = ts_of_wlock t ctx w in
        if watch && ctx.o_tid >= 0 then
          Obs.Wait_registry.set_observed ~tid:ctx.tid ctx.o_tid;
        if ots < my_effective_ts ctx then begin
          (* A higher-priority writer owns the lock: restart. *)
          Read_indicator.depart t.ri ~tid:ctx.tid w;
          ctx.preempted <- false;
          finish false
        end
        else if deadline_blown ctx then begin
          Read_indicator.depart t.ri ~tid:ctx.tid w;
          ctx.preempted <- false;
          ctx.deadline_hit <- true;
          (* Provenance: pin the deadline abort on the lock we starved on
             (the conflictor, if any, was recorded by ts_of_wlock). *)
          ctx.o_lock <- w;
          finish false
        end
        else begin
          incr spins;
          if !Chaos.on then Chaos.point Chaos.Read_lock_wait;
          Util.Backoff.once b;
          loop ()
        end
      end
    in
    loop ()
  end
  end

let try_or_wait_write_lock t ctx w =
  let me = ctx.tid + 1 in
  let ws = Atomic.get t.wlocks.(w) in
  if ws = me then true
    (* Spurious-failure injection sits after the re-entrancy check: a
       forced failure on a lock we already hold would leave the caller's
       write set inconsistent with the lock word. *)
  else if !Chaos.on && Chaos.spurious Chaos.Write_lock_acquire then
    spurious_fail ctx
  else if
    ws = 0
    && Atomic.compare_and_set t.wlocks.(w) 0 me
    && Read_indicator.is_empty t.ri ~self:ctx.tid w
  then begin
    if !Obs.Telemetry.on then begin
      match t.obs with
      | Some sc -> Obs.Scope.event sc ~tid:ctx.tid Obs.Events.Write_lock_fast
      | None -> ()
    end;
    true
  end
  else begin
    let t0 = if !Obs.Telemetry.on then Obs.Telemetry.now_ns () else 0 in
    take_timestamp t ctx;
    (* Arrive as a reader so concurrent lower-priority writers that win the
       CAS race see a non-empty indicator and defer to our timestamp
       (§2.5: bounds the number of writers that can overtake us). *)
    Read_indicator.arrive t.ri ~tid:ctx.tid w;
    let watch = !Obs.Wait_registry.on && t.watch_id >= 0 in
    if watch then
      Obs.Wait_registry.publish ~tid:ctx.tid
        ~kind:Obs.Wait_registry.write_wait ~table:t.watch_id ~lock:w
        ~since_ns:(Obs.Telemetry.now_ns ()) ~observed:(-1);
    let b = Util.Backoff.create () in
    let spins = ref 0 in
    let finish acquired =
      if watch then Obs.Wait_registry.clear ~tid:ctx.tid;
      (if !Obs.Telemetry.on then
         match t.obs with
         | Some sc ->
             Obs.Scope.lock_wait sc ~lock:w ~tid:ctx.tid ~write:true
               ~t0_ns:t0 ~spins:!spins ~acquired
         | None -> ());
      acquired
    in
    let rec loop () =
      (if Atomic.get t.wlocks.(w) = 0 then
         ignore (Atomic.compare_and_set t.wlocks.(w) 0 me));
      if
        Atomic.get t.wlocks.(w) = me
        && Read_indicator.is_empty t.ri ~self:ctx.tid w
      then begin
        (* Clearing the indicator is fine even if this thread previously
           held the read lock: the lock is now upgraded. *)
        Read_indicator.depart t.ri ~tid:ctx.tid w;
        finish true
      end
      else begin
        let lowest = lowest_ts t ctx w in
        if watch && ctx.o_tid >= 0 then
          Obs.Wait_registry.set_observed ~tid:ctx.tid ctx.o_tid;
        if lowest < my_effective_ts ctx then begin
          let owned = Atomic.get t.wlocks.(w) = me in
          Read_indicator.depart t.ri ~tid:ctx.tid w;
          if owned then Atomic.set t.wlocks.(w) 0;
          (* Losing a lock we already owned is the starvation-freedom
             mechanism preempting us, not a plain failed acquisition. *)
          ctx.preempted <- owned;
          finish false
        end
        else if deadline_blown ctx then begin
          let owned = Atomic.get t.wlocks.(w) = me in
          Read_indicator.depart t.ri ~tid:ctx.tid w;
          if owned then Atomic.set t.wlocks.(w) 0;
          ctx.preempted <- false;
          ctx.deadline_hit <- true;
          ctx.o_lock <- w;
          finish false
        end
        else begin
          incr spins;
          if !Chaos.on then Chaos.point Chaos.Write_lock_wait;
          Util.Backoff.once b;
          loop ()
        end
      end
    in
    loop ()
  end

let read_unlock t ctx w = Read_indicator.depart t.ri ~tid:ctx.tid w
let write_unlock t ctx w =
  ignore ctx;
  Atomic.set t.wlocks.(w) 0

let holds_read t ctx w = Read_indicator.holds t.ri ~tid:ctx.tid w
let holds_write t ctx w = Atomic.get t.wlocks.(w) = ctx.tid + 1

let wait_for_conflictor t ctx =
  let otid = ctx.o_tid and ots = ctx.o_ts in
  ctx.o_tid <- -1;
  ctx.o_ts <- 0;
  if otid >= 0 && ots > 0 && ots < infinity_ts then begin
    let t0 = if !Obs.Telemetry.on then Obs.Telemetry.now_ns () else 0 in
    let watch = !Obs.Wait_registry.on && t.watch_id >= 0 in
    if watch then
      Obs.Wait_registry.publish ~tid:ctx.tid
        ~kind:Obs.Wait_registry.conflictor_wait ~table:t.watch_id ~lock:(-1)
        ~since_ns:(Obs.Telemetry.now_ns ()) ~observed:otid;
    let b = Util.Backoff.create () in
    while Atomic.get t.announce.(otid) = ots && not (deadline_blown ctx) do
      if !Chaos.on then Chaos.point Chaos.Conflictor_wait;
      Util.Backoff.once b
    done;
    if watch then Obs.Wait_registry.clear ~tid:ctx.tid;
    if !Obs.Telemetry.on then
      match t.obs with
      | Some sc -> Obs.Scope.conflictor_wait sc ~tid:ctx.tid ~t0_ns:t0
      | None -> ()
  end

let zero_mutex_lock t =
  let b = Util.Backoff.create () in
  while not (Atomic.compare_and_set t.zero_mutex false true) do
    Util.Backoff.once b
  done

let zero_mutex_unlock t = Atomic.set t.zero_mutex false

(* Post-run lock sweep: number of locks still held — write words that are
   non-zero plus locks whose read indicator has any bit set.  Zero after
   every transaction has committed or aborted; the chaos harness asserts
   this after each soak (DESIGN.md §10). *)
let leaked t =
  let n = ref 0 in
  for w = 0 to t.nlocks - 1 do
    if Atomic.get t.wlocks.(w) <> 0 then incr n;
    if not (Read_indicator.is_empty t.ri ~self:(-1) w) then incr n
  done;
  !n

let clock_increments t =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.clock_count

let reset_clock_increments t =
  Array.iter (fun c -> Atomic.set c 0) t.clock_count
