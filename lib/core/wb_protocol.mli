(** The write-back (redo-log) 2PLSF protocol family (paper §2: "a
    write-back protocol (redo-log) can also be used with either eager
    locking or deferred locking").

    Reads are pessimistic exactly as in Algorithm 1; writes are buffered
    in a per-transaction redo log and installed at commit while every
    write lock is held.  The functor parameter picks when those write
    locks are taken:

    - [eager = true]: at encounter time, like Algorithm 1 minus the
      in-place store ({!Stm_wb});
    - [eager = false]: at commit time, still through [tryOrWaitWriteLock],
      so the starvation-freedom argument is unchanged — the expanding
      phase merely extends into the commit ({!Stm_wbd}).

    Aborts discard the buffer instead of rolling memory back.  Internals
    (the redo log, its bloom filter, the restart exception) are hidden:
    the protocol surface is exactly {!Stm_intf.STM} plus lock-table
    sizing. *)

module Make (_ : sig
  val name : string
  (** Benchmark label; also the telemetry scope name registered for this
      instance. *)

  val eager : bool
  (** [true]: take write locks at encounter time; [false]: defer them to
      commit. *)
end) : sig
  include Stm_intf.STM

  val configure : ?num_locks:int -> unit -> unit
  (** Size this instance's lock table (power of two, default 65536).
      Must precede the first transaction; later calls raise [Failure]. *)
end
