let name = "2PLSF"

module Obs = Twoplsf_obs
module Chaos = Twoplsf_chaos.Chaos
module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission

exception Restart
(* The OCaml stand-in for the paper's longjmp back to beginTxn. *)

type 'a tvar = { id : int; mutable v : 'a; mutable stamp : int }
(* [stamp] identifies the transaction attempt that last undo-logged this
   tvar; written only under the tvar's write lock. *)

type wentry = W : { tv : 'a tvar; old : 'a } -> wentry

type tx = {
  ctx : Rwl_sf.ctx;
  rset : int Util.Vec.t; (* read-locked lock indices *)
  wset : int Util.Vec.t; (* write-locked lock indices *)
  undo : wentry Util.Vec.t;
  mutable stamp : int; (* unique per attempt: serial * max_threads + tid *)
  mutable serial : int;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  mutable irrevocable : bool;
  mutable escalated : bool;
      (* the overload fallback upgraded this transaction mid-flight; the
         zero mutex is held and must be released on every exit path *)
  ov : Cm.state; (* overload-protection state (deadline, strikes) *)
  mutable abort_reason : Obs.Events.abort_reason;
      (* why the in-flight attempt raised Restart; telemetry only *)
}

(* ---- global state ---- *)

let requested_num_locks = ref 65536
let configured = ref false

let obs = Obs.Scope.create "2PLSF"

let table =
  Util.Once.create (fun () ->
      configured := true;
      let t = Rwl_sf.create ~num_locks:!requested_num_locks () in
      Rwl_sf.set_obs t obs;
      t)

let configure ?(num_locks = 65536) () =
  if !configured then failwith "Twoplsf.Stm.configure: lock table already built";
  requested_num_locks := num_locks

let lock_table () = Util.Once.get table

module Stm_stats = Stm_intf.Stats

let stats = Stm_stats.create ()

let restart_hist_buckets = 128

let restart_hist =
  Array.init restart_hist_buckets (fun _ -> Atomic.make 0)

let dummy_wentry = W { tv = { id = -1; v = (); stamp = -1 }; old = () }

let tx_key =
  Domain.DLS.new_key (fun () ->
      let tid = Util.Tid.get () in
      {
        ctx = Rwl_sf.make_ctx ~tid;
        rset = Util.Vec.create ~dummy:(-1) ();
        wset = Util.Vec.create ~dummy:(-1) ();
        undo = Util.Vec.create ~dummy:dummy_wentry ();
        stamp = tid;
        serial = 0;
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        irrevocable = false;
        escalated = false;
        ov = Cm.make_state ();
        abort_reason = Obs.Events.User_restart;
      })

let get_tx () = Domain.DLS.get tx_key

(* ---- tvars ---- *)

let tvar v = { id = Util.Id_gen.next (); v; stamp = -1 }

let read tx tv =
  let t = Util.Once.get table in
  let w = Rwl_sf.lock_index t tv.id in
  if Rwl_sf.holds_read t tx.ctx w || Rwl_sf.holds_write t tx.ctx w then tv.v
  else if Rwl_sf.try_or_wait_read_lock t tx.ctx w then begin
    Util.Vec.push tx.rset w;
    tv.v
  end
  else begin
    tx.abort_reason <-
      (if tx.ctx.deadline_hit then Obs.Events.Deadline
       else Obs.Events.Read_lock_conflict);
    raise Restart
  end

let write tx tv nv =
  let t = Util.Once.get table in
  let w = Rwl_sf.lock_index t tv.id in
  let held = Rwl_sf.holds_write t tx.ctx w in
  if held || Rwl_sf.try_or_wait_write_lock t tx.ctx w then begin
    if not held then Util.Vec.push tx.wset w;
    if tv.stamp <> tx.stamp then begin
      Util.Vec.push tx.undo (W { tv; old = tv.v });
      tv.stamp <- tx.stamp
    end;
    tv.v <- nv
  end
  else begin
    tx.abort_reason <-
      (if tx.ctx.deadline_hit then Obs.Events.Deadline
       else if tx.ctx.preempted then Obs.Events.Priority_preemption
       else Obs.Events.Write_lock_conflict);
    raise Restart
  end

(* ---- transaction lifecycle ---- *)

let begin_attempt tx =
  Util.Vec.clear tx.rset;
  Util.Vec.clear tx.wset;
  Util.Vec.clear tx.undo;
  tx.serial <- tx.serial + 1;
  tx.stamp <- (tx.serial * Util.Tid.max_threads) + tx.ctx.tid;
  tx.ctx.deadline_hit <- false;
  tx.abort_reason <- Obs.Events.User_restart

let release_locks t tx =
  Util.Vec.iter (fun w -> Rwl_sf.write_unlock t tx.ctx w) tx.wset;
  Util.Vec.iter (fun w -> Rwl_sf.read_unlock t tx.ctx w) tx.rset

(* Bucket 0 is derived as commits - sum(others) at read time so the common
   no-restart commit path touches no shared counter. *)
let record_restart_count n =
  if n > 0 then begin
    let b = if n >= restart_hist_buckets then restart_hist_buckets - 1 else n in
    Atomic.incr restart_hist.(b)
  end

let commit tx =
  let t = Util.Once.get table in
  release_locks t tx;
  Rwl_sf.clear_announcement t tx.ctx;
  Stm_stats.commit stats ~tid:tx.ctx.tid;
  tx.finished_restarts <- tx.restarts;
  record_restart_count tx.restarts

let rollback tx =
  let t = Util.Once.get table in
  (* Undo newest-first *before* releasing any write lock. *)
  Util.Vec.iter_rev (fun (W { tv; old }) -> tv.v <- old) tx.undo;
  (* Chaos: delay-only site — an exception here would corrupt the
     rollback; [Chaos.point] never raises by contract. *)
  if !Chaos.on then Chaos.point Chaos.Mid_rollback;
  release_locks t tx

let irrevocable_priority = 1

(* De-escalate an overload-escalated transaction on any exit path: the
   zero mutex is held from the moment of escalation until the escalated
   attempt commits or escapes with an exception. *)
let finish_escalation t tx =
  if tx.escalated then begin
    tx.escalated <- false;
    tx.irrevocable <- false;
    Rwl_sf.zero_mutex_unlock t
  end

let run tx f =
  tx.restarts <- 0;
  (* Irrevocable transactions (§2.8) are exempt from overload protection:
     they hold the zero mutex and must commit. *)
  tx.ctx.deadline_ns <- (if tx.irrevocable then 0 else Cm.begin_txn tx.ov);
  let t = Util.Once.get table in
  let telemetry = !Obs.Telemetry.on in
  let txn_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
  let rec attempt att_t0 =
    begin_attempt tx;
    tx.depth <- 1;
    match f tx with
    | v ->
        tx.depth <- 0;
        if !Chaos.on then Chaos.point Chaos.Pre_commit;
        let commit_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
        commit tx;
        finish_escalation t tx;
        if telemetry then
          Obs.Scope.txn_commit obs ~tid:tx.ctx.tid ~txn_t0_ns:txn_t0
            ~att_t0_ns:att_t0 ~commit_t0_ns:commit_t0 ();
        v
    | exception Restart ->
        tx.depth <- 0;
        rollback tx;
        Stm_stats.abort stats ~tid:tx.ctx.tid;
        if telemetry then begin
          (* Provenance: the conflictor and lock the failed acquisition
             recorded in the ctx; explicit user restarts have neither. *)
          let aborter, lock =
            match tx.abort_reason with
            | Obs.Events.User_restart -> (-1, -1)
            | _ -> (tx.ctx.o_tid, tx.ctx.o_lock)
          in
          Obs.Scope.txn_abort obs ~aborter ~lock ~tid:tx.ctx.tid
            ~att_t0_ns:att_t0 tx.abort_reason
        end;
        tx.restarts <- tx.restarts + 1;
        if tx.escalated || tx.irrevocable then begin
          (* Already on the serial slow path (or §2.8 irrevocable): only a
             chaos-injected spurious failure can abort us; retry
             unconditionally — priority 1 wins every real conflict. *)
          Rwl_sf.wait_for_conflictor t tx.ctx;
          attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
        else begin
          match
            Cm.after_abort ~stm:name ~tid:tx.ctx.tid ~restarts:tx.restarts
              ~st:tx.ov
              ~native_wait:(fun () -> Rwl_sf.wait_for_conflictor t tx.ctx)
                (* Locks are already released; cleanup drops the priority
                   announcement too so no other thread keeps deferring to
                   a timestamp that will never commit. *)
              ~cleanup:(fun () -> Rwl_sf.clear_announcement t tx.ctx)
              ~reasons:(fun () ->
                if telemetry then Obs.Scope.abort_counts obs else [])
          with
          | Cm.Retry ->
              tx.ctx.deadline_ns <- tx.ov.Cm.deadline;
              attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
          | Cm.Escalate ->
              (* Serial-irrevocable fallback (DESIGN.md §11): take the
                 zero mutex and the reserved priority, so the next attempt
                 cannot lose a conflict and commits. *)
              Rwl_sf.clear_announcement t tx.ctx;
              Rwl_sf.zero_mutex_lock t;
              Rwl_sf.announce_priority t tx.ctx irrevocable_priority;
              tx.escalated <- true;
              tx.irrevocable <- true;
              tx.ctx.deadline_ns <- 0;
              if telemetry then
                Obs.Scope.event obs ~tid:tx.ctx.tid
                  Obs.Events.Irrevocable_fallback;
              attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
    | exception e ->
        tx.depth <- 0;
        rollback tx;
        Rwl_sf.clear_announcement t tx.ctx;
        finish_escalation t tx;
        raise e
  in
  attempt txn_t0

let atomic ?read_only f =
  ignore read_only;
  (* 2PLSF reads are pessimistic; read-only transactions take the same
     path (no commit-time validation exists to skip). *)
  let tx = get_tx () in
  if tx.depth > 0 then f tx
  else if !Admission.on then begin
    Admission.enter ();
    match run tx f with
    | v ->
        Admission.leave ();
        v
    | exception e ->
        Admission.leave ();
        raise e
  end
  else run tx f

let atomic_irrevocable_ro f =
  let tx = get_tx () in
  if tx.depth > 0 then invalid_arg "atomic_irrevocable_ro: already in a transaction";
  let t = Util.Once.get table in
  Rwl_sf.announce_priority t tx.ctx irrevocable_priority;
  tx.irrevocable <- true;
  if !Obs.Telemetry.on then
    Obs.Scope.event obs ~tid:tx.ctx.tid Obs.Events.Irrevocable_upgrade;
  let finish () = tx.irrevocable <- false in
  match atomic f with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let atomic_irrevocable f =
  let tx = get_tx () in
  if tx.depth > 0 then invalid_arg "atomic_irrevocable: already in a transaction";
  let t = Util.Once.get table in
  Rwl_sf.zero_mutex_lock t;
  Rwl_sf.announce_priority t tx.ctx irrevocable_priority;
  tx.irrevocable <- true;
  if !Obs.Telemetry.on then
    Obs.Scope.event obs ~tid:tx.ctx.tid Obs.Events.Irrevocable_upgrade;
  let finish () =
    tx.irrevocable <- false;
    Rwl_sf.zero_mutex_unlock t
  in
  match atomic f with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

(* ---- statistics ---- *)

let commits () = Stm_stats.commits stats
let aborts () = Stm_stats.aborts stats
let clock_ops () = Rwl_sf.clock_increments (Util.Once.get table)

let reset_stats () =
  Stm_stats.reset stats;
  Rwl_sf.reset_clock_increments (Util.Once.get table);
  Obs.Scope.reset obs;
  Array.iter (fun c -> Atomic.set c 0) restart_hist

let last_restarts () = (get_tx ()).finished_restarts

let leaked_locks () = if !configured then Rwl_sf.leaked (Util.Once.get table) else 0

let restart_histogram () =
  let h = Array.map Atomic.get restart_hist in
  let restarted = Array.fold_left ( + ) 0 h in
  h.(0) <- Stdlib.max 0 (commits () - restarted);
  h
