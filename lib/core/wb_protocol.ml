(* The write-back (redo-log) 2PLSF protocol family (paper §2: "a
   write-back protocol (redo-log) can also be used with either eager
   locking or deferred locking").

   Reads are pessimistic exactly as in Algorithm 1.  Writes are buffered
   and installed at commit; the functor parameter picks when their write
   locks are taken:
   - eager: at encounter time (like Algorithm 1, minus the in-place store);
   - deferred: at commit time, still through tryOrWaitWriteLock, so the
     starvation-freedom argument is unchanged — the expanding phase merely
     extends into the commit.

   Aborts discard the buffer instead of rolling memory back. *)

module Make (P : sig
  val name : string
  val eager : bool
end) =
struct
  let name = P.name

  module Obs = Twoplsf_obs
  module Chaos = Twoplsf_chaos.Chaos
  module Cm = Twoplsf_cm.Cm
  module Admission = Twoplsf_cm.Admission

  exception Restart

  type 'a tvar = { id : int; mutable v : 'a }

  (* Redo-log entry; matched by unique tvar id, so the Obj.magic below only
     ever converts a value back to its own type (same trick, same safety
     argument as Baselines.Wset — duplicated here because the core library
     cannot depend on the baselines library). *)
  type rentry = R : { tv : 'a tvar; mutable nv : 'a } -> rentry

  type tx = {
    ctx : Rwl_sf.ctx;
    rset : int Util.Vec.t;
    wset : int Util.Vec.t;
    redo : rentry Util.Vec.t;
    mutable bloom : int;
    mutable depth : int;
    mutable restarts : int;
    mutable finished_restarts : int;
    mutable escalated : bool;
        (* overload fallback: zero mutex held, priority 1 announced *)
    ov : Cm.state;
    mutable abort_reason : Obs.Events.abort_reason;
  }

  let requested_num_locks = ref 65536
  let configured = ref false
  let obs = Obs.Scope.create P.name

  let table =
    Util.Once.create (fun () ->
        configured := true;
        let t = Rwl_sf.create ~num_locks:!requested_num_locks () in
        Rwl_sf.set_obs t obs;
        t)

  let configure ?(num_locks = 65536) () =
    if !configured then failwith (name ^ ".configure: lock table already built");
    requested_num_locks := num_locks

  let stats = Stm_intf.Stats.create ()

  let dummy_rentry = R { tv = { id = -1; v = () }; nv = () }

  let tx_key =
    Domain.DLS.new_key (fun () ->
        let tid = Util.Tid.get () in
        {
          ctx = Rwl_sf.make_ctx ~tid;
          rset = Util.Vec.create ~dummy:(-1) ();
          wset = Util.Vec.create ~dummy:(-1) ();
          redo = Util.Vec.create ~dummy:dummy_rentry ();
          bloom = 0;
          depth = 0;
          restarts = 0;
          finished_restarts = 0;
          escalated = false;
          ov = Cm.make_state ();
          abort_reason = Obs.Events.User_restart;
        })

  let get_tx () = Domain.DLS.get tx_key

  let tvar v = { id = Util.Id_gen.next (); v }

  let bloom_bit id = 1 lsl (id land 62)

  let redo_find : type a. tx -> a tvar -> a option =
   fun tx tv ->
    if tx.bloom land bloom_bit tv.id = 0 then None
    else begin
      let n = Util.Vec.length tx.redo in
      let rec go i =
        if i >= n then None
        else
          match Util.Vec.get tx.redo i with
          | R e when e.tv.id = tv.id -> Some (Obj.magic e.nv)
          | R _ -> go (i + 1)
      in
      go 0
    end

  let redo_put tx tv nv =
    let n = Util.Vec.length tx.redo in
    let rec update i =
      if i >= n then Util.Vec.push tx.redo (R { tv; nv })
      else
        match Util.Vec.get tx.redo i with
        | R e when e.tv.id = tv.id -> e.nv <- Obj.magic nv
        | R _ -> update (i + 1)
    in
    if tx.bloom land bloom_bit tv.id = 0 then begin
      Util.Vec.push tx.redo (R { tv; nv });
      tx.bloom <- tx.bloom lor bloom_bit tv.id
    end
    else update 0

  let read tx tv =
    match redo_find tx tv with
    | Some v -> v
    | None ->
        let t = Util.Once.get table in
        let w = Rwl_sf.lock_index t tv.id in
        if Rwl_sf.holds_read t tx.ctx w || Rwl_sf.holds_write t tx.ctx w then
          tv.v
        else if Rwl_sf.try_or_wait_read_lock t tx.ctx w then begin
          Util.Vec.push tx.rset w;
          tv.v
        end
        else begin
          tx.abort_reason <-
            (if tx.ctx.deadline_hit then Obs.Events.Deadline
             else Obs.Events.Read_lock_conflict);
          raise Restart
        end

  let acquire_write_lock tx tv =
    let t = Util.Once.get table in
    let w = Rwl_sf.lock_index t tv.id in
    let held = Rwl_sf.holds_write t tx.ctx w in
    if held || Rwl_sf.try_or_wait_write_lock t tx.ctx w then begin
      if not held then Util.Vec.push tx.wset w;
      true
    end
    else begin
      tx.abort_reason <-
        (if tx.ctx.deadline_hit then Obs.Events.Deadline
         else if tx.ctx.preempted then Obs.Events.Priority_preemption
         else Obs.Events.Write_lock_conflict);
      false
    end

  let write tx tv nv =
    if P.eager && not (acquire_write_lock tx tv) then raise Restart;
    redo_put tx tv nv

  let release_locks t tx =
    Util.Vec.iter (fun w -> Rwl_sf.write_unlock t tx.ctx w) tx.wset;
    Util.Vec.iter (fun w -> Rwl_sf.read_unlock t tx.ctx w) tx.rset

  let begin_attempt tx =
    Util.Vec.clear tx.rset;
    Util.Vec.clear tx.wset;
    Util.Vec.clear tx.redo;
    tx.bloom <- 0;
    tx.ctx.deadline_hit <- false;
    tx.abort_reason <- Obs.Events.User_restart

  let commit tx =
    let t = Util.Once.get table in
    (* Deferred locking: the expanding phase ends here. *)
    if not P.eager then
      Util.Vec.iter
        (fun (R e) -> if not (acquire_write_lock tx e.tv) then raise Restart)
        tx.redo;
    (* Chaos: delay-only site — all write locks are held and the install
       below must run to completion (there is no undo log to recover a
       partial write-back); [Chaos.point] never raises by contract. *)
    if !Chaos.on then Chaos.point Chaos.Mid_writeback;
    (* Install buffered writes while every lock is held. *)
    Util.Vec.iter (fun (R e) -> e.tv.v <- e.nv) tx.redo;
    release_locks t tx;
    Rwl_sf.clear_announcement t tx.ctx;
    Stm_intf.Stats.commit stats ~tid:tx.ctx.tid

  let abort_cleanup t tx =
    (* No rollback needed: memory was never written.  Just drop locks. *)
    release_locks t tx

  let irrevocable_priority = 1

  let finish_escalation t tx =
    if tx.escalated then begin
      tx.escalated <- false;
      Rwl_sf.zero_mutex_unlock t
    end

  let run tx f =
    tx.restarts <- 0;
    tx.ctx.deadline_ns <- Cm.begin_txn tx.ov;
    let t = Util.Once.get table in
    let telemetry = !Obs.Telemetry.on in
    let txn_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
    let commit_t0 = ref 0 in
    let rec attempt att_t0 =
      begin_attempt tx;
      tx.depth <- 1;
      match
        let v = f tx in
        tx.depth <- 0;
        if !Chaos.on then Chaos.point Chaos.Pre_commit;
        (* Commit-phase start: commit-time locking (deferred mode),
           write-back and release are all attributed to [Commit]. *)
        if telemetry then commit_t0 := Obs.Telemetry.now_ns ();
        commit tx;
        v
      with
      | v ->
          finish_escalation t tx;
          tx.finished_restarts <- tx.restarts;
          if telemetry then
            Obs.Scope.txn_commit obs ~tid:tx.ctx.tid ~txn_t0_ns:txn_t0
              ~att_t0_ns:att_t0 ~commit_t0_ns:!commit_t0 ();
          v
      | exception Restart ->
          tx.depth <- 0;
          abort_cleanup t tx;
          Stm_intf.Stats.abort stats ~tid:tx.ctx.tid;
          if telemetry then begin
            let aborter, lock =
              match tx.abort_reason with
              | Obs.Events.User_restart -> (-1, -1)
              | _ -> (tx.ctx.o_tid, tx.ctx.o_lock)
            in
            Obs.Scope.txn_abort obs ~aborter ~lock ~tid:tx.ctx.tid
              ~att_t0_ns:att_t0 tx.abort_reason
          end;
          tx.restarts <- tx.restarts + 1;
          if tx.escalated then begin
            (* Serial slow path: only a chaos-injected spurious failure
               can abort us; retry unconditionally. *)
            Rwl_sf.wait_for_conflictor t tx.ctx;
            attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
          end
          else begin
            match
              Cm.after_abort ~stm:name ~tid:tx.ctx.tid ~restarts:tx.restarts
                ~st:tx.ov
                ~native_wait:(fun () -> Rwl_sf.wait_for_conflictor t tx.ctx)
                ~cleanup:(fun () -> Rwl_sf.clear_announcement t tx.ctx)
                ~reasons:(fun () ->
                  if telemetry then Obs.Scope.abort_counts obs else [])
            with
            | Cm.Retry ->
                tx.ctx.deadline_ns <- tx.ov.Cm.deadline;
                attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
            | Cm.Escalate ->
                Rwl_sf.clear_announcement t tx.ctx;
                Rwl_sf.zero_mutex_lock t;
                Rwl_sf.announce_priority t tx.ctx irrevocable_priority;
                tx.escalated <- true;
                tx.ctx.deadline_ns <- 0;
                if telemetry then
                  Obs.Scope.event obs ~tid:tx.ctx.tid
                    Obs.Events.Irrevocable_fallback;
                attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
          end
      | exception e ->
          tx.depth <- 0;
          abort_cleanup t tx;
          Rwl_sf.clear_announcement t tx.ctx;
          finish_escalation t tx;
          raise e
    in
    attempt txn_t0

  let atomic ?read_only f =
    ignore read_only;
    let tx = get_tx () in
    if tx.depth > 0 then f tx
    else if !Admission.on then begin
      Admission.enter ();
      match run tx f with
      | v ->
          Admission.leave ();
          v
      | exception e ->
          Admission.leave ();
          raise e
    end
    else run tx f

  let commits () = Stm_intf.Stats.commits stats
  let aborts () = Stm_intf.Stats.aborts stats
  let clock_ops () = Rwl_sf.clock_increments (Util.Once.get table)

  let reset_stats () =
    Stm_intf.Stats.reset stats;
    Rwl_sf.reset_clock_increments (Util.Once.get table);
    Obs.Scope.reset obs

  let last_restarts () = (get_tx ()).finished_restarts
  let leaked_locks () =
    if !configured then Rwl_sf.leaked (Util.Once.get table) else 0
end
