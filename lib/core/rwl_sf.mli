(** The starvation-free scalable reader-writer lock of the paper
    (Algorithms 2 and 3).

    A table of [num_locks] reader-writer locks sharing one distributed
    {!Read_indicator}, one conflict clock and one timestamp-announcement
    array.  Lock acquisition uses the [tryOrWaitLock] API (§2.3): it may
    wait, returns [true] on acquisition, and returns [false] — telling the
    caller to restart its transaction — only when a transaction with a
    lower timestamp (higher priority) holds or awaits the lock.

    Timestamp convention: announced value 0 is [NO_TIMESTAMP] and compares
    as +infinity — a transaction that never met a conflict has the lowest
    priority, so conflicted (timestamped) transactions never restart
    because of it; they wait for it instead.  (The paper's pseudocode
    leaves this case implicit; see DESIGN.md.)  Timestamp 1 is reserved as
    the irrevocable priority (§2.8): the conflict clock starts at 2. *)

type t

type ctx = {
  tid : int;  (** dense thread id of the owner *)
  mutable my_ts : int;
      (** this transaction's timestamp; 0 until the first conflict *)
  mutable o_tid : int;  (** thread that caused the last conflict, or -1 *)
  mutable o_ts : int;
      (** the conflicting thread's announced timestamp at detection time *)
  mutable o_lock : int;
      (** lock index the last conflict (or deadline abandonment) was
          detected on, or -1 — the abort-provenance attribution target
          for conflict cartography (DESIGN.md §13).  Valid until the next
          conflict detection; cleared with the announcement. *)
  mutable preempted : bool;
      (** telemetry detail of the last failed acquisition: [true] when a
          write lock this thread already *held* was taken away by a
          higher-priority transaction (the starvation-freedom mechanism
          firing), [false] for a plain failed acquisition.  Valid until
          the next [try_or_wait_*] call. *)
  mutable deadline_ns : int;
      (** absolute deadline ({!Twoplsf_obs.Telemetry.now_ns} clock) after
          which the wait loops abandon the acquisition; 0 = no deadline.
          Installed by the STM at attempt start (DESIGN.md §11). *)
  mutable deadline_hit : bool;
      (** [true] when the last failed acquisition was abandoned because
          [deadline_ns] expired rather than because of a higher-priority
          conflictor.  Valid until the next [try_or_wait_*] call; the STM
          resets it when translating it into a [Deadline] abort. *)
}
(** Per-transaction conflict state — the paper's thread-locals [tl_myTS],
    [tl_otid], [tl_oTS].  Owned by one thread, embedded in its STM
    transaction descriptor. *)

val create : ?num_locks:int -> unit -> t
(** Build a lock table.  [num_locks] (default 65536) must be a power of two
    and a multiple of 32. *)

val make_ctx : tid:int -> ctx
val num_locks : t -> int

val set_obs : t -> Twoplsf_obs.Scope.t -> unit
(** Attach a telemetry scope: when {!Twoplsf_obs.Telemetry.on} is set, the
    lock paths record fast/waited outcomes, wait-duration and
    spin-iteration histograms, priority announcements and (when tracing)
    lock-wait spans into it.  Call once at start-up, before worker domains
    touch the table; with no scope attached instrumentation is skipped.
    When wait-registry publication ({!Twoplsf_obs.Wait_registry.on}) is
    already enabled, also registers the table for watchdog introspection
    under the scope's name (see {!watch}). *)

val watch : ?name:string -> t -> unit
(** Register this table with {!Twoplsf_obs.Waitsfor} so the watchdog can
    inspect its locks; the slow paths then publish their waits into the
    {!Twoplsf_obs.Wait_registry} whenever publication is on.  Idempotent.
    [name] defaults to the attached scope's name.  Registered tables are
    retained for the process lifetime — the watchdog holds their
    introspection closures. *)

val inspect : t -> int -> Twoplsf_obs.Waitsfor.lock_view
(** Racy read-only view of lock [w]: current write holder (with its
    announced timestamp) and read-indicator population.  The fields may
    belong to slightly different instants; sound for the watchdog's
    debounced detection, never for synchronization decisions. *)

val clock_value : t -> int
(** Current conflict-clock value (racy read; for the watchdog and tests). *)

val lock_index : t -> int -> int
(** Hash a tvar id onto a lock index ([addr2lockIdx]). *)

val try_or_wait_read_lock : t -> ctx -> int -> bool
(** Acquire the read side of lock [w] (Algorithm 2, lines 51–69).  [false]
    means: a lower-timestamp writer owns the lock; the caller must restart
    ([ctx.o_tid]/[ctx.o_ts] identify whom to wait for before retrying). *)

val try_or_wait_write_lock : t -> ctx -> int -> bool
(** Acquire the write side of lock [w] (lines 76–106), upgrading a read
    lock held by this thread if any.  Re-entrant: returns [true]
    immediately if this thread already holds the write lock (callers must
    not double-log the lock for release).  [false] as for reads. *)

val read_unlock : t -> ctx -> int -> unit
(** Release the read side (clear this thread's indicator bit). *)

val write_unlock : t -> ctx -> int -> unit
(** Release the write side (store UNLOCKED). *)

val holds_read : t -> ctx -> int -> bool
val holds_write : t -> ctx -> int -> bool

val take_timestamp : t -> ctx -> unit
(** Draw a timestamp from the conflict clock and announce it, if the
    transaction does not have one yet.  Called internally on first
    conflict; exposed for the wait-or-die ablation and tests. *)

val announce_priority : t -> ctx -> int -> unit
(** Force-announce a specific timestamp (used by irrevocable transactions,
    which announce the reserved priority 1). *)

val clear_announcement : t -> ctx -> unit
(** Commit-time epilogue: forget the timestamp and clear the announcement
    slot (lines 31–32), releasing any transaction waiting on it. *)

val wait_for_conflictor : t -> ctx -> unit
(** Before re-attempting a restarted transaction, wait until the
    transaction that caused the conflict has committed (line 26: spin while
    its announcement still equals the timestamp we observed).  Bounded by
    [ctx.deadline_ns] when a deadline is installed. *)

val deadline_blown : ctx -> bool
(** Whether [ctx.deadline_ns] is set and in the past.  One load plus a
    predicted branch when no deadline is installed. *)

val announced : t -> int -> int
(** Raw announced timestamp of a thread (0 = none); for tests. *)

val zero_mutex_lock : t -> unit
(** The §2.8 "zero mutex": serializes irrevocable write transactions. *)

val zero_mutex_unlock : t -> unit

val leaked : t -> int
(** Post-run lock sweep: how many locks are still held — non-zero write
    words plus locks whose read indicator has any bit set (scanned to the
    tid high-water mark).  Zero once every transaction has committed or
    aborted; the chaos harness asserts this after each soak.  Racy, so
    only meaningful in quiescence. *)

val clock_increments : t -> int
(** How many timestamps have been drawn from the conflict clock (= central
    clock increments): in 2PLSF this happens only on conflicts, which is
    the paper's §3.3 scalability argument against per-transaction clocks. *)

val reset_clock_increments : t -> unit
