(* CRC-32 (ISO 3309 / zlib polynomial 0xEDB88320), table-driven.  The
   build deliberately has no compression/checksum dependency, so the WAL
   record format (DESIGN.md §15) carries its own implementation.  One
   256-entry table computed at module init; [update] streams, [bytes]
   one-shots.  Values are the standard reflected CRC-32, i.e. identical
   to zlib's crc32() — a record written here can be checked with any
   off-the-shelf tool. *)

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc b ~pos ~len =
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let bytes ?(pos = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - pos in
  update 0 b ~pos ~len

let string s = bytes (Bytes.unsafe_of_string s)
