type t = { mutable s : int64 }

let create seed = { s = Int64.of_int seed }

let next t =
  t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
  let z = t.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash4 a b c d =
  let absorb z x = mix64 (Int64.add (Int64.logxor z (Int64.of_int x)) golden) in
  let z = mix64 (Int64.add (Int64.of_int a) golden) in
  let z = absorb z b in
  let z = absorb z c in
  let z = absorb z d in
  Int64.to_int (mix64 z) land max_int

let int t n =
  assert (n > 0);
  let v = Int64.to_int (next t) land max_int in
  v mod n

let float t =
  let v = Int64.to_int (next t) land max_int in
  float_of_int v /. float_of_int max_int

let bool t = Int64.logand (next t) 1L = 1L
