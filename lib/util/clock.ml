external now_ns : unit -> int = "twoplsf_clock_monotonic_ns" [@@noalloc]

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
