let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (acc /. float_of_int n)
  end

let nearest_rank sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  let idx = Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)) in
  sorted.(idx)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  nearest_rank sorted p

let percentiles_in_place xs ps =
  if Array.length xs = 0 then invalid_arg "Stats.percentiles_in_place: empty sample";
  Array.sort compare xs;
  List.map (fun p -> (p, nearest_rank xs p)) ps

let max xs =
  if Array.length xs = 0 then invalid_arg "Stats.max: empty sample";
  Array.fold_left Stdlib.max neg_infinity xs
