(** Summary statistics for benchmark results.

    Used by the latency benchmark (Figure 10) to compute P90/P99/max of
    per-transaction durations and by every throughput harness to aggregate
    run results. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for arrays shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100]: nearest-rank percentile of the
    sample.  The input need not be sorted (a sorted copy is made).
    @raise Invalid_argument on an empty array. *)

val percentiles_in_place : float array -> float list -> (float * float) list
(** Sort [xs] in place once, then report each requested percentile as a
    [(p, value)] pair.  Cheaper than repeated {!percentile} calls on large
    latency samples. *)

val max : float array -> float
(** Largest sample (correct for all-negative samples too).
    @raise Invalid_argument on an empty array, like {!percentile}. *)
