(** Clocks: a monotonic nanosecond source for interval measurement and a
    wall clock for timestamps meant to be human- or tooling-readable. *)

val now_ns : unit -> int
(** Monotonic nanoseconds ([clock_gettime(CLOCK_MONOTONIC)] via a noalloc
    C stub).  The epoch is arbitrary (boot time on Linux); only
    differences are meaningful.  Never steps backwards, so telemetry
    phase deltas cannot go negative across NTP adjustments. *)

val now : unit -> float
(** Wall-clock seconds since the epoch, microsecond resolution
    ([Unix.gettimeofday]).  Use only for metadata (trace export, artifact
    creation time) — use {!now_ns} for intervals. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed seconds. *)
