(** SplitMix64 pseudo-random number generator.

    A small, fast, statistically solid PRNG used by every workload
    generator in the repository.  Each worker thread owns its own state, so
    random-number generation never synchronizes between threads (exactly as
    in the paper's C++ harness). *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Distinct seeds
    give independent streams for practical purposes. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n).  Requires [n > 0]. *)

val float : t -> float
(** Uniform draw from [0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val hash4 : int -> int -> int -> int -> int
(** Stateless SplitMix64-finalizer hash of four integers to a
    non-negative [int].  Unlike {!next}, the result depends only on the
    arguments — no stream state — so callers can derive draws that are a
    pure function of a key tuple (e.g. the chaos layer's
    [(seed, tid, site, step)] fault decisions). *)
