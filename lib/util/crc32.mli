(** CRC-32 (zlib polynomial, reflected) for the WAL record format
    (DESIGN.md §15).  Matches zlib's [crc32()] bit-for-bit. *)

val update : int -> Bytes.t -> pos:int -> len:int -> int
(** [update crc b ~pos ~len] extends a running checksum (start from 0). *)

val bytes : ?pos:int -> ?len:int -> Bytes.t -> int
(** One-shot checksum of a byte range (defaults: the whole buffer). *)

val string : string -> int
