/* Monotonic nanosecond clock for telemetry timestamps.
 *
 * CLOCK_MONOTONIC never steps backwards (NTP slews it but cannot jump
 * it), so phase deltas computed from two reads are always >= 0 — the
 * property the latency-decomposition accounting depends on.  The value
 * fits OCaml's 63-bit int for ~146 years of uptime, so Val_long is safe
 * and the stub can be [@@noalloc].
 */
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value twoplsf_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
