(** SPSC ring of encoded commit records: worker (producer, inside its
    commit window) → log-writer domain (consumer).  Plain cell fields
    published/retired through atomic [tail]/[head] stores, per the OCaml
    memory model. *)

type t

val create : capacity:int -> t
(** Capacity is rounded up to a power of two. *)

val capacity : t -> int

val push : t -> lsn:int -> Bytes.t -> unit
(** Producer: publish one record.  Spins while the ring is full (the
    consumer drains unconditionally, so the wait is bounded). *)

val peek_lsn : t -> int
(** Consumer: LSN of the head record, or [-1] when empty.  Lets the
    writer merge rings in LSN order without consuming. *)

val pop : t -> (int * Bytes.t) option
(** Consumer: take the head record. *)

val is_empty : t -> bool
