(* Storage-fault VFS — see wal_io.mli and DESIGN.md §16. *)

exception
  Io_error of {
    op : string;
    path : string;
    error : Unix.error;
    transient : bool;
  }

let () =
  Printexc.register_printer (function
    | Io_error e ->
        Some
          (Printf.sprintf "Wal_io.Io_error(%s %s: %s%s)" e.op e.path
             (Unix.error_message e.error)
             (if e.transient then ", transient" else ""))
    | _ -> None)

type file = {
  f_path : string;
  f_write : Bytes.t -> pos:int -> len:int -> int;
  f_read : Bytes.t -> pos:int -> len:int -> int;
  f_size : unit -> int;
  f_truncate : int -> unit;
  f_fsync : unit -> unit;
  f_close : unit -> unit;
}

type t = {
  io_name : string;
  io_mkdir : string -> unit;
  io_readdir : string -> string array;
  io_exists : string -> bool;
  io_create : string -> file;
  io_open_ro : string -> file;
  io_open_rw : string -> file;
  io_rename : string -> string -> unit;
  io_unlink : string -> unit;
  io_fsync_dir : string -> unit;
  io_metrics : unit -> (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* Passthrough                                                         *)
(* ------------------------------------------------------------------ *)

let unix_file path fd =
  {
    f_path = path;
    f_write = (fun b ~pos ~len -> Unix.write fd b pos len);
    f_read = (fun b ~pos ~len -> Unix.read fd b pos len);
    f_size = (fun () -> (Unix.fstat fd).st_size);
    f_truncate = (fun n -> Unix.ftruncate fd n);
    f_fsync = (fun () -> Unix.fsync fd);
    f_close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
  }

let passthrough =
  {
    io_name = "passthrough";
    io_mkdir =
      (fun dir ->
        try Unix.mkdir dir 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    io_readdir =
      (fun dir ->
        try Sys.readdir dir with Sys_error _ -> [||]);
    io_exists = (fun path -> Sys.file_exists path);
    io_create =
      (fun path ->
        unix_file path
          (Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644));
    io_open_ro = (fun path -> unix_file path (Unix.openfile path [ Unix.O_RDONLY ] 0));
    io_open_rw = (fun path -> unix_file path (Unix.openfile path [ Unix.O_RDWR ] 0o644));
    io_rename = (fun a b -> Unix.rename a b);
    io_unlink =
      (fun path ->
        try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    io_fsync_dir =
      (fun dir ->
        match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
        | fd ->
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with _ -> ())
              (fun () ->
                try Unix.fsync fd
                with
                | Unix.Unix_error
                    ((Unix.EINVAL | Unix.EOPNOTSUPP | Unix.ENOSYS), _, _) ->
                  (* filesystem cannot sync a directory handle: nothing
                     better is possible.  Anything else — notably EIO —
                     propagates. *)
                  ()));
    io_metrics = (fun () -> []);
  }

let write_string file s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let n = file.f_write b ~pos:!pos ~len:(len - !pos) in
    pos := !pos + n
  done

let read_file io path =
  let f = io.io_open_ro path in
  Fun.protect
    ~finally:(fun () -> f.f_close ())
    (fun () ->
      let size = f.f_size () in
      let buf = Bytes.create size in
      let pos = ref 0 in
      let eof = ref false in
      while (not !eof) && !pos < size do
        let n = f.f_read buf ~pos:!pos ~len:(size - !pos) in
        if n = 0 then eof := true else pos := !pos + n
      done;
      if !pos = size then buf else Bytes.sub buf 0 !pos)

(* ------------------------------------------------------------------ *)
(* Seeded fault injection                                              *)
(* ------------------------------------------------------------------ *)

type fault_config = {
  fseed : int;
  write_eio_ppm : int;
  write_enospc_ppm : int;
  write_short_ppm : int;
  fsync_fail_ppm : int;
  meta_eio_ppm : int;
  permanent_ppm : int;
  enospc_after_bytes : int;
}

let fault_config ?(write_eio_ppm = 0) ?(write_enospc_ppm = 0)
    ?(write_short_ppm = 0) ?(fsync_fail_ppm = 0) ?(meta_eio_ppm = 0)
    ?(permanent_ppm = 0) ?(enospc_after_bytes = 0) ~seed () =
  {
    fseed = seed;
    write_eio_ppm;
    write_enospc_ppm;
    write_short_ppm;
    fsync_fail_ppm;
    meta_eio_ppm;
    permanent_ppm;
    enospc_after_bytes;
  }

(* Fault classes: each has its own step counter so decisions are
   reproducible per (seed, class, step) regardless of interleaving with
   other classes. *)
let c_eio = 1
and c_enospc = 2
and c_short = 3
and c_fsync = 4
and c_meta = 5
and c_perm = 6
and c_shortlen = 7

type inj = {
  cfg : fault_config;
  steps : int Atomic.t array;  (* per-class draw counters *)
  hits : int Atomic.t array;  (* per-class injection counters *)
  dead : bool Atomic.t;  (* permanent device failure *)
  full : bool Atomic.t;  (* capacity exhausted (persistent ENOSPC) *)
  written : int Atomic.t;  (* cumulative bytes for the capacity model *)
  ops_write : int Atomic.t;
  ops_fsync : int Atomic.t;
}

let draw inj cls ppm =
  if ppm <= 0 then false
  else begin
    let step = Atomic.fetch_and_add inj.steps.(cls) 1 in
    let h = Util.Sprng.hash4 inj.cfg.fseed cls step 0 in
    (h land max_int) mod 1_000_000 < ppm
  end

let hit inj cls = Atomic.incr inj.hits.(cls)

let fail ~op ~path ~error ~transient =
  raise (Io_error { op; path; error; transient })

let check_dead inj ~op ~path =
  if Atomic.get inj.dead then fail ~op ~path ~error:Unix.EIO ~transient:false

(* An injected EIO is permanent with probability permanent_ppm; a
   permanent hit kills the device for every later mutating op. *)
let inject_eio inj ~op ~path =
  hit inj c_eio;
  if draw inj c_perm inj.cfg.permanent_ppm then begin
    hit inj c_perm;
    Atomic.set inj.dead true;
    fail ~op ~path ~error:Unix.EIO ~transient:false
  end
  else fail ~op ~path ~error:Unix.EIO ~transient:true

let meta_gate inj ~op ~path =
  check_dead inj ~op ~path;
  if draw inj c_meta inj.cfg.meta_eio_ppm then begin
    hit inj c_meta;
    inject_eio inj ~op ~path
  end

let faulty_file inj base =
  (* Track the sequential append position and the length at the last
     successful fsync, so an injected fsync failure can physically drop
     the unflushed suffix (fsyncgate: the pages are gone, not pending). *)
  let logical = ref (base.f_size ()) in
  let synced = ref !logical in
  let path = base.f_path in
  {
    base with
    f_write =
      (fun b ~pos ~len ->
        Atomic.incr inj.ops_write;
        check_dead inj ~op:"write" ~path;
        if Atomic.get inj.full then
          fail ~op:"write" ~path ~error:Unix.ENOSPC ~transient:false;
        if draw inj c_eio inj.cfg.write_eio_ppm then
          inject_eio inj ~op:"write" ~path;
        if draw inj c_enospc inj.cfg.write_enospc_ppm then begin
          hit inj c_enospc;
          fail ~op:"write" ~path ~error:Unix.ENOSPC ~transient:true
        end;
        let len =
          if len > 1 && draw inj c_short inj.cfg.write_short_ppm then begin
            hit inj c_short;
            let h =
              Util.Sprng.hash4 inj.cfg.fseed c_shortlen
                (Atomic.fetch_and_add inj.steps.(c_shortlen) 1)
                0
            in
            1 + ((h land max_int) mod (len - 1))
          end
          else len
        in
        let cap = inj.cfg.enospc_after_bytes in
        if cap > 0 && Atomic.get inj.written >= cap then begin
          Atomic.set inj.full true;
          hit inj c_enospc;
          fail ~op:"write" ~path ~error:Unix.ENOSPC ~transient:false
        end;
        let n = base.f_write b ~pos ~len in
        ignore (Atomic.fetch_and_add inj.written n);
        logical := !logical + n;
        n);
    f_fsync =
      (fun () ->
        Atomic.incr inj.ops_fsync;
        check_dead inj ~op:"fsync" ~path;
        if draw inj c_fsync inj.cfg.fsync_fail_ppm then begin
          hit inj c_fsync;
          (* The unflushed pages are lost, not retriable.  Truncate the
             underlying file back to its last durable length so no later
             call can quietly resurrect them. *)
          (try
             base.f_truncate !synced;
             logical := !synced
           with _ -> ());
          fail ~op:"fsync" ~path ~error:Unix.EIO ~transient:false
        end;
        base.f_fsync ();
        synced := !logical);
    f_truncate =
      (fun n ->
        check_dead inj ~op:"truncate" ~path;
        base.f_truncate n;
        logical := n;
        if !synced > n then synced := n);
  }

let faulty cfg base =
  let inj =
    {
      cfg;
      steps = Array.init 8 (fun _ -> Atomic.make 0);
      hits = Array.init 8 (fun _ -> Atomic.make 0);
      dead = Atomic.make false;
      full = Atomic.make false;
      written = Atomic.make 0;
      ops_write = Atomic.make 0;
      ops_fsync = Atomic.make 0;
    }
  in
  {
    io_name = Printf.sprintf "faulty(seed=%d, %s)" cfg.fseed base.io_name;
    io_mkdir = base.io_mkdir;
    io_readdir = base.io_readdir;
    io_exists = base.io_exists;
    io_create =
      (fun path ->
        meta_gate inj ~op:"create" ~path;
        faulty_file inj (base.io_create path));
    io_open_ro = base.io_open_ro;  (* reads keep serving on a dead device *)
    io_open_rw =
      (fun path ->
        meta_gate inj ~op:"open" ~path;
        faulty_file inj (base.io_open_rw path));
    io_rename =
      (fun a b ->
        meta_gate inj ~op:"rename" ~path:a;
        base.io_rename a b);
    io_unlink =
      (fun path ->
        meta_gate inj ~op:"unlink" ~path;
        base.io_unlink path);
    io_fsync_dir =
      (fun dir ->
        Atomic.incr inj.ops_fsync;
        check_dead inj ~op:"fsync_dir" ~path:dir;
        if draw inj c_fsync inj.cfg.fsync_fail_ppm then begin
          hit inj c_fsync;
          fail ~op:"fsync_dir" ~path:dir ~error:Unix.EIO ~transient:false
        end;
        base.io_fsync_dir dir);
    io_metrics =
      (fun () ->
        [
          ("ops_write", Atomic.get inj.ops_write);
          ("ops_fsync", Atomic.get inj.ops_fsync);
          ("injected_eio", Atomic.get inj.hits.(c_eio));
          ("injected_enospc", Atomic.get inj.hits.(c_enospc));
          ("injected_short_write", Atomic.get inj.hits.(c_short));
          ("injected_fsync_fail", Atomic.get inj.hits.(c_fsync));
          ("injected_meta_eio", Atomic.get inj.hits.(c_meta));
          ("device_dead", if Atomic.get inj.dead then 1 else 0);
          ("device_full", if Atomic.get inj.full then 1 else 0);
        ]
        @ base.io_metrics ());
  }
