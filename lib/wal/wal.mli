(** Per-table write-ahead redo log: group commit, fuzzy checkpoints,
    crash recovery (DESIGN.md §15), storage-fault tolerance (§16).

    Workers append CRC-sealed, LSN-stamped commit records from inside
    the 2PLSF commit window (all write-locks held, so LSN order agrees
    with per-row serialization order); a dedicated log-writer domain
    merges per-worker rings and flushes the contiguous LSN prefix with
    coalesced fsyncs.  [flushed_lsn >= my_lsn] is therefore a sound
    durability acknowledgement: nothing with a smaller LSN can be
    missing from the log.

    Durability contract: a transaction is durable iff {!wait_durable}
    returned for its LSN.  Transactions still buffered at a crash were
    never acknowledged and may be lost — never partially applied.

    Failure contract: every byte moves through the {!Wal_io.t} given at
    {!config} time.  Transient errors are retried with capped backoff;
    a permanent error or {e any} fsync failure (fsyncgate: the unflushed
    pages may be gone, retrying would lie) poisons the log — the
    durability watermark freezes, {!wait_durable}, {!log_commit} and
    {!checkpoint} raise {!Degraded}, and no unsynced commit is ever
    acknowledged.  Reads are unaffected; the engine above is expected
    to degrade to read-only service. *)

type sync_mode =
  | Sync_fsync  (** fsync every batch: the durability ack means disk *)
  | Sync_none  (** no fsync (tests / measuring the logging overhead alone) *)

type config = {
  dir : string;
  sync : sync_mode;
  ring_cap : int;  (** per-worker ring capacity (rounded up to 2^k) *)
  ckpt_every_bytes : int;  (** auto-checkpoint threshold; 0 = manual only *)
  io : Wal_io.t;  (** the storage stack; {!Wal_io.passthrough} by default *)
}

val config :
  ?sync:sync_mode ->
  ?ring_cap:int ->
  ?ckpt_every_bytes:int ->
  ?io:Wal_io.t ->
  dir:string ->
  unit ->
  config

(** How the WAL reads and writes the table it protects.  [read_row]
    returns the live backing bytes of a row (no copy); [write_row]
    overwrites a row (recovery only). *)
type store = {
  table_id : int;
  num_rows : int;
  row_len : int;
  read_row : int -> Bytes.t;
  write_row : int -> Bytes.t -> unit;
}

type t

exception Degraded of string
(** The log device has failed permanently (or an fsync failed, which is
    treated the same).  Raised by {!log_commit}, {!wait_durable} and
    {!checkpoint}; the payload is the first failure's description.
    {!log_commit} raises it {e before} drawing an LSN or touching any
    mark, so the caller can roll back and abort the transaction with a
    typed read-only reason. *)

val create : ?next_lsn:int -> config -> store -> t
(** Open the log directory (creating it if needed), start a fresh
    segment, and spawn the log-writer domain.  After a recovery, pass
    [~next_lsn:(r.r_next_lsn)] so LSNs keep ascending.  Raises
    {!Wal_io.Io_error} / [Unix.Unix_error] if the device refuses the
    initial open — the log never starts. *)

val stop : t -> unit
(** Drain everything, final fsync, join the writer domain.  Call after
    all workers have finished (a drawn-but-unpublished LSN would stall
    the drain).  Never raises on a poisoned log: the failure is already
    recorded in {!degraded} / {!metrics}. *)

val degraded : t -> string option
(** [Some reason] once the log is poisoned.  Monotone: never returns to
    [None]. *)

(** {2 Commit-window API — caller holds the row's write lock} *)

val mark_dirty : t -> rid:int -> unit
(** Open the row's seqlock window (before the first in-place write).
    Idempotent within a transaction. *)

val mark_undo : t -> rid:int -> unit
(** Close the window after a rollback has restored the pre-image.
    Idempotent; must run {e after} the undo blit. *)

val log_commit : t -> tid:int -> n:int -> rid:(int -> int) -> int
(** Draw the commit LSN, stamp every written row ([rid 0..n-1]) with
    it, seal the redo record (full after-images read through the
    store), and publish it to worker [tid]'s ring.  Returns the LSN.
    Must run while all the transaction's write locks are held: the
    fetch-and-add under the locks is what aligns LSN order with the
    serialization order.
    @raise Degraded on a poisoned log, before any mutation. *)

val wait_durable : t -> lsn:int -> unit
(** Block until the record with [lsn] (and every record below it) is
    flushed.  Call {e after} releasing locks — holding locks across an
    fsync would serialize the whole commit pipeline.
    @raise Degraded if the log is poisoned before [lsn] became durable
    (returns normally if [lsn] was already flushed — durability
    established before the failure still stands). *)

val flushed_lsn : t -> int

val checkpoint : t -> unit
(** Request a fuzzy checkpoint and wait for it to complete: rotate the
    segment, seqlock-copy every row with its committed LSN, atomically
    install the image, delete the old segments.  Concurrent commits are
    not blocked.  Must not be called after {!stop}.
    @raise Degraded if the log is (or becomes) poisoned. *)

val metrics : t -> (string * int) list
(** Monotone counters and gauges for the [twoplsf_wal_*] OpenMetrics
    families: records, batches, fsyncs, bytes, checkpoints,
    flushed_lsn, next_lsn, last_checkpoint_lsn, io_retries,
    io_fsync_failures, degraded — plus every counter the configured
    {!Wal_io.t} reports, prefixed [io_] (the [twoplsf_wal_io_*]
    families). *)

(** {2 Recovery} *)

exception Corrupt of string
(** Raised (by {!recover} and the image readers) on damage that cannot
    be a legal crash state: checksum or geometry violations in the
    checkpoint image, a bad record in a non-final segment — or, under
    [~strict:true], a bad record in the final segment with valid
    records after it. *)

type recovery = {
  r_image_lsn : int;  (** end LSN of the checkpoint image, 0 if none *)
  r_max_lsn : int;  (** highest LSN seen in the log *)
  r_next_lsn : int;  (** resume point for [create ~next_lsn] *)
  r_records : int;
  r_replayed : int;  (** row writes applied *)
  r_skipped : int;  (** row writes at or below the per-row high-water mark *)
  r_torn_tail : bool;
  r_truncated_bytes : int;
  r_suspect_records : int;
      (** structurally valid records found {e after} the first damage in
          the final segment and discarded by the truncation — evidence
          of sector reordering in the unsynced tail (0 under a pure
          tear).  None of them were ever acknowledged (the contiguous
          prefix ends at the damage), so dropping them is safe; a
          nonzero count still marks the recovery as degraded. *)
  r_tmp_discarded : bool;
      (** a leftover [checkpoint.tmp] (interrupted checkpoint) was
          discarded *)
  r_segments : int;
}

val recover : ?io:Wal_io.t -> ?strict:bool -> dir:string -> store -> recovery
(** Rebuild the table: load the checkpoint image (CRC-validated) as the
    base and per-row replay high-water marks, then replay every segment
    in order, applying a row write iff its LSN exceeds the row's mark —
    replay is idempotent, so recovering twice equals recovering once.

    Damage in the {e final} segment truncates the file at the last good
    record and recovery succeeds; valid records found beyond the damage
    are counted in [r_suspect_records] (legal under sector reordering
    of the unsynced tail, since nothing past the contiguous flushed
    prefix was ever acknowledged).  With [~strict:true] — appropriate
    when the log was written on a device whose page cache survived the
    crash, e.g. a process kill — valid-after-damage raises {!Corrupt}
    instead.  Damage anywhere else always raises {!Corrupt}.  An
    interrupted checkpoint ([checkpoint.tmp]) is discarded and flagged. *)

(** {2 Introspection (walinspect)} *)

val segments : ?io:Wal_io.t -> dir:string -> unit -> (int * string) list
(** Segment files in the directory, [(sequence, path)], ascending. *)

type image_info = {
  i_table_id : int;
  i_num_rows : int;
  i_row_len : int;
  i_start_lsn : int;
  i_end_lsn : int;
}

val read_image_info : ?io:Wal_io.t -> dir:string -> unit -> image_info option
(** Validate the checkpoint image (magic, version, geometry, CRC) and
    return its header; [None] if no image exists.
    @raise Corrupt on a damaged image. *)
