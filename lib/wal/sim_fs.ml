(* Simulated block device with pending-write buffering and seeded crash
   materialization — see sim_fs.mli and DESIGN.md §16. *)

let sector = 512

type sfile = {
  mutable synced : Bytes.t;  (* durable content, survives any crash *)
  mutable pending : (int * Bytes.t) list;  (* newest first: (offset, data) *)
}

(* Namespace operations buffered until io_fsync_dir. *)
type dop = D_create of string * sfile | D_rename of string * string | D_unlink of string

type t = {
  mu : Mutex.t;
  live : (string, sfile) Hashtbl.t;  (* what the application sees *)
  mutable synced_ns : (string * sfile) list;  (* namespace at last dir fsync *)
  mutable dops : dop list;  (* newest first *)
  mutable dirs : string list;
}

let create () =
  {
    mu = Mutex.create ();
    live = Hashtbl.create 16;
    synced_ns = [];
    dops = [];
    dirs = [];
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let file_size sf =
  List.fold_left
    (fun acc (off, d) -> max acc (off + Bytes.length d))
    (Bytes.length sf.synced) sf.pending

(* Durable content with every pending write applied, oldest first. *)
let live_content sf =
  let size = file_size sf in
  let buf = Bytes.make size '\000' in
  Bytes.blit sf.synced 0 buf 0 (Bytes.length sf.synced);
  List.iter
    (fun (off, d) -> Bytes.blit d 0 buf off (Bytes.length d))
    (List.rev sf.pending);
  buf

let fsync_file sf =
  if sf.pending <> [] then begin
    sf.synced <- live_content sf;
    sf.pending <- []
  end

let enoent op path = raise (Unix.Unix_error (Unix.ENOENT, op, path))

let find t op path =
  match Hashtbl.find_opt t.live path with
  | Some sf -> sf
  | None -> enoent op path

let mk_file t path sf ~writable =
  let rpos = ref 0 in
  {
    Wal_io.f_path = path;
    f_write =
      (fun b ~pos ~len ->
        if not writable then
          raise (Unix.Unix_error (Unix.EBADF, "write", path));
        locked t (fun () ->
            sf.pending <- (file_size sf, Bytes.sub b pos len) :: sf.pending);
        len);
    f_read =
      (fun b ~pos ~len ->
        locked t (fun () ->
            let content = live_content sf in
            let avail = Bytes.length content - !rpos in
            let n = max 0 (min len avail) in
            Bytes.blit content !rpos b pos n;
            rpos := !rpos + n;
            n));
    f_size = (fun () -> locked t (fun () -> file_size sf));
    f_truncate =
      (fun n ->
        (* Recovery truncates then fsyncs; model the pair as settled. *)
        locked t (fun () ->
            let content = live_content sf in
            let clipped = Bytes.make n '\000' in
            Bytes.blit content 0 clipped 0 (min n (Bytes.length content));
            sf.synced <- clipped;
            sf.pending <- []));
    f_fsync = (fun () -> locked t (fun () -> fsync_file sf));
    f_close = (fun () -> ());
  }

let io t =
  {
    Wal_io.io_name = "sim";
    io_mkdir =
      (fun dir ->
        locked t (fun () ->
            if not (List.mem dir t.dirs) then t.dirs <- dir :: t.dirs));
    io_readdir =
      (fun dir ->
        locked t (fun () ->
            Hashtbl.fold
              (fun path _ acc ->
                if Filename.dirname path = dir then
                  Filename.basename path :: acc
                else acc)
              t.live []
            |> Array.of_list));
    io_exists =
      (fun path ->
        locked t (fun () -> Hashtbl.mem t.live path || List.mem path t.dirs));
    io_create =
      (fun path ->
        locked t (fun () ->
            (* O_TRUNC: a fresh object.  The synced namespace may still
               bind the old one — a dropped create reveals it. *)
            let sf = { synced = Bytes.create 0; pending = [] } in
            Hashtbl.replace t.live path sf;
            t.dops <- D_create (path, sf) :: t.dops;
            mk_file t path sf ~writable:true));
    io_open_ro =
      (fun path ->
        locked t (fun () -> mk_file t path (find t "open" path) ~writable:false));
    io_open_rw =
      (fun path ->
        locked t (fun () -> mk_file t path (find t "open" path) ~writable:true));
    io_rename =
      (fun a b ->
        locked t (fun () ->
            let sf = find t "rename" a in
            Hashtbl.remove t.live a;
            Hashtbl.replace t.live b sf;
            t.dops <- D_rename (a, b) :: t.dops));
    io_unlink =
      (fun path ->
        locked t (fun () ->
            if Hashtbl.mem t.live path then begin
              Hashtbl.remove t.live path;
              t.dops <- D_unlink path :: t.dops
            end));
    io_fsync_dir =
      (fun _dir ->
        locked t (fun () ->
            t.synced_ns <-
              Hashtbl.fold (fun p sf acc -> (p, sf) :: acc) t.live [];
            t.dops <- []));
    io_metrics = (fun () -> []);
  }

(* Identity-preserving deep copy: the same sfile reachable from both the
   live table and the synced namespace (or a dop) must map to the same
   copy. *)
let copy_with_map () =
  let map = ref [] in
  fun sf ->
    match List.assq_opt sf !map with
    | Some c -> c
    | None ->
        let c = { synced = Bytes.copy sf.synced; pending = sf.pending } in
        (* pending pairs are immutable once consed; sharing the list is
           safe because only the head field mutates *)
        map := (sf, c) :: !map;
        c

let snapshot t =
  locked t (fun () ->
      let cp = copy_with_map () in
      let live = Hashtbl.create (Hashtbl.length t.live) in
      Hashtbl.iter (fun p sf -> Hashtbl.replace live p (cp sf)) t.live;
      {
        mu = Mutex.create ();
        live;
        synced_ns = List.map (fun (p, sf) -> (p, cp sf)) t.synced_ns;
        dops =
          List.map
            (function
              | D_create (p, sf) -> D_create (p, cp sf)
              | (D_rename _ | D_unlink _) as d -> d)
            t.dops;
        dirs = t.dirs;
      })

let coin ~seed ~salt ~a ~b = Util.Sprng.hash4 seed salt a b land 1 = 1

(* Materialize one post-crash file: durable content plus an arbitrary
   seeded subset of the pending sectors.  Sector decisions are keyed by
   (seed, path, absolute sector index), so they do not depend on how the
   pending writes were batched. *)
let materialize_file ~seed path sf =
  if sf.pending = [] then { synced = Bytes.copy sf.synced; pending = [] }
  else begin
    let syn = sf.synced in
    let live = live_content sf in
    let slen = Bytes.length syn and llen = Bytes.length live in
    let nsec = (max slen llen + sector - 1) / sector in
    let phash = Hashtbl.hash path in
    let sec_at src len s =
      let b = Bytes.make sector '\000' in
      let off = s * sector in
      if off < len then Bytes.blit src off b 0 (min sector (len - off));
      b
    in
    let kept = Array.make (max nsec 1) false in
    let final_len = ref slen in
    for s = 0 to nsec - 1 do
      let old_sec = sec_at syn slen s and new_sec = sec_at live llen s in
      if not (Bytes.equal old_sec new_sec) && coin ~seed ~salt:phash ~a:s ~b:2
      then begin
        kept.(s) <- true;
        (* kept sector pins the size out to its live extent *)
        final_len := max !final_len (min llen ((s + 1) * sector))
      end
    done;
    let buf = Bytes.make !final_len '\000' in
    Bytes.blit syn 0 buf 0 (min slen !final_len);
    for s = 0 to nsec - 1 do
      if kept.(s) then begin
        let off = s * sector in
        let n = min sector (!final_len - off) in
        if n > 0 then Bytes.blit live off buf off n
      end
    done;
    { synced = buf; pending = [] }
  end

let crash t ~seed =
  let src = snapshot t in
  (* Replay the namespace from the last barrier, keeping or dropping
     each buffered op in issue order. *)
  let ns = Hashtbl.create 16 in
  List.iter (fun (p, sf) -> Hashtbl.replace ns p sf) src.synced_ns;
  List.iteri
    (fun i d ->
      if coin ~seed ~salt:0x0D09 ~a:i ~b:1 then
        match d with
        | D_create (p, sf) -> Hashtbl.replace ns p sf
        | D_rename (a, b) -> (
            match Hashtbl.find_opt ns a with
            | Some sf ->
                Hashtbl.remove ns a;
                Hashtbl.replace ns b sf
            | None -> ())
        | D_unlink p -> Hashtbl.remove ns p)
    (List.rev src.dops);
  let names =
    List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) ns [])
  in
  let cp = copy_with_map () in
  let live = Hashtbl.create 16 in
  List.iter
    (fun p ->
      (* share materializations across aliases via the identity map *)
      let sf = cp (Hashtbl.find ns p) in
      Hashtbl.replace live p sf)
    names;
  Hashtbl.iter
    (fun p sf ->
      let m = materialize_file ~seed p sf in
      sf.synced <- m.synced;
      sf.pending <- [])
    live;
  {
    mu = Mutex.create ();
    live;
    synced_ns = Hashtbl.fold (fun p sf acc -> (p, sf) :: acc) live [];
    dops = [];
    dirs = src.dirs;
  }

let files t =
  locked t (fun () ->
      Hashtbl.fold (fun p sf acc -> (p, file_size sf) :: acc) t.live []
      |> List.sort compare)

let pending_bytes t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ sf acc ->
          acc
          + List.fold_left (fun a (_, d) -> a + Bytes.length d) 0 sf.pending)
        t.live 0)
