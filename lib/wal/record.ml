(* WAL record binary codec (DESIGN.md §15).

   One record per committed transaction, holding the full after-image of
   every row the transaction wrote.  Little-endian throughout:

     offset  size  field
     ------  ----  -----
          0     1  magic (0xA7)
          1     1  record type (1 = txn commit)
          2     2  table id        (u16)
          4     8  LSN             (i64)
         12     2  write count n   (u16)
         14     2  row length      (u16)
         16   n*(4+row_len)  n entries of (row id u32, after-image)
        end-4    4  CRC-32 over bytes [0, end-4)

   The CRC covers header and payload, so a torn or bit-flipped tail is
   detected by the same check.  [decode] never throws on bad input — it
   returns [Error reason] with the record left unconsumed, and the
   caller (recovery, walinspect) decides between "torn tail" and
   "corruption" from context (is anything valid after this offset?). *)

let magic = 0xA7
let type_txn = 1
let header_size = 16
let trailer_size = 4
let entry_size ~row_len = 4 + row_len
let size ~nwrites ~row_len = header_size + (nwrites * entry_size ~row_len) + trailer_size
let min_size = header_size + trailer_size

(* Limits implied by the u16 fields; [decode] rejects anything outside
   them before trusting a length to index memory. *)
let max_writes = 0xFFFF
let max_row_len = 0xFFFF

let set_u16 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let get_u16 b pos = Char.code (Bytes.get b pos) lor (Char.code (Bytes.get b (pos + 1)) lsl 8)

let set_u32 b pos v =
  set_u16 b pos (v land 0xFFFF);
  set_u16 b (pos + 2) ((v lsr 16) land 0xFFFF)

let get_u32 b pos = get_u16 b pos lor (get_u16 b (pos + 2) lsl 16)

let set_i64 b pos v = Bytes.set_int64_le b pos (Int64.of_int v)
let get_i64 b pos = Int64.to_int (Bytes.get_int64_le b pos)

(* Encode a commit record into [buf] at [pos].  The rows are pulled
   through callbacks so the caller (the commit window) never builds an
   intermediate list: [rid i] is the i-th written row id and [row i] the
   backing bytes of that row (≥ [row_len] long).  Returns the record
   size in bytes. *)
let encode buf ~pos ~lsn ~table_id ~row_len ~n ~rid ~row =
  let sz = size ~nwrites:n ~row_len in
  Bytes.unsafe_set buf pos (Char.unsafe_chr magic);
  Bytes.unsafe_set buf (pos + 1) (Char.unsafe_chr type_txn);
  set_u16 buf (pos + 2) table_id;
  set_i64 buf (pos + 4) lsn;
  set_u16 buf (pos + 12) n;
  set_u16 buf (pos + 14) row_len;
  let off = ref (pos + header_size) in
  for i = 0 to n - 1 do
    set_u32 buf !off (rid i);
    Bytes.blit (row i) 0 buf (!off + 4) row_len;
    off := !off + 4 + row_len
  done;
  let crc = Util.Crc32.update 0 buf ~pos ~len:(sz - trailer_size) in
  set_u32 buf !off crc;
  sz

type t = {
  r_lsn : int;
  r_table_id : int;
  r_row_len : int;
  r_writes : (int * Bytes.t) array;  (** (row id, after-image) *)
}

(* Decode one record at [pos] with [avail] bytes remaining.  Every
   length field is validated before use; [Error] carries a diagnosis
   string.  "short ..." errors mean the data simply ends too early —
   the torn-tail signature when they occur at the end of the final
   segment. *)
let decode buf ~pos ~avail : (t * int, string) result =
  if avail < min_size then Error (Printf.sprintf "short header (%d bytes left)" avail)
  else if Char.code (Bytes.get buf pos) <> magic then
    Error (Printf.sprintf "bad magic 0x%02X" (Char.code (Bytes.get buf pos)))
  else if Char.code (Bytes.get buf (pos + 1)) <> type_txn then
    Error (Printf.sprintf "unknown record type %d" (Char.code (Bytes.get buf (pos + 1))))
  else begin
    let table_id = get_u16 buf (pos + 2) in
    let lsn = get_i64 buf (pos + 4) in
    let n = get_u16 buf (pos + 12) in
    let row_len = get_u16 buf (pos + 14) in
    if lsn < 1 then Error (Printf.sprintf "implausible lsn %d" lsn)
    else begin
      let sz = size ~nwrites:n ~row_len in
      if avail < sz then
        Error (Printf.sprintf "short record (need %d, have %d)" sz avail)
      else begin
        let stored = get_u32 buf (pos + sz - trailer_size) in
        let crc = Util.Crc32.update 0 buf ~pos ~len:(sz - trailer_size) in
        if stored <> crc then
          Error (Printf.sprintf "CRC mismatch (stored 0x%08X, computed 0x%08X)" stored crc)
        else begin
          let writes =
            Array.init n (fun i ->
                let off = pos + header_size + (i * (4 + row_len)) in
                (get_u32 buf off, Bytes.sub buf (off + 4) row_len))
          in
          Ok ({ r_lsn = lsn; r_table_id = table_id; r_row_len = row_len; r_writes = writes }, sz)
        end
      end
    end
  end

(* Is there a structurally valid record anywhere at or after [pos]?
   Used to discriminate a torn tail (nothing valid follows — the file
   just ends mid-record) from interior corruption (valid records after
   the bad bytes: something flipped bits inside the log).  A CRC-checked
   hit is a strong signal; requiring [lsn > after_lsn] additionally
   rejects stale bytes from a recycled buffer. *)
let find_valid buf ~pos ~len ~after_lsn =
  let limit = len - min_size in
  let rec go p =
    if p > limit then None
    else if Char.code (Bytes.get buf p) = magic then
      match decode buf ~pos:p ~avail:(len - p) with
      | Ok (r, _) when r.r_lsn > after_lsn -> Some p
      | _ -> go (p + 1)
    else go (p + 1)
  in
  go pos
