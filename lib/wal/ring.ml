(* Single-producer/single-consumer ring of encoded commit records,
   one per worker thread (DESIGN.md §15).  The producer is the worker
   inside its commit window; the consumer is the log-writer domain.

   Publication protocol: the producer fills the cell's plain fields,
   then releases them with an atomic store of [tail].  The consumer
   acquires [tail] before touching any cell, so the OCaml memory model
   orders the plain accesses (the atomic store/load pair establishes
   happens-before).  [head] is symmetric in the other direction: the
   consumer bumps it after it has taken the cell's buffer, which is
   what licenses the producer to reuse the slot. *)

type cell = { mutable c_lsn : int; mutable c_buf : Bytes.t }

type t = {
  cells : cell array;
  mask : int;
  head : int Atomic.t;  (* next slot the consumer reads *)
  tail : int Atomic.t;  (* next slot the producer writes *)
}

let create ~capacity =
  let cap =
    let rec pow2 p = if p >= capacity then p else pow2 (p * 2) in
    pow2 1
  in
  {
    cells = Array.init cap (fun _ -> { c_lsn = 0; c_buf = Bytes.empty });
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

(* Producer side.  Spins while full: the consumer is a dedicated domain
   that drains unconditionally, so the wait is bounded by one batch. *)
let push t ~lsn buf =
  let tail = Atomic.get t.tail in
  while Atomic.get t.head + t.mask + 1 <= tail do
    Domain.cpu_relax ()
  done;
  let c = t.cells.(tail land t.mask) in
  c.c_lsn <- lsn;
  c.c_buf <- buf;
  Atomic.set t.tail (tail + 1)

(* Consumer side. *)

let peek_lsn t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then -1 else t.cells.(head land t.mask).c_lsn

let pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then None
  else begin
    let c = t.cells.(head land t.mask) in
    let lsn = c.c_lsn and buf = c.c_buf in
    c.c_buf <- Bytes.empty;
    Atomic.set t.head (head + 1);
    Some (lsn, buf)
  end

let is_empty t = Atomic.get t.tail = Atomic.get t.head
