(** ALICE/CrashMonkey-style simulated block device (DESIGN.md §16).

    A single-directory in-memory filesystem exposed as a {!Wal_io.t}.
    Every write and every namespace operation (create / rename / unlink)
    is buffered as {e pending} until the corresponding barrier —
    [f_fsync] for file contents, [io_fsync_dir] for the namespace —
    merges it into the durable ("synced") state.

    {!crash} then answers the question a real power loss poses: which of
    the pending effects made it to the platter?  The materialization
    keeps an arbitrary seeded subset — per 512-byte {e sector} for file
    contents (so one buffered append can land torn, and later sectors
    can survive while earlier ones vanish: reordering), per operation
    for namespace changes — while everything before the last barrier is
    inviolable.  Recovery code that survives every such materialization
    survives the ALICE crash model. *)

type t

val sector : int
(** Tearing granularity, 512 bytes. *)

val create : unit -> t
(** Fresh empty filesystem. *)

val io : t -> Wal_io.t
(** The VFS view.  Thread-safe (a global lock per filesystem); raises
    [Unix.Unix_error (ENOENT, _, _)] for missing paths, matching the
    passthrough contract. *)

val snapshot : t -> t
(** Deep copy under the lock — pending state included.  Take one
    mid-workload, then {!crash} it repeatedly with different seeds while
    the original keeps running. *)

val crash : t -> seed:int -> t
(** Materialize one legal post-crash state, deterministically from
    [seed]: each pending namespace op is kept or dropped (in issue
    order, so a kept rename can expose a file whose create was also
    kept), and for each surviving file each pending {e sector} is
    independently kept (new content) or dropped (last-synced content,
    zero-filled holes).  Synced state is never touched.  The result is
    fully quiesced: no pending state, as if freshly mounted.  The input
    filesystem is not modified. *)

val files : t -> (string * int) list
(** Live (name, size) listing, for tests. *)

val pending_bytes : t -> int
(** Total buffered-but-unsynced content bytes, for tests. *)
