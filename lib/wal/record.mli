(** WAL record binary codec (DESIGN.md §15): one CRC-32-sealed,
    LSN-stamped commit record per transaction, carrying full after-images
    of every written row.  Little-endian; see [record.ml] for the layout. *)

val magic : int
(** First byte of every record: 0xA7. *)

val header_size : int
val trailer_size : int
val min_size : int

val size : nwrites:int -> row_len:int -> int
(** On-disk size of a record with [nwrites] entries. *)

val max_writes : int
val max_row_len : int
(** Field-width limits (u16); [encode] callers must respect them. *)

val encode :
  Bytes.t ->
  pos:int ->
  lsn:int ->
  table_id:int ->
  row_len:int ->
  n:int ->
  rid:(int -> int) ->
  row:(int -> Bytes.t) ->
  int
(** Encode a commit record into the buffer; rows are pulled through the
    [rid]/[row] callbacks (no intermediate list).  Returns bytes
    written, i.e. [size ~nwrites:n ~row_len]. *)

type t = {
  r_lsn : int;
  r_table_id : int;
  r_row_len : int;
  r_writes : (int * Bytes.t) array;  (** (row id, after-image) *)
}

val decode : Bytes.t -> pos:int -> avail:int -> (t * int, string) result
(** Decode one record; [Ok (record, size)] or [Error diagnosis].  Never
    raises on malformed input: every length field is validated before
    use and the CRC must match. *)

val find_valid : Bytes.t -> pos:int -> len:int -> after_lsn:int -> int option
(** Offset of the first structurally valid record (magic + lengths +
    CRC, with LSN > [after_lsn]) at or after [pos], if any.  Recovery
    uses this to discriminate torn tails (no valid record follows) from
    interior corruption (valid records after the bad bytes). *)
