(* Per-table write-ahead redo log with group commit, fuzzy checkpoints
   and crash recovery (DESIGN.md §15), running entirely through the
   storage-fault VFS (Wal_io, DESIGN.md §16).

   Shape of the protocol:

   - Workers call [log_commit] inside the 2PLSF commit window (all
     write-locks held), which draws an LSN with one fetch-and-add,
     seals a CRC-32 commit record holding full after-images, and
     publishes it to the worker's SPSC ring.  Because the draw happens
     while the locks serialize conflicting transactions, LSN order is
     consistent with the per-row serialization order — the property
     that makes redo-by-ascending-LSN reconstruct a serializable state.

   - A dedicated log-writer domain merges the rings into a reorder
     buffer (min-heap on LSN) and flushes only the *contiguous* LSN
     prefix: one write and one fsync per batch (group commit).
     Strict LSN-ordered flushing is a correctness requirement, not an
     optimisation: if transaction B read A's write, B's record must not
     reach disk while A's is lost, or the recovered image exposes a
     read from a transaction that never happened.  Flushing the gap-free
     prefix makes [flushed >= my_lsn] a sound durability ack.  A gap can
     only stall the writer briefly — draw-to-publish is a handful of
     instructions inside the commit window, interruptible only by
     process death (which is the crash being simulated).

   - Fuzzy checkpoints use a per-row seqlock: [marks.(rid)] is a
     monotone counter, odd while the row has an uncommitted in-place
     write, bumped even at commit (after [row_lsn.(rid)] is set) or at
     rollback (after the undo blit).  The counter never returns to a
     previous value, so the copier's read-mark / copy / re-read-mark
     protocol cannot accept a torn or dirty row.  The checkpoint image
     carries each row's committed LSN; recovery loads it as the per-row
     replay high-water mark, which is what makes replay idempotent and
     lets the checkpoint truncate every older segment.

   Failure model (DESIGN.md §16): transient I/O errors are retried with
   capped backoff; a permanent error — and *any* fsync failure, per the
   fsyncgate semantics — poisons the log: [failed] is set, the
   durability watermark freezes, every blocked [wait_durable] and
   [checkpoint] waiter is woken to raise [Degraded], and new
   [log_commit] calls refuse immediately.  The writer keeps draining
   rings (discarding records — they can never be acked) so workers
   never block against a full ring, then exits on [stop].  Nothing is
   ever acked that did not survive an fsync.

   What is durable: effects of transactions whose [wait_durable]
   returned.  What is not: transactions still in rings or unflushed
   batches at the kill — they were never acknowledged.  The log carries
   redo only; there is no undo on disk because in-place writes are only
   published (marked even / LSN-stamped) at commit. *)

module Chaos = Twoplsf_chaos.Chaos

type sync_mode = Sync_fsync | Sync_none

type config = {
  dir : string;
  sync : sync_mode;
  ring_cap : int;
  ckpt_every_bytes : int;  (* 0 = manual checkpoints only *)
  io : Wal_io.t;
}

let config ?(sync = Sync_fsync) ?(ring_cap = 256) ?(ckpt_every_bytes = 0)
    ?(io = Wal_io.passthrough) ~dir () =
  { dir; sync; ring_cap; ckpt_every_bytes; io }

type store = {
  table_id : int;
  num_rows : int;
  row_len : int;
  read_row : int -> Bytes.t;  (* backing bytes of a row, >= row_len long *)
  write_row : int -> Bytes.t -> unit;
}

exception Degraded of string

type t = {
  cfg : config;
  store : store;
  next_lsn : int Atomic.t;
  marks : int Atomic.t array;  (* per-row seqlock counters *)
  row_lsn : int array;  (* committed LSN per row; written in the odd window *)
  rings : Ring.t array;  (* one per worker tid *)
  flushed : int Atomic.t;  (* highest LSN durable on disk *)
  failed : string option Atomic.t;  (* poison: permanent log-device failure *)
  mu : Mutex.t;
  cond : Condition.t;
  stopping : bool Atomic.t;
  ckpt_req : bool Atomic.t;
  mutable ckpt_done : int;  (* completed checkpoints; guarded by [mu] *)
  mutable writer : unit Domain.t option;
  (* Writer-domain-owned state below (no concurrent access). *)
  mutable fd : Wal_io.file;
  mutable seg_seq : int;
  mutable seg_bytes : int;
  mutable bytes_since_ckpt : int;
  (* Metrics, exported as twoplsf_wal_* families. *)
  m_records : int Atomic.t;
  m_batches : int Atomic.t;
  m_fsyncs : int Atomic.t;
  m_bytes : int Atomic.t;
  m_checkpoints : int Atomic.t;
  m_ckpt_lsn : int Atomic.t;
  m_io_retries : int Atomic.t;
  m_fsync_failures : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* File layout helpers                                                *)

let seg_name seq = Printf.sprintf "%08d.seg" seq
let seg_path dir seq = Filename.concat dir (seg_name seq)
let image_path dir = Filename.concat dir "checkpoint.img"
let image_tmp_path dir = Filename.concat dir "checkpoint.tmp"

let parse_seg name =
  if String.length name = 12 && Filename.check_suffix name ".seg" then
    int_of_string_opt (String.sub name 0 8)
  else None

let segments ?(io = Wal_io.passthrough) ~dir () =
  io.Wal_io.io_readdir dir |> Array.to_list
  |> List.filter_map (fun n ->
         match parse_seg n with
         | Some seq -> Some (seq, Filename.concat dir n)
         | None -> None)
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Checkpoint image codec                                             *)

let image_magic = "2PLSFCKP"
let image_version = 1
let image_header_size = 40

let image_size st = image_header_size + (st.num_rows * (8 + st.row_len)) + 4
let image_row_off st rid = image_header_size + (rid * (8 + st.row_len))

let set_u32 b pos v = Bytes.set_int32_le b pos (Int32.of_int v)
let get_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF
let set_i64 b pos v = Bytes.set_int64_le b pos (Int64.of_int v)
let get_i64 b pos = Int64.to_int (Bytes.get_int64_le b pos)

type image_info = {
  i_table_id : int;
  i_num_rows : int;
  i_row_len : int;
  i_start_lsn : int;
  i_end_lsn : int;
}

exception Corrupt of string

let corruptf fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Validate an image buffer: magic, version, geometry, whole-file CRC.
   Returns the header. *)
let check_image buf =
  let len = Bytes.length buf in
  if len < image_header_size + 4 then corruptf "checkpoint image too short (%d bytes)" len;
  if Bytes.sub_string buf 0 8 <> image_magic then corruptf "checkpoint image: bad magic";
  let version = get_u32 buf 8 in
  if version <> image_version then corruptf "checkpoint image: unknown version %d" version;
  let info =
    {
      i_table_id = get_u32 buf 12;
      i_num_rows = get_u32 buf 16;
      i_row_len = get_u32 buf 20;
      i_start_lsn = get_i64 buf 24;
      i_end_lsn = get_i64 buf 32;
    }
  in
  let expect = image_header_size + (info.i_num_rows * (8 + info.i_row_len)) + 4 in
  if len <> expect then
    corruptf "checkpoint image: size %d does not match geometry (expected %d)" len expect;
  let stored = get_u32 buf (len - 4) in
  let crc = Util.Crc32.bytes ~len:(len - 4) buf in
  if stored <> crc then
    corruptf "checkpoint image: CRC mismatch (stored 0x%08X, computed 0x%08X)" stored crc;
  info

let read_image_info ?(io = Wal_io.passthrough) ~dir () =
  match Wal_io.read_file io (image_path dir) with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
  | buf -> Some (check_image buf)

(* ------------------------------------------------------------------ *)
(* Reorder buffer: min-heap on LSN, writer-domain local                *)

module Heap = struct
  type h = { mutable lsns : int array; mutable bufs : Bytes.t array; mutable len : int }

  let create () = { lsns = Array.make 64 0; bufs = Array.make 64 Bytes.empty; len = 0 }

  let grow h =
    let cap = Array.length h.lsns * 2 in
    let lsns = Array.make cap 0 and bufs = Array.make cap Bytes.empty in
    Array.blit h.lsns 0 lsns 0 h.len;
    Array.blit h.bufs 0 bufs 0 h.len;
    h.lsns <- lsns;
    h.bufs <- bufs

  let swap h i j =
    let l = h.lsns.(i) and b = h.bufs.(i) in
    h.lsns.(i) <- h.lsns.(j);
    h.bufs.(i) <- h.bufs.(j);
    h.lsns.(j) <- l;
    h.bufs.(j) <- b

  let add h lsn buf =
    if h.len = Array.length h.lsns then grow h;
    h.lsns.(h.len) <- lsn;
    h.bufs.(h.len) <- buf;
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && h.lsns.((!i - 1) / 2) > h.lsns.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let min_lsn h = if h.len = 0 then -1 else h.lsns.(0)

  let pop_min h =
    let buf = h.bufs.(0) in
    h.len <- h.len - 1;
    h.lsns.(0) <- h.lsns.(h.len);
    h.bufs.(0) <- h.bufs.(h.len);
    h.bufs.(h.len) <- Bytes.empty;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.len && h.lsns.(l) < h.lsns.(!s) then s := l;
      if r < h.len && h.lsns.(r) < h.lsns.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        swap h !i !s;
        i := !s
      end
    done;
    buf

  let is_empty h = h.len = 0

  let clear h =
    for i = 0 to h.len - 1 do
      h.bufs.(i) <- Bytes.empty
    done;
    h.len <- 0
end

(* ------------------------------------------------------------------ *)
(* Failure handling                                                   *)

let poison t reason =
  if Atomic.compare_and_set t.failed None (Some reason) then begin
    Mutex.lock t.mu;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu
  end

let degraded t = Atomic.get t.failed

let describe_exn = function
  | Wal_io.Io_error e ->
      Printf.sprintf "%s %s: %s" e.op e.path (Unix.error_message e.error)
  | Unix.Unix_error (err, op, path) ->
      Printf.sprintf "%s %s: %s" op path (Unix.error_message err)
  | e -> Printexc.to_string e

let transient_exn = function Wal_io.Io_error e -> e.transient | _ -> false

let max_retries = 5
let backoff attempt = Unix.sleepf (0.0005 *. float (1 lsl min attempt 4))

(* Run a writer-domain io thunk with capped-backoff retries on transient
   failures.  Permanent failures and an exhausted budget propagate. *)
let retrying t f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception ((Wal_io.Io_error _ | Unix.Unix_error _) as e)
      when transient_exn e && attempt < max_retries ->
        Atomic.incr t.m_io_retries;
        backoff attempt;
        go (attempt + 1)
  in
  go 0

(* Same, but poison instead of propagating: returns false on failure. *)
let guarded t ~what f =
  match retrying t f with
  | () -> true
  | exception ((Wal_io.Io_error _ | Unix.Unix_error _) as e) ->
      poison t (Printf.sprintf "%s: %s" what (describe_exn e));
      false

(* A failed fsync is never retried: the unflushed pages may already be
   gone from the cache, so "fsync again and see it succeed" would
   acknowledge data that was lost (the fsyncgate bug).  Poison. *)
let guarded_fsync t (file : Wal_io.file) ~what =
  match file.f_fsync () with
  | () -> true
  | exception ((Wal_io.Io_error _ | Unix.Unix_error _) as e) ->
      Atomic.incr t.m_fsync_failures;
      poison t (Printf.sprintf "%s: %s" what (describe_exn e));
      false

let guarded_fsync_dir t ~what =
  match t.cfg.io.Wal_io.io_fsync_dir t.cfg.dir with
  | () -> true
  | exception ((Wal_io.Io_error _ | Unix.Unix_error _) as e) ->
      Atomic.incr t.m_fsync_failures;
      poison t (Printf.sprintf "%s: %s" what (describe_exn e));
      false

(* ------------------------------------------------------------------ *)
(* Commit-window API (caller holds the row's write locks)             *)

let mark_dirty t ~rid =
  let m = Atomic.get t.marks.(rid) in
  if m land 1 = 0 then Atomic.set t.marks.(rid) (m + 1)

let mark_undo t ~rid =
  let m = Atomic.get t.marks.(rid) in
  if m land 1 = 1 then Atomic.set t.marks.(rid) (m + 1)

let log_commit t ~tid ~n ~rid =
  (* Refuse before mutating anything: the caller still holds its locks
     and undo images, so it can roll back cleanly and turn this into a
     typed read-only abort. *)
  (match Atomic.get t.failed with
  | Some reason -> raise (Degraded reason)
  | None -> ());
  let st = t.store in
  let lsn = Atomic.fetch_and_add t.next_lsn 1 in
  (* Stamp every written row's committed LSN and close its seqlock
     window.  Duplicate rids in the write list are parity-guarded. *)
  for i = 0 to n - 1 do
    let r = rid i in
    let m = Atomic.get t.marks.(r) in
    if m land 1 = 1 then begin
      t.row_lsn.(r) <- lsn;
      Atomic.set t.marks.(r) (m + 1)
    end
  done;
  let sz = Record.size ~nwrites:n ~row_len:st.row_len in
  let buf = Bytes.create sz in
  ignore
    (Record.encode buf ~pos:0 ~lsn ~table_id:st.table_id ~row_len:st.row_len ~n ~rid
       ~row:(fun i -> st.read_row (rid i)));
  (* LSN drawn but not yet published: a kill here leaves a gap that
     recovery never sees (nothing after it can be contiguous-flushed). *)
  if !Chaos.on then Chaos.point Chaos.Wal_append;
  Ring.push t.rings.(tid) ~lsn buf;
  Atomic.incr t.m_records;
  lsn

let flushed_lsn t = Atomic.get t.flushed

let wait_durable t ~lsn =
  if Atomic.get t.flushed < lsn then begin
    Mutex.lock t.mu;
    while Atomic.get t.flushed < lsn && Atomic.get t.failed = None do
      Condition.wait t.cond t.mu
    done;
    Mutex.unlock t.mu;
    if Atomic.get t.flushed < lsn then
      match Atomic.get t.failed with
      | Some reason -> raise (Degraded reason)
      | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Log-writer domain                                                  *)

let open_segment io dir seq = io.Wal_io.io_create (seg_path dir seq)

let drain_rings t heap =
  let n = ref 0 in
  Array.iter
    (fun ring ->
      let continue = ref true in
      while !continue do
        match Ring.pop ring with
        | Some (lsn, buf) ->
            Heap.add heap lsn buf;
            incr n
        | None -> continue := false
      done)
    t.rings;
  !n

let rings_empty t = Array.for_all Ring.is_empty t.rings

(* Flush the contiguous LSN prefix of the reorder buffer: one write,
   one fsync, one broadcast.  Returns true if anything was flushed;
   false also covers "the log just got poisoned". *)
let flush_batch t heap batch =
  Buffer.clear batch;
  let expected = ref (Atomic.get t.flushed + 1) in
  while Heap.min_lsn heap = !expected do
    Buffer.add_bytes batch (Heap.pop_min heap);
    incr expected
  done;
  if Buffer.length batch = 0 then false
  else begin
    let s = Buffer.contents batch in
    let b = Bytes.unsafe_of_string s in
    let len = Bytes.length b in
    let pos = ref 0 in
    (* Resume from [pos] across transient-retry rounds: the injector
       and Unix both fail without a partial transfer, so no byte is
       ever written twice. *)
    let wrote =
      guarded t ~what:"segment append" (fun () ->
          while !pos < len do
            pos := !pos + t.fd.Wal_io.f_write b ~pos:!pos ~len:(len - !pos)
          done)
    in
    if not wrote then false
    else begin
      if !Chaos.on then Chaos.point Chaos.Wal_fsync;
      let synced =
        match t.cfg.sync with
        | Sync_fsync ->
            if guarded_fsync t t.fd ~what:"segment fsync" then begin
              Atomic.incr t.m_fsyncs;
              true
            end
            else false
        | Sync_none -> true
      in
      if not synced then false
      else begin
        t.seg_bytes <- t.seg_bytes + len;
        t.bytes_since_ckpt <- t.bytes_since_ckpt + len;
        Atomic.incr t.m_batches;
        ignore (Atomic.fetch_and_add t.m_bytes len);
        Mutex.lock t.mu;
        Atomic.set t.flushed (!expected - 1);
        Condition.broadcast t.cond;
        Mutex.unlock t.mu;
        true
      end
    end
  end

exception Bail

(* Fuzzy checkpoint, run on the writer domain.

   1. Pin [start_lsn := next_lsn] and flush everything below it.  Every
      record in the current segments now has lsn < start_lsn (flushed
      records are always below next_lsn by construction).
   2. Rotate to a fresh segment.
   3. Seqlock-copy every row (payload + committed row LSN).  The copy
      happens after step 1's flush, which happens after those records'
      payload writes — so the image reflects *at least* every effect in
      the old segments, each stamped with its committed LSN.
   4. Write image to a temp file, fsync, atomically rename, fsync dir.
   5. Delete the old segments: all their records have lsn < start_lsn
      and are provably reflected in the image (with per-row LSNs that
      make replaying any surviving duplicate a no-op).

   Any I/O failure along the way poisons the log and abandons the
   checkpoint; the previous image and segments stay authoritative (the
   tmp file and a fresh empty segment are the only possible litter, and
   recovery discards both). *)
let do_checkpoint t heap batch =
  if !Chaos.on then Chaos.point Chaos.Wal_checkpoint;
  let io = t.cfg.io in
  let st = t.store in
  let start_lsn = Atomic.get t.next_lsn in
  let ok = ref true in
  while !ok && Atomic.get t.flushed < start_lsn - 1 do
    ignore (drain_rings t heap);
    if Atomic.get t.failed <> None then ok := false
    else if not (flush_batch t heap batch) then Domain.cpu_relax ()
  done;
  if !ok && Atomic.get t.failed = None then begin
    let require b = if not b then raise Bail in
    try
      (match t.cfg.sync with
      | Sync_fsync -> require (guarded_fsync t t.fd ~what:"checkpoint rotate fsync")
      | Sync_none -> ());
      t.fd.Wal_io.f_close ();
      let old_seq = t.seg_seq in
      t.seg_seq <- t.seg_seq + 1;
      t.fd <- retrying t (fun () -> open_segment io t.cfg.dir t.seg_seq);
      t.seg_bytes <- 0;
      require (guarded_fsync_dir t ~what:"checkpoint rotate dir fsync");
      let img = Bytes.create (image_size st) in
      Bytes.blit_string image_magic 0 img 0 8;
      set_u32 img 8 image_version;
      set_u32 img 12 st.table_id;
      set_u32 img 16 st.num_rows;
      set_u32 img 20 st.row_len;
      set_i64 img 24 start_lsn;
      for rid = 0 to st.num_rows - 1 do
        let off = image_row_off st rid in
        let rec copy () =
          let m1 = Atomic.get t.marks.(rid) in
          if m1 land 1 = 1 then begin
            Domain.cpu_relax ();
            copy ()
          end
          else begin
            let lsn = t.row_lsn.(rid) in
            Bytes.blit (st.read_row rid) 0 img (off + 8) st.row_len;
            if Atomic.get t.marks.(rid) <> m1 then copy () else set_i64 img off lsn
          end
        in
        copy ()
      done;
      set_i64 img 32 (Atomic.get t.next_lsn - 1);
      let crc = Util.Crc32.bytes ~len:(Bytes.length img - 4) img in
      set_u32 img (Bytes.length img - 4) crc;
      let tmp = image_tmp_path t.cfg.dir in
      (* A transient failure mid-image restarts the tmp file from
         scratch (O_TRUNC recreate) — a resumed write could otherwise
         duplicate bytes. *)
      let tmp_fd =
        retrying t (fun () ->
            let fd = io.Wal_io.io_create tmp in
            match Wal_io.write_string fd (Bytes.unsafe_to_string img) with
            | () -> fd
            | exception e ->
                fd.Wal_io.f_close ();
                raise e)
      in
      (match t.cfg.sync with
      | Sync_fsync ->
          if not (guarded_fsync t tmp_fd ~what:"checkpoint image fsync") then begin
            tmp_fd.Wal_io.f_close ();
            raise Bail
          end
      | Sync_none -> ());
      tmp_fd.Wal_io.f_close ();
      (* A kill in this window leaves checkpoint.tmp plus the old image
         and all old segments — recovery ignores the tmp and replays as
         before. *)
      if !Chaos.on then Chaos.point Chaos.Wal_checkpoint;
      retrying t (fun () -> io.Wal_io.io_rename tmp (image_path t.cfg.dir));
      require (guarded_fsync_dir t ~what:"checkpoint install dir fsync");
      for seq = 0 to old_seq do
        (* Leftover segments are harmless (replay is idempotent); an
           unlink failure is not worth poisoning over. *)
        try io.Wal_io.io_unlink (seg_path t.cfg.dir seq)
        with Wal_io.Io_error _ | Unix.Unix_error _ -> ()
      done;
      t.bytes_since_ckpt <- 0;
      Atomic.incr t.m_checkpoints;
      Atomic.set t.m_ckpt_lsn (start_lsn - 1);
      Mutex.lock t.mu;
      t.ckpt_done <- t.ckpt_done + 1;
      Condition.broadcast t.cond;
      Mutex.unlock t.mu
    with
    | Bail -> ()
    | (Wal_io.Io_error _ | Unix.Unix_error _) as e ->
        poison t (Printf.sprintf "checkpoint: %s" (describe_exn e))
  end

let writer_loop t =
  let heap = Heap.create () in
  let batch = Buffer.create 65536 in
  let idle = ref 0 in
  let running = ref true in
  (try
     while !running do
       ignore (drain_rings t heap);
       if Atomic.get t.failed <> None then begin
         (* Poisoned: keep draining so no worker ever blocks on a full
            ring, discard the records (they can never be acked), ignore
            checkpoint requests (their waiters raise [Degraded]). *)
         Heap.clear heap;
         ignore (Atomic.compare_and_set t.ckpt_req true false);
         if Atomic.get t.stopping then running := false else Unix.sleepf 0.0002
       end
       else begin
         let progressed = flush_batch t heap batch in
         if Atomic.compare_and_set t.ckpt_req true false then do_checkpoint t heap batch
         else if
           t.cfg.ckpt_every_bytes > 0 && t.bytes_since_ckpt >= t.cfg.ckpt_every_bytes
         then do_checkpoint t heap batch;
         if progressed then idle := 0
         else if Atomic.get t.stopping && Heap.is_empty heap && rings_empty t then
           running := false
         else begin
           (* Idle backoff: spin briefly (latency), then yield, then sleep
              (CPU) — commit acks tolerate ~100 µs of writer doze. *)
           incr idle;
           if !idle < 64 then Domain.cpu_relax ()
           else if !idle < 128 then Thread.yield ()
           else Unix.sleepf 0.0001
         end
       end
     done;
     (* Final fsync.  A failure here used to be swallowed — the classic
        fsyncgate lie, since [stop] then looked like a clean shutdown.
        Now it poisons the watermark like any other fsync failure. *)
     if Atomic.get t.failed = None then
       match t.cfg.sync with
       | Sync_fsync ->
           if guarded_fsync t t.fd ~what:"final fsync" then Atomic.incr t.m_fsyncs
       | Sync_none -> ()
   with e ->
     (* Nothing may escape the domain: [stop]'s join must not re-raise,
        and waiters need the poison broadcast to wake up. *)
     poison t (Printf.sprintf "log writer died: %s" (describe_exn e)));
  (try t.fd.Wal_io.f_close () with _ -> ());
  Util.Tid.release ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)

let create ?(next_lsn = 1) cfg store =
  if store.row_len > Record.max_row_len then invalid_arg "Wal.create: row_len > 65535";
  let io = cfg.io in
  io.Wal_io.io_mkdir cfg.dir;
  let seg_seq =
    match segments ~io ~dir:cfg.dir () with
    | [] -> 0
    | segs -> fst (List.hd (List.rev segs)) + 1
  in
  let t =
    {
      cfg;
      store;
      next_lsn = Atomic.make next_lsn;
      marks = Array.init store.num_rows (fun _ -> Atomic.make 0);
      row_lsn = Array.make store.num_rows 0;
      rings = Array.init Util.Tid.max_threads (fun _ -> Ring.create ~capacity:cfg.ring_cap);
      flushed = Atomic.make (next_lsn - 1);
      failed = Atomic.make None;
      mu = Mutex.create ();
      cond = Condition.create ();
      stopping = Atomic.make false;
      ckpt_req = Atomic.make false;
      ckpt_done = 0;
      writer = None;
      fd = open_segment io cfg.dir seg_seq;
      seg_seq;
      seg_bytes = 0;
      bytes_since_ckpt = 0;
      m_records = Atomic.make 0;
      m_batches = Atomic.make 0;
      m_fsyncs = Atomic.make 0;
      m_bytes = Atomic.make 0;
      m_checkpoints = Atomic.make 0;
      m_ckpt_lsn = Atomic.make 0;
      m_io_retries = Atomic.make 0;
      m_fsync_failures = Atomic.make 0;
    }
  in
  (* The new segment's directory entry must be durable before anything
     is logged into it; a failure propagates to the caller (the log
     never opened). *)
  io.Wal_io.io_fsync_dir cfg.dir;
  t.writer <- Some (Domain.spawn (fun () -> writer_loop t));
  t

let checkpoint t =
  (match Atomic.get t.failed with Some r -> raise (Degraded r) | None -> ());
  Mutex.lock t.mu;
  let before = t.ckpt_done in
  Atomic.set t.ckpt_req true;
  while t.ckpt_done = before && Atomic.get t.failed = None do
    Condition.wait t.cond t.mu
  done;
  let completed = t.ckpt_done <> before in
  Mutex.unlock t.mu;
  if not completed then
    match Atomic.get t.failed with Some r -> raise (Degraded r) | None -> ()

let stop t =
  Atomic.set t.stopping true;
  (match t.writer with Some d -> Domain.join d | None -> ());
  t.writer <- None

let metrics t =
  [
    ("records", Atomic.get t.m_records);
    ("batches", Atomic.get t.m_batches);
    ("fsyncs", Atomic.get t.m_fsyncs);
    ("bytes", Atomic.get t.m_bytes);
    ("checkpoints", Atomic.get t.m_checkpoints);
    ("flushed_lsn", Atomic.get t.flushed);
    ("next_lsn", Atomic.get t.next_lsn);
    ("last_checkpoint_lsn", Atomic.get t.m_ckpt_lsn);
    ("io_retries", Atomic.get t.m_io_retries);
    ("io_fsync_failures", Atomic.get t.m_fsync_failures);
    ("degraded", match Atomic.get t.failed with Some _ -> 1 | None -> 0);
  ]
  @ List.map (fun (k, v) -> ("io_" ^ k, v)) (t.cfg.io.Wal_io.io_metrics ())

(* ------------------------------------------------------------------ *)
(* Recovery                                                           *)

type recovery = {
  r_image_lsn : int;  (** end LSN of the checkpoint image, 0 if none *)
  r_max_lsn : int;  (** highest LSN seen in the log *)
  r_next_lsn : int;  (** resume point for [create ~next_lsn] *)
  r_records : int;
  r_replayed : int;  (** row writes applied *)
  r_skipped : int;  (** row writes below the per-row high-water mark *)
  r_torn_tail : bool;
  r_truncated_bytes : int;
  r_suspect_records : int;
  r_tmp_discarded : bool;
  r_segments : int;
}

let truncate_file io path len =
  let fd = io.Wal_io.io_open_rw path in
  Fun.protect
    ~finally:(fun () -> fd.Wal_io.f_close ())
    (fun () ->
      fd.Wal_io.f_truncate len;
      fd.Wal_io.f_fsync ())

(* Structurally valid records found after a damaged region of the final
   segment: under the crash model these are legal (a dropped interior
   sector of an unsynced batch leaves later sectors intact), but they
   are evidence of reordering, so recovery counts them as "suspect" and
   reports a degraded recovery rather than silently losing them. *)
let count_suspect buf ~pos ~len ~after_lsn =
  let n = ref 0 in
  let pos = ref pos and lsn = ref after_lsn in
  let continue = ref true in
  while !continue do
    match Record.find_valid buf ~pos:!pos ~len ~after_lsn:!lsn with
    | None -> continue := false
    | Some p ->
        let q = ref p and run = ref true in
        while !run && !q < len do
          match Record.decode buf ~pos:!q ~avail:(len - !q) with
          | Ok (r, sz) ->
              incr n;
              if r.Record.r_lsn > !lsn then lsn := r.Record.r_lsn;
              q := !q + sz
          | Error _ -> run := false
        done;
        pos := !q + 1;
        if !pos >= len then continue := false
  done;
  !n

let recover ?(io = Wal_io.passthrough) ?(strict = false) ~dir store =
  (* A leftover checkpoint.tmp is an interrupted checkpoint: the rename
     never happened, so it is dead weight — but its presence means the
     shutdown was not clean, which the caller may want to surface. *)
  let tmp_discarded = io.Wal_io.io_exists (image_tmp_path dir) in
  if tmp_discarded then (
    try io.Wal_io.io_unlink (image_tmp_path dir)
    with Wal_io.Io_error _ | Unix.Unix_error _ -> ());
  let applied = Array.make store.num_rows 0 in
  let image_lsn = ref 0 in
  (match Wal_io.read_file io (image_path dir) with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
      corruptf "checkpoint image unreadable: %s" (Unix.error_message e)
  | buf ->
      let info = check_image buf in
      if info.i_table_id <> store.table_id then
        corruptf "checkpoint image: table id %d, expected %d" info.i_table_id store.table_id;
      if info.i_num_rows <> store.num_rows || info.i_row_len <> store.row_len then
        corruptf "checkpoint image: geometry %dx%d, expected %dx%d" info.i_num_rows
          info.i_row_len store.num_rows store.row_len;
      for rid = 0 to store.num_rows - 1 do
        let off = image_row_off store rid in
        store.write_row rid (Bytes.sub buf (off + 8) store.row_len);
        applied.(rid) <- get_i64 buf off
      done;
      image_lsn := info.i_end_lsn);
  let segs = segments ~io ~dir () in
  let nsegs = List.length segs in
  let max_lsn = ref (Array.fold_left max !image_lsn applied) in
  let records = ref 0 and replayed = ref 0 and skipped = ref 0 in
  let torn = ref false and truncated = ref 0 and suspect = ref 0 in
  List.iteri
    (fun i (_, path) ->
      let last = i = nsegs - 1 in
      let buf = Wal_io.read_file io path in
      let len = Bytes.length buf in
      let off = ref 0 in
      let continue = ref true in
      while !continue do
        if !off = len then continue := false
        else
          match Record.decode buf ~pos:!off ~avail:(len - !off) with
          | Ok (r, sz) ->
              if r.r_table_id <> store.table_id then
                corruptf "%s+%d: table id %d, expected %d" path !off r.r_table_id
                  store.table_id;
              if r.r_row_len <> store.row_len then
                corruptf "%s+%d: row length %d, expected %d" path !off r.r_row_len
                  store.row_len;
              incr records;
              Array.iter
                (fun (rid, img) ->
                  if rid < 0 || rid >= store.num_rows then
                    corruptf "%s+%d: row id %d out of range" path !off rid;
                  if r.r_lsn > applied.(rid) then begin
                    store.write_row rid img;
                    applied.(rid) <- r.r_lsn;
                    incr replayed
                  end
                  else incr skipped)
                r.r_writes;
              if r.r_lsn > !max_lsn then max_lsn := r.r_lsn;
              off := !off + sz
          | Error reason ->
              if not last then corruptf "%s+%d: %s (interior segment)" path !off reason
              else begin
                (* Damage in the final segment.  A structurally valid
                   record *after* the bad bytes is interior damage; on a
                   log written through a reordering device that is a
                   legal crash state (a dropped sector of the unsynced
                   tail), so by default recovery truncates at the first
                   damage and reports the salvageable-looking remainder
                   as suspect.  [~strict] keeps the process-kill-model
                   reading: valid-after-bad cannot happen when the page
                   cache survives the crash, so refuse as corruption. *)
                match Record.find_valid buf ~pos:(!off + 1) ~len ~after_lsn:!max_lsn with
                | Some p when strict ->
                    corruptf
                      "%s+%d: %s, but a valid record follows at +%d — interior corruption"
                      path !off reason p
                | fv ->
                    (match fv with
                    | Some _ ->
                        suspect := count_suspect buf ~pos:(!off + 1) ~len ~after_lsn:!max_lsn
                    | None -> ());
                    torn := true;
                    truncated := len - !off;
                    truncate_file io path !off;
                    continue := false
              end
      done)
    segs;
  {
    r_image_lsn = !image_lsn;
    r_max_lsn = !max_lsn;
    r_next_lsn = !max_lsn + 1;
    r_records = !records;
    r_replayed = !replayed;
    r_skipped = !skipped;
    r_torn_tail = !torn;
    r_truncated_bytes = !truncated;
    r_suspect_records = !suspect;
    r_tmp_discarded = tmp_discarded;
    r_segments = nsegs;
  }
