(* Per-table write-ahead redo log with group commit, fuzzy checkpoints
   and crash recovery (DESIGN.md §15).

   Shape of the protocol:

   - Workers call [log_commit] inside the 2PLSF commit window (all
     write-locks held), which draws an LSN with one fetch-and-add,
     seals a CRC-32 commit record holding full after-images, and
     publishes it to the worker's SPSC ring.  Because the draw happens
     while the locks serialize conflicting transactions, LSN order is
     consistent with the per-row serialization order — the property
     that makes redo-by-ascending-LSN reconstruct a serializable state.

   - A dedicated log-writer domain merges the rings into a reorder
     buffer (min-heap on LSN) and flushes only the *contiguous* LSN
     prefix: one write(2) and one fsync per batch (group commit).
     Strict LSN-ordered flushing is a correctness requirement, not an
     optimisation: if transaction B read A's write, B's record must not
     reach disk while A's is lost, or the recovered image exposes a
     read from a transaction that never happened.  Flushing the gap-free
     prefix makes [flushed >= my_lsn] a sound durability ack.  A gap can
     only stall the writer briefly — draw-to-publish is a handful of
     instructions inside the commit window, interruptible only by
     process death (which is the crash being simulated).

   - Fuzzy checkpoints use a per-row seqlock: [marks.(rid)] is a
     monotone counter, odd while the row has an uncommitted in-place
     write, bumped even at commit (after [row_lsn.(rid)] is set) or at
     rollback (after the undo blit).  The counter never returns to a
     previous value, so the copier's read-mark / copy / re-read-mark
     protocol cannot accept a torn or dirty row.  The checkpoint image
     carries each row's committed LSN; recovery loads it as the per-row
     replay high-water mark, which is what makes replay idempotent and
     lets the checkpoint truncate every older segment.

   What is durable: effects of transactions whose [wait_durable]
   returned.  What is not: transactions still in rings or unflushed
   batches at the kill — they were never acknowledged.  The log carries
   redo only; there is no undo on disk because in-place writes are only
   published (marked even / LSN-stamped) at commit. *)

module Chaos = Twoplsf_chaos.Chaos

type sync_mode = Sync_fsync | Sync_none

type config = {
  dir : string;
  sync : sync_mode;
  ring_cap : int;
  ckpt_every_bytes : int;  (* 0 = manual checkpoints only *)
}

let config ?(sync = Sync_fsync) ?(ring_cap = 256) ?(ckpt_every_bytes = 0) ~dir () =
  { dir; sync; ring_cap; ckpt_every_bytes }

type store = {
  table_id : int;
  num_rows : int;
  row_len : int;
  read_row : int -> Bytes.t;  (* backing bytes of a row, >= row_len long *)
  write_row : int -> Bytes.t -> unit;
}

type t = {
  cfg : config;
  store : store;
  next_lsn : int Atomic.t;
  marks : int Atomic.t array;  (* per-row seqlock counters *)
  row_lsn : int array;  (* committed LSN per row; written in the odd window *)
  rings : Ring.t array;  (* one per worker tid *)
  flushed : int Atomic.t;  (* highest LSN durable on disk *)
  mu : Mutex.t;
  cond : Condition.t;
  stopping : bool Atomic.t;
  ckpt_req : bool Atomic.t;
  mutable ckpt_done : int;  (* completed checkpoints; guarded by [mu] *)
  mutable writer : unit Domain.t option;
  (* Writer-domain-owned state below (no concurrent access). *)
  mutable fd : Unix.file_descr;
  mutable seg_seq : int;
  mutable seg_bytes : int;
  mutable bytes_since_ckpt : int;
  (* Metrics, exported as twoplsf_wal_* families. *)
  m_records : int Atomic.t;
  m_batches : int Atomic.t;
  m_fsyncs : int Atomic.t;
  m_bytes : int Atomic.t;
  m_checkpoints : int Atomic.t;
  m_ckpt_lsn : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* File layout helpers                                                *)

let seg_name seq = Printf.sprintf "%08d.seg" seq
let seg_path dir seq = Filename.concat dir (seg_name seq)
let image_path dir = Filename.concat dir "checkpoint.img"
let image_tmp_path dir = Filename.concat dir "checkpoint.tmp"

let parse_seg name =
  if String.length name = 12 && Filename.check_suffix name ".seg" then
    int_of_string_opt (String.sub name 0 8)
  else None

let segments ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             match parse_seg n with
             | Some seq -> Some (seq, Filename.concat dir n)
             | None -> None)
      |> List.sort compare

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let read_file path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let len = (Unix.fstat fd).Unix.st_size in
      let buf = Bytes.create len in
      let off = ref 0 in
      while !off < len do
        let n = Unix.read fd buf !off (len - !off) in
        if n = 0 then failwith "unexpected EOF";
        off := !off + n
      done;
      buf)

(* ------------------------------------------------------------------ *)
(* Checkpoint image codec                                             *)

let image_magic = "2PLSFCKP"
let image_version = 1
let image_header_size = 40

let image_size st = image_header_size + (st.num_rows * (8 + st.row_len)) + 4
let image_row_off st rid = image_header_size + (rid * (8 + st.row_len))

let set_u32 b pos v = Bytes.set_int32_le b pos (Int32.of_int v)
let get_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF
let set_i64 b pos v = Bytes.set_int64_le b pos (Int64.of_int v)
let get_i64 b pos = Int64.to_int (Bytes.get_int64_le b pos)

type image_info = {
  i_table_id : int;
  i_num_rows : int;
  i_row_len : int;
  i_start_lsn : int;
  i_end_lsn : int;
}

exception Corrupt of string

let corruptf fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Validate an image buffer: magic, version, geometry, whole-file CRC.
   Returns the header. *)
let check_image buf =
  let len = Bytes.length buf in
  if len < image_header_size + 4 then corruptf "checkpoint image too short (%d bytes)" len;
  if Bytes.sub_string buf 0 8 <> image_magic then corruptf "checkpoint image: bad magic";
  let version = get_u32 buf 8 in
  if version <> image_version then corruptf "checkpoint image: unknown version %d" version;
  let info =
    {
      i_table_id = get_u32 buf 12;
      i_num_rows = get_u32 buf 16;
      i_row_len = get_u32 buf 20;
      i_start_lsn = get_i64 buf 24;
      i_end_lsn = get_i64 buf 32;
    }
  in
  let expect = image_header_size + (info.i_num_rows * (8 + info.i_row_len)) + 4 in
  if len <> expect then
    corruptf "checkpoint image: size %d does not match geometry (expected %d)" len expect;
  let stored = get_u32 buf (len - 4) in
  let crc = Util.Crc32.bytes ~len:(len - 4) buf in
  if stored <> crc then
    corruptf "checkpoint image: CRC mismatch (stored 0x%08X, computed 0x%08X)" stored crc;
  info

let read_image_info ~dir =
  match read_file (image_path dir) with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> None
  | buf -> Some (check_image buf)

(* ------------------------------------------------------------------ *)
(* Reorder buffer: min-heap on LSN, writer-domain local                *)

module Heap = struct
  type h = { mutable lsns : int array; mutable bufs : Bytes.t array; mutable len : int }

  let create () = { lsns = Array.make 64 0; bufs = Array.make 64 Bytes.empty; len = 0 }

  let grow h =
    let cap = Array.length h.lsns * 2 in
    let lsns = Array.make cap 0 and bufs = Array.make cap Bytes.empty in
    Array.blit h.lsns 0 lsns 0 h.len;
    Array.blit h.bufs 0 bufs 0 h.len;
    h.lsns <- lsns;
    h.bufs <- bufs

  let swap h i j =
    let l = h.lsns.(i) and b = h.bufs.(i) in
    h.lsns.(i) <- h.lsns.(j);
    h.bufs.(i) <- h.bufs.(j);
    h.lsns.(j) <- l;
    h.bufs.(j) <- b

  let add h lsn buf =
    if h.len = Array.length h.lsns then grow h;
    h.lsns.(h.len) <- lsn;
    h.bufs.(h.len) <- buf;
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && h.lsns.((!i - 1) / 2) > h.lsns.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let min_lsn h = if h.len = 0 then -1 else h.lsns.(0)

  let pop_min h =
    let buf = h.bufs.(0) in
    h.len <- h.len - 1;
    h.lsns.(0) <- h.lsns.(h.len);
    h.bufs.(0) <- h.bufs.(h.len);
    h.bufs.(h.len) <- Bytes.empty;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.len && h.lsns.(l) < h.lsns.(!s) then s := l;
      if r < h.len && h.lsns.(r) < h.lsns.(!s) then s := r;
      if !s = !i then continue := false
      else begin
        swap h !i !s;
        i := !s
      end
    done;
    buf

  let is_empty h = h.len = 0
end

(* ------------------------------------------------------------------ *)
(* Commit-window API (caller holds the row's write locks)             *)

let mark_dirty t ~rid =
  let m = Atomic.get t.marks.(rid) in
  if m land 1 = 0 then Atomic.set t.marks.(rid) (m + 1)

let mark_undo t ~rid =
  let m = Atomic.get t.marks.(rid) in
  if m land 1 = 1 then Atomic.set t.marks.(rid) (m + 1)

let log_commit t ~tid ~n ~rid =
  let st = t.store in
  let lsn = Atomic.fetch_and_add t.next_lsn 1 in
  (* Stamp every written row's committed LSN and close its seqlock
     window.  Duplicate rids in the write list are parity-guarded. *)
  for i = 0 to n - 1 do
    let r = rid i in
    let m = Atomic.get t.marks.(r) in
    if m land 1 = 1 then begin
      t.row_lsn.(r) <- lsn;
      Atomic.set t.marks.(r) (m + 1)
    end
  done;
  let sz = Record.size ~nwrites:n ~row_len:st.row_len in
  let buf = Bytes.create sz in
  ignore
    (Record.encode buf ~pos:0 ~lsn ~table_id:st.table_id ~row_len:st.row_len ~n ~rid
       ~row:(fun i -> st.read_row (rid i)));
  (* LSN drawn but not yet published: a kill here leaves a gap that
     recovery never sees (nothing after it can be contiguous-flushed). *)
  if !Chaos.on then Chaos.point Chaos.Wal_append;
  Ring.push t.rings.(tid) ~lsn buf;
  Atomic.incr t.m_records;
  lsn

let flushed_lsn t = Atomic.get t.flushed

let wait_durable t ~lsn =
  if Atomic.get t.flushed < lsn then begin
    Mutex.lock t.mu;
    while Atomic.get t.flushed < lsn do
      Condition.wait t.cond t.mu
    done;
    Mutex.unlock t.mu
  end

(* ------------------------------------------------------------------ *)
(* Log-writer domain                                                  *)

let open_segment dir seq =
  Unix.openfile (seg_path dir seq) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644

let drain_rings t heap =
  let n = ref 0 in
  Array.iter
    (fun ring ->
      let continue = ref true in
      while !continue do
        match Ring.pop ring with
        | Some (lsn, buf) ->
            Heap.add heap lsn buf;
            incr n
        | None -> continue := false
      done)
    t.rings;
  !n

let rings_empty t = Array.for_all Ring.is_empty t.rings

(* Flush the contiguous LSN prefix of the reorder buffer: one write,
   one fsync, one broadcast.  Returns true if anything was flushed. *)
let flush_batch t heap batch =
  Buffer.clear batch;
  let expected = ref (Atomic.get t.flushed + 1) in
  while Heap.min_lsn heap = !expected do
    Buffer.add_bytes batch (Heap.pop_min heap);
    incr expected
  done;
  if Buffer.length batch = 0 then false
  else begin
    let s = Buffer.contents batch in
    write_all t.fd s;
    if !Chaos.on then Chaos.point Chaos.Wal_fsync;
    (match t.cfg.sync with
    | Sync_fsync ->
        Unix.fsync t.fd;
        Atomic.incr t.m_fsyncs
    | Sync_none -> ());
    t.seg_bytes <- t.seg_bytes + String.length s;
    t.bytes_since_ckpt <- t.bytes_since_ckpt + String.length s;
    Atomic.incr t.m_batches;
    ignore (Atomic.fetch_and_add t.m_bytes (String.length s));
    Mutex.lock t.mu;
    Atomic.set t.flushed (!expected - 1);
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    true
  end

(* Fuzzy checkpoint, run on the writer domain.

   1. Pin [start_lsn := next_lsn] and flush everything below it.  Every
      record in the current segments now has lsn < start_lsn (flushed
      records are always below next_lsn by construction).
   2. Rotate to a fresh segment.
   3. Seqlock-copy every row (payload + committed row LSN).  The copy
      happens after step 1's flush, which happens after those records'
      payload writes — so the image reflects *at least* every effect in
      the old segments, each stamped with its committed LSN.
   4. Write image to a temp file, fsync, atomically rename, fsync dir.
   5. Delete the old segments: all their records have lsn < start_lsn
      and are provably reflected in the image (with per-row LSNs that
      make replaying any surviving duplicate a no-op). *)
let do_checkpoint t heap batch =
  if !Chaos.on then Chaos.point Chaos.Wal_checkpoint;
  let st = t.store in
  let start_lsn = Atomic.get t.next_lsn in
  while Atomic.get t.flushed < start_lsn - 1 do
    ignore (drain_rings t heap);
    if not (flush_batch t heap batch) then Domain.cpu_relax ()
  done;
  (match t.cfg.sync with Sync_fsync -> Unix.fsync t.fd | Sync_none -> ());
  Unix.close t.fd;
  let old_seq = t.seg_seq in
  t.seg_seq <- t.seg_seq + 1;
  t.fd <- open_segment t.cfg.dir t.seg_seq;
  t.seg_bytes <- 0;
  fsync_dir t.cfg.dir;
  let img = Bytes.create (image_size st) in
  Bytes.blit_string image_magic 0 img 0 8;
  set_u32 img 8 image_version;
  set_u32 img 12 st.table_id;
  set_u32 img 16 st.num_rows;
  set_u32 img 20 st.row_len;
  set_i64 img 24 start_lsn;
  for rid = 0 to st.num_rows - 1 do
    let off = image_row_off st rid in
    let rec copy () =
      let m1 = Atomic.get t.marks.(rid) in
      if m1 land 1 = 1 then begin
        Domain.cpu_relax ();
        copy ()
      end
      else begin
        let lsn = t.row_lsn.(rid) in
        Bytes.blit (st.read_row rid) 0 img (off + 8) st.row_len;
        if Atomic.get t.marks.(rid) <> m1 then copy () else set_i64 img off lsn
      end
    in
    copy ()
  done;
  set_i64 img 32 (Atomic.get t.next_lsn - 1);
  let crc = Util.Crc32.bytes ~len:(Bytes.length img - 4) img in
  set_u32 img (Bytes.length img - 4) crc;
  let tmp = image_tmp_path t.cfg.dir in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd (Bytes.unsafe_to_string img);
  (match t.cfg.sync with Sync_fsync -> Unix.fsync fd | Sync_none -> ());
  Unix.close fd;
  (* A kill in this window leaves checkpoint.tmp plus the old image and
     all old segments — recovery ignores the tmp and replays as before. *)
  if !Chaos.on then Chaos.point Chaos.Wal_checkpoint;
  Unix.rename tmp (image_path t.cfg.dir);
  fsync_dir t.cfg.dir;
  for seq = 0 to old_seq do
    try Sys.remove (seg_path t.cfg.dir seq) with Sys_error _ -> ()
  done;
  t.bytes_since_ckpt <- 0;
  Atomic.incr t.m_checkpoints;
  Atomic.set t.m_ckpt_lsn (start_lsn - 1);
  Mutex.lock t.mu;
  t.ckpt_done <- t.ckpt_done + 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let writer_loop t =
  let heap = Heap.create () in
  let batch = Buffer.create 65536 in
  let idle = ref 0 in
  let running = ref true in
  while !running do
    ignore (drain_rings t heap);
    let progressed = flush_batch t heap batch in
    if Atomic.compare_and_set t.ckpt_req true false then do_checkpoint t heap batch
    else if
      t.cfg.ckpt_every_bytes > 0 && t.bytes_since_ckpt >= t.cfg.ckpt_every_bytes
    then do_checkpoint t heap batch;
    if progressed then idle := 0
    else if Atomic.get t.stopping && Heap.is_empty heap && rings_empty t then
      running := false
    else begin
      (* Idle backoff: spin briefly (latency), then yield, then sleep
         (CPU) — commit acks tolerate ~100 µs of writer doze. *)
      incr idle;
      if !idle < 64 then Domain.cpu_relax ()
      else if !idle < 128 then Thread.yield ()
      else Unix.sleepf 0.0001
    end
  done;
  (match t.cfg.sync with Sync_fsync -> (try Unix.fsync t.fd with Unix.Unix_error _ -> ()) | Sync_none -> ());
  Unix.close t.fd;
  Util.Tid.release ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)

let create ?(next_lsn = 1) cfg store =
  if store.row_len > Record.max_row_len then invalid_arg "Wal.create: row_len > 65535";
  (try Unix.mkdir cfg.dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let seg_seq =
    match segments ~dir:cfg.dir with [] -> 0 | segs -> fst (List.hd (List.rev segs)) + 1
  in
  let t =
    {
      cfg;
      store;
      next_lsn = Atomic.make next_lsn;
      marks = Array.init store.num_rows (fun _ -> Atomic.make 0);
      row_lsn = Array.make store.num_rows 0;
      rings = Array.init Util.Tid.max_threads (fun _ -> Ring.create ~capacity:cfg.ring_cap);
      flushed = Atomic.make (next_lsn - 1);
      mu = Mutex.create ();
      cond = Condition.create ();
      stopping = Atomic.make false;
      ckpt_req = Atomic.make false;
      ckpt_done = 0;
      writer = None;
      fd = open_segment cfg.dir seg_seq;
      seg_seq;
      seg_bytes = 0;
      bytes_since_ckpt = 0;
      m_records = Atomic.make 0;
      m_batches = Atomic.make 0;
      m_fsyncs = Atomic.make 0;
      m_bytes = Atomic.make 0;
      m_checkpoints = Atomic.make 0;
      m_ckpt_lsn = Atomic.make 0;
    }
  in
  fsync_dir cfg.dir;
  t.writer <- Some (Domain.spawn (fun () -> writer_loop t));
  t

let checkpoint t =
  Mutex.lock t.mu;
  let before = t.ckpt_done in
  Atomic.set t.ckpt_req true;
  while t.ckpt_done = before do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu

let stop t =
  Atomic.set t.stopping true;
  (match t.writer with Some d -> Domain.join d | None -> ());
  t.writer <- None

let metrics t =
  [
    ("records", Atomic.get t.m_records);
    ("batches", Atomic.get t.m_batches);
    ("fsyncs", Atomic.get t.m_fsyncs);
    ("bytes", Atomic.get t.m_bytes);
    ("checkpoints", Atomic.get t.m_checkpoints);
    ("flushed_lsn", Atomic.get t.flushed);
    ("next_lsn", Atomic.get t.next_lsn);
    ("last_checkpoint_lsn", Atomic.get t.m_ckpt_lsn);
  ]

(* ------------------------------------------------------------------ *)
(* Recovery                                                           *)

type recovery = {
  r_image_lsn : int;  (** end LSN of the checkpoint image, 0 if none *)
  r_max_lsn : int;  (** highest LSN seen in the log *)
  r_next_lsn : int;  (** resume point for [create ~next_lsn] *)
  r_records : int;
  r_replayed : int;  (** row writes applied *)
  r_skipped : int;  (** row writes below the per-row high-water mark *)
  r_torn_tail : bool;
  r_truncated_bytes : int;
  r_segments : int;
}

let truncate_file path len =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd len;
      try Unix.fsync fd with Unix.Unix_error _ -> ())

let recover ~dir store =
  (* A leftover checkpoint.tmp is an interrupted checkpoint: the rename
     never happened, so it is dead weight. *)
  (try Sys.remove (image_tmp_path dir) with Sys_error _ -> ());
  let applied = Array.make store.num_rows 0 in
  let image_lsn = ref 0 in
  (match read_file (image_path dir) with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
      corruptf "checkpoint image unreadable: %s" (Unix.error_message e)
  | buf ->
      let info = check_image buf in
      if info.i_table_id <> store.table_id then
        corruptf "checkpoint image: table id %d, expected %d" info.i_table_id store.table_id;
      if info.i_num_rows <> store.num_rows || info.i_row_len <> store.row_len then
        corruptf "checkpoint image: geometry %dx%d, expected %dx%d" info.i_num_rows
          info.i_row_len store.num_rows store.row_len;
      for rid = 0 to store.num_rows - 1 do
        let off = image_row_off store rid in
        store.write_row rid (Bytes.sub buf (off + 8) store.row_len);
        applied.(rid) <- get_i64 buf off
      done;
      image_lsn := info.i_end_lsn);
  let segs = segments ~dir in
  let nsegs = List.length segs in
  let max_lsn = ref (Array.fold_left max !image_lsn applied) in
  let records = ref 0 and replayed = ref 0 and skipped = ref 0 in
  let torn = ref false and truncated = ref 0 in
  List.iteri
    (fun i (_, path) ->
      let last = i = nsegs - 1 in
      let buf = read_file path in
      let len = Bytes.length buf in
      let off = ref 0 in
      let continue = ref true in
      while !continue do
        if !off = len then continue := false
        else
          match Record.decode buf ~pos:!off ~avail:(len - !off) with
          | Ok (r, sz) ->
              if r.r_table_id <> store.table_id then
                corruptf "%s+%d: table id %d, expected %d" path !off r.r_table_id
                  store.table_id;
              if r.r_row_len <> store.row_len then
                corruptf "%s+%d: row length %d, expected %d" path !off r.r_row_len
                  store.row_len;
              incr records;
              Array.iter
                (fun (rid, img) ->
                  if rid < 0 || rid >= store.num_rows then
                    corruptf "%s+%d: row id %d out of range" path !off rid;
                  if r.r_lsn > applied.(rid) then begin
                    store.write_row rid img;
                    applied.(rid) <- r.r_lsn;
                    incr replayed
                  end
                  else incr skipped)
                r.r_writes;
              if r.r_lsn > !max_lsn then max_lsn := r.r_lsn;
              off := !off + sz
          | Error reason ->
              if not last then corruptf "%s+%d: %s (interior segment)" path !off reason
              else begin
                (* Torn tail or corruption?  A structurally valid record
                   *after* the bad bytes means the damage is interior —
                   the writer appends sequentially, so a genuine tear is
                   always a missing suffix. *)
                match Record.find_valid buf ~pos:(!off + 1) ~len ~after_lsn:!max_lsn with
                | Some p ->
                    corruptf "%s+%d: %s, but a valid record follows at +%d — interior corruption"
                      path !off reason p
                | None ->
                    torn := true;
                    truncated := len - !off;
                    truncate_file path !off;
                    continue := false
              end
      done)
    segs;
  {
    r_image_lsn = !image_lsn;
    r_max_lsn = !max_lsn;
    r_next_lsn = !max_lsn + 1;
    r_records = !records;
    r_replayed = !replayed;
    r_skipped = !skipped;
    r_torn_tail = !torn;
    r_truncated_bytes = !truncated;
    r_segments = nsegs;
  }
