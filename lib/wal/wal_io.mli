(** Storage-fault VFS (DESIGN.md §16): the WAL's entire I/O surface —
    open / write / fsync / rename / readdir / unlink / truncate — behind
    one record of closures, so the same log code runs against the real
    filesystem (passthrough, the zero-overhead default), a seeded
    fault-injecting wrapper, or the simulated block device of
    {!Sim_fs}.

    Error contract: "expected" conditions keep the [Unix] idiom
    ([io_open_ro] on a missing file raises [Unix.Unix_error (ENOENT, _, _)]
    exactly as [Unix.openfile] would), while injected and
    simulated device failures raise {!Io_error} with a [transient] bit
    that tells the WAL whether a capped-backoff retry is allowed.
    [fsync] failures are {e never} transient: per the fsyncgate
    semantics, a failed fsync means the unflushed pages may already be
    gone, and retrying the call would turn data loss into a silent lie
    (the injector actually drops them — see {!faulty}). *)

exception
  Io_error of {
    op : string;  (** "write", "fsync", "open", "rename", ... *)
    path : string;
    error : Unix.error;
    transient : bool;
        (** a retry may succeed (transient EIO, ENOSPC blip); always
            [false] for fsync failures and dead devices *)
  }

(** An open file.  Positions are implicit (sequential), matching how the
    WAL writes: segments and images are append-only streams. *)
type file = {
  f_path : string;
  f_write : Bytes.t -> pos:int -> len:int -> int;
      (** short writes allowed: returns bytes written, >= 1 on success *)
  f_read : Bytes.t -> pos:int -> len:int -> int;  (** 0 = EOF *)
  f_size : unit -> int;
  f_truncate : int -> unit;
  f_fsync : unit -> unit;
  f_close : unit -> unit;
}

type t = {
  io_name : string;  (** "passthrough", "faulty(...)", "sim" *)
  io_mkdir : string -> unit;  (** EEXIST tolerated *)
  io_readdir : string -> string array;  (** [[||]] when the dir is missing *)
  io_exists : string -> bool;
  io_create : string -> file;  (** O_WRONLY + O_CREAT + O_TRUNC *)
  io_open_ro : string -> file;  (** raises [Unix_error (ENOENT, _, _)] *)
  io_open_rw : string -> file;  (** existing file, for truncation *)
  io_rename : string -> string -> unit;
  io_unlink : string -> unit;  (** ENOENT tolerated *)
  io_fsync_dir : string -> unit;
      (** fsync the directory fd.  EINVAL/ENOTSUP (filesystems that
          cannot sync a directory handle) are tolerated; a real EIO
          propagates — swallowing it was the fsyncgate bug class this
          layer exists to kill. *)
  io_metrics : unit -> (string * int) list;
      (** injected-fault and op counters, rendered as the
          [twoplsf_wal_io_*] OpenMetrics families; [[]] for passthrough
          (which counts nothing — zero overhead) *)
}

val passthrough : t
(** Direct [Unix] calls; the default everywhere. *)

val write_string : file -> string -> unit
(** Write the whole string, looping over short writes.  Raises the
    underlying {!Io_error} / [Unix_error] on failure; callers that need
    retry-with-resume should loop over [f_write] themselves. *)

val read_file : t -> string -> Bytes.t
(** Whole-file read through the VFS.  Raises
    [Unix_error (ENOENT, _, _)] when missing. *)

(** {2 Seeded fault injection} *)

type fault_config = {
  fseed : int;  (** every decision is a stateless hash of [(fseed, class, step)] *)
  write_eio_ppm : int;  (** P(EIO on a write), per call *)
  write_enospc_ppm : int;  (** P(ENOSPC on a write), per call *)
  write_short_ppm : int;  (** P(short write), per call *)
  fsync_fail_ppm : int;  (** P(fsync failure — unflushed pages dropped) *)
  meta_eio_ppm : int;  (** P(EIO on open / create / rename / unlink) *)
  permanent_ppm : int;
      (** P(an injected EIO is permanent: the device dies and every
          subsequent mutating op fails non-transiently) *)
  enospc_after_bytes : int;
      (** device capacity: cumulative written bytes beyond this raise
          persistent ENOSPC; 0 = unlimited *)
}

val fault_config :
  ?write_eio_ppm:int ->
  ?write_enospc_ppm:int ->
  ?write_short_ppm:int ->
  ?fsync_fail_ppm:int ->
  ?meta_eio_ppm:int ->
  ?permanent_ppm:int ->
  ?enospc_after_bytes:int ->
  seed:int ->
  unit ->
  fault_config
(** All rates default to 0. *)

val faulty : fault_config -> t -> t
(** Wrap a VFS with seeded fault injection.  Deterministic: decisions
    are pure hashes of [(seed, fault class, per-class step counter)], so
    the same op sequence sees the same faults.  Fsyncgate semantics on
    an injected fsync failure: the wrapped file is truncated back to its
    last successfully-synced length {e before} the error is raised — the
    unflushed pages are genuinely lost, exactly like a page-cache
    write-back failure — and the error is marked non-transient.
    [io_metrics] reports op counts, injections by class, and
    [device_dead]. *)
