(** Zero-dependency OpenMetrics/Prometheus exporter (DESIGN.md §12).

    Serves the cumulative telemetry views — per-scope commit/abort/event
    counters, the latency-phase accumulators, the lock-wait and
    transaction-latency histograms as cumulative buckets, the watchdog
    verdict counters and every registered {!Monitor} gauge — as
    OpenMetrics text over a loopback HTTP listener:

    {v curl http://localhost:<port>/metrics v}

    [GET /metrics] (or [/]) returns the metrics; anything else is 404.
    Rendering reads the same racy-but-monotonic cumulative views as the
    monitor, so a scrape can attribute an increment to the neighbouring
    scrape but never loses one.  Requires {!Telemetry.on} for non-zero
    data (the bench CLI's [--metrics-port] implies [--telemetry]). *)

val start : port:int -> unit -> int
(** Bind 127.0.0.1:[port] (0 = ephemeral) and spawn the listener domain;
    no-op when already running.  Returns the actual bound port. *)

val stop : unit -> unit
(** Signal the listener domain, join it and close the socket (takes
    effect within the accept loop's 250 ms poll). *)

val running : unit -> bool

val port : unit -> int option
(** Bound port while running. *)

val render : unit -> string
(** The OpenMetrics payload a scrape would receive right now (exposed for
    tests and for dumping to a [metrics-*.prom] file). *)

val register_extra : name:string -> (Buffer.t -> unit) -> unit
(** Register an extra metric-family provider, appended to every render
    before the [# EOF] terminator.  Layers the exporter must not depend
    on (the WAL's [twoplsf_wal_*] families) hook in here.  Registering
    under an existing [name] replaces the provider; one that raises is
    skipped for that scrape. *)

val unregister_extra : name:string -> unit
