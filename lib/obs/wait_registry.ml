(* The per-thread wait registry: each worker publishes what it is
   currently blocked on — (kind, lock table, lock index, wait start,
   observed conflictor) — so the watchdog can reconstruct the waits-for
   graph without touching any lock word on the waiters' behalf (the BRAVO
   trick: cheap per-thread published state instead of a shared structure).

   Storage is one flat [int array] with a [stride]-word (cache-line)
   stripe per thread id; every field of a stripe is written only by its
   owning thread with plain stores, so publication costs a handful of
   stores into an owned cache line and never a fence or RMW.  The [kind]
   word is written *last* on publish and *first* (to [idle]) on clear, so
   a sampler that sees a non-idle kind sees fields that belonged either to
   this wait episode or to an earlier one — never uninitialised garbage.
   Cross-domain reads are racy but memory-safe (word-sized ints cannot
   tear in OCaml); the watchdog treats every sample as a hint to be
   debounced, not as ground truth (see DESIGN.md §9).

   Publication is gated on [!on] at the call sites, which sit only on lock
   *slow* paths — the lock fast path is untouched, and a disabled slow
   path pays one load + predicted branch. *)

let on = ref false
let enable () = on := true
let disable () = on := false

(* Wait kinds, also the [kind] slot encoding. *)
let idle = 0
let read_wait = 1 (* spinning in try_or_wait_read_lock *)
let write_wait = 2 (* spinning in try_or_wait_write_lock *)
let conflictor_wait = 3 (* post-abort spin on the conflictor's announcement *)

let kind_label = function
  | 1 -> "read-wait"
  | 2 -> "write-wait"
  | 3 -> "conflictor-wait"
  | _ -> "idle"

(* Stripe layout: [0] kind, [1] table id, [2] lock index, [3] wait start
   (ns), [4] observed conflictor tid; [5..7] padding. *)
let stride = 8

let slots = Array.make (Util.Tid.max_threads * stride) 0

let publish ~tid ~kind ~table ~lock ~since_ns ~observed =
  let i = tid * stride in
  slots.(i + 1) <- table;
  slots.(i + 2) <- lock;
  slots.(i + 3) <- since_ns;
  slots.(i + 4) <- observed;
  slots.(i) <- kind

let set_observed ~tid otid = slots.((tid * stride) + 4) <- otid
let clear ~tid = slots.(tid * stride) <- idle

type entry = {
  tid : int;
  kind : int;
  table : int;
  lock : int;
  since_ns : int;
  observed : int;
}

let snapshot () =
  let hwm = Util.Tid.high_water () in
  let out = ref [] in
  for tid = hwm - 1 downto 0 do
    let i = tid * stride in
    let kind = slots.(i) in
    if kind <> idle then
      out :=
        {
          tid;
          kind;
          table = slots.(i + 1);
          lock = slots.(i + 2);
          since_ns = slots.(i + 3);
          observed = slots.(i + 4);
        }
        :: !out
  done;
  !out
