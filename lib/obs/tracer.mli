(** Per-thread ring-buffer event tracer with a Chrome trace-event JSON
    exporter (loadable in Perfetto / chrome://tracing).

    Recording is allocation-free — three plain stores into a
    thread-private int ring — and keeps the last {!set_capacity} events
    per thread.  Callers gate recording on {!Telemetry.trace_on}. *)

val default_capacity : int

val set_capacity : int -> unit
(** Events retained per thread (default 65536).  Affects rings created
    after the call; set before enabling tracing. *)

val intern : string -> int
(** Intern an event name, returning its id.  Takes a mutex; call at
    set-up time (scope creation), not on hot paths. *)

val span : tid:int -> name:int -> ts_ns:int -> dur_ns:int -> unit
(** Record a complete span (Chrome "X" phase). [name] is an {!intern} id. *)

val instant : tid:int -> name:int -> ts_ns:int -> unit
(** Record an instant event (Chrome "i" phase, thread scope). *)

val export : path:string -> unit
(** Write every thread's retained events as Chrome trace-event JSON
    (microsecond timestamps, one pid, tid = dense thread id). *)

val reset : unit -> unit
(** Drop all rings.  Call only while writers are quiescent. *)
