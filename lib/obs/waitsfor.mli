(** Waits-for graph construction for the runtime-verification watchdog.

    Lock tables register themselves as read-only introspection closures
    (keeping this library free of a dependency on the core library);
    {!edges_of_snapshot} combines a {!Wait_registry} snapshot with those
    closures into waits-for edges, and {!cycle_of_pairs} /
    {!cycle_of_edges} detect cycles — which the paper's timestamp ordering
    proves impossible, so any *confirmed* cycle is an invariant
    violation.  All introspection is racy by contract: one snapshot is a
    hint, and the watchdog re-confirms before reporting. *)

type lock_view = {
  writer : int;  (** tid currently holding the write side, or [-1] *)
  writer_ts : int;  (** the writer's announced timestamp (0 = none) *)
  readers : int list;  (** tids with a set read-indicator bit *)
}
(** Racy point-in-time view of one reader-writer lock (see
    [Rwl_sf.inspect]). *)

type table = {
  id : int;
  name : string;
  num_locks : int;
  inspect : int -> lock_view;
  announced : int -> int;
  clock : unit -> int;
}

val register_table :
  name:string ->
  num_locks:int ->
  inspect:(int -> lock_view) ->
  announced:(int -> int) ->
  clock:(unit -> int) ->
  int
(** Register a lock table for watching; returns its id, which waiters
    publish in their {!Wait_registry} entries.  The closures must be
    safe to call from the watchdog domain at any time (read-only, racy).
    Registered tables are retained for the life of the process — register
    only when watching is wanted (the lock tables gate on
    [!Wait_registry.on]). *)

val tables : unit -> table list
val find_table : int -> table option

type edge = {
  waiter : int;
  holder : int;
  kind : int;  (** {!Wait_registry} kind of the waiter *)
  table_id : int;
  lock : int;  (** [-1] for conflictor waits *)
  waiter_ts : int;
  holder_ts : int;
  since_ns : int;
}
(** [waiter] cannot progress until [holder] releases [lock] (or commits,
    for a conflictor wait); timestamps are snapshotted at construction so
    reports can show the priority order. *)

val edge_to_string : edge -> string

val waiting_pred : Wait_registry.entry list -> int -> int -> int -> bool
(** [waiting_pred entries tid table lock] — is [tid] publishing a lock
    wait on ([table], [lock]) in this snapshot?  Used to tell protocol
    artifacts (a write waiter's read-indicator bit, §2.5) from genuinely
    held locks, both here and in the watchdog's mutual-exclusion check. *)

val edges_of_snapshot : Wait_registry.entry list -> edge list
(** Waits-for edges of a registry snapshot.  Read-indicator edges skip
    threads that co-wait on the same lock (their bit is a waiting-protocol
    artifact, and keeping them manufactures phantom cycles between two
    write waiters). *)

val cycle_of_pairs : (int * int) list -> int list option
(** First cycle in a (waiter, holder) edge list, as the tids along it (a
    self-edge yields a singleton).  Pure — unit-testable on crafted
    graphs. *)

val cycle_of_edges : edge list -> edge list option
(** Same, returning one representative edge per cycle step. *)

val chain_from : edge list -> int -> max:int -> int list
(** Blocking chain from a tid: follow waits-for successors until a repeat,
    a thread with no outgoing edge, or [max] hops. *)
