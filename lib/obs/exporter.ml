(* Zero-dependency OpenMetrics exporter (DESIGN.md §12).

   A background domain owns a loopback TCP listener; each GET /metrics
   renders the cumulative telemetry views — commit/abort/event counters,
   the phase accumulators, the log2 histograms as cumulative buckets and
   every registered monitor gauge — in Prometheus/OpenMetrics text
   format.  Counter reads are racy with the usual contract (a scrape can
   attribute an increment to the neighbouring scrape, never lose it).

   The accept loop polls with a short [Unix.select] timeout so [stop]
   (an atomic flag + join) takes effect within ~250 ms without needing to
   interrupt a blocking accept. *)

let metric_prefix = "twoplsf"

(* OpenMetrics label values escape backslash, double quote and newline. *)
let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Metric and label *names* must match [a-zA-Z_][a-zA-Z0-9_]*. *)
let sanitize_name s =
  String.mapi
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> c
      | '0' .. '9' when i > 0 -> c
      | _ -> '_')
    s

(* One counter family over every scope, one sample per non-zero label. *)
let counter_family b ~name ~help ~label_key ~rows =
  let any = List.exists (fun (_, counts) -> counts <> []) rows in
  if any then begin
    Printf.bprintf b "# TYPE %s_%s counter\n" metric_prefix name;
    Printf.bprintf b "# HELP %s_%s %s\n" metric_prefix name help;
    List.iter
      (fun (scope, counts) ->
        List.iter
          (fun (k, v) ->
            Printf.bprintf b "%s_%s_total{scope=\"%s\",%s=\"%s\"} %d\n"
              metric_prefix name (escape_label scope) label_key
              (escape_label k) v)
          counts)
      rows
  end

let simple_counter b ~name ~help ~rows =
  Printf.bprintf b "# TYPE %s_%s counter\n" metric_prefix name;
  Printf.bprintf b "# HELP %s_%s %s\n" metric_prefix name help;
  List.iter
    (fun (scope, v) ->
      Printf.bprintf b "%s_%s_total{scope=\"%s\"} %d\n" metric_prefix name
        (escape_label scope) v)
    rows

(* A log2-bucket histogram as cumulative OpenMetrics buckets.  Bucket 0
   holds values <= 0 (le="0"); bucket b < overflow holds values < 2^b
   (le="2^b - 1" for integer samples); the overflow bucket is +Inf. *)
let histogram_family b ~name ~help ~rows =
  let any = List.exists (fun (_, buckets, _) -> buckets <> [||]) rows in
  if any then begin
    Printf.bprintf b "# TYPE %s_%s histogram\n" metric_prefix name;
    Printf.bprintf b "# HELP %s_%s %s\n" metric_prefix name help;
    List.iter
      (fun (scope, buckets, sum) ->
        let scope_l = escape_label scope in
        let cum = ref 0 in
        Array.iteri
          (fun i v ->
            cum := !cum + v;
            if i = Array.length buckets - 1 then
              Printf.bprintf b "%s_%s_bucket{scope=\"%s\",le=\"+Inf\"} %d\n"
                metric_prefix name scope_l !cum
            else
              Printf.bprintf b "%s_%s_bucket{scope=\"%s\",le=\"%d\"} %d\n"
                metric_prefix name scope_l
                (if i = 0 then 0 else (1 lsl i) - 1)
                !cum)
          buckets;
        Printf.bprintf b "%s_%s_count{scope=\"%s\"} %d\n" metric_prefix name
          scope_l !cum;
        match sum with
        | Some s ->
            Printf.bprintf b "%s_%s_sum{scope=\"%s\"} %d\n" metric_prefix name
              scope_l s
        | None -> ())
      rows
  end

(* Extra metric families from layers the exporter must not depend on
   (the WAL renders twoplsf_wal_* through this).  Keyed by name so
   re-registration replaces rather than duplicates; a provider that
   raises is dropped from that scrape only. *)
let extras_mutex = Mutex.create ()
let extras : (string * (Buffer.t -> unit)) list ref = ref []

let register_extra ~name f =
  Mutex.lock extras_mutex;
  extras := (name, f) :: List.remove_assoc name !extras;
  Mutex.unlock extras_mutex

let unregister_extra ~name =
  Mutex.lock extras_mutex;
  extras := List.remove_assoc name !extras;
  Mutex.unlock extras_mutex

let render () =
  let b = Buffer.create 8192 in
  let scopes = Scope.all () in
  simple_counter b ~name:"txns" ~help:"Committed transactions"
    ~rows:
      (List.map
         (fun sc ->
           (Scope.name sc, Array.fold_left ( + ) 0 (Scope.hist_txn sc)))
         scopes);
  counter_family b ~name:"aborts" ~help:"Aborted attempts by reason"
    ~label_key:"reason"
    ~rows:
      (List.map (fun sc -> (Scope.name sc, Scope.cumulative_abort_counts sc))
         scopes);
  counter_family b ~name:"events" ~help:"Instrumentation events"
    ~label_key:"event"
    ~rows:
      (List.map (fun sc -> (Scope.name sc, Scope.cumulative_event_counts sc))
         scopes);
  counter_family b ~name:"phase_ns"
    ~help:"Latency decomposition by phase, nanoseconds" ~label_key:"phase"
    ~rows:
      (List.map (fun sc -> (Scope.name sc, Scope.cumulative_phase_counts sc))
         scopes);
  simple_counter b ~name:"txn_ns"
    ~help:"Total transaction wall-clock nanoseconds"
    ~rows:
      (List.map (fun sc -> (Scope.name sc, Scope.cumulative_txn_total_ns sc))
         scopes);
  histogram_family b ~name:"lock_wait_ns"
    ~help:"Lock-wait slow path durations, nanoseconds"
    ~rows:
      (List.map
         (fun sc ->
           let phases = Scope.cumulative_phase_counts sc in
           let wait_sum =
             List.fold_left
               (fun acc ph ->
                 acc
                 + Option.value ~default:0
                     (List.assoc_opt (Phase.label ph) phases))
               0
               [ Phase.Read_lock_wait; Phase.Write_lock_wait ]
           in
           (Scope.name sc, Scope.hist_lock_wait sc, Some wait_sum))
         scopes);
  histogram_family b ~name:"txn_latency_ns"
    ~help:"Whole-transaction latencies, nanoseconds"
    ~rows:
      (List.map
         (fun sc ->
           ( Scope.name sc,
             Scope.hist_txn sc,
             Some (Scope.cumulative_txn_total_ns sc) ))
         scopes);
  (* Conflict cartography (DESIGN.md §13): per-lock hotspot families,
     one sample per hot (sketch-resident) lock.  Lock ids are label
     values: the cardinality is bounded by K per scope. *)
  (if !Conflict.on then begin
     let hot_rows =
       List.filter_map
         (fun sc ->
           let c = Scope.conflict sc in
           match Conflict.top c with
           | [] -> None
           | hots -> Some (escape_label (Scope.name sc), c, hots))
         scopes
     in
     if hot_rows <> [] then begin
       let lock_family ~name ~help sample =
         Printf.bprintf b "# TYPE %s_%s counter\n" metric_prefix name;
         Printf.bprintf b "# HELP %s_%s %s\n" metric_prefix name help;
         List.iter
           (fun (scope, _, hots) ->
             List.iter (fun h -> sample scope h) hots)
           hot_rows
       in
       lock_family ~name:"lock_attributed_ns"
         ~help:
           "Attributed (wait + wasted-attempt) nanoseconds per hot lock, \
            Space-Saving estimate" (fun scope h ->
           Printf.bprintf b
             "%s_lock_attributed_ns_total{scope=\"%s\",lock=\"%d\"} %d\n"
             metric_prefix scope h.Conflict.lock h.Conflict.weight_ns);
       lock_family ~name:"lock_wait_mode_ns"
         ~help:"Lock-wait nanoseconds per hot lock, split by mode"
         (fun scope h ->
           Printf.bprintf b
             "%s_lock_wait_mode_ns_total{scope=\"%s\",lock=\"%d\",mode=\"read\"} \
              %d\n"
             metric_prefix scope h.Conflict.lock h.Conflict.read_wait_ns;
           Printf.bprintf b
             "%s_lock_wait_mode_ns_total{scope=\"%s\",lock=\"%d\",mode=\"write\"} \
              %d\n"
             metric_prefix scope h.Conflict.lock h.Conflict.write_wait_ns);
       lock_family ~name:"lock_wait_episodes"
         ~help:"Lock-wait slow-path episodes per hot lock" (fun scope h ->
           Printf.bprintf b
             "%s_lock_wait_episodes_total{scope=\"%s\",lock=\"%d\"} %d\n"
             metric_prefix scope h.Conflict.lock h.Conflict.hits);
       lock_family ~name:"lock_aborts"
         ~help:"Aborts pinned on each hot lock" (fun scope h ->
           Printf.bprintf b
             "%s_lock_aborts_total{scope=\"%s\",lock=\"%d\"} %d\n"
             metric_prefix scope h.Conflict.lock h.Conflict.aborts)
     end;
     counter_family b ~name:"conflict_edges"
       ~help:"Abort-provenance edges by reason" ~label_key:"reason"
       ~rows:
         (List.map
            (fun sc ->
              let c = Scope.conflict sc in
              ( Scope.name sc,
                List.filter (fun (_, v) -> v > 0) (Conflict.edges_by_reason c)
              ))
            scopes)
   end);
  (* Watchdog verdict counters. *)
  Printf.bprintf b "# TYPE %s_watchdog_ticks counter\n" metric_prefix;
  Printf.bprintf b "%s_watchdog_ticks_total %d\n" metric_prefix
    (Watchdog.ticks ());
  Printf.bprintf b "# TYPE %s_watchdog_violations counter\n" metric_prefix;
  Printf.bprintf b "%s_watchdog_violations_total %d\n" metric_prefix
    (Watchdog.violations ());
  Printf.bprintf b "# TYPE %s_watchdog_starvation_reports counter\n"
    metric_prefix;
  Printf.bprintf b "%s_watchdog_starvation_reports_total %d\n" metric_prefix
    (Watchdog.starvation_reports ());
  (* Registered monitor gauges (admission controller, tests, ...). *)
  (match Monitor.gauge_values () with
  | [] -> ()
  | gs ->
      Printf.bprintf b "# TYPE %s_gauge gauge\n" metric_prefix;
      List.iter
        (fun (k, v) ->
          Printf.bprintf b "%s_gauge{name=\"%s\"} %d\n" metric_prefix
            (escape_label (sanitize_name k))
            v)
        gs);
  Mutex.lock extras_mutex;
  let providers = !extras in
  Mutex.unlock extras_mutex;
  List.iter (fun (_, f) -> try f b with _ -> ()) (List.rev providers);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* ---- the HTTP listener ---- *)

let content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

let http_response ~status ~body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | 0 -> ()
      | w -> go (off + w)
      | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ()
  in
  go 0

let serve_client fd =
  (* Read (a chunk of) the request; we only need the request line. *)
  let buf = Bytes.create 2048 in
  let n = try Unix.read fd buf 0 2048 with Unix.Unix_error _ -> 0 in
  let req = Bytes.sub_string buf 0 (Stdlib.max n 0) in
  let path =
    match String.split_on_char ' ' req with
    | _meth :: path :: _ -> path
    | _ -> "/"
  in
  let resp =
    match path with
    | "/metrics" | "/" -> http_response ~status:"200 OK" ~body:(render ())
    | _ -> http_response ~status:"404 Not Found" ~body:"# EOF\n"
  in
  write_all fd resp

type server = {
  sock : Unix.file_descr;
  srv_port : int;
  stop_flag : bool Atomic.t;
  dom : unit Domain.t;
}

let server : server option ref = ref None

let running () = !server <> None
let port () = match !server with Some s -> Some s.srv_port | None -> None

let start ~port () =
  if !server = None then begin
    let sock = Unix.socket PF_INET SOCK_STREAM 0 in
    (* Reuse-addr so a listener restarted within TIME_WAIT of the last
       run's connections binds cleanly; close the socket if bind/listen
       fails (EADDRINUSE must not leak the fd into a long-lived bench
       process that will retry). *)
    let actual_port =
      try
        Unix.setsockopt sock SO_REUSEADDR true;
        Unix.bind sock (ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen sock 16;
        match Unix.getsockname sock with
        | ADDR_INET (_, p) -> p
        | _ -> port
      with e ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        raise e
    in
    let stop_flag = Atomic.make false in
    let dom =
      Domain.spawn (fun () ->
          while not (Atomic.get stop_flag) do
            match Unix.select [ sock ] [] [] 0.25 with
            | [], _, _ -> ()
            | _ :: _, _, _ -> (
                match Unix.accept sock with
                | fd, _ ->
                    (try serve_client fd with _ -> ());
                    (try Unix.close fd with Unix.Unix_error _ -> ())
                | exception Unix.Unix_error _ -> ())
            | exception Unix.Unix_error (EINTR, _, _) -> ()
          done)
    in
    server := Some { sock; srv_port = actual_port; stop_flag; dom };
    actual_port
  end
  else match !server with Some s -> s.srv_port | None -> assert false

let stop () =
  match !server with
  | None -> ()
  | Some s ->
      Atomic.set s.stop_flag true;
      Domain.join s.dom;
      (try Unix.close s.sock with Unix.Unix_error _ -> ());
      server := None
