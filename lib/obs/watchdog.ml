(* The runtime-verification watchdog: a background domain that samples the
   wait registry and the registered lock tables on a fixed interval and
   checks the paper's structural invariants online:

   - deadlock-freedom (§2.5): a cycle in the waits-for graph is impossible
     under timestamp ordering.  A candidate cycle must reappear with the
     same (waiter, holder) signature in two consecutive ticks before it is
     reported — one racy snapshot can stitch edges from different moments
     into a phantom cycle, but a phantom does not survive two independent
     samples of a live system.
   - starvation-freedom (§2.2): a timestamped waiter whose announced value
     is unchanged while its table's conflict clock advances past a
     threshold is a starvation suspect.  Suspects are *reports*, not
     invariant violations: on an oversubscribed host a waiter (or its
     conflictor) can be descheduled for whole timeslices, so wall-clock
     stall alone cannot condemn the algorithm.
   - mutual exclusion: a set read-indicator bit concurrent with a write
     holder it does not belong to, where neither thread is merely *waiting*
     on that lock (waiters legitimately keep their bit set while they spin,
     §2.5), means two threads both believe they hold the lock.  Also
     debounced over two consecutive ticks.

   The watchdog also aggregates sampled waiters into a per-lock contention
   census, which the live monitor surfaces as a top-K list.

   Everything the watchdog reads is racy by design; it owns no locks and
   perturbs the measured system only by cache traffic on data the workers
   publish into their own lines. *)

type report =
  | Deadlock of Waitsfor.edge list
  | Starvation of {
      tid : int;
      table : string;
      lock : int;
      ts : int;
      stalled_ns : int;
      chain : int list;
    }
  | Mutex_violation of {
      table : string;
      lock : int;
      writer : int;
      reader : int;
    }

let report_to_string = function
  | Deadlock edges ->
      "DEADLOCK cycle: "
      ^ String.concat " ; " (List.map Waitsfor.edge_to_string edges)
  | Starvation { tid; table; lock; ts; stalled_ns; chain } ->
      Printf.sprintf
        "STARVATION suspect: t%d (ts=%d) stalled %.1f ms on %s#%d; chain %s"
        tid ts
        (float_of_int stalled_ns /. 1e6)
        table lock
        (String.concat " -> "
           (List.map (fun t -> "t" ^ string_of_int t) chain))
  | Mutex_violation { table; lock; writer; reader } ->
      Printf.sprintf
        "MUTUAL-EXCLUSION violation: %s#%d held by writer t%d while reader \
         t%d holds its read side"
        table lock writer reader

(* ---- shared state (watchdog domain writes; any domain reads) ---- *)

let state_mutex = Mutex.create ()
let report_log : report list ref = ref [] (* newest first *)
let report_count = ref 0
let max_reports = 1024
let violation_count = Atomic.make 0
let starvation_count = Atomic.make 0
let tick_counter = Atomic.make 0
let contention : (int * int, int) Hashtbl.t = Hashtbl.create 64

let add_report ~violation r =
  Mutex.lock state_mutex;
  if !report_count < max_reports then begin
    report_log := r :: !report_log;
    incr report_count
  end;
  Mutex.unlock state_mutex;
  (match r with Starvation _ -> Atomic.incr starvation_count | _ -> ());
  if violation then Atomic.incr violation_count

let reports () =
  Mutex.lock state_mutex;
  let l = List.rev !report_log in
  Mutex.unlock state_mutex;
  l

let violations () = Atomic.get violation_count
let starvation_reports () = Atomic.get starvation_count
let ticks () = Atomic.get tick_counter

let top_contended k =
  Mutex.lock state_mutex;
  let all =
    Hashtbl.fold (fun (tbl, lock) n acc -> (tbl, lock, n) :: acc) contention []
  in
  Mutex.unlock state_mutex;
  List.sort (fun (_, _, a) (_, _, b) -> compare b a) all
  |> List.filteri (fun i _ -> i < k)
  |> List.map (fun (tbl, lock, n) ->
         let name =
           match Waitsfor.find_table tbl with
           | Some t -> t.Waitsfor.name
           | None -> "table#" ^ string_of_int tbl
         in
         (name, lock, n))

(* ---- detector state (watchdog domain only) ---- *)

(* One wait episode of a thread, keyed by everything that identifies it;
   [clock0] is the table's conflict clock when the episode was first
   sampled, so "clock advanced" is relative to the episode. *)
type episode = {
  ep_table : int;
  ep_lock : int;
  ep_since : int;
  ep_ts : int;
  ep_clock0 : int;
  mutable ep_reported : bool;
}

let episodes : (int, episode) Hashtbl.t = Hashtbl.create 16
let prev_cycle : (int * int) list ref = ref []
let mutex_prev : (int * int * int * int, unit) Hashtbl.t = Hashtbl.create 16
let mutex_reported : (int * int * int * int, unit) Hashtbl.t = Hashtbl.create 16
let sweep_cursor : (int, int) Hashtbl.t = Hashtbl.create 4

(* Locks swept for mutual-exclusion violations per table per tick, on top
   of every lock that currently has a published waiter: bounds tick cost on
   big tables (a 65536-lock table is fully swept every 16 ticks). *)
let sweep_locks_per_tick = 4096

let reset_session () =
  Mutex.lock state_mutex;
  report_log := [];
  report_count := 0;
  Hashtbl.reset contention;
  Mutex.unlock state_mutex;
  Atomic.set violation_count 0;
  Atomic.set starvation_count 0;
  Atomic.set tick_counter 0;
  Hashtbl.reset episodes;
  prev_cycle := [];
  Hashtbl.reset mutex_prev;
  Hashtbl.reset mutex_reported;
  Hashtbl.reset sweep_cursor

let record_contention entries =
  Mutex.lock state_mutex;
  List.iter
    (fun (e : Wait_registry.entry) ->
      if e.kind <> Wait_registry.conflictor_wait && e.lock >= 0 then begin
        let key = (e.table, e.lock) in
        let cur = Option.value (Hashtbl.find_opt contention key) ~default:0 in
        Hashtbl.replace contention key (cur + 1)
      end)
    entries;
  Mutex.unlock state_mutex

let check_deadlock edges =
  match Waitsfor.cycle_of_edges edges with
  | Some cyc ->
      let signature =
        List.sort compare
          (List.map (fun (e : Waitsfor.edge) -> (e.waiter, e.holder)) cyc)
      in
      if signature <> [] && !prev_cycle = signature then begin
        add_report ~violation:true (Deadlock cyc);
        prev_cycle := [] (* report an episode once, not once per tick *)
      end
      else prev_cycle := signature
  | None -> prev_cycle := []

let check_starvation ~now ~starvation_ns entries edges =
  List.iter
    (fun (e : Wait_registry.entry) ->
      match Waitsfor.find_table e.table with
      | None -> ()
      | Some tbl ->
          let ts = tbl.Waitsfor.announced e.tid in
          if ts > 0 then begin
            let fresh () =
              Hashtbl.replace episodes e.tid
                {
                  ep_table = e.table;
                  ep_lock = e.lock;
                  ep_since = e.since_ns;
                  ep_ts = ts;
                  ep_clock0 = tbl.Waitsfor.clock ();
                  ep_reported = false;
                }
            in
            match Hashtbl.find_opt episodes e.tid with
            | Some ep
              when ep.ep_table = e.table && ep.ep_lock = e.lock
                   && ep.ep_since = e.since_ns && ep.ep_ts = ts ->
                if
                  (not ep.ep_reported)
                  && now - e.since_ns > starvation_ns
                  && tbl.Waitsfor.clock () > ep.ep_clock0
                then begin
                  ep.ep_reported <- true;
                  add_report ~violation:false
                    (Starvation
                       {
                         tid = e.tid;
                         table = tbl.Waitsfor.name;
                         lock = e.lock;
                         ts;
                         stalled_ns = now - e.since_ns;
                         chain = Waitsfor.chain_from edges e.tid ~max:8;
                       })
                end
            | _ -> fresh ()
          end)
    entries

let check_lock_mutex ~waiting (tbl : Waitsfor.table) w candidates =
  let v = tbl.Waitsfor.inspect w in
  if v.writer >= 0 && not (waiting v.writer tbl.Waitsfor.id w) then
    List.iter
      (fun r ->
        if r <> v.writer && not (waiting r tbl.Waitsfor.id w) then
          Hashtbl.replace candidates (tbl.Waitsfor.id, w, v.writer, r) ())
      v.readers

let check_mutual_exclusion entries =
  let waiting = Waitsfor.waiting_pred entries in
  let candidates : (int * int * int * int, unit) Hashtbl.t =
    Hashtbl.create 8
  in
  (* Every lock with a published waiter, plus a rotating sweep window. *)
  List.iter
    (fun (e : Wait_registry.entry) ->
      if e.lock >= 0 then
        match Waitsfor.find_table e.table with
        | Some tbl when e.lock < tbl.Waitsfor.num_locks ->
            check_lock_mutex ~waiting tbl e.lock candidates
        | _ -> ())
    entries;
  List.iter
    (fun (tbl : Waitsfor.table) ->
      let cur =
        Option.value (Hashtbl.find_opt sweep_cursor tbl.id) ~default:0
      in
      let n = Stdlib.min sweep_locks_per_tick tbl.num_locks in
      for i = 0 to n - 1 do
        check_lock_mutex ~waiting tbl ((cur + i) mod tbl.num_locks) candidates
      done;
      Hashtbl.replace sweep_cursor tbl.id ((cur + n) mod tbl.num_locks))
    (Waitsfor.tables ());
  (* Report candidates that persisted from the previous tick. *)
  Hashtbl.iter
    (fun ((tid_tbl, w, writer, reader) as key) () ->
      if Hashtbl.mem mutex_prev key && not (Hashtbl.mem mutex_reported key)
      then begin
        Hashtbl.replace mutex_reported key ();
        let table =
          match Waitsfor.find_table tid_tbl with
          | Some t -> t.Waitsfor.name
          | None -> "table#" ^ string_of_int tid_tbl
        in
        add_report ~violation:true
          (Mutex_violation { table; lock = w; writer; reader })
      end)
    candidates;
  Hashtbl.reset mutex_prev;
  Hashtbl.iter (fun k () -> Hashtbl.replace mutex_prev k ()) candidates

let tick ~starvation_ns () =
  let now = Telemetry.now_ns () in
  let entries = Wait_registry.snapshot () in
  let edges = Waitsfor.edges_of_snapshot entries in
  record_contention entries;
  check_deadlock edges;
  check_starvation ~now ~starvation_ns entries edges;
  check_mutual_exclusion entries;
  Atomic.incr tick_counter

(* ---- lifecycle ---- *)

let stop_flag = Atomic.make false
let dom : unit Domain.t option ref = ref None

let running () = !dom <> None

let start ?(interval_ms = 100) ?starvation_ms () =
  if !dom = None then begin
    let starvation_ms =
      Option.value starvation_ms ~default:(2 * interval_ms)
    in
    let starvation_ns = starvation_ms * 1_000_000 in
    reset_session ();
    Atomic.set stop_flag false;
    Wait_registry.enable ();
    let dt = float_of_int interval_ms /. 1000. in
    dom :=
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_flag) do
               tick ~starvation_ns ();
               Unix.sleepf dt
             done;
             tick ~starvation_ns ()))
  end

let stop () =
  match !dom with
  | None -> ()
  | Some d ->
      Atomic.set stop_flag true;
      Domain.join d;
      dom := None;
      Wait_registry.disable ()
