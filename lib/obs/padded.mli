(** A per-thread counter padded to cache-line granularity.

    Each thread increments its own 64-byte-separated slot with plain
    stores (no atomic RMW, no false sharing); readers sum the slots on
    demand.  Sums read while writers are still running may lag; sums read
    after the writer domains are joined are exact.  This is the padding
    scheme {!Stm_intf.Stats} and every telemetry counter share. *)

type t

val stride : int
(** Ints per thread slot (8 = one 64-byte cache line). *)

val create : unit -> t
(** One slot per {!Util.Tid.max_threads}. *)

val incr : t -> tid:int -> unit
val add : t -> tid:int -> int -> unit

val get : t -> tid:int -> int
(** Current value of one thread's slot. *)

val sum : t -> int
(** Sum over all thread slots. *)

val reset : t -> unit
(** Zero every slot.  Call only while writers are quiescent. *)
