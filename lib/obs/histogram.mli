(** Power-of-two-bucket log histogram, striped per thread.

    Records integer samples (nanoseconds, spin counts, ...) into
    [log2]-spaced buckets with a plain store into thread-private memory —
    cheap enough for lock slow paths.  Bucket 0 holds values [<= 0];
    bucket [b] ([1 <= b < num_buckets - 1]) holds [2^(b-1) <= v < 2^b];
    the last bucket is the overflow bucket. *)

type t

val num_buckets : int
(** 48: buckets 1–46 cover [1, 2^46), bucket 47 is overflow. *)

val create : unit -> t

val bucket_of_value : int -> int
(** Bucket index a sample lands in (= number of significant bits, clamped
    to the overflow bucket; 0 for values [<= 0]). *)

val bucket_lower_bound : int -> int
(** Smallest value belonging to bucket [b] (0 for bucket 0). *)

val record : t -> tid:int -> int -> unit
(** Record one sample from thread [tid].  Plain store; no atomics. *)

val snapshot : t -> int array
(** Per-bucket counts summed over all threads ([num_buckets] entries). *)

val total : t -> int
(** Number of recorded samples. *)

val percentile_upper : t -> float -> int
(** Upper bound of the bucket containing the p-th percentile sample
    (0 when empty, [max_int] when it falls in the overflow bucket). *)

val percentile_upper_of_buckets : int array -> float -> int
(** Same, over an already-materialised bucket array (e.g. a merged
    snapshot). *)

val reset : t -> unit
(** Zero all buckets.  Call only while writers are quiescent. *)

val pp_ns : int -> string
(** Human-readable duration ("840ns", "1.3us", "2.1ms"; "inf" for
    [max_int], the overflow-bucket percentile). *)
