(** Latency-decomposition phases (DESIGN.md §12).

    The {!partition} phases tile a transaction's wall-clock life; their
    sums per scope approximate the scope's total transaction nanoseconds.
    {!Wasted_retry} overlaps the partition — it re-counts the whole
    duration of every aborted attempt — and is reported as a ratio, never
    summed with the rest. *)

type t =
  | Body  (** attempt work outside lock waits and the commit step *)
  | Read_lock_wait  (** read-lock slow-path wait loops *)
  | Write_lock_wait  (** write-lock slow-path wait loops *)
  | Conflictor_wait  (** post-abort wait for the conflicting transaction *)
  | Backoff  (** contention-management sleeps between attempts *)
  | Commit  (** commit step of the winning attempt *)
  | Wasted_retry  (** full duration of attempts that aborted (overlaps) *)
  | Fsync_wait  (** post-release wait for the WAL group-commit ack *)

val num_phases : int
val index : t -> int
val label : t -> string
val all : t list

val partition : t list
(** The non-overlapping phases, in reporting order ([all] minus
    [Wasted_retry]). *)
