(** A telemetry scope: counters, histograms, latency-phase accumulators
    and trace-name ids for one concurrency control instance.

    Scopes register themselves in a global registry at creation so the
    harness can find them by the STM's [name] and the JSON dump can
    iterate all of them.  Counters live in a *current window* that the
    owning STM's [reset_stats] clears (folding the window into a
    cumulative view first), so per-benchmark abort-reason sums equal the
    benchmark's [aborts ()].

    Phase accounting (DESIGN.md §12): lock waits feed their phase and a
    per-thread per-attempt scratch; {!txn_commit}/{!txn_abort} take the
    scratch and attribute the remainder of the attempt to [Body] (and,
    when the caller timed it, [Commit]).  {!Phase.Wasted_retry}
    re-counts whole aborted attempts and overlaps the partition. *)

type t

val create : string -> t
(** Create and register a scope.  The name must be unique (it is the
    registry key and the trace-event name prefix). *)

val name : t -> string

val all : unit -> t list
(** Every scope created so far, in creation order. *)

val find : string -> t option

val conflict : t -> Conflict.t
(** The scope's conflict-cartography instance (DESIGN.md §13).  Created
    with the scope; recording into it is gated on [!Conflict.on] and
    happens inside {!lock_wait} (when the call site attributes a lock)
    and {!txn_abort}.  Not cleared by {!reset} — see {!Conflict.reset}. *)

(** {2 Recording} — call sites must check [!Telemetry.on] first. *)

val event : t -> tid:int -> Events.event -> unit
val abort : t -> tid:int -> Events.abort_reason -> unit

val phase_add : t -> tid:int -> Phase.t -> int -> unit
(** Add [ns] to a phase accumulator (non-positive values are dropped).
    Lock waits, attempt ends and conflictor waits feed their phases
    automatically; this is for externally-timed phases —
    contention-management backoff sleeps ({!Phase.Backoff}) and the
    baselines' native inter-attempt waits. *)

val lock_wait :
  t -> lock:int -> tid:int -> write:bool -> t0_ns:int -> spins:int ->
  acquired:bool -> unit
(** One completed lock-wait slow path: records the wait duration and spin
    count histograms, the waited-lock counter (when [acquired]), the
    read/write wait phase and the per-attempt wait scratch and, when
    tracing, a lock-wait span starting at [t0_ns].  When [lock >= 0] and
    conflict cartography is on, also attributes the wait to that lock in
    the scope's {!Conflict} sketch (-1 = unattributed). *)

val txn_commit :
  t -> tid:int -> txn_t0_ns:int -> att_t0_ns:int -> ?commit_t0_ns:int ->
  unit -> unit
(** Whole-transaction latency ([txn_t0_ns] = first attempt's start) plus
    phase attribution for the winning attempt: [commit_t0_ns .. now] is
    the [Commit] phase (when given), the rest of the attempt minus its
    lock waits is [Body].  When tracing, also a commit span covering the
    final attempt. *)

val txn_abort :
  t -> ?aborter:int -> ?lock:int -> tid:int -> att_t0_ns:int ->
  Events.abort_reason -> unit
(** One aborted attempt: abort-reason counter, [Body] phase for the
    attempt minus its lock waits, the whole attempt re-counted into
    {!Phase.Wasted_retry} and, when tracing, an abort span.  When
    conflict cartography is on, additionally records one provenance edge
    (victim = [tid], [aborter] tid or -1 = unknown, [lock] id or -1)
    charging the attempt's duration to [lock] — so per-victim edge totals
    always reconcile with the abort taxonomy. *)

val conflictor_wait : t -> tid:int -> t0_ns:int -> unit
(** One post-abort wait-for-conflictor episode (event, phase, span). *)

val fsync_wait : t -> tid:int -> t0_ns:int -> unit
(** One completed WAL durability wait ({!Phase.Fsync_wait}).  Also feeds
    the per-attempt wait scratch, so call it only for waits that happen
    inside the attempt window (before {!txn_commit}); the Body phase
    then excludes the wait by subtraction, exactly like lock waits. *)

(** {2 Reading} *)

val abort_counts : t -> (string * int) list
(** Current window, every reason in taxonomy order (zeros included). *)

val event_counts : t -> (string * int) list

val phase_counts : t -> (string * int) list
(** Current window, every phase in {!Phase.all} order (ns). *)

val txn_total_ns : t -> int
(** Exact sum of whole-transaction durations in the current window — the
    denominator the partition phases are measured against. *)

val aborts_total : t -> int

val aborts_of_tid : t -> tid:int -> int
(** Current-window abort count of one thread, summed over the taxonomy —
    what the conflict matrix's {!Conflict.row_total} for that victim must
    equal when no reset intervened. *)

val conflict_gauges : unit -> (string * int) list
(** Monitor gauge provider: for every scope with conflict data, the
    hottest lock id, its percent share of attributed ns and the edge
    total.  Install with
    [Monitor.add_gauges ~name:"conflict" Scope.conflict_gauges]. *)

val cumulative_abort_counts : t -> (string * int) list
(** Window plus everything folded in by earlier {!reset}s. *)

val cumulative_event_counts : t -> (string * int) list
val cumulative_phase_counts : t -> (string * int) list
val cumulative_txn_total_ns : t -> int

val hist_lock_wait : t -> int array
(** Cumulative lock-wait-duration buckets (ns), {!Histogram.num_buckets}
    entries. *)

val hist_spins : t -> int array
val hist_txn : t -> int array

val window_hist_lock_wait : t -> int array
(** Current-window lock-wait buckets (for per-benchmark percentiles). *)

val window_hist_txn : t -> int array

val reset : t -> unit
(** Fold the current window into the cumulative view and clear it.  Call
    only while writers are quiescent (the owning STM's [reset_stats]). *)

val reset_all : unit -> unit
