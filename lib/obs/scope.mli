(** A telemetry scope: counters, histograms and trace-name ids for one
    concurrency control instance.

    Scopes register themselves in a global registry at creation so the
    harness can find them by the STM's [name] and the JSON dump can
    iterate all of them.  Counters live in a *current window* that the
    owning STM's [reset_stats] clears (folding the window into a
    cumulative view first), so per-benchmark abort-reason sums equal the
    benchmark's [aborts ()]. *)

type t

val create : string -> t
(** Create and register a scope.  The name must be unique (it is the
    registry key and the trace-event name prefix). *)

val name : t -> string

val all : unit -> t list
(** Every scope created so far, in creation order. *)

val find : string -> t option

(** {2 Recording} — call sites must check [!Telemetry.on] first. *)

val event : t -> tid:int -> Events.event -> unit
val abort : t -> tid:int -> Events.abort_reason -> unit

val lock_wait :
  t -> tid:int -> write:bool -> t0_ns:int -> spins:int -> acquired:bool -> unit
(** One completed lock-wait slow path: records the wait duration and spin
    count histograms, the waited-lock counter (when [acquired]) and, when
    tracing, a lock-wait span starting at [t0_ns]. *)

val txn_commit : t -> tid:int -> txn_t0_ns:int -> att_t0_ns:int -> unit
(** Whole-transaction latency ([txn_t0_ns] = first attempt's start) plus,
    when tracing, a commit span covering the final attempt. *)

val txn_abort : t -> tid:int -> att_t0_ns:int -> Events.abort_reason -> unit
(** One aborted attempt: abort-reason counter plus, when tracing, an abort
    span covering the attempt. *)

val conflictor_wait : t -> tid:int -> t0_ns:int -> unit
(** One post-abort wait-for-conflictor episode. *)

(** {2 Reading} *)

val abort_counts : t -> (string * int) list
(** Current window, every reason in taxonomy order (zeros included). *)

val event_counts : t -> (string * int) list
val aborts_total : t -> int

val cumulative_abort_counts : t -> (string * int) list
(** Window plus everything folded in by earlier {!reset}s. *)

val cumulative_event_counts : t -> (string * int) list

val hist_lock_wait : t -> int array
(** Cumulative lock-wait-duration buckets (ns), {!Histogram.num_buckets}
    entries. *)

val hist_spins : t -> int array
val hist_txn : t -> int array

val reset : t -> unit
(** Fold the current window into the cumulative view and clear it.  Call
    only while writers are quiescent (the owning STM's [reset_stats]). *)

val reset_all : unit -> unit
