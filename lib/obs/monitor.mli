(** The live monitor: interval snapshot-and-delta of the telemetry
    counters and histograms, streamed as JSONL (one object per tick) plus
    an optional one-line console dashboard on stderr.

    Each tick carries the tick window's throughput, abort-reason deltas,
    p50/p99 lock-wait (from the lock-wait histogram delta), the watchdog's
    top-K contended locks and verdict counters, any new watchdog reports,
    and per-scope breakdowns for scopes active in the window.  See the
    README for a sample tick.

    Requires {!Telemetry.on} for non-zero data (the bench CLI enables it
    with the monitor).  Counter reads are racy with the same contract as
    the end-of-run telemetry dump: an increment may land in the adjacent
    tick, never vanish. *)

val start :
  ?interval_ms:int -> ?out_path:string -> ?console:bool -> unit -> unit
(** Spawn the monitor domain (no-op if running).  [out_path] receives the
    JSONL stream (flushed per tick); [console] prints the one-line
    dashboard to stderr.  The first tick is emitted one interval after
    [start], as a delta against the counters at [start] time. *)

val stop : unit -> unit
(** Join the monitor domain and close the output stream. *)

val running : unit -> bool

val set_phase : string -> unit
(** Label the currently running benchmark; stamped into each tick's
    ["phase"] field.  Called by the harness driver and the DBx runner at
    the start of every run. *)

val add_gauges : name:string -> (unit -> (string * int) list) -> unit
(** Register a named gauge provider, polled once per tick (and by the
    exporter); the pairs from every provider are merged into the tick's
    ["gauges"] object.  Installing under an existing name replaces only
    that provider, so the admission controller, tests and future
    subsystems can coexist.  Closures must be domain-safe, non-blocking
    and exception-free (a raising provider is skipped). *)

val remove_gauges : name:string -> unit

val set_gauges : (unit -> (string * int) list) -> unit
(** [add_gauges ~name:"default"] — kept for callers predating named
    providers. *)

val gauge_values : unit -> (string * int) list
(** Merged pairs from every registered provider (racy snapshots). *)
