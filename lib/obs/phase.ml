(* The latency-decomposition phase taxonomy (DESIGN.md §12).

   Every nanosecond of an instrumented transaction's wall-clock life is
   attributed to exactly one of the *partition* phases, so (modulo the
   few instructions between two clock reads) their per-scope sums add up
   to the scope's total transaction time:

     body            attempt work outside lock waits and the commit step
     read-lock-wait  read-lock slow-path wait loops
     write-lock-wait write-lock slow-path wait loops
     conflictor-wait post-abort waiting for the conflicting txn to finish
     backoff         contention-management sleeps between attempts
     commit          the commit step of the winning attempt
     fsync-wait      post-release wait for the WAL group-commit ack

   [Wasted_retry] is *not* part of the partition: it re-counts the full
   duration of every attempt that ended in an abort (the work BRAVO-style
   decompositions call wasted work).  Report it as a ratio against total
   transaction time, never add it to the partition sum. *)

type t =
  | Body
  | Read_lock_wait
  | Write_lock_wait
  | Conflictor_wait
  | Backoff
  | Commit
  | Wasted_retry
  | Fsync_wait

let num_phases = 8

(* Indices are part of the telemetry wire format ordering; new phases
   append ([Fsync_wait] postdates [Wasted_retry]) and never renumber. *)
let index = function
  | Body -> 0
  | Read_lock_wait -> 1
  | Write_lock_wait -> 2
  | Conflictor_wait -> 3
  | Backoff -> 4
  | Commit -> 5
  | Wasted_retry -> 6
  | Fsync_wait -> 7

let label = function
  | Body -> "body"
  | Read_lock_wait -> "read-lock-wait"
  | Write_lock_wait -> "write-lock-wait"
  | Conflictor_wait -> "conflictor-wait"
  | Backoff -> "backoff"
  | Commit -> "commit"
  | Wasted_retry -> "wasted-retry"
  | Fsync_wait -> "fsync-wait"

let all =
  [
    Body;
    Read_lock_wait;
    Write_lock_wait;
    Conflictor_wait;
    Backoff;
    Commit;
    Wasted_retry;
    Fsync_wait;
  ]

let partition =
  [
    Body;
    Read_lock_wait;
    Write_lock_wait;
    Conflictor_wait;
    Backoff;
    Commit;
    Fsync_wait;
  ]
