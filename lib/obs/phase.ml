(* The latency-decomposition phase taxonomy (DESIGN.md §12).

   Every nanosecond of an instrumented transaction's wall-clock life is
   attributed to exactly one of the *partition* phases, so (modulo the
   few instructions between two clock reads) their per-scope sums add up
   to the scope's total transaction time:

     body            attempt work outside lock waits and the commit step
     read-lock-wait  read-lock slow-path wait loops
     write-lock-wait write-lock slow-path wait loops
     conflictor-wait post-abort waiting for the conflicting txn to finish
     backoff         contention-management sleeps between attempts
     commit          the commit step of the winning attempt

   [Wasted_retry] is *not* part of the partition: it re-counts the full
   duration of every attempt that ended in an abort (the work BRAVO-style
   decompositions call wasted work).  Report it as a ratio against total
   transaction time, never add it to the partition sum. *)

type t =
  | Body
  | Read_lock_wait
  | Write_lock_wait
  | Conflictor_wait
  | Backoff
  | Commit
  | Wasted_retry

let num_phases = 7

let index = function
  | Body -> 0
  | Read_lock_wait -> 1
  | Write_lock_wait -> 2
  | Conflictor_wait -> 3
  | Backoff -> 4
  | Commit -> 5
  | Wasted_retry -> 6

let label = function
  | Body -> "body"
  | Read_lock_wait -> "read-lock-wait"
  | Write_lock_wait -> "write-lock-wait"
  | Conflictor_wait -> "conflictor-wait"
  | Backoff -> "backoff"
  | Commit -> "commit"
  | Wasted_retry -> "wasted-retry"

let all =
  [
    Body;
    Read_lock_wait;
    Write_lock_wait;
    Conflictor_wait;
    Backoff;
    Commit;
    Wasted_retry;
  ]

let partition =
  [ Body; Read_lock_wait; Write_lock_wait; Conflictor_wait; Backoff; Commit ]
