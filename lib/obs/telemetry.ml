(* Global telemetry switches.

   [on] gates every counter/histogram instrumentation point in the STM /
   lock stack; [trace_on] additionally gates the ring-buffer event tracer.
   Both are plain [bool ref]s so the disabled hot path is a single load +
   branch (no function call, no atomic).  They are meant to be flipped once
   at process start-up, before any worker domain is spawned, and never
   again — instrumented code snapshots them freely, so a mid-run toggle
   yields torn (but memory-safe) telemetry, not a crash. *)

let on = ref false
let trace_on = ref false

let enable () = on := true

let enable_tracing () =
  on := true;
  trace_on := true

let disable () =
  on := false;
  trace_on := false

let enabled () = !on
let tracing () = !trace_on

(* Monotonic nanosecond timestamp (CLOCK_MONOTONIC via a noalloc C stub,
   see Util.Clock.now_ns).  Monotonicity matters: phase accumulators add
   differences of two reads, and a wall-clock step (NTP) would make those
   negative.  Only called on instrumented slow paths and per-transaction
   when telemetry is enabled.  Wall-clock time is kept solely for
   trace/export metadata ({!wall_ns}). *)
let now_ns = Util.Clock.now_ns

(* Wall-clock nanoseconds — metadata only (artifact creation times, trace
   export headers); never used for intervals. *)
let wall_ns () = int_of_float (Util.Clock.now () *. 1e9)
