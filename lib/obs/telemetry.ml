(* Global telemetry switches.

   [on] gates every counter/histogram instrumentation point in the STM /
   lock stack; [trace_on] additionally gates the ring-buffer event tracer.
   Both are plain [bool ref]s so the disabled hot path is a single load +
   branch (no function call, no atomic).  They are meant to be flipped once
   at process start-up, before any worker domain is spawned, and never
   again — instrumented code snapshots them freely, so a mid-run toggle
   yields torn (but memory-safe) telemetry, not a crash. *)

let on = ref false
let trace_on = ref false

let enable () = on := true

let enable_tracing () =
  on := true;
  trace_on := true

let disable () =
  on := false;
  trace_on := false

let enabled () = !on
let tracing () = !trace_on

(* Nanosecond wall-clock timestamp.  The repo's portable clock is
   [Unix.gettimeofday] (see Util.Clock); at 1 us granularity it is coarse
   for single lock waits but the log2 histogram buckets absorb that.  Only
   called on instrumented slow paths and per-transaction when telemetry is
   enabled. *)
let now_ns () = int_of_float (Util.Clock.now () *. 1e9)
