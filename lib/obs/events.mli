(** The fixed telemetry event taxonomy.

    Abort reasons cover both the pessimistic 2PL(SF) family (lock
    conflicts, priority preemption) and the optimistic baselines (read /
    commit validation), so one breakdown answers "which abort reason
    dominates TL2 vs 2PLSF".  Every instrumented STM records exactly one
    reason per abort, which keeps the per-reason sums equal to its
    [aborts ()] counter. *)

type abort_reason =
  | Read_lock_conflict
      (** pessimistic read lock lost to a higher-priority holder *)
  | Write_lock_conflict
      (** write lock never acquired: a higher-priority txn owns/awaits it *)
  | Priority_preemption
      (** a write lock already held was taken away by a higher-priority
          transaction — the starvation-freedom mechanism firing *)
  | Read_validation  (** optimistic read saw a locked/too-new location *)
  | Commit_lock_conflict  (** commit-time write-set locking failed *)
  | Commit_validation  (** commit-time read-set validation failed *)
  | Deadline
      (** a lock wait was abandoned because the transaction's deadline
          budget expired (overload protection, DESIGN.md §11) *)
  | User_restart  (** explicit restart / outside the taxonomy *)
  | Wal_degraded
      (** the write-ahead log's device failed: the engine is read-only
          and the write transaction was rolled back (DESIGN.md §16) *)

val num_abort_reasons : int
val abort_reason_index : abort_reason -> int
val abort_reason_label : abort_reason -> string

val all_abort_reasons : abort_reason list
(** In index order. *)

type event =
  | Read_lock_fast  (** read lock acquired without entering the wait loop *)
  | Read_lock_waited  (** read lock acquired after waiting *)
  | Write_lock_fast
  | Write_lock_waited
  | Priority_announced
      (** a timestamp was drawn from the conflict clock and announced *)
  | Irrevocable_upgrade  (** an irrevocable transaction started (§2.8) *)
  | Conflictor_wait
      (** post-abort wait for the conflicting transaction to finish *)
  | Irrevocable_fallback
      (** overload protection escalated an exhausted/late transaction
          through the serial-irrevocable slow path (DESIGN.md §11) *)

val num_events : int
val event_index : event -> int
val event_label : event -> string

val all_events : event list
(** In index order. *)
