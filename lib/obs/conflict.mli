(** Conflict cartography (DESIGN.md §13): per-lock hotspot attribution
    and abort provenance for one concurrency control instance.

    All recording is per-thread (no atomics): each thread owns one
    Space-Saving top-K sketch and one row of the victim×aborter matrix.
    Reads merge/sum on demand and are racy while writers run, exact in
    quiescence — the {!Padded} contract.

    Sketch semantics.  The ranking weight of a lock is "attributed
    nanoseconds": every completed lock-wait slow path adds its duration
    (split into read/write wait), and every abort pinned on the lock adds
    the aborted attempt's duration.  The Space-Saving guarantee holds per
    thread: a key's estimate never underestimates its true attributed
    weight and overestimates by at most [err_ns <= total_weight / K];
    merged estimates keep the no-underestimate property with the summed
    bound.  The side-channel fields (hits, read/write split, aborts) are
    exact since the key was last admitted to the sketch. *)

val on : bool ref
(** Global gate, [false] by default.  Recording call sites check this
    (usually in addition to [!Telemetry.on]); flipping it mid-run is
    safe.  Enabled by the bench [--conflict-map] flag. *)

val enable : unit -> unit
val disable : unit -> unit

val default_k : int
(** Sketch capacity per thread (32). *)

type t

val create : ?k:int -> string -> t
(** One cartography instance, usually owned by the {!Scope} of the same
    name.  Interns its trace-event names, so create at setup time. *)

val name : t -> string

(** {2 Recording} — call sites gate on [!on]. *)

val record_wait : t -> tid:int -> lock:int -> write:bool -> ns:int -> unit
(** One completed lock-wait slow path on [lock] (negative ids are
    ignored, so un-attributed call sites can pass -1). *)

val edge :
  t -> victim:int -> aborter:int -> lock:int -> wasted_ns:int ->
  Events.abort_reason -> unit
(** One abort-provenance edge, recorded by the victim thread: increments
    matrix cell (victim, aborter) — aborter outside [0, max_threads) goes
    to the unknown column — and the per-reason edge counter; when
    [lock >= 0] also charges [wasted_ns] (the aborted attempt's duration)
    and one abort to the lock's sketch entry.  When tracing, emits an
    instant event named ["<name>:edge:<reason>"]. *)

(** {2 Reading} *)

type hot = {
  lock : int;  (** lock/orec id *)
  weight_ns : int;  (** Space-Saving estimate of attributed ns *)
  err_ns : int;  (** overestimation bound on [weight_ns] *)
  hits : int;  (** wait episodes since admission *)
  read_wait_ns : int;
  write_wait_ns : int;
  aborts : int;  (** edges pinned on this lock since admission *)
}

val top : ?n:int -> t -> hot list
(** Per-thread sketches merged and ranked by [weight_ns] descending
    (ties by lock id); at most [n] entries when given. *)

val total_weight_ns : t -> int
(** Exact total attributed ns, including mass on evicted keys — the
    denominator for shares and for the per-thread error bound. *)

val total_wait_ns : t -> int
(** Exact total lock-wait ns fed to the sketches (excludes the
    wasted-attempt component of the weight). *)

val matrix : t -> int array array
(** Copy of the conflict matrix: [max_threads] victim rows of
    [max_threads + 1] aborter columns, last column = unknown aborter. *)

val row_total : t -> victim:int -> int
(** Edge total of one victim row — equals the victim's abort count in
    the owning scope's window taxonomy when no reset intervened. *)

val edges_total : t -> int

val edges_by_reason : t -> (string * int) list
(** Every reason in taxonomy order (zeros included). *)

val asymmetry : t -> float
(** Directedness of the known-aborter square submatrix, in [0, 1]:
    [sum_{i<j} |A_ij - A_ji| / sum_{i<>j} A_ij]; 0 when there are no
    known-aborter edges. *)

val reset : t -> unit
(** Zero sketches, matrix and edge counters.  Call only while writers
    are quiescent.  Deliberately {e not} chained to {!Scope.reset}: the
    cartography accumulates for the whole run so the end-of-run artifact
    sees every benchmark (tests reset it explicitly). *)
