(* Snapshot-delta arithmetic shared by the monitor (per-tick windows) and
   anything else that diffs cumulative scope views (tests, tooling).

   All inputs are labelled count lists in a fixed taxonomy order, or
   per-bucket histogram arrays.  Deltas clamp at 0: cumulative views are
   monotonic, but reads are racy, so a reader can observe a counter
   "before" a fold that another already included — clamping turns that
   into attribution noise between adjacent windows, never a negative. *)

let diff_counts cur prev =
  List.map
    (fun (label, v) ->
      let p = match List.assoc_opt label prev with Some p -> p | None -> 0 in
      (label, Stdlib.max 0 (v - p)))
    cur

let diff_buckets cur prev =
  Array.mapi (fun i v -> Stdlib.max 0 (v - prev.(i))) cur

(* Elementwise sum of two labelled count lists; every scope lists the full
   taxonomy in the same order, so positional zip is safe.  An empty
   accumulator adopts the other list. *)
let add_counts a b =
  match (a, b) with
  | [], l | l, [] -> l
  | a, b -> List.map2 (fun (k, x) (_, y) -> (k, x + y)) a b
