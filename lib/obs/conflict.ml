(* Conflict cartography (DESIGN.md §13): per-lock hotspot attribution and
   abort provenance for one concurrency control instance.

   Two data structures, both with strictly per-thread writers so the
   recording paths need no atomics:

   - A Space-Saving top-K heavy-hitter sketch (Metwally, Agrawal, El
     Abbadi, ICDT'05) per thread, keyed by lock/orec id.  The ranking
     weight is "attributed nanoseconds": completed lock-wait durations
     plus the duration of aborted attempts whose abort was pinned on the
     lock.  Each tracked key also carries exact side-channels (wait
     episodes, read/write wait split, abort count) valid since the key
     was last admitted.  Per-thread sketches are merged at read time.

   - A victim×aborter conflict matrix.  Every abort records one edge
     (victim tid, aborter tid, lock id, reason); the victim thread owns
     its matrix row, so rows are plain int arrays.  Aborter column
     [Util.Tid.max_threads] collects edges whose aborter is unknown
     (e.g. TicToc lock words carry no owner tid).

   Sums read while writers run may lag (same racy-but-safe contract as
   {!Padded}); sums after joining the workers are exact. *)

let on = ref false
let enable () = on := true
let disable () = on := false

let default_k = 32
let max_threads = Util.Tid.max_threads

(* ---- Space-Saving sketch, one per thread ---- *)

type entry = {
  mutable key : int; (* lock/orec id *)
  mutable weight : int; (* Space-Saving counter: attributed ns *)
  mutable err : int; (* overestimation bound inherited at eviction *)
  mutable hits : int; (* completed wait episodes since admission *)
  mutable read_wait_ns : int;
  mutable write_wait_ns : int;
  mutable aborts : int; (* provenance edges pinned on this lock *)
}

type sketch = {
  entries : entry array;
  mutable used : int;
  mutable total_weight : int; (* exact, includes evicted mass *)
  mutable total_wait : int; (* exact wait-ns fed, includes evicted mass *)
}

let make_sketch k =
  {
    entries =
      Array.init k (fun _ ->
          {
            key = -1;
            weight = 0;
            err = 0;
            hits = 0;
            read_wait_ns = 0;
            write_wait_ns = 0;
            aborts = 0;
          });
    used = 0;
    total_weight = 0;
    total_wait = 0;
  }

(* Find the tracked entry for [key], admit it, or evict the minimum.
   Space-Saving invariant: the estimate [weight] never underestimates the
   key's true attributed weight, and overestimates by at most [err]
   (bounded by total_weight / K). *)
let touch sk key =
  let n = sk.used in
  let entries = sk.entries in
  let rec find i = if i >= n then -1 else if entries.(i).key = key then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then entries.(i)
  else if n < Array.length entries then begin
    let e = entries.(n) in
    sk.used <- n + 1;
    e.key <- key;
    e.weight <- 0;
    e.err <- 0;
    e.hits <- 0;
    e.read_wait_ns <- 0;
    e.write_wait_ns <- 0;
    e.aborts <- 0;
    e
  end
  else begin
    let min_i = ref 0 in
    for j = 1 to n - 1 do
      if entries.(j).weight < entries.(!min_i).weight then min_i := j
    done;
    let e = entries.(!min_i) in
    e.key <- key;
    e.err <- e.weight;
    (* side-channels restart: exact only since (re-)admission *)
    e.hits <- 0;
    e.read_wait_ns <- 0;
    e.write_wait_ns <- 0;
    e.aborts <- 0;
    e
  end

(* ---- the per-scope state ---- *)

type t = {
  name : string;
  k : int;
  sketches : sketch option array; (* slot [tid] written only by thread tid *)
  matrix : int array array; (* [victim].(aborter); last column = unknown *)
  edge_reasons : Padded.t array; (* indexed by Events.abort_reason_index *)
  trace_edges : int array; (* interned "name:edge:<reason>" *)
}

let create ?(k = default_k) name =
  {
    name;
    k;
    sketches = Array.make max_threads None;
    matrix = Array.init max_threads (fun _ -> Array.make (max_threads + 1) 0);
    edge_reasons = Array.init Events.num_abort_reasons (fun _ -> Padded.create ());
    trace_edges =
      Array.of_list
        (List.map
           (fun r -> Tracer.intern (name ^ ":edge:" ^ Events.abort_reason_label r))
           Events.all_abort_reasons);
  }

let name t = t.name

let sketch_of t ~tid =
  match t.sketches.(tid) with
  | Some sk -> sk
  | None ->
      let sk = make_sketch t.k in
      t.sketches.(tid) <- Some sk;
      sk

(* ---- recording (call sites gate on !on) ---- *)

let record_wait t ~tid ~lock ~write ~ns =
  if lock >= 0 && ns >= 0 then begin
    let sk = sketch_of t ~tid in
    let e = touch sk lock in
    e.weight <- e.weight + ns;
    e.hits <- e.hits + 1;
    if write then e.write_wait_ns <- e.write_wait_ns + ns
    else e.read_wait_ns <- e.read_wait_ns + ns;
    sk.total_weight <- sk.total_weight + ns;
    sk.total_wait <- sk.total_wait + ns
  end

let edge t ~victim ~aborter ~lock ~wasted_ns reason =
  let col = if aborter >= 0 && aborter < max_threads then aborter else max_threads in
  let row = t.matrix.(victim) in
  row.(col) <- row.(col) + 1;
  Padded.incr t.edge_reasons.(Events.abort_reason_index reason) ~tid:victim;
  if lock >= 0 then begin
    let sk = sketch_of t ~tid:victim in
    let e = touch sk lock in
    let ns = Stdlib.max 0 wasted_ns in
    e.weight <- e.weight + ns;
    e.aborts <- e.aborts + 1;
    sk.total_weight <- sk.total_weight + ns
  end;
  if !Telemetry.trace_on then
    Tracer.instant ~tid:victim
      ~name:t.trace_edges.(Events.abort_reason_index reason)
      ~ts_ns:(Telemetry.now_ns ())

(* ---- reading (racy while writers run; exact in quiescence) ---- *)

type hot = {
  lock : int;
  weight_ns : int;
  err_ns : int;
  hits : int;
  read_wait_ns : int;
  write_wait_ns : int;
  aborts : int;
}

(* Merge the per-thread sketches: sum estimates and error bounds per key.
   The merged estimate keeps the no-underestimate property; the merged
   error bound is the sum of the per-thread bounds (conservative). *)
let top ?n t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (function
      | None -> ()
      | Some sk ->
          for i = 0 to sk.used - 1 do
            let e = sk.entries.(i) in
            let cur =
              match Hashtbl.find_opt tbl e.key with
              | Some h -> h
              | None ->
                  {
                    lock = e.key;
                    weight_ns = 0;
                    err_ns = 0;
                    hits = 0;
                    read_wait_ns = 0;
                    write_wait_ns = 0;
                    aborts = 0;
                  }
            in
            Hashtbl.replace tbl e.key
              {
                cur with
                weight_ns = cur.weight_ns + e.weight;
                err_ns = cur.err_ns + e.err;
                hits = cur.hits + e.hits;
                read_wait_ns = cur.read_wait_ns + e.read_wait_ns;
                write_wait_ns = cur.write_wait_ns + e.write_wait_ns;
                aborts = cur.aborts + e.aborts;
              }
          done)
    t.sketches;
  let all = Hashtbl.fold (fun _ h acc -> h :: acc) tbl [] in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare b.weight_ns a.weight_ns in
        if c <> 0 then c else compare a.lock b.lock)
      all
  in
  match n with
  | None -> sorted
  | Some n ->
      let rec take i = function
        | [] -> []
        | _ when i >= n -> []
        | h :: tl -> h :: take (i + 1) tl
      in
      take 0 sorted

let total_weight_ns t =
  Array.fold_left
    (fun acc -> function None -> acc | Some sk -> acc + sk.total_weight)
    0 t.sketches

let total_wait_ns t =
  Array.fold_left
    (fun acc -> function None -> acc | Some sk -> acc + sk.total_wait)
    0 t.sketches

let matrix t = Array.map Array.copy t.matrix

let row_total t ~victim = Array.fold_left ( + ) 0 t.matrix.(victim)

let edges_total t =
  Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 t.matrix

let edges_by_reason t =
  List.map
    (fun r ->
      ( Events.abort_reason_label r,
        Padded.sum t.edge_reasons.(Events.abort_reason_index r) ))
    Events.all_abort_reasons

(* Directedness of the known-aborter square submatrix:
   sum_{i<j} |A_ij - A_ji| / sum_{i<>j} A_ij, in [0,1].  0 = every pair of
   threads aborts each other equally often; 1 = fully one-sided. *)
let asymmetry t =
  let num = ref 0 and den = ref 0 in
  let a = t.matrix in
  for i = 0 to max_threads - 1 do
    for j = 0 to max_threads - 1 do
      if i <> j then den := !den + a.(i).(j);
      if i < j then num := !num + abs (a.(i).(j) - a.(j).(i))
    done
  done;
  if !den = 0 then 0.0 else float_of_int !num /. float_of_int !den

let reset t =
  Array.iter
    (function
      | None -> ()
      | Some sk ->
          sk.used <- 0;
          sk.total_weight <- 0;
          sk.total_wait <- 0)
    t.sketches;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) 0) t.matrix;
  Array.iter Padded.reset t.edge_reasons
