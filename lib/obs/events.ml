(* The fixed event taxonomy shared by every instrumented concurrency
   control.  Keep these closed variants in sync with the label/index
   functions below: the CSV columns and JSON dump key on the labels, and
   the per-scope counter arrays are indexed by the *_index functions. *)

type abort_reason =
  | Read_lock_conflict
      (* pessimistic read lock lost to a higher-priority holder *)
  | Write_lock_conflict
      (* write lock never acquired: a higher-priority txn owns/awaits it *)
  | Priority_preemption
      (* write lock *held* (or wound) and taken away by a higher-priority
         transaction — the starvation-freedom mechanism firing *)
  | Read_validation (* optimistic read saw a locked/too-new location *)
  | Commit_lock_conflict (* commit-time write-set locking failed *)
  | Commit_validation (* commit-time read-set validation failed *)
  | Deadline
      (* a lock wait was abandoned because the transaction's deadline
         budget expired (overload protection, DESIGN.md §11) *)
  | User_restart (* explicit restart / any reason outside the taxonomy *)
  | Wal_degraded
      (* the write-ahead log's device failed: the engine is read-only and
         the write transaction was rolled back (DESIGN.md §16) *)

let num_abort_reasons = 9

let abort_reason_index = function
  | Read_lock_conflict -> 0
  | Write_lock_conflict -> 1
  | Priority_preemption -> 2
  | Read_validation -> 3
  | Commit_lock_conflict -> 4
  | Commit_validation -> 5
  | Deadline -> 6
  | User_restart -> 7
  | Wal_degraded -> 8

let abort_reason_label = function
  | Read_lock_conflict -> "read-lock-conflict"
  | Write_lock_conflict -> "write-lock-conflict"
  | Priority_preemption -> "priority-preemption"
  | Read_validation -> "read-validation"
  | Commit_lock_conflict -> "commit-lock-conflict"
  | Commit_validation -> "commit-validation"
  | Deadline -> "deadline"
  | User_restart -> "user-restart"
  | Wal_degraded -> "wal-degraded"

let all_abort_reasons =
  [
    Read_lock_conflict;
    Write_lock_conflict;
    Priority_preemption;
    Read_validation;
    Commit_lock_conflict;
    Commit_validation;
    Deadline;
    User_restart;
    Wal_degraded;
  ]

type event =
  | Read_lock_fast (* read lock acquired without entering the wait loop *)
  | Read_lock_waited (* read lock acquired after waiting *)
  | Write_lock_fast
  | Write_lock_waited
  | Priority_announced (* a timestamp was drawn and announced on conflict *)
  | Irrevocable_upgrade (* an irrevocable transaction started (§2.8) *)
  | Conflictor_wait (* post-abort wait for the conflicting txn to finish *)
  | Irrevocable_fallback
      (* overload protection escalated an exhausted/late transaction
         through the serial-irrevocable slow path (DESIGN.md §11) *)

let num_events = 8

let event_index = function
  | Read_lock_fast -> 0
  | Read_lock_waited -> 1
  | Write_lock_fast -> 2
  | Write_lock_waited -> 3
  | Priority_announced -> 4
  | Irrevocable_upgrade -> 5
  | Conflictor_wait -> 6
  | Irrevocable_fallback -> 7

let event_label = function
  | Read_lock_fast -> "read-lock-fast"
  | Read_lock_waited -> "read-lock-waited"
  | Write_lock_fast -> "write-lock-fast"
  | Write_lock_waited -> "write-lock-waited"
  | Priority_announced -> "priority-announced"
  | Irrevocable_upgrade -> "irrevocable-upgrade"
  | Conflictor_wait -> "conflictor-wait"
  | Irrevocable_fallback -> "irrevocable-fallback"

let all_events =
  [
    Read_lock_fast;
    Read_lock_waited;
    Write_lock_fast;
    Write_lock_waited;
    Priority_announced;
    Irrevocable_upgrade;
    Conflictor_wait;
    Irrevocable_fallback;
  ]
