(** Per-thread wait publication for the runtime-verification watchdog.

    When [!on] is set, lock slow paths publish what their thread is
    blocked on into a thread-owned, cache-line-padded stripe; the watchdog
    samples every stripe to rebuild the waits-for graph.  Publication is
    plain stores into owned memory (no atomics); sampling is racy but
    memory-safe, and the watchdog debounces everything it derives from a
    sample.  With [!on] false a publish site costs one load + predicted
    branch, and only on the slow path — the lock fast path is untouched. *)

val on : bool ref
(** Gate checked by every publish site.  Flipped by {!Watchdog.start} /
    {!Watchdog.stop}; flip it only while worker domains are quiescent if
    driving it by hand. *)

val enable : unit -> unit
val disable : unit -> unit

(** {2 Wait kinds} (the [kind] field encoding) *)

val idle : int
val read_wait : int
val write_wait : int
val conflictor_wait : int
val kind_label : int -> string

(** {2 Publication} — owning thread only *)

val publish :
  tid:int ->
  kind:int ->
  table:int ->
  lock:int ->
  since_ns:int ->
  observed:int ->
  unit
(** Announce that thread [tid] started waiting: [table] is the
    {!Waitsfor.register_table} id of the lock table, [lock] the lock index
    ([-1] for a conflictor wait), [since_ns] the wall-clock wait start and
    [observed] the conflicting thread recorded so far ([-1] if none).
    The kind word is written last, so samplers never see a non-idle kind
    with unwritten fields. *)

val set_observed : tid:int -> int -> unit
(** Update the observed-conflictor field of an already-published wait. *)

val clear : tid:int -> unit
(** Mark thread [tid] idle again (single store). *)

(** {2 Sampling} — watchdog side *)

type entry = {
  tid : int;
  kind : int;
  table : int;
  lock : int;
  since_ns : int;
  observed : int;
}

val snapshot : unit -> entry list
(** Every thread currently publishing a non-idle wait, in tid order.
    Racy: an entry may describe a wait that just ended, and fields may mix
    two adjacent episodes of the same thread.  Detection logic must
    re-confirm anything it concludes from one snapshot. *)
