(* The live monitor: a background domain that snapshots the telemetry
   scopes every tick, diffs against the previous tick, and streams one
   JSON object per tick (JSONL) — throughput, abort-reason deltas,
   lock-wait percentiles of the tick's window, the watchdog's contention
   top-K and verdict counters — plus an optional one-line console
   dashboard on stderr.

   Diffing uses the *cumulative* scope views (window + folded lifetime),
   which are monotonic across the harness's per-benchmark [reset_stats]
   calls; current-window counters would jump backwards at every reset.
   All counter reads are racy (same contract as the end-of-run JSON dump)
   — a tick can attribute an increment to the neighbouring tick, never
   lose it. *)

(* Label of the currently running benchmark, stamped into each tick.
   Plain string ref: workers publish, the monitor domain reads — a racy
   read sees the old or the new label, both fine. *)
let phase = ref ""
let set_phase s = phase := s

(* External gauges (e.g. the admission gate width from Twoplsf_cm, which
   sits above this library and cannot be called directly).  Providers are
   *named* so several subsystems can coexist — installing under an
   existing name replaces only that provider.  Each closure is polled
   from the monitor domain (and the exporter); the values it returns are
   racy snapshots, same contract as the counters. *)
let gauges_mutex = Mutex.create ()
let providers : (string * (unit -> (string * int) list)) list ref = ref []

let add_gauges ~name f =
  Mutex.lock gauges_mutex;
  providers := (name, f) :: List.remove_assoc name !providers;
  Mutex.unlock gauges_mutex

let remove_gauges ~name =
  Mutex.lock gauges_mutex;
  providers := List.remove_assoc name !providers;
  Mutex.unlock gauges_mutex

let set_gauges f = add_gauges ~name:"default" f

(* Merged pairs from every provider, in provider-registration order
   (latest first, matching the prepend above).  A provider that raises is
   skipped — a gauge must never take the monitor down. *)
let gauge_values () =
  let ps = !providers in
  List.concat_map (fun (_, f) -> try f () with _ -> []) ps

type scope_snap = {
  s_aborts : (string * int) list;
  s_txn_total : int;
  s_phases : (string * int) list;
  s_txn_ns : int;
  s_lock_wait : int array;
}

let snap_scope sc =
  {
    s_aborts = Scope.cumulative_abort_counts sc;
    s_txn_total = Array.fold_left ( + ) 0 (Scope.hist_txn sc);
    s_phases = Scope.cumulative_phase_counts sc;
    s_txn_ns = Scope.cumulative_txn_total_ns sc;
    s_lock_wait = Scope.hist_lock_wait sc;
  }

let zero_snap =
  {
    s_aborts = [];
    s_txn_total = 0;
    s_phases = [];
    s_txn_ns = 0;
    s_lock_wait = Array.make Histogram.num_buckets 0;
  }

let diff_counts = Snapshot.diff_counts
let diff_buckets = Snapshot.diff_buckets
let add_counts = Snapshot.add_counts

(* ---- JSON helpers (hand-rolled, like Harness.Report) ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_counts b counts =
  Buffer.add_char b '{';
  List.iteri
    (fun i (label, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":%d" (json_escape label) n)
    counts;
  Buffer.add_char b '}'

(* ---- tick ---- *)

type state = {
  out : out_channel option;
  console : bool;
  t0 : float;
  mutable prev_t : float;
  prev : (string, scope_snap) Hashtbl.t;
  mutable reports_seen : int;
}

let pct buckets p = Histogram.percentile_upper_of_buckets buckets p

let tick st =
  let now = Util.Clock.now () in
  let dt = now -. st.prev_t in
  st.prev_t <- now;
  let scopes = Scope.all () in
  (* Per-scope deltas against the previous tick. *)
  let deltas =
    List.map
      (fun sc ->
        let name = Scope.name sc in
        let cur = snap_scope sc in
        let prev =
          Option.value (Hashtbl.find_opt st.prev name) ~default:zero_snap
        in
        Hashtbl.replace st.prev name cur;
        let commits = Stdlib.max 0 (cur.s_txn_total - prev.s_txn_total) in
        let aborts = diff_counts cur.s_aborts prev.s_aborts in
        let phases = diff_counts cur.s_phases prev.s_phases in
        let txn_ns = Stdlib.max 0 (cur.s_txn_ns - prev.s_txn_ns) in
        let lock_wait = diff_buckets cur.s_lock_wait prev.s_lock_wait in
        (name, commits, aborts, phases, txn_ns, lock_wait))
      scopes
  in
  (* Aggregate over scopes. *)
  let commits = List.fold_left (fun a (_, c, _, _, _, _) -> a + c) 0 deltas in
  let aborts =
    List.fold_left (fun acc (_, _, ab, _, _, _) -> add_counts acc ab) [] deltas
  in
  let phases =
    List.fold_left (fun acc (_, _, _, ph, _, _) -> add_counts acc ph) [] deltas
  in
  let lock_wait = Array.make Histogram.num_buckets 0 in
  List.iter
    (fun (_, _, _, _, _, lw) ->
      Array.iteri (fun i v -> lock_wait.(i) <- lock_wait.(i) + v) lw)
    deltas;
  let aborts_total = List.fold_left (fun a (_, n) -> a + n) 0 aborts in
  let throughput = if dt > 0. then float_of_int commits /. dt else 0. in
  let top = Watchdog.top_contended 5 in
  let all_reports = Watchdog.reports () in
  let new_reports =
    let n = List.length all_reports in
    if n > st.reports_seen then begin
      let fresh = List.filteri (fun i _ -> i >= st.reports_seen) all_reports in
      st.reports_seen <- n;
      fresh
    end
    else []
  in
  (* JSONL line *)
  (match st.out with
  | None -> ()
  | Some oc ->
      let b = Buffer.create 512 in
      Printf.bprintf b "{\"t_s\":%.3f,\"dt_ms\":%.1f,\"phase\":\"%s\""
        (now -. st.t0) (dt *. 1000.) (json_escape !phase);
      Printf.bprintf b ",\"throughput\":%.1f,\"commits\":%d" throughput commits;
      Buffer.add_string b ",\"aborts\":";
      json_counts b aborts;
      if phases <> [] then begin
        Buffer.add_string b ",\"phases_ns\":";
        json_counts b phases
      end;
      Printf.bprintf b ",\"lock_wait_p50_ns\":%d,\"lock_wait_p99_ns\":%d"
        (pct lock_wait 50.) (pct lock_wait 99.);
      Buffer.add_string b ",\"top_contended\":[";
      List.iteri
        (fun i (tname, lock, samples) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "{\"table\":\"%s\",\"lock\":%d,\"samples\":%d}"
            (json_escape tname) lock samples)
        top;
      Buffer.add_string b "]";
      Printf.bprintf b
        ",\"watchdog\":{\"running\":%b,\"ticks\":%d,\"violations\":%d,\"starvation_suspects\":%d,\"reports\":["
        (Watchdog.running ()) (Watchdog.ticks ()) (Watchdog.violations ())
        (Watchdog.starvation_reports ());
      List.iteri
        (fun i r ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "\"%s\"" (json_escape (Watchdog.report_to_string r)))
        new_reports;
      Buffer.add_string b "]}";
      (match gauge_values () with
      | [] -> ()
      | gs ->
          Buffer.add_string b ",\"gauges\":";
          json_counts b gs);
      Buffer.add_string b ",\"scopes\":[";
      let first = ref true in
      List.iter
        (fun (name, c, ab, ph, txn_ns, lw) ->
          let ab_total = List.fold_left (fun a (_, n) -> a + n) 0 ab in
          if c > 0 || ab_total > 0 then begin
            if not !first then Buffer.add_char b ',';
            first := false;
            Printf.bprintf b "{\"name\":\"%s\",\"commits\":%d,\"aborts\":"
              (json_escape name) c;
            json_counts b ab;
            Printf.bprintf b ",\"txn_ns\":%d,\"phases_ns\":" txn_ns;
            json_counts b ph;
            Printf.bprintf b
              ",\"lock_wait_p50_ns\":%d,\"lock_wait_p99_ns\":%d}" (pct lw 50.)
              (pct lw 99.)
          end)
        deltas;
      Buffer.add_string b "]}\n";
      Buffer.output_buffer oc b;
      flush oc);
  (* Console dashboard *)
  if st.console then begin
    let abort_pct =
      if commits + aborts_total = 0 then 0.
      else 100. *. float_of_int aborts_total /. float_of_int (commits + aborts_total)
    in
    let hot =
      match top with
      | (tname, lock, _) :: _ -> Printf.sprintf "%s#%d" tname lock
      | [] -> "-"
    in
    Printf.eprintf
      "[mon] %7.1fs %10.0f tx/s  abort %5.2f%%  p99(lock) %s ns  hot %-16s wd:%s\n%!"
      (now -. st.t0) throughput abort_pct
      (let p = pct lock_wait 99. in
       if p = max_int then ">2^46" else string_of_int p)
      hot
      (if Watchdog.violations () > 0 then
         "VIOLATION x" ^ string_of_int (Watchdog.violations ())
       else "OK")
  end

(* ---- lifecycle ---- *)

let stop_flag = Atomic.make false
let dom : unit Domain.t option ref = ref None
let chan : out_channel option ref = ref None

let running () = !dom <> None

let start ?(interval_ms = 100) ?out_path ?(console = false) () =
  if !dom = None then begin
    let out =
      match out_path with
      | Some p ->
          let oc = open_out p in
          chan := Some oc;
          Some oc
      | None -> None
    in
    let now = Util.Clock.now () in
    let st =
      {
        out;
        console;
        t0 = now;
        prev_t = now;
        prev = Hashtbl.create 16;
        reports_seen = 0;
      }
    in
    (* Baseline snapshot so the first emitted tick is a delta, not the
       whole history. *)
    List.iter
      (fun sc -> Hashtbl.replace st.prev (Scope.name sc) (snap_scope sc))
      (Scope.all ());
    Atomic.set stop_flag false;
    let dt = float_of_int interval_ms /. 1000. in
    dom :=
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop_flag) do
               Unix.sleepf dt;
               tick st
             done))
  end

let stop () =
  match !dom with
  | None -> ()
  | Some d ->
      Atomic.set stop_flag true;
      Domain.join d;
      dom := None;
      (match !chan with
      | Some oc ->
          close_out oc;
          chan := None
      | None -> ());
      phase := ""
