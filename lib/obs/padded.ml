(* Per-thread counters padded to cache-line granularity.

   One flat [int array] with [stride] = 8 words (64 bytes) per thread:
   thread [tid] owns slot [tid * stride] and the 7 dead words after it, so
   two threads never bounce the same cache line.  Because each slot is
   written only by its owning thread, increments are plain (non-atomic)
   loads and stores — cheaper than an [Atomic.t] RMW and race-free for
   writes.  Cross-thread reads ([sum], [get]) are racy but memory-safe
   (word-sized ints cannot tear in OCaml); they are exact once the writer
   domains have been joined, which is when benchmarks read them. *)

let stride = 8

type t = int array

let create () = Array.make (Util.Tid.max_threads * stride) 0

let incr t ~tid =
  let i = tid * stride in
  t.(i) <- t.(i) + 1

let add t ~tid n =
  let i = tid * stride in
  t.(i) <- t.(i) + n

let get t ~tid = t.(tid * stride)

let sum t =
  let acc = ref 0 in
  for tid = 0 to Util.Tid.max_threads - 1 do
    acc := !acc + t.(tid * stride)
  done;
  !acc

let reset t = Array.fill t 0 (Array.length t) 0
