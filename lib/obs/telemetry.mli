(** Global telemetry switches and the telemetry clock.

    The disabled path of every instrumentation point is [if !Telemetry.on
    then ...] — one load and one (perfectly predicted) branch, so figure
    throughput with telemetry off is unaffected.  Enable once at start-up,
    before spawning worker domains. *)

val on : bool ref
(** Master switch for counters and histograms.  Read directly ([!on]) on
    hot paths; treat as immutable after start-up. *)

val trace_on : bool ref
(** Switch for the ring-buffer event tracer ({!Tracer}).  Implies nothing
    about [on]; instrumentation only consults it after [on] passed. *)

val enable : unit -> unit
(** Turn counters and histograms on. *)

val enable_tracing : unit -> unit
(** Turn counters, histograms and event tracing on. *)

val disable : unit -> unit
(** Turn everything off (tests only; not safe mid-benchmark). *)

val enabled : unit -> bool
val tracing : unit -> bool

val now_ns : unit -> int
(** Monotonic timestamp in nanoseconds ({!Util.Clock.now_ns} —
    [CLOCK_MONOTONIC]).  Arbitrary epoch; use only for intervals and
    span offsets (the trace exporter rebases to the run's minimum). *)

val wall_ns : unit -> int
(** Wall-clock nanoseconds (microsecond granularity) — metadata only. *)
