(** The runtime-verification watchdog (DESIGN.md §9).

    A background domain that samples the {!Wait_registry} and every
    registered lock table ({!Waitsfor.register_table}) on a fixed interval
    and checks the paper's guarantees online:

    - a waits-for cycle confirmed in two consecutive ticks is a
      {b deadlock} — an invariant violation (§2.5 proves it impossible);
    - a set read-indicator bit concurrent with a write holder, where
      neither thread is merely waiting on that lock, confirmed twice, is a
      {b mutual-exclusion} violation;
    - a timestamped waiter whose announcement is unchanged while its
      conflict clock advances past a threshold is a {b starvation
      suspect} — reported with its blocking chain but {e not} counted as a
      violation (wall-clock stalls also come from OS descheduling on an
      oversubscribed host; see DESIGN.md §9).

    It also aggregates sampled waiters into a per-lock contention census
    ({!top_contended}).  All sampling is racy and lock-free on the worker
    side; the harness fails a run (non-zero exit) when [violations () > 0]
    at shutdown. *)

type report =
  | Deadlock of Waitsfor.edge list  (** the cycle's edges, in order *)
  | Starvation of {
      tid : int;
      table : string;
      lock : int;
      ts : int;  (** the stuck thread's announced timestamp *)
      stalled_ns : int;
      chain : int list;  (** blocking chain starting at [tid] *)
    }
  | Mutex_violation of {
      table : string;
      lock : int;
      writer : int;
      reader : int;
    }

val report_to_string : report -> string

val start : ?interval_ms:int -> ?starvation_ms:int -> unit -> unit
(** Spawn the watchdog domain (no-op if already running) and enable
    {!Wait_registry} publication.  [interval_ms] (default 100) is the
    sampling period; [starvation_ms] (default [2 * interval_ms]) the stall
    threshold — an injected stall is reported within roughly two sampling
    intervals.  Resets all counters and reports from a previous session.
    Start before the watched lock tables are created: tables register for
    introspection only when publication is enabled at registration time
    (registered tables are retained for the process lifetime). *)

val stop : unit -> unit
(** Run one final tick, join the domain, disable publication. *)

val running : unit -> bool
val ticks : unit -> int

val violations : unit -> int
(** Confirmed deadlocks + mutual-exclusion violations.  Zero on any
    correct execution; the harness exits non-zero otherwise. *)

val starvation_reports : unit -> int
val reports : unit -> report list
(** All reports this session, oldest first (capped at 1024). *)

val top_contended : int -> (string * int * int) list
(** Top-[k] most-waited-on locks as [(table name, lock index, samples)],
    where [samples] counts watchdog ticks that saw some thread waiting on
    the lock (a sampling census, not an exact wait count). *)
