(* Waits-for graph construction over the wait registry plus lock-table
   introspection.

   Lock tables (Rwl_sf instances) register themselves here as a bundle of
   read-only closures — [inspect] for a lock's holder population,
   [announced] for a thread's announced timestamp, [clock] for the
   conflict clock — so this module never depends on the core library
   (which depends on us).  Everything read through the closures is racy by
   contract; the watchdog debounces. *)

type lock_view = {
  writer : int; (* tid currently holding the write side, or -1 *)
  writer_ts : int; (* that writer's announced timestamp (0 = none) *)
  readers : int list; (* tids with a set read-indicator bit *)
}

type table = {
  id : int;
  name : string;
  num_locks : int;
  inspect : int -> lock_view;
  announced : int -> int;
  clock : unit -> int;
}

let mutex = Mutex.create ()
let table_list : table list ref = ref []
let next_id = ref 0

let register_table ~name ~num_locks ~inspect ~announced ~clock =
  Mutex.lock mutex;
  let id = !next_id in
  incr next_id;
  table_list :=
    !table_list @ [ { id; name; num_locks; inspect; announced; clock } ];
  Mutex.unlock mutex;
  id

let tables () = !table_list
let find_table id = List.find_opt (fun t -> t.id = id) !table_list

(* One waits-for edge: [waiter] cannot make progress until [holder] is
   done with lock [lock] of table [table_id] (or, for a conflictor wait,
   until [holder] commits).  Announced timestamps are snapshotted at edge
   construction so violation reports can show the priority order. *)
type edge = {
  waiter : int;
  holder : int;
  kind : int; (* Wait_registry kind of the waiter *)
  table_id : int;
  lock : int; (* -1 for conflictor waits *)
  waiter_ts : int;
  holder_ts : int;
  since_ns : int;
}

let edge_to_string e =
  let tname =
    match find_table e.table_id with Some t -> t.name | None -> "?"
  in
  Printf.sprintf "t%d(ts=%d) -%s-> t%d(ts=%d) [%s%s]" e.waiter e.waiter_ts
    (Wait_registry.kind_label e.kind)
    e.holder e.holder_ts tname
    (if e.lock >= 0 then Printf.sprintf "#%d" e.lock else "")

(* Expand one registry entry into its waits-for edges: a lock waiter waits
   for the lock's current writer, and a write waiter additionally for
   every thread with a set read-indicator bit; a conflictor wait is a
   direct edge to the observed conflictor.

   [co_waiter tid] must be true when [tid] is itself publishing a wait on
   the same (table, lock).  Such a thread's read-indicator bit is an
   artifact of the waiting protocol (writers arrive as readers while they
   spin, §2.5), not a held lock: without the exclusion, two write waiters
   on one lock form a permanent phantom 2-cycle. *)
let edges_of_entry ~co_waiter (e : Wait_registry.entry) =
  match find_table e.table with
  | None -> []
  | Some tbl ->
      let waiter_ts = tbl.announced e.tid in
      let mk holder =
        {
          waiter = e.tid;
          holder;
          kind = e.kind;
          table_id = tbl.id;
          lock = e.lock;
          waiter_ts;
          holder_ts = tbl.announced holder;
          since_ns = e.since_ns;
        }
      in
      if e.kind = Wait_registry.conflictor_wait then
        if e.observed >= 0 && e.observed <> e.tid then [ mk e.observed ]
        else []
      else if e.lock < 0 || e.lock >= tbl.num_locks then []
      else begin
        let v = tbl.inspect e.lock in
        let w_edges =
          if v.writer >= 0 && v.writer <> e.tid then [ mk v.writer ] else []
        in
        let r_edges =
          if e.kind = Wait_registry.write_wait then
            List.filter_map
              (fun r ->
                if r <> e.tid && r <> v.writer && not (co_waiter r e.table e.lock)
                then Some (mk r)
                else None)
              v.readers
          else []
        in
        w_edges @ r_edges
      end

let waiting_pred entries =
  let set = Hashtbl.create 16 in
  List.iter
    (fun (e : Wait_registry.entry) ->
      if e.kind <> Wait_registry.conflictor_wait && e.lock >= 0 then
        Hashtbl.replace set (e.tid, e.table, e.lock) ())
    entries;
  fun tid table lock -> Hashtbl.mem set (tid, table, lock)

let edges_of_snapshot entries =
  let co_waiter = waiting_pred entries in
  List.concat_map (edges_of_entry ~co_waiter) entries

(* ---- cycle detection (pure; unit-testable on crafted graphs) ---- *)

(* DFS with the classic white/gray/black colouring; returns the first
   cycle found as the list of tids along it, in edge order. *)
let cycle_of_pairs (pairs : (int * int) list) : int list option =
  let adj = Hashtbl.create 16 in
  List.iter (fun (a, b) -> Hashtbl.add adj a b) pairs;
  let color = Hashtbl.create 16 in
  let rec dfs path n =
    Hashtbl.replace color n 1;
    let path = n :: path in
    let res =
      List.fold_left
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None -> (
              match Hashtbl.find_opt color s with
              | Some 1 ->
                  (* Back edge: the cycle is the path suffix from [s]. *)
                  let rec cut acc = function
                    | [] -> acc
                    | x :: rest ->
                        if x = s then x :: acc else cut (x :: acc) rest
                  in
                  Some (cut [] path)
              | Some _ -> None
              | None -> dfs path s))
        None (Hashtbl.find_all adj n)
    in
    if res = None then Hashtbl.replace color n 2;
    res
  in
  List.fold_left
    (fun acc (a, _) ->
      match acc with
      | Some _ -> acc
      | None -> if Hashtbl.mem color a then None else dfs [] a)
    None pairs

let cycle_of_edges (edges : edge list) : edge list option =
  match cycle_of_pairs (List.map (fun e -> (e.waiter, e.holder)) edges) with
  | None -> None
  | Some tids ->
      (* Materialise one representative edge per cycle step. *)
      let n = List.length tids in
      let arr = Array.of_list tids in
      let step i =
        let a = arr.(i) and b = arr.((i + 1) mod n) in
        List.find_opt (fun e -> e.waiter = a && e.holder = b) edges
      in
      Some (List.filter_map step (List.init n Fun.id))

(* Follow waits-for successors from [tid], for starvation blocking-chain
   reports.  Stops on a repeat or after [max] hops. *)
let chain_from edges tid ~max =
  let rec go seen t n =
    if n >= max || List.mem t seen then List.rev seen
    else
      match List.find_opt (fun e -> e.waiter = t) edges with
      | None -> List.rev (t :: seen)
      | Some e -> go (t :: seen) e.holder (n + 1)
  in
  go [] tid 0
