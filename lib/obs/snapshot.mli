(** Snapshot-delta arithmetic for cumulative telemetry views, shared by
    the monitor's tick windows and the exporter/tests.

    Deltas clamp at 0: cumulative counters are monotonic but reads are
    racy, so an apparent decrease is attribution noise between adjacent
    windows, not data loss. *)

val diff_counts :
  (string * int) list -> (string * int) list -> (string * int) list
(** [diff_counts cur prev] — per-label [max 0 (cur - prev)].  Labels
    missing from [prev] count from 0; the result keeps [cur]'s order. *)

val diff_buckets : int array -> int array -> int array
(** Per-bucket clamped difference (arrays must have equal length). *)

val add_counts :
  (string * int) list -> (string * int) list -> (string * int) list
(** Elementwise sum by position (identical label order assumed, as all
    scope views share one taxonomy order).  [[]] is the identity. *)
