(* Power-of-two-bucket log histogram, striped per thread.

   Bucket 0 counts values <= 0; bucket b (1 <= b < num_buckets - 1) counts
   values v with 2^(b-1) <= v < 2^b (i.e. b = number of significant bits);
   the last bucket is the overflow bucket.  48 buckets cover [1, 2^46) —
   about 20 hours in nanoseconds — before overflowing.

   Storage is one flat [int array] with a contiguous [num_buckets] stripe
   per thread (384 bytes, a multiple of the cache line), so recording is a
   plain store into thread-private memory: no atomics, no false sharing.
   Cross-thread reads (snapshot/total) are racy but memory-safe and exact
   once the writers have been joined — same contract as {!Padded}. *)

let num_buckets = 48

type t = int array

let create () = Array.make (Util.Tid.max_threads * num_buckets) 0

let bucket_of_value v =
  if v <= 0 then 0
  else begin
    let rec bits acc x = if x = 0 then acc else bits (acc + 1) (x lsr 1) in
    let b = bits 0 v in
    if b >= num_buckets then num_buckets - 1 else b
  end

let bucket_lower_bound b =
  if b <= 0 then 0 else 1 lsl (Stdlib.min (b - 1) 62)

let record t ~tid v =
  let i = (tid * num_buckets) + bucket_of_value v in
  t.(i) <- t.(i) + 1

let snapshot t =
  let out = Array.make num_buckets 0 in
  for tid = 0 to Util.Tid.max_threads - 1 do
    let base = tid * num_buckets in
    for b = 0 to num_buckets - 1 do
      out.(b) <- out.(b) + t.(base + b)
    done
  done;
  out

let total t = Array.fold_left ( + ) 0 (snapshot t)

(* Smallest value v such that at least p% of recorded samples fall in
   buckets whose upper bound is <= the bucket containing v; i.e. the upper
   bound of the bucket holding the p-th percentile.  0 when empty. *)
let percentile_upper_of_buckets buckets p =
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then 0
  else begin
    let target =
      let t = int_of_float (ceil (p /. 100. *. float_of_int total)) in
      Stdlib.max 1 (Stdlib.min total t)
    in
    let rec go b acc =
      if b >= num_buckets then max_int
      else
        let acc = acc + buckets.(b) in
        if acc >= target then
          if b >= num_buckets - 1 then max_int else (1 lsl b) - 1
        else go (b + 1) acc
    in
    go 0 0
  end

let percentile_upper t p = percentile_upper_of_buckets (snapshot t) p
let reset t = Array.fill t 0 (Array.length t) 0

let pp_ns ns =
  if ns = max_int then "inf"
  else if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then
    Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)
