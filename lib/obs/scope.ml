(* A telemetry scope: the counters, histograms, phase accumulators and
   interned trace names of one concurrency control instance ("2PLSF",
   "TL2", "DBx-2PLSF", ...).

   Counters are split into a *current window* (reset together with the
   owner's [reset_stats], so per-benchmark breakdowns line up with its
   commit/abort counters) and a *cumulative* view (window + everything
   folded in by earlier resets) used by the end-of-run JSON dump.

   Phase accounting (DESIGN.md §12).  Each thread carries a per-attempt
   lock-wait scratch ([att_wait]): every completed lock-wait slow path
   adds its duration both to the corresponding wait phase and to the
   scratch.  When the attempt ends, [txn_commit]/[txn_abort] take the
   scratch and attribute [attempt duration - waits] to [Body] (the commit
   step, when timed, is carved out of that into [Commit]).  Conflictor
   waits and contention-management backoffs happen *between* attempts and
   feed their phases directly.  [Wasted_retry] additionally re-counts the
   whole duration of each aborted attempt; it overlaps the partition and
   is reported as a ratio, never summed with the rest. *)

type t = {
  name : string;
  conflict : Conflict.t; (* conflict cartography, gated on !Conflict.on *)
  abort_reasons : Padded.t array; (* indexed by Events.abort_reason_index *)
  events : Padded.t array; (* indexed by Events.event_index *)
  phases : Padded.t array; (* ns, indexed by Phase.index *)
  att_wait : Padded.t; (* per-attempt lock-wait ns scratch *)
  txn_ns_sum : Padded.t; (* exact total transaction ns (window) *)
  lock_wait_ns : Histogram.t;
  spin_iters : Histogram.t;
  txn_ns : Histogram.t;
  (* lifetime accumulators, folded into on [reset] (main thread only) *)
  life_aborts : int array;
  life_events : int array;
  life_phases : int array;
  mutable life_txn_ns_sum : int;
  life_lock_wait : int array;
  life_spins : int array;
  life_txn : int array;
  (* interned trace-event names *)
  trace_commit : int;
  trace_aborts : int array; (* per abort reason *)
  trace_lockwait_r : int;
  trace_lockwait_w : int;
  trace_conflictor : int;
  trace_fsync : int;
}

let registry_mutex = Mutex.create ()
let registry : t list ref = ref []

let create name =
  let sc =
    {
      name;
      conflict = Conflict.create name;
      abort_reasons =
        Array.init Events.num_abort_reasons (fun _ -> Padded.create ());
      events = Array.init Events.num_events (fun _ -> Padded.create ());
      phases = Array.init Phase.num_phases (fun _ -> Padded.create ());
      att_wait = Padded.create ();
      txn_ns_sum = Padded.create ();
      lock_wait_ns = Histogram.create ();
      spin_iters = Histogram.create ();
      txn_ns = Histogram.create ();
      life_aborts = Array.make Events.num_abort_reasons 0;
      life_events = Array.make Events.num_events 0;
      life_phases = Array.make Phase.num_phases 0;
      life_txn_ns_sum = 0;
      life_lock_wait = Array.make Histogram.num_buckets 0;
      life_spins = Array.make Histogram.num_buckets 0;
      life_txn = Array.make Histogram.num_buckets 0;
      trace_commit = Tracer.intern (name ^ ":commit");
      trace_aborts =
        Array.of_list
          (List.map
             (fun r ->
               Tracer.intern (name ^ ":abort:" ^ Events.abort_reason_label r))
             Events.all_abort_reasons);
      trace_lockwait_r = Tracer.intern (name ^ ":lock-wait:r");
      trace_lockwait_w = Tracer.intern (name ^ ":lock-wait:w");
      trace_conflictor = Tracer.intern (name ^ ":conflictor-wait");
      trace_fsync = Tracer.intern (name ^ ":fsync-wait");
    }
  in
  Mutex.lock registry_mutex;
  registry := !registry @ [ sc ];
  Mutex.unlock registry_mutex;
  sc

let all () = !registry
let name sc = sc.name
let find n = List.find_opt (fun sc -> String.equal sc.name n) !registry
let conflict sc = sc.conflict

(* ---- recording (call sites gate on !Telemetry.on) ---- *)

let event sc ~tid e = Padded.incr sc.events.(Events.event_index e) ~tid
let abort sc ~tid r = Padded.incr sc.abort_reasons.(Events.abort_reason_index r) ~tid

let phase_add sc ~tid ph ns =
  if ns > 0 then Padded.add sc.phases.(Phase.index ph) ~tid ns

(* Read-and-clear the thread's per-attempt lock-wait scratch. *)
let att_wait_take sc ~tid =
  let v = Padded.get sc.att_wait ~tid in
  if v <> 0 then Padded.add sc.att_wait ~tid (-v);
  v

let lock_wait sc ~lock ~tid ~write ~t0_ns ~spins ~acquired =
  let dur = Telemetry.now_ns () - t0_ns in
  if !Conflict.on then Conflict.record_wait sc.conflict ~tid ~lock ~write ~ns:dur;
  Histogram.record sc.lock_wait_ns ~tid dur;
  Histogram.record sc.spin_iters ~tid spins;
  phase_add sc ~tid
    (if write then Phase.Write_lock_wait else Phase.Read_lock_wait)
    dur;
  if dur > 0 then Padded.add sc.att_wait ~tid dur;
  if acquired then
    event sc ~tid (if write then Events.Write_lock_waited else Events.Read_lock_waited);
  if !Telemetry.trace_on then
    Tracer.span ~tid
      ~name:(if write then sc.trace_lockwait_w else sc.trace_lockwait_r)
      ~ts_ns:t0_ns ~dur_ns:dur

let txn_commit sc ~tid ~txn_t0_ns ~att_t0_ns ?commit_t0_ns () =
  let now = Telemetry.now_ns () in
  Histogram.record sc.txn_ns ~tid (now - txn_t0_ns);
  Padded.add sc.txn_ns_sum ~tid (Stdlib.max 0 (now - txn_t0_ns));
  let waits = att_wait_take sc ~tid in
  (match commit_t0_ns with
  | Some c0 ->
      phase_add sc ~tid Phase.Body (c0 - att_t0_ns - waits);
      phase_add sc ~tid Phase.Commit (now - c0)
  | None -> phase_add sc ~tid Phase.Body (now - att_t0_ns - waits));
  if !Telemetry.trace_on then
    Tracer.span ~tid ~name:sc.trace_commit ~ts_ns:att_t0_ns
      ~dur_ns:(now - att_t0_ns)

let txn_abort sc ?(aborter = -1) ?(lock = -1) ~tid ~att_t0_ns reason =
  abort sc ~tid reason;
  let now = Telemetry.now_ns () in
  let dur = now - att_t0_ns in
  if !Conflict.on then
    Conflict.edge sc.conflict ~victim:tid ~aborter ~lock ~wasted_ns:dur reason;
  let waits = att_wait_take sc ~tid in
  phase_add sc ~tid Phase.Body (dur - waits);
  phase_add sc ~tid Phase.Wasted_retry dur;
  if !Telemetry.trace_on then
    Tracer.span ~tid
      ~name:sc.trace_aborts.(Events.abort_reason_index reason)
      ~ts_ns:att_t0_ns ~dur_ns:dur

(* One completed WAL durability wait.  Feeds the phase *and* the
   per-attempt scratch: the wait happens inside the attempt window (in
   DBx, between lock release and the commit ack), so [txn_commit]'s
   Body-by-subtraction must exclude it just like lock waits. *)
let fsync_wait sc ~tid ~t0_ns =
  let dur = Telemetry.now_ns () - t0_ns in
  phase_add sc ~tid Phase.Fsync_wait dur;
  if dur > 0 then Padded.add sc.att_wait ~tid dur;
  if !Telemetry.trace_on then
    Tracer.span ~tid ~name:sc.trace_fsync ~ts_ns:t0_ns ~dur_ns:dur

let conflictor_wait sc ~tid ~t0_ns =
  event sc ~tid Events.Conflictor_wait;
  let dur = Telemetry.now_ns () - t0_ns in
  phase_add sc ~tid Phase.Conflictor_wait dur;
  if !Telemetry.trace_on then
    Tracer.span ~tid ~name:sc.trace_conflictor ~ts_ns:t0_ns ~dur_ns:dur

(* ---- reading ---- *)

let abort_counts sc =
  List.map
    (fun r ->
      ( Events.abort_reason_label r,
        Padded.sum sc.abort_reasons.(Events.abort_reason_index r) ))
    Events.all_abort_reasons

let event_counts sc =
  List.map
    (fun e ->
      (Events.event_label e, Padded.sum sc.events.(Events.event_index e)))
    Events.all_events

let phase_counts sc =
  List.map
    (fun ph -> (Phase.label ph, Padded.sum sc.phases.(Phase.index ph)))
    Phase.all

let txn_total_ns sc = Padded.sum sc.txn_ns_sum

let aborts_total sc =
  Array.fold_left (fun acc p -> acc + Padded.sum p) 0 sc.abort_reasons

(* Current-window abort count of one thread — the reconciliation target
   for the conflict matrix's per-victim edge totals (DESIGN.md §13). *)
let aborts_of_tid sc ~tid =
  Array.fold_left (fun acc p -> acc + Padded.get p ~tid) 0 sc.abort_reasons

(* Gauges for the live monitor: per active scope, the hottest lock, its
   share of attributed ns (percent) and the edge total. *)
let conflict_gauges () =
  List.concat_map
    (fun sc ->
      let c = sc.conflict in
      let total = Conflict.total_weight_ns c in
      let edges = Conflict.edges_total c in
      if total = 0 && edges = 0 then []
      else
        let hot =
          match Conflict.top ~n:1 c with
          | h :: _ when total > 0 ->
              [
                (sc.name ^ ".hot_lock", h.Conflict.lock);
                (sc.name ^ ".hot_lock_pct", 100 * h.Conflict.weight_ns / total);
              ]
          | _ -> []
        in
        hot @ [ (sc.name ^ ".conflict_edges", edges) ])
    (all ())

let add_window l r = List.map2 (fun (k, v) (_, v') -> (k, v + v')) l r

let cumulative_abort_counts sc =
  add_window (abort_counts sc)
    (List.map
       (fun r ->
         ( Events.abort_reason_label r,
           sc.life_aborts.(Events.abort_reason_index r) ))
       Events.all_abort_reasons)

let cumulative_event_counts sc =
  add_window (event_counts sc)
    (List.map
       (fun e -> (Events.event_label e, sc.life_events.(Events.event_index e)))
       Events.all_events)

let cumulative_phase_counts sc =
  add_window (phase_counts sc)
    (List.map
       (fun ph -> (Phase.label ph, sc.life_phases.(Phase.index ph)))
       Phase.all)

let cumulative_txn_total_ns sc = sc.life_txn_ns_sum + txn_total_ns sc

let merged_hist life hist =
  let cur = Histogram.snapshot hist in
  Array.mapi (fun i v -> v + life.(i)) cur

let hist_lock_wait sc = merged_hist sc.life_lock_wait sc.lock_wait_ns
let hist_spins sc = merged_hist sc.life_spins sc.spin_iters
let hist_txn sc = merged_hist sc.life_txn sc.txn_ns
let window_hist_lock_wait sc = Histogram.snapshot sc.lock_wait_ns
let window_hist_txn sc = Histogram.snapshot sc.txn_ns

(* ---- reset (main thread, writers quiescent) ---- *)

let reset sc =
  List.iteri
    (fun i (_, v) -> sc.life_aborts.(i) <- sc.life_aborts.(i) + v)
    (abort_counts sc);
  List.iteri
    (fun i (_, v) -> sc.life_events.(i) <- sc.life_events.(i) + v)
    (event_counts sc);
  List.iteri
    (fun i (_, v) -> sc.life_phases.(i) <- sc.life_phases.(i) + v)
    (phase_counts sc);
  sc.life_txn_ns_sum <- sc.life_txn_ns_sum + txn_total_ns sc;
  let fold life h =
    let cur = Histogram.snapshot h in
    Array.iteri (fun i v -> life.(i) <- life.(i) + v) cur
  in
  fold sc.life_lock_wait sc.lock_wait_ns;
  fold sc.life_spins sc.spin_iters;
  fold sc.life_txn sc.txn_ns;
  Array.iter Padded.reset sc.abort_reasons;
  Array.iter Padded.reset sc.events;
  Array.iter Padded.reset sc.phases;
  Padded.reset sc.att_wait;
  Padded.reset sc.txn_ns_sum;
  Histogram.reset sc.lock_wait_ns;
  Histogram.reset sc.spin_iters;
  Histogram.reset sc.txn_ns

let reset_all () = List.iter reset (all ())
