(* A telemetry scope: the counters, histograms and interned trace names of
   one concurrency control instance ("2PLSF", "TL2", "DBx-2PLSF", ...).

   Counters are split into a *current window* (reset together with the
   owner's [reset_stats], so per-benchmark breakdowns line up with its
   commit/abort counters) and a *cumulative* view (window + everything
   folded in by earlier resets) used by the end-of-run JSON dump. *)

type t = {
  name : string;
  abort_reasons : Padded.t array; (* indexed by Events.abort_reason_index *)
  events : Padded.t array; (* indexed by Events.event_index *)
  lock_wait_ns : Histogram.t;
  spin_iters : Histogram.t;
  txn_ns : Histogram.t;
  (* lifetime accumulators, folded into on [reset] (main thread only) *)
  life_aborts : int array;
  life_events : int array;
  life_lock_wait : int array;
  life_spins : int array;
  life_txn : int array;
  (* interned trace-event names *)
  trace_commit : int;
  trace_aborts : int array; (* per abort reason *)
  trace_lockwait_r : int;
  trace_lockwait_w : int;
  trace_conflictor : int;
}

let registry_mutex = Mutex.create ()
let registry : t list ref = ref []

let create name =
  let sc =
    {
      name;
      abort_reasons =
        Array.init Events.num_abort_reasons (fun _ -> Padded.create ());
      events = Array.init Events.num_events (fun _ -> Padded.create ());
      lock_wait_ns = Histogram.create ();
      spin_iters = Histogram.create ();
      txn_ns = Histogram.create ();
      life_aborts = Array.make Events.num_abort_reasons 0;
      life_events = Array.make Events.num_events 0;
      life_lock_wait = Array.make Histogram.num_buckets 0;
      life_spins = Array.make Histogram.num_buckets 0;
      life_txn = Array.make Histogram.num_buckets 0;
      trace_commit = Tracer.intern (name ^ ":commit");
      trace_aborts =
        Array.of_list
          (List.map
             (fun r ->
               Tracer.intern (name ^ ":abort:" ^ Events.abort_reason_label r))
             Events.all_abort_reasons);
      trace_lockwait_r = Tracer.intern (name ^ ":lock-wait:r");
      trace_lockwait_w = Tracer.intern (name ^ ":lock-wait:w");
      trace_conflictor = Tracer.intern (name ^ ":conflictor-wait");
    }
  in
  Mutex.lock registry_mutex;
  registry := !registry @ [ sc ];
  Mutex.unlock registry_mutex;
  sc

let all () = !registry
let name sc = sc.name
let find n = List.find_opt (fun sc -> String.equal sc.name n) !registry

(* ---- recording (call sites gate on !Telemetry.on) ---- *)

let event sc ~tid e = Padded.incr sc.events.(Events.event_index e) ~tid
let abort sc ~tid r = Padded.incr sc.abort_reasons.(Events.abort_reason_index r) ~tid

let lock_wait sc ~tid ~write ~t0_ns ~spins ~acquired =
  let dur = Telemetry.now_ns () - t0_ns in
  Histogram.record sc.lock_wait_ns ~tid dur;
  Histogram.record sc.spin_iters ~tid spins;
  if acquired then
    event sc ~tid (if write then Events.Write_lock_waited else Events.Read_lock_waited);
  if !Telemetry.trace_on then
    Tracer.span ~tid
      ~name:(if write then sc.trace_lockwait_w else sc.trace_lockwait_r)
      ~ts_ns:t0_ns ~dur_ns:dur

let txn_commit sc ~tid ~txn_t0_ns ~att_t0_ns =
  let now = Telemetry.now_ns () in
  Histogram.record sc.txn_ns ~tid (now - txn_t0_ns);
  if !Telemetry.trace_on then
    Tracer.span ~tid ~name:sc.trace_commit ~ts_ns:att_t0_ns
      ~dur_ns:(now - att_t0_ns)

let txn_abort sc ~tid ~att_t0_ns reason =
  abort sc ~tid reason;
  if !Telemetry.trace_on then
    Tracer.span ~tid
      ~name:sc.trace_aborts.(Events.abort_reason_index reason)
      ~ts_ns:att_t0_ns
      ~dur_ns:(Telemetry.now_ns () - att_t0_ns)

let conflictor_wait sc ~tid ~t0_ns =
  event sc ~tid Events.Conflictor_wait;
  if !Telemetry.trace_on then
    Tracer.span ~tid ~name:sc.trace_conflictor ~ts_ns:t0_ns
      ~dur_ns:(Telemetry.now_ns () - t0_ns)

(* ---- reading ---- *)

let abort_counts sc =
  List.map
    (fun r ->
      ( Events.abort_reason_label r,
        Padded.sum sc.abort_reasons.(Events.abort_reason_index r) ))
    Events.all_abort_reasons

let event_counts sc =
  List.map
    (fun e ->
      (Events.event_label e, Padded.sum sc.events.(Events.event_index e)))
    Events.all_events

let aborts_total sc =
  Array.fold_left (fun acc p -> acc + Padded.sum p) 0 sc.abort_reasons

let add_window l r = List.map2 (fun (k, v) (_, v') -> (k, v + v')) l r

let cumulative_abort_counts sc =
  add_window (abort_counts sc)
    (List.map
       (fun r ->
         ( Events.abort_reason_label r,
           sc.life_aborts.(Events.abort_reason_index r) ))
       Events.all_abort_reasons)

let cumulative_event_counts sc =
  add_window (event_counts sc)
    (List.map
       (fun e -> (Events.event_label e, sc.life_events.(Events.event_index e)))
       Events.all_events)

let merged_hist life hist =
  let cur = Histogram.snapshot hist in
  Array.mapi (fun i v -> v + life.(i)) cur

let hist_lock_wait sc = merged_hist sc.life_lock_wait sc.lock_wait_ns
let hist_spins sc = merged_hist sc.life_spins sc.spin_iters
let hist_txn sc = merged_hist sc.life_txn sc.txn_ns

(* ---- reset (main thread, writers quiescent) ---- *)

let reset sc =
  List.iteri
    (fun i (_, v) -> sc.life_aborts.(i) <- sc.life_aborts.(i) + v)
    (abort_counts sc);
  List.iteri
    (fun i (_, v) -> sc.life_events.(i) <- sc.life_events.(i) + v)
    (event_counts sc);
  let fold life h =
    let cur = Histogram.snapshot h in
    Array.iteri (fun i v -> life.(i) <- life.(i) + v) cur
  in
  fold sc.life_lock_wait sc.lock_wait_ns;
  fold sc.life_spins sc.spin_iters;
  fold sc.life_txn sc.txn_ns;
  Array.iter Padded.reset sc.abort_reasons;
  Array.iter Padded.reset sc.events;
  Histogram.reset sc.lock_wait_ns;
  Histogram.reset sc.spin_iters;
  Histogram.reset sc.txn_ns

let reset_all () = List.iter reset (all ())
