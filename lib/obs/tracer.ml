(* Per-thread ring-buffer event tracer with a Chrome trace-event exporter.

   Recording must be cheap and allocation-free: each thread owns a flat
   int ring of [capacity] events x 3 words (packed code, start timestamp,
   duration), written with plain stores.  When the ring wraps the oldest
   events are overwritten, so a long benchmark keeps the *last* [capacity]
   events per thread — which is what you want when diagnosing the steady
   state.  Event names are interned once (at scope creation, under a
   mutex) and referenced by id from the hot path.

   The exporter writes the Chrome trace-event JSON array format
   (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
   with "X" complete events (ts + dur) for spans and "i" instant events;
   timestamps are microseconds as the format requires.  Load the file in
   Perfetto or chrome://tracing. *)

let default_capacity = 1 lsl 16
let capacity = ref default_capacity

let set_capacity n =
  if n < 16 then invalid_arg "Tracer.set_capacity: capacity too small";
  capacity := n

(* ---- interned names ---- *)

let names_mutex = Mutex.create ()
let names : string list ref = ref [] (* newest first; id = position from 0 *)
let names_count = ref 0

let intern s =
  Mutex.lock names_mutex;
  let rec find i = function
    | [] -> -1
    | x :: _ when String.equal x s -> !names_count - 1 - i
    | _ :: tl -> find (i + 1) tl
  in
  let id =
    match find 0 !names with
    | -1 ->
        names := s :: !names;
        incr names_count;
        !names_count - 1
    | id -> id
  in
  Mutex.unlock names_mutex;
  id

let name_table () =
  Mutex.lock names_mutex;
  let arr = Array.make !names_count "" in
  List.iteri (fun i s -> arr.(!names_count - 1 - i) <- s) !names;
  Mutex.unlock names_mutex;
  arr

(* ---- per-thread rings ---- *)

type ring = {
  buf : int array; (* cap * 3: code, ts_ns, dur_ns *)
  cap : int;
  mutable next : int; (* next slot to write *)
  mutable count : int; (* valid events, <= cap *)
}

let rings : ring option array = Array.make Util.Tid.max_threads None

(* Owner-only write to rings.(tid): safe without synchronisation. *)
let ring_for tid =
  match rings.(tid) with
  | Some r -> r
  | None ->
      let cap = !capacity in
      let r = { buf = Array.make (cap * 3) 0; cap; next = 0; count = 0 } in
      rings.(tid) <- Some r;
      r

let instant_bit = 1

let record tid code ts dur =
  let r = ring_for tid in
  let i = r.next * 3 in
  r.buf.(i) <- code;
  r.buf.(i + 1) <- ts;
  r.buf.(i + 2) <- dur;
  r.next <- (r.next + 1) mod r.cap;
  if r.count < r.cap then r.count <- r.count + 1

let span ~tid ~name ~ts_ns ~dur_ns = record tid (name lsl 1) ts_ns dur_ns
let instant ~tid ~name ~ts_ns = record tid ((name lsl 1) lor instant_bit) ts_ns 0

let reset () =
  (* Quiescent-only: drops every thread's ring. *)
  Array.iteri (fun i _ -> rings.(i) <- None) rings

(* ---- export ---- *)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let us_of_ns ns = float_of_int ns /. 1e3

let iter_events f =
  Array.iteri
    (fun tid r ->
      match r with
      | None -> ()
      | Some r ->
          (* Oldest first: when wrapped, the oldest event is at [next]. *)
          let start = if r.count < r.cap then 0 else r.next in
          for k = 0 to r.count - 1 do
            let i = (start + k) mod r.cap * 3 in
            f ~tid ~code:r.buf.(i) ~ts:r.buf.(i + 1) ~dur:r.buf.(i + 2)
          done)
    rings

let export ~path =
  let names = name_table () in
  (* Rebase to the earliest event: epoch nanoseconds exceed a double's 53
     mantissa bits, so absolute microsecond timestamps would lose sub-µs
     precision in the %.3f formatting (spans would seem to overlap). *)
  let t_min = ref max_int in
  iter_events (fun ~tid:_ ~code:_ ~ts ~dur:_ -> if ts < !t_min then t_min := ts);
  let t_min = if !t_min = max_int then 0 else !t_min in
  let oc = open_out path in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  iter_events (fun ~tid ~code ~ts ~dur ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b "\n{\"name\":\"";
      let id = code lsr 1 in
      json_escape b (if id < Array.length names then names.(id) else "?");
      Buffer.add_string b "\",\"cat\":\"stm\",\"pid\":1,\"tid\":";
      Buffer.add_string b (string_of_int tid);
      if code land instant_bit <> 0 then
        Buffer.add_string b
          (Printf.sprintf ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f}"
             (us_of_ns (ts - t_min)))
      else
        Buffer.add_string b
          (Printf.sprintf ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f}"
             (us_of_ns (ts - t_min)) (us_of_ns dur));
      if Buffer.length b > 1 lsl 16 then begin
        Buffer.output_buffer oc b;
        Buffer.clear b
      end);
  Buffer.add_string b "\n]}\n";
  Buffer.output_buffer oc b;
  close_out oc
