module Make (L : Rwlock.Trylock_rw.S) () = struct
  let name = L.name

  module Cm = Twoplsf_cm.Cm
  module Admission = Twoplsf_cm.Admission

  exception Restart

  open Tvar (* brings the { id; v } field labels into scope *)

  type 'a tvar = 'a Tvar.t

  let tvar = Tvar.make

  type tx = {
    tid : int;
    rset : int Util.Vec.t; (* read-locked lock indices *)
    wlocks : int Util.Vec.t; (* write-locked lock indices *)
    undo : Wset.t;
    mutable depth : int;
    mutable restarts : int;
    mutable finished_restarts : int;
    mutable escalated : bool; (* overload fallback: Cm.Fallback mutex held *)
    ov : Cm.state;
  }

  let requested_num_locks = ref 65536
  let built = ref false
  let built_num_locks = ref 0

  let locks =
    Util.Once.create (fun () ->
        built := true;
        built_num_locks := !requested_num_locks;
        L.create ~num_locks:!requested_num_locks)

  let configure ?(num_locks = 65536) () =
    if !built then failwith (name ^ ".configure: lock table already built");
    requested_num_locks := num_locks

  let stats = Stm_intf.Stats.create ()

  let tx_key =
    Domain.DLS.new_key (fun () ->
        {
          tid = Util.Tid.get ();
          rset = Util.Vec.create ~dummy:(-1) ();
          wlocks = Util.Vec.create ~dummy:(-1) ();
          undo = Wset.create ();
          depth = 0;
          restarts = 0;
          finished_restarts = 0;
          escalated = false;
          ov = Cm.make_state ();
        })

  let get_tx () = Domain.DLS.get tx_key

  let read tx (tv : 'a tvar) : 'a =
    let l = Util.Once.get locks in
    let w = L.lock_index l tv.id in
    if L.holds_write l ~tid:tx.tid w || L.holds_read l ~tid:tx.tid w then tv.v
    else if L.try_read_lock l ~tid:tx.tid w then begin
      Util.Vec.push tx.rset w;
      tv.v
    end
    else raise Restart

  let write tx tv nv =
    let l = Util.Once.get locks in
    let w = L.lock_index l tv.id in
    let held = L.holds_write l ~tid:tx.tid w in
    if held || L.try_write_lock l ~tid:tx.tid w then begin
      if not held then Util.Vec.push tx.wlocks w;
      Wset.log_old_once tx.undo tv tv.v;
      tv.v <- nv
    end
    else raise Restart

  let release tx =
    let l = Util.Once.get locks in
    Util.Vec.iter (fun w -> L.write_unlock l ~tid:tx.tid w) tx.wlocks;
    Util.Vec.iter (fun w -> L.read_unlock l ~tid:tx.tid w) tx.rset

  let rollback tx =
    Wset.rollback tx.undo;
    release tx

  let begin_attempt tx =
    Util.Vec.clear tx.rset;
    Util.Vec.clear tx.wlocks;
    Wset.clear tx.undo

  let finish_escalation tx =
    if tx.escalated then begin
      tx.escalated <- false;
      Cm.Fallback.release ()
    end

  let run tx f =
    tx.restarts <- 0;
    ignore (Cm.begin_txn tx.ov);
    let rec attempt n =
      begin_attempt tx;
      tx.depth <- 1;
      match f tx with
      | v ->
          tx.depth <- 0;
          release tx;
          finish_escalation tx;
          Stm_intf.Stats.commit stats ~tid:tx.tid;
          tx.finished_restarts <- tx.restarts;
          v
      | exception Restart ->
          tx.depth <- 0;
          rollback tx;
          Stm_intf.Stats.abort stats ~tid:tx.tid;
          tx.restarts <- tx.restarts + 1;
          if tx.escalated then begin
            Util.Backoff.exponential ~attempt:n;
            attempt (n + 1)
          end
          else begin
            match
              Cm.after_abort ~stm:name ~tid:tx.tid ~restarts:tx.restarts
                ~st:tx.ov
                ~native_wait:(fun () -> Util.Backoff.exponential ~attempt:n)
                ~cleanup:(fun () -> ())
                ~reasons:(fun () -> [])
            with
            | Cm.Retry -> attempt (n + 1)
            | Cm.Escalate ->
                Cm.Fallback.acquire ();
                tx.escalated <- true;
                attempt (n + 1)
          end
      | exception e ->
          tx.depth <- 0;
          rollback tx;
          finish_escalation tx;
          raise e
    in
    attempt 1

  let atomic ?read_only f =
    ignore read_only (* reads always lock, as in every 2PL *);
    let tx = get_tx () in
    if tx.depth > 0 then f tx else Admission.guard (fun () -> run tx f)

  let commits () = Stm_intf.Stats.commits stats
  let aborts () = Stm_intf.Stats.aborts stats
  let clock_ops () = 0 (* no central clock in the no-wait family *)
  let reset_stats () = Stm_intf.Stats.reset stats
  let last_restarts () = (get_tx ()).finished_restarts

  (* The lock signature exposes no raw state, so the sweep asks every
     (lock, tid) pair whether it is held.  O(num_locks * max_threads):
     fine for a post-run quiescent check, not for hot paths. *)
  let leaked_locks () =
    if not !built then 0
    else begin
      let l = Util.Once.get locks in
      let n = ref 0 in
      for w = 0 to !built_num_locks - 1 do
        let held = ref false in
        for tid = 0 to Util.Tid.max_threads - 1 do
          if L.holds_write l ~tid w || L.holds_read l ~tid w then held := true
        done;
        if !held then incr n
      done;
      !n
    end
end
