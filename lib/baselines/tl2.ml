let name = "TL2"

module Obs = Twoplsf_obs
module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission
module Chaos = Twoplsf_chaos.Chaos

exception Restart

open Tvar (* brings the { id; v } field labels into scope *)

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

type tx = {
  tid : int;
  mutable rv : int;
  rset : int Util.Vec.t; (* orec indices of validated reads *)
  wset : Wset.t;
  acquired : (int * int) Util.Vec.t; (* commit-time locks: (orec, old version) *)
  mutable ro : bool;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  mutable escalated : bool; (* overload fallback: Cm.Fallback mutex held *)
  ov : Cm.state;
  mutable abort_reason : Obs.Events.abort_reason;
  mutable c_orec : int; (* orec the in-flight abort is pinned on, or -1 *)
  mutable c_owner : int; (* its lock owner at detection time, or -1 *)
}

let requested_num_orecs = ref 65536
let built = ref false

let orecs =
  Util.Once.create (fun () ->
      built := true;
      Orec.create ~num_orecs:!requested_num_orecs)

let configure ?(num_orecs = 65536) () =
  if !built then failwith "Tl2.configure: orec table already built";
  requested_num_orecs := num_orecs

let clock = Atomic.make 0
let stats = Stm_intf.Stats.create ()
let obs = Obs.Scope.create "TL2"

let tx_key =
  Domain.DLS.new_key (fun () ->
      {
        tid = Util.Tid.get ();
        rv = 0;
        rset = Util.Vec.create ~dummy:(-1) ();
        wset = Wset.create ();
        acquired = Util.Vec.create ~dummy:(-1, -1) ();
        ro = false;
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        escalated = false;
        ov = Cm.make_state ();
        abort_reason = Obs.Events.User_restart;
        c_orec = -1;
        c_owner = -1;
      })

let get_tx () = Domain.DLS.get tx_key

(* Pin the in-flight abort on orec [oi] (conflict-cartography provenance):
   the aborter is the lock owner when [word] is locked; version-too-new
   conflicts have no identifiable owner. *)
let pin tx oi word =
  tx.c_orec <- oi;
  tx.c_owner <- (if Orec.is_locked word then Orec.owner word else -1)

let read tx (tv : 'a tvar) : 'a =
  let o = Util.Once.get orecs in
  if not tx.ro then
    match Wset.find tx.wset tv with
    | Some v -> v
    | None ->
        let oi = Orec.index o tv.id in
        let pre = Orec.get o oi in
        (* Sync points bracket the sampled-read window: orec load ->
           value fetch and value fetch -> recheck. *)
        if !Chaos.on then Chaos.point Chaos.Orec_check;
        if Orec.is_locked pre || Orec.version pre > tx.rv then begin
          pin tx oi pre;
          tx.abort_reason <- Obs.Events.Read_validation;
          raise Restart
        end;
        let v = tv.v in
        if !Chaos.on then Chaos.point Chaos.Orec_check;
        if Orec.get o oi <> pre then begin
          pin tx oi (Orec.get o oi);
          tx.abort_reason <- Obs.Events.Read_validation;
          raise Restart
        end;
        Util.Vec.push tx.rset oi;
        v
  else begin
    let oi = Orec.index o tv.id in
    let pre = Orec.get o oi in
    if !Chaos.on then Chaos.point Chaos.Orec_check;
    if Orec.is_locked pre || Orec.version pre > tx.rv then begin
      pin tx oi pre;
      tx.abort_reason <- Obs.Events.Read_validation;
      raise Restart
    end;
    let v = tv.v in
    if !Chaos.on then Chaos.point Chaos.Orec_check;
    if Orec.get o oi <> pre then begin
      pin tx oi (Orec.get o oi);
      tx.abort_reason <- Obs.Events.Read_validation;
      raise Restart
    end;
    v
  end

let write tx tv nv =
  if tx.ro then invalid_arg "Tl2.write inside a read-only transaction";
  Wset.add tx.wset tv nv

let release_acquired tx =
  let o = Util.Once.get orecs in
  Util.Vec.iter_rev
    (fun (oi, old_version) -> Orec.unlock_to o oi ~version:old_version)
    tx.acquired

let lock_write_set tx =
  let o = Util.Once.get orecs in
  let ok = ref true in
  (try
     Wset.iter_ids tx.wset (fun id ->
         let oi = Orec.index o id in
         if !Chaos.on then Chaos.point Chaos.Orec_lock;
         let w = Orec.get o oi in
         if Orec.is_locked w && Orec.owner w = tx.tid then ()
           (* another tvar hashing onto an orec we already own *)
         else
           match Orec.try_lock o ~tid:tx.tid oi with
           | Some old_version -> Util.Vec.push tx.acquired (oi, old_version)
           | None ->
               pin tx oi (Orec.get o oi);
               raise Exit)
   with Exit -> ok := false);
  !ok

(* Version an orec had when this commit locked it (linear scan: commit
   write sets are small). *)
let acquired_old_version tx oi =
  let n = Util.Vec.length tx.acquired in
  let rec go i =
    if i >= n then None
    else
      let oj, old_version = Util.Vec.get tx.acquired i in
      if oj = oi then Some old_version else go (i + 1)
  in
  go 0

let validate_read_set tx =
  let o = Util.Once.get orecs in
  let ok = ref true in
  (try
     Util.Vec.iter
       (fun oi ->
         if !Chaos.on then Chaos.point Chaos.Validate;
         let w = Orec.get o oi in
         if Orec.is_locked w then begin
           if Orec.owner w <> tx.tid then begin
             pin tx oi w;
             raise Exit
           end;
           (* Self-locked: the commit-time CAS may have succeeded from a
              version newer than rv; the read is valid only if the pre-lock
              version was within the snapshot. *)
           match acquired_old_version tx oi with
           | Some old_version when old_version <= tx.rv -> ()
           | Some _ | None ->
               pin tx oi w;
               raise Exit
         end
         else if Orec.version w > tx.rv then begin
           pin tx oi w;
           raise Exit
         end)
       tx.rset
   with Exit -> ok := false);
  !ok

let commit tx =
  if Wset.is_empty tx.wset then ()
  else begin
    if not (lock_write_set tx) then begin
      release_acquired tx;
      tx.abort_reason <- Obs.Events.Commit_lock_conflict;
      raise Restart
    end;
    let wv = 1 + Atomic.fetch_and_add clock 1 in
    Stm_intf.Stats.clock_op stats ~tid:tx.tid;
    if wv <> tx.rv + 1 && not (validate_read_set tx) then begin
      release_acquired tx;
      tx.abort_reason <- Obs.Events.Commit_validation;
      raise Restart
    end;
    Wset.apply tx.wset;
    let o = Util.Once.get orecs in
    Util.Vec.iter (fun (oi, _) -> Orec.unlock_to o oi ~version:wv) tx.acquired
  end

let begin_attempt tx ~ro =
  Util.Vec.clear tx.rset;
  Wset.clear tx.wset;
  Util.Vec.clear tx.acquired;
  tx.ro <- ro;
  tx.abort_reason <- Obs.Events.User_restart;
  tx.c_orec <- -1;
  tx.c_owner <- -1;
  tx.rv <- Atomic.get clock

let finish_escalation tx =
  if tx.escalated then begin
    tx.escalated <- false;
    Cm.Fallback.release ()
  end

let run tx read_only f =
  tx.restarts <- 0;
  ignore (Cm.begin_txn tx.ov);
  let telemetry = !Obs.Telemetry.on in
  let txn_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
  let commit_t0 = ref 0 in
  (* The native inter-attempt wait, attributed to the [Backoff] phase
     when telemetry is on. *)
  let native_wait n () =
    if telemetry then begin
      let t0 = Obs.Telemetry.now_ns () in
      Util.Backoff.exponential ~attempt:n;
      Obs.Scope.phase_add obs ~tid:tx.tid Obs.Phase.Backoff
        (Obs.Telemetry.now_ns () - t0)
    end
    else Util.Backoff.exponential ~attempt:n
  in
  let rec attempt n att_t0 =
    begin_attempt tx ~ro:read_only;
    tx.depth <- 1;
    match
      let v = f tx in
      (* Commit-time write-set locking, validation and write-back all
         count as the [Commit] phase. *)
      if telemetry then commit_t0 := Obs.Telemetry.now_ns ();
      commit tx;
      v
    with
    | v ->
        tx.depth <- 0;
        finish_escalation tx;
        Stm_intf.Stats.commit stats ~tid:tx.tid;
        tx.finished_restarts <- tx.restarts;
        if telemetry then
          Obs.Scope.txn_commit obs ~tid:tx.tid ~txn_t0_ns:txn_t0
            ~att_t0_ns:att_t0 ~commit_t0_ns:!commit_t0 ();
        v
    | exception Restart ->
        tx.depth <- 0;
        Stm_intf.Stats.abort stats ~tid:tx.tid;
        if telemetry then
          Obs.Scope.txn_abort obs ~aborter:tx.c_owner ~lock:tx.c_orec
            ~tid:tx.tid ~att_t0_ns:att_t0 tx.abort_reason;
        tx.restarts <- tx.restarts + 1;
        if tx.escalated then begin
          (* Serial slow path: the fallback mutex keeps other escalated
             transactions out; retry unconditionally. *)
          native_wait n ();
          attempt (n + 1) (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
        else begin
          match
            Cm.after_abort ~stm:name ~tid:tx.tid ~restarts:tx.restarts
              ~st:tx.ov
              ~native_wait:(native_wait n)
              ~cleanup:(fun () -> ())
              ~reasons:(fun () ->
                if telemetry then Obs.Scope.abort_counts obs else [])
          with
          | Cm.Retry ->
              attempt (n + 1)
                (if telemetry then Obs.Telemetry.now_ns () else 0)
          | Cm.Escalate ->
              Cm.Fallback.acquire ();
              tx.escalated <- true;
              if telemetry then
                Obs.Scope.event obs ~tid:tx.tid Obs.Events.Irrevocable_fallback;
              attempt (n + 1)
                (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
    | exception e ->
        tx.depth <- 0;
        (* The body holds no locks (lazy locking), but an exception
           escaping mid-commit does: drop any commit-time orec locks to
           their pre-lock versions before propagating. *)
        release_acquired tx;
        finish_escalation tx;
        raise e
  in
  attempt 1 txn_t0

let atomic ?(read_only = false) f =
  let tx = get_tx () in
  if tx.depth > 0 then f tx else Admission.guard (fun () -> run tx read_only f)

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = Stm_intf.Stats.clock_ops stats

let reset_stats () =
  Stm_intf.Stats.reset stats;
  Obs.Scope.reset obs

let last_restarts () = (get_tx ()).finished_restarts
let leaked_locks () =
  if !built then Orec.locked_count (Util.Once.get orecs) else 0
