(** 2PL-RW (Figure 2): no-wait 2PL over the single-word reader-writer
    lock ({!Rwlock.Rwl_single}).  One of the three {!Nowait_2pl}
    instances; the paper's simplest 2PL baseline — every reader CASes the
    same word, which is the scalability wall 2PL-RW-Dist and 2PLSF's
    distributed read indicator remove. *)

include Stm_intf.STM

val configure : ?num_locks:int -> unit -> unit
(** Size this STM's lock table (power of two, default 65536); must precede
    the first transaction. *)
