module Rwl_sf = Twoplsf.Rwl_sf

let name = "2PL-WaitDie"

module Obs = Twoplsf_obs
module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission

exception Restart

open Tvar (* brings the { id; v } field labels into scope *)

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

type tx = {
  ctx : Rwl_sf.ctx;
  rset : int Util.Vec.t;
  wlocks : int Util.Vec.t;
  undo : Wset.t;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  mutable escalated : bool; (* overload fallback: Cm.Fallback mutex held *)
  ov : Cm.state;
  mutable abort_reason : Obs.Events.abort_reason;
}

let requested_num_locks = ref 65536
let built = ref false
let obs = Obs.Scope.create name

let table =
  Util.Once.create (fun () ->
      built := true;
      let t = Rwl_sf.create ~num_locks:!requested_num_locks () in
      Rwl_sf.set_obs t obs;
      t)

let configure ?(num_locks = 65536) () =
  if !built then failwith "Wait_or_die.configure: lock table already built";
  requested_num_locks := num_locks

let stats = Stm_intf.Stats.create ()

let tx_key =
  Domain.DLS.new_key (fun () ->
      let tid = Util.Tid.get () in
      {
        ctx = Rwl_sf.make_ctx ~tid;
        rset = Util.Vec.create ~dummy:(-1) ();
        wlocks = Util.Vec.create ~dummy:(-1) ();
        undo = Wset.create ();
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        escalated = false;
        ov = Cm.make_state ();
        abort_reason = Obs.Events.User_restart;
      })

let get_tx () = Domain.DLS.get tx_key

let read tx (tv : 'a tvar) : 'a =
  let t = Util.Once.get table in
  let w = Rwl_sf.lock_index t tv.id in
  if Rwl_sf.holds_read t tx.ctx w || Rwl_sf.holds_write t tx.ctx w then tv.v
  else if Rwl_sf.try_or_wait_read_lock t tx.ctx w then begin
    Util.Vec.push tx.rset w;
    tv.v
  end
  else begin
    tx.abort_reason <-
      (if tx.ctx.Rwl_sf.deadline_hit then Obs.Events.Deadline
       else Obs.Events.Read_lock_conflict);
    raise Restart
  end

let write tx tv nv =
  let t = Util.Once.get table in
  let w = Rwl_sf.lock_index t tv.id in
  let held = Rwl_sf.holds_write t tx.ctx w in
  if held || Rwl_sf.try_or_wait_write_lock t tx.ctx w then begin
    if not held then Util.Vec.push tx.wlocks w;
    Wset.log_old_once tx.undo tv tv.v;
    tv.v <- nv
  end
  else begin
    tx.abort_reason <-
      (if tx.ctx.Rwl_sf.deadline_hit then Obs.Events.Deadline
       else if tx.ctx.Rwl_sf.preempted then Obs.Events.Priority_preemption
       else Obs.Events.Write_lock_conflict);
    raise Restart
  end

let release tx =
  let t = Util.Once.get table in
  Util.Vec.iter (fun w -> Rwl_sf.write_unlock t tx.ctx w) tx.wlocks;
  Util.Vec.iter (fun w -> Rwl_sf.read_unlock t tx.ctx w) tx.rset

let rollback tx =
  Wset.rollback tx.undo;
  release tx

(* After dying, wait until no in-flight transaction has a lower timestamp
   — even non-conflicting ones (the wait-or-die behaviour §2.1 contrasts
   with 2PLSF's wait-for-the-specific-conflictor). *)
let wait_for_all_lower t tx =
  let b = Util.Backoff.create () in
  let someone_lower () =
    let hwm = Util.Tid.high_water () in
    let rec go tid =
      if tid >= hwm then false
      else if tid <> tx.ctx.tid then begin
        let ts = Rwl_sf.announced t tid in
        if ts > 0 && ts < tx.ctx.my_ts then true else go (tid + 1)
      end
      else go (tid + 1)
    in
    go 0
  in
  while someone_lower () do
    Util.Backoff.once b
  done

let begin_attempt t tx =
  Util.Vec.clear tx.rset;
  Util.Vec.clear tx.wlocks;
  Wset.clear tx.undo;
  tx.abort_reason <- Obs.Events.User_restart;
  (* The wait-or-die signature: a timestamp on *every* transaction (kept
     across restarts so progress is guaranteed). *)
  Rwl_sf.take_timestamp t tx.ctx

let finish_escalation tx =
  if tx.escalated then begin
    tx.escalated <- false;
    Cm.Fallback.release ()
  end

let run tx f =
  tx.restarts <- 0;
  tx.ctx.Rwl_sf.deadline_ns <- Cm.begin_txn tx.ov;
  tx.ctx.Rwl_sf.deadline_hit <- false;
  let t = Util.Once.get table in
  let telemetry = !Obs.Telemetry.on in
  let txn_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
  let rec attempt att_t0 =
    begin_attempt t tx;
    tx.depth <- 1;
    match f tx with
    | v ->
        tx.depth <- 0;
        let commit_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
        release tx;
        Rwl_sf.clear_announcement t tx.ctx;
        finish_escalation tx;
        Stm_intf.Stats.commit stats ~tid:tx.ctx.tid;
        tx.finished_restarts <- tx.restarts;
        if telemetry then
          Obs.Scope.txn_commit obs ~tid:tx.ctx.tid ~txn_t0_ns:txn_t0
            ~att_t0_ns:att_t0 ~commit_t0_ns:commit_t0 ();
        v
    | exception Restart ->
        tx.depth <- 0;
        rollback tx;
        tx.ctx.Rwl_sf.deadline_hit <- false;
        Stm_intf.Stats.abort stats ~tid:tx.ctx.tid;
        if telemetry then begin
          (* The shared Rwl_sf slow path pins the conflicting lock and
             owner in the ctx, exactly as for 2PLSF proper. *)
          let aborter, lock =
            match tx.abort_reason with
            | Obs.Events.User_restart -> (-1, -1)
            | _ -> (tx.ctx.Rwl_sf.o_tid, tx.ctx.Rwl_sf.o_lock)
          in
          Obs.Scope.txn_abort obs ~aborter ~lock ~tid:tx.ctx.tid
            ~att_t0_ns:att_t0 tx.abort_reason
        end;
        tx.restarts <- tx.restarts + 1;
        if tx.escalated then begin
          (* Serial slow path: the kept (now oldest-aging) timestamp plus
             the fallback mutex guarantee eventual commit. *)
          wait_for_all_lower t tx;
          attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
        else begin
          match
            Cm.after_abort ~stm:name ~tid:tx.ctx.tid ~restarts:tx.restarts
              ~st:tx.ov
              ~native_wait:(fun () -> wait_for_all_lower t tx)
                (* Drop the announced timestamp before bailing out so no
                   surviving transaction keeps deferring to a dead one. *)
              ~cleanup:(fun () -> Rwl_sf.clear_announcement t tx.ctx)
              ~reasons:(fun () ->
                if telemetry then Obs.Scope.abort_counts obs else [])
          with
          | Cm.Retry ->
              tx.ctx.Rwl_sf.deadline_ns <- tx.ov.Cm.deadline;
              attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
          | Cm.Escalate ->
              Cm.Fallback.acquire ();
              tx.escalated <- true;
              tx.ctx.Rwl_sf.deadline_ns <- 0;
              if telemetry then
                Obs.Scope.event obs ~tid:tx.ctx.tid
                  Obs.Events.Irrevocable_fallback;
              attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
    | exception e ->
        tx.depth <- 0;
        rollback tx;
        Rwl_sf.clear_announcement t tx.ctx;
        finish_escalation tx;
        raise e
  in
  attempt txn_t0

let atomic ?read_only f =
  ignore read_only;
  let tx = get_tx () in
  if tx.depth > 0 then f tx else Admission.guard (fun () -> run tx f)

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = Rwl_sf.clock_increments (Util.Once.get table)

let reset_stats () =
  Stm_intf.Stats.reset stats;
  Rwl_sf.reset_clock_increments (Util.Once.get table);
  Obs.Scope.reset obs
let last_restarts () = (get_tx ()).finished_restarts
let leaked_locks () =
  if !built then Rwl_sf.leaked (Util.Once.get table) else 0
