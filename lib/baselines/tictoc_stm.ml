open Tvar (* brings the { id; v } field labels into scope *)

let name = "TicToc-STM"

module Obs = Twoplsf_obs
module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission
module Chaos = Twoplsf_chaos.Chaos

exception Restart

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

(* Per-orec word: bit 0 = lock, bits 1..40 = wts, bits 41..62 = delta
   (rts = wts + delta, capped) — same packing as Dbx.Cc_tictoc. *)
let lock_bit = 1
let wts_mask = (1 lsl 40) - 1
let delta_shift = 41
let delta_max = (1 lsl 22) - 1
let is_locked w = w land lock_bit <> 0
let wts_of w = (w lsr 1) land wts_mask
let rts_of w = wts_of w + (w lsr delta_shift)

let pack ~locked ~wts ~rts =
  let delta = Stdlib.min (rts - wts) delta_max in
  (if locked then lock_bit else 0) lor (wts lsl 1) lor (delta lsl delta_shift)

let read_budget = 1 lsl 17

type tx = {
  tid : int;
  rset : (int * int) Util.Vec.t; (* (orec index, observed word) *)
  wset : Wset.t;
  locked : (int * int) Util.Vec.t; (* (orec index, pre-lock word) *)
  mutable reads : int;
  mutable ro : bool;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  mutable escalated : bool; (* overload fallback: Cm.Fallback mutex held *)
  ov : Cm.state;
  mutable abort_reason : Obs.Events.abort_reason;
  mutable c_orec : int;
      (* orec the in-flight abort is pinned on, or -1 (conflict
         cartography; TicToc lock words carry no owner tid, so the
         aborter side of the edge is always unknown) *)
}

let requested_num_orecs = ref 65536
let built = ref false

type table = { mask : int; words : int Atomic.t array }

let table =
  Util.Once.create (fun () ->
      built := true;
      let n = !requested_num_orecs in
      if n land (n - 1) <> 0 || n <= 0 then
        invalid_arg "Tictoc_stm: num_orecs must be a power of two";
      {
        mask = n - 1;
        words = Array.init n (fun _ -> Atomic.make (pack ~locked:false ~wts:0 ~rts:0));
      })

let configure ?(num_orecs = 65536) () =
  if !built then failwith "Tictoc_stm.configure: orec table already built";
  requested_num_orecs := num_orecs

let stats = Stm_intf.Stats.create ()
let obs = Obs.Scope.create "TicToc-STM"

let tx_key =
  Domain.DLS.new_key (fun () ->
      {
        tid = Util.Tid.get ();
        rset = Util.Vec.create ~dummy:(-1, 0) ();
        wset = Wset.create ();
        locked = Util.Vec.create ~dummy:(-1, 0) ();
        reads = 0;
        ro = false;
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        escalated = false;
        ov = Cm.make_state ();
        abort_reason = Obs.Events.User_restart;
        c_orec = -1;
      })

let get_tx () = Domain.DLS.get tx_key

let stable_word t tx oi =
  (* Bounded wait for an unlocked word.  The sync point inside the loop
     keeps this schedulable: under the cooperative scheduler the lock
     holder is parked, and without a scheduling decision per iteration
     this spin could never hand it the baton. *)
  let rec go n =
    if n > 1000 then begin
      tx.c_orec <- oi;
      raise Restart
    end;
    if !Chaos.on then Chaos.point Chaos.Validate;
    let w = Atomic.get t.words.(oi) in
    if is_locked w then begin
      Domain.cpu_relax ();
      go (n + 1)
    end
    else w
  in
  go 0

let read tx (tv : 'a tvar) : 'a =
  tx.reads <- tx.reads + 1;
  if tx.reads > read_budget then begin
    (* Zombie-escape budget, not a data conflict: outside the taxonomy. *)
    tx.abort_reason <- Obs.Events.User_restart;
    raise Restart
  end;
  (* Any Restart below is a read that saw a locked or changed word. *)
  tx.abort_reason <- Obs.Events.Read_validation;
  (* No snapshot validation: this is the non-opacity under test. *)
  if not tx.ro then
    match Wset.find tx.wset tv with
    | Some v -> v
    | None ->
        let t = Util.Once.get table in
        let oi = tv.id land t.mask in
        let w = stable_word t tx oi in
        let v = tv.v in
        if !Chaos.on then Chaos.point Chaos.Orec_check;
        if Atomic.get t.words.(oi) <> w then begin
          tx.c_orec <- oi;
          raise Restart
        end;
        Util.Vec.push tx.rset (oi, w);
        v
  else begin
    let t = Util.Once.get table in
    let oi = tv.id land t.mask in
    let w = stable_word t tx oi in
    let v = tv.v in
    if !Chaos.on then Chaos.point Chaos.Orec_check;
    if Atomic.get t.words.(oi) <> w then begin
      tx.c_orec <- oi;
      raise Restart
    end;
    Util.Vec.push tx.rset (oi, w);
    v
  end

let write tx tv nv =
  if tx.ro then invalid_arg "Tictoc_stm.write inside a read-only transaction";
  Wset.add tx.wset tv nv

let unlock_all t tx =
  Util.Vec.iter
    (fun (oi, pre) -> Atomic.set t.words.(oi) pre)
    tx.locked

let is_self_locked tx oi = Util.Vec.exists (fun (o, _) -> o = oi) tx.locked

let lock_write_set t tx =
  let ok = ref true in
  (try
     Wset.iter_ids tx.wset (fun id ->
         let oi = id land t.mask in
         if !Chaos.on then Chaos.point Chaos.Orec_lock;
         if is_self_locked tx oi then ()
         else begin
           let w = Atomic.get t.words.(oi) in
           if is_locked w then begin
             tx.c_orec <- oi;
             raise Exit
           end;
           if not (Atomic.compare_and_set t.words.(oi) w (w lor lock_bit))
           then begin
             tx.c_orec <- oi;
             raise Exit
           end;
           Util.Vec.push tx.locked (oi, w)
         end)
   with Exit -> ok := false);
  !ok

let commit tx =
  if Wset.is_empty tx.wset then ()
  else begin
    let t = Util.Once.get table in
    if not (lock_write_set t tx) then begin
      unlock_all t tx;
      tx.abort_reason <- Obs.Events.Commit_lock_conflict;
      raise Restart
    end;
    (* Commit timestamp: above every read's wts and every write's rts. *)
    let ct = ref 0 in
    Util.Vec.iter (fun (_, pre) -> ct := Stdlib.max !ct (rts_of pre + 1)) tx.locked;
    Util.Vec.iter (fun (_, w) -> ct := Stdlib.max !ct (wts_of w)) tx.rset;
    let ct = !ct in
    let ok = ref true in
    (try
       Util.Vec.iter
         (fun (oi, observed) ->
           if !Chaos.on then Chaos.point Chaos.Validate;
           if rts_of observed < ct then begin
             let cur = Atomic.get t.words.(oi) in
             if wts_of cur <> wts_of observed then begin
               tx.c_orec <- oi;
               raise Exit
             end;
             if is_locked cur then begin
               if not (is_self_locked tx oi) then begin
                 tx.c_orec <- oi;
                 raise Exit
               end
               (* our own commit lock: the write phase stamps it to ct *)
             end
             else if
               rts_of cur < ct
               && not
                    (Atomic.compare_and_set t.words.(oi) cur
                       (pack ~locked:false ~wts:(wts_of cur) ~rts:ct))
             then begin
               tx.c_orec <- oi;
               raise Exit
             end
           end)
         tx.rset
     with Exit -> ok := false);
    if not !ok then begin
      unlock_all t tx;
      tx.abort_reason <- Obs.Events.Commit_validation;
      raise Restart
    end;
    Wset.apply tx.wset;
    Util.Vec.iter
      (fun (oi, _) -> Atomic.set t.words.(oi) (pack ~locked:false ~wts:ct ~rts:ct))
      tx.locked
  end

let begin_attempt tx ~ro =
  Util.Vec.clear tx.rset;
  Wset.clear tx.wset;
  Util.Vec.clear tx.locked;
  tx.reads <- 0;
  tx.abort_reason <- Obs.Events.User_restart;
  tx.c_orec <- -1;
  tx.ro <- ro

let finish_escalation tx =
  if tx.escalated then begin
    tx.escalated <- false;
    Cm.Fallback.release ()
  end

let run tx read_only f =
  tx.restarts <- 0;
  ignore (Cm.begin_txn tx.ov);
  let telemetry = !Obs.Telemetry.on in
  let txn_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
  let commit_t0 = ref 0 in
  (* Native inter-attempt wait, attributed to [Backoff] under telemetry. *)
  let native_wait n () =
    if telemetry then begin
      let t0 = Obs.Telemetry.now_ns () in
      Util.Backoff.exponential ~attempt:n;
      Obs.Scope.phase_add obs ~tid:tx.tid Obs.Phase.Backoff
        (Obs.Telemetry.now_ns () - t0)
    end
    else Util.Backoff.exponential ~attempt:n
  in
  let rec attempt n att_t0 =
    begin_attempt tx ~ro:read_only;
    tx.depth <- 1;
    match
      let v = f tx in
      (* Commit-time locking, OCC validation and write-back count as the
         [Commit] phase. *)
      if telemetry then commit_t0 := Obs.Telemetry.now_ns ();
      commit tx;
      v
    with
    | v ->
        tx.depth <- 0;
        finish_escalation tx;
        Stm_intf.Stats.commit stats ~tid:tx.tid;
        tx.finished_restarts <- tx.restarts;
        if telemetry then
          Obs.Scope.txn_commit obs ~tid:tx.tid ~txn_t0_ns:txn_t0
            ~att_t0_ns:att_t0 ~commit_t0_ns:!commit_t0 ();
        v
    | exception Restart ->
        tx.depth <- 0;
        Stm_intf.Stats.abort stats ~tid:tx.tid;
        if telemetry then
          Obs.Scope.txn_abort obs ~lock:tx.c_orec ~tid:tx.tid
            ~att_t0_ns:att_t0 tx.abort_reason;
        tx.restarts <- tx.restarts + 1;
        if tx.escalated then begin
          native_wait n ();
          attempt (n + 1) (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
        else begin
          match
            Cm.after_abort ~stm:name ~tid:tx.tid ~restarts:tx.restarts
              ~st:tx.ov
              ~native_wait:(native_wait n)
              ~cleanup:(fun () -> ())
              ~reasons:(fun () ->
                if telemetry then Obs.Scope.abort_counts obs else [])
          with
          | Cm.Retry ->
              attempt (n + 1)
                (if telemetry then Obs.Telemetry.now_ns () else 0)
          | Cm.Escalate ->
              Cm.Fallback.acquire ();
              tx.escalated <- true;
              if telemetry then
                Obs.Scope.event obs ~tid:tx.tid Obs.Events.Irrevocable_fallback;
              attempt (n + 1)
                (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
    | exception e ->
        tx.depth <- 0;
        (* The body holds no locks (lazy locking), but an exception
           escaping mid-commit does: restore any commit-locked words to
           their pre-lock values before propagating. *)
        (if !built then unlock_all (Util.Once.get table) tx);
        finish_escalation tx;
        raise e
  in
  attempt 1 txn_t0

let atomic ?(read_only = false) f =
  let tx = get_tx () in
  if tx.depth > 0 then f tx
  else Admission.guard (fun () -> run tx read_only f)

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = 0 (* TicToc's selling point: no central clock at all *)

let reset_stats () =
  Stm_intf.Stats.reset stats;
  Obs.Scope.reset obs

let last_restarts () = (get_tx ()).finished_restarts

let leaked_locks () =
  if not !built then 0
  else begin
    let t = Util.Once.get table in
    let n = ref 0 in
    Array.iter (fun w -> if is_locked (Atomic.get w) then incr n) t.words;
    !n
  end
