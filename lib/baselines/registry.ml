let twoplsf : (module Stm_intf.STM) = (module Twoplsf.Stm)

let figure2 : (module Stm_intf.STM) list =
  [ (module Twopl_rw); (module Twopl_rw_dist); (module Twoplsf.Stm) ]

let main_set : (module Stm_intf.STM) list =
  [
    (module Tl2);
    (module Tinystm);
    (module Tlrw);
    (module Orec_lazy);
    (module Onefile);
    (module Twoplsf.Stm);
  ]

let all : (module Stm_intf.STM) list =
  [
    (module Twoplsf.Stm);
    (module Tl2);
    (module Tinystm);
    (module Tlrw);
    (module Orec_lazy);
    (module Onefile);
    (module Twopl_rw);
    (module Twopl_rw_dist);
    (module Wait_or_die);
    (module Wound_wait);
    (module Twoplsf.Stm_wb);
    (module Twoplsf.Stm_wbd);
  ]

module Chaos = Twoplsf_chaos.Chaos

(* Shadow [atomic] with transaction-body fault-injection sites.  These are
   the only places chaos raises a user-visible exception
   ([Chaos.Injected_fault]): outside every protocol-internal critical
   section, so the STM's own exception path must clean up completely —
   which is exactly the property the chaos tests assert. *)
module Chaos_wrap (S : Stm_intf.STM) : Stm_intf.STM = struct
  include S

  let atomic ?read_only f =
    if not !Chaos.on then S.atomic ?read_only f
    else
      S.atomic ?read_only (fun tx ->
          Chaos.point Chaos.Txn_body;
          Chaos.inject_exn Chaos.Txn_body;
          let v = f tx in
          Chaos.point Chaos.Pre_commit;
          v)
end

let chaos_wrap (module S : Stm_intf.STM) : (module Stm_intf.STM) =
  (module Chaos_wrap (S))

let find name =
  let has (module S : Stm_intf.STM) = String.equal S.name name in
  match List.find_opt has all with
  | Some s -> s
  | None -> raise Not_found
