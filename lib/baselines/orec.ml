type t = { mask : int; words : int Atomic.t array }

let create ~num_orecs =
  if num_orecs land (num_orecs - 1) <> 0 || num_orecs <= 0 then
    invalid_arg "Orec.create: num_orecs must be a power of two";
  { mask = num_orecs - 1; words = Array.init num_orecs (fun _ -> Atomic.make 0) }

let index t id = id land t.mask
let get t i = Atomic.get t.words.(i)

let is_locked w = w land 1 = 1
let owner w = w lsr 1
let version w = w lsr 1
let locked_word ~tid = (tid lsl 1) lor 1
let version_word v = v lsl 1

let try_lock t ~tid i =
  let w = Atomic.get t.words.(i) in
  if is_locked w then None
  else if Atomic.compare_and_set t.words.(i) w (locked_word ~tid) then
    Some (version w)
  else None

let unlock_to t i ~version = Atomic.set t.words.(i) (version_word version)

let size t = t.mask + 1

let locked_count t =
  let n = ref 0 in
  Array.iter (fun w -> if is_locked (Atomic.get w) then incr n) t.words;
  !n
