(** First-class-module registry of every STM in the repository.

    Benchmarks and the functorized data-structure test-suites iterate this
    list to run one harness against all concurrency controls. *)

val twoplsf : (module Stm_intf.STM)

val all : (module Stm_intf.STM) list
(** 2PLSF plus every baseline, in the order the paper's figures list them,
    then the extensions (wound-wait, 2PLSF write-back).  {!Tictoc_stm} is
    deliberately *not* here: it is serializable but not opaque, so the
    opacity-assuming test batteries and benchmarks that iterate this list
    would (correctly) fail on it — its guarantees are exercised separately
    in [test/test_opacity.ml] and ablation A4. *)

val figure2 : (module Stm_intf.STM) list
(** The three 2PL variants of Figure 2: 2PL-RW, 2PL-RW-Dist, 2PLSF. *)

val main_set : (module Stm_intf.STM) list
(** The STMs plotted in Figures 3–8: TL2, TinySTM, TLRW-Z, OREC-Z, OFWF and
    2PLSF. *)

val find : string -> (module Stm_intf.STM)
(** Look an STM up by its [name]; raises [Not_found]. *)

val chaos_wrap : (module Stm_intf.STM) -> (module Stm_intf.STM)
(** Wrap an STM so every top-level [atomic] body passes through the
    chaos layer's [Txn_body] site: bounded delays/yields/stalls, plus
    injected [Twoplsf_chaos.Chaos.Injected_fault] exceptions that exercise
    the protocol's exception-escape cleanup path.  Free when chaos is
    disabled (one load and a predicted branch, then straight into the
    underlying [atomic]). *)
