let name = "OREC-Z"

module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission

exception Restart

open Tvar (* brings the { id; v } field labels into scope *)

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

type tx = {
  tid : int;
  mutable rv : int;
  rset : (int * int) Util.Vec.t; (* (orec index, observed version) *)
  wset : Wset.t;
  acquired : (int * int) Util.Vec.t;
  mutable ro : bool;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  mutable escalated : bool; (* overload fallback: Cm.Fallback mutex held *)
  ov : Cm.state;
}

let requested_num_orecs = ref 65536
let built = ref false

let orecs =
  Util.Once.create (fun () ->
      built := true;
      Orec.create ~num_orecs:!requested_num_orecs)

let configure ?(num_orecs = 65536) () =
  if !built then failwith "Orec_lazy.configure: orec table already built";
  requested_num_orecs := num_orecs

let clock = Atomic.make 0
let stats = Stm_intf.Stats.create ()

let tx_key =
  Domain.DLS.new_key (fun () ->
      {
        tid = Util.Tid.get ();
        rv = 0;
        rset = Util.Vec.create ~dummy:(-1, -1) ();
        wset = Wset.create ();
        acquired = Util.Vec.create ~dummy:(-1, -1) ();
        ro = false;
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        escalated = false;
        ov = Cm.make_state ();
      })

let get_tx () = Domain.DLS.get tx_key

let acquired_old_version tx oi =
  let n = Util.Vec.length tx.acquired in
  let rec go i =
    if i >= n then None
    else
      let oj, old_version = Util.Vec.get tx.acquired i in
      if oj = oi then Some old_version else go (i + 1)
  in
  go 0

let validate tx ~allow_mine =
  let o = Util.Once.get orecs in
  let ok = ref true in
  (try
     Util.Vec.iter
       (fun (oi, observed) ->
         let w = Orec.get o oi in
         if Orec.is_locked w then begin
           if not (allow_mine && Orec.owner w = tx.tid) then raise Exit;
           (* Self-locked at commit: valid only if we locked it at exactly
              the version this read observed. *)
           match acquired_old_version tx oi with
           | Some old_version when old_version = observed -> ()
           | Some _ | None -> raise Exit
         end
         else if Orec.version w <> observed then raise Exit)
       tx.rset
   with Exit -> ok := false);
  !ok

let extend tx =
  let now = Atomic.get clock in
  if validate tx ~allow_mine:false then begin
    tx.rv <- now;
    true
  end
  else false

(* On version overflow: extend the snapshot, then RE-EXECUTE the load.
   The tvar may have been committed to between our value fetch and the
   extension; the extension moves [rv] past that commit, so returning the
   already-fetched value would pair a stale value with an extended
   snapshot (a lost update once commit skips validation on
   [wv = rv + 1]). *)
let rec read_orec tx (tv : 'a tvar) : 'a =
  let o = Util.Once.get orecs in
  let oi = Orec.index o tv.id in
  let pre = Orec.get o oi in
  if Orec.is_locked pre then raise Restart;
  let v = tv.v in
  if Orec.get o oi <> pre then raise Restart;
  let ver = Orec.version pre in
  if ver > tx.rv then
    if extend tx then read_orec tx tv else raise Restart
  else begin
    (* Logged even in read-only mode: extension must revalidate every
       prior read to keep the snapshot opaque. *)
    Util.Vec.push tx.rset (oi, ver);
    v
  end

let read tx (tv : 'a tvar) : 'a =
  if not tx.ro then
    match Wset.find tx.wset tv with
    | Some v -> v
    | None -> read_orec tx tv
  else read_orec tx tv

let write tx tv nv =
  if tx.ro then invalid_arg "Orec_lazy.write inside a read-only transaction";
  Wset.add tx.wset tv nv

let release_acquired_old tx =
  let o = Util.Once.get orecs in
  Util.Vec.iter_rev
    (fun (oi, old_version) -> Orec.unlock_to o oi ~version:old_version)
    tx.acquired

let lock_write_set tx =
  let o = Util.Once.get orecs in
  let ok = ref true in
  (try
     Wset.iter_ids tx.wset (fun id ->
         let oi = Orec.index o id in
         let w = Orec.get o oi in
         if Orec.is_locked w && Orec.owner w = tx.tid then ()
         else
           match Orec.try_lock o ~tid:tx.tid oi with
           | Some old_version -> Util.Vec.push tx.acquired (oi, old_version)
           | None -> raise Exit)
   with Exit -> ok := false);
  !ok

let commit tx =
  if Wset.is_empty tx.wset then ()
  else begin
    if not (lock_write_set tx) then begin
      release_acquired_old tx;
      raise Restart
    end;
    if not (validate tx ~allow_mine:true) then begin
      release_acquired_old tx;
      raise Restart
    end;
    let wv = 1 + Atomic.fetch_and_add clock 1 in
    Stm_intf.Stats.clock_op stats ~tid:tx.tid;
    Wset.apply tx.wset;
    let o = Util.Once.get orecs in
    Util.Vec.iter (fun (oi, _) -> Orec.unlock_to o oi ~version:wv) tx.acquired
  end

let begin_attempt tx ~ro =
  Util.Vec.clear tx.rset;
  Wset.clear tx.wset;
  Util.Vec.clear tx.acquired;
  tx.ro <- ro;
  tx.rv <- Atomic.get clock

let finish_escalation tx =
  if tx.escalated then begin
    tx.escalated <- false;
    Cm.Fallback.release ()
  end

let run tx read_only f =
  tx.restarts <- 0;
  ignore (Cm.begin_txn tx.ov);
  let rec attempt n =
    begin_attempt tx ~ro:read_only;
    tx.depth <- 1;
    match
      let v = f tx in
      commit tx;
      v
    with
    | v ->
        tx.depth <- 0;
        finish_escalation tx;
        Stm_intf.Stats.commit stats ~tid:tx.tid;
        tx.finished_restarts <- tx.restarts;
        v
    | exception Restart ->
        tx.depth <- 0;
        Stm_intf.Stats.abort stats ~tid:tx.tid;
        tx.restarts <- tx.restarts + 1;
        if tx.escalated then begin
          Util.Backoff.exponential ~attempt:n;
          attempt (n + 1)
        end
        else begin
          match
            Cm.after_abort ~stm:name ~tid:tx.tid ~restarts:tx.restarts
              ~st:tx.ov
              ~native_wait:(fun () -> Util.Backoff.exponential ~attempt:n)
              ~cleanup:(fun () -> ())
              ~reasons:(fun () -> [])
          with
          | Cm.Retry -> attempt (n + 1)
          | Cm.Escalate ->
              Cm.Fallback.acquire ();
              tx.escalated <- true;
              attempt (n + 1)
        end
    | exception e ->
        tx.depth <- 0;
        (* Lazy locking: the body holds no locks, but an exception
           escaping mid-commit may — release them to their pre-lock
           versions before propagating. *)
        release_acquired_old tx;
        finish_escalation tx;
        raise e
  in
  attempt 1

let atomic ?(read_only = false) f =
  let tx = get_tx () in
  if tx.depth > 0 then f tx
  else Admission.guard (fun () -> run tx read_only f)

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = Stm_intf.Stats.clock_ops stats
let reset_stats () = Stm_intf.Stats.reset stats
let last_restarts () = (get_tx ()).finished_restarts
let leaked_locks () =
  if !built then Orec.locked_count (Util.Once.get orecs) else 0
