(** TLRW-Z [Dice & Shavit, SPAA 2010; Zardoshti et al., PACT 2019]:
    no-wait 2PL over the byte-level reader-counter lock
    ({!Rwlock.Rwl_counter}).  One of the three {!Nowait_2pl} instances of
    Figure 2; isolates what the read-indicator representation costs
    relative to 2PL-RW / 2PL-RW-Dist under identical conflict handling. *)

include Stm_intf.STM

val configure : ?num_locks:int -> unit -> unit
(** Size this STM's lock table (power of two, default 65536); must precede
    the first transaction. *)
