open Tvar (* brings the { id; v } field labels into scope *)

let name = "2PL-WoundWait"

module Obs = Twoplsf_obs
module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission
module Chaos = Twoplsf_chaos.Chaos

exception Restart

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

type ctx = {
  tid : int;
  mutable my_ts : int;
  mutable deadline_ns : int; (* absolute; 0 = none (DESIGN.md §11) *)
  mutable deadline_hit : bool;
  mutable o_tid : int; (* who wounded us (or last held the lock), or -1 *)
  mutable o_lock : int; (* lock the failed acquisition was on, or -1 *)
}

let deadline_blown ctx =
  ctx.deadline_ns <> 0 && Obs.Telemetry.now_ns () > ctx.deadline_ns

type tx = {
  ctx : ctx;
  rset : int Util.Vec.t;
  wlocks : int Util.Vec.t;
  undo : Wset.t;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  mutable escalated : bool; (* overload fallback: Cm.Fallback mutex held *)
  ov : Cm.state;
  mutable abort_reason : Obs.Events.abort_reason;
}

type table = {
  mask : int;
  wlocks : int Atomic.t array; (* 0 = free, tid+1 = writer *)
  ri : Rwlock.Read_indicator.t;
  announce : int Atomic.t array; (* per-txn timestamps; 0 = idle *)
  wounded : int Atomic.t array;
      (* 0 = not wounded, wounder tid + 1 otherwise: the provenance edge
         "who wounded whom" that plain wound-wait never records *)
  clock : int Atomic.t;
}

let requested_num_locks = ref 65536
let built = ref false

let table =
  Util.Once.create (fun () ->
      built := true;
      let num_locks = !requested_num_locks in
      if num_locks land (num_locks - 1) <> 0 || num_locks < 32 then
        invalid_arg "Wound_wait: num_locks must be a power of two >= 32";
      {
        mask = num_locks - 1;
        wlocks = Array.init num_locks (fun _ -> Atomic.make 0);
        ri = Rwlock.Read_indicator.create ~num_locks;
        announce = Array.init Util.Tid.max_threads (fun _ -> Atomic.make 0);
        wounded = Array.init Util.Tid.max_threads (fun _ -> Atomic.make 0);
        clock = Atomic.make 1;
      })

let configure ?(num_locks = 65536) () =
  if !built then failwith "Wound_wait.configure: lock table already built";
  requested_num_locks := num_locks

let stats = Stm_intf.Stats.create ()
let obs = Obs.Scope.create name

let tx_key =
  Domain.DLS.new_key (fun () ->
      {
        ctx =
          {
            tid = Util.Tid.get ();
            my_ts = 0;
            deadline_ns = 0;
            deadline_hit = false;
            o_tid = -1;
            o_lock = -1;
          };
        rset = Util.Vec.create ~dummy:(-1) ();
        wlocks = Util.Vec.create ~dummy:(-1) ();
        undo = Wset.create ();
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        escalated = false;
        ov = Cm.make_state ();
        abort_reason = Obs.Events.User_restart;
      })

let get_tx () = Domain.DLS.get tx_key

let ts_of t tid =
  let v = Atomic.get t.announce.(tid) in
  if v = 0 then max_int else v

let wound t ~by victim = Atomic.set t.wounded.(victim) (by + 1)

(* On a wound, remember the wounder: it is the aborter side of the
   provenance edge the restart arm records. *)
let am_wounded t ctx =
  let by = Atomic.get t.wounded.(ctx.tid) in
  if by <> 0 then begin
    ctx.o_tid <- by - 1;
    true
  end
  else false

(* Older (lower-ts) requesters wound the conflicting owner(s) and wait;
   younger ones just wait.  A wounded transaction notices at its next
   acquisition attempt and restarts. *)
let acquire_read t ctx w =
  let telemetry = !Obs.Telemetry.on in
  let t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
  let b = Util.Backoff.create () in
  let spins = ref 0 in
  (* Waited (or failed) acquisitions feed the lock-wait telemetry and the
     per-lock conflict sketch; uncontended ones stay off the slow path. *)
  let finish acquired =
    if telemetry && (!spins > 0 || not acquired) then
      Obs.Scope.lock_wait obs ~lock:w ~tid:ctx.tid ~write:false ~t0_ns:t0
        ~spins:!spins ~acquired;
    acquired
  in
  let rec loop () =
    (* Sync point per wait iteration: under the cooperative scheduler
       this is the only way the parked lock holder (or our wounder) ever
       gets to run. *)
    if !Chaos.on then Chaos.point Chaos.Wound_check;
    if am_wounded t ctx then begin
      ctx.o_lock <- w;
      finish false
    end
    else if deadline_blown ctx then begin
      ctx.deadline_hit <- true;
      ctx.o_lock <- w;
      finish false
    end
    else begin
      Rwlock.Read_indicator.arrive t.ri ~tid:ctx.tid w;
      let ws = Atomic.get t.wlocks.(w) in
      if ws = 0 || ws = ctx.tid + 1 then finish true
      else begin
        (* Conflicting writer: back off the indicator so the writer can
           finish, wound it if we are older, and retry. *)
        Rwlock.Read_indicator.depart t.ri ~tid:ctx.tid w;
        let holder = ws - 1 in
        ctx.o_tid <- holder;
        ctx.o_lock <- w;
        if ctx.my_ts < ts_of t holder then wound t ~by:ctx.tid holder;
        incr spins;
        Util.Backoff.once b;
        loop ()
      end
    end
  in
  loop ()

let acquire_write t ctx w =
  let me = ctx.tid + 1 in
  if Atomic.get t.wlocks.(w) = me then true
  else begin
    let telemetry = !Obs.Telemetry.on in
    let t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
    let b = Util.Backoff.create () in
    let spins = ref 0 in
    let finish acquired =
      if telemetry && (!spins > 0 || not acquired) then
        Obs.Scope.lock_wait obs ~lock:w ~tid:ctx.tid ~write:true ~t0_ns:t0
          ~spins:!spins ~acquired;
      acquired
    in
    let rec loop () =
      if !Chaos.on then Chaos.point Chaos.Wound_check;
      if am_wounded t ctx then begin
        if Atomic.get t.wlocks.(w) = me then Atomic.set t.wlocks.(w) 0;
        ctx.o_lock <- w;
        finish false
      end
      else if deadline_blown ctx then begin
        if Atomic.get t.wlocks.(w) = me then Atomic.set t.wlocks.(w) 0;
        ctx.deadline_hit <- true;
        ctx.o_lock <- w;
        finish false
      end
      else begin
        (if Atomic.get t.wlocks.(w) = 0 then
           ignore (Atomic.compare_and_set t.wlocks.(w) 0 me));
        let ws = Atomic.get t.wlocks.(w) in
        if ws = me then begin
          if Rwlock.Read_indicator.is_empty t.ri ~self:ctx.tid w then
            finish true
          else begin
            (* Wound younger readers; they depart when they notice. *)
            Rwlock.Read_indicator.iter_readers t.ri ~self:ctx.tid w
              (fun reader ->
                if ctx.my_ts < ts_of t reader then wound t ~by:ctx.tid reader);
            incr spins;
            Util.Backoff.once b;
            loop ()
          end
        end
        else begin
          let holder = ws - 1 in
          ctx.o_tid <- holder;
          ctx.o_lock <- w;
          if ctx.my_ts < ts_of t holder then wound t ~by:ctx.tid holder;
          incr spins;
          Util.Backoff.once b;
          loop ()
        end
      end
    in
    loop ()
  end

let read tx (tv : 'a tvar) : 'a =
  let t = Util.Once.get table in
  let w = tv.id land t.mask in
  if
    Rwlock.Read_indicator.holds t.ri ~tid:tx.ctx.tid w
    || Atomic.get t.wlocks.(w) = tx.ctx.tid + 1
  then tv.v (* re-read under a lock we already hold *)
  else if acquire_read t tx.ctx w then begin
    Util.Vec.push tx.rset w;
    tv.v
  end
  else begin
    tx.abort_reason <-
      (if tx.ctx.deadline_hit then Obs.Events.Deadline
       else Obs.Events.Priority_preemption);
    raise Restart
  end

let write tx tv nv =
  let t = Util.Once.get table in
  let w = tv.id land t.mask in
  let held = Atomic.get t.wlocks.(w) = tx.ctx.tid + 1 in
  if held || acquire_write t tx.ctx w then begin
    if not held then Util.Vec.push tx.wlocks w;
    Wset.log_old_once tx.undo tv tv.v;
    tv.v <- nv
  end
  else begin
    tx.abort_reason <-
      (if tx.ctx.deadline_hit then Obs.Events.Deadline
       else Obs.Events.Priority_preemption);
    raise Restart
  end

let release t tx =
  Util.Vec.iter
    (fun w -> if Atomic.get t.wlocks.(w) = tx.ctx.tid + 1 then Atomic.set t.wlocks.(w) 0)
    tx.wlocks;
  Util.Vec.iter
    (fun w -> Rwlock.Read_indicator.depart t.ri ~tid:tx.ctx.tid w)
    tx.rset

let rollback t tx =
  Wset.rollback tx.undo;
  release t tx

let begin_attempt t tx =
  Util.Vec.clear tx.rset;
  Util.Vec.clear tx.wlocks;
  Wset.clear tx.undo;
  Atomic.set t.wounded.(tx.ctx.tid) 0;
  tx.ctx.o_tid <- -1;
  tx.ctx.o_lock <- -1;
  tx.abort_reason <- Obs.Events.User_restart;
  if tx.ctx.my_ts = 0 then begin
    tx.ctx.my_ts <- Atomic.fetch_and_add t.clock 1;
    Stm_intf.Stats.clock_op stats ~tid:tx.ctx.tid;
    Atomic.set t.announce.(tx.ctx.tid) tx.ctx.my_ts
  end

let finish t tx =
  tx.ctx.my_ts <- 0;
  Atomic.set t.announce.(tx.ctx.tid) 0;
  Atomic.set t.wounded.(tx.ctx.tid) 0

let finish_escalation tx =
  if tx.escalated then begin
    tx.escalated <- false;
    Cm.Fallback.release ()
  end

let run tx f =
  tx.restarts <- 0;
  tx.ctx.deadline_ns <- Cm.begin_txn tx.ov;
  tx.ctx.deadline_hit <- false;
  let t = Util.Once.get table in
  let telemetry = !Obs.Telemetry.on in
  let txn_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
  let rec attempt att_t0 =
    begin_attempt t tx;
    tx.depth <- 1;
    match f tx with
    | v ->
        tx.depth <- 0;
        (* A wound that arrives after the last acquisition is too late:
           the transaction has all its locks and commits (standard
           wound-wait: finished transactions are not aborted). *)
        let commit_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
        release t tx;
        finish t tx;
        finish_escalation tx;
        Stm_intf.Stats.commit stats ~tid:tx.ctx.tid;
        tx.finished_restarts <- tx.restarts;
        if telemetry then
          Obs.Scope.txn_commit obs ~tid:tx.ctx.tid ~txn_t0_ns:txn_t0
            ~att_t0_ns:att_t0 ~commit_t0_ns:commit_t0 ();
        v
    | exception Restart ->
        tx.depth <- 0;
        rollback t tx;
        tx.ctx.deadline_hit <- false;
        Stm_intf.Stats.abort stats ~tid:tx.ctx.tid;
        if telemetry then
          Obs.Scope.txn_abort obs ~aborter:tx.ctx.o_tid ~lock:tx.ctx.o_lock
            ~tid:tx.ctx.tid ~att_t0_ns:att_t0 tx.abort_reason;
        tx.restarts <- tx.restarts + 1;
        if tx.escalated then
          attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
        else begin
          match
            Cm.after_abort ~stm:name ~tid:tx.ctx.tid ~restarts:tx.restarts
              ~st:tx.ov
                (* Keep the timestamp on retry: the restarted transaction
                   ages toward oldest, which is the starvation-freedom
                   argument; wound-wait's native inter-attempt wait is
                   "none". *)
              ~native_wait:(fun () -> ())
                (* Retire the timestamp before bailing out so younger
                   transactions stop wounding themselves against it. *)
              ~cleanup:(fun () -> finish t tx)
              ~reasons:(fun () ->
                if telemetry then Obs.Scope.abort_counts obs else [])
          with
          | Cm.Retry ->
              tx.ctx.deadline_ns <- tx.ov.Cm.deadline;
              attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
          | Cm.Escalate ->
              Cm.Fallback.acquire ();
              tx.escalated <- true;
              tx.ctx.deadline_ns <- 0;
              if telemetry then
                Obs.Scope.event obs ~tid:tx.ctx.tid
                  Obs.Events.Irrevocable_fallback;
              attempt (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
    | exception e ->
        tx.depth <- 0;
        rollback t tx;
        finish t tx;
        finish_escalation tx;
        raise e
  in
  attempt txn_t0

let atomic ?read_only f =
  ignore read_only;
  let tx = get_tx () in
  if tx.depth > 0 then f tx else Admission.guard (fun () -> run tx f)

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = Stm_intf.Stats.clock_ops stats
let reset_stats () =
  Stm_intf.Stats.reset stats;
  Obs.Scope.reset obs
let last_restarts () = (get_tx ()).finished_restarts

let leaked_locks () =
  if not !built then 0
  else begin
    let t = Util.Once.get table in
    let n = ref 0 in
    for w = 0 to t.mask do
      if Atomic.get t.wlocks.(w) <> 0 then incr n;
      if not (Rwlock.Read_indicator.is_empty t.ri ~self:(-1) w) then incr n
    done;
    !n
  end
