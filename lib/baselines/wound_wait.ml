open Tvar (* brings the { id; v } field labels into scope *)

let name = "2PL-WoundWait"

module Obs = Twoplsf_obs
module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission

exception Restart

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

type ctx = {
  tid : int;
  mutable my_ts : int;
  mutable deadline_ns : int; (* absolute; 0 = none (DESIGN.md §11) *)
  mutable deadline_hit : bool;
}

let deadline_blown ctx =
  ctx.deadline_ns <> 0 && Obs.Telemetry.now_ns () > ctx.deadline_ns

type tx = {
  ctx : ctx;
  rset : int Util.Vec.t;
  wlocks : int Util.Vec.t;
  undo : Wset.t;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  mutable escalated : bool; (* overload fallback: Cm.Fallback mutex held *)
  ov : Cm.state;
}

type table = {
  mask : int;
  wlocks : int Atomic.t array; (* 0 = free, tid+1 = writer *)
  ri : Rwlock.Read_indicator.t;
  announce : int Atomic.t array; (* per-txn timestamps; 0 = idle *)
  wounded : bool Atomic.t array;
  clock : int Atomic.t;
}

let requested_num_locks = ref 65536
let built = ref false

let table =
  Util.Once.create (fun () ->
      built := true;
      let num_locks = !requested_num_locks in
      if num_locks land (num_locks - 1) <> 0 || num_locks < 32 then
        invalid_arg "Wound_wait: num_locks must be a power of two >= 32";
      {
        mask = num_locks - 1;
        wlocks = Array.init num_locks (fun _ -> Atomic.make 0);
        ri = Rwlock.Read_indicator.create ~num_locks;
        announce = Array.init Util.Tid.max_threads (fun _ -> Atomic.make 0);
        wounded = Array.init Util.Tid.max_threads (fun _ -> Atomic.make false);
        clock = Atomic.make 1;
      })

let configure ?(num_locks = 65536) () =
  if !built then failwith "Wound_wait.configure: lock table already built";
  requested_num_locks := num_locks

let stats = Stm_intf.Stats.create ()

let tx_key =
  Domain.DLS.new_key (fun () ->
      {
        ctx =
          {
            tid = Util.Tid.get ();
            my_ts = 0;
            deadline_ns = 0;
            deadline_hit = false;
          };
        rset = Util.Vec.create ~dummy:(-1) ();
        wlocks = Util.Vec.create ~dummy:(-1) ();
        undo = Wset.create ();
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        escalated = false;
        ov = Cm.make_state ();
      })

let get_tx () = Domain.DLS.get tx_key

let ts_of t tid =
  let v = Atomic.get t.announce.(tid) in
  if v = 0 then max_int else v

let wound t victim = Atomic.set t.wounded.(victim) true
let am_wounded t ctx = Atomic.get t.wounded.(ctx.tid)

(* Older (lower-ts) requesters wound the conflicting owner(s) and wait;
   younger ones just wait.  A wounded transaction notices at its next
   acquisition attempt and restarts. *)
let acquire_read t ctx w =
  begin
    let b = Util.Backoff.create () in
    let rec loop () =
      if am_wounded t ctx then false
      else if deadline_blown ctx then begin
        ctx.deadline_hit <- true;
        false
      end
      else begin
        Rwlock.Read_indicator.arrive t.ri ~tid:ctx.tid w;
        let ws = Atomic.get t.wlocks.(w) in
        if ws = 0 || ws = ctx.tid + 1 then true
        else begin
          (* Conflicting writer: back off the indicator so the writer can
             finish, wound it if we are older, and retry. *)
          Rwlock.Read_indicator.depart t.ri ~tid:ctx.tid w;
          let holder = ws - 1 in
          if ctx.my_ts < ts_of t holder then wound t holder;
          Util.Backoff.once b;
          loop ()
        end
      end
    in
    loop ()
  end

let acquire_write t ctx w =
  let me = ctx.tid + 1 in
  if Atomic.get t.wlocks.(w) = me then true
  else begin
    let b = Util.Backoff.create () in
    let rec loop () =
      if am_wounded t ctx then begin
        if Atomic.get t.wlocks.(w) = me then Atomic.set t.wlocks.(w) 0;
        false
      end
      else if deadline_blown ctx then begin
        if Atomic.get t.wlocks.(w) = me then Atomic.set t.wlocks.(w) 0;
        ctx.deadline_hit <- true;
        false
      end
      else begin
        (if Atomic.get t.wlocks.(w) = 0 then
           ignore (Atomic.compare_and_set t.wlocks.(w) 0 me));
        let ws = Atomic.get t.wlocks.(w) in
        if ws = me then begin
          if Rwlock.Read_indicator.is_empty t.ri ~self:ctx.tid w then true
          else begin
            (* Wound younger readers; they depart when they notice. *)
            Rwlock.Read_indicator.iter_readers t.ri ~self:ctx.tid w
              (fun reader ->
                if ctx.my_ts < ts_of t reader then wound t reader);
            Util.Backoff.once b;
            loop ()
          end
        end
        else begin
          let holder = ws - 1 in
          if ctx.my_ts < ts_of t holder then wound t holder;
          Util.Backoff.once b;
          loop ()
        end
      end
    in
    loop ()
  end

let read tx (tv : 'a tvar) : 'a =
  let t = Util.Once.get table in
  let w = tv.id land t.mask in
  if
    Rwlock.Read_indicator.holds t.ri ~tid:tx.ctx.tid w
    || Atomic.get t.wlocks.(w) = tx.ctx.tid + 1
  then tv.v (* re-read under a lock we already hold *)
  else if acquire_read t tx.ctx w then begin
    Util.Vec.push tx.rset w;
    tv.v
  end
  else raise Restart

let write tx tv nv =
  let t = Util.Once.get table in
  let w = tv.id land t.mask in
  let held = Atomic.get t.wlocks.(w) = tx.ctx.tid + 1 in
  if held || acquire_write t tx.ctx w then begin
    if not held then Util.Vec.push tx.wlocks w;
    Wset.log_old_once tx.undo tv tv.v;
    tv.v <- nv
  end
  else raise Restart

let release t tx =
  Util.Vec.iter
    (fun w -> if Atomic.get t.wlocks.(w) = tx.ctx.tid + 1 then Atomic.set t.wlocks.(w) 0)
    tx.wlocks;
  Util.Vec.iter
    (fun w -> Rwlock.Read_indicator.depart t.ri ~tid:tx.ctx.tid w)
    tx.rset

let rollback t tx =
  Wset.rollback tx.undo;
  release t tx

let begin_attempt t tx =
  Util.Vec.clear tx.rset;
  Util.Vec.clear tx.wlocks;
  Wset.clear tx.undo;
  Atomic.set t.wounded.(tx.ctx.tid) false;
  if tx.ctx.my_ts = 0 then begin
    tx.ctx.my_ts <- Atomic.fetch_and_add t.clock 1;
    Stm_intf.Stats.clock_op stats ~tid:tx.ctx.tid;
    Atomic.set t.announce.(tx.ctx.tid) tx.ctx.my_ts
  end

let finish t tx =
  tx.ctx.my_ts <- 0;
  Atomic.set t.announce.(tx.ctx.tid) 0;
  Atomic.set t.wounded.(tx.ctx.tid) false

let finish_escalation tx =
  if tx.escalated then begin
    tx.escalated <- false;
    Cm.Fallback.release ()
  end

let run tx f =
  tx.restarts <- 0;
  tx.ctx.deadline_ns <- Cm.begin_txn tx.ov;
  tx.ctx.deadline_hit <- false;
  let t = Util.Once.get table in
  let rec attempt () =
    begin_attempt t tx;
    tx.depth <- 1;
    match f tx with
    | v ->
        tx.depth <- 0;
        (* A wound that arrives after the last acquisition is too late:
           the transaction has all its locks and commits (standard
           wound-wait: finished transactions are not aborted). *)
        release t tx;
        finish t tx;
        finish_escalation tx;
        Stm_intf.Stats.commit stats ~tid:tx.ctx.tid;
        tx.finished_restarts <- tx.restarts;
        v
    | exception Restart ->
        tx.depth <- 0;
        rollback t tx;
        tx.ctx.deadline_hit <- false;
        Stm_intf.Stats.abort stats ~tid:tx.ctx.tid;
        tx.restarts <- tx.restarts + 1;
        if tx.escalated then attempt ()
        else begin
          match
            Cm.after_abort ~stm:name ~tid:tx.ctx.tid ~restarts:tx.restarts
              ~st:tx.ov
                (* Keep the timestamp on retry: the restarted transaction
                   ages toward oldest, which is the starvation-freedom
                   argument; wound-wait's native inter-attempt wait is
                   "none". *)
              ~native_wait:(fun () -> ())
                (* Retire the timestamp before bailing out so younger
                   transactions stop wounding themselves against it. *)
              ~cleanup:(fun () -> finish t tx)
              ~reasons:(fun () -> [])
          with
          | Cm.Retry ->
              tx.ctx.deadline_ns <- tx.ov.Cm.deadline;
              attempt ()
          | Cm.Escalate ->
              Cm.Fallback.acquire ();
              tx.escalated <- true;
              tx.ctx.deadline_ns <- 0;
              attempt ()
        end
    | exception e ->
        tx.depth <- 0;
        rollback t tx;
        finish t tx;
        finish_escalation tx;
        raise e
  in
  attempt ()

let atomic ?read_only f =
  ignore read_only;
  let tx = get_tx () in
  if tx.depth > 0 then f tx else Admission.guard (fun () -> run tx f)

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = Stm_intf.Stats.clock_ops stats
let reset_stats () = Stm_intf.Stats.reset stats
let last_restarts () = (get_tx ()).finished_restarts

let leaked_locks () =
  if not !built then 0
  else begin
    let t = Util.Once.get table in
    let n = ref 0 in
    for w = 0 to t.mask do
      if Atomic.get t.wlocks.(w) <> 0 then incr n;
      if not (Rwlock.Read_indicator.is_empty t.ri ~self:(-1) w) then incr n
    done;
    !n
  end
