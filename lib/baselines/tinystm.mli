(** TinySTM / LSA [Felber, Fetzer, Riegel, PPoPP 2008; TPDS 2010].

    Time-based STM with encounter-time locking: writes acquire the orec
    immediately and go through a write-through undo log; reads are
    optimistic and carry per-entry observed versions so the snapshot can be
    *extended* (revalidated against a newer clock value) instead of
    aborting when a version newer than the read version is met — the LSA
    mechanism that makes TinySTM the strongest optimistic contender in the
    paper's read-mostly workloads (Figures 5–7). *)

include Stm_intf.STM

val configure : ?num_orecs:int -> unit -> unit

(** {1 Reintroducible bugs}

    Each variant re-opens one of the latent races this STM shipped fixes
    for, so the deterministic-schedule regression corpus
    ([test/schedules/]) can prove the explorer still finds them.  With
    [set_bug None] (the default) the protocol is bit-identical to the
    fixed implementation. *)

type bug =
  | Extend_stale_read
      (** a successful snapshot extension returns the pre-extension value
          instead of re-executing the load — a lost update once commit
          skips validation on [wv = rv + 1] *)
  | Rollback_old_version
      (** rollback releases write locks at their pre-lock versions
          instead of a fresh clock value — the dirty-read ABA *)
  | Lock_toctou
      (** write skips the post-CAS pre-lock-version recheck AND
          validation accepts any self-locked orec — a commit sliding in
          between version check and lock CAS goes unnoticed *)

val bug_name : bug -> string
val bug_names : string list

val bug_of_string : string -> bug
(** @raise Invalid_argument on an unknown name. *)

val set_bug : bug option -> unit
(** Process-global; callers must reset to [None] after a run.  Only
    consulted on TinySTM's own slow paths — other STMs ignore it. *)
