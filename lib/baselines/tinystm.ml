let name = "TinySTM"

module Obs = Twoplsf_obs
module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission
module Chaos = Twoplsf_chaos.Chaos

exception Restart

(* Reintroducible bugs: each variant undoes one of the latent-race fixes
   this STM shipped with, so the schedule-exploration regression corpus
   (test/schedules/) can prove the scheduler still finds them.  The
   default ([None]) path is bit-identical to the fixed protocol. *)
type bug = Extend_stale_read | Rollback_old_version | Lock_toctou

let bug_name = function
  | Extend_stale_read -> "extend-stale-read"
  | Rollback_old_version -> "rollback-old-version"
  | Lock_toctou -> "lock-toctou"

let bug_names =
  List.map bug_name [ Extend_stale_read; Rollback_old_version; Lock_toctou ]

let bug_of_string s =
  match
    List.find_opt
      (fun b -> String.equal (bug_name b) s)
      [ Extend_stale_read; Rollback_old_version; Lock_toctou ]
  with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Tinystm.bug_of_string: %S (expected one of %s)" s
           (String.concat ", " bug_names))

let active_bug = ref None
let set_bug b = active_bug := b

open Tvar (* brings the { id; v } field labels into scope *)

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

type tx = {
  tid : int;
  mutable rv : int;
  rset : (int * int) Util.Vec.t; (* (orec index, observed version) *)
  undo : Wset.t;
  wlocks : (int * int) Util.Vec.t; (* (orec index, pre-lock version) *)
  mutable ro : bool;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  mutable escalated : bool; (* overload fallback: Cm.Fallback mutex held *)
  mutable abort_reason : Obs.Events.abort_reason;
  mutable c_orec : int; (* orec the in-flight abort is pinned on, or -1 *)
  mutable c_owner : int; (* its lock owner at detection time, or -1 *)
  ov : Cm.state;
}

let obs = Obs.Scope.create name

let requested_num_orecs = ref 65536
let built = ref false

let orecs =
  Util.Once.create (fun () ->
      built := true;
      Orec.create ~num_orecs:!requested_num_orecs)

let configure ?(num_orecs = 65536) () =
  if !built then failwith "Tinystm.configure: orec table already built";
  requested_num_orecs := num_orecs

let clock = Atomic.make 0
let stats = Stm_intf.Stats.create ()

let tx_key =
  Domain.DLS.new_key (fun () ->
      {
        tid = Util.Tid.get ();
        rv = 0;
        rset = Util.Vec.create ~dummy:(-1, -1) ();
        undo = Wset.create ();
        wlocks = Util.Vec.create ~dummy:(-1, -1) ();
        ro = false;
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        escalated = false;
        abort_reason = Obs.Events.User_restart;
        c_orec = -1;
        c_owner = -1;
        ov = Cm.make_state ();
      })

let get_tx () = Domain.DLS.get tx_key

(* Pin the in-flight abort on orec [oi] (conflict-cartography provenance):
   the aborter is the lock owner when [word] is locked. *)
let pin tx oi word =
  tx.c_orec <- oi;
  tx.c_owner <- (if Orec.is_locked word then Orec.owner word else -1)

let wlock_old_version tx oi =
  let n = Util.Vec.length tx.wlocks in
  let rec go i =
    if i >= n then None
    else
      let oj, old_version = Util.Vec.get tx.wlocks i in
      if oj = oi then Some old_version else go (i + 1)
  in
  go 0

(* A self-locked orec in the read set is valid only if we locked it at
   exactly the version the read observed: the lock hides the version
   word, and accepting it unconditionally would let a commit that slid
   in between the read and our lock acquisition go undetected. *)
let check_read o tx (oi, observed) =
  if !Chaos.on then Chaos.point Chaos.Validate;
  let w = Orec.get o oi in
  if Orec.is_locked w then begin
    if Orec.owner w <> tx.tid then begin
      pin tx oi w;
      raise Exit
    end;
    (* [Lock_toctou] drops the pre-lock-version comparison: any
       self-locked orec validates, hiding commits that slid in between
       the read and our own lock acquisition. *)
    if !active_bug <> Some Lock_toctou then
      match wlock_old_version tx oi with
      | Some old_version when old_version = observed -> ()
      | Some _ | None ->
          pin tx oi w;
          raise Exit
  end
  else if Orec.version w <> observed then begin
    pin tx oi w;
    raise Exit
  end

(* LSA snapshot extension: move [rv] forward to the current clock if every
   read is still valid at its observed version. *)
let extend tx =
  let o = Util.Once.get orecs in
  (* Window of interest: a commit can land between the caller's version
     check and the clock read below, and the extension then moves [rv]
     past it. *)
  if !Chaos.on then Chaos.point Chaos.Validate;
  let now = Atomic.get clock in
  let ok = ref true in
  (try Util.Vec.iter (check_read o tx) tx.rset with Exit -> ok := false);
  if !ok then tx.rv <- now;
  !ok

(* Stamp the abort reason at the raise site, like the other baselines. *)
let restart tx reason =
  tx.abort_reason <- reason;
  raise Restart

let rec read tx (tv : 'a tvar) : 'a =
  let o = Util.Once.get orecs in
  let oi = Orec.index o tv.id in
  let w = Orec.get o oi in
  (* Two sync points bracket the unlocked fast path: orec load -> value
     fetch (a writer can lock and install a dirty value here) and value
     fetch -> recheck (a writer can roll back here — the recheck only
     catches it because rollback releases at a fresh version). *)
  if !Chaos.on then Chaos.point Chaos.Orec_check;
  if Orec.is_locked w then begin
    if Orec.owner w = tx.tid then tv.v (* own encounter-time lock *)
    else begin
      pin tx oi w;
      restart tx Obs.Events.Read_validation
    end
  end
  else begin
    let v = tv.v in
    if !Chaos.on then Chaos.point Chaos.Orec_check;
    let w2 = Orec.get o oi in
    if w2 <> w then begin
      pin tx oi w2;
      restart tx Obs.Events.Read_validation
    end;
    let ver = Orec.version w in
    if ver > tx.rv then
      (* Snapshot extension, then RE-EXECUTE the load: the tvar may have
         been written between our value fetch and the extension, and the
         extension moves [rv] past that commit — returning the value
         fetched above would pair a stale value with an extended
         snapshot (a lost update once commit skips validation on
         [wv = rv + 1]).  [Extend_stale_read] reintroduces exactly that:
         it keeps the pre-extension value and logs it at its pre-extension
         version. *)
      if !active_bug = Some Extend_stale_read then begin
        if extend tx then begin
          Util.Vec.push tx.rset (oi, ver);
          v
        end
        else restart tx Obs.Events.Read_validation
      end
      else if extend tx then read tx tv
      else restart tx Obs.Events.Read_validation
    else begin
      (* Read-only transactions must log reads too: the snapshot extension
         above is only sound if it revalidates every prior read. *)
      Util.Vec.push tx.rset (oi, ver);
      v
    end
  end

let write tx tv nv =
  if tx.ro then invalid_arg "Tinystm.write inside a read-only transaction";
  let o = Util.Once.get orecs in
  let oi = Orec.index o tv.id in
  let w = Orec.get o oi in
  if Orec.is_locked w then begin
    if Orec.owner w <> tx.tid then begin
      pin tx oi w;
      restart tx Obs.Events.Write_lock_conflict
    end;
    Wset.log_old_once tx.undo tv tv.v;
    tv.v <- nv
  end
  else begin
    let ver = Orec.version w in
    if ver > tx.rv && not (extend tx) then
      restart tx Obs.Events.Read_validation;
    if !Chaos.on then Chaos.point Chaos.Orec_lock;
    match Orec.try_lock o ~tid:tx.tid oi with
    | None ->
        pin tx oi (Orec.get o oi);
        restart tx Obs.Events.Write_lock_conflict
    | Some old_version ->
        Util.Vec.push tx.wlocks (oi, old_version);
        (* The version may have advanced between the check above and the
           CAS: [old_version] is the authoritative pre-lock version.  If
           it passed [rv], revalidate the snapshot before trusting any
           earlier read of this orec (the push above lets a failed
           extension release the lock through the normal rollback).
           [Lock_toctou] skips this recheck, re-opening the TOCTOU the
           recheck closed — together with its [check_read] half, a commit
           between the version check and the CAS goes unnoticed. *)
        if
          !active_bug <> Some Lock_toctou
          && old_version > tx.rv
          && not (extend tx)
        then restart tx Obs.Events.Read_validation;
        Wset.log_old_once tx.undo tv tv.v;
        tv.v <- nv
  end

let validate_read_set tx =
  let o = Util.Once.get orecs in
  let ok = ref true in
  (try Util.Vec.iter (check_read o tx) tx.rset with Exit -> ok := false);
  !ok

let release_wlocks_to tx version =
  let o = Util.Once.get orecs in
  Util.Vec.iter (fun (oi, _) -> Orec.unlock_to o oi ~version) tx.wlocks

(* Roll back undo-logged values *before* releasing the encounter-time
   locks, then forget both logs so a later rollback is a no-op (another
   transaction may lock the released orecs immediately).

   The locks are released at a FRESH clock version, not the pre-lock one.
   Write-through rollback republishes the old values, and restoring the
   old version with them reopens the classic dirty-read ABA: a reader
   that fetched the in-flight value between its two lock-word loads
   would see an unchanged word and validate the dirty read.  Tagging the
   restored values with a new version makes the abort look like a
   committed no-op write, which every optimistic reader revalidates. *)
let rollback tx =
  (* Dirty values are still published here: a scheduling decision at this
     point lets a reader race the restore below. *)
  if !Chaos.on then Chaos.point Chaos.Mid_rollback;
  Wset.rollback tx.undo;
  if not (Util.Vec.is_empty tx.wlocks) then begin
    match !active_bug with
    | Some Rollback_old_version ->
        (* BUG variant: release at the pre-lock versions, making the
           abort invisible to a reader that fetched the in-flight value
           between its two lock-word loads (the dirty-read ABA the fresh
           version below closes). *)
        let o = Util.Once.get orecs in
        Util.Vec.iter
          (fun (oi, old_version) -> Orec.unlock_to o oi ~version:old_version)
          tx.wlocks
    | _ ->
        let wv = 1 + Atomic.fetch_and_add clock 1 in
        Stm_intf.Stats.clock_op stats ~tid:tx.tid;
        release_wlocks_to tx wv
  end;
  Wset.clear tx.undo;
  Util.Vec.clear tx.wlocks

let commit tx =
  if Util.Vec.is_empty tx.wlocks then ()
  else begin
    let wv = 1 + Atomic.fetch_and_add clock 1 in
    Stm_intf.Stats.clock_op stats ~tid:tx.tid;
    if wv <> tx.rv + 1 && not (validate_read_set tx) then begin
      rollback tx;
      tx.abort_reason <- Obs.Events.Commit_validation;
      raise Restart
    end;
    release_wlocks_to tx wv
  end

let begin_attempt tx ~ro =
  Util.Vec.clear tx.rset;
  Wset.clear tx.undo;
  Util.Vec.clear tx.wlocks;
  tx.ro <- ro;
  tx.abort_reason <- Obs.Events.User_restart;
  tx.c_orec <- -1;
  tx.c_owner <- -1;
  tx.rv <- Atomic.get clock

let finish_escalation tx =
  if tx.escalated then begin
    tx.escalated <- false;
    Cm.Fallback.release ()
  end

let run tx read_only f =
  tx.restarts <- 0;
  ignore (Cm.begin_txn tx.ov);
  let telemetry = !Obs.Telemetry.on in
  let txn_t0 = if telemetry then Obs.Telemetry.now_ns () else 0 in
  let commit_t0 = ref 0 in
  (* Native inter-attempt wait, attributed to [Backoff] under telemetry. *)
  let native_wait n () =
    if telemetry then begin
      let t0 = Obs.Telemetry.now_ns () in
      Util.Backoff.exponential ~attempt:n;
      Obs.Scope.phase_add obs ~tid:tx.tid Obs.Phase.Backoff
        (Obs.Telemetry.now_ns () - t0)
    end
    else Util.Backoff.exponential ~attempt:n
  in
  let rec attempt n att_t0 =
    begin_attempt tx ~ro:read_only;
    tx.depth <- 1;
    match
      let v = f tx in
      (* Commit-time validation and lock release count as [Commit]. *)
      if telemetry then commit_t0 := Obs.Telemetry.now_ns ();
      commit tx;
      v
    with
    | v ->
        tx.depth <- 0;
        finish_escalation tx;
        Stm_intf.Stats.commit stats ~tid:tx.tid;
        tx.finished_restarts <- tx.restarts;
        if telemetry then
          Obs.Scope.txn_commit obs ~tid:tx.tid ~txn_t0_ns:txn_t0
            ~att_t0_ns:att_t0 ~commit_t0_ns:!commit_t0 ();
        v
    | exception Restart ->
        tx.depth <- 0;
        rollback tx;
        Stm_intf.Stats.abort stats ~tid:tx.tid;
        if telemetry then
          Obs.Scope.txn_abort obs ~aborter:tx.c_owner ~lock:tx.c_orec
            ~tid:tx.tid ~att_t0_ns:att_t0 tx.abort_reason;
        tx.restarts <- tx.restarts + 1;
        if tx.escalated then begin
          native_wait n ();
          attempt (n + 1) (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
        else begin
          match
            Cm.after_abort ~stm:name ~tid:tx.tid ~restarts:tx.restarts
              ~st:tx.ov
              ~native_wait:(native_wait n)
              ~cleanup:(fun () -> ())
              ~reasons:(fun () ->
                if telemetry then Obs.Scope.abort_counts obs else [])
          with
          | Cm.Retry ->
              attempt (n + 1)
                (if telemetry then Obs.Telemetry.now_ns () else 0)
          | Cm.Escalate ->
              Cm.Fallback.acquire ();
              tx.escalated <- true;
              if telemetry then
                Obs.Scope.event obs ~tid:tx.tid Obs.Events.Irrevocable_fallback;
              attempt (n + 1)
                (if telemetry then Obs.Telemetry.now_ns () else 0)
        end
    | exception e ->
        tx.depth <- 0;
        rollback tx;
        finish_escalation tx;
        raise e
  in
  attempt 1 txn_t0

let atomic ?(read_only = false) f =
  let tx = get_tx () in
  if tx.depth > 0 then f tx
  else Admission.guard (fun () -> run tx read_only f)

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = Stm_intf.Stats.clock_ops stats
let reset_stats () =
  Stm_intf.Stats.reset stats;
  Obs.Scope.reset obs
let last_restarts () = (get_tx ()).finished_restarts
let leaked_locks () =
  if !built then Orec.locked_count (Util.Once.get orecs) else 0
