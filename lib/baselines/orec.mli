(** Ownership-record (versioned-lock) table shared by the optimistic
    baselines (TL2, TinySTM/LSA, OREC-lazy).

    Each orec word is either a version number (even encoding) or a lock
    holding the owner's thread id (odd encoding).  Tvar ids hash onto orecs
    exactly as data addresses hash onto locks in the paper. *)

type t

val create : num_orecs:int -> t
(** [num_orecs] must be a power of two. *)

val index : t -> int -> int
(** Orec index for a tvar id. *)

val get : t -> int -> int
(** Raw word; decode with the predicates below. *)

val is_locked : int -> bool
val owner : int -> int
(** Owner tid of a locked word (meaningless on unlocked words). *)

val version : int -> int
(** Version of an unlocked word (meaningless on locked words). *)

val try_lock : t -> tid:int -> int -> int option
(** CAS the orec from unlocked to locked-by-[tid]; [Some old_version] on
    success, [None] if it was (or became) locked. *)

val unlock_to : t -> int -> version:int -> unit
(** Store an unlocked word carrying [version]. *)

val size : t -> int
(** Number of orecs in the table. *)

val locked_count : t -> int
(** How many orecs are currently in the locked encoding — the post-run
    leak sweep of the chaos harness (racy; meaningful in quiescence). *)
