let name = "OFWF"

module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission

exception Restart

open Tvar (* brings the { id; v } field labels into scope *)

type 'a tvar = 'a Tvar.t

let tvar = Tvar.make

type mode = Writer | Reader of int (* sequence snapshot *)

type tx = {
  tid : int;
  mutable mode : mode;
  mutable depth : int;
  mutable restarts : int;
  mutable finished_restarts : int;
  ov : Cm.state;
  undo : Wset.t;
      (* writer-mode undo log: only consulted when the transaction body
         raises, so the batch can roll back before releasing the seqlock *)
}

let seq = Rwlock.Seqlock.create ()
let stats = Stm_intf.Stats.create ()

(* Each batch bumps the global sequence word twice; count it as one
   central-clock operation (the shared-counter traffic OneFile pays). *)
let combiner =
  Rwlock.Flat_combiner.create
    ~on_batch_start:(fun () ->
      Rwlock.Seqlock.write_lock seq;
      Stm_intf.Stats.clock_op stats ~tid:(Util.Tid.get ()))
    ~on_batch_end:(fun () -> Rwlock.Seqlock.write_unlock seq)
    ()

let tx_key =
  Domain.DLS.new_key (fun () ->
      {
        tid = Util.Tid.get ();
        mode = Writer;
        depth = 0;
        restarts = 0;
        finished_restarts = 0;
        ov = Cm.make_state ();
        undo = Wset.create ();
      })

let get_tx () = Domain.DLS.get tx_key

let read tx (tv : 'a tvar) : 'a =
  match tx.mode with
  | Writer -> tv.v (* executed by the combiner, under the sequence lock *)
  | Reader snapshot ->
      let v = tv.v in
      (* Per-read validation keeps the snapshot opaque: a reader never
         acts on values from two different writer batches. *)
      if not (Rwlock.Seqlock.read_validate seq snapshot) then raise Restart;
      v

let write tx tv nv =
  match tx.mode with
  | Writer ->
      Wset.log_old_once tx.undo tv tv.v;
      tv.v <- nv
  | Reader _ -> invalid_arg "Onefile.write inside a read-only transaction"

let run_writer tx f =
  tx.restarts <- 0;
  let v =
    Rwlock.Flat_combiner.execute combiner ~tid:tx.tid (fun () ->
        (* Runs in whichever thread combines; use that thread's
           descriptor so nested transactional calls flatten there. *)
        let inner = get_tx () in
        let saved_mode = inner.mode and saved_depth = inner.depth in
        inner.mode <- Writer;
        inner.depth <- inner.depth + 1;
        if saved_depth = 0 then Wset.clear inner.undo;
        let restore () =
          inner.mode <- saved_mode;
          inner.depth <- saved_depth
        in
        match f inner with
        | v ->
            restore ();
            v
        | exception e ->
            (* Still inside the seqlock write section: roll back this
               transaction's writes before the batch is published. *)
            if saved_depth = 0 then Wset.rollback inner.undo;
            restore ();
            raise e)
  in
  Stm_intf.Stats.commit stats ~tid:tx.tid;
  tx.finished_restarts <- 0;
  v

let run_ro tx f =
  tx.restarts <- 0;
  ignore (Cm.begin_txn tx.ov);
  let rec attempt n =
    let snapshot = Rwlock.Seqlock.read_begin seq in
    tx.mode <- Reader snapshot;
    tx.depth <- 1;
    (* Overload escalation: the writer path is flat-combined and cannot
       lose a validation race, so re-running the read-only body through
       the combiner is this STM's serial slow path (reads under the
       seqlock are trivially consistent; a read-only body performs no
       writes by contract). *)
    let on_abort k =
      Stm_intf.Stats.abort stats ~tid:tx.tid;
      tx.restarts <- tx.restarts + 1;
      match
        Cm.after_abort ~stm:name ~tid:tx.tid ~restarts:tx.restarts ~st:tx.ov
          ~native_wait:(fun () -> Util.Backoff.exponential ~attempt:n)
          ~cleanup:(fun () -> ())
          ~reasons:(fun () -> [])
      with
      | Cm.Retry -> k ()
      | Cm.Escalate -> run_writer tx f
    in
    match f tx with
    | v ->
        tx.depth <- 0;
        if Rwlock.Seqlock.read_validate seq snapshot then begin
          Stm_intf.Stats.commit stats ~tid:tx.tid;
          tx.finished_restarts <- tx.restarts;
          v
        end
        else on_abort (fun () -> attempt (n + 1))
    | exception Restart ->
        tx.depth <- 0;
        on_abort (fun () -> attempt (n + 1))
    | exception e ->
        tx.depth <- 0;
        raise e
  in
  attempt 1

let atomic ?(read_only = false) f =
  let tx = get_tx () in
  if tx.depth > 0 then f tx
  else if read_only then Admission.guard (fun () -> run_ro tx f)
  else Admission.guard (fun () -> run_writer tx f)

let commits () = Stm_intf.Stats.commits stats
let aborts () = Stm_intf.Stats.aborts stats
let clock_ops () = Stm_intf.Stats.clock_ops stats
let reset_stats () = Stm_intf.Stats.reset stats
let last_restarts () = (get_tx ()).finished_restarts

(* The only lock is the combiner's seqlock: leaked iff the sequence is odd
   (a writer batch began and never ended). *)
let leaked_locks () = Rwlock.Seqlock.sequence seq land 1
