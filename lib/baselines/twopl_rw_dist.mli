(** 2PL-RW-Dist (Figure 2): no-wait 2PL over the distributed
    read-indicator lock ({!Rwlock.Rwl_dist}).  One of the three
    {!Nowait_2pl} instances; shares 2PLSF's scalable read side but keeps
    no-wait conflict handling, isolating what starvation-free conflict
    resolution itself buys (§3.1). *)

include Stm_intf.STM

val configure : ?num_locks:int -> unit -> unit
(** Size this STM's lock table (power of two, default 65536); must precede
    the first transaction. *)
