(** Signature of a table of reader-writer locks with no-wait (trylock)
    acquisition.

    The 2PL no-wait family of Figure 2 — 2PL-RW, 2PL-RW-Dist, TLRW — is one
    STM algorithm parameterized by the lock implementation; this is the
    parameter's signature.  All locks identify threads by dense
    {!Util.Tid} ids so upgrades (read → write by the same thread) can be
    detected. *)

module type S = sig
  val name : string

  type t

  val create : num_locks:int -> t
  (** [num_locks] must be a power of two (lock index = id mask). *)

  val lock_index : t -> int -> int

  val try_read_lock : t -> tid:int -> int -> bool
  (** Acquire the read side of lock [w] or fail immediately.  Idempotent
      when already held by [tid] (read-after-read). *)

  val try_write_lock : t -> tid:int -> int -> bool
  (** Acquire the write side, upgrading [tid]'s read lock if it is the only
      reader.  Idempotent when the write side is already held by [tid]. *)

  val read_unlock : t -> tid:int -> int -> unit
  val write_unlock : t -> tid:int -> int -> unit
  val holds_read : t -> tid:int -> int -> bool
  val holds_write : t -> tid:int -> int -> bool
end
