(* Offline history checking (DESIGN.md §14.4).

   Under the cooperative scheduler exactly one worker runs between two
   scheduler decisions, and no STM in this repository has a sync point
   between its commit linearization (lock release / write-back install)
   and [atomic]'s return.  The scheduler step sampled right after
   [atomic] returns therefore orders commits faithfully per location:
   two installs of the same location are serialized by its lock, and the
   later install's end step is strictly larger.  Replaying writers in
   end order thus reconstructs the exact sequence of committed states.

   Read validation must be window-based, not strict: an optimistic STM
   (TL2/TinySTM/TicToc) may legally commit after another writer has
   overwritten one of its read-only locations — its serialization point
   is the validation step, which lies before its end step.  So:

   - a read of a location the transaction also writes must match the
     state at the transaction's end.  Every STM here holds that
     location's lock from read-validation to install, so nothing can
     legally intervene; a mismatch is precisely a lost update.
   - the full read set must match the committed state at some point in
     the transaction's real-time window [start, end].  A value that was
     never part of any committed state (a dirty read of a rolled-back
     write) matches no boundary and is flagged. *)

type txn = {
  slot : int;
  start : int;
  order : int;
  reads : (int * int) list;
  writes : (int * int) list;
  restarts : int;
}

type violation =
  | Stale_rmw of {
      txn : int;
      slot : int;
      loc : int;
      expected : int;
      observed : int;
    }
  | Inconsistent_snapshot of { txn : int; slot : int }
  | Restart_bound of { slot : int; restarts : int; bound : int }
  | Commit_gap of { gap : int; bound : int }

let explain = function
  | Stale_rmw { txn; slot; loc; expected; observed } ->
      Printf.sprintf
        "lost update: txn #%d (slot %d) wrote loc %d from a read of %d, but \
         the committed state at its commit point held %d"
        txn slot loc observed expected
  | Inconsistent_snapshot { txn; slot } ->
      Printf.sprintf
        "inconsistent snapshot: txn #%d (slot %d) read values that match no \
         committed state within its execution window (dirty or mixed-epoch \
         read)"
        txn slot
  | Restart_bound { slot; restarts; bound } ->
      Printf.sprintf
        "starvation bound: slot %d committed only after %d restarts (bound \
         %d) — the conflict-clock priority failed to make the oldest \
         transaction win"
        slot restarts bound
  | Commit_gap { gap; bound } ->
      Printf.sprintf
        "progress: %d consecutive scheduler decisions without a commit \
         (bound %d)"
        gap bound

let commit_order txns =
  List.sort
    (fun a b ->
      match compare a.order b.order with 0 -> compare a.slot b.slot | c -> c)
    txns

let check_serializable ~init txns =
  let state = Array.copy init in
  let in_range loc = loc >= 0 && loc < Array.length state in
  (* Committed boundary states, newest first: (step, snapshot).  A
     snapshot at step [w] is in effect on [w, next_w). *)
  let boundaries = ref [ (0, Array.copy init) ] in
  let matches snap reads =
    List.for_all (fun (loc, v) -> (not (in_range loc)) || snap.(loc) = v) reads
  in
  let rec go i = function
    | [] -> None
    | t :: rest -> (
        let writes_to loc = List.mem_assoc loc t.writes in
        let rmw_bad =
          List.find_opt
            (fun (loc, v) -> in_range loc && writes_to loc && state.(loc) <> v)
            t.reads
        in
        match rmw_bad with
        | Some (loc, v) ->
            Some
              (Stale_rmw
                 {
                   txn = i;
                   slot = t.slot;
                   loc;
                   expected = state.(loc);
                   observed = v;
                 })
        | None ->
            (* Candidate states: every boundary whose effect interval
               intersects [t.start, t.order].  Newest-first, so stop at
               the first boundary already in effect at t.start. *)
            let ok =
              let rec scan = function
                | [] -> false
                | (w, snap) :: older ->
                    if matches snap t.reads then true
                    else if w <= t.start then false
                    else scan older
              in
              scan !boundaries
            in
            if not ok then
              Some (Inconsistent_snapshot { txn = i; slot = t.slot })
            else begin
              if t.writes <> [] then begin
                List.iter
                  (fun (loc, v) -> if in_range loc then state.(loc) <- v)
                  t.writes;
                boundaries := (t.order, Array.copy state) :: !boundaries
              end;
              go (i + 1) rest
            end)
  in
  go 0 (commit_order txns)

(* The starvation-freedom clock condition, offline: with timestamps
   retained across restarts, a 2PLSF transaction loses only to
   already-announced lower-timestamp competitors, of which there are at
   most [threads - 1].  Only meaningful for the 2PLSF family under pure
   scheduling (no injected spurious failures). *)
let check_restart_bound ~bound txns =
  List.find_map
    (fun t ->
      if t.restarts > bound then
        Some (Restart_bound { slot = t.slot; restarts = t.restarts; bound })
      else None)
    txns

(* Offline analog of the watchdog's clock-advance condition: within a
   schedule-controlled run, long decision spans in which nothing commits
   indicate livelock.  [total] is the run's decision count. *)
let check_commit_gap ~bound ~total txns =
  let orders = List.map (fun t -> t.order) (commit_order txns) in
  let max_gap, last =
    List.fold_left (fun (mx, last) o -> (max mx (o - last), o)) (0, 0) orders
  in
  let max_gap = max max_gap (total - last) in
  if max_gap > bound then Some (Commit_gap { gap = max_gap; bound }) else None
