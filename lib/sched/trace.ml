module Json = Harness.Json

type scenario = {
  stm : string;
  threads : int;
  accounts : int;
  txns_per_thread : int;
  init_balance : int;
  abort_every : int;
  audit_every : int;
  wseed : int;
  bug : string option;
}

let default_scenario =
  {
    stm = "2PLSF";
    threads = 2;
    accounts = 4;
    txns_per_thread = 6;
    init_balance = 128;
    abort_every = 0;
    audit_every = 0;
    wseed = 1;
    bug = None;
  }

type t = {
  version : int;
  strategy : string;
  failure : string option;
  scenario : scenario;
  decisions : (int * int) array;
}

let version = 1

let scenario_to_json (s : scenario) : Json.t =
  Json.Obj
    [
      ("stm", Json.Str s.stm);
      ("threads", Json.Num (float_of_int s.threads));
      ("accounts", Json.Num (float_of_int s.accounts));
      ("txns_per_thread", Json.Num (float_of_int s.txns_per_thread));
      ("init_balance", Json.Num (float_of_int s.init_balance));
      ("abort_every", Json.Num (float_of_int s.abort_every));
      ("audit_every", Json.Num (float_of_int s.audit_every));
      ("wseed", Json.Num (float_of_int s.wseed));
      ("bug", match s.bug with None -> Json.Null | Some b -> Json.Str b);
    ]

let req what = function
  | Some v -> v
  | None -> failwith (Printf.sprintf "schedule trace: missing %s" what)

let scenario_of_json (j : Json.t) : scenario =
  let int_or d k = Option.value ~default:d (Json.int_field j k) in
  {
    stm = req "scenario.stm" (Json.str_field j "stm");
    threads = req "scenario.threads" (Json.int_field j "threads");
    accounts = req "scenario.accounts" (Json.int_field j "accounts");
    txns_per_thread =
      req "scenario.txns_per_thread" (Json.int_field j "txns_per_thread");
    init_balance = int_or default_scenario.init_balance "init_balance";
    abort_every = int_or 0 "abort_every";
    audit_every = int_or 0 "audit_every";
    wseed = int_or default_scenario.wseed "wseed";
    bug = Json.str_field j "bug";
  }

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("version", Json.Num (float_of_int t.version));
      ("strategy", Json.Str t.strategy);
      ("failure", match t.failure with None -> Json.Null | Some f -> Json.Str f);
      ("scenario", scenario_to_json t.scenario);
      ( "decisions",
        Json.Arr
          (Array.to_list t.decisions
          |> List.map (fun (slot, site) ->
                 Json.Arr
                   [
                     Json.Num (float_of_int slot); Json.Num (float_of_int site);
                   ])) );
    ]

let of_json (j : Json.t) : t =
  let v = req "version" (Json.int_field j "version") in
  if v <> version then
    failwith (Printf.sprintf "schedule trace: unsupported version %d" v);
  let decision = function
    | Json.Arr [ Json.Num slot; Json.Num site ] ->
        (int_of_float slot, int_of_float site)
    | _ -> failwith "schedule trace: malformed decision"
  in
  {
    version = v;
    strategy = Option.value ~default:"unknown" (Json.str_field j "strategy");
    failure = Json.str_field j "failure";
    scenario = scenario_of_json (req "scenario" (Json.mem j "scenario"));
    decisions =
      req "decisions" (Json.arr_field j "decisions")
      |> List.map decision |> Array.of_list;
  }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let load path = of_json (Json.parse_file path)
