(** Deterministic cooperative scheduler over chaos sync points
    (DESIGN.md §14.1–.2).

    Installed as the {!Twoplsf_chaos.Chaos.hook}, the scheduler
    serializes a cohort of worker domains: exactly one — the baton
    holder — runs at any time, and every chaos sync point is a
    potential context switch decided by a pluggable strategy.  Each
    decision is logged as [(slot, site-code)]; the resulting decision
    sequence {e is} the schedule, replayable via {!strategy.Fixed}.

    Lifecycle (driven by [Scenario.run]): {!setup} before spawning;
    each worker calls {!register} as its first act (it parks until the
    cohort is complete) and {!unregister} as its last (from a
    [Fun.protect] finalizer, so exceptional exits still hand the baton
    on); the coordinator joins all workers and calls {!finish}.

    Workers must park without spinning (the bench hosts are
    single-core), so parking uses one mutex and per-slot condition
    variables.  One cohort at a time: the scheduler is a process-global
    singleton, like the chaos layer it rides on. *)

type strategy =
  | Round_robin  (** deterministic rotation — the calibration baseline *)
  | Random_walk of { seed : int }
      (** uniform choice among runnable slots at every sync point *)
  | Pct of { seed : int; depth : int; horizon : int }
      (** probabilistic concurrency testing: random initial priorities,
          strict priority scheduling, and [depth] priority-change points
          sampled uniformly over the first [horizon] steps; finds any
          bug of depth [d <= depth] with known probability *)
  | Fixed of { decisions : (int * int) array }
      (** replay a recorded decision sequence; divergences are counted
          and tolerated, and an exhausted schedule falls back to
          round-robin so shrunk prefixes run to completion *)

type run_info = {
  decisions : (int * int) array;  (** the schedule actually taken *)
  steps : int;  (** total decisions made *)
  divergences : int;
      (** replay decisions that did not apply (absent slot or site
          mismatch); 0 for non-[Fixed] strategies *)
  budget_exhausted : bool;
      (** the step budget was hit; remaining workers were released to
          free-run and the tail of the run is not schedule-controlled *)
}

val register_code : int
(** Pseudo-site code of the cohort-complete (first) decision. *)

val exit_code : int
(** Pseudo-site code of a worker-exit decision. *)

val setup : ?max_steps:int -> threads:int -> strategy -> unit
(** Arm the scheduler for a cohort of [threads] workers and install the
    chaos hook.  Call from the coordinator before spawning; requires
    chaos to be enabled ([Chaos.enable ~config:Chaos.quiet ()] for pure
    scheduling).  [max_steps] (default 200_000) bounds the decision
    count; past it the cohort free-runs (see {!run_info}). *)

val register : slot:int -> unit
(** Join the cohort as worker [slot].  Parks the caller until every
    expected worker has registered and the strategy picks it to run.
    Workers must already hold a dense tid ([Util.Tid.register]). *)

val unregister : unit -> unit
(** Leave the cohort, handing the baton to the next pick.  Safe to call
    when not registered (no-op), so finalizers can call it
    unconditionally. *)

val finish : unit -> run_info
(** Uninstall the hook and return the run's schedule.  Call after every
    worker has been joined. *)

val step : unit -> int
(** The current decision count.  Read by the baton holder (e.g. right
    after a commit, as the commit-order proxy the checker sorts by);
    between two sync points no other worker runs, so the value is
    stable.  Advisory only after budget exhaustion. *)

val active : unit -> bool
(** True between {!setup} and {!finish} while the budget holds. *)
