(* The exploration driver: iterate seeded strategies over a scenario
   until a checker violation appears, then shrink and package the
   failing schedule as a Trace.t. *)

type kind = Round_robin | Random | Pct

let kind_to_string = function
  | Round_robin -> "round-robin"
  | Random -> "random"
  | Pct -> "pct"

let kind_of_string = function
  | "round-robin" | "rr" -> Round_robin
  | "random" -> Random
  | "pct" -> Pct
  | s -> invalid_arg (Printf.sprintf "unknown strategy %S" s)

type params = {
  scenario : Trace.scenario;
  kind : kind;
  iters : int;
  depth : int;
  seed : int;
  max_steps : int;
  do_shrink : bool;
  max_shrink_trials : int;
}

let default_params =
  {
    scenario = Trace.default_scenario;
    kind = Pct;
    iters = 200;
    depth = 3;
    seed = 1;
    max_steps = 20_000;
    do_shrink = true;
    max_shrink_trials = 300;
  }

type found = {
  iteration : int;
  strategy : string;
  failure : Scenario.failure;
  trace : Trace.t;
  original_len : int;
  shrink : Shrink.stats option;
}

type result = { found : found option; iterations : int; total_decisions : int }

let search ?(log = fun (_ : string) -> ()) (p : params) =
  let total = ref 0 in
  let found = ref None in
  let iterations = ref 0 in
  (* PCT change points are sampled over an expected schedule length;
     calibrate it from a round-robin probe rather than guessing. *)
  let horizon = ref 512 in
  (try
     for i = 0 to p.iters - 1 do
       let strat, label =
         match p.kind with
         | Round_robin -> (Sched.Round_robin, "round-robin")
         | Random ->
             let s = Util.Sprng.hash4 p.seed i 0xA11 1 in
             (Sched.Random_walk { seed = s }, Printf.sprintf "random iter=%d seed=%d" i p.seed)
         | Pct ->
             if i = 0 then (Sched.Round_robin, "round-robin probe")
             else
               let s = Util.Sprng.hash4 p.seed i 0x9C7 2 in
               ( Sched.Pct { seed = s; depth = p.depth; horizon = !horizon },
                 Printf.sprintf "pct iter=%d seed=%d depth=%d" i p.seed p.depth
               )
       in
       let o = Scenario.run ~strategy:strat ~max_steps:p.max_steps p.scenario in
       incr iterations;
       total := !total + o.Scenario.info.Sched.steps;
       if p.kind = Pct && i = 0 then
         horizon := max 64 o.Scenario.info.Sched.steps;
       match o.Scenario.failure with
       | None -> ()
       | Some failure ->
           log
             (Printf.sprintf "iter %d (%s): %s" i label
                (Scenario.failure_to_string failure));
           let decisions = o.Scenario.info.Sched.decisions in
           let fclass = Scenario.failure_class failure in
           let oracle d =
             match
               Scenario.run
                 ~strategy:(Sched.Fixed { decisions = d })
                 ~max_steps:p.max_steps p.scenario
             with
             | o2 -> (
                 match o2.Scenario.failure with
                 | Some f2 -> String.equal (Scenario.failure_class f2) fclass
                 | None -> false)
             | exception _ -> false
           in
           let shrunk, stats =
             if p.do_shrink then
               let d, s =
                 Shrink.shrink ~oracle ~max_trials:p.max_shrink_trials
                   decisions
               in
               (d, Some s)
             else (decisions, None)
           in
           let trace =
             {
               Trace.version = Trace.version;
               strategy = label;
               (* The class, not the rendered message: replays compare
                  failure classes, and messages embed run-specific
                  values (sums, txn ids). *)
               failure = Some fclass;
               scenario = p.scenario;
               decisions = shrunk;
             }
           in
           found :=
             Some
               {
                 iteration = i;
                 strategy = label;
                 failure;
                 trace;
                 original_len = Array.length decisions;
                 shrink = stats;
               };
           raise Exit
     done
   with Exit -> ());
  { found = !found; iterations = !iterations; total_decisions = !total }
