(* Schedule shrinking (DESIGN.md §14.3): prefix bisection, then
   ddmin-style span removal.  The oracle replays a candidate decision
   sequence and reports whether the same failure class reproduces;
   [Sched.Fixed]'s round-robin fallback past the end of a schedule is
   what makes truncated candidates runnable at all. *)

type stats = { trials : int; from_len : int; to_len : int }

let shrink ~oracle ?(max_trials = 400) decisions =
  let trials = ref 0 in
  let try_ d =
    if !trials >= max_trials then false
    else begin
      incr trials;
      oracle d
    end
  in
  (* Phase 1: shortest failing prefix by bisection.  Invariant: the
     prefix of length [hi] fails (the full sequence does, by the
     caller's contract). *)
  let lo = ref 0 and hi = ref (Array.length decisions) in
  while !hi - !lo > 1 && !trials < max_trials do
    let mid = (!lo + !hi) / 2 in
    if try_ (Array.sub decisions 0 mid) then hi := mid else lo := mid
  done;
  let cur = ref (Array.sub decisions 0 !hi) in
  (* Phase 2: ddmin span removal with granularity doubling.  Only
     candidates the oracle confirms are adopted, so the result always
     reproduces the failure. *)
  let rec ddmin n =
    let len = Array.length !cur in
    if len < 2 || n > len || !trials >= max_trials then ()
    else begin
      let chunk = (len + n - 1) / n in
      let rec try_spans i =
        if i >= len || !trials >= max_trials then None
        else
          let e = min len (i + chunk) in
          let cand =
            Array.append (Array.sub !cur 0 i) (Array.sub !cur e (len - e))
          in
          if Array.length cand < len && try_ cand then Some cand
          else try_spans (i + chunk)
      in
      match try_spans 0 with
      | Some cand ->
          cur := cand;
          ddmin (max 2 (n - 1))
      | None -> if n < len then ddmin (min len (n * 2))
    end
  in
  ddmin 2;
  (!cur, { trials = !trials; from_len = Array.length decisions;
           to_len = Array.length !cur })
