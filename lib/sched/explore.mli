(** Schedule-space search (DESIGN.md §14.5): iterate seeded strategies
    over a {!Scenario} until a violation appears, then shrink the
    failing schedule and package it as a replayable {!Trace.t}. *)

type kind = Round_robin | Random | Pct

val kind_to_string : kind -> string

val kind_of_string : string -> kind
(** Accepts "round-robin"/"rr", "random", "pct".
    @raise Invalid_argument otherwise. *)

type params = {
  scenario : Trace.scenario;
  kind : kind;
  iters : int;  (** max iterations (seeds) to try *)
  depth : int;  (** PCT priority-change points *)
  seed : int;  (** base seed; iteration i uses a hash of (seed, i) *)
  max_steps : int;  (** per-run scheduler step budget *)
  do_shrink : bool;
  max_shrink_trials : int;
}

val default_params : params
(** PCT, 200 iterations, depth 3, shrinking on. *)

type found = {
  iteration : int;
  strategy : string;  (** provenance label, also stored in the trace *)
  failure : Scenario.failure;
  trace : Trace.t;  (** shrunk, replayable witness *)
  original_len : int;  (** decision count before shrinking *)
  shrink : Shrink.stats option;
}

type result = { found : found option; iterations : int; total_decisions : int }

val search : ?log:(string -> unit) -> params -> result
(** Run the search.  Stops at the first violation.  For [Pct],
    iteration 0 is a round-robin probe that calibrates the
    change-point horizon to the workload's actual schedule length. *)
