(** Schedule traces: the serialized form of an explored interleaving
    (DESIGN.md §14.3).

    A trace pairs a fully-parameterized workload description with the
    decision sequence the scheduler took, so a failure found by
    exploration can be re-run bit-for-bit by [bin/repro.exe schedule]
    or the [test/schedules/] regression corpus.  Decisions are keyed by
    {e worker slot} (the worker's index in its cohort), not by raw
    thread id, which makes traces portable across processes. *)

type scenario = {
  stm : string;  (** registry name, e.g. "2PLSF", "TinySTM" *)
  threads : int;  (** worker count (= slots 0..threads-1) *)
  accounts : int;  (** tvar count of the transfer workload *)
  txns_per_thread : int;
  init_balance : int;  (** per-account starting balance *)
  abort_every : int;
      (** every k-th transaction raises a user abort after its first
          write (exercises rollback paths); 0 = never *)
  audit_every : int;
      (** every k-th transaction is a read-only two-account audit
          (gives the checker dirty-read observations); 0 = never *)
  wseed : int;  (** workload op-stream seed *)
  bug : string option;  (** [Baselines.Tinystm] seeded-bug variant *)
}

val default_scenario : scenario

type t = {
  version : int;
  strategy : string;  (** provenance: how the schedule was found *)
  failure : string option;
      (** {!Scenario.failure_class} recorded when the trace was saved
          (classes are stable across runs; rendered messages are not) *)
  scenario : scenario;
  decisions : (int * int) array;  (** (worker slot, {!Chaos.Site.code}) *)
}

val version : int
(** Current trace format version. *)

val to_json : t -> Harness.Json.t
val of_json : Harness.Json.t -> t
(** @raise Failure on malformed or wrong-version input. *)

val save : string -> t -> unit
val load : string -> t
(** @raise Failure on malformed input;
    [Harness.Json.Parse_error] on unparsable JSON. *)
