(* Cooperative deterministic scheduler (DESIGN.md §14).

   Worker domains are serialized through the chaos sync points: exactly
   one worker — the baton holder — runs at any time.  At every sync
   point the holder consults the strategy; if another slot is picked,
   the holder wakes it and parks on its own condition variable.
   Parking blocks (mutex + condvar) rather than spins: the bench hosts
   are single-core, and a spinning parked thread would starve the
   holder.

   Every strategy decision is appended to the decision log as
   (slot, site-code); the log is the schedule trace that [Trace]
   serializes and [Fixed] replays. *)

module Chaos = Twoplsf_chaos.Chaos

type strategy =
  | Round_robin
  | Random_walk of { seed : int }
  | Pct of { seed : int; depth : int; horizon : int }
  | Fixed of { decisions : (int * int) array }

type run_info = {
  decisions : (int * int) array;
  steps : int;
  divergences : int;
  budget_exhausted : bool;
}

(* Pseudo-site codes for decisions not triggered by a chaos sync point:
   cohort-complete (first decision) and worker exit.  Chaos site codes
   are small; these sit far above them and are never renumbered. *)
let register_code = 98
let exit_code = 99

let max_slots = Util.Tid.max_threads
let m = Mutex.create ()
let conds = Array.init max_slots (fun _ -> Condition.create ())
let granted = Array.make max_slots false
let present = Array.make max_slots false
let tid_slot = Array.make Util.Tid.max_threads (-1)

type state = {
  mutable active : bool;
  mutable expected : int;
  mutable registered : int;
  mutable live : int;
  mutable running : int;
  mutable step : int;
  mutable max_steps : int;
  mutable budget_exhausted : bool;
  mutable divergences : int;
  mutable decisions_rev : (int * int) list;
  mutable strat : strategy;
  mutable rng : Util.Sprng.t;
  mutable rr_cursor : int;
  prio : int array;
  mutable change_points : int array;
  mutable cp_idx : int;
  mutable last_choice : int;
  mutable consec : int;
  mutable demote_floor : int;
  mutable fixed : (int * int) array;
  mutable fixed_pos : int;
}

let st =
  {
    active = false;
    expected = 0;
    registered = 0;
    live = 0;
    running = -1;
    step = 0;
    max_steps = 0;
    budget_exhausted = false;
    divergences = 0;
    decisions_rev = [];
    strat = Round_robin;
    rng = Util.Sprng.create 0;
    rr_cursor = 0;
    prio = Array.make max_slots 0;
    change_points = [||];
    cp_idx = 0;
    last_choice = -1;
    consec = 0;
    demote_floor = 0;
    fixed = [||];
    fixed_pos = 0;
  }

(* ---- strategy decisions (scheduler mutex held) -------------------- *)

let next_present_from k =
  let rec go i =
    let s = (k + i) mod max_slots in
    if present.(s) then s else go (i + 1)
  in
  go 0

let pick_round_robin () =
  let s = next_present_from st.rr_cursor in
  st.rr_cursor <- (s + 1) mod max_slots;
  s

let pick_random () =
  let n = Array.fold_left (fun a p -> if p then a + 1 else a) 0 present in
  let k = ref (Util.Sprng.int st.rng n) in
  let chosen = ref (-1) in
  for s = 0 to max_slots - 1 do
    if present.(s) && !chosen < 0 then
      if !k = 0 then chosen := s else decr k
  done;
  !chosen

(* PCT (Burckhardt et al.): strict priority scheduling with [depth]
   priority-change points.  When the global step counter crosses the
   i-th change point, the thread being descheduled drops to priority i —
   below every initial priority — so a bug of depth d is found with
   probability >= 1/(n * k^(d-1)). *)
(* Strict priority livelocks when the top-priority thread spins in a
   wait or retry loop that can only progress once a parked thread runs
   (every such loop passes a sync point, so the spinner is re-picked
   forever).  Coyote-style fairness fallback: after this many
   consecutive decisions for one slot, demote it below every other
   priority so its partners get to run. *)
let fairness_bound = 128

let pick_pct ~yielder =
  while
    st.cp_idx < Array.length st.change_points
    && st.change_points.(st.cp_idx) <= st.step
  do
    if yielder >= 0 then st.prio.(yielder) <- st.cp_idx;
    st.cp_idx <- st.cp_idx + 1
  done;
  if st.consec >= fairness_bound && st.last_choice >= 0 then begin
    (* The floor only ever decreases, staying below every change-point
       priority (>= 0) and every initial priority (> depth). *)
    st.demote_floor <- st.demote_floor - 1;
    st.prio.(st.last_choice) <- st.demote_floor;
    st.consec <- 0
  end;
  let best = ref (-1) in
  for s = 0 to max_slots - 1 do
    if present.(s) && (!best < 0 || st.prio.(s) > st.prio.(!best)) then
      best := s
  done;
  !best

(* Replay: follow the recorded decisions while they apply.  A decision
   naming an absent slot, or arriving at a different site than recorded,
   is a divergence (counted, then tolerated); an exhausted schedule
   falls back to round-robin so truncated/shrunk prefixes still run the
   workload to completion. *)
let pick_fixed ~site =
  if st.fixed_pos < Array.length st.fixed then begin
    let want, rec_site = st.fixed.(st.fixed_pos) in
    st.fixed_pos <- st.fixed_pos + 1;
    if present.(want) then begin
      if rec_site <> site then st.divergences <- st.divergences + 1;
      want
    end
    else begin
      st.divergences <- st.divergences + 1;
      pick_round_robin ()
    end
  end
  else pick_round_robin ()

let choose site =
  let chosen =
    match st.strat with
    | Round_robin -> pick_round_robin ()
    | Random_walk _ -> pick_random ()
    | Pct _ -> pick_pct ~yielder:st.running
    | Fixed _ -> pick_fixed ~site
  in
  if chosen = st.last_choice then st.consec <- st.consec + 1
  else begin
    st.last_choice <- chosen;
    st.consec <- 1
  end;
  st.decisions_rev <- (chosen, site) :: st.decisions_rev;
  st.step <- st.step + 1;
  chosen

(* ---- parking ------------------------------------------------------ *)

let grant slot =
  granted.(slot) <- true;
  Condition.signal conds.(slot)

let park slot =
  while not granted.(slot) do
    Condition.wait conds.(slot) m
  done;
  granted.(slot) <- false

(* Step budget blown: stop making decisions and free every parked
   worker so the run finishes under real concurrency.  Never raise —
   sync points sit inside rollback/write-back critical sections. *)
let exhaust () =
  st.budget_exhausted <- true;
  st.active <- false;
  for s = 0 to max_slots - 1 do
    if present.(s) && s <> st.running then grant s
  done

let yield_hook site =
  let tid = Util.Tid.get () in
  let slot = tid_slot.(tid) in
  if slot >= 0 then begin
    Mutex.lock m;
    if st.active && st.running = slot then begin
      if st.step >= st.max_steps then exhaust ()
      else
        let next = choose (Chaos.Site.code site) in
        if next <> slot then begin
          st.running <- next;
          grant next;
          park slot
        end
    end;
    Mutex.unlock m
  end

(* ---- lifecycle ---------------------------------------------------- *)

let setup ?(max_steps = 200_000) ~threads strat =
  if threads < 1 || threads > max_slots then
    invalid_arg "Sched.setup: bad thread count";
  Mutex.lock m;
  st.active <- true;
  st.expected <- threads;
  st.registered <- 0;
  st.live <- 0;
  st.running <- -1;
  st.step <- 0;
  st.max_steps <- max_steps;
  st.budget_exhausted <- false;
  st.divergences <- 0;
  st.decisions_rev <- [];
  st.strat <- strat;
  st.rr_cursor <- 0;
  st.cp_idx <- 0;
  st.last_choice <- -1;
  st.consec <- 0;
  st.demote_floor <- 0;
  Array.fill granted 0 max_slots false;
  Array.fill present 0 max_slots false;
  Array.fill tid_slot 0 (Array.length tid_slot) (-1);
  (match strat with
  | Round_robin -> ()
  | Random_walk { seed } -> st.rng <- Util.Sprng.create seed
  | Pct { seed; depth; horizon } ->
      st.rng <- Util.Sprng.create seed;
      let order = Array.init threads Fun.id in
      for i = threads - 1 downto 1 do
        let j = Util.Sprng.int st.rng (i + 1) in
        let t = order.(i) in
        order.(i) <- order.(j);
        order.(j) <- t
      done;
      Array.fill st.prio 0 max_slots 0;
      Array.iteri (fun pos slot -> st.prio.(slot) <- depth + 1 + pos) order;
      let h = max 1 horizon in
      st.change_points <-
        Array.init (max 0 depth) (fun _ -> 1 + Util.Sprng.int st.rng h);
      Array.sort compare st.change_points
  | Fixed { decisions } ->
      st.fixed <- decisions;
      st.fixed_pos <- 0);
  Chaos.hook := Some yield_hook;
  Mutex.unlock m

let register ~slot =
  if slot < 0 || slot >= max_slots then invalid_arg "Sched.register";
  let tid = Util.Tid.get () in
  Mutex.lock m;
  if st.active then begin
    tid_slot.(tid) <- slot;
    present.(slot) <- true;
    st.registered <- st.registered + 1;
    st.live <- st.live + 1;
    if st.registered = st.expected then begin
      (* Cohort complete: the first strategy decision. *)
      let next = choose register_code in
      st.running <- next;
      if next <> slot then begin
        grant next;
        park slot
      end
    end
    else park slot
  end;
  Mutex.unlock m

let unregister () =
  let tid = Util.Tid.get () in
  Mutex.lock m;
  let slot = tid_slot.(tid) in
  if slot >= 0 then begin
    tid_slot.(tid) <- -1;
    if present.(slot) then begin
      present.(slot) <- false;
      st.live <- st.live - 1
    end;
    if st.active && st.running = slot then begin
      if st.live > 0 then begin
        if st.step >= st.max_steps then exhaust ()
        else begin
          let next = choose exit_code in
          st.running <- next;
          grant next
        end
      end
      else st.running <- -1
    end
  end;
  Mutex.unlock m

let finish () =
  Mutex.lock m;
  Chaos.hook := None;
  st.active <- false;
  let info =
    {
      decisions = Array.of_list (List.rev st.decisions_rev);
      steps = st.step;
      divergences = st.divergences;
      budget_exhausted = st.budget_exhausted;
    }
  in
  Mutex.unlock m;
  info

(* Read by the baton holder between sync points: while the scheduler is
   active every other worker is parked, so the unlocked read is
   effectively sequential.  After budget exhaustion the value is only
   advisory. *)
let step () = st.step
let active () = st.active
