(** The exploration workload (DESIGN.md §14.2): a conserved-sum account
    transfer over a schedulable registry STM, run under the cooperative
    scheduler with full history recording and post-run checking.

    Determinism contract: with a fixed {!Trace.scenario} and a fixed
    [strategy], two runs produce identical decision sequences,
    identical committed histories, and identical {!outcome.history_hash}
    values.  Worker registration is serialized (slot i claims the i-th
    tid), op streams are stateless functions of [(wseed, slot)], and
    every other interleaving choice belongs to [Sched]. *)

exception Induced_abort
(** Raised by the workload itself ([abort_every]) to exercise rollback
    with a dirty value in place; always caught by the worker. *)

type failure =
  | Worker_exn of string  (** a worker escaped with an exception *)
  | Leaked_locks of int  (** post-quiescence lock sweep found holders *)
  | Conservation of { expected : int; actual : int }
      (** the transfer-conserved sum drifted — a lost or phantom update *)
  | Serializability of Checker.violation
  | Starvation of Checker.violation
  | No_progress of string
      (** step budget exhausted, or a commit-free decision span *)

val failure_class : failure -> string
(** Short stable tag ("conservation", "serializability", ...) — the
    equivalence used when shrinking ("still fails the same way"). *)

val failure_to_string : failure -> string

type outcome = {
  failure : failure option;
  info : Sched.run_info;
  history_hash : int;
      (** hash of (decisions, committed history, final balances) — the
          bit-identity witness replay tests compare *)
  commits : int;
  aborts : int;  (** total restarts across committed transactions *)
  txns : Checker.txn list;  (** committed history, in commit order *)
  finals : int array;  (** final per-account balances *)
}

val supported : string list
(** Registry STMs whose every potentially-unbounded loop passes a sync
    point, and which are therefore safe to run under the scheduler. *)

val run :
  ?strategy:Sched.strategy ->
  ?max_steps:int ->
  ?chaos:Twoplsf_chaos.Chaos.config ->
  Trace.scenario ->
  outcome
(** One scheduled run.  [chaos] layers deterministic fault injection on
    top of scheduling (default: {!Twoplsf_chaos.Chaos.quiet} — pure
    scheduling).  Installs the default overload policy for the run
    (deadlines and backoff CMs consult wall-clock time and would break
    determinism) and restores the caller's policy after.
    @raise Invalid_argument for unschedulable STMs, bad parameters, or
    an unknown [bug] name. *)
