(** Offline checks over a recorded committed history (DESIGN.md §14.4).

    The scheduler serializes workers, and no STM here has a sync point
    between commit linearization and [atomic]'s return — so the
    scheduler step sampled right after [atomic] returns orders commits
    faithfully per location, and replaying writers in that order
    reconstructs the exact sequence of committed states.

    Read validation is window-based: an optimistic STM may legally
    commit after a writer has overwritten one of its read-only
    locations (its serialization point is its validation step, earlier
    than its end step), so reads of read-only locations need only match
    {e some} committed state within the transaction's real-time window.
    Reads of locations the transaction {e also writes} must match the
    state at its end exactly — the location's lock is held from
    validation to install, so a mismatch is precisely a lost update. *)

type txn = {
  slot : int;  (** committing worker's slot *)
  start : int;  (** scheduler step before the transaction began *)
  order : int;  (** scheduler step right after [atomic] returned *)
  reads : (int * int) list;  (** (location, value observed) *)
  writes : (int * int) list;  (** (location, value installed) *)
  restarts : int;  (** attempts aborted before this commit *)
}

type violation =
  | Stale_rmw of {
      txn : int;  (** index in commit order *)
      slot : int;
      loc : int;
      expected : int;  (** committed state at the commit point *)
      observed : int;  (** what the transaction read and acted on *)
    }  (** lost update on a read-modify-write location *)
  | Inconsistent_snapshot of { txn : int; slot : int }
      (** the read set matches no committed state in the transaction's
          window — a dirty or mixed-epoch read *)
  | Restart_bound of { slot : int; restarts : int; bound : int }
      (** starvation-freedom clock condition violated *)
  | Commit_gap of { gap : int; bound : int }
      (** a long decision span with no commit — livelock indicator *)

val explain : violation -> string

val commit_order : txn list -> txn list
(** Sorted by [(order, slot)] — the recovered commit order. *)

val check_serializable : init:int array -> txn list -> violation option
(** The window-based strict-serializability check described above.
    [None] = the committed history is strictly serializable. *)

val check_restart_bound : bound:int -> txn list -> violation option
(** 2PLSF's bounded-overtaking claim: no committed transaction needed
    more than [bound] ([threads - 1]) restarts.  Apply only to the
    2PLSF family under pure scheduling (no injected faults). *)

val check_commit_gap : bound:int -> total:int -> txn list -> violation option
(** No span of more than [bound] scheduler decisions (out of [total])
    without a commit. *)
