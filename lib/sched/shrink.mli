(** Delta-debugging for schedule traces (DESIGN.md §14.3).

    Two phases: bisect to the shortest failing prefix, then ddmin span
    removal (try dropping each of [n] chunks; on success restart at
    coarser granularity, otherwise halve the chunk size).  Every adopted
    candidate was confirmed by the oracle, so the returned sequence
    always reproduces the failure. *)

type stats = { trials : int; from_len : int; to_len : int }

val shrink :
  oracle:((int * int) array -> bool) ->
  ?max_trials:int ->
  (int * int) array ->
  (int * int) array * stats
(** [shrink ~oracle decisions] minimizes a failing decision sequence.
    [oracle d] must replay [d] and return whether the {e same class} of
    failure reproduces; it is called at most [max_trials] (default 400)
    times.  The caller guarantees the full input fails. *)
