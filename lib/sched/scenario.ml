(* The exploration workload (DESIGN.md §14.2): a conserved-sum account
   transfer over any registry STM whose blocking and retry paths all
   carry chaos sync points.  Deterministic by construction: worker
   registration is serialized so slot i always claims the i-th tid, op
   streams are stateless functions of (wseed, slot), and every other
   scheduling decision belongs to [Sched]. *)

module Chaos = Twoplsf_chaos.Chaos

exception Induced_abort

type failure =
  | Worker_exn of string
  | Leaked_locks of int
  | Conservation of { expected : int; actual : int }
  | Serializability of Checker.violation
  | Starvation of Checker.violation
  | No_progress of string

let failure_class = function
  | Worker_exn _ -> "worker-exn"
  | Leaked_locks _ -> "leaked-locks"
  | Conservation _ -> "conservation"
  | Serializability _ -> "serializability"
  | Starvation _ -> "starvation"
  | No_progress _ -> "no-progress"

let failure_to_string = function
  | Worker_exn e -> "worker exception: " ^ e
  | Leaked_locks n -> Printf.sprintf "%d leaked locks after quiescence" n
  | Conservation { expected; actual } ->
      Printf.sprintf "conservation violated: sum %d, expected %d" actual
        expected
  | Serializability v | Starvation v -> Checker.explain v
  | No_progress s -> "no progress: " ^ s

type outcome = {
  failure : failure option;
  info : Sched.run_info;
  history_hash : int;
  commits : int;
  aborts : int;
  txns : Checker.txn list;
  finals : int array;
}

(* STMs whose every potentially-unbounded loop (lock waits, validation
   waits, conflict-retry) passes a sync point.  Running an
   uninstrumented STM under the scheduler could park a lock holder
   forever while the baton holder spins in a site-free retry loop. *)
let supported =
  [
    "2PLSF";
    "2PLSF-WB";
    "2PLSF-WBD";
    "TL2";
    "TinySTM";
    "TicToc-STM";
    "2PL-WoundWait";
  ]

let twoplsf_family = [ "2PLSF"; "2PLSF-WB"; "2PLSF-WBD" ]

(* TicToc is deliberately absent from [Registry.all] (it is serializable
   for update transactions but skips commit validation for read-only
   ones — the non-opacity test_opacity.ml exercises). *)
let resolve = function
  | "TicToc-STM" -> (module Baselines.Tictoc_stm : Stm_intf.STM)
  | name -> Baselines.Registry.find name

let run ?(strategy = Sched.Round_robin) ?(max_steps = 200_000) ?chaos
    (p : Trace.scenario) =
  if not (List.mem p.stm supported) then
    invalid_arg
      (Printf.sprintf
         "Scenario.run: %s is not schedulable (uninstrumented blocking paths)"
         p.stm);
  if p.threads < 1 || p.accounts < 2 || p.txns_per_thread < 0 then
    invalid_arg "Scenario.run: bad workload parameters";
  let (module S : Stm_intf.STM) =
    Baselines.Registry.chaos_wrap (resolve p.stm)
  in
  let bug = Option.map Baselines.Tinystm.bug_of_string p.bug in
  let saved_policy = Stm_intf.current_policy () in
  Stm_intf.install_policy Stm_intf.default_policy;
  Baselines.Tinystm.set_bug bug;
  let cfg =
    match chaos with Some c -> c | None -> { Chaos.quiet with seed = p.wseed }
  in
  Chaos.enable ~config:cfg ();
  Sched.setup ~max_steps ~threads:p.threads strategy;
  S.reset_stats ();
  let accounts = Array.init p.accounts (fun _ -> S.tvar p.init_balance) in
  let logs : Checker.txn list array = Array.make p.threads [] in
  let errors : exn option array = Array.make p.threads None in
  let turn = Atomic.make 0 in
  let body slot =
    let rng = Util.Sprng.create (Util.Sprng.hash4 p.wseed slot 0x5EED 0) in
    for k = 1 to p.txns_per_thread do
      (* Draw op parameters outside the transaction: a retried body must
         not consume more of the stream than a clean one. *)
      let a = Util.Sprng.int rng p.accounts in
      let b0 = Util.Sprng.int rng (p.accounts - 1) in
      let b = if b0 >= a then b0 + 1 else b0 in
      let amt = 1 + Util.Sprng.int rng 7 in
      let audit = p.audit_every > 0 && k mod p.audit_every = 0 in
      let induce =
        (not audit) && p.abort_every > 0 && k mod p.abort_every = 0
      in
      let start = Sched.step () in
      if audit then begin
        let va, vb =
          S.atomic ~read_only:true (fun tx ->
              (S.read tx accounts.(a), S.read tx accounts.(b)))
        in
        logs.(slot) <-
          {
            Checker.slot;
            start;
            order = Sched.step ();
            reads = [ (a, va); (b, vb) ];
            writes = [];
            restarts = S.last_restarts ();
          }
          :: logs.(slot)
      end
      else if induce then (
        (* A user abort after the first write: exercises rollback with a
           dirty value in place.  The transaction logically never
           happened, so nothing is recorded. *)
        match
          S.atomic (fun tx ->
              let va = S.read tx accounts.(a) in
              S.write tx accounts.(a) (va - amt);
              raise Induced_abort)
        with
        | () -> ()
        | exception Induced_abort -> ())
      else begin
        let va, vb =
          S.atomic (fun tx ->
              let va = S.read tx accounts.(a) in
              let vb = S.read tx accounts.(b) in
              S.write tx accounts.(a) (va - amt);
              S.write tx accounts.(b) (vb + amt);
              (va, vb))
        in
        logs.(slot) <-
          {
            Checker.slot;
            start;
            order = Sched.step ();
            reads = [ (a, va); (b, vb) ];
            writes = [ (a, va - amt); (b, vb + amt) ];
            restarts = S.last_restarts ();
          }
          :: logs.(slot)
      end
    done
  in
  let doms =
    List.init p.threads (fun i ->
        Domain.spawn (fun () ->
            (* Serialize registration so slot i always claims the i-th
               free tid: schedules stay keyed by slot, portable across
               processes. *)
            while Atomic.get turn <> i do
              Domain.cpu_relax ()
            done;
            ignore (Util.Tid.register ());
            Atomic.set turn (i + 1);
            Sched.register ~slot:i;
            Fun.protect
              ~finally:(fun () ->
                Sched.unregister ();
                Util.Tid.release ())
              (fun () -> try body i with e -> errors.(i) <- Some e)))
  in
  List.iter Domain.join doms;
  let info = Sched.finish () in
  Chaos.disable ();
  Baselines.Tinystm.set_bug None;
  Stm_intf.install_policy saved_policy;
  let finals =
    Array.map
      (fun tv -> S.atomic ~read_only:true (fun tx -> S.read tx tv))
      accounts
  in
  let txns =
    Array.fold_left (fun acc l -> List.rev_append l acc) [] logs
    |> Checker.commit_order
  in
  let commits = List.length txns in
  let aborts = List.fold_left (fun a t -> a + t.Checker.restarts) 0 txns in
  let history_hash =
    let h = ref (Util.Sprng.hash4 0x2b15f p.threads p.accounts p.wseed) in
    Array.iter (fun (s, c) -> h := Util.Sprng.hash4 !h s c 1) info.decisions;
    List.iter
      (fun (t : Checker.txn) ->
        h := Util.Sprng.hash4 !h t.Checker.slot t.order t.restarts;
        List.iter (fun (loc, v) -> h := Util.Sprng.hash4 !h loc v 2) t.reads;
        List.iter (fun (loc, v) -> h := Util.Sprng.hash4 !h loc v 3) t.writes)
      txns;
    Array.iter (fun v -> h := Util.Sprng.hash4 !h v 4 5) finals;
    !h
  in
  let failure =
    match Array.to_list errors |> List.find_map Fun.id with
    | Some e -> Some (Worker_exn (Printexc.to_string e))
    | None -> (
        let leaked = S.leaked_locks () in
        if leaked > 0 then Some (Leaked_locks leaked)
        else
          let expected = p.accounts * p.init_balance in
          let actual = Array.fold_left ( + ) 0 finals in
          if actual <> expected then Some (Conservation { expected; actual })
          else if info.budget_exhausted then
            (* Progress under an adversarial schedule is exactly what
               only the 2PLSF family claims (the paper's motivation): a
               PCT schedule that starves wound-wait's wounder — the
               victim restarts instantly, re-grabs its lock and
               re-blocks before the older transaction runs — or locks
               encounter-time STMs into mutual-abort cycles is expected
               behaviour there, not a bug.  The history logged after
               exhaustion ran unscheduled, so no further checks apply
               either way. *)
            if List.mem p.stm twoplsf_family then
              Some
                (No_progress
                   (Printf.sprintf
                      "step budget (%d) exhausted with %d/%d commits" max_steps
                      commits (p.threads * p.txns_per_thread)))
            else None
          else
            let init = Array.make p.accounts p.init_balance in
            (* TicToc's read-only transactions skip commit validation by
               design (non-opacity): an audit observing a mixed snapshot
               is expected behaviour there, not a violation.  Update
               transactions stay fully checked. *)
            let checked =
              if String.equal p.stm "TicToc-STM" then
                List.filter (fun (t : Checker.txn) -> t.writes <> []) txns
              else txns
            in
            match Checker.check_serializable ~init checked with
            | Some v -> Some (Serializability v)
            | None -> (
                let starve =
                  if
                    Option.is_none chaos && p.threads > 1
                    && List.mem p.stm twoplsf_family
                  then
                    Checker.check_restart_bound ~bound:(p.threads - 1) txns
                  else None
                in
                match starve with
                | Some v -> Some (Starvation v)
                | None ->
                    (* Commit-gap is a liveness bound too: only the
                       starvation-free family owes it. *)
                    if commits = 0 || not (List.mem p.stm twoplsf_family)
                    then None
                    else
                      Checker.check_commit_gap
                        ~bound:(max 2000 (200 * p.threads))
                        ~total:info.steps txns
                      |> Option.map (fun v ->
                             No_progress (Checker.explain v))))
  in
  { failure; info; history_hash; commits; aborts; txns; finals }
