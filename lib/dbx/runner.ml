module Chaos = Twoplsf_chaos.Chaos

type row = {
  cc : string;
  theta : float;
  threads : int;
  throughput : float;
  commits : int;
  aborts : int;
  abort_reasons : (string * int) list;
      (* telemetry breakdown ([] when telemetry is off or the CC has no scope) *)
  telemetry : Harness.Driver.txn_telemetry;
      (* phase decomposition + latency percentiles (zeros when off) *)
}

(* CC scopes register as "DBx-<name>" to stay distinct from the STM scopes. *)
let scope_of (module C : Cc_intf.CC) = Twoplsf_obs.Scope.find ("DBx-" ^ C.name)

let reset_scope cc =
  if Twoplsf_obs.Telemetry.enabled () then
    match scope_of cc with
    | Some sc -> Twoplsf_obs.Scope.reset sc
    | None -> ()

let abort_reasons_of cc =
  if Twoplsf_obs.Telemetry.enabled () then
    match scope_of cc with
    | Some sc -> Twoplsf_obs.Scope.abort_counts sc
    | None -> []
  else []

let telemetry_of cc =
  if Twoplsf_obs.Telemetry.enabled () then
    match scope_of cc with
    | Some sc -> Harness.Driver.telemetry_of_scope sc
    | None -> Harness.Driver.no_telemetry
  else Harness.Driver.no_telemetry

module No_wait = Cc_2pl.Make (struct
  let variant = Cc_2pl.No_wait
end)

module Wait_die = Cc_2pl.Make (struct
  let variant = Cc_2pl.Wait_die
end)

module Dl_detect = Cc_2pl.Make (struct
  let variant = Cc_2pl.Dl_detect
end)

let ccs : (string * (module Cc_intf.CC)) list =
  [
    ("2PLSF", (module Cc_2plsf));
    ("TicToc", (module Cc_tictoc));
    ("NO_WAIT", (module No_wait));
    ("WAIT_DIE", (module Wait_die));
    ("DL_DETECT", (module Dl_detect));
  ]

type error = Unknown_cc of { requested : string; known : string list }

let error_message (Unknown_cc { requested; known }) =
  Printf.sprintf "unknown cc %s (one of: %s)" requested (String.concat ", " known)

let find_cc name =
  match List.assoc_opt name ccs with
  | Some cc -> Ok cc
  | None -> Error (Unknown_cc { requested = name; known = List.map fst ccs })

let set_phase name ~theta ~threads =
  Twoplsf_obs.Monitor.set_phase
    (Printf.sprintf "DBx-%s/theta=%.2f/t=%d" name theta threads)

let run ~cc ~table ~theta ~write_ratio ~threads ~seconds =
  let (module C : Cc_intf.CC) = cc in
  let state = C.create table in
  reset_scope cc;
  set_phase C.name ~theta ~threads;
  let aborts_total = Atomic.make 0 in
  let worker i should_stop =
    let tid = Util.Tid.get () in
    let gen =
      Ycsb.make_gen ~seed:(1000 + i) ~num_keys:(Table.num_rows table) ~theta
        ~write_ratio ()
    in
    let commits = ref 0 and aborts = ref 0 in
    while not (should_stop ()) do
      if !Chaos.on then Chaos.point Chaos.Dbx_txn;
      let txn = Ycsb.next gen in
      aborts := !aborts + C.execute state ~tid txn;
      incr commits
    done;
    ignore (Atomic.fetch_and_add aborts_total !aborts);
    !commits
  in
  let res = Harness.Exec.run_timed ~threads ~seconds worker in
  {
    cc = C.name;
    theta;
    threads;
    throughput = res.throughput;
    commits = res.ops;
    aborts = Atomic.get aborts_total;
    abort_reasons = abort_reasons_of cc;
    telemetry = telemetry_of cc;
  }

type latency_row = {
  base : row;
  p50 : float;
  p90 : float;
  p99 : float;
  max_latency : float;
}

let run_with_latency ~cc ~table ~theta ~write_ratio ~threads ~seconds =
  let (module C : Cc_intf.CC) = cc in
  let state = C.create table in
  reset_scope cc;
  set_phase C.name ~theta ~threads;
  let aborts_total = Atomic.make 0 in
  let lat = Harness.Latency.create ~threads in
  let worker i should_stop =
    let tid = Util.Tid.get () in
    let gen =
      Ycsb.make_gen ~seed:(2000 + i) ~num_keys:(Table.num_rows table) ~theta
        ~write_ratio ()
    in
    let commits = ref 0 and aborts = ref 0 in
    while not (should_stop ()) do
      if !Chaos.on then Chaos.point Chaos.Dbx_txn;
      let txn = Ycsb.next gen in
      let t0 = Util.Clock.now () in
      aborts := !aborts + C.execute state ~tid txn;
      Harness.Latency.record lat i (Util.Clock.now () -. t0);
      incr commits
    done;
    ignore (Atomic.fetch_and_add aborts_total !aborts);
    !commits
  in
  let res = Harness.Exec.run_timed ~threads ~seconds worker in
  let ps = Harness.Latency.percentiles lat [ 50.; 90.; 99. ] in
  {
    base =
      {
        cc = C.name;
        theta;
        threads;
        throughput = res.throughput;
        commits = res.ops;
        aborts = Atomic.get aborts_total;
        abort_reasons = abort_reasons_of cc;
        telemetry = telemetry_of cc;
      };
    p50 = List.assoc 50. ps;
    p90 = List.assoc 90. ps;
    p99 = List.assoc 99. ps;
    max_latency = Harness.Latency.max_latency lat;
  }

let check_table table =
  let acc = ref 0 in
  for rid = 0 to Table.num_rows table - 1 do
    acc := !acc + Char.code (Bytes.get (Table.payload table rid) 0)
  done;
  !acc
