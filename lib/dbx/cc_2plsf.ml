module Rwl_sf = Twoplsf.Rwl_sf
module Obs = Twoplsf_obs
module Chaos = Twoplsf_chaos.Chaos
module Wal = Twoplsf_wal.Wal

let name = "2PLSF"

(* Registered under a "DBx-" prefix so it does not collide with the STM's
   "2PLSF" scope; Runner looks it up as "DBx-" ^ name. *)
let obs = Obs.Scope.create "DBx-2PLSF"

type per_thread = {
  ctx : Rwl_sf.ctx;
  rlocks : int Util.Vec.t;
  wlocks : int Util.Vec.t;
  undo : (int * Bytes.t) Util.Vec.t; (* (rid, pre-image) *)
  mutable abort_reason : Obs.Events.abort_reason;
}

type t = {
  table : Table.t;
  locks : Rwl_sf.t;
  threads : per_thread array;
  mutable wal : Wal.t option;  (* durability hook; None = in-memory only *)
  degraded : string option Atomic.t;
      (* once set, the engine is read-only: writes raise
         [Stm_intf.Degraded_read_only], reads keep serving (§16) *)
  m_readonly_rejects : int Atomic.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 32

let create table =
  let locks = Rwl_sf.create ~num_locks:(next_pow2 (Table.num_rows table)) () in
  Rwl_sf.set_obs locks obs;
  {
    table;
    locks;
    threads =
      Array.init Util.Tid.max_threads (fun tid ->
          {
            ctx = Rwl_sf.make_ctx ~tid;
            rlocks = Util.Vec.create ~dummy:(-1) ();
            wlocks = Util.Vec.create ~dummy:(-1) ();
            undo = Util.Vec.create ~dummy:(-1, Bytes.empty) ();
            abort_reason = Obs.Events.User_restart;
          });
    wal = None;
    degraded = Atomic.make None;
    m_readonly_rejects = Atomic.make 0;
  }

let set_wal t w = t.wal <- w
let wal t = t.wal
let degraded_reason t = Atomic.get t.degraded
let readonly_rejects t = Atomic.get t.m_readonly_rejects

let enter_degraded t reason =
  ignore (Atomic.compare_and_set t.degraded None (Some reason))

let readonly_fail t reason =
  Atomic.incr t.m_readonly_rejects;
  raise (Stm_intf.Degraded_read_only { engine = "DBx-2PLSF"; reason })

let release t p =
  Util.Vec.iter (fun w -> Rwl_sf.write_unlock t.locks p.ctx w) p.wlocks;
  Util.Vec.iter (fun w -> Rwl_sf.read_unlock t.locks p.ctx w) p.rlocks

let rollback t p =
  Util.Vec.iter_rev
    (fun (rid, image) -> Bytes.blit image 0 (Table.payload t.table rid) 0 Table.tuple_size)
    p.undo;
  (* Close every row's checkpoint seqlock window only after the whole
     pre-image is back in place (a duplicate rid's mark is already even
     after the first pass — [mark_undo] is parity-guarded). *)
  (match t.wal with
  | Some w -> Util.Vec.iter (fun (rid, _) -> Wal.mark_undo w ~rid) p.undo
  | None -> ());
  release t p

(* Commit finalization under the full write-lock set.  With a WAL
   attached and at least one write, the commit window is where the LSN
   is drawn ([Wal.log_commit] under the locks aligns LSN order with the
   serialization order) — the durability *wait* happens after release,
   so holding the locks never spans an fsync. *)
let commit_locked t p =
  match t.wal with
  | Some w when not (Util.Vec.is_empty p.undo) -> begin
      if !Chaos.on then Chaos.point Chaos.Commit_durable_pre;
      match
        Wal.log_commit w ~tid:p.ctx.tid ~n:(Util.Vec.length p.undo)
          ~rid:(fun i -> fst (Util.Vec.get p.undo i))
      with
      | exception Wal.Degraded reason ->
          (* The log refused before drawing an LSN: locks are still held
             and the undo images intact, so the transaction rolls back
             cleanly and the engine flips read-only. *)
          p.abort_reason <- Obs.Events.Wal_degraded;
          enter_degraded t reason;
          rollback t p;
          Rwl_sf.clear_announcement t.locks p.ctx;
          readonly_fail t reason
      | lsn -> (
          if !Chaos.on then Chaos.point Chaos.Commit_durable_mid;
          release t p;
          Rwl_sf.clear_announcement t.locks p.ctx;
          if !Chaos.on then Chaos.point Chaos.Commit_durable_post;
          let wait () =
            match Wal.wait_durable w ~lsn with
            | () -> ()
            | exception Wal.Degraded reason ->
                (* Locks are gone and the in-memory effect stands, but
                   the record never reached disk: the commit must NOT be
                   acknowledged.  Flip read-only and report the failure
                   to the caller — this is the one divergence between
                   memory and log that recovery resolves by dropping the
                   unacked suffix. *)
                p.abort_reason <- Obs.Events.Wal_degraded;
                enter_degraded t reason;
                readonly_fail t reason
          in
          if !Obs.Telemetry.on then begin
            let t0 = Obs.Telemetry.now_ns () in
            Fun.protect
              ~finally:(fun () -> Obs.Scope.fsync_wait obs ~tid:p.ctx.tid ~t0_ns:t0)
              wait
          end
          else wait ())
    end
  | _ ->
      release t p;
      Rwl_sf.clear_announcement t.locks p.ctx

let attempt t p (txn : Ycsb.txn) =
  Util.Vec.clear p.rlocks;
  Util.Vec.clear p.wlocks;
  Util.Vec.clear p.undo;
  let n = Array.length txn.keys in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let rid = Table.lookup t.table txn.keys.(!i) in
    let w = Rwl_sf.lock_index t.locks rid in
    (match txn.ops.(!i) with
    | Ycsb.Read ->
        if
          Rwl_sf.holds_read t.locks p.ctx w
          || Rwl_sf.holds_write t.locks p.ctx w
          || (Rwl_sf.try_or_wait_read_lock t.locks p.ctx w
             && begin
                  Util.Vec.push p.rlocks w;
                  true
                end)
        then ignore (Cc_intf.read_work (Table.payload t.table rid))
        else begin
          p.abort_reason <- Obs.Events.Read_lock_conflict;
          ok := false
        end
    | Ycsb.Write ->
        let held = Rwl_sf.holds_write t.locks p.ctx w in
        if held || Rwl_sf.try_or_wait_write_lock t.locks p.ctx w then begin
          if not held then Util.Vec.push p.wlocks w;
          let payload = Table.payload t.table rid in
          Util.Vec.push p.undo (rid, Bytes.copy payload);
          (match t.wal with Some w -> Wal.mark_dirty w ~rid | None -> ());
          Cc_intf.write_work payload
        end
        else begin
          p.abort_reason <-
            (if p.ctx.preempted then Obs.Events.Priority_preemption
             else Obs.Events.Write_lock_conflict);
          ok := false
        end);
    incr i
  done;
  if !ok then begin
    commit_locked t p;
    true
  end
  else begin
    rollback t p;
    false
  end

let execute t ~tid txn =
  (* Read-only degradation gate: refuse write transactions before any
     lock is taken; pure reads keep serving on a degraded engine. *)
  (match Atomic.get t.degraded with
  | Some reason when Array.exists (fun o -> o = Ycsb.Write) txn.Ycsb.ops ->
      readonly_fail t reason
  | _ -> ());
  let p = t.threads.(tid) in
  let aborts = ref 0 in
  let telemetry = !Obs.Telemetry.on in
  if not telemetry then begin
    while not (attempt t p txn) do
      incr aborts;
      Rwl_sf.wait_for_conflictor t.locks p.ctx
    done;
    !aborts
  end
  else begin
    let txn_t0 = Obs.Telemetry.now_ns () in
    let att_t0 = ref txn_t0 in
    while
      not
        (let ok =
           try attempt t p txn
           with Stm_intf.Degraded_read_only _ as e ->
             (* terminal abort: count it before the raise escapes *)
             Obs.Scope.txn_abort obs ~tid ~att_t0_ns:!att_t0 p.abort_reason;
             raise e
         in
         if not ok then
           Obs.Scope.txn_abort obs ~tid ~att_t0_ns:!att_t0 p.abort_reason;
         ok)
    do
      incr aborts;
      Rwl_sf.wait_for_conflictor t.locks p.ctx;
      att_t0 := Obs.Telemetry.now_ns ()
    done;
    Obs.Scope.txn_commit obs ~tid ~txn_t0_ns:txn_t0 ~att_t0_ns:!att_t0 ();
    !aborts
  end

(* Conserved-transfer transaction for the crash soak (DESIGN.md §15):
   move [amount] from one row's balance to another's under the same
   lock/undo/commit machinery as the YCSB path, so the WAL hooks cover
   it identically and the row-balance sum is a recovery invariant. *)

let attempt_transfer t p ~src_rid ~dst_rid ~amount =
  Util.Vec.clear p.rlocks;
  Util.Vec.clear p.wlocks;
  Util.Vec.clear p.undo;
  let write rid =
    let w = Rwl_sf.lock_index t.locks rid in
    let held = Rwl_sf.holds_write t.locks p.ctx w in
    if held || Rwl_sf.try_or_wait_write_lock t.locks p.ctx w then begin
      if not held then Util.Vec.push p.wlocks w;
      Util.Vec.push p.undo (rid, Bytes.copy (Table.payload t.table rid));
      (match t.wal with Some wal -> Wal.mark_dirty wal ~rid | None -> ());
      true
    end
    else begin
      p.abort_reason <-
        (if p.ctx.preempted then Obs.Events.Priority_preemption
         else Obs.Events.Write_lock_conflict);
      false
    end
  in
  if write src_rid && (src_rid = dst_rid || write dst_rid) then begin
    Table.set_balance t.table src_rid (Table.balance t.table src_rid - amount);
    Table.set_balance t.table dst_rid (Table.balance t.table dst_rid + amount);
    commit_locked t p;
    true
  end
  else begin
    rollback t p;
    false
  end

let execute_transfer t ~tid ~src ~dst ~amount =
  (match Atomic.get t.degraded with
  | Some reason -> readonly_fail t reason
  | None -> ());
  let p = t.threads.(tid) in
  let src_rid = Table.lookup t.table src and dst_rid = Table.lookup t.table dst in
  let aborts = ref 0 in
  if not !Obs.Telemetry.on then begin
    while not (attempt_transfer t p ~src_rid ~dst_rid ~amount) do
      incr aborts;
      Rwl_sf.wait_for_conflictor t.locks p.ctx
    done;
    !aborts
  end
  else begin
    let txn_t0 = Obs.Telemetry.now_ns () in
    let att_t0 = ref txn_t0 in
    while
      not
        (let ok =
           try attempt_transfer t p ~src_rid ~dst_rid ~amount
           with Stm_intf.Degraded_read_only _ as e ->
             Obs.Scope.txn_abort obs ~tid ~att_t0_ns:!att_t0 p.abort_reason;
             raise e
         in
         if not ok then
           Obs.Scope.txn_abort obs ~tid ~att_t0_ns:!att_t0 p.abort_reason;
         ok)
    do
      incr aborts;
      Rwl_sf.wait_for_conflictor t.locks p.ctx;
      att_t0 := Obs.Telemetry.now_ns ()
    done;
    Obs.Scope.txn_commit obs ~tid ~txn_t0_ns:txn_t0 ~att_t0_ns:!att_t0 ();
    !aborts
  end

(* The table as a WAL store: rows are the live payload bytes, so the
   commit record's after-images need no extra copy. *)
let wal_store table =
  {
    Wal.table_id = 0;
    num_rows = Table.num_rows table;
    row_len = Table.tuple_size;
    read_row = (fun rid -> Table.payload table rid);
    write_row =
      (fun rid b -> Bytes.blit b 0 (Table.payload table rid) 0 Table.tuple_size);
  }
