(** YCSB benchmark runner: one call produces one Figure 11 data point. *)

type row = {
  cc : string;
  theta : float;
  threads : int;
  throughput : float;  (** committed transactions per second *)
  commits : int;
  aborts : int;
  abort_reasons : (string * int) list;
      (** telemetry abort-reason breakdown, in taxonomy order; [[]] when
          telemetry is disabled or the CC publishes no scope *)
  telemetry : Harness.Driver.txn_telemetry;
      (** phase decomposition + latency percentiles (zeros when telemetry
          is off) *)
}

val ccs : (string * (module Cc_intf.CC)) list
(** The Figure 11 concurrency controls: 2PLSF, TicToc, NO_WAIT, WAIT_DIE,
    DL_DETECT. *)

type error = Unknown_cc of { requested : string; known : string list }
(** Typed lookup failure — carries the misspelled name and the valid
    names, so callers render errors without string-matching. *)

val error_message : error -> string

val find_cc : string -> ((module Cc_intf.CC), error) result
(** Look a concurrency control up by its {!ccs} name. *)

val run :
  cc:(module Cc_intf.CC) ->
  table:Table.t ->
  theta:float ->
  write_ratio:float ->
  threads:int ->
  seconds:float ->
  row

type latency_row = {
  base : row;
  p50 : float;
  p90 : float;
  p99 : float;
  max_latency : float;  (** seconds *)
}

val run_with_latency :
  cc:(module Cc_intf.CC) ->
  table:Table.t ->
  theta:float ->
  write_ratio:float ->
  threads:int ->
  seconds:float ->
  latency_row
(** Like {!run} but records every transaction's duration (including its
    aborted attempts) — the §5 claim that starvation-freedom buys low tail
    latency, measured on the YCSB workload. *)

val check_table : Table.t -> int
(** Sum of the first byte of every tuple — a cheap whole-table checksum
    used by tests to verify update atomicity (every committed transaction
    bumps exactly 8 bytes per written row). *)
