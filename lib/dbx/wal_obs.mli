(** WAL → OpenMetrics bridge (DESIGN.md §15).

    Renders {!Twoplsf_wal.Wal.metrics} as [twoplsf_wal_*] families and
    registers them as an extra provider on the {!Twoplsf_obs.Exporter},
    so a scrape of a durable run reports appended records, group-commit
    batches, fsyncs, bytes, checkpoints and the LSN watermarks alongside
    the engine's own telemetry.  Lives in dbx because the WAL must not
    depend on obs and vice versa. *)

val register : Twoplsf_wal.Wal.t -> unit
(** Hook [twoplsf_wal_*] families (including the [twoplsf_wal_io_*]
    fault-injection counters and the [degraded] gauge, DESIGN.md §16)
    for this log into every scrape, and the headline watermarks /
    degradation flag into the live monitor (replaces any previously
    registered WAL provider). *)

val unregister : unit -> unit

val render_into : Twoplsf_wal.Wal.t -> Buffer.t -> unit
(** The raw provider (exposed for tests). *)

val monitor_gauges : Twoplsf_wal.Wal.t -> unit -> (string * int) list
(** The live-monitor gauge subset (exposed for tests). *)
