(* Bridge between the WAL and the observability exporter.  lib/wal must
   not depend on lib/obs (the log is usable without telemetry), and the
   exporter cannot depend on the WAL — so the dbx layer, which already
   sees both, renders [Wal.metrics] as OpenMetrics families and hooks
   them into every scrape via [Exporter.register_extra]. *)

module Wal = Twoplsf_wal.Wal
module Exporter = Twoplsf_obs.Exporter
module Monitor = Twoplsf_obs.Monitor

let provider_name = "twoplsf_wal"

(* Monotone counters vs point-in-time gauges: the LSN watermarks and
   checkpoint position move forward but are positions, not event counts;
   the degradation and device-state flags are booleans; everything else
   Wal.metrics reports is a cumulative count.  Io-layer keys arrive with
   an "io_" prefix (the twoplsf_wal_io_* families). *)
let metric_type key =
  let is_suffix suf =
    let ls = String.length suf and lk = String.length key in
    lk >= ls && String.sub key (lk - ls) ls = suf
  in
  if
    is_suffix "_lsn" || key = "degraded" || key = "io_device_dead"
    || key = "io_device_full"
  then "gauge"
  else "counter"

let render_into w b =
  List.iter
    (fun (key, v) ->
      let family = "twoplsf_wal_" ^ key in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n%s %d\n" family (metric_type key)
           family v))
    (Wal.metrics w)

(* Live-monitor gauges: the watermark pair shows commit progress, the
   degraded flag makes a dying log visible at a glance. *)
let monitor_gauges w () =
  List.filter
    (fun (key, _) ->
      match key with
      | "flushed_lsn" | "next_lsn" | "degraded" | "io_retries"
      | "io_fsync_failures" ->
          true
      | _ -> false)
    (Wal.metrics w)

let register w =
  Exporter.register_extra ~name:provider_name (render_into w);
  Monitor.add_gauges ~name:provider_name (monitor_gauges w)

let unregister () =
  Exporter.unregister_extra ~name:provider_name;
  Monitor.remove_gauges ~name:provider_name
