(* Bridge between the WAL and the observability exporter.  lib/wal must
   not depend on lib/obs (the log is usable without telemetry), and the
   exporter cannot depend on the WAL — so the dbx layer, which already
   sees both, renders [Wal.metrics] as OpenMetrics families and hooks
   them into every scrape via [Exporter.register_extra]. *)

module Wal = Twoplsf_wal.Wal
module Exporter = Twoplsf_obs.Exporter

let provider_name = "twoplsf_wal"

(* Monotone counters vs point-in-time gauges: the LSN watermarks and
   checkpoint position move forward but are positions, not event counts;
   everything else Wal.metrics reports is a cumulative count. *)
let metric_type key =
  let is_suffix suf =
    let ls = String.length suf and lk = String.length key in
    lk >= ls && String.sub key (lk - ls) ls = suf
  in
  if is_suffix "_lsn" then "gauge" else "counter"

let render_into w b =
  List.iter
    (fun (key, v) ->
      let family = "twoplsf_wal_" ^ key in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n%s %d\n" family (metric_type key)
           family v))
    (Wal.metrics w)

let register w = Exporter.register_extra ~name:provider_name (render_into w)
let unregister () = Exporter.unregister_extra ~name:provider_name
