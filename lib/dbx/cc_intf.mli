(** Row-level concurrency-control interface for the YCSB benchmark.

    Each concurrency control runs a generated transaction to commit,
    retrying internally on aborts exactly as the paper configures
    DBx1000: no abort buffer and no restart backoff (2PLSF waits for its
    specific conflictor; wait-die waits by timestamp order; no-wait
    retries immediately). *)

module type CC = sig
  val name : string

  type t

  val create : Table.t -> t

  val execute : t -> tid:int -> Ycsb.txn -> int
  (** Run the transaction to commit; returns the number of aborted
      attempts it took (0 = first try). *)
end

(** {2 Shared per-access tuple work}

    Every CC performs the same reads and writes on a tuple so that all
    concurrency controls pay identical data-access costs. *)

val read_work : Bytes.t -> int
(** Sum bytes 0..7 of the tuple. *)

val write_work : Bytes.t -> unit
(** Increment bytes 0..7 of the tuple (mod 256), the update every write
    op applies — tests use the per-row equality of those bytes to check
    update atomicity. *)
