(** The DBx1000-style row store used by the Figure 11 YCSB reproduction.

    Fixed set of rows with 100-byte tuples, addressed through a sequential
    open-addressing hash index.  As in the paper's §3.5 setup, the index is
    *not* protected by the concurrency control: the benchmark only updates
    pre-inserted records, so the index is immutable during measurement. *)

type t

val tuple_size : int
(** 100 bytes, as in the paper. *)

val create : num_rows:int -> t
(** Build and prefill [num_rows] rows keyed 0 .. num_rows-1. *)

val num_rows : t -> int

val lookup : t -> int -> int
(** Row id for a key (the sequential hash-index probe).
    @raise Not_found for keys outside the prefilled range. *)

val payload : t -> int -> Bytes.t
(** The mutable 100-byte tuple of a row id.  Concurrency control is the
    caller's job. *)

val balance : t -> int -> int
(** Bytes 0..7 of the tuple as a signed 64-bit little-endian balance —
    the conserved quantity of the crash-soak transfer workload. *)

val set_balance : t -> int -> int -> unit
