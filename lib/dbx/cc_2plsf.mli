(** 2PLSF applied to database records (§3.5): the paper's concurrency
    control at row granularity, using the same starvation-free
    reader-writer lock table as the STM, with a write-through undo log of
    tuple images. *)

include Cc_intf.CC

(** {2 Durability (DESIGN.md §15)} *)

val set_wal : t -> Twoplsf_wal.Wal.t option -> unit
(** Attach a write-ahead log: commits draw an LSN and publish redo
    records inside the commit window (write-locks held), then wait for
    the group-commit ack after releasing.  [None] detaches (in-memory
    mode, the default).  Set while no transactions are in flight. *)

val wal : t -> Twoplsf_wal.Wal.t option

(** {2 Read-only degradation (DESIGN.md §16)}

    When the attached WAL's device fails permanently, the engine flips
    into typed read-only mode: write transactions (and transfers) raise
    [Stm_intf.Degraded_read_only] — after a full rollback when the
    failure surfaced mid-commit — while read-only transactions keep
    serving from the in-memory table.  The flip is one-way for the
    engine's lifetime; service resumes by recovering into a fresh
    engine on a healthy device. *)

val degraded_reason : t -> string option
(** [Some reason] once the engine is read-only. *)

val readonly_rejects : t -> int
(** Write transactions refused (or failed over) since degradation. *)

val wal_store : Table.t -> Twoplsf_wal.Wal.store
(** The table viewed as a WAL store (live payload bytes, no copies) —
    pass to [Wal.create] / [Wal.recover]. *)

val execute_transfer : t -> tid:int -> src:int -> dst:int -> amount:int -> int
(** Run a conserved-transfer transaction (move [amount] between the
    balances of rows keyed [src] and [dst]) to commit; returns the
    aborted-attempt count.  The crash-soak workload: the sum of all
    balances is invariant under any serial order, so it must survive
    recovery exactly. *)
