let tuple_size = 100

type t = {
  payloads : Bytes.t array; (* indexed by row id *)
  buckets : int array; (* open addressing: key's slot holds row id, -1 empty *)
  bucket_mask : int;
  keys : int array; (* row id -> key, to verify probe hits *)
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let hash_key k = (k * 0x2545F4914F6CDD1D) land max_int

let create ~num_rows =
  let cap = next_pow2 (2 * num_rows) in
  let t =
    {
      payloads = Array.init num_rows (fun i -> Bytes.make tuple_size (Char.chr (i land 0xFF)));
      buckets = Array.make cap (-1);
      bucket_mask = cap - 1;
      keys = Array.init num_rows (fun i -> i);
    }
  in
  for rid = 0 to num_rows - 1 do
    let key = t.keys.(rid) in
    let rec place slot =
      if t.buckets.(slot) = -1 then t.buckets.(slot) <- rid
      else place ((slot + 1) land t.bucket_mask)
    in
    place (hash_key key land t.bucket_mask)
  done;
  t

let num_rows t = Array.length t.payloads

let lookup t key =
  let rec probe slot =
    match t.buckets.(slot) with
    | -1 -> raise Not_found
    | rid when t.keys.(rid) = key -> rid
    | _ -> probe ((slot + 1) land t.bucket_mask)
  in
  probe (hash_key key land t.bucket_mask)

let payload t rid = t.payloads.(rid)

(* The conserved-transfer workload (crash soak, DESIGN.md §15) treats
   bytes 0..7 of each tuple as a signed 64-bit little-endian balance. *)
let balance t rid = Int64.to_int (Bytes.get_int64_le t.payloads.(rid) 0)
let set_balance t rid v = Bytes.set_int64_le t.payloads.(rid) 0 (Int64.of_int v)
