(** Comparator for BENCH_*.json artifacts: pairs rows across two
    artifacts by identity (figure/stm/structure/mix/threads), computes
    per-metric regression percentages (throughput down and latency up
    are regressions) and flags breaches past a threshold.  Wrapped by
    [bin/benchdiff.exe], which exits non-zero on any breach. *)

type direction = Higher_better | Lower_better

type entry = {
  key : string;
  metric : string;
  old_v : float;
  new_v : float;
  delta_pct : float;  (** signed; positive = regression *)
  breach : bool;
}

type result = {
  entries : entry list;
  breaches : int;
  missing : string list;  (** row keys present in old, absent in new *)
  added : string list;
  warnings : string list;
      (** non-fatal compatibility notes: cross-schema comparison,
          conflict section present on only one side *)
}

exception Incompatible of string
(** Unknown schema version, or not a BENCH artifact.  Comparing two
    {e known} but different versions (v1 vs v2) is not an error: absent
    metrics are skipped and a warning is recorded instead. *)

val regression_pct : direction -> old_v:float -> new_v:float -> float

val compare_docs : threshold_pct:float -> Json.t -> Json.t -> result
val compare_files : threshold_pct:float -> string -> string -> result

val print_report : ?out:out_channel -> threshold_pct:float -> result -> unit
