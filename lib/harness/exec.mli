(** Multi-domain benchmark execution.

    Spawns one OCaml domain per worker, registers a dense thread id in
    each, releases all workers through a start barrier, and measures
    wall-clock throughput over a fixed duration.  This host has a single
    hardware core (DESIGN.md §3.1): domains are OS threads time-sliced on
    it, so throughput numbers measure concurrency-control efficiency under
    interleaving, not parallel speedup.

    Crash containment: a worker that raises does not take the run down
    half-joined.  Every domain is joined, every Tid slot is released (via
    [Fun.protect]), and only then is the first captured exception
    re-raised.  The start barrier cannot hang even if Tid registration
    itself fails in a worker. *)

type result = {
  ops : int;  (** operations committed across all workers *)
  seconds : float;  (** measured wall-clock duration *)
  throughput : float;  (** [ops /. seconds] *)
}

val run_timed :
  threads:int -> seconds:float -> (int -> (unit -> bool) -> int) -> result
(** [run_timed ~threads ~seconds worker]: each worker is called as
    [worker i should_stop] after the barrier and must loop until
    [should_stop ()] returns [true], returning its completed-operation
    count.  If a worker raised, all domains are still joined (and their
    Tid slots released) before the first exception is re-raised. *)

val run_each : threads:int -> (int -> 'a) -> 'a list
(** Spawn [threads] domains, register thread ids, release them through the
    barrier, run [f i] once in each and join all results (test helper for
    deterministic concurrent scenarios).  Re-raises the first worker
    exception, but only after every domain has been joined. *)

val run_each_results : threads:int -> (int -> 'a) -> ('a, exn) Result.t list
(** Like {!run_each} but never raises: each worker's outcome is returned
    as [Ok v] or [Error e] in spawn order, so a test can assert that one
    worker's crash left its siblings intact. *)
