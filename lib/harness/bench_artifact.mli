(** The schema-versioned BENCH_<n>.json benchmark artifact (DESIGN.md
    §12).

    {!Report.row} records every figure data row here (and the overload /
    latency runners record theirs); the bench CLI calls {!write} once at
    exit, producing the machine-readable artifact [bin/benchdiff.exe]
    compares across commits.  Rows carry throughput, commit/abort/clock
    counters and — when telemetry was on — p50/p99/p999 transaction
    latency, the abort taxonomy, the phase decomposition with its
    coverage ratio (partition-sum / txn_total_ns) and the wasted-retry
    fraction. *)

val schema_version : int

val reset : unit -> unit
val any : unit -> bool

val record_row : figure:string -> Driver.row -> unit

val record_latency :
  figure:string ->
  stm:string ->
  threads:int ->
  throughput:float ->
  p50_ms:float ->
  p90_ms:float ->
  p99_ms:float ->
  max_ms:float ->
  unit

val record_overload :
  stm:string ->
  ops:int ->
  starved:int ->
  deadline_raises:int ->
  fallbacks:int ->
  leaked:int ->
  sum_ok:bool ->
  p50_ms:float ->
  p99_ms:float ->
  p999_ms:float ->
  unit

val record_wal : (string * int) list -> unit
(** Record the durability counters for the "wal" section (schema v3):
    crash-soak cycle/kill/torn-tail/replay summary or a live run's
    {!Twoplsf_wal.Wal.metrics}-style counters.  Replaces any previous
    recording; the section is omitted from the artifact when nothing
    was recorded. *)

val default_path : unit -> string
(** First free [BENCH_<n>.json] in the working directory. *)

val commit_id : unit -> string
(** Best-effort git HEAD commit ("unknown" outside a checkout). *)

val write : path:string -> flags:string -> unit
(** Write the artifact (schema version, commit, [flags] = the CLI
    invocation, host facts, and everything recorded since {!reset}). *)
