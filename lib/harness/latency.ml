type t = float Util.Vec.t array

let create ~threads = Array.init threads (fun _ -> Util.Vec.create ~dummy:0. ())
let record t i seconds = Util.Vec.push t.(i) seconds
let count t = Array.fold_left (fun acc v -> acc + Util.Vec.length v) 0 t

let merged t =
  let n = count t in
  let out = Array.make n 0. in
  let pos = ref 0 in
  Array.iter
    (fun v ->
      Util.Vec.iter
        (fun x ->
          out.(!pos) <- x;
          incr pos)
        v)
    t;
  out

let percentiles t ps = Util.Stats.percentiles_in_place (merged t) ps
let max_latency t =
  let m = merged t in
  if Array.length m = 0 then 0. else Util.Stats.max m
