type result = { ops : int; seconds : float; throughput : float }

let await_flag flag =
  let b = Util.Backoff.create () in
  while not (Atomic.get flag) do
    Util.Backoff.once b
  done

(* Crash containment: each worker catches its own exception instead of
   letting it escape the domain, always counts itself into [ready] (the
   start barrier must not hang even if Tid registration fails), and always
   releases its Tid slot (a crashed worker must not leak a dense id —
   64 crashes would otherwise exhaust the table for the whole process). *)
let spawn_all threads body =
  (* Tell Stm_intf a worker cohort is live: install_policy asserts (in
     debug builds) that the overload policy never changes while workers
     may be consulting it. *)
  Stm_intf.workers_started ();
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let doms =
    List.init threads (fun i ->
        Domain.spawn (fun () ->
            match Util.Tid.register () with
            | exception e ->
                Atomic.incr ready;
                Error e
            | _tid ->
                Atomic.incr ready;
                Fun.protect ~finally:Util.Tid.release (fun () ->
                    await_flag go;
                    match body i with v -> Ok v | exception e -> Error e)))
  in
  let b = Util.Backoff.create () in
  while Atomic.get ready < threads do
    Util.Backoff.once b
  done;
  (go, doms)

(* The wrapper above never lets an exception escape the domain, so join
   itself cannot raise; belt-and-braces for asynchronous exceptions. *)
let join_all doms =
  let outcomes =
    List.map
      (fun d -> match Domain.join d with o -> o | exception e -> Error e)
      doms
  in
  Stm_intf.workers_finished ();
  outcomes

let reraise_first outcomes =
  List.iter (function Error e -> raise e | Ok _ -> ()) outcomes

let run_each_results ~threads f =
  let go, doms = spawn_all threads f in
  Atomic.set go true;
  join_all doms

let run_each ~threads f =
  let outcomes = run_each_results ~threads f in
  reraise_first outcomes;
  List.map (function Ok v -> v | Error e -> raise e) outcomes

let run_timed ~threads ~seconds worker =
  let stop = Atomic.make false in
  let should_stop () = Atomic.get stop in
  let go, doms = spawn_all threads (fun i -> worker i should_stop) in
  let t0 = Util.Clock.now () in
  Atomic.set go true;
  Unix.sleepf seconds;
  Atomic.set stop true;
  let t1 = Util.Clock.now () in
  let outcomes = join_all doms in
  reraise_first outcomes;
  let ops =
    List.fold_left
      (fun acc -> function Ok n -> acc + n | Error _ -> acc)
      0 outcomes
  in
  let elapsed = t1 -. t0 in
  { ops; seconds = elapsed; throughput = float_of_int ops /. elapsed }
