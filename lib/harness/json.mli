(** Minimal hand-rolled JSON (the build has no JSON library): enough for
    the BENCH_*.json artifacts and their comparator. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} with an offset on malformed input. *)

val parse_file : string -> t

(** {2 Accessors} — [None] on missing key or wrong shape. *)

val mem : t -> string -> t option
val str : t -> string option
val num : t -> float option
val arr : t -> t list option
val obj : t -> (string * t) list option
val str_field : t -> string -> string option
val num_field : t -> string -> float option
val int_field : t -> string -> int option
val arr_field : t -> string -> t list option
val obj_field : t -> string -> (string * t) list option

(** {2 Writing} *)

val to_string : t -> string
(** Compact (single-line) rendering; integral floats print as integers. *)

val of_counts : (string * int) list -> t
(** Labelled counts as an object of integer fields. *)
