(* The schema-versioned BENCH_<n>.json benchmark artifact (DESIGN.md
   §12): every figure / overload run records its rows here and the bench
   CLI writes one machine-readable file per invocation, which
   [Benchdiff] (bin/benchdiff.exe) compares across commits.

   Recording happens on the main thread (the report printer), so plain
   mutable lists suffice.  Schema changes must bump [schema_version];
   the comparator warns (and skips absent fields) across known versions
   rather than guessing silently.

   v1 -> v2: added the "conflicts" section (per-scope conflict
   cartography: hot-lock sketch, abort-provenance matrix, DESIGN.md
   §13).

   v2 -> v3: added the "wal" section (durability counters — crash-soak
   cycle/kill/torn-tail/replay summary, DESIGN.md §15). *)

let schema_version = 3

type latency_entry = {
  l_figure : string;
  l_stm : string;
  l_threads : int;
  l_throughput : float;
  l_p50_ms : float;
  l_p90_ms : float;
  l_p99_ms : float;
  l_max_ms : float;
}

type overload_entry = {
  o_stm : string;
  o_ops : int;
  o_starved : int;
  o_deadline_raises : int;
  o_fallbacks : int;
  o_leaked : int;
  o_sum_ok : bool;
  o_p50_ms : float;
  o_p99_ms : float;
  o_p999_ms : float;
}

let rows : (string * Driver.row) list ref = ref []
let latency_rows : latency_entry list ref = ref []
let overload_rows : overload_entry list ref = ref []
let wal_counters : (string * int) list ref = ref []

let reset () =
  rows := [];
  latency_rows := [];
  overload_rows := [];
  wal_counters := []

let any () =
  !rows <> [] || !latency_rows <> [] || !overload_rows <> []
  || !wal_counters <> []

let record_row ~figure (r : Driver.row) = rows := (figure, r) :: !rows

let record_latency ~figure ~stm ~threads ~throughput ~p50_ms ~p90_ms ~p99_ms
    ~max_ms =
  latency_rows :=
    {
      l_figure = figure;
      l_stm = stm;
      l_threads = threads;
      l_throughput = throughput;
      l_p50_ms = p50_ms;
      l_p90_ms = p90_ms;
      l_p99_ms = p99_ms;
      l_max_ms = max_ms;
    }
    :: !latency_rows

let record_overload ~stm ~ops ~starved ~deadline_raises ~fallbacks ~leaked
    ~sum_ok ~p50_ms ~p99_ms ~p999_ms =
  overload_rows :=
    {
      o_stm = stm;
      o_ops = ops;
      o_starved = starved;
      o_deadline_raises = deadline_raises;
      o_fallbacks = fallbacks;
      o_leaked = leaked;
      o_sum_ok = sum_ok;
      o_p50_ms = p50_ms;
      o_p99_ms = p99_ms;
      o_p999_ms = p999_ms;
    }
    :: !overload_rows

let record_wal counters = wal_counters := counters

(* Best-effort commit id: .git/HEAD, following one level of symref. *)
let commit_id () =
  let read_line_of path =
    match open_in path with
    | ic ->
        let line = try input_line ic with End_of_file -> "" in
        close_in ic;
        Some (String.trim line)
    | exception Sys_error _ -> None
  in
  match read_line_of ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then
        let r = String.sub head 5 (String.length head - 5) in
        Option.value (read_line_of (Filename.concat ".git" r))
          ~default:"unknown"
      else head

(* First free BENCH_<n>.json in the working directory. *)
let default_path () =
  let rec go n =
    let p = Printf.sprintf "BENCH_%d.json" n in
    if Sys.file_exists p then go (n + 1) else p
  in
  go 1

let phase_sum keys phases =
  List.fold_left
    (fun acc ph ->
      acc
      + Option.value ~default:0
          (List.assoc_opt (Twoplsf_obs.Phase.label ph) phases))
    0 keys

let json_of_row (figure, (r : Driver.row)) =
  let t = r.Driver.telemetry in
  let partition_ns =
    phase_sum Twoplsf_obs.Phase.partition t.Driver.phases
  in
  let wasted_ns =
    phase_sum [ Twoplsf_obs.Phase.Wasted_retry ] t.Driver.phases
  in
  let frac num den = if den > 0 then float_of_int num /. float_of_int den else 0. in
  Json.Obj
    ([
       ("figure", Json.Str figure);
       ("stm", Json.Str r.stm);
       ("structure", Json.Str r.structure);
       ("mix", Json.Str r.mix);
       ("threads", Json.Num (float_of_int r.threads));
       ("throughput", Json.Num r.throughput);
       ("commits", Json.Num (float_of_int r.commits));
       ("aborts", Json.Num (float_of_int r.aborts));
       ("clock_ops", Json.Num (float_of_int r.clock_ops));
     ]
    @
    if t.Driver.phases = [] then []
    else
      [
        ("p50_ns", Json.Num (float_of_int t.p50_ns));
        ("p99_ns", Json.Num (float_of_int t.p99_ns));
        ("p999_ns", Json.Num (float_of_int t.p999_ns));
        ("abort_reasons", Json.of_counts r.abort_reasons);
        ("phases_ns", Json.of_counts t.phases);
        ("txn_total_ns", Json.Num (float_of_int t.txn_total_ns));
        ("phase_coverage", Json.Num (frac partition_ns t.txn_total_ns));
        ("wasted_retry_frac", Json.Num (frac wasted_ns t.txn_total_ns));
      ])

let json_of_latency (l : latency_entry) =
  Json.Obj
    [
      ("figure", Json.Str l.l_figure);
      ("stm", Json.Str l.l_stm);
      ("threads", Json.Num (float_of_int l.l_threads));
      ("throughput", Json.Num l.l_throughput);
      ("p50_ms", Json.Num l.l_p50_ms);
      ("p90_ms", Json.Num l.l_p90_ms);
      ("p99_ms", Json.Num l.l_p99_ms);
      ("max_ms", Json.Num l.l_max_ms);
    ]

let json_of_overload (o : overload_entry) =
  Json.Obj
    [
      ("stm", Json.Str o.o_stm);
      ("ops", Json.Num (float_of_int o.o_ops));
      ("starved", Json.Num (float_of_int o.o_starved));
      ("deadline_raises", Json.Num (float_of_int o.o_deadline_raises));
      ("fallbacks", Json.Num (float_of_int o.o_fallbacks));
      ("leaked", Json.Num (float_of_int o.o_leaked));
      ("sum_ok", Json.Bool o.o_sum_ok);
      ("p50_ms", Json.Num o.o_p50_ms);
      ("p99_ms", Json.Num o.o_p99_ms);
      ("p999_ms", Json.Num o.o_p999_ms);
    ]

(* Conflict-cartography section, read from the live scopes at write
   time (the cartography is cumulative across the whole run).  One
   object per scope with any attributed mass or provenance edges. *)
let json_of_conflicts () =
  let module C = Twoplsf_obs.Conflict in
  let module S = Twoplsf_obs.Scope in
  List.filter_map
    (fun sc ->
      let c = S.conflict sc in
      let total = C.total_weight_ns c in
      let edges = C.edges_total c in
      if total = 0 && edges = 0 then None
      else begin
        let share w =
          if total > 0 then float_of_int w /. float_of_int total else 0.
        in
        let hots = C.top c in
        let locks =
          List.map
            (fun (h : C.hot) ->
              Json.Obj
                [
                  ("lock", Json.Num (float_of_int h.lock));
                  ("attributed_ns", Json.Num (float_of_int h.weight_ns));
                  ("err_ns", Json.Num (float_of_int h.err_ns));
                  ("share", Json.Num (share h.weight_ns));
                  ("hits", Json.Num (float_of_int h.hits));
                  ("read_wait_ns", Json.Num (float_of_int h.read_wait_ns));
                  ("write_wait_ns", Json.Num (float_of_int h.write_wait_ns));
                  ("aborts", Json.Num (float_of_int h.aborts));
                ])
            hots
        in
        (* Non-zero matrix cells as [victim, aborter, count]; aborter -1
           encodes the unknown column. *)
        let m = C.matrix c in
        let cells = ref [] in
        for v = Array.length m - 1 downto 0 do
          let row = m.(v) in
          let unknown = Array.length row - 1 in
          for a = unknown downto 0 do
            if row.(a) > 0 then
              cells :=
                Json.Arr
                  [
                    Json.Num (float_of_int v);
                    Json.Num (float_of_int (if a = unknown then -1 else a));
                    Json.Num (float_of_int row.(a));
                  ]
                :: !cells
          done
        done;
        let top_lock, top_share =
          match hots with
          | h :: _ -> (h.C.lock, share h.C.weight_ns)
          | [] -> (-1, 0.)
        in
        Some
          (Json.Obj
             [
               ("scope", Json.Str (S.name sc));
               ("total_attributed_ns", Json.Num (float_of_int total));
               ( "total_wait_ns",
                 Json.Num (float_of_int (C.total_wait_ns c)) );
               ("edges_total", Json.Num (float_of_int edges));
               ("edges_by_reason", Json.of_counts (C.edges_by_reason c));
               ("asymmetry", Json.Num (C.asymmetry c));
               ("top_lock", Json.Num (float_of_int top_lock));
               ("top_lock_share", Json.Num top_share);
               ("locks", Json.Arr locks);
               ("matrix", Json.Arr !cells);
             ])
      end)
    (S.all ())

let host_json () =
  Json.Obj
    [
      ("hostname", Json.Str (try Unix.gethostname () with _ -> "unknown"));
      ("os", Json.Str Sys.os_type);
      ("ocaml", Json.Str Sys.ocaml_version);
      ("word_size", Json.Num (float_of_int Sys.word_size));
      ( "cores",
        Json.Num (float_of_int (Domain.recommended_domain_count ())) );
    ]

let write ~path ~flags =
  let doc =
    Json.Obj
      ([
        ("schema_version", Json.Num (float_of_int schema_version));
        ("created_at_unix", Json.Num (Unix.time ()));
        ("commit", Json.Str (commit_id ()));
        ("flags", Json.Str flags);
        ("host", host_json ());
        ("telemetry", Json.Bool (Twoplsf_obs.Telemetry.enabled ()));
        ("rows", Json.Arr (List.rev_map json_of_row !rows));
        ("latency_rows", Json.Arr (List.rev_map json_of_latency !latency_rows));
        ("overload", Json.Arr (List.rev_map json_of_overload !overload_rows));
        ("conflicts", Json.Arr (json_of_conflicts ()));
      ]
      @
      (* Absent (not empty) when the run had no WAL: benchdiff treats a
         one-sided wal section as a warning-and-skip, like conflicts. *)
      if !wal_counters = [] then []
      else
        [
          ( "wal",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Num (float_of_int v)))
                 !wal_counters) );
        ])
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc
