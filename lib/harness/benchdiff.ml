(* Comparator for BENCH_*.json artifacts (DESIGN.md §12): pairs rows of
   two artifacts by identity key, computes per-metric relative deltas in
   the metric's "worse" direction (throughput down = worse, latency up =
   worse) and flags breaches past a threshold.  bin/benchdiff.exe wraps
   this as a CLI that exits non-zero on any breach, so CI can gate on a
   regression against bench/baseline.json. *)

type direction = Higher_better | Lower_better

type entry = {
  key : string;  (* row identity: figure/stm/structure/mix/threads *)
  metric : string;
  old_v : float;
  new_v : float;
  delta_pct : float;  (* signed; positive = regression *)
  breach : bool;
}

type result = {
  entries : entry list;
  breaches : int;
  missing : string list;  (* row keys present in old, absent in new *)
  added : string list;
  warnings : string list;
      (* non-fatal compatibility notes, e.g. cross-schema comparisons *)
}

(* Signed regression percentage: positive means the new value is worse.
   A metric appearing from 0 (e.g. a latency percentile that was 0) is
   not comparable — report 0 delta rather than infinity. *)
let regression_pct dir ~old_v ~new_v =
  if old_v = 0. then 0.
  else
    let change = (new_v -. old_v) /. Float.abs old_v *. 100. in
    match dir with Higher_better -> -.change | Lower_better -> change

let compare_metric ~threshold_pct ~key ~metric dir ~old_v ~new_v =
  let delta_pct = regression_pct dir ~old_v ~new_v in
  { key; metric; old_v; new_v; delta_pct; breach = delta_pct > threshold_pct }

(* ---- row pairing ---- *)

let row_key o =
  Printf.sprintf "%s/%s/%s/%s/t=%s"
    (Option.value ~default:"" (Json.str_field o "figure"))
    (Option.value ~default:"" (Json.str_field o "stm"))
    (Option.value ~default:"" (Json.str_field o "structure"))
    (Option.value ~default:"" (Json.str_field o "mix"))
    (match Json.int_field o "threads" with
    | Some t -> string_of_int t
    | None -> "?")

let overload_key o =
  Printf.sprintf "overload/%s"
    (Option.value ~default:"" (Json.str_field o "stm"))

let latency_key o =
  Printf.sprintf "%s/%s/t=%s latency"
    (Option.value ~default:"" (Json.str_field o "figure"))
    (Option.value ~default:"" (Json.str_field o "stm"))
    (match Json.int_field o "threads" with
    | Some t -> string_of_int t
    | None -> "?")

let conflict_key o =
  Printf.sprintf "conflicts/%s"
    (Option.value ~default:"" (Json.str_field o "scope"))

(* The thresholded metric set per row family.  Abort counts and phase
   splits are diagnostic, not gates — they explain a regression, they
   are not one. *)
let row_metrics =
  [
    ("throughput", Higher_better);
    ("p50_ns", Lower_better);
    ("p99_ns", Lower_better);
    ("p999_ns", Lower_better);
  ]

let overload_metrics =
  [ ("ops", Higher_better); ("p99_ms", Lower_better); ("p999_ms", Lower_better) ]

let latency_metrics =
  [ ("throughput", Higher_better); ("p99_ms", Lower_better) ]

(* Conflict-cartography deltas (schema v2): purely informational — a
   shift in hotspot concentration explains a regression, it is not one.
   Compared with an infinite threshold so they can never breach. *)
let conflict_metrics =
  [ ("top_lock_share", Lower_better); ("asymmetry", Lower_better) ]

(* Durability counters (schema v3): also informational-only.  Crash
   counts and replay volumes vary with kill timing run to run; a delta
   explains behaviour, it never gates.  "violations" is deliberately
   excluded — the crash soak itself already exits non-zero on one. *)
let wal_metrics =
  [
    ("crash_cycles", Higher_better);
    ("killed", Higher_better);
    ("clean", Higher_better);
    ("torn_tails", Lower_better);
    ("records_seen", Higher_better);
    ("records_replayed", Higher_better);
  ]

let index key_of docs =
  List.filter_map
    (fun o ->
      match o with Json.Obj _ -> Some (key_of o, o) | _ -> None)
    docs

let compare_family ~threshold_pct ~key_of ~metrics old_list new_list =
  let old_idx = index key_of old_list and new_idx = index key_of new_list in
  let entries =
    List.concat_map
      (fun (key, old_row) ->
        match List.assoc_opt key new_idx with
        | None -> []
        | Some new_row ->
            List.filter_map
              (fun (metric, dir) ->
                match
                  ( Json.num_field old_row metric,
                    Json.num_field new_row metric )
                with
                | Some old_v, Some new_v ->
                    Some
                      (compare_metric ~threshold_pct ~key ~metric dir ~old_v
                         ~new_v)
                | _ -> None)
              metrics)
      old_idx
  in
  let missing =
    List.filter_map
      (fun (k, _) ->
        if List.mem_assoc k new_idx then None else Some k)
      old_idx
  in
  let added =
    List.filter_map
      (fun (k, _) ->
        if List.mem_assoc k old_idx then None else Some k)
      new_idx
  in
  (entries, missing, added)

exception Incompatible of string

(* Every schema version this comparator understands.  Comparing two
   known-but-different versions is allowed (fields absent in one side
   are skipped) and reported as a warning; an unknown version is still a
   hard error — guessing at a future schema would gate on garbage. *)
let known_schema_versions = [ 1; 2; 3 ]

let check_schema doc =
  match Json.int_field doc "schema_version" with
  | Some v when List.mem v known_schema_versions -> v
  | Some v ->
      raise
        (Incompatible
           (Printf.sprintf "artifact schema_version %d, known versions %s" v
              (String.concat ", "
                 (List.map string_of_int known_schema_versions))))
  | None -> raise (Incompatible "not a BENCH artifact (no schema_version)")

let compare_docs ~threshold_pct old_doc new_doc =
  let old_v = check_schema old_doc and new_v = check_schema new_doc in
  let warnings = ref [] in
  if old_v <> new_v then
    warnings :=
      Printf.sprintf
        "comparing schema v%d against v%d: metrics absent in either \
         version are skipped"
        old_v new_v
      :: !warnings;
  let family ?(threshold_pct = threshold_pct) field key_of metrics =
    compare_family ~threshold_pct ~key_of ~metrics
      (Option.value ~default:[] (Json.arr_field old_doc field))
      (Option.value ~default:[] (Json.arr_field new_doc field))
  in
  let r1, m1, a1 = family "rows" row_key row_metrics in
  let r2, m2, a2 = family "overload" overload_key overload_metrics in
  let r3, m3, a3 = family "latency_rows" latency_key latency_metrics in
  (* Conflict sections only exist from v2 on; when exactly one side has
     one, skip the family entirely (rather than flooding missing/added)
     and say so. *)
  let has_conflicts doc =
    match Json.arr_field doc "conflicts" with
    | Some (_ :: _) -> true
    | Some [] | None -> false
  in
  let r4, m4, a4 =
    match (has_conflicts old_doc, has_conflicts new_doc) with
    | true, true ->
        family ~threshold_pct:infinity "conflicts" conflict_key
          conflict_metrics
    | false, false -> ([], [], [])
    | old_has, _ ->
        warnings :=
          Printf.sprintf
            "conflict cartography present only in the %s artifact \
             (schema v1, or --conflict-map off): deltas skipped"
            (if old_has then "old" else "new")
          :: !warnings;
        ([], [], [])
  in
  (* The wal section (v3) is a single object, not an array: wrap it as
     a one-row family under the fixed key "wal".  Same one-sided rule as
     conflicts — warn and skip rather than flooding missing/added. *)
  let wal_obj doc =
    match Json.mem doc "wal" with
    | Some (Json.Obj _ as o) -> Some o
    | _ -> None
  in
  let r5 =
    match (wal_obj old_doc, wal_obj new_doc) with
    | Some o, Some n ->
        let e, _, _ =
          compare_family ~threshold_pct:infinity
            ~key_of:(fun _ -> "wal")
            ~metrics:wal_metrics [ o ] [ n ]
        in
        e
    | None, None -> []
    | old_has, _ ->
        warnings :=
          Printf.sprintf
            "wal section present only in the %s artifact (schema < 3, or \
             no durable run): deltas skipped"
            (if old_has <> None then "old" else "new")
          :: !warnings;
        []
  in
  let entries = r1 @ r2 @ r3 @ r4 @ r5 in
  {
    entries;
    breaches = List.length (List.filter (fun e -> e.breach) entries);
    missing = m1 @ m2 @ m3 @ m4;
    added = a1 @ a2 @ a3 @ a4;
    warnings = List.rev !warnings;
  }

let compare_files ~threshold_pct old_path new_path =
  compare_docs ~threshold_pct (Json.parse_file old_path)
    (Json.parse_file new_path)

(* ---- reporting ---- *)

let print_report ?(out = stdout) ~threshold_pct r =
  let p fmt = Printf.fprintf out fmt in
  List.iter (fun w -> p "warning: %s\n" w) r.warnings;
  p "%-52s %-12s %14s %14s %9s\n" "row" "metric" "old" "new" "delta";
  List.iter
    (fun e ->
      p "%-52s %-12s %14.1f %14.1f %+8.1f%%%s\n" e.key e.metric e.old_v
        e.new_v (-.e.delta_pct)
        (if e.breach then "  << REGRESSION" else ""))
    r.entries;
  List.iter (fun k -> p "missing in new artifact: %s\n" k) r.missing;
  List.iter (fun k -> p "only in new artifact:    %s\n" k) r.added;
  if r.breaches > 0 then
    p "%d metric(s) regressed more than %.1f%%\n" r.breaches threshold_pct
  else p "no regression past %.1f%% across %d compared metric(s)\n"
      threshold_pct (List.length r.entries)
