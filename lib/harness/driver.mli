(** Generic set/map microbenchmark driver.

    Instantiates one of the five transactional data structures over any
    STM (passed as a first-class module), prefills it to 50% occupancy of
    the key range, runs the requested operation mix from N worker domains
    for a fixed duration and reports throughput plus commit/abort counts —
    one call produces one data point of Figures 2–8. *)

type structure_kind = List_s | Hash_s | Skip_s | Zip_s | Ravl_s

val structure_label : structure_kind -> string

type txn_telemetry = {
  phases : (string * int) list;
      (** latency decomposition for the run, in {!Twoplsf_obs.Phase.all}
          order (ns); [[]] when telemetry is off *)
  txn_total_ns : int;
      (** exact sum of whole-transaction durations — the denominator the
          partition phases are measured against *)
  p50_ns : int;  (** transaction-latency percentile bucket upper bounds *)
  p99_ns : int;
  p999_ns : int;
}

val no_telemetry : txn_telemetry
(** All-zero summary (telemetry disabled / no scope). *)

val telemetry_of : string -> txn_telemetry
(** Current-window phase breakdown and latency percentiles of the named
    scope (same windowing as the abort-reason breakdown). *)

val telemetry_of_scope : Twoplsf_obs.Scope.t -> txn_telemetry

type row = {
  stm : string;
  structure : string;
  mix : string;
  threads : int;
  throughput : float;  (** committed operations per second *)
  commits : int;
  aborts : int;
  clock_ops : int;
      (** central-clock increments during the run (see {!Stm_intf.STM}) *)
  abort_reasons : (string * int) list;
      (** telemetry abort-reason breakdown for this run, in taxonomy order;
          [[]] when telemetry is disabled or the STM publishes no scope *)
  telemetry : txn_telemetry;
      (** phase decomposition + latency percentiles for this run *)
}

val run_set_bench :
  stm:(module Stm_intf.STM) ->
  structure:structure_kind ->
  mix:Workload.mix ->
  range:int ->
  threads:int ->
  seconds:float ->
  row
(** Set benchmark (unit values): the Figures 2–7 workloads. *)

val run_map_bench :
  stm:(module Stm_intf.STM) ->
  structure:structure_kind ->
  range:int ->
  threads:int ->
  seconds:float ->
  row
(** Map benchmark: 100-byte records, 1% insert / 1% remove / 98% update —
    Figure 8. *)
