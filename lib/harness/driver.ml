module Chaos = Twoplsf_chaos.Chaos

type structure_kind = List_s | Hash_s | Skip_s | Zip_s | Ravl_s

let structure_label = function
  | List_s -> "linked-list"
  | Hash_s -> "hash-map"
  | Skip_s -> "skip-list"
  | Zip_s -> "zip-tree"
  | Ravl_s -> "ravl-tree"

type txn_telemetry = {
  phases : (string * int) list;
  txn_total_ns : int;
  p50_ns : int;
  p99_ns : int;
  p999_ns : int;
}

let no_telemetry =
  { phases = []; txn_total_ns = 0; p50_ns = 0; p99_ns = 0; p999_ns = 0 }

type row = {
  stm : string;
  structure : string;
  mix : string;
  threads : int;
  throughput : float;
  commits : int;
  aborts : int;
  clock_ops : int;
  abort_reasons : (string * int) list;
  telemetry : txn_telemetry;
}

(* Current-window abort breakdown of the STM's telemetry scope (the STM's
   [reset_stats] clears the window, so this covers exactly one run). *)
let abort_reasons_of name =
  if Twoplsf_obs.Telemetry.enabled () then
    match Twoplsf_obs.Scope.find name with
    | Some sc -> Twoplsf_obs.Scope.abort_counts sc
    | None -> []
  else []

(* Current-window phase breakdown and transaction-latency percentiles of
   one scope (same windowing contract as [abort_reasons_of]). *)
let telemetry_of_scope sc =
  let hist = Twoplsf_obs.Scope.window_hist_txn sc in
  let pct p = Twoplsf_obs.Histogram.percentile_upper_of_buckets hist p in
  {
    phases = Twoplsf_obs.Scope.phase_counts sc;
    txn_total_ns = Twoplsf_obs.Scope.txn_total_ns sc;
    p50_ns = pct 50.;
    p99_ns = pct 99.;
    p999_ns = pct 99.9;
  }

let telemetry_of name =
  if Twoplsf_obs.Telemetry.enabled () then
    match Twoplsf_obs.Scope.find name with
    | Some sc -> telemetry_of_scope sc
    | None -> no_telemetry
  else no_telemetry

(* The per-(STM, value) family of structures, seen through one record of
   closures so the driver can dispatch on [structure_kind] at runtime. *)
module Ops (S : Stm_intf.STM) (V : Structures.Map_intf.VALUE) = struct
  module Ll = Structures.Linked_list.Make (S) (V)
  module Hm = Structures.Hash_map.Make (S) (V)
  module Sk = Structures.Skiplist.Make (S) (V)
  module Zt = Structures.Ziptree.Make (S) (V)
  module Rv = Structures.Ravl.Make (S) (V)

  type ops = {
    put : int -> V.t -> bool;
    get : int -> V.t option;
    remove : int -> bool;
    update : int -> (V.t -> V.t) -> bool;
  }

  let make kind ~range =
    match kind with
    | List_s ->
        let t = Ll.create () in
        { put = Ll.put t; get = Ll.get t; remove = Ll.remove t; update = Ll.update t }
    | Hash_s ->
        (* Size buckets for a small constant load factor, as DBx1000 does. *)
        let buckets = Stdlib.max 64 (range / 4) in
        let t = Hm.create ~buckets () in
        { put = Hm.put t; get = Hm.get t; remove = Hm.remove t; update = Hm.update t }
    | Skip_s ->
        let t = Sk.create () in
        { put = Sk.put t; get = Sk.get t; remove = Sk.remove t; update = Sk.update t }
    | Zip_s ->
        let t = Zt.create () in
        { put = Zt.put t; get = Zt.get t; remove = Zt.remove t; update = Zt.update t }
    | Ravl_s ->
        let t = Rv.create () in
        { put = Rv.put t; get = Rv.get t; remove = Rv.remove t; update = Rv.update t }
end

let run_bench (type v) ~stm ~structure ~mix ~range ~threads ~seconds
    ~(value_of : Util.Sprng.t -> v) ~(mutate : v -> v) : row =
  let (module S : Stm_intf.STM) = stm in
  let module O =
    Ops
      (S)
      (struct
        type t = v
      end)
  in
  ignore (Util.Tid.register ());
  Twoplsf_obs.Monitor.set_phase
    (Printf.sprintf "%s/%s/%s/t=%d" S.name (structure_label structure)
       (Workload.mix_label mix) threads);
  let ops = O.make structure ~range in
  (* Prefill to 50% occupancy so insert/remove mixes run at steady state. *)
  let prefill_rng = Util.Sprng.create 1234 in
  for k = 0 to range - 1 do
    if k land 1 = 0 then ignore (ops.put k (value_of prefill_rng))
  done;
  S.reset_stats ();
  let worker i should_stop =
    let rng = Util.Sprng.create (0x51ED + i) in
    let n = ref 0 in
    while not (should_stop ()) do
      if !Chaos.on then Chaos.point Chaos.Harness_op;
      let k = Workload.key rng ~range in
      (match Workload.pick mix rng with
      | Workload.Insert -> ignore (ops.put k (value_of rng))
      | Workload.Remove -> ignore (ops.remove k)
      | Workload.Lookup -> ignore (ops.get k)
      | Workload.Update -> ignore (ops.update k mutate));
      incr n
    done;
    !n
  in
  let res = Exec.run_timed ~threads ~seconds worker in
  {
    stm = S.name;
    structure = structure_label structure;
    mix = Workload.mix_label mix;
    threads;
    throughput = res.throughput;
    commits = S.commits ();
    aborts = S.aborts ();
    clock_ops = S.clock_ops ();
    abort_reasons = abort_reasons_of S.name;
    telemetry = telemetry_of S.name;
  }

let run_set_bench ~stm ~structure ~mix ~range ~threads ~seconds =
  run_bench ~stm ~structure ~mix ~range ~threads ~seconds
    ~value_of:(fun _ -> ())
    ~mutate:(fun () -> ())

(* Figure 8 records: 100 bytes of user data; an update rewrites part of the
   payload (a fresh immutable copy, since the record is published through a
   tvar). *)
let record_size = 100

let run_map_bench ~stm ~structure ~range ~threads ~seconds =
  run_bench ~stm ~structure ~mix:Workload.map_update ~range ~threads ~seconds
    ~value_of:(fun rng ->
      Bytes.make record_size (Char.chr (Util.Sprng.int rng 256)))
    ~mutate:(fun b ->
      let b' = Bytes.copy b in
      Bytes.set b' 0 (Char.chr ((Char.code (Bytes.get b 0) + 1) land 0xFF));
      b')
