(* Minimal JSON: a hand-rolled parser and writer (the build environment
   has no JSON library, by design — see the repo's zero-dependency rule).
   Covers exactly what the BENCH artifacts and telemetry dumps need:
   objects, arrays, strings, numbers, booleans, null.  \uXXXX escapes
   outside the artifacts' ASCII field names are not reconstructed (the
   writer below never emits them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?'
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (elements [])
        end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---- accessors ---- *)

let mem obj k = match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str v = match v with Str s -> Some s | _ -> None
let num v = match v with Num f -> Some f | _ -> None
let arr v = match v with Arr l -> Some l | _ -> None
let obj v = match v with Obj kvs -> Some kvs | _ -> None

let str_field o k = Option.bind (mem o k) str
let num_field o k = Option.bind (mem o k) num
let arr_field o k = Option.bind (mem o k) arr
let obj_field o k = Option.bind (mem o k) obj

let int_field o k = Option.map int_of_float (num_field o k)

(* ---- writer ---- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (string_of_bool x)
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b x)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

let of_counts counts =
  Obj (List.map (fun (k, n) -> (k, Num (float_of_int n))) counts)
