let csv_chan : out_channel option ref = ref None
let current_figure = ref ""

let set_csv path =
  let oc = open_out path in
  output_string oc
    "figure,stm,structure,workload,threads,throughput,commits,aborts,clock_ops,p50_ms,p90_ms,p99_ms,max_ms,ar_read_lock,ar_write_lock,ar_preempt,ar_read_valid,ar_commit_lock,ar_commit_valid,ar_deadline,ar_user\n";
  csv_chan := Some oc

let num_reason_cols = Twoplsf_obs.Events.num_abort_reasons

(* The trailing abort-reason CSV cells, in taxonomy order (all empty when
   the run had no telemetry). *)
let reason_cells reasons =
  if reasons = [] then String.concat "" (List.init num_reason_cols (fun _ -> ","))
  else
    List.fold_left (fun acc (_, n) -> acc ^ "," ^ string_of_int n) "" reasons

let close_csv () =
  match !csv_chan with
  | Some oc ->
      close_out oc;
      csv_chan := None
  | None -> ()

let csv_line fmt =
  Printf.ksprintf
    (fun line ->
      match !csv_chan with
      | Some oc ->
          output_string oc line;
          output_char oc '\n'
      | None -> ())
    fmt

let figure_header ~id ~title =
  current_figure := id;
  Printf.printf "\n=== %s: %s ===\n%!" id title

let row_header () =
  Printf.printf "%-12s %-12s %-12s %8s %14s %12s %10s %10s\n%!" "stm"
    "structure" "workload" "threads" "ops/s" "commits" "aborts" "clock-ops"

let abort_breakdown reasons =
  List.filter (fun (_, n) -> n > 0) reasons
  |> List.map (fun (label, n) -> Printf.sprintf "%s=%d" label n)
  |> String.concat " "

(* One-line phase decomposition: only phases that actually accumulated
   time, as percentages of the transaction wall-clock total. *)
let phase_breakdown (t : Driver.txn_telemetry) =
  if t.txn_total_ns <= 0 then ""
  else
    List.filter (fun (_, ns) -> ns > 0) t.phases
    |> List.map (fun (label, ns) ->
           Printf.sprintf "%s=%.1f%%" label
             (100. *. float_of_int ns /. float_of_int t.txn_total_ns))
    |> String.concat " "

let row (r : Driver.row) =
  Printf.printf "%-12s %-12s %-12s %8d %14.0f %12d %10d %10d\n%!" r.stm
    r.structure r.mix r.threads r.throughput r.commits r.aborts r.clock_ops;
  let breakdown = abort_breakdown r.abort_reasons in
  if breakdown <> "" then Printf.printf "  aborts: %s\n%!" breakdown;
  let phases = phase_breakdown r.telemetry in
  if phases <> "" then
    Printf.printf "  phases: %s  p50=%s p99=%s\n%!" phases
      (Twoplsf_obs.Histogram.pp_ns r.telemetry.p50_ns)
      (Twoplsf_obs.Histogram.pp_ns r.telemetry.p99_ns);
  Bench_artifact.record_row ~figure:!current_figure r;
  csv_line "%s,%s,%s,%s,%d,%.0f,%d,%d,%d,,,,%s" !current_figure r.stm
    r.structure r.mix r.threads r.throughput r.commits r.aborts r.clock_ops
    (reason_cells r.abort_reasons)

let latency_header () =
  Printf.printf "%-12s %8s %14s %12s %12s %12s %12s\n%!" "stm" "threads"
    "ops/s" "p50(ms)" "p90(ms)" "p99(ms)" "max(ms)"

let ms x = 1000. *. x

let latency_row ~stm ~threads ~throughput ~p50 ~p90 ~p99 ~max =
  Printf.printf "%-12s %8d %14.0f %12.3f %12.3f %12.3f %12.3f\n%!" stm threads
    throughput (ms p50) (ms p90) (ms p99) (ms max);
  Bench_artifact.record_latency ~figure:!current_figure ~stm ~threads
    ~throughput ~p50_ms:(ms p50) ~p90_ms:(ms p90) ~p99_ms:(ms p99)
    ~max_ms:(ms max);
  csv_line "%s,%s,,,%d,%.0f,,,,%.4f,%.4f,%.4f,%.4f%s" !current_figure stm
    threads throughput (ms p50) (ms p90) (ms p99) (ms max) (reason_cells [])

(* ---- Per-run telemetry JSON dump ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_counts b counts =
  Buffer.add_char b '{';
  List.iteri
    (fun i (label, n) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":%d" (json_escape label) n)
    counts;
  Buffer.add_char b '}'

let json_histogram b buckets =
  let total = Array.fold_left ( + ) 0 buckets in
  Buffer.add_string b "{\"total\":";
  Buffer.add_string b (string_of_int total);
  Buffer.add_string b ",\"p50_upper\":";
  Buffer.add_string b
    (string_of_int (Twoplsf_obs.Histogram.percentile_upper_of_buckets buckets 50.));
  Buffer.add_string b ",\"p99_upper\":";
  Buffer.add_string b
    (string_of_int (Twoplsf_obs.Histogram.percentile_upper_of_buckets buckets 99.));
  Buffer.add_string b ",\"buckets\":[";
  Array.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int n))
    buckets;
  Buffer.add_string b "]}"

let write_telemetry_json ~path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"scopes\":[";
  List.iteri
    (fun i sc ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"name\":\"%s\",\"abort_reasons\":"
        (json_escape (Twoplsf_obs.Scope.name sc));
      json_counts b (Twoplsf_obs.Scope.cumulative_abort_counts sc);
      Buffer.add_string b ",\"events\":";
      json_counts b (Twoplsf_obs.Scope.cumulative_event_counts sc);
      Buffer.add_string b ",\"phases_ns\":";
      json_counts b (Twoplsf_obs.Scope.cumulative_phase_counts sc);
      Printf.bprintf b ",\"txn_total_ns\":%d"
        (Twoplsf_obs.Scope.cumulative_txn_total_ns sc);
      Buffer.add_string b ",\"histograms\":{\"lock_wait_ns\":";
      json_histogram b (Twoplsf_obs.Scope.hist_lock_wait sc);
      Buffer.add_string b ",\"spin_iters\":";
      json_histogram b (Twoplsf_obs.Scope.hist_spins sc);
      Buffer.add_string b ",\"txn_ns\":";
      json_histogram b (Twoplsf_obs.Scope.hist_txn sc);
      Buffer.add_string b "}}")
    (Twoplsf_obs.Scope.all ());
  Buffer.add_string b "]}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc
