(** Aligned-table output for the figure reproductions, with optional CSV
    teeing for downstream plotting. *)

val set_csv : string -> unit
(** Also append every data row to this CSV file (created with a header
    line).  Call once, before the first row. *)

val close_csv : unit -> unit

val figure_header : id:string -> title:string -> unit
(** Print a banner naming the paper figure being regenerated. *)

val row_header : unit -> unit
val row : Driver.row -> unit

val phase_breakdown : Driver.txn_telemetry -> string
(** One-line latency decomposition ("body=61.2% commit=8.4% ...") as
    percentages of the transaction wall-clock total; [""] when the
    summary is empty (telemetry off). *)

val latency_header : unit -> unit

val latency_row :
  stm:string ->
  threads:int ->
  throughput:float ->
  p50:float ->
  p90:float ->
  p99:float ->
  max:float ->
  unit

val write_telemetry_json : path:string -> unit
(** Dump every telemetry scope (lifetime abort-reason and event counters
    plus the three log histograms) as one JSON object.  Meaningful only
    when telemetry was enabled for the run. *)
