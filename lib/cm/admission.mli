(** AIMD admission control: a token gate on transaction entry
    (DESIGN.md §11).

    At most [width] transactions run concurrently; a controller —
    piggybacked on whichever entering thread trips the interval check, no
    dedicated domain — halves [width] when the window's abort rate or
    lock-wait p99 crosses the thresholds (multiplicative decrease) and
    grows it by one when the window is healthy or idle (additive
    increase).  Off by default; disabled cost is one load + predicted
    branch on {!on}, the obs/chaos discipline. *)

val on : bool ref
(** Fast gate consulted by every STM's [atomic] entry.  Set by
    {!install}, cleared by {!uninstall}; never set it directly. *)

val install :
  ?max_width:int ->
  ?min_width:int ->
  ?interval_ms:int ->
  ?abort_high:float ->
  ?abort_low:float ->
  ?p99_high_ns:int ->
  ?sample:(unit -> int * int) ->
  ?lock_wait:(unit -> int array) ->
  unit ->
  unit
(** Build the controller and open the gate at [max_width] (default 4096).
    Window length [interval_ms] (default 10 ms); shrink when window abort
    rate > [abort_high] (default 0.5) or, when [p99_high_ns] > 0, when the
    window's lock-wait p99 exceeds it; grow when abort rate <
    [abort_low] (default 0.2) or the window has fewer than 16 samples.
    [sample] returns cumulative (commits, aborts) — defaults to summing
    every telemetry scope (requires {!Twoplsf_obs.Telemetry.on} for
    non-zero signal); [lock_wait] returns cumulative wait buckets.  Also
    installs a {!Twoplsf_obs.Monitor.set_gauges} closure so the monitor
    stream shows gate width over time.  Call before worker domains
    start. *)

val uninstall : unit -> unit

val enter : unit -> unit
(** Block (backoff-spin) until a token is available, then take it.  Also
    runs the controller when the interval elapsed.  No-op when not
    installed. *)

val leave : unit -> unit
(** Return the token.  Callers must pair every {!enter} with exactly one
    [leave], including on exceptional exit. *)

val guard : (unit -> 'a) -> 'a
(** [guard run] = {!enter}; [run ()]; {!leave} (also on exceptions), or
    just [run ()] when the gate is off. *)

val width : unit -> int
val inflight : unit -> int

val counters : unit -> (string * int) list
(** [admission_width], [admission_inflight], [admission_shrinks],
    [admission_grows]; empty when not installed. *)

val tick : unit -> unit
(** Force one controller update immediately (tests). *)
