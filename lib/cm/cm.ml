(* The pluggable contention manager and the overload-protection decision
   procedure (DESIGN.md §11).

   Every STM's restart arm funnels through [after_abort], which implements
   the escalation ladder: retry (with the installed inter-attempt wait
   policy) -> bounded restarts -> deadline -> serial-irrevocable fallback
   or a typed exception.  The wait policies themselves are tiny modules of
   the [POLICY] signature so new strategies can be added without touching
   any STM. *)

module Obs = Twoplsf_obs

type verdict = Retry | Escalate

(* Per-transaction overload state, embedded in the STM's transaction
   descriptor next to the Rwl_sf ctx.  [deadline] is absolute
   ({!Obs.Telemetry.now_ns} clock), 0 = none; [strikes] counts deadline
   blows within the current top-level transaction. *)
type state = { mutable deadline : int; mutable strikes : int }

let make_state () = { deadline = 0; strikes = 0 }

(* Fresh top-level transaction: reset the strike count and arm the
   deadline from the installed policy.  Returns the absolute deadline so
   the caller can mirror it into its lock-layer ctx. *)
let begin_txn st =
  let p = Stm_intf.current_policy () in
  st.strikes <- 0;
  st.deadline <-
    (if p.Stm_intf.deadline_ns = 0 then 0
     else Obs.Telemetry.now_ns () + p.Stm_intf.deadline_ns);
  st.deadline

(* ---- wait policies ---- *)

module type POLICY = sig
  val name : string

  val wait :
    tid:int ->
    restarts:int ->
    scope:Obs.Scope.t option ->
    native_wait:(unit -> unit) ->
    unit
  (** Pace the gap between a failed attempt and its retry.  [native_wait]
      is the STM's own inter-attempt behaviour (2PLSF's
      wait-for-conflictor, the no-wait baselines' capped exponential) and
      records its own telemetry phase; [scope] (the STM's telemetry
      scope, [None] with telemetry off) is for waits the policy performs
      itself, attributed to {!Twoplsf_obs.Phase.Backoff}. *)
end

module Paper_wait : POLICY = struct
  let name = "paper"
  let wait ~tid:_ ~restarts:_ ~scope:_ ~native_wait = native_wait ()
end

(* Capped exponential backoff with full per-thread jitter.  Each thread
   owns a SplitMix stream (golden-ratio-scrambled from the policy's base
   seed) so delays never synchronize between threads and a fixed seed
   reproduces the exact delay sequence. *)
let backoff_rngs =
  Array.init Util.Tid.max_threads (fun i ->
      Util.Sprng.create
        (Stm_intf.default_policy.Stm_intf.backoff_seed
        lxor ((i + 1) * 0x9E3779B9)))

let reseed seed =
  Array.iteri
    (fun i _ ->
      backoff_rngs.(i) <- Util.Sprng.create (seed lxor ((i + 1) * 0x9E3779B9)))
    backoff_rngs

let backoff_cap_ns = 1_000_000 (* 1 ms *)
let backoff_base_ns = 1_000 (* 1 us *)

(* Full jitter: uniform in [1, min(cap, base * 2^restarts)]. *)
let backoff_delay_ns ~tid ~restarts =
  let ceiling =
    Stdlib.min backoff_cap_ns (backoff_base_ns lsl Stdlib.min restarts 10)
  in
  1 + Util.Sprng.int backoff_rngs.(tid) ceiling

module Backoff : POLICY = struct
  let name = "backoff"

  let wait ~tid ~restarts ~scope ~native_wait:_ =
    let ns = backoff_delay_ns ~tid ~restarts in
    match scope with
    | None -> Unix.sleepf (float_of_int ns /. 1e9)
    | Some sc ->
        let t0 = Obs.Telemetry.now_ns () in
        Unix.sleepf (float_of_int ns /. 1e9);
        Obs.Scope.phase_add sc ~tid Obs.Phase.Backoff
          (Obs.Telemetry.now_ns () - t0)
end

module Hybrid : POLICY = struct
  let name = "hybrid"

  let wait ~tid ~restarts ~scope ~native_wait =
    if restarts <= (Stm_intf.current_policy ()).Stm_intf.hybrid_restarts then
      Backoff.wait ~tid ~restarts ~scope ~native_wait
    else native_wait ()
end

let policy_of_choice : Stm_intf.cm_choice -> (module POLICY) = function
  | Stm_intf.Cm_paper -> (module Paper_wait)
  | Stm_intf.Cm_backoff -> (module Backoff)
  | Stm_intf.Cm_hybrid -> (module Hybrid)

let choice_name c =
  let (module P : POLICY) = policy_of_choice c in
  P.name

let choice_of_name = function
  | "paper" -> Stm_intf.Cm_paper
  | "backoff" -> Stm_intf.Cm_backoff
  | "hybrid" -> Stm_intf.Cm_hybrid
  | s -> invalid_arg ("Cm.choice_of_name: unknown policy " ^ s)

(* ---- counters (process-lifetime, racy-read like the obs counters) ---- *)

let escalations_c = Atomic.make 0
let deadline_strikes_c = Atomic.make 0
let deadline_raises_c = Atomic.make 0
let escalations () = Atomic.get escalations_c
let deadline_strikes () = Atomic.get deadline_strikes_c

let counters () =
  [
    ("cm_escalations", Atomic.get escalations_c);
    ("cm_deadline_strikes", Atomic.get deadline_strikes_c);
    ("cm_deadline_raises", Atomic.get deadline_raises_c);
  ]

let reset_counters () =
  Atomic.set escalations_c 0;
  Atomic.set deadline_strikes_c 0;
  Atomic.set deadline_raises_c 0

(* ---- the decision procedure ---- *)

let after_abort ~stm ~tid ~restarts ~st ~native_wait ~cleanup ~reasons =
  let p = Stm_intf.current_policy () in
  let now = Obs.Telemetry.now_ns () in
  if st.deadline <> 0 && now > st.deadline then begin
    st.strikes <- st.strikes + 1;
    Atomic.incr deadline_strikes_c;
    if not p.Stm_intf.fallback then begin
      Atomic.incr deadline_raises_c;
      cleanup ();
      Stm_intf.deadline_exceeded ~stm ~restarts
        ~elapsed_ns:(p.Stm_intf.deadline_ns + (now - st.deadline))
    end
    else if st.strikes >= 2 then begin
      Atomic.incr escalations_c;
      Escalate
    end
    else begin
      (* First strike with the fallback armed: one fresh budget, and no
         inter-attempt wait — the transaction is already late. *)
      st.deadline <- now + p.Stm_intf.deadline_ns;
      Retry
    end
  end
  else if Stm_intf.hit_restart_bound restarts then
    if p.Stm_intf.fallback then begin
      Atomic.incr escalations_c;
      Escalate
    end
    else begin
      cleanup ();
      Stm_intf.starved ~stm ~restarts reasons
    end
  else begin
    let (module P : POLICY) = policy_of_choice p.Stm_intf.cm in
    (* The scope lookup (a short registry scan) only happens with
       telemetry on, on the abort path — never on the commit fast path. *)
    let scope = if !Obs.Telemetry.on then Obs.Scope.find stm else None in
    P.wait ~tid ~restarts ~scope ~native_wait;
    Retry
  end

(* ---- serial fallback for STMs without §2.8 irrevocability ---- *)

(* One global mutex serializing escalated baseline transactions.  The
   escalated holder still runs the STM's normal protocol (so it remains
   correct against concurrent non-escalated transactions); the mutex only
   guarantees that at most one exhausted transaction grinds forward at a
   time, which bounds the serial pass the p999 acceptance criterion
   allows. *)
module Fallback = struct
  let m = Mutex.create ()
  let acquire () = Mutex.lock m
  let release () = Mutex.unlock m
end

let install p =
  Stm_intf.install_policy p;
  reseed p.Stm_intf.backoff_seed
