(** Pluggable contention management and the overload-protection decision
    procedure (DESIGN.md §11).

    Every STM's restart arm calls {!after_abort}, which implements the
    escalation ladder — retry (paced by the installed wait policy) →
    bounded restarts → per-transaction deadline → serial-irrevocable
    fallback or a typed exception ({!Stm_intf.Starved} /
    {!Stm_intf.Deadline_exceeded}).  The [Paper_wait] policy reproduces
    each STM's pre-existing behaviour exactly and is the default, so
    figure reproduction is unchanged unless a different
    {!Stm_intf.policy} is installed. *)

type verdict =
  | Retry  (** re-attempt the transaction (the wait already happened) *)
  | Escalate
      (** switch to the serial-irrevocable slow path for the next attempt
          (2PLSF: zero-mutex + priority 1; baselines: {!Fallback}) *)

type state = { mutable deadline : int; mutable strikes : int }
(** Per-transaction overload state, embedded in the STM's transaction
    descriptor.  [deadline] is absolute ({!Twoplsf_obs.Telemetry.now_ns}
    clock), 0 = none. *)

val make_state : unit -> state

val begin_txn : state -> int
(** Arm [state] for a fresh top-level transaction from the installed
    {!Stm_intf.policy}: strikes reset, deadline = now + budget (0 when no
    deadline is configured).  Returns the absolute deadline so the caller
    can mirror it into its lock-layer ctx. *)

module type POLICY = sig
  val name : string

  val wait :
    tid:int ->
    restarts:int ->
    scope:Twoplsf_obs.Scope.t option ->
    native_wait:(unit -> unit) ->
    unit
  (** Pace the gap between a failed attempt and its retry.  [native_wait]
      is the STM's own inter-attempt behaviour (2PLSF's
      wait-for-conflictor; the no-wait baselines' capped exponential) and
      records its own telemetry phase.  [scope] is the STM's telemetry
      scope ([None] with telemetry off): waits the policy performs itself
      are attributed to {!Twoplsf_obs.Phase.Backoff} against it. *)
end

module Paper_wait : POLICY
(** Delegates to [native_wait] — today's behaviour, the default. *)

module Backoff : POLICY
(** Capped exponential backoff (1 µs · 2^restarts, capped at 1 ms) with
    full per-thread SplitMix jitter; ignores [native_wait]. *)

module Hybrid : POLICY
(** [Backoff] until the policy's [hybrid_restarts] bound, then the native
    wait — cheap de-synchronization first, priority waiting once the
    conflict is persistent. *)

val policy_of_choice : Stm_intf.cm_choice -> (module POLICY)
val choice_name : Stm_intf.cm_choice -> string

val choice_of_name : string -> Stm_intf.cm_choice
(** Inverse of {!choice_name} ("paper" | "backoff" | "hybrid");
    [Invalid_argument] otherwise.  Used by the bench CLI. *)

val backoff_delay_ns : tid:int -> restarts:int -> int
(** Draw the next backoff delay for [tid] — full jitter, uniform in
    [1, min(1 ms, 1 µs · 2^min(restarts,10))].  Advances the thread's
    stream; exposed so tests can check seed determinism. *)

val reseed : int -> unit
(** Re-seed every thread's backoff stream from a base seed (thread [i]
    gets [seed lxor ((i+1) * 0x9E3779B9)]).  Called by {!install}. *)

val after_abort :
  stm:string ->
  tid:int ->
  restarts:int ->
  st:state ->
  native_wait:(unit -> unit) ->
  cleanup:(unit -> unit) ->
  reasons:(unit -> (string * int) list) ->
  verdict
(** The overload decision after a failed attempt has fully rolled back
    (locks released; announcement still standing is fine — [cleanup] is
    invoked before any raise).  In order: a blown deadline raises
    {!Stm_intf.Deadline_exceeded} (fallback off), escalates on the second
    strike (fallback on), or refreshes the budget once; an exhausted
    restart bound raises {!Stm_intf.Starved} or escalates; otherwise the
    installed wait policy runs and the verdict is [Retry]. *)

val escalations : unit -> int
val deadline_strikes : unit -> int

val counters : unit -> (string * int) list
(** Process-lifetime overload counters (racy reads):
    [cm_escalations], [cm_deadline_strikes], [cm_deadline_raises]. *)

val reset_counters : unit -> unit

module Fallback : sig
  val acquire : unit -> unit
  val release : unit -> unit
end
(** Global mutex serializing escalated transactions of STMs without the
    §2.8 irrevocable path.  The holder still runs the STM's normal
    protocol; the mutex only bounds how many exhausted transactions grind
    forward concurrently (at most one). *)

val install : Stm_intf.policy -> unit
(** {!Stm_intf.install_policy} plus {!reseed} from the policy's
    [backoff_seed].  Must run before worker domains start. *)
