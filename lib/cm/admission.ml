(* AIMD admission control (DESIGN.md §11).

   A token gate on transaction entry: at most [width] transactions run
   concurrently.  A controller, piggybacked on whichever thread trips the
   interval check first (no dedicated domain), samples the telemetry
   counters, and

     - halves [width] (multiplicative decrease, floor [min_width]) when
       the window's abort rate or lock-wait p99 crosses the configured
       thresholds,
     - grows it by one (additive increase, ceiling [max_width]) when the
       window is healthy or too quiet to judge.

   The gate is off by default; the fast path for a disabled gate is one
   load + predicted branch ([!on]), same discipline as obs/chaos. *)

module Obs = Twoplsf_obs

let on = ref false

type ctrl = {
  max_width : int;
  min_width : int;
  interval_ns : int;
  abort_high : float;
  abort_low : float;
  p99_high_ns : int;
  sample : unit -> int * int; (* cumulative (commits, aborts) *)
  lock_wait : (unit -> int array) option; (* cumulative wait buckets *)
  width : int Atomic.t;
  inflight : int Atomic.t;
  last_update : int Atomic.t;
  (* Controller-private window state: only the thread that wins the
     [last_update] CAS touches these, so plain mutable fields suffice. *)
  mutable prev_commits : int;
  mutable prev_aborts : int;
  mutable prev_buckets : int array;
  shrinks : int Atomic.t;
  grows : int Atomic.t;
}

let ctrl : ctrl option ref = ref None

(* Default signal source: sum commit/abort cumulatives over every
   registered telemetry scope (the monitor's convention — hist_txn totals
   are monotonic across harness resets). *)
let default_sample () =
  List.fold_left
    (fun (c, a) sc ->
      let commits = Array.fold_left ( + ) 0 (Obs.Scope.hist_txn sc) in
      let aborts =
        List.fold_left
          (fun acc (_, n) -> acc + n)
          0
          (Obs.Scope.cumulative_abort_counts sc)
      in
      (c + commits, a + aborts))
    (0, 0) (Obs.Scope.all ())

let default_lock_wait () =
  let acc = Array.make Obs.Histogram.num_buckets 0 in
  List.iter
    (fun sc ->
      Array.iteri
        (fun i v -> acc.(i) <- acc.(i) + v)
        (Obs.Scope.hist_lock_wait sc))
    (Obs.Scope.all ());
  acc

let grow c =
  let w = Atomic.get c.width in
  if w < c.max_width then begin
    Atomic.set c.width (w + 1);
    Atomic.incr c.grows
  end

let shrink c =
  let w = Atomic.get c.width in
  let w' = Stdlib.max c.min_width (w / 2) in
  if w' < w then begin
    Atomic.set c.width w';
    Atomic.incr c.shrinks
  end

let update c =
  let commits, aborts = c.sample () in
  let dc = Stdlib.max 0 (commits - c.prev_commits) in
  let da = Stdlib.max 0 (aborts - c.prev_aborts) in
  c.prev_commits <- commits;
  c.prev_aborts <- aborts;
  let p99, wait_samples =
    match c.lock_wait with
    | None -> (0, 0)
    | Some f ->
        let cur = f () in
        let d =
          Array.mapi (fun i v -> Stdlib.max 0 (v - c.prev_buckets.(i))) cur
        in
        c.prev_buckets <- cur;
        let n = Array.fold_left ( + ) 0 d in
        ((if n = 0 then 0 else Obs.Histogram.percentile_upper_of_buckets d 99.), n)
  in
  let samples = dc + da in
  (* Too few samples to judge an abort rate: treat as healthy/idle. *)
  if samples < 16 then grow c
  else begin
    let rate = float_of_int da /. float_of_int samples in
    let p99_bad =
      c.p99_high_ns > 0 && wait_samples > 0 && p99 > c.p99_high_ns
      && p99 < max_int
    in
    if rate > c.abort_high || p99_bad then shrink c
    else if rate < c.abort_low then grow c
  end

let maybe_update c =
  let now = Obs.Telemetry.now_ns () in
  let last = Atomic.get c.last_update in
  if now - last >= c.interval_ns && Atomic.compare_and_set c.last_update last now
  then update c

let enter () =
  match !ctrl with
  | None -> ()
  | Some c ->
      maybe_update c;
      let b = Util.Backoff.create () in
      let rec loop () =
        let infl = Atomic.get c.inflight in
        if infl < Atomic.get c.width then begin
          if not (Atomic.compare_and_set c.inflight infl (infl + 1)) then
            loop ()
        end
        else begin
          Util.Backoff.once b;
          maybe_update c;
          loop ()
        end
      in
      loop ()

let leave () = match !ctrl with None -> () | Some c -> Atomic.decr c.inflight

(* Run a top-level transaction body under the gate.  The STMs with a
   hand-optimized fast path inline this pattern instead (stm.ml). *)
let guard run =
  if not !on then run ()
  else begin
    enter ();
    match run () with
    | v ->
        leave ();
        v
    | exception e ->
        leave ();
        raise e
  end

let width () = match !ctrl with None -> 0 | Some c -> Atomic.get c.width
let inflight () = match !ctrl with None -> 0 | Some c -> Atomic.get c.inflight

let counters () =
  match !ctrl with
  | None -> []
  | Some c ->
      [
        ("admission_width", Atomic.get c.width);
        ("admission_inflight", Atomic.get c.inflight);
        ("admission_shrinks", Atomic.get c.shrinks);
        ("admission_grows", Atomic.get c.grows);
      ]

let tick () =
  match !ctrl with
  | None -> ()
  | Some c ->
      Atomic.set c.last_update (Obs.Telemetry.now_ns ());
      update c

let install ?(max_width = 4096) ?(min_width = 1) ?(interval_ms = 10)
    ?(abort_high = 0.5) ?(abort_low = 0.2) ?(p99_high_ns = 0) ?sample
    ?lock_wait () =
  let sample = Option.value sample ~default:default_sample in
  let lock_wait =
    match (lock_wait, p99_high_ns) with
    | (Some _ as lw), _ -> lw
    | None, 0 -> None
    | None, _ -> Some default_lock_wait
  in
  let prev_commits, prev_aborts = sample () in
  let c =
    {
      max_width;
      min_width;
      interval_ns = interval_ms * 1_000_000;
      abort_high;
      abort_low;
      p99_high_ns;
      sample;
      lock_wait;
      width = Atomic.make max_width;
      inflight = Atomic.make 0;
      last_update = Atomic.make (Obs.Telemetry.now_ns ());
      prev_commits;
      prev_aborts;
      prev_buckets =
        (match lock_wait with
        | Some f -> f ()
        | None -> Array.make Obs.Histogram.num_buckets 0);
      shrinks = Atomic.make 0;
      grows = Atomic.make 0;
    }
  in
  ctrl := Some c;
  on := true;
  (* Stream the gate through the live monitor when it is running. *)
  Obs.Monitor.add_gauges ~name:"admission" (fun () -> counters ())

let uninstall () =
  on := false;
  ctrl := None
