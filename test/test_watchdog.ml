(* Tests for the runtime-verification layer (DESIGN.md §9): the pure
   waits-for cycle detector, the co-waiter exclusion that keeps §2.5's
   waiting protocol from manufacturing phantom cycles, watchdog detection
   of crafted deadlock / mutual-exclusion states injected through a fake
   table, a real stuck-thread scenario that must surface a starvation
   suspect, a contended multi-domain run that must finish with zero
   invariant violations, and a monitor-stream smoke check. *)

module Obs = Twoplsf_obs
module Waitsfor = Obs.Waitsfor
module Wait_registry = Obs.Wait_registry
module Watchdog = Obs.Watchdog
module Rwl_sf = Twoplsf.Rwl_sf
module Stm = Twoplsf.Stm

let check = Alcotest.check

(* The registry snapshot only scans tids below the high-water mark, so
   burn a few tid slots up front (the spawned domains never release, which
   pins the mark).  Main ends up as tid 0; crafted entries use tids 1-3. *)
let ensure_tids =
  lazy
    (ignore (Util.Tid.register ());
     Array.init 3 (fun _ -> Domain.spawn (fun () -> ignore (Util.Tid.register ())))
     |> Array.iter Domain.join;
     assert (Util.Tid.high_water () >= 4))

(* One fake lock table whose introspection closures the tests re-point;
   registered tables live for the whole process, so every test must leave
   the closures benign (no writer, no readers) on exit. *)
let benign_view (_ : int) = { Waitsfor.writer = -1; writer_ts = 0; readers = [] }
let fake_view : (int -> Waitsfor.lock_view) ref = ref benign_view
let fake_announced : (int -> int) ref = ref (fun _ -> 0)
let fake_clock : (unit -> int) ref = ref (fun () -> 0)

let fake_table =
  lazy
    (Waitsfor.register_table ~name:"fake" ~num_locks:16
       ~inspect:(fun w -> !fake_view w)
       ~announced:(fun t -> !fake_announced t)
       ~clock:(fun () -> !fake_clock ()))

let reset_fake () =
  fake_view := benign_view;
  fake_announced := (fun _ -> 0);
  fake_clock := (fun () -> 0)

let wait_until ?(timeout = 10.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

(* ---- pure cycle detector ---- *)

let test_cycle_detector () =
  check Alcotest.bool "empty" true (Waitsfor.cycle_of_pairs [] = None);
  check Alcotest.bool "dag" true
    (Waitsfor.cycle_of_pairs [ (1, 2); (2, 3); (1, 3) ] = None);
  check Alcotest.bool "diamond dag" true
    (Waitsfor.cycle_of_pairs [ (1, 2); (1, 3); (2, 4); (3, 4) ] = None);
  (match Waitsfor.cycle_of_pairs [ (1, 2); (2, 3); (3, 1) ] with
  | None -> Alcotest.fail "3-cycle not found"
  | Some tids ->
      check Alcotest.int "3-cycle length" 3 (List.length tids);
      List.iter
        (fun t ->
          if not (List.mem t tids) then Alcotest.failf "t%d missing" t)
        [ 1; 2; 3 ]);
  (match Waitsfor.cycle_of_pairs [ (5, 5) ] with
  | Some [ 5 ] -> ()
  | _ -> Alcotest.fail "self-edge must yield a singleton cycle");
  (* Cycle reachable only past a DAG prefix. *)
  match Waitsfor.cycle_of_pairs [ (0, 1); (1, 2); (2, 3); (3, 2) ] with
  | Some tids ->
      check Alcotest.bool "tail cycle" true (List.sort compare tids = [ 2; 3 ])
  | None -> Alcotest.fail "tail 2-cycle not found"

(* ---- co-waiter exclusion (§2.5 phantom-cycle defence) ---- *)

let test_co_waiter_exclusion () =
  Lazy.force ensure_tids;
  let fid = Lazy.force fake_table in
  (* Two write waiters on lock 9, both with their read-indicator bit set
     (the §2.5 arrival protocol): their bits are waiting artifacts, not
     held locks, so the snapshot must produce no edges at all. *)
  fake_view :=
    (fun w ->
      if w = 9 then { Waitsfor.writer = -1; writer_ts = 0; readers = [ 1; 2 ] }
      else benign_view w);
  let now = Obs.Telemetry.now_ns () in
  Wait_registry.publish ~tid:1 ~kind:Wait_registry.write_wait ~table:fid
    ~lock:9 ~since_ns:now ~observed:(-1);
  Wait_registry.publish ~tid:2 ~kind:Wait_registry.write_wait ~table:fid
    ~lock:9 ~since_ns:now ~observed:(-1);
  let entries = Wait_registry.snapshot () in
  check Alcotest.int "both waits visible" 2 (List.length entries);
  check Alcotest.int "co-waiter bits excluded" 0
    (List.length (Waitsfor.edges_of_snapshot entries));
  (* With t2 no longer waiting, its bit is a genuinely held read lock and
     t1's write wait must produce exactly the edge t1 -> t2. *)
  Wait_registry.clear ~tid:2;
  (match Waitsfor.edges_of_snapshot (Wait_registry.snapshot ()) with
  | [ e ] ->
      check Alcotest.int "waiter" 1 e.Waitsfor.waiter;
      check Alcotest.int "holder" 2 e.Waitsfor.holder
  | l -> Alcotest.failf "expected 1 edge, got %d" (List.length l));
  Wait_registry.clear ~tid:1;
  reset_fake ()

(* ---- crafted deadlock detected (and debounced) by the watchdog ---- *)

let test_crafted_deadlock () =
  Lazy.force ensure_tids;
  let fid = Lazy.force fake_table in
  (* t1 write-waits on lock 3 held by t2; t2 write-waits on lock 4 held by
     t1 — a 2-cycle that is impossible under timestamp ordering.  The fake
     clock never advances, so no starvation suspect can fire. *)
  fake_view :=
    (fun w ->
      if w = 3 then { Waitsfor.writer = 2; writer_ts = 7; readers = [] }
      else if w = 4 then { Waitsfor.writer = 1; writer_ts = 5; readers = [] }
      else benign_view w);
  (fake_announced := fun t -> if t = 1 then 5 else if t = 2 then 7 else 0);
  fake_clock := (fun () -> 10);
  let now = Obs.Telemetry.now_ns () in
  Wait_registry.publish ~tid:1 ~kind:Wait_registry.write_wait ~table:fid
    ~lock:3 ~since_ns:now ~observed:2;
  Wait_registry.publish ~tid:2 ~kind:Wait_registry.write_wait ~table:fid
    ~lock:4 ~since_ns:now ~observed:1;
  Watchdog.start ~interval_ms:10 ();
  let found = wait_until (fun () -> Watchdog.violations () > 0) in
  Wait_registry.clear ~tid:1;
  Wait_registry.clear ~tid:2;
  reset_fake ();
  Watchdog.stop ();
  check Alcotest.bool "deadlock confirmed" true found;
  let dl =
    List.exists
      (function
        | Watchdog.Deadlock edges ->
            let tids =
              List.concat_map
                (fun (e : Waitsfor.edge) -> [ e.waiter; e.holder ])
                edges
            in
            List.mem 1 tids && List.mem 2 tids
        | _ -> false)
      (Watchdog.reports ())
  in
  check Alcotest.bool "deadlock report names both threads" true dl;
  check Alcotest.int "no starvation suspects" 0 (Watchdog.starvation_reports ())

(* ---- crafted mutual-exclusion violation ---- *)

let test_crafted_mutex_violation () =
  Lazy.force ensure_tids;
  ignore (Lazy.force fake_table);
  (* Lock 7 shows a write holder (t1) concurrent with a foreign read bit
     (t2), with neither thread publishing a wait: both believe they hold
     the lock. *)
  fake_view :=
    (fun w ->
      if w = 7 then { Waitsfor.writer = 1; writer_ts = 0; readers = [ 2 ] }
      else benign_view w);
  Watchdog.start ~interval_ms:10 ();
  let found = wait_until (fun () -> Watchdog.violations () > 0) in
  reset_fake ();
  Watchdog.stop ();
  check Alcotest.bool "mutex violation confirmed" true found;
  let ok =
    List.exists
      (function
        | Watchdog.Mutex_violation { lock = 7; writer = 1; reader = 2; _ } ->
            true
        | _ -> false)
      (Watchdog.reports ())
  in
  check Alcotest.bool "violation names lock 7, writer t1, reader t2" true ok

(* ---- real stuck thread => starvation suspect, zero violations ---- *)

let test_starvation_stall () =
  Lazy.force ensure_tids;
  Watchdog.start ~interval_ms:20 ~starvation_ms:40 ();
  let t = Rwl_sf.create ~num_locks:64 () in
  Rwl_sf.watch ~name:"stall-test" t;
  (* Main (tid 0) holds write lock 5 at low priority; a domain at high
     priority (lower timestamp) must wait rather than restart, and we
     never release until the watchdog notices the stall. *)
  let ctx0 = Rwl_sf.make_ctx ~tid:0 in
  Rwl_sf.announce_priority t ctx0 100;
  check Alcotest.bool "holder acquires" true
    (Rwl_sf.try_or_wait_write_lock t ctx0 5);
  let waiter =
    Domain.spawn (fun () ->
        let tid = Util.Tid.register () in
        let ctx = Rwl_sf.make_ctx ~tid in
        Rwl_sf.announce_priority t ctx 50;
        let ok = Rwl_sf.try_or_wait_write_lock t ctx 5 in
        if ok then Rwl_sf.write_unlock t ctx 5;
        Rwl_sf.clear_announcement t ctx;
        Util.Tid.release ();
        ok)
  in
  (* Starvation needs the conflict clock to advance while the waiter's
     announcement stays put; tick it from a scratch context on a tid that
     never touches lock 5. *)
  let scratch = Rwl_sf.make_ctx ~tid:3 in
  let detected =
    wait_until (fun () ->
        Rwl_sf.take_timestamp t scratch;
        Rwl_sf.clear_announcement t scratch;
        Watchdog.starvation_reports () > 0)
  in
  Rwl_sf.write_unlock t ctx0 5;
  Rwl_sf.clear_announcement t ctx0;
  let waiter_ok = Domain.join waiter in
  Watchdog.stop ();
  check Alcotest.bool "stall reported" true detected;
  check Alcotest.bool "waiter eventually acquires" true waiter_ok;
  check Alcotest.int "no invariant violations" 0 (Watchdog.violations ());
  let ok =
    List.exists
      (function
        | Watchdog.Starvation { lock = 5; table = "stall-test"; ts = 50; _ } ->
            true
        | _ -> false)
      (Watchdog.reports ())
  in
  check Alcotest.bool "report names the stalled wait" true ok

(* ---- contended multi-domain run finishes clean ---- *)

let test_contended_clean () =
  Lazy.force ensure_tids;
  Watchdog.start ~interval_ms:5 ();
  Rwl_sf.watch ~name:"stm-test" (Stm.lock_table ());
  let num_domains = 4 and iters = 2000 in
  let vars = Array.init 4 (fun _ -> Stm.tvar 0) in
  let doms =
    Array.init num_domains (fun i ->
        Domain.spawn (fun () ->
            ignore (Util.Tid.register ());
            let rng = Random.State.make [| 42 + i |] in
            for _ = 1 to iters do
              let a = Random.State.int rng 4
              and b = Random.State.int rng 4 in
              Stm.atomic (fun tx ->
                  let va = Stm.read tx vars.(a) in
                  Stm.write tx vars.(a) (va + 1);
                  ignore (Stm.read tx vars.(b)))
            done;
            Util.Tid.release ()))
  in
  Array.iter Domain.join doms;
  Watchdog.stop ();
  let total =
    Stm.atomic ~read_only:true (fun tx ->
        Array.fold_left (fun acc v -> acc + Stm.read tx v) 0 vars)
  in
  check Alcotest.int "all increments committed" (num_domains * iters) total;
  check Alcotest.int "zero invariant violations" 0 (Watchdog.violations ());
  check Alcotest.bool "watchdog ticked" true (Watchdog.ticks () > 0)

(* ---- monitor stream smoke ---- *)

let test_monitor_stream () =
  let path = Filename.temp_file "monitor" ".jsonl" in
  Obs.Telemetry.enable ();
  Obs.Monitor.set_phase "watchdog-test";
  Obs.Monitor.start ~interval_ms:20 ~out_path:path ();
  let v = Stm.tvar 0 in
  for _ = 1 to 200 do
    Stm.atomic (fun tx -> Stm.write tx v (Stm.read tx v + 1))
  done;
  Unix.sleepf 0.1;
  Obs.Monitor.stop ();
  Obs.Telemetry.disable ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check Alcotest.bool "at least one tick" true (List.length lines >= 1);
  List.iter
    (fun l ->
      let ok =
        String.length l > 2
        && l.[0] = '{'
        && l.[String.length l - 1] = '}'
      in
      if not ok then Alcotest.failf "malformed JSONL line: %s" l)
    lines;
  let first = List.hd lines in
  let contains sub =
    let n = String.length sub and m = String.length first in
    let rec go i = i + n <= m && (String.sub first i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key ->
      check Alcotest.bool ("tick has " ^ key) true (contains ("\"" ^ key ^ "\"")))
    [ "throughput"; "commits"; "aborts"; "phase"; "watchdog" ]

let () =
  Alcotest.run "watchdog"
    [
      ( "waitsfor",
        [
          Alcotest.test_case "cycle detector" `Quick test_cycle_detector;
          Alcotest.test_case "co-waiter exclusion" `Quick
            test_co_waiter_exclusion;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "crafted deadlock" `Quick test_crafted_deadlock;
          Alcotest.test_case "crafted mutex violation" `Quick
            test_crafted_mutex_violation;
          Alcotest.test_case "starvation stall" `Quick test_starvation_stall;
          Alcotest.test_case "contended clean run" `Quick test_contended_clean;
        ] );
      ( "monitor",
        [ Alcotest.test_case "jsonl stream" `Quick test_monitor_stream ] );
    ]
