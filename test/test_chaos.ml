(* Tests for the seeded fault-injection layer (DESIGN.md §10) and the
   exception-safety hardening it exists to exercise:

   - determinism: the same seed yields the same per-thread decision trace;
   - every registry STM survives an exception escaping the transaction
     body — value rolled back, zero leaked locks — both for a plain user
     exception and for a chaos-injected one;
   - a spurious-restart storm (forced acquisition failures) converges and
     conserves the workload invariant;
   - a stalled victim thread does not trip the runtime-verification
     watchdog (stalls are slowness, not deadlock);
   - Harness.Exec contains a crashing worker: all domains joined, Tid
     slots released, first exception re-raised, siblings' results intact;
   - the typed [Stm_intf.Starved] error fires at the restart bound and
     leaves the lock table clean. *)

module Chaos = Twoplsf_chaos.Chaos
module Stm = Twoplsf.Stm

let check = Alcotest.check

(* Every test must leave the globals as it found them: injection off,
   restarts unbounded. *)
let with_clean_globals f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.disable ();
      Stm_intf.install_policy Stm_intf.default_policy)
    f

let quiet_config =
  {
    Chaos.default with
    Chaos.delay_ppm = 0;
    yield_ppm = 0;
    spurious_ppm = 0;
    exn_ppm = 0;
    stall_ppm = 0;
  }

(* ---- same seed, same per-thread decision trace ---- *)

let trace_once ~seed =
  Chaos.enable
    ~config:
      {
        quiet_config with
        Chaos.seed;
        delay_ppm = 200_000;
        delay_max_spins = 8;
        yield_ppm = 100_000;
      }
    ();
  Chaos.set_trace 256;
  for _ = 1 to 200 do
    Chaos.point Chaos.Txn_body;
    Chaos.point Chaos.Pre_commit
  done;
  let tr = Chaos.trace () in
  Chaos.disable ();
  tr

let test_seed_reproducibility () =
  with_clean_globals (fun () ->
      let t1 = trace_once ~seed:0xFEED in
      let t2 = trace_once ~seed:0xFEED in
      let t3 = trace_once ~seed:0xBEEF in
      check Alcotest.bool "trace non-trivial" true (List.length t1 > 0);
      check Alcotest.bool "same seed, same trace" true (t1 = t2);
      check Alcotest.bool "different seed, different trace" true (t1 <> t3))

(* ---- exception escape leaves every registry STM clean ---- *)

exception Boom

let test_exception_cleanup_one (module S : Stm_intf.STM) =
  let tv = S.tvar 7 in
  (* Plain user exception after a write: undo (or redo discard) must run
     and every lock must drop. *)
  (match S.atomic (fun tx -> S.write tx tv 42; raise Boom) with
  | () -> Alcotest.failf "%s: Boom did not propagate" S.name
  | exception Boom -> ()
  | exception e ->
      Alcotest.failf "%s: expected Boom, got %s" S.name (Printexc.to_string e));
  check Alcotest.int (S.name ^ ": rolled back") 7
    (S.atomic ~read_only:true (fun tx -> S.read tx tv));
  check Alcotest.int (S.name ^ ": zero leaked locks") 0 (S.leaked_locks ());
  (* Same via the chaos layer: exn_ppm = 1e6 injects on every body.  The
     wrapped module packs its own abstract [tvar], so it is used
     end-to-end here. *)
  let (module C : Stm_intf.STM) = Baselines.Registry.chaos_wrap (module S) in
  let tv2 = C.tvar 7 in
  Chaos.enable ~config:{ quiet_config with Chaos.exn_ppm = 1_000_000 } ();
  (match C.atomic (fun tx -> C.write tx tv2 42) with
  | () -> Alcotest.failf "%s: no injected fault" S.name
  | exception Chaos.Injected_fault _ -> ());
  Chaos.disable ();
  check Alcotest.int (S.name ^ ": rolled back (injected)") 7
    (C.atomic ~read_only:true (fun tx -> C.read tx tv2));
  check Alcotest.int (S.name ^ ": zero leaked locks (injected)") 0
    (C.leaked_locks ())

let test_exception_cleanup () =
  with_clean_globals (fun () ->
      List.iter test_exception_cleanup_one Baselines.Registry.all)

(* ---- spurious-restart storm converges and conserves ---- *)

let test_spurious_storm () =
  with_clean_globals (fun () ->
      let n = 32 in
      let accounts = Array.init n (fun _ -> Stm.tvar 100) in
      Chaos.enable
        ~config:{ quiet_config with Chaos.spurious_ppm = 300_000 }
        ();
      let txns_per_worker = 500 in
      ignore
        (Harness.Exec.run_each ~threads:4 (fun i ->
             let rng = Util.Sprng.create (0xAB + i) in
             for _ = 1 to txns_per_worker do
               let a = Util.Sprng.int rng n and b = Util.Sprng.int rng n in
               Stm.atomic (fun tx ->
                   let va = Stm.read tx accounts.(a) in
                   let vb = Stm.read tx accounts.(b) in
                   if a <> b then begin
                     Stm.write tx accounts.(a) (va - 3);
                     Stm.write tx accounts.(b) (vb + 3)
                   end)
             done));
      Chaos.disable ();
      let total =
        Stm.atomic ~read_only:true (fun tx ->
            Array.fold_left (fun acc a -> acc + Stm.read tx a) 0 accounts)
      in
      check Alcotest.int "conserved" (n * 100) total;
      check Alcotest.int "zero leaked locks" 0 (Stm.leaked_locks ());
      let spurious = List.assoc "spurious" (Chaos.counts ()) in
      check Alcotest.bool "storm actually injected" true (spurious > 0))

(* ---- stalled victim passes the watchdog ---- *)

let test_stalled_victim_watchdog () =
  with_clean_globals (fun () ->
      let module Obs = Twoplsf_obs in
      let n = 32 in
      let accounts = Array.init n (fun _ -> Stm.tvar 100) in
      Obs.Watchdog.start ~interval_ms:10 ();
      let v0 = Obs.Watchdog.violations () in
      Chaos.enable
        ~config:
          {
            quiet_config with
            Chaos.stall_ppm = 20_000;
            stall_ms = 5.0;
            victim = 2;
            spurious_ppm = 50_000;
          }
        ();
      ignore
        (Harness.Exec.run_each ~threads:4 (fun i ->
             let rng = Util.Sprng.create (0xCD + i) in
             for _ = 1 to 300 do
               let a = Util.Sprng.int rng n and b = Util.Sprng.int rng n in
               Stm.atomic (fun tx ->
                   let va = Stm.read tx accounts.(a) in
                   if a <> b then Stm.write tx accounts.(b) (va + 1))
             done));
      Chaos.disable ();
      Obs.Watchdog.stop ();
      check Alcotest.int "no invariant violations"
        v0
        (Obs.Watchdog.violations ());
      check Alcotest.int "zero leaked locks" 0 (Stm.leaked_locks ()))

(* ---- Exec crash containment ---- *)

let test_exec_crash_containment () =
  (* First failure re-raised, but only after every domain joined. *)
  let joined = Atomic.make 0 in
  (match
     Harness.Exec.run_each ~threads:4 (fun i ->
         if i = 2 then raise Boom;
         Atomic.incr joined;
         i)
   with
  | _ -> Alcotest.fail "worker crash not re-raised"
  | exception Boom -> ());
  check Alcotest.int "siblings ran to completion" 3 (Atomic.get joined);
  (* Result-level API: siblings intact, the crash isolated as Error. *)
  (match Harness.Exec.run_each_results ~threads:3 (fun i ->
       if i = 1 then raise Boom else 10 * i)
   with
  | [ Ok 0; Error Boom; Ok 20 ] -> ()
  | _ -> Alcotest.fail "unexpected run_each_results shape");
  (* Tid slots must be released even by crashing workers: far more
     spawn waves than there are slots. *)
  for _ = 1 to 60 do
    match Harness.Exec.run_each ~threads:4 (fun i ->
        if i = 0 then raise Boom else i)
    with
    | _ -> Alcotest.fail "crash swallowed"
    | exception Boom -> ()
  done;
  (* run_timed also survives a crashing worker. *)
  match
    Harness.Exec.run_timed ~threads:2 ~seconds:0.05 (fun i should_stop ->
        if i = 1 then raise Boom;
        let n = ref 0 in
        while not (should_stop ()) do incr n done;
        !n)
  with
  | _ -> Alcotest.fail "run_timed crash not re-raised"
  | exception Boom -> ()

(* ---- typed Starved error at the restart bound ---- *)

let test_starved () =
  with_clean_globals (fun () ->
      let tv = Stm.tvar 1 in
      Stm_intf.install_policy
        { Stm_intf.default_policy with Stm_intf.max_restarts = 5 };
      (* Every acquisition spuriously fails: no transaction with a
         non-empty footprint can ever commit. *)
      Chaos.enable
        ~config:{ quiet_config with Chaos.spurious_ppm = 1_000_000 }
        ();
      (match Stm.atomic (fun tx -> Stm.read tx tv) with
      | _ -> Alcotest.fail "expected Starved"
      | exception Stm_intf.Starved { stm; restarts; abort_reasons = _ } ->
          check Alcotest.string "stm name" "2PLSF" stm;
          check Alcotest.int "restart bound" 5 restarts);
      Chaos.disable ();
      Stm_intf.install_policy Stm_intf.default_policy;
      check Alcotest.int "zero leaked locks" 0 (Stm.leaked_locks ());
      (* The table must still be fully functional afterwards. *)
      check Alcotest.int "table alive" 1
        (Stm.atomic (fun tx -> Stm.read tx tv)))

let () =
  ignore (Util.Tid.register ());
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "seed reproducibility" `Quick
            test_seed_reproducibility;
          Alcotest.test_case "exception cleanup, every STM" `Quick
            test_exception_cleanup;
          Alcotest.test_case "spurious storm converges" `Quick
            test_spurious_storm;
          Alcotest.test_case "stalled victim vs watchdog" `Quick
            test_stalled_victim_watchdog;
          Alcotest.test_case "exec crash containment" `Quick
            test_exec_crash_containment;
          Alcotest.test_case "typed Starved error" `Quick test_starved;
        ] );
    ]
