(* Tests for the storage-fault layer (DESIGN.md §16): the Wal_io VFS
   contract (passthrough and seeded fault injection — determinism,
   short writes, capacity ENOSPC, fsyncgate loss), the simulated block
   device's crash materializations (sector tearing, namespace barriers),
   the engine's typed read-only degradation on permanent device failure,
   and the headline property: every legal crash materialization of a
   mid-run filesystem snapshot recovers conservation-clean with
   byte-identical double replay. *)

module Wal = Twoplsf_wal.Wal
module Wal_io = Twoplsf_wal.Wal_io
module Sim_fs = Twoplsf_wal.Sim_fs

let check = Alcotest.check
let () = ignore (Util.Tid.register ())

let rows = 32
let init_balance = 1_000

let make_table () =
  let tbl = Dbx.Table.create ~num_rows:rows in
  for rid = 0 to rows - 1 do
    Dbx.Table.set_balance tbl rid init_balance
  done;
  tbl

let balance_sum t =
  let s = ref 0 in
  for rid = 0 to rows - 1 do
    s := !s + Dbx.Table.balance t rid
  done;
  !s

let tables_equal a b =
  let ok = ref true in
  for rid = 0 to rows - 1 do
    if not (Bytes.equal (Dbx.Table.payload a rid) (Dbx.Table.payload b rid))
    then ok := false
  done;
  !ok

let read_txn =
  { Dbx.Ycsb.keys = [| 0; 1 |]; ops = [| Dbx.Ycsb.Read; Dbx.Ycsb.Read |] }

(* ---- passthrough VFS contract ---- *)

let test_passthrough_basics () =
  let io = Wal_io.passthrough in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "twoplsf_walio_%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (try Sys.readdir dir with Sys_error _ -> [||]);
      if Sys.file_exists dir then Unix.rmdir dir)
    (fun () ->
      io.Wal_io.io_mkdir dir;
      io.Wal_io.io_mkdir dir (* EEXIST tolerated *);
      check Alcotest.bool "missing readdir = empty" true
        (io.Wal_io.io_readdir (Filename.concat dir "absent") = [||]);
      let a = Filename.concat dir "a" and b = Filename.concat dir "b" in
      let f = io.Wal_io.io_create a in
      Wal_io.write_string f "hello, disk";
      f.Wal_io.f_fsync ();
      f.Wal_io.f_close ();
      check Alcotest.bool "exists after create" true (io.Wal_io.io_exists a);
      io.Wal_io.io_rename a b;
      io.Wal_io.io_fsync_dir dir;
      check Alcotest.bool "renamed away" false (io.Wal_io.io_exists a);
      check Alcotest.string "content survives rename" "hello, disk"
        (Bytes.to_string (Wal_io.read_file io b));
      (match Wal_io.read_file io a with
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
      | _ -> Alcotest.fail "read of a missing file must raise ENOENT");
      io.Wal_io.io_unlink b;
      io.Wal_io.io_unlink b (* ENOENT tolerated *);
      check Alcotest.int "passthrough counts nothing" 0
        (List.length (io.Wal_io.io_metrics ())))

(* ---- injector: determinism, short writes, capacity, fsyncgate ---- *)

let drive_ops io =
  io.Wal_io.io_mkdir "d";
  let f = io.Wal_io.io_create "d/x" in
  for _ = 1 to 40 do
    (try Wal_io.write_string f (String.make 256 'w') with Wal_io.Io_error _ -> ());
    try f.Wal_io.f_fsync () with Wal_io.Io_error _ -> ()
  done;
  f.Wal_io.f_close ();
  io.Wal_io.io_metrics ()

let test_injector_determinism () =
  let mk () =
    Wal_io.faulty
      (Wal_io.fault_config ~seed:0xF00D ~write_eio_ppm:120_000
         ~write_short_ppm:150_000 ~fsync_fail_ppm:60_000 ())
      (Sim_fs.io (Sim_fs.create ()))
  in
  let m1 = drive_ops (mk ()) and m2 = drive_ops (mk ()) in
  List.iter2
    (fun (k1, v1) (k2, v2) ->
      check Alcotest.string "same key order" k1 k2;
      check Alcotest.int ("deterministic " ^ k1) v1 v2)
    m1 m2;
  if List.assoc "injected_eio" m1 = 0 && List.assoc "injected_short_write" m1 = 0
  then Alcotest.fail "rates this high must inject something in 40 rounds"

let test_short_writes_complete () =
  let fs = Sim_fs.create () in
  let io =
    Wal_io.faulty
      (Wal_io.fault_config ~seed:7 ~write_short_ppm:1_000_000 ())
      (Sim_fs.io fs)
  in
  io.Wal_io.io_mkdir "d";
  let f = io.Wal_io.io_create "d/s" in
  let payload = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
  (* every f_write transfers a strict prefix; write_string must loop *)
  Wal_io.write_string f payload;
  f.Wal_io.f_fsync ();
  check Alcotest.string "short writes still complete" payload
    (Bytes.to_string (Wal_io.read_file io "d/s"));
  if List.assoc "injected_short_write" (io.Wal_io.io_metrics ()) < 2 then
    Alcotest.fail "short-write injection never fired"

let test_capacity_enospc () =
  let io =
    Wal_io.faulty
      (Wal_io.fault_config ~seed:9 ~enospc_after_bytes:1024 ())
      (Sim_fs.io (Sim_fs.create ()))
  in
  io.Wal_io.io_mkdir "d";
  let f = io.Wal_io.io_create "d/full" in
  let failed = ref None in
  (try
     for _ = 1 to 16 do
       Wal_io.write_string f (String.make 512 'z')
     done
   with Wal_io.Io_error { error; transient; _ } ->
     failed := Some (error, transient));
  (match !failed with
  | Some (Unix.ENOSPC, false) -> ()
  | Some (error, _) ->
      Alcotest.failf "wrong error: %s" (Unix.error_message error)
  | None -> Alcotest.fail "capacity cap never tripped");
  check Alcotest.int "device_full gauge" 1
    (List.assoc "device_full" (io.Wal_io.io_metrics ()));
  (* full is persistent: the next write fails too *)
  match Wal_io.write_string f "more" with
  | exception Wal_io.Io_error { error = Unix.ENOSPC; _ } -> ()
  | () -> Alcotest.fail "writes after ENOSPC must keep failing"

let test_fsyncgate_drops_unflushed () =
  let fs = Sim_fs.create () in
  let io =
    Wal_io.faulty
      (Wal_io.fault_config ~seed:3 ~fsync_fail_ppm:1_000_000 ())
      (Sim_fs.io fs)
  in
  io.Wal_io.io_mkdir "d";
  let f = io.Wal_io.io_create "d/gone" in
  Wal_io.write_string f "never made it";
  (match f.Wal_io.f_fsync () with
  | exception Wal_io.Io_error { op = "fsync"; transient = false; _ } -> ()
  | () -> Alcotest.fail "injected fsync failure did not raise"
  | exception e -> raise e);
  (* fsyncgate: the unflushed pages are gone, not pending — the file is
     back at its last durable length and no later sync resurrects them *)
  check Alcotest.int "unflushed bytes dropped" 0
    (Bytes.length (Wal_io.read_file io "d/gone"));
  if List.assoc "injected_fsync_fail" (io.Wal_io.io_metrics ()) < 1 then
    Alcotest.fail "fsync-failure counter not bumped"

(* ---- simulated block device crash semantics ---- *)

let test_sim_crash_barriers () =
  let fs = Sim_fs.create () in
  let io = Sim_fs.io fs in
  io.Wal_io.io_mkdir "d";
  (* durable: content fsynced, name fsync_dir'd *)
  let f = io.Wal_io.io_create "d/a" in
  Wal_io.write_string f (String.make 512 'A');
  f.Wal_io.f_fsync ();
  io.Wal_io.io_fsync_dir "d";
  (* pending: a rename of the durable file, and a fresh unsynced file *)
  io.Wal_io.io_rename "d/a" "d/b";
  let g = io.Wal_io.io_create "d/c" in
  Wal_io.write_string g (String.make 512 'C');
  for seed = 1 to 8 do
    let c = Sim_fs.crash fs ~seed in
    let cio = Sim_fs.io c in
    let ea = cio.Wal_io.io_exists "d/a" and eb = cio.Wal_io.io_exists "d/b" in
    (* the pre-barrier content is inviolable; only its name may differ *)
    if not (ea <> eb) then
      Alcotest.failf "seed %d: exactly one of a/b must exist" seed;
    let survivor = if ea then "d/a" else "d/b" in
    check Alcotest.string
      (Printf.sprintf "seed %d: synced content intact" seed)
      (String.make 512 'A')
      (Bytes.to_string (Wal_io.read_file cio survivor));
    (* the unsynced file may be missing, empty, or whole — never junk *)
    if cio.Wal_io.io_exists "d/c" then begin
      let body = Bytes.to_string (Wal_io.read_file cio "d/c") in
      if body <> "" && body <> String.make 512 'C' then
        Alcotest.failf "seed %d: torn single-sector file has junk" seed
    end
  done;
  (* after the barrier, every materialization agrees *)
  g.Wal_io.f_fsync ();
  io.Wal_io.io_fsync_dir "d";
  for seed = 1 to 4 do
    let cio = Sim_fs.io (Sim_fs.crash fs ~seed) in
    check Alcotest.bool "rename durable after dir fsync" true
      (cio.Wal_io.io_exists "d/b" && not (cio.Wal_io.io_exists "d/a"));
    check Alcotest.bool "second file durable after fsync" true
      (cio.Wal_io.io_exists "d/c")
  done

(* ---- engine degradation: ENOSPC mid-append ---- *)

let transfer_until_degraded cc ~seed ~cap =
  let tid = Util.Tid.get () in
  let rng = Util.Sprng.create seed in
  let n = ref 0 and degraded = ref false in
  while (not !degraded) && !n < cap do
    let a = Util.Sprng.int rng rows and b = Util.Sprng.int rng rows in
    (match
       Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:a ~dst:b
         ~amount:(1 + Util.Sprng.int rng 16)
     with
    | _ -> incr n
    | exception Stm_intf.Degraded_read_only _ -> degraded := true)
  done;
  (!degraded, !n)

let test_enospc_flips_readonly () =
  let fs = Sim_fs.create () in
  let io =
    Wal_io.faulty
      (Wal_io.fault_config ~seed:11 ~enospc_after_bytes:8192 ())
      (Sim_fs.io fs)
  in
  let tbl = make_table () in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  let w = Wal.create (Wal.config ~io ~dir:"wal" ()) store in
  let cc = Dbx.Cc_2plsf.create tbl in
  Dbx.Cc_2plsf.set_wal cc (Some w);
  let acked = ref 0 in
  let tid = Util.Tid.get () in
  let rng = Util.Sprng.create 42 in
  let degraded = ref false and committed = ref 0 in
  while (not !degraded) && !committed < 20_000 do
    let a = Util.Sprng.int rng rows and b = Util.Sprng.int rng rows in
    match
      Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:a ~dst:b
        ~amount:(1 + Util.Sprng.int rng 16)
    with
    | _ ->
        incr committed;
        acked := max !acked (Wal.flushed_lsn w)
    | exception Stm_intf.Degraded_read_only { engine; _ } ->
        check Alcotest.string "typed engine name" "DBx-2PLSF" engine;
        degraded := true
  done;
  if not !degraded then Alcotest.fail "8KB device never filled";
  check Alcotest.bool "engine records the reason" true
    (Dbx.Cc_2plsf.degraded_reason cc <> None);
  if Dbx.Cc_2plsf.readonly_rejects cc < 1 then
    Alcotest.fail "rejection counter not bumped";
  (* reads keep serving on the degraded engine *)
  ignore (Dbx.Cc_2plsf.execute cc ~tid read_txn);
  (* and writes keep being refused, before any lock is taken *)
  (match Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:0 ~dst:1 ~amount:1 with
  | exception Stm_intf.Degraded_read_only _ -> ()
  | _ -> Alcotest.fail "write served on a read-only engine");
  Dbx.Cc_2plsf.set_wal cc None;
  Wal.stop w;
  check Alcotest.bool "log poisoned" true (Wal.degraded w <> None);
  (* ENOSPC destroys nothing already durable: the live log recovers
     everything acknowledged, conservation-clean *)
  let t1 = make_table () in
  let r = Wal.recover ~io:(Sim_fs.io fs) ~dir:"wal" (Dbx.Cc_2plsf.wal_store t1) in
  check Alcotest.int "conservation" (rows * init_balance) (balance_sum t1);
  if r.Wal.r_max_lsn < !acked then
    Alcotest.failf "false ack: recovered to %d, acked %d" r.Wal.r_max_lsn !acked

(* ---- engine degradation: fsync failure, then crash ---- *)

let test_fsync_fail_then_crash () =
  (* Phase 1: a clean history on the simulated device, fully durable. *)
  let fs = Sim_fs.create () in
  let tbl = make_table () in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  let w = Wal.create (Wal.config ~io:(Sim_fs.io fs) ~dir:"wal" ()) store in
  let cc = Dbx.Cc_2plsf.create tbl in
  Dbx.Cc_2plsf.set_wal cc (Some w);
  let tid = Util.Tid.get () in
  let rng = Util.Sprng.create 5 in
  for _ = 1 to 60 do
    let a = Util.Sprng.int rng rows and b = Util.Sprng.int rng rows in
    ignore
      (Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:a ~dst:b
         ~amount:(1 + Util.Sprng.int rng 16))
  done;
  let acked = Wal.flushed_lsn w in
  Dbx.Cc_2plsf.set_wal cc None;
  Wal.stop w;
  (* Phase 2: reopen on the same device, now with failing fsyncs.  The
     draw sequence is a pure hash of the seed, so scan seeds until one
     lets the reopen succeed and a later commit-path fsync fail — the
     scan itself is deterministic. *)
  let next_lsn =
    (Wal.recover ~io:(Sim_fs.io fs) ~dir:"wal" store).Wal.r_next_lsn
  in
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 64 do
    incr seed;
    let io =
      Wal_io.faulty
        (Wal_io.fault_config ~seed:!seed ~fsync_fail_ppm:400_000 ())
        (Sim_fs.io fs)
    in
    match Wal.create ~next_lsn (Wal.config ~io ~dir:"wal" ()) store with
    | exception (Wal_io.Io_error _ | Wal.Degraded _) -> ()
    | w2 ->
        let cc2 = Dbx.Cc_2plsf.create tbl in
        Dbx.Cc_2plsf.set_wal cc2 (Some w2);
        let degraded, _ = transfer_until_degraded cc2 ~seed:77 ~cap:4_000 in
        Dbx.Cc_2plsf.set_wal cc2 None;
        Wal.stop w2;
        if degraded then begin
          found := true;
          if List.assoc "io_fsync_failures" (Wal.metrics w2) < 1 then
            Alcotest.fail "degradation without a counted fsync failure";
          (* reads still serve on the degraded engine *)
          ignore (Dbx.Cc_2plsf.execute cc2 ~tid read_txn)
        end
  done;
  if not !found then Alcotest.fail "no seed produced a mid-commit fsync failure";
  (* Now crash the device: whatever the failed fsync claimed to lose
     must never resurface, and everything acked in phase 1 must
     survive every materialization. *)
  for m = 1 to 5 do
    let cio = Sim_fs.io (Sim_fs.crash fs ~seed:(0xCAFE + m)) in
    let t1 = make_table () in
    match Wal.recover ~io:cio ~dir:"wal" (Dbx.Cc_2plsf.wal_store t1) with
    | exception Wal.Corrupt msg ->
        Alcotest.failf "materialization %d refused: %s" m msg
    | r ->
        check Alcotest.int
          (Printf.sprintf "materialization %d: conservation" m)
          (rows * init_balance) (balance_sum t1);
        if r.Wal.r_max_lsn < acked then
          Alcotest.failf "materialization %d: false ack (%d < %d)" m
            r.Wal.r_max_lsn acked
  done

(* ---- the headline property ---- *)

(* Run a seeded history against the simulated device, snapshot the
   filesystem mid-flight (pending writes, pending namespace ops and
   all), and check that EVERY crash materialization recovers
   conservation-clean with byte-identical double replay.  Two
   configurations: Sync_none on a single segment (nothing ever synced —
   maximal tearing surface), and the durable default with aggressive
   checkpointing (rotation, image rename and truncation dops in
   flight). *)
let materializations_recover ~sync ~ckpt ~seed ~mats =
  let fs = Sim_fs.create () in
  let tbl = make_table () in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  let w =
    Wal.create
      (Wal.config ~io:(Sim_fs.io fs) ~sync ~ckpt_every_bytes:ckpt ~dir:"wal" ())
      store
  in
  let cc = Dbx.Cc_2plsf.create tbl in
  Dbx.Cc_2plsf.set_wal cc (Some w);
  let tid = Util.Tid.get () in
  let rng = Util.Sprng.create seed in
  for _ = 1 to 150 do
    let a = Util.Sprng.int rng rows and b = Util.Sprng.int rng rows in
    ignore
      (Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:a ~dst:b
         ~amount:(1 + Util.Sprng.int rng 16))
  done;
  let snap = Sim_fs.snapshot fs in
  Dbx.Cc_2plsf.set_wal cc None;
  Wal.stop w;
  for m = 0 to mats - 1 do
    let mseed = (seed * 1009) + m in
    let cio = Sim_fs.io (Sim_fs.crash snap ~seed:mseed) in
    let t1 = make_table () in
    match Wal.recover ~io:cio ~dir:"wal" (Dbx.Cc_2plsf.wal_store t1) with
    | exception Wal.Corrupt msg ->
        Alcotest.failf "seed %d mat %d refused: %s" seed m msg
    | _ ->
        check Alcotest.int
          (Printf.sprintf "seed %d mat %d: conservation" seed m)
          (rows * init_balance) (balance_sum t1);
        let t2 = make_table () in
        ignore (Wal.recover ~io:cio ~dir:"wal" (Dbx.Cc_2plsf.wal_store t2));
        check Alcotest.bool
          (Printf.sprintf "seed %d mat %d: double replay identical" seed m)
          true (tables_equal t1 t2)
  done;
  (* the untouched live log still recovers the full history *)
  let t1 = make_table () in
  ignore (Wal.recover ~io:(Sim_fs.io fs) ~dir:"wal" (Dbx.Cc_2plsf.wal_store t1));
  check Alcotest.bool "live log recovers the live table" true
    (tables_equal t1 tbl)

let property_seeds = [ 201; 202; 203; 204; 205 ]

let test_materializations_sync_none () =
  List.iter
    (fun seed -> materializations_recover ~sync:Wal.Sync_none ~ckpt:0 ~seed ~mats:8)
    property_seeds

let test_materializations_durable () =
  List.iter
    (fun seed ->
      materializations_recover ~sync:Wal.Sync_fsync ~ckpt:4096 ~seed ~mats:8)
    property_seeds

let () =
  Alcotest.run "wal_io"
    [
      ( "vfs",
        [
          Alcotest.test_case "passthrough basics" `Quick test_passthrough_basics;
          Alcotest.test_case "injector determinism" `Quick
            test_injector_determinism;
          Alcotest.test_case "short writes complete" `Quick
            test_short_writes_complete;
          Alcotest.test_case "capacity enospc persistent" `Quick
            test_capacity_enospc;
          Alcotest.test_case "fsyncgate drops unflushed" `Quick
            test_fsyncgate_drops_unflushed;
        ] );
      ( "sim-fs",
        [
          Alcotest.test_case "crash barriers" `Quick test_sim_crash_barriers;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "enospc flips read-only" `Quick
            test_enospc_flips_readonly;
          Alcotest.test_case "fsync fail then crash" `Quick
            test_fsync_fail_then_crash;
        ] );
      ( "materializations",
        [
          Alcotest.test_case "sync-none single segment" `Quick
            test_materializations_sync_none;
          Alcotest.test_case "durable with checkpoints" `Quick
            test_materializations_durable;
        ] );
    ]
