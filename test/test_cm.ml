(* Tests for the overload-protection layer (DESIGN.md §11): transaction
   deadlines, pluggable contention management, AIMD admission control and
   the serial-irrevocable fallback.

   - a transaction stuck behind a chaos-stalled lock holder raises the
     typed [Deadline_exceeded] with the same cleanliness contract as
     [Starved] (zero leaked locks, value conserved, table functional);
   - the backoff contention manager is deterministic under a fixed seed;
   - the AIMD admission gate halves its width under an abort storm and
     recovers additively once the window is healthy;
   - with the fallback enabled, transactions that exhaust their restart
     budget escalate through the serial-irrevocable path and commit
     exactly once (conservation) instead of raising [Starved];
   - every registry STM survives an instantly-blown deadline under
     contention with zero leaked locks and a conserved invariant. *)

module Chaos = Twoplsf_chaos.Chaos
module Stm = Twoplsf.Stm
module Cm = Twoplsf_cm.Cm
module Admission = Twoplsf_cm.Admission

let check = Alcotest.check

(* Every test must leave the globals as it found them: injection off,
   admission gate down, default policy installed. *)
let with_clean_globals f =
  Fun.protect
    ~finally:(fun () ->
      Chaos.disable ();
      Admission.uninstall ();
      Stm_intf.install_policy Stm_intf.default_policy)
    f

let quiet_config =
  {
    Chaos.default with
    Chaos.delay_ppm = 0;
    yield_ppm = 0;
    spurious_ppm = 0;
    exn_ppm = 0;
    stall_ppm = 0;
  }

(* ---- deadline fires behind a chaos-stalled lock holder ---- *)

let test_deadline_stalled_victim () =
  with_clean_globals (fun () ->
      let tv = Stm.tvar 0 in
      Cm.install
        { Stm_intf.default_policy with Stm_intf.deadline_ns = 5_000_000 };
      let outcomes =
        Harness.Exec.run_each ~threads:2 (fun i ->
            if i = 0 then begin
              (* The victim: chaos stalls only this tid, and the
                 [Pre_commit] point it places after the write means it
                 sleeps ~100 ms while holding [tv]'s write lock — far
                 past the other worker's 5 ms budget.  It retries its own
                 occasional deadline (it can be queued behind worker 1's
                 brief lock holds with an already-blown budget). *)
              Chaos.enable
                ~config:
                  {
                    quiet_config with
                    Chaos.stall_ppm = 1_000_000;
                    stall_ms = 100.;
                    victim = Util.Tid.get ();
                  }
                ();
              let commits = ref 0 in
              while !commits = 0 do
                match
                  Stm.atomic (fun tx ->
                      let v = Stm.read tx tv in
                      Stm.write tx tv (v + 1);
                      Chaos.point Chaos.Pre_commit)
                with
                | () -> incr commits
                | exception Stm_intf.Deadline_exceeded _ -> ()
              done;
              (!commits, 0, 0)
            end
            else begin
              (* Hammer the same tvar until a deadline fires; each commit
                 adds 10 so the final audit can count both workers'
                 effects exactly. *)
              let commits = ref 0 and deadlines = ref 0 in
              let t0 = Util.Clock.now () in
              while !deadlines = 0 && Util.Clock.now () -. t0 < 5.0 do
                match
                  Stm.atomic (fun tx ->
                      let v = Stm.read tx tv in
                      Stm.write tx tv (v + 10))
                with
                | () ->
                    incr commits;
                    Unix.sleepf 0.001
                | exception
                    Stm_intf.Deadline_exceeded { stm; elapsed_ns; _ } ->
                    check Alcotest.string "stm name" "2PLSF" stm;
                    check Alcotest.bool "elapsed >= budget" true
                      (elapsed_ns >= 5_000_000);
                    incr deadlines
              done;
              (0, !commits, !deadlines)
            end)
      in
      Chaos.disable ();
      Stm_intf.install_policy Stm_intf.default_policy;
      let victim_commits, other_commits, other_deadlines =
        match outcomes with
        | [ (v, _, _); (_, c, d) ] -> (v, c, d)
        | _ -> Alcotest.fail "expected two workers"
      in
      check Alcotest.int "victim committed once" 1 victim_commits;
      check Alcotest.bool "a deadline fired behind the stalled victim" true
        (other_deadlines > 0);
      check Alcotest.int "zero leaked locks" 0 (Stm.leaked_locks ());
      (* Every aborted attempt rolled back: the value reflects exactly the
         committed increments of both workers, and the table is usable. *)
      check Alcotest.int "value conserved"
        (victim_commits + (10 * other_commits))
        (Stm.atomic (fun tx -> Stm.read tx tv)))

(* ---- backoff determinism under a fixed seed ---- *)

let test_backoff_determinism () =
  with_clean_globals (fun () ->
      let draw () =
        List.init 32 (fun r -> Cm.backoff_delay_ns ~tid:0 ~restarts:r)
      in
      Cm.reseed 0xD5EED;
      let a = draw () in
      Cm.reseed 0xD5EED;
      let b = draw () in
      check Alcotest.(list int) "same seed, same delays" a b;
      Cm.reseed 0x0DD5;
      let c = draw () in
      check Alcotest.bool "different seed, different delays" true (a <> c);
      (* Delays respect the cap and stay positive. *)
      List.iter
        (fun d -> check Alcotest.bool "1 <= d <= 1ms" true (d >= 1 && d <= 1_000_000))
        a;
      (* Distinct threads draw from distinct streams. *)
      Cm.reseed 0xD5EED;
      let t1 = List.init 32 (fun r -> Cm.backoff_delay_ns ~tid:1 ~restarts:r) in
      check Alcotest.bool "per-thread streams differ" true (a <> t1))

(* ---- AIMD gate shrinks under an abort storm, recovers additively ---- *)

let test_admission_aimd () =
  with_clean_globals (fun () ->
      let commits = ref 0 and aborts = ref 0 in
      Admission.install ~max_width:64
        ~sample:(fun () -> (!commits, !aborts))
        ();
      check Alcotest.int "gate opens at max width" 64 (Admission.width ());
      (* Abort storm: two windows at 90% abort rate halve twice. *)
      commits := !commits + 10;
      aborts := !aborts + 90;
      Admission.tick ();
      check Alcotest.int "first shrink" 32 (Admission.width ());
      commits := !commits + 10;
      aborts := !aborts + 90;
      Admission.tick ();
      check Alcotest.int "second shrink" 16 (Admission.width ());
      (* Healthy window: additive recovery, one step per window. *)
      commits := !commits + 100;
      Admission.tick ();
      check Alcotest.int "additive recovery" 17 (Admission.width ());
      (* A near-idle window (< 16 samples) also counts as healthy. *)
      commits := !commits + 3;
      Admission.tick ();
      check Alcotest.int "idle window grows" 18 (Admission.width ());
      (* The gate itself admits and releases. *)
      Admission.enter ();
      check Alcotest.int "inflight" 1 (Admission.inflight ());
      Admission.leave ();
      check Alcotest.int "inflight drained" 0 (Admission.inflight ()))

(* ---- exhausted restart budget escalates instead of starving ---- *)

let test_escalation_conserves () =
  with_clean_globals (fun () ->
      let n_accounts = 8 in
      let initial = 100 in
      let accounts = Array.init n_accounts (fun _ -> Stm.tvar initial) in
      Cm.install
        {
          Stm_intf.default_policy with
          Stm_intf.max_restarts = 2;
          fallback = true;
        };
      (* Every third acquisition spuriously fails: the restart bound is
         hit constantly, and with the fallback on the only legal outcome
         is escalation, never [Starved]. *)
      Chaos.enable
        ~config:{ quiet_config with Chaos.spurious_ppm = 300_000 }
        ();
      let esc0 = Cm.escalations () in
      let starved = Atomic.make 0 in
      let res =
        Harness.Exec.run_timed ~threads:4 ~seconds:0.2 (fun i should_stop ->
            let rng = Util.Sprng.create (0xE5CA + (i * 7919)) in
            let ops = ref 0 in
            while not (should_stop ()) do
              let a = Util.Sprng.int rng n_accounts in
              let b = Util.Sprng.int rng n_accounts in
              match
                Stm.atomic (fun tx ->
                    let va = Stm.read tx accounts.(a) in
                    let vb = Stm.read tx accounts.(b) in
                    if a <> b then begin
                      Stm.write tx accounts.(a) (va - 1);
                      Stm.write tx accounts.(b) (vb + 1)
                    end)
              with
              | () -> incr ops
              | exception Stm_intf.Starved _ -> Atomic.incr starved
            done;
            !ops)
      in
      Chaos.disable ();
      Stm_intf.install_policy Stm_intf.default_policy;
      check Alcotest.bool "made progress" true (res.Harness.Exec.ops > 0);
      check Alcotest.bool "escalations fired" true
        (Cm.escalations () > esc0);
      check Alcotest.int "never starved" 0 (Atomic.get starved);
      check Alcotest.int "zero leaked locks" 0 (Stm.leaked_locks ());
      let total =
        Stm.atomic ~read_only:true (fun tx ->
            Array.fold_left (fun acc a -> acc + Stm.read tx a) 0 accounts)
      in
      check Alcotest.int "conserved (each escalated txn committed once)"
        (n_accounts * initial) total)

(* ---- Deadline_exceeded cleanliness for every registry STM ---- *)

let test_deadline_cleanliness_all_stms () =
  with_clean_globals (fun () ->
      let total_deadlines = ref 0 in
      List.iter
        (fun (module S : Stm_intf.STM) ->
          let n_accounts = 4 in
          let initial = 100 in
          let accounts = Array.init n_accounts (fun _ -> S.tvar initial) in
          (* A 1 ns budget is blown the moment any attempt has to wait or
             abort: under 4-way contention on 4 accounts the deadline path
             runs constantly, and the invariants below are exactly the
             [Starved] cleanliness contract. *)
          Cm.install
            { Stm_intf.default_policy with Stm_intf.deadline_ns = 1 };
          let deadlines = Atomic.make 0 in
          ignore
            (Harness.Exec.run_timed ~threads:4 ~seconds:0.1
               (fun i should_stop ->
                 let rng = Util.Sprng.create (0xDEAD + (i * 104729)) in
                 let ops = ref 0 in
                 while not (should_stop ()) do
                   let a = Util.Sprng.int rng n_accounts in
                   let b = Util.Sprng.int rng n_accounts in
                   match
                     if Util.Sprng.int rng 8 = 0 then
                       S.atomic ~read_only:true (fun tx ->
                           ignore (S.read tx accounts.(a));
                           ignore (S.read tx accounts.(b)))
                     else
                       S.atomic (fun tx ->
                           let va = S.read tx accounts.(a) in
                           let vb = S.read tx accounts.(b) in
                           if a <> b then begin
                             S.write tx accounts.(a) (va - 1);
                             S.write tx accounts.(b) (vb + 1)
                           end)
                   with
                   | () -> incr ops
                   | exception Stm_intf.Deadline_exceeded _ ->
                       Atomic.incr deadlines
                 done;
                 !ops));
          (* Disarm before the audit so the sum transaction itself cannot
             blow the 1 ns budget. *)
          Stm_intf.install_policy Stm_intf.default_policy;
          total_deadlines := !total_deadlines + Atomic.get deadlines;
          check Alcotest.int
            (S.name ^ ": zero leaked locks")
            0 (S.leaked_locks ());
          let total =
            S.atomic ~read_only:true (fun tx ->
                Array.fold_left (fun acc a -> acc + S.read tx a) 0 accounts)
          in
          check Alcotest.int (S.name ^ ": conserved") (n_accounts * initial)
            total)
        Baselines.Registry.all;
      check Alcotest.bool "deadline path exercised" true
        (!total_deadlines > 0))

let () =
  ignore (Util.Tid.register ());
  Alcotest.run "cm"
    [
      ( "cm",
        [
          Alcotest.test_case "deadline fires behind stalled victim" `Quick
            test_deadline_stalled_victim;
          Alcotest.test_case "backoff determinism" `Quick
            test_backoff_determinism;
          Alcotest.test_case "AIMD admission gate" `Quick
            test_admission_aimd;
          Alcotest.test_case "escalation conserves, never starves" `Quick
            test_escalation_conserves;
          Alcotest.test_case "deadline cleanliness, every STM" `Quick
            test_deadline_cleanliness_all_stms;
        ] );
    ]
